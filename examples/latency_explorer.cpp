// Example: explore, for every client location in a topology, which Domino
// subsystem (DFP or DM) wins and what commit latency to expect — the
// Section 5.6 decision, computed analytically from the RTT matrix and then
// checked against a live simulated deployment.
//
// Usage: latency_explorer [globe|na]
#include <cstdio>
#include <cstring>

#include "harness/geometry.h"
#include "harness/runner.h"

int main(int argc, char** argv) {
  using namespace domino;

  const bool use_na = argc > 1 && std::strcmp(argv[1], "na") == 0;
  const net::Topology topo =
      use_na ? net::Topology::north_america() : net::Topology::globe();
  std::vector<std::size_t> replica_dcs;
  if (use_na) {
    replica_dcs = {topo.index_of("WA"), topo.index_of("VA"), topo.index_of("QC")};
  } else {
    replica_dcs = {topo.index_of("WA"), topo.index_of("PR"), topo.index_of("NSW")};
  }

  std::printf("Replicas:");
  for (std::size_t dc : replica_dcs) std::printf(" %s", topo.name(dc).c_str());
  std::printf("\n\nAnalytical prediction (Section 5.6 estimates over the RTT matrix):\n");
  std::printf("  client   LatDFP(ms)  LatDM(ms)  choice\n");
  for (std::size_t client = 0; client < topo.size(); ++client) {
    const Duration dfp = harness::fast_paxos_latency(topo, replica_dcs, client);
    Duration dm = Duration::max();
    for (std::size_t r = 0; r < replica_dcs.size(); ++r) {
      const Duration cand = topo.rtt(client, replica_dcs[r]) +
                            harness::replication_latency(topo, replica_dcs, r);
      dm = std::min(dm, cand);
    }
    std::printf("  %-8s %10.0f %10.0f  %s\n", topo.name(client).c_str(), dfp.millis(),
                dm.millis(), dfp <= dm ? "DFP" : "DM");
  }

  std::printf("\nLive check (simulated deployment, one client per DC):\n");
  harness::Scenario s;
  s.topology = topo;
  s.replica_dcs = replica_dcs;
  for (std::size_t dc = 0; dc < topo.size(); ++dc) s.client_dcs.push_back(dc);
  s.rps = 50;
  s.warmup = seconds(2);
  s.measure = seconds(8);
  s.seed = 3;
  const auto result = harness::run_domino(s);
  for (std::size_t c = 0; c < result.commit_per_client.size(); ++c) {
    const auto& stats = result.commit_per_client[c];
    if (stats.empty()) continue;
    std::printf("  client %-8s median commit %.0f ms\n", topo.name(s.client_dcs[c]).c_str(),
                stats.percentile(50));
  }
  std::printf("\n%llu requests via DFP, %llu via DM; %llu fast-path commits\n",
              (unsigned long long)result.dfp_chosen, (unsigned long long)result.dm_chosen,
              (unsigned long long)result.fast_path);
  return 0;
}
