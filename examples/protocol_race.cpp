// Example: race all five protocols on the same WAN deployment and print a
// side-by-side commit-latency CDF — a miniature of the paper's Figure 8
// that is handy when exploring custom topologies.
//
// Usage: protocol_race [rps-per-client]
#include <cstdio>
#include <cstdlib>

#include "harness/report.h"
#include "harness/runner.h"

int main(int argc, char** argv) {
  using namespace domino;

  harness::Scenario s;
  s.topology = net::Topology::globe();
  s.replica_dcs = {s.topology.index_of("WA"), s.topology.index_of("PR"),
                   s.topology.index_of("NSW")};
  for (std::size_t dc = 0; dc < s.topology.size(); ++dc) s.client_dcs.push_back(dc);
  s.rps = argc > 1 ? std::atof(argv[1]) : 100.0;
  s.warmup = seconds(2);
  s.measure = seconds(8);
  s.seed = 12;

  std::printf("Globe deployment, replicas WA/PR/NSW, %zu clients at %.0f req/s each\n\n",
              s.client_dcs.size(), s.rps);

  struct Entry {
    harness::Protocol protocol;
    harness::RunResult result;
  };
  std::vector<Entry> entries;
  for (harness::Protocol p :
       {harness::Protocol::kDomino, harness::Protocol::kMencius, harness::Protocol::kEPaxos,
        harness::Protocol::kFastPaxos, harness::Protocol::kMultiPaxos}) {
    entries.push_back({p, harness::run_protocol(p, s)});
    std::printf("%s\n",
                harness::summary_line(harness::protocol_name(p), entries.back().result.commit_ms)
                    .c_str());
  }

  std::vector<std::string> names;
  std::vector<const StatAccumulator*> series;
  for (const auto& e : entries) {
    names.push_back(harness::protocol_name(e.protocol));
    series.push_back(&e.result.commit_ms);
  }
  std::printf("\n%s\n", harness::render_cdf_table(names, series, 10).c_str());

  std::printf("messages on the wire per committed request:\n");
  for (const auto& e : entries) {
    std::printf("  %-12s %6.1f\n", harness::protocol_name(e.protocol).c_str(),
                (double)e.result.packets_sent / (double)std::max<std::uint64_t>(1, e.result.committed));
  }
  return 0;
}
