// The full Domino protocol over real TCP sockets: three replicas and a
// client on loopback, real clocks, the same protocol code the simulator
// runs for the paper's evaluation.
//
//   ./build/examples/domino_tcp_cluster
//
// Prints live latency estimates, per-request commit latencies, and the
// converged replica state.
#include <cstdio>

#include "core/client.h"
#include "core/replica.h"
#include "net/tcp/tcp_context.h"

int main() {
  using namespace domino;
  using namespace domino::net::tcp;

  EventLoop loop;
  TcpContext context(loop);

  const std::vector<NodeId> rids{NodeId{0}, NodeId{1}, NodeId{2}};
  for (NodeId r : rids) {
    const auto port = context.host_node(r, {"127.0.0.1", 0});
    std::printf("replica %s listening on 127.0.0.1:%u\n", r.to_string().c_str(), port);
  }
  context.host_node(NodeId{100}, {"127.0.0.1", 0});

  core::ReplicaConfig rc;
  rc.heartbeat_interval = milliseconds(5);
  rc.prober.probe_interval = milliseconds(5);
  rc.prober.window = milliseconds(500);
  std::vector<std::unique_ptr<core::Replica>> replicas;
  for (NodeId r : rids) {
    replicas.push_back(std::make_unique<core::Replica>(r, context, rids, rids[0], rc));
    replicas.back()->attach();
    replicas.back()->start();
  }

  core::ClientConfig cc;
  cc.prober.probe_interval = milliseconds(5);
  cc.prober.window = milliseconds(500);
  cc.additional_delay = milliseconds(2);
  core::Client client(NodeId{100}, context, rids, cc);
  client.attach();
  client.start();
  int committed = 0;
  client.set_commit_hook([&](const RequestId& id, TimePoint sent, TimePoint at) {
    std::printf("  request #%llu committed in %.3f ms\n", (unsigned long long)id.seq,
                (at - sent).millis());
    ++committed;
  });

  // Warm the measurement plane with real probes.
  const TimePoint warm_until = loop.now() + milliseconds(300);
  while (loop.now() < warm_until) loop.poll(milliseconds(10));

  const auto est = client.estimates();
  std::printf("\nlive estimates over TCP: LatDFP %.3f ms, LatDM %.3f ms\n\n",
              est.dfp.millis(), est.dm.millis());

  for (std::uint64_t s = 0; s < 10; ++s) {
    sm::Command cmd;
    cmd.id = RequestId{client.id(), s};
    cmd.key = "account:" + std::to_string(s % 3);
    cmd.value = "balance:" + std::to_string(100 * (s + 1));
    client.submit(cmd);
  }
  const TimePoint deadline = loop.now() + seconds(5);
  while (committed < 10 && loop.now() < deadline) loop.poll(milliseconds(10));
  // Let execution frontiers pass.
  const TimePoint settle = loop.now() + milliseconds(200);
  while (loop.now() < settle) loop.poll(milliseconds(10));

  std::printf("\nDFP fast-path learns: %llu of %llu requests\n",
              (unsigned long long)client.dfp_fast_learns(),
              (unsigned long long)client.submitted_count());
  std::printf("\nconverged state (replica n0):\n");
  for (const auto& [k, v] : replicas[0]->store().items()) {
    std::printf("  %s = %s\n", k.c_str(), v.c_str());
  }
  bool converged = true;
  for (const auto& r : replicas) {
    converged = converged && r->store().items() == replicas[0]->store().items();
  }
  std::printf("\nall replicas agree: %s\n", converged ? "yes" : "NO");
  return 0;
}
