// Live-socket demo: Domino's measurement plane over real TCP on loopback.
//
// Three "replica" responders and one probing client run in one process on
// an epoll event loop, exchanging the exact same Probe/ProbeReply envelopes
// the simulator transports. Prints measured RTT percentiles and the
// LatDFP/LatDM decision computed from live data — the Section 5.6 logic
// against real sockets.
#include <cstdio>

#include "common/window_estimator.h"
#include "measure/messages.h"
#include "measure/quorum.h"
#include "net/tcp/tcp_host.h"

int main() {
  using namespace domino;
  using namespace domino::net::tcp;

  EventLoop loop;

  // Three replica responders.
  std::vector<std::unique_ptr<TcpHost>> replicas;
  const Duration fake_replication[] = {milliseconds(20), milliseconds(30), milliseconds(40)};
  for (std::uint32_t i = 0; i < 3; ++i) {
    replicas.push_back(std::make_unique<TcpHost>(loop, NodeId{i}, Endpoint{"127.0.0.1", 0}));
    TcpHost* host = replicas.back().get();
    const Duration lr = fake_replication[i];
    host->set_receive_callback([host, &loop, lr](NodeId from, wire::Payload payload) {
      if (wire::peek_type(payload) != wire::MessageType::kProbe) return;
      const auto probe = wire::decode_message<measure::Probe>(payload);
      measure::ProbeReply reply;
      reply.seq = probe.seq;
      reply.echo_sender_local_time = probe.sender_local_time;
      reply.replica_local_time = loop.now();
      reply.replication_latency = lr;
      host->send_message(from, reply);
    });
  }

  // The probing client.
  TcpHost client(loop, NodeId{100}, {"127.0.0.1", 0});
  std::vector<NodeId> rids;
  for (std::uint32_t i = 0; i < 3; ++i) {
    rids.push_back(NodeId{i});
    client.add_peer(NodeId{i}, {"127.0.0.1", replicas[i]->port()});
    replicas[i]->add_peer(NodeId{100}, {"127.0.0.1", client.port()});
  }

  std::unordered_map<NodeId, WindowEstimator> rtt;
  std::unordered_map<NodeId, Duration> lr;
  for (NodeId r : rids) rtt.emplace(r, WindowEstimator{seconds(5)});

  client.set_receive_callback([&](NodeId from, wire::Payload payload) {
    if (wire::peek_type(payload) != wire::MessageType::kProbeReply) return;
    const auto reply = wire::decode_message<measure::ProbeReply>(payload);
    rtt.at(from).add(loop.now(), loop.now() - reply.echo_sender_local_time);
    lr[from] = reply.replication_latency;
  });

  // Probe every 10 ms for half a second of real time.
  std::uint64_t seq = 0;
  std::function<void()> tick = [&] {
    measure::Probe probe;
    probe.seq = seq++;
    probe.sender_local_time = loop.now();
    for (NodeId r : rids) client.send_message(r, probe);
    if (seq < 50) loop.schedule(milliseconds(10), tick);
  };
  loop.schedule(Duration::zero(), tick);

  const TimePoint deadline = loop.now() + seconds(2);
  while (loop.now() < deadline && seq < 50) loop.poll(milliseconds(20));
  // Drain the last replies.
  for (int i = 0; i < 10; ++i) loop.poll(milliseconds(10));

  std::printf("Measured over real loopback TCP (50 probes per replica):\n");
  std::vector<Duration> rtts;
  for (NodeId r : rids) {
    const auto p50 = rtt.at(r).percentile(loop.now(), 50);
    const auto p95 = rtt.at(r).percentile(loop.now(), 95);
    if (!p50 || !p95) {
      std::printf("  replica %s: no data\n", r.to_string().c_str());
      continue;
    }
    rtts.push_back(*p95);
    std::printf("  replica %s: RTT p50 %.3f ms, p95 %.3f ms, advertised L_r %.0f ms\n",
                r.to_string().c_str(), p50->millis(), p95->millis(), lr[r].millis());
  }
  if (rtts.size() == 3) {
    std::sort(rtts.begin(), rtts.end());
    const Duration lat_dfp = rtts[measure::supermajority(3) - 1];
    Duration lat_dm = Duration::max();
    for (std::size_t i = 0; i < rids.size(); ++i) {
      lat_dm = std::min(lat_dm, rtts[i] + lr[rids[i]]);
    }
    std::printf("\nLatDFP = %.3f ms, LatDM = %.3f ms -> this client would use %s\n",
                lat_dfp.millis(), lat_dm.millis(), lat_dfp <= lat_dm ? "DFP" : "DM");
  }
  return 0;
}
