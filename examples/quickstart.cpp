// Quickstart: replicate a key-value store with Domino across three global
// datacenters and compare its commit latency against Multi-Paxos.
//
// Build and run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "harness/report.h"
#include "harness/run_report.h"
#include "harness/runner.h"

int main() {
  using namespace domino;

  // The paper's Globe setting (Table 1): replicas in WA, PR and NSW; one
  // client in every datacenter; WA hosts the Multi-Paxos leader and the
  // DFP coordinator.
  harness::Scenario scenario;
  scenario.topology = net::Topology::globe();
  scenario.replica_dcs = {scenario.topology.index_of("WA"),
                          scenario.topology.index_of("PR"),
                          scenario.topology.index_of("NSW")};
  scenario.client_dcs = {0, 1, 2, 3, 4, 5};  // VA WA PR NSW SG HK
  scenario.leader_index = 0;
  scenario.rps = 200;
  scenario.warmup = seconds(2);
  scenario.measure = seconds(10);
  scenario.seed = 42;

  std::printf("Replicating a KV store across WA / PR / NSW, clients in 6 DCs...\n\n");

  const auto domino_result = harness::run_domino(scenario);
  const auto paxos_result = harness::run_multipaxos(scenario);

  std::printf("%s\n", harness::summary_line("Domino", domino_result.commit_ms).c_str());
  std::printf("%s\n", harness::summary_line("Multi-Paxos", paxos_result.commit_ms).c_str());
  std::printf(
      "\nDomino: %llu requests committed (%llu via DFP fast path, %llu slow, "
      "%llu DFP-chosen, %llu DM-chosen)\n",
      static_cast<unsigned long long>(domino_result.committed),
      static_cast<unsigned long long>(domino_result.fast_path),
      static_cast<unsigned long long>(domino_result.slow_path),
      static_cast<unsigned long long>(domino_result.dfp_chosen),
      static_cast<unsigned long long>(domino_result.dm_chosen));

  // Full observability report: latency summary, every metric (per-link
  // delivery histograms, protocol counters), and the protocol event trace.
  const auto report =
      harness::make_report(harness::Protocol::kDomino, scenario, domino_result);
  report.write("quickstart_report.json", /*include_trace=*/true);
  std::printf("\n[run report written to quickstart_report.json]\n");
  return 0;
}
