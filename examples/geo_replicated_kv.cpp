// Example: a geo-replicated key-value service on Domino, driven directly
// through the public replica/client API (no experiment harness).
//
// Five replicas across North America; application servers in Iowa and
// Toronto issue writes and read their effects back from the closest
// replica's state machine. Demonstrates: wiring replicas and clients to a
// network, the measurement-driven DFP/DM choice, and state convergence.
#include <cstdio>

#include "core/client.h"
#include "core/replica.h"
#include "net/network.h"
#include "sim/simulator.h"

int main() {
  using namespace domino;

  const net::Topology topo = net::Topology::north_america();
  sim::Simulator simulator;
  net::Network network(simulator, topo, /*seed=*/7);
  net::JitterParams jitter;  // defaults: stable WAN with rare spikes
  network.use_default_links(jitter);

  // Five replicas: WA, VA, QC, CA, TX. WA hosts the DFP coordinator.
  const std::vector<std::string> sites = {"WA", "VA", "QC", "CA", "TX"};
  std::vector<NodeId> rids;
  for (std::size_t i = 0; i < sites.size(); ++i) rids.push_back(NodeId{(std::uint32_t)i});

  std::vector<std::unique_ptr<core::Replica>> replicas;
  for (std::size_t i = 0; i < sites.size(); ++i) {
    auto r = std::make_unique<core::Replica>(rids[i], topo.index_of(sites[i]), network,
                                             rids, rids[0]);
    r->attach();
    r->start();
    replicas.push_back(std::move(r));
  }

  // Application servers in IA and TRT.
  core::ClientConfig cc;
  cc.additional_delay = milliseconds(2);
  auto ia = std::make_unique<core::Client>(NodeId{1000}, topo.index_of("IA"), network,
                                           rids, cc);
  auto trt = std::make_unique<core::Client>(NodeId{1001}, topo.index_of("TRT"), network,
                                            rids, cc);
  for (auto* c : {ia.get(), trt.get()}) {
    c->attach();
    c->start();
    c->set_commit_hook([c](const RequestId& id, TimePoint sent, TimePoint committed) {
      std::printf("  [%s] request #%llu committed in %.1f ms\n",
                  c->id().to_string().c_str(), (unsigned long long)id.seq,
                  (committed - sent).millis());
    });
  }

  // Let the probers learn the network, then write from both sites.
  simulator.run_until(TimePoint::epoch() + seconds(1));

  auto write = [](core::Client& c, std::uint64_t seq, std::string key, std::string value) {
    sm::Command cmd;
    cmd.id = RequestId{c.id(), seq};
    cmd.key = std::move(key);
    cmd.value = std::move(value);
    c.submit(cmd);
  };
  write(*ia, 0, "user:42", "alice");
  write(*trt, 0, "user:43", "bob");
  write(*ia, 1, "user:42", "alice-v2");  // overwrite

  simulator.run_until(TimePoint::epoch() + seconds(3));

  const auto est_ia = ia->estimates();
  std::printf("\nIA estimates: DFP %.0f ms vs DM %.0f ms -> it used %s\n",
              est_ia.dfp.millis(), est_ia.dm.millis(),
              ia->dfp_chosen() > 0 ? "DFP (one-roundtrip fast path)" : "DM");

  std::printf("\nFinal state at every replica:\n");
  for (std::size_t i = 0; i < replicas.size(); ++i) {
    std::printf("  %s: user:42=%s user:43=%s (%llu commands applied)\n", sites[i].c_str(),
                replicas[i]->store().get("user:42").value_or("?").c_str(),
                replicas[i]->store().get("user:43").value_or("?").c_str(),
                (unsigned long long)replicas[i]->store().applied_count());
  }
  return 0;
}
