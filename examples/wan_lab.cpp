// wan_lab: a command-line laboratory for running any protocol in this
// repository on a configurable WAN deployment and printing latency /
// throughput statistics. Useful for exploring placements and knobs beyond
// the paper's fixed settings.
//
// Usage:
//   wan_lab [options]
//     --protocol  domino|mencius|epaxos|fastpaxos|multipaxos|all  (domino)
//     --topology  globe|na                                        (globe)
//     --replicas  CSV of datacenter names, e.g. WA,PR,NSW         (3 site default)
//     --clients   CSV of datacenter names; "all" = one per DC     (all)
//     --rps       requests/second per client                      (100)
//     --seconds   measurement window                              (10)
//     --zipf      workload contention alpha                       (0.75)
//     --delay-ms  Domino DFP additional delay                     (0)
//     --pct       measurement percentile                          (95)
//     --mode      auto|dfp|dm       Domino subsystem choice       (auto)
//     --adaptive  enable the Section 5.4 feedback controller
//     --seed      RNG seed                                        (1)
//     --cdf       print a 20-row commit-latency CDF table
//
// Example: ./wan_lab --protocol all --topology na --replicas WA,VA,QC --rps 200
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "harness/report.h"
#include "harness/runner.h"

namespace {

using namespace domino;

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t comma = s.find(',', start);
    if (comma == std::string::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

[[noreturn]] void usage_error(const std::string& what) {
  std::fprintf(stderr, "wan_lab: %s (run with --help for usage)\n", what.c_str());
  std::exit(2);
}

struct Options {
  std::string protocol = "domino";
  std::string topology = "globe";
  std::string replicas;
  std::string clients = "all";
  double rps = 100;
  double seconds = 10;
  double zipf = 0.75;
  double delay_ms = 0;
  double pct = 95;
  std::string mode = "auto";
  bool adaptive = false;
  bool cdf = false;
  std::uint64_t seed = 1;
};

Options parse(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage_error("missing value for " + arg);
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      std::printf("see the header of examples/wan_lab.cpp for options\n");
      std::exit(0);
    } else if (arg == "--protocol") {
      o.protocol = next();
    } else if (arg == "--topology") {
      o.topology = next();
    } else if (arg == "--replicas") {
      o.replicas = next();
    } else if (arg == "--clients") {
      o.clients = next();
    } else if (arg == "--rps") {
      o.rps = std::atof(next().c_str());
    } else if (arg == "--seconds") {
      o.seconds = std::atof(next().c_str());
    } else if (arg == "--zipf") {
      o.zipf = std::atof(next().c_str());
    } else if (arg == "--delay-ms") {
      o.delay_ms = std::atof(next().c_str());
    } else if (arg == "--pct") {
      o.pct = std::atof(next().c_str());
    } else if (arg == "--mode") {
      o.mode = next();
    } else if (arg == "--adaptive") {
      o.adaptive = true;
    } else if (arg == "--cdf") {
      o.cdf = true;
    } else if (arg == "--seed") {
      o.seed = std::strtoull(next().c_str(), nullptr, 10);
    } else {
      usage_error("unknown option " + arg);
    }
  }
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  const Options o = parse(argc, argv);

  harness::Scenario s;
  if (o.topology == "globe") {
    s.topology = net::Topology::globe();
    if (o.replicas.empty()) s.replica_dcs = {s.topology.index_of("WA"),
                                             s.topology.index_of("PR"),
                                             s.topology.index_of("NSW")};
  } else if (o.topology == "na") {
    s.topology = net::Topology::north_america();
    if (o.replicas.empty()) s.replica_dcs = {s.topology.index_of("WA"),
                                             s.topology.index_of("VA"),
                                             s.topology.index_of("QC")};
  } else {
    usage_error("unknown topology " + o.topology);
  }
  if (!o.replicas.empty()) {
    for (const auto& name : split_csv(o.replicas)) {
      s.replica_dcs.push_back(s.topology.index_of(name));
    }
  }
  if (o.clients == "all") {
    for (std::size_t dc = 0; dc < s.topology.size(); ++dc) s.client_dcs.push_back(dc);
  } else {
    for (const auto& name : split_csv(o.clients)) {
      s.client_dcs.push_back(s.topology.index_of(name));
    }
  }
  s.rps = o.rps;
  s.measure = seconds_d(o.seconds);
  s.workload.zipf_alpha = o.zipf;
  s.additional_delay = milliseconds_d(o.delay_ms);
  s.measurement_percentile = o.pct;
  s.seed = o.seed;
  s.domino_adaptive = o.adaptive;
  if (o.mode == "dfp") s.domino_mode = core::ClientConfig::Mode::kDfpOnly;
  else if (o.mode == "dm") s.domino_mode = core::ClientConfig::Mode::kDmOnly;
  else if (o.mode != "auto") usage_error("unknown mode " + o.mode);

  std::vector<harness::Protocol> protocols;
  if (o.protocol == "all") {
    protocols = {harness::Protocol::kDomino, harness::Protocol::kMencius,
                 harness::Protocol::kEPaxos, harness::Protocol::kFastPaxos,
                 harness::Protocol::kMultiPaxos};
  } else if (o.protocol == "domino") protocols = {harness::Protocol::kDomino};
  else if (o.protocol == "mencius") protocols = {harness::Protocol::kMencius};
  else if (o.protocol == "epaxos") protocols = {harness::Protocol::kEPaxos};
  else if (o.protocol == "fastpaxos") protocols = {harness::Protocol::kFastPaxos};
  else if (o.protocol == "multipaxos") protocols = {harness::Protocol::kMultiPaxos};
  else usage_error("unknown protocol " + o.protocol);

  std::printf("deployment: %zu replicas (", s.replica_dcs.size());
  for (std::size_t i = 0; i < s.replica_dcs.size(); ++i) {
    std::printf("%s%s", i ? "," : "", s.topology.name(s.replica_dcs[i]).c_str());
  }
  std::printf("), %zu clients, %.0f rps each, zipf %.2f, %.0fs window, seed %llu\n\n",
              s.client_dcs.size(), s.rps, s.workload.zipf_alpha, o.seconds,
              (unsigned long long)s.seed);

  std::vector<std::string> names;
  std::vector<StatAccumulator> commits;
  for (harness::Protocol p : protocols) {
    const auto r = harness::run_protocol(p, s);
    std::printf("%s\n", harness::summary_line(harness::protocol_name(p), r.commit_ms).c_str());
    std::printf("  exec: %s\n", harness::summary_line("", r.exec_ms).c_str());
    std::printf("  committed %llu/%llu; throughput %.0f rps; %.1f packets/request",
                (unsigned long long)r.committed, (unsigned long long)r.submitted,
                r.throughput_rps(),
                r.committed ? (double)r.packets_sent / (double)r.committed : 0.0);
    if (p == harness::Protocol::kDomino) {
      std::printf("; DFP/DM choices %llu/%llu, fast commits %llu",
                  (unsigned long long)r.dfp_chosen, (unsigned long long)r.dm_chosen,
                  (unsigned long long)r.fast_path);
    }
    std::printf("\n\n");
    names.push_back(harness::protocol_name(p));
    commits.push_back(r.commit_ms);
  }

  if (o.cdf && !commits.empty()) {
    std::vector<const StatAccumulator*> series;
    for (const auto& c : commits) series.push_back(&c);
    std::printf("%s", harness::render_cdf_table(names, series).c_str());
  }
  return 0;
}
