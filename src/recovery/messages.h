// Peer catch-up wire messages, shared by all five protocols.
//
// A replica that went through an amnesiac restart replays its durable image
// and then asks live peers for whatever it externally promised nothing
// about but still missed: the executed key-value state (as a snapshot), the
// committed-but-unexecuted log suffix, and the lane/owner watermarks that
// let its log frontier advance past positions the peers already resolved.
//
// The exchange is deliberately protocol-agnostic: positions are an
// (int64 pos, uint32 lane) pair — the baselines use (index, 0), Domino uses
// (timestamp, lane) — and protocol-specific attributes (EPaxos instance id
// + seq + deps + status) ride in an opaque `aux` byte string each protocol
// encodes and decodes itself.
#pragma once

#include <vector>

#include "statemachine/command.h"
#include "wire/message.h"

namespace domino::recovery {

struct CatchupRequest {
  static constexpr wire::MessageType kType = wire::MessageType::kCatchupRequest;
  /// Requester's restart epoch; echoed in the reply so a reply from before
  /// a second crash is discarded.
  std::uint64_t epoch = 0;
  /// Requester's applied-command count after local replay (peers use it
  /// only for observability; the requester judges replies itself).
  std::uint64_t applied = 0;

  void encode(wire::ByteWriter& w) const {
    w.varint(epoch);
    w.varint(applied);
  }
  static CatchupRequest decode(wire::ByteReader& r) {
    CatchupRequest m;
    m.epoch = r.varint();
    m.applied = r.varint();
    return m;
  }
};

/// One key-value pair of the executed-state snapshot.
struct KvEntry {
  std::string key;
  std::string value;

  void encode(wire::ByteWriter& w) const {
    w.str(key);
    w.str(value);
  }
  static KvEntry decode(wire::ByteReader& r) {
    KvEntry e;
    e.key = r.str();
    e.value = r.str();
    return e;
  }
};

/// One committed log entry of the catch-up suffix.
struct CatchupEntry {
  std::int64_t pos = 0;    // log index (baselines) or timestamp (Domino)
  std::uint32_t lane = 0;  // 0 for the baselines; GlobalLog lane for Domino
  sm::Command command;
  /// Protocol-specific attributes (EPaxos: instance id, seq, deps, status).
  wire::Payload aux;

  void encode(wire::ByteWriter& w) const {
    w.svarint(pos);
    w.varint(lane);
    command.encode(w);
    w.bytes(aux);
  }
  static CatchupEntry decode(wire::ByteReader& r) {
    CatchupEntry e;
    e.pos = r.svarint();
    e.lane = static_cast<std::uint32_t>(r.varint());
    e.command = sm::Command::decode(r);
    e.aux = r.bytes();
    return e;
  }
};

struct CatchupReply {
  static constexpr wire::MessageType kType = wire::MessageType::kCatchupReply;
  std::uint64_t epoch = 0;    // echoed from the request
  std::uint64_t applied = 0;  // responder's applied-command count
  /// Responder's execution frontier: first unexecuted log index (baselines)
  /// or the global frontier's timestamp (Domino).
  std::int64_t frontier = 0;
  std::uint32_t frontier_lane = 0;  // Domino: the global frontier's lane
  /// Executed key-value state at the responder.
  std::vector<KvEntry> snapshot;
  /// Per-lane (Domino) or per-owner-rank (Mencius) resolved frontiers /
  /// committed-no-op watermarks; empty when the protocol has none.
  std::vector<std::int64_t> watermarks;
  /// Committed suffix: entries the responder has committed but that the
  /// snapshot (executed state) does not cover. EPaxos sends its full
  /// committed instance set here (its snapshot covers no attributes).
  std::vector<CatchupEntry> entries;

  void encode(wire::ByteWriter& w) const {
    w.varint(epoch);
    w.varint(applied);
    w.svarint(frontier);
    w.varint(frontier_lane);
    w.varint(snapshot.size());
    for (const auto& e : snapshot) e.encode(w);
    w.varint(watermarks.size());
    for (std::int64_t v : watermarks) w.svarint(v);
    w.varint(entries.size());
    for (const auto& e : entries) e.encode(w);
  }
  static CatchupReply decode(wire::ByteReader& r) {
    CatchupReply m;
    m.epoch = r.varint();
    m.applied = r.varint();
    m.frontier = r.svarint();
    m.frontier_lane = static_cast<std::uint32_t>(r.varint());
    m.snapshot.resize(r.length_prefix(2));
    for (auto& e : m.snapshot) e = KvEntry::decode(r);
    m.watermarks.resize(r.length_prefix(1));
    for (auto& v : m.watermarks) v = r.svarint();
    m.entries.resize(r.length_prefix(10));
    for (auto& e : m.entries) e = CatchupEntry::decode(r);
    return m;
  }
};

}  // namespace domino::recovery
