// Simulated durable storage for crash recovery.
//
// The repository's fault model (net/fault.h) can make crashes *amnesiac*:
// on FaultEvent::kRecover the harness wipes a replica's volatile state
// through a restart hook, so whatever the replica externalized before the
// crash must be recoverable from somewhere. That somewhere is this module:
// a per-node append-only write-ahead log of tagged records, living in a
// DurableStore that the harness owns and that survives restarts.
//
// The store models the cost of durability with a configurable sync
// latency: a replica that must persist before sending (persist-before-
// externalize, the classic acceptor discipline) calls
// Persistor::persist(tag, body, then) — the record is appended immediately
// (state mutations are never deferred) but the continuation, which holds
// the externalizing sends, runs only after the simulated sync completes.
// Continuations are epoch-guarded: a crash+restart during the sync window
// cancels them, exactly like a real fsync that never returned.
//
// For the negative consistency tests a node's log can be "weakened"
// (DurableStore::weaken): appends are silently dropped while the code path
// stays identical — the model of a forgotten fsync. The chaos checker must
// catch the resulting violation.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/ids.h"
#include "common/time.h"
#include "obs/sink.h"
#include "wire/codec.h"

namespace domino::recovery {

/// Tag of a durable write-ahead record. The body layout is owned by the
/// protocol that wrote it; tags are shared so replay loops can dispatch.
enum class RecordTag : std::uint8_t {
  kReservation = 1,  // log-position reservation (next index / instance / ts)
  kAccepted = 2,     // accepted value at a position (plus protocol attributes)
  kCommitted = 3,    // commit decision at a position
  kWatermark = 4,    // lane / owner-rank frontier advance
};

[[nodiscard]] const char* record_tag_name(RecordTag tag);

struct DurableRecord {
  RecordTag tag = RecordTag::kReservation;
  wire::Payload body;
};

struct DurableConfig {
  /// Simulated latency of one durable sync (write + flush). Zero = writes
  /// are durable instantly (continuations run inline).
  Duration sync_latency = Duration::zero();
};

/// Per-node recovery accounting, aggregated into RunResult/RunReport.
struct RecoveryStats {
  std::uint64_t persisted_records = 0;
  std::uint64_t persisted_bytes = 0;
  std::uint64_t restarts = 0;
  std::uint64_t replayed_records = 0;
  std::uint64_t replayed_bytes = 0;
  std::uint64_t catchup_installs = 0;
  std::uint64_t catchup_bytes = 0;
  std::int64_t rejoin_ns_total = 0;  // sum of time-to-rejoin over restarts

  RecoveryStats& operator+=(const RecoveryStats& o);
};

/// One node's append-only durable image. Survives the node's restarts (it
/// is owned by the DurableStore, not the replica).
class DurableLog {
 public:
  void append(RecordTag tag, wire::Payload body);

  [[nodiscard]] const std::vector<DurableRecord>& records() const { return records_; }
  [[nodiscard]] std::uint64_t byte_size() const { return bytes_; }

  /// Negative-test knob: drop appends silently (a forgotten fsync).
  void set_weakened(bool weakened) { weakened_ = weakened; }
  [[nodiscard]] bool weakened() const { return weakened_; }

  RecoveryStats stats;

 private:
  std::vector<DurableRecord> records_;
  std::uint64_t bytes_ = 0;
  bool weakened_ = false;
};

/// The harness-owned collection of per-node durable logs.
class DurableStore {
 public:
  explicit DurableStore(DurableConfig config = {}) : config_(config) {}

  [[nodiscard]] const DurableConfig& config() const { return config_; }

  /// The durable log of `node`, created on first use.
  [[nodiscard]] DurableLog& log_of(NodeId node) { return logs_[node]; }

  /// Weaken one node's durability (see DurableLog::set_weakened).
  void weaken(NodeId node) { log_of(node).set_weakened(true); }

  /// Attach an observability sink for the recovery.* metrics. Optional;
  /// unbound stores just skip the instrumentation.
  void bind_obs(const obs::Sink& sink);
  [[nodiscard]] const obs::Sink& obs() const { return obs_; }

  /// Sum of every node's recovery accounting.
  [[nodiscard]] RecoveryStats aggregate() const;

  // Metric handles shared by every Persistor bound to this store.
  obs::CounterHandle obs_persist_records_;
  obs::CounterHandle obs_persist_bytes_;
  obs::CounterHandle obs_restarts_;
  obs::CounterHandle obs_replay_records_;
  obs::CounterHandle obs_replay_bytes_;
  obs::CounterHandle obs_catchup_installs_;
  obs::CounterHandle obs_catchup_bytes_;
  obs::HistogramHandle obs_rejoin_ns_;
  obs::HistogramHandle obs_catchup_duration_ns_;

 private:
  DurableConfig config_;
  std::unordered_map<NodeId, DurableLog> logs_;
  obs::Sink obs_;
};

/// Per-replica facade over the durable store: persist-then-continue with
/// the configured sync latency, plus restart/replay/rejoin bookkeeping.
///
/// Default-constructed (unbound) the facade is disabled: persist() runs the
/// continuation inline without encoding anything, so protocols can call it
/// unconditionally and fault-free runs stay byte-identical to before.
class Persistor {
 public:
  using Scheduler = std::function<void(Duration, std::function<void()>)>;
  using BodyFn = std::function<wire::Payload()>;

  Persistor() = default;

  /// Bind to `store` for `node`; `scheduler` supplies the virtual-time
  /// delay used to model sync latency (typically rpc::Node::after).
  void bind(DurableStore& store, NodeId node, Scheduler scheduler);

  [[nodiscard]] bool enabled() const { return store_ != nullptr; }
  [[nodiscard]] Duration sync_latency() const {
    return store_ == nullptr ? Duration::zero() : store_->config().sync_latency;
  }

  /// Append the record produced by `body` under `tag`, then run `then`
  /// once the simulated sync completes. Disabled: `then` runs inline and
  /// `body` is never invoked. The continuation is cancelled if the node
  /// restarts during the sync window (the send was never externalized).
  void persist(RecordTag tag, const BodyFn& body, std::function<void()> then);

  /// Fire-and-forget persist (no externalization gated on it).
  void persist(RecordTag tag, const BodyFn& body) {
    persist(tag, body, [] {});
  }

  /// Restart epoch: bumped by begin_restart(); stale sync continuations and
  /// stale catch-up replies compare against it.
  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }

  /// Begin an amnesiac restart: cancel in-flight sync continuations and
  /// count the restart. Call before wiping volatile state.
  void begin_restart();

  /// Replay the durable image through `fn`, in append order.
  void replay(const std::function<void(const DurableRecord&)>& fn);

  /// Catch-up accounting: an installed peer snapshot of `bytes` bytes that
  /// took `took` since the restart began.
  void note_catchup_install(std::size_t bytes, Duration took);

  /// The replica rejoined (first successful catch-up exchange done).
  void note_rejoin(Duration time_to_rejoin);

  [[nodiscard]] RecoveryStats* stats() {
    return store_ == nullptr ? nullptr : &store_->log_of(node_).stats;
  }

 private:
  DurableStore* store_ = nullptr;
  NodeId node_;
  Scheduler scheduler_;
  std::uint64_t epoch_ = 0;
};

}  // namespace domino::recovery
