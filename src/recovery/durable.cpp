#include "recovery/durable.h"

#include <utility>

namespace domino::recovery {

const char* record_tag_name(RecordTag tag) {
  switch (tag) {
    case RecordTag::kReservation: return "Reservation";
    case RecordTag::kAccepted: return "Accepted";
    case RecordTag::kCommitted: return "Committed";
    case RecordTag::kWatermark: return "Watermark";
  }
  return "Unknown";
}

RecoveryStats& RecoveryStats::operator+=(const RecoveryStats& o) {
  persisted_records += o.persisted_records;
  persisted_bytes += o.persisted_bytes;
  restarts += o.restarts;
  replayed_records += o.replayed_records;
  replayed_bytes += o.replayed_bytes;
  catchup_installs += o.catchup_installs;
  catchup_bytes += o.catchup_bytes;
  rejoin_ns_total += o.rejoin_ns_total;
  return *this;
}

void DurableLog::append(RecordTag tag, wire::Payload body) {
  ++stats.persisted_records;
  stats.persisted_bytes += body.size() + 1;
  if (weakened_) return;  // the forgotten fsync: code path identical, data gone
  bytes_ += body.size() + 1;
  records_.push_back(DurableRecord{tag, std::move(body)});
}

void DurableStore::bind_obs(const obs::Sink& sink) {
  obs_ = sink;
  obs_persist_records_ = sink.counter("recovery.persist_records");
  obs_persist_bytes_ = sink.counter("recovery.persist_bytes");
  obs_restarts_ = sink.counter("recovery.restarts");
  obs_replay_records_ = sink.counter("recovery.replay_records");
  obs_replay_bytes_ = sink.counter("recovery.replay_bytes");
  obs_catchup_installs_ = sink.counter("recovery.catchup_installs");
  obs_catchup_bytes_ = sink.counter("recovery.catchup_bytes");
  obs_rejoin_ns_ = sink.histogram("recovery.time_to_rejoin_ns");
  obs_catchup_duration_ns_ = sink.histogram("recovery.catchup_duration_ns");
}

RecoveryStats DurableStore::aggregate() const {
  RecoveryStats total;
  for (const auto& [node, log] : logs_) {
    (void)node;
    total += log.stats;
  }
  return total;
}

void Persistor::bind(DurableStore& store, NodeId node, Scheduler scheduler) {
  store_ = &store;
  node_ = node;
  scheduler_ = std::move(scheduler);
}

void Persistor::persist(RecordTag tag, const BodyFn& body, std::function<void()> then) {
  if (store_ == nullptr) {
    then();
    return;
  }
  wire::Payload record = body();
  store_->obs_persist_records_.inc();
  store_->obs_persist_bytes_.inc(record.size() + 1);
  store_->log_of(node_).append(tag, std::move(record));
  const Duration sync = store_->config().sync_latency;
  if (sync <= Duration::zero() || !scheduler_) {
    then();
    return;
  }
  // The record is on disk only after the sync completes: defer the
  // externalizing continuation, and cancel it if the node restarts first.
  scheduler_(sync, [this, epoch = epoch_, fn = std::move(then)] {
    if (epoch == epoch_) fn();
  });
}

void Persistor::begin_restart() {
  ++epoch_;
  if (store_ == nullptr) return;
  ++store_->log_of(node_).stats.restarts;
  store_->obs_restarts_.inc();
}

void Persistor::replay(const std::function<void(const DurableRecord&)>& fn) {
  if (store_ == nullptr) return;
  DurableLog& log = store_->log_of(node_);
  for (const DurableRecord& record : log.records()) {
    ++log.stats.replayed_records;
    log.stats.replayed_bytes += record.body.size() + 1;
    store_->obs_replay_records_.inc();
    store_->obs_replay_bytes_.inc(record.body.size() + 1);
    fn(record);
  }
}

void Persistor::note_catchup_install(std::size_t bytes, Duration took) {
  if (store_ == nullptr) return;
  DurableLog& log = store_->log_of(node_);
  ++log.stats.catchup_installs;
  log.stats.catchup_bytes += bytes;
  store_->obs_catchup_installs_.inc();
  store_->obs_catchup_bytes_.inc(bytes);
  store_->obs_catchup_duration_ns_.record(took);
}

void Persistor::note_rejoin(Duration time_to_rejoin) {
  if (store_ == nullptr) return;
  store_->log_of(node_).stats.rejoin_ns_total += time_to_rejoin.nanos();
  store_->obs_rejoin_ns_.record(time_to_rejoin);
}

}  // namespace domino::recovery
