#include "log/global_log.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace domino::log {

GlobalLog::GlobalLog(std::size_t lane_count) : lanes_(lane_count) {
  if (lane_count < 2) throw std::invalid_argument("GlobalLog: need >= 2 lanes (1 DM + DFP)");
}

void GlobalLog::accept(LogPosition pos, sm::Command command) {
  if (pos.lane >= lanes_.size()) throw std::out_of_range("GlobalLog::accept: bad lane");
  Lane& lane = lanes_[pos.lane];
  if (pos.ts < lane.resolved_below) return;  // already executed & compacted
  auto it = lane.entries.find(pos.ts);
  if (it != lane.entries.end()) {
    if (it->second.status == Status::kAccepted) {
      it->second.command = std::move(command);
    } else if (it->second.command.id != command.id) {
      throw std::logic_error("GlobalLog::accept: conflicting resolved entry at " +
                             pos.to_string());
    }
    return;
  }
  lane.entries.emplace(pos.ts, Entry{std::move(command), Status::kAccepted});
  if (pos.ts <= lane.committed_hint) lane.committed_hint = pos.ts - 1;
}

void GlobalLog::commit(LogPosition pos, std::optional<sm::Command> command) {
  if (pos.lane >= lanes_.size()) throw std::out_of_range("GlobalLog::commit: bad lane");
  Lane& lane = lanes_[pos.lane];
  if (pos.ts < lane.resolved_below) return;  // idempotent: already executed
  auto it = lane.entries.find(pos.ts);
  if (it == lane.entries.end()) {
    if (!command) throw std::logic_error("GlobalLog::commit: no entry and no command");
    lane.entries.emplace(pos.ts, Entry{std::move(*command), Status::kCommitted});
    return;
  }
  if (it->second.status == Status::kExecuted) return;  // idempotent
  if (it->second.status == Status::kAbortedNoop) {
    throw std::logic_error("GlobalLog::commit: position resolved as no-op " + pos.to_string());
  }
  if (command) it->second.command = std::move(*command);
  it->second.status = Status::kCommitted;
}

void GlobalLog::resolve_as_noop(LogPosition pos) {
  if (pos.lane >= lanes_.size()) throw std::out_of_range("GlobalLog::resolve_as_noop");
  Lane& lane = lanes_[pos.lane];
  auto it = lane.entries.find(pos.ts);
  if (it == lane.entries.end()) return;  // nothing accepted here; watermark covers it
  if (it->second.status == Status::kCommitted || it->second.status == Status::kExecuted) {
    throw std::logic_error("GlobalLog::resolve_as_noop: position already committed");
  }
  it->second.status = Status::kAbortedNoop;
}

void GlobalLog::advance_watermark(std::uint32_t lane, std::int64_t ts) {
  if (lane >= lanes_.size()) throw std::out_of_range("GlobalLog::advance_watermark");
  lanes_[lane].watermark = std::max(lanes_[lane].watermark, ts);
}

std::int64_t GlobalLog::watermark(std::uint32_t lane) const {
  if (lane >= lanes_.size()) throw std::out_of_range("GlobalLog::watermark");
  return lanes_[lane].watermark;
}

const GlobalLog::Entry* GlobalLog::entry(LogPosition pos) const {
  if (pos.lane >= lanes_.size()) return nullptr;
  const auto& entries = lanes_[pos.lane].entries;
  auto it = entries.find(pos.ts);
  return it == entries.end() ? nullptr : &it->second;
}

bool GlobalLog::is_committed(LogPosition pos) const {
  if (pos.lane < lanes_.size() && pos.ts < lanes_[pos.lane].resolved_below) return true;
  const Entry* e = entry(pos);
  return e != nullptr && (e->status == Status::kCommitted || e->status == Status::kExecuted);
}

bool GlobalLog::is_resolved(LogPosition pos) const {
  if (pos.lane >= lanes_.size()) return false;
  const Lane& lane = lanes_[pos.lane];
  if (pos.ts < lane.resolved_below) return true;
  const Entry* e = entry(pos);
  if (e != nullptr) return e->status != Status::kAccepted;
  return pos.ts < lane.watermark;
}

std::int64_t GlobalLog::lane_frontier(std::uint32_t lane_idx) const {
  if (lane_idx >= lanes_.size()) throw std::out_of_range("GlobalLog::lane_frontier");
  const Lane& l = lanes_[lane_idx];
  // First entry that is still merely Accepted. The scan starts past the
  // memoized committed prefix so deep commit backlogs are not rescanned.
  std::int64_t blocked_at = std::numeric_limits<std::int64_t>::max();
  std::int64_t wm = std::max(l.watermark, l.resolved_below);
  for (auto it = l.entries.upper_bound(l.committed_hint); it != l.entries.end(); ++it) {
    if (it->second.status == Status::kAccepted) {
      blocked_at = it->first;
      break;  // ordered map: the first accepted entry is the smallest
    }
    l.committed_hint = it->first;
    if (it->first > wm) break;
  }
  // Advance the watermark over resolved entries sitting exactly at it: an
  // entry at the watermark is resolved even though no-op coverage is
  // strictly below the watermark.
  for (;;) {
    auto it = l.entries.find(wm);
    if (it == l.entries.end() || it->second.status == Status::kAccepted) break;
    if (wm == std::numeric_limits<std::int64_t>::max()) break;
    ++wm;
  }
  return std::min(blocked_at, wm);
}

LogPosition GlobalLog::global_frontier() const {
  LogPosition frontier{std::numeric_limits<std::int64_t>::max(),
                       static_cast<std::uint32_t>(lanes_.size())};
  for (std::uint32_t lane = 0; lane < lanes_.size(); ++lane) {
    const LogPosition cand{lane_frontier(lane), lane};
    if (cand < frontier) frontier = cand;
  }
  return frontier;
}

std::vector<std::pair<LogPosition, sm::Command>> GlobalLog::drain_executable() {
  const LogPosition frontier = global_frontier();
  std::vector<std::pair<LogPosition, sm::Command>> out;
  for (std::uint32_t lane_idx = 0; lane_idx < lanes_.size(); ++lane_idx) {
    Lane& lane = lanes_[lane_idx];
    auto it = lane.entries.begin();
    while (it != lane.entries.end()) {
      const LogPosition pos{it->first, lane_idx};
      if (!(pos < frontier)) break;
      if (it->second.status == Status::kCommitted) {
        out.emplace_back(pos, std::move(it->second.command));
      }
      // Everything strictly before the frontier is resolved; compact it.
      it = lane.entries.erase(it);
    }
    // Positions on this lane strictly before the frontier are now resolved
    // and compacted.
    const std::int64_t resolved_ts =
        lane_idx < frontier.lane
            ? (frontier.ts == std::numeric_limits<std::int64_t>::max() ? frontier.ts
                                                                       : frontier.ts + 1)
            : frontier.ts;
    lane.resolved_below = std::max(lane.resolved_below, resolved_ts);
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  executed_ += out.size();
  return out;
}

void GlobalLog::fast_forward(LogPosition frontier) {
  for (std::uint32_t lane_idx = 0; lane_idx < lanes_.size(); ++lane_idx) {
    Lane& lane = lanes_[lane_idx];
    // Positions strictly before `frontier` in global (ts, lane) order: on
    // lanes left of the frontier lane that includes ts == frontier.ts.
    const std::int64_t cut =
        lane_idx < frontier.lane
            ? (frontier.ts == std::numeric_limits<std::int64_t>::max() ? frontier.ts
                                                                       : frontier.ts + 1)
            : frontier.ts;
    if (cut <= lane.resolved_below) continue;
    lane.entries.erase(lane.entries.begin(), lane.entries.lower_bound(cut));
    lane.resolved_below = cut;
    lane.watermark = std::max(lane.watermark, cut);
    lane.committed_hint = std::max(lane.committed_hint, cut - 1);
  }
}

std::vector<GlobalLog::RangeEntry> GlobalLog::entries_in_range(std::uint32_t lane,
                                                               std::int64_t lo,
                                                               std::int64_t hi) const {
  std::vector<RangeEntry> out;
  if (lane >= lanes_.size()) return out;
  const Lane& l = lanes_[lane];
  for (auto it = l.entries.lower_bound(lo); it != l.entries.end() && it->first <= hi; ++it) {
    const Entry& e = it->second;
    if (e.status == Status::kAbortedNoop) continue;
    out.push_back(RangeEntry{it->first, e.command,
                             e.status == Status::kCommitted || e.status == Status::kExecuted});
  }
  return out;
}

std::vector<GlobalLog::ResolvedEntry> GlobalLog::resolved_unexecuted() const {
  std::vector<ResolvedEntry> out;
  for (std::uint32_t lane_idx = 0; lane_idx < lanes_.size(); ++lane_idx) {
    for (const auto& [ts, e] : lanes_[lane_idx].entries) {
      if (e.status == Status::kCommitted) {
        out.push_back(ResolvedEntry{LogPosition{ts, lane_idx}, e.command, false});
      } else if (e.status == Status::kAbortedNoop) {
        out.push_back(ResolvedEntry{LogPosition{ts, lane_idx}, {}, true});
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const ResolvedEntry& a, const ResolvedEntry& b) { return a.pos < b.pos; });
  return out;
}

std::size_t GlobalLog::pending_entries() const {
  std::size_t n = 0;
  for (const Lane& l : lanes_) {
    for (const auto& [ts, e] : l.entries) {
      (void)ts;
      if (e.status == Status::kAccepted || e.status == Status::kCommitted) ++n;
    }
  }
  return n;
}

}  // namespace domino::log
