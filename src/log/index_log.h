// Index-based replicated log, used by the baseline protocols (Multi-Paxos,
// Mencius, classic Fast Paxos): dense uint64 positions, a committed flag per
// occupied position, a coalesced skip/no-op set, and a contiguous execution
// frontier.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "common/interval_set.h"
#include "statemachine/command.h"

namespace domino::log {

enum class EntryStatus : std::uint8_t { kAccepted, kCommitted, kExecuted };

class IndexLog {
 public:
  struct Entry {
    sm::Command command;
    EntryStatus status = EntryStatus::kAccepted;
  };

  /// Place (or replace) a command at `index` in Accepted state. Replacing a
  /// committed entry is a logic error.
  void accept(std::uint64_t index, sm::Command command);

  /// Mark the entry at `index` committed; the entry must exist unless
  /// `command` is provided (commit-before-accept, e.g. a late learner).
  void commit(std::uint64_t index, std::optional<sm::Command> command = std::nullopt);

  /// Mark [lo, hi] as skipped (committed no-ops).
  void skip(std::uint64_t lo, std::uint64_t hi);

  [[nodiscard]] bool is_skipped(std::uint64_t index) const {
    return skips_.contains(static_cast<std::int64_t>(index));
  }
  [[nodiscard]] const Entry* entry(std::uint64_t index) const;
  [[nodiscard]] bool is_committed(std::uint64_t index) const;

  /// Committed-but-unexecuted entries at the head of the log: all entries
  /// whose every predecessor is executed or skipped. Marks them Executed
  /// and returns them in order.
  [[nodiscard]] std::vector<std::pair<std::uint64_t, sm::Command>> drain_executable();

  /// All committed-but-unexecuted entries, in index order (non-destructive).
  /// A catch-up responder sends these as the committed suffix its executed
  /// snapshot does not cover.
  [[nodiscard]] std::vector<std::pair<std::uint64_t, sm::Command>> committed_unexecuted()
      const;

  /// Skipped (no-op) ranges with hi >= from, clipped to start at `from`,
  /// ascending. A catch-up responder sends these alongside
  /// committed_unexecuted() for protocols whose no-ops are decided by
  /// one-shot broadcasts (classic Fast Paxos) rather than re-advertised.
  [[nodiscard]] std::vector<std::pair<std::uint64_t, std::uint64_t>> skipped_after(
      std::uint64_t from) const;

  /// Index of the first position that is neither executed nor skipped.
  [[nodiscard]] std::uint64_t execution_frontier() const { return exec_frontier_; }

  /// Jump the execution frontier to `frontier` after installing a peer's
  /// executed-state snapshot (crash recovery): positions below it are
  /// covered by the snapshot, so local entries there are dropped and the
  /// gap is marked skipped. No-op when `frontier` is not ahead.
  void fast_forward(std::uint64_t frontier);

  [[nodiscard]] std::size_t occupied_count() const { return entries_.size(); }
  [[nodiscard]] std::uint64_t executed_count() const { return executed_; }
  [[nodiscard]] std::size_t skip_interval_count() const { return skips_.interval_count(); }

 private:
  std::map<std::uint64_t, Entry> entries_;
  IntervalSet skips_;
  std::uint64_t exec_frontier_ = 0;
  std::uint64_t executed_ = 0;
};

}  // namespace domino::log
