// Domino's global log positions.
//
// The log is indexed by (timestamp, lane):
//   - lanes 0 .. R-1 are the DM lanes, one per replica (the Mencius-style
//     pre-sharding of Section 5.5),
//   - lane R (kDfpLaneSentinel resolved per deployment) is the DFP lane:
//     one Fast Paxos instance per nanosecond timestamp (Section 5.3).
//
// Ordering is lexicographic on (timestamp, lane). Because DM positions are
// "pre-associated with the same timestamp as the DFP log position that is
// immediately after them" (Section 5.5), DM lanes compare *before* the DFP
// lane at the same timestamp — which the numbering gives us for free since
// the DFP lane index R is larger than every DM lane index.
#pragma once

#include <compare>
#include <cstdint>
#include <string>

#include "wire/codec.h"

namespace domino::log {

struct LogPosition {
  std::int64_t ts = 0;    // nanosecond timestamp (a node-local wall clock value)
  std::uint32_t lane = 0; // 0..R-1 = DM lane of replica i, R = DFP lane

  constexpr auto operator<=>(const LogPosition&) const = default;

  [[nodiscard]] std::string to_string() const {
    return "(" + std::to_string(ts) + ",lane" + std::to_string(lane) + ")";
  }

  void encode(wire::ByteWriter& w) const {
    w.svarint(ts);
    w.varint(lane);
  }
  static LogPosition decode(wire::ByteReader& r) {
    LogPosition p;
    p.ts = r.svarint();
    p.lane = static_cast<std::uint32_t>(r.varint());
    return p;
  }
};

/// The DFP lane index in a deployment with `replica_count` replicas.
[[nodiscard]] constexpr std::uint32_t dfp_lane(std::size_t replica_count) {
  return static_cast<std::uint32_t>(replica_count);
}

}  // namespace domino::log
