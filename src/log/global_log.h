// Domino's global replicated log (Sections 5.3, 5.5, 5.7, and the storage
// compression of Section 6).
//
// The log interleaves DFP and DM positions by (timestamp, lane). Explicit
// entries are sparse; the billions of empty nanosecond positions are
// represented by one *committed-no-op watermark* per lane: all empty
// positions on a lane with timestamp strictly below the lane's watermark
// are committed no-ops. Watermarks come from the protocol layer:
//   - DFP lane: the supermajority-th smallest of the replicas' advertised
//     clock watermarks (Section 5.3.2),
//   - DM lane r: leader r's advertised clock watermark (Section 5.5).
//
// Execution (Section 5.7) drains committed entries in global (ts, lane)
// order, never crossing a position that is still unresolved: an
// accepted-but-uncommitted entry, or an empty position at or above its
// lane's watermark.
#pragma once

#include <cstdint>
#include <limits>
#include <map>
#include <optional>
#include <vector>

#include "log/position.h"
#include "statemachine/command.h"

namespace domino::log {

class GlobalLog {
 public:
  /// @param lane_count number of lanes: R DM lanes + 1 DFP lane = R + 1.
  explicit GlobalLog(std::size_t lane_count);

  enum class Status : std::uint8_t { kAccepted, kCommitted, kExecuted, kAbortedNoop };

  struct Entry {
    sm::Command command;
    Status status = Status::kAccepted;
  };

  [[nodiscard]] std::size_t lane_count() const { return lanes_.size(); }

  /// Place a command at `pos` in Accepted state. Overwrites an existing
  /// accepted entry (slow-path re-acceptance); committed entries cannot be
  /// replaced with a different command.
  void accept(LogPosition pos, sm::Command command);

  /// Commit the entry at `pos`, creating it if a command is supplied.
  void commit(LogPosition pos, std::optional<sm::Command> command = std::nullopt);

  /// Resolve `pos` as a committed no-op even though a command was accepted
  /// there (the slow path chose no-op; the command must be retried
  /// elsewhere).
  void resolve_as_noop(LogPosition pos);

  /// Advance the committed-no-op watermark of `lane` to at least `ts`
  /// (monotonic; never regresses).
  void advance_watermark(std::uint32_t lane, std::int64_t ts);

  [[nodiscard]] std::int64_t watermark(std::uint32_t lane) const;

  [[nodiscard]] const Entry* entry(LogPosition pos) const;
  [[nodiscard]] bool is_committed(LogPosition pos) const;

  /// True when `pos` is resolved: a committed/executed entry, a resolved
  /// no-op, or an empty position below its lane's watermark.
  [[nodiscard]] bool is_resolved(LogPosition pos) const;

  /// The first unresolved position on `lane` (its timestamp).
  [[nodiscard]] std::int64_t lane_frontier(std::uint32_t lane) const;

  /// Global frontier: the smallest unresolved position across lanes.
  /// Everything strictly before it can execute.
  [[nodiscard]] LogPosition global_frontier() const;

  /// Pop newly-executable committed entries, in global order, marking them
  /// Executed.
  [[nodiscard]] std::vector<std::pair<LogPosition, sm::Command>> drain_executable();

  /// Jump the log past `frontier` after installing a peer's executed-state
  /// snapshot (crash recovery): every position strictly before the global
  /// frontier is covered by the snapshot, so local entries there are
  /// compacted and each lane's resolved_below/watermark is raised
  /// (monotonically) to the per-lane cut. No-op for positions not ahead.
  void fast_forward(LogPosition frontier);

  /// Live (non-compacted) entries on `lane` with timestamp in [lo, hi],
  /// excluding resolved no-ops. Used by the Section 5.8 failure-recovery
  /// revocation rounds.
  struct RangeEntry {
    std::int64_t ts = 0;
    sm::Command command;
    bool committed = false;
  };
  [[nodiscard]] std::vector<RangeEntry> entries_in_range(std::uint32_t lane, std::int64_t lo,
                                                         std::int64_t hi) const;

  /// All resolved-but-unexecuted entries across every lane, in global
  /// (ts, lane) order: committed commands plus explicit no-op resolutions
  /// (command empty). A catch-up responder sends these as the resolved
  /// suffix its executed snapshot does not cover — no-ops included because
  /// they are decided by one-shot broadcasts a recovering peer cannot
  /// re-learn once missed (a lane watermark only covers *empty* positions).
  struct ResolvedEntry {
    LogPosition pos;
    sm::Command command;  // empty for no-ops
    bool is_noop = false;
  };
  [[nodiscard]] std::vector<ResolvedEntry> resolved_unexecuted() const;

  [[nodiscard]] std::uint64_t executed_count() const { return executed_; }
  [[nodiscard]] std::size_t pending_entries() const;

 private:
  struct Lane {
    std::map<std::int64_t, Entry> entries;
    std::int64_t watermark = 0;  // empty positions with ts < watermark are no-ops
    // Everything below this timestamp has been executed/resolved and its
    // entries garbage-collected (the paper's Section 6 storage compaction:
    // "we remove the positions with no-ops to further reduce storage cost").
    std::int64_t resolved_below = std::numeric_limits<std::int64_t>::min();
    // Frontier-scan memoization: every entry with ts <= committed_hint has
    // been verified non-Accepted (committed/executed/no-op), so frontier
    // scans can skip it. Lowered if an Accepted entry is ever (re)inserted
    // below it. Keeps lane_frontier() amortized O(1) under deep backlogs.
    mutable std::int64_t committed_hint = std::numeric_limits<std::int64_t>::min();
  };

  std::vector<Lane> lanes_;
  std::uint64_t executed_ = 0;
};

}  // namespace domino::log
