#include "log/index_log.h"

#include <algorithm>
#include <stdexcept>

namespace domino::log {

void IndexLog::accept(std::uint64_t index, sm::Command command) {
  auto it = entries_.find(index);
  if (it != entries_.end()) {
    if (it->second.status != EntryStatus::kAccepted) {
      throw std::logic_error("IndexLog::accept: position already committed/executed");
    }
    it->second.command = std::move(command);
    return;
  }
  entries_.emplace(index, Entry{std::move(command), EntryStatus::kAccepted});
}

void IndexLog::commit(std::uint64_t index, std::optional<sm::Command> command) {
  auto it = entries_.find(index);
  if (it == entries_.end()) {
    if (!command) throw std::logic_error("IndexLog::commit: no entry and no command");
    entries_.emplace(index, Entry{std::move(*command), EntryStatus::kCommitted});
    return;
  }
  if (it->second.status == EntryStatus::kExecuted) return;  // idempotent
  if (command) it->second.command = std::move(*command);
  it->second.status = EntryStatus::kCommitted;
}

void IndexLog::skip(std::uint64_t lo, std::uint64_t hi) {
  if (lo > hi) return;
  skips_.insert(static_cast<std::int64_t>(lo), static_cast<std::int64_t>(hi));
}

const IndexLog::Entry* IndexLog::entry(std::uint64_t index) const {
  auto it = entries_.find(index);
  return it == entries_.end() ? nullptr : &it->second;
}

bool IndexLog::is_committed(std::uint64_t index) const {
  const Entry* e = entry(index);
  return e != nullptr && e->status != EntryStatus::kAccepted;
}

std::vector<std::pair<std::uint64_t, sm::Command>> IndexLog::committed_unexecuted() const {
  std::vector<std::pair<std::uint64_t, sm::Command>> out;
  for (const auto& [index, entry] : entries_) {
    if (entry.status == EntryStatus::kCommitted) out.emplace_back(index, entry.command);
  }
  return out;
}

std::vector<std::pair<std::uint64_t, std::uint64_t>> IndexLog::skipped_after(
    std::uint64_t from) const {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> out;
  const auto f = static_cast<std::int64_t>(from);
  for (const auto& [lo, hi] : skips_.intervals()) {
    if (hi < f) continue;
    out.emplace_back(static_cast<std::uint64_t>(std::max(lo, f)),
                     static_cast<std::uint64_t>(hi));
  }
  return out;
}

void IndexLog::fast_forward(std::uint64_t frontier) {
  if (frontier <= exec_frontier_) return;
  entries_.erase(entries_.begin(), entries_.lower_bound(frontier));
  skips_.insert(static_cast<std::int64_t>(exec_frontier_),
                static_cast<std::int64_t>(frontier) - 1);
  exec_frontier_ = frontier;
}

std::vector<std::pair<std::uint64_t, sm::Command>> IndexLog::drain_executable() {
  std::vector<std::pair<std::uint64_t, sm::Command>> out;
  for (;;) {
    if (skips_.contains(static_cast<std::int64_t>(exec_frontier_))) {
      // Jump over the whole skipped run in one step. A skip is a committed
      // no-op decision, so it supersedes any accepted entry lingering in the
      // run (a lost ballot-0 vote in Fast Paxos); drop such entries so they
      // cannot block the frontier.
      const auto end = static_cast<std::uint64_t>(
          skips_.first_gap(static_cast<std::int64_t>(exec_frontier_)));
      entries_.erase(entries_.lower_bound(exec_frontier_), entries_.lower_bound(end));
      exec_frontier_ = end;
      continue;
    }
    auto it = entries_.find(exec_frontier_);
    if (it != entries_.end() && it->second.status == EntryStatus::kCommitted) {
      it->second.status = EntryStatus::kExecuted;
      ++executed_;
      out.emplace_back(exec_frontier_, it->second.command);
      ++exec_frontier_;
      continue;
    }
    break;  // accepted-uncommitted, or empty and unskipped: blocks execution
  }
  return out;
}

}  // namespace domino::log
