// Mencius wire messages.
//
// Log positions are pre-sharded round-robin: instance i is owned by replica
// (i mod n). Skip information ("my unused owned instances below F are
// no-ops") travels piggybacked on Accepts and AcceptReplies, and on periodic
// Skip heartbeats, relying on FIFO channels for safety — exactly the
// technique Domino's DFP borrows (paper Section 5.3.2: "DFP borrows ideas
// from Mencius").
#pragma once

#include "statemachine/command.h"
#include "wire/message.h"

namespace domino::mencius {

struct ClientRequest {
  static constexpr wire::MessageType kType = wire::MessageType::kMenciusClientRequest;
  sm::Command command;

  void encode(wire::ByteWriter& w) const { command.encode(w); }
  static ClientRequest decode(wire::ByteReader& r) { return {sm::Command::decode(r)}; }
};

struct Accept {
  static constexpr wire::MessageType kType = wire::MessageType::kMenciusAccept;
  std::uint64_t index = 0;
  sm::Command command;
  /// The sender's own-lane frontier, specific to this receiver: every owned
  /// index < skip_through that the receiver holds no command for is a
  /// no-op. The sender only advertises a frontier covering instances this
  /// receiver has acknowledged (plus genuinely unused ones), so the
  /// guarantee survives packet loss from crashes and partitions — plain
  /// FIFO ordering is not enough once a channel has dropped messages.
  std::uint64_t skip_through = 0;

  void encode(wire::ByteWriter& w) const {
    w.varint(index);
    command.encode(w);
    w.varint(skip_through);
  }
  static Accept decode(wire::ByteReader& r) {
    Accept m;
    m.index = r.varint();
    m.command = sm::Command::decode(r);
    m.skip_through = r.varint();
    return m;
  }
};

struct AcceptReply {
  static constexpr wire::MessageType kType = wire::MessageType::kMenciusAcceptReply;
  std::uint64_t index = 0;
  std::uint64_t skip_through = 0;  // the replier's own-lane frontier

  void encode(wire::ByteWriter& w) const {
    w.varint(index);
    w.varint(skip_through);
  }
  static AcceptReply decode(wire::ByteReader& r) {
    AcceptReply m;
    m.index = r.varint();
    m.skip_through = r.varint();
    return m;
  }
};

struct Commit {
  static constexpr wire::MessageType kType = wire::MessageType::kMenciusCommit;
  std::uint64_t index = 0;
  /// The committed command rides along so a replica that missed the Accept
  /// (crashed or partitioned at the time) can still materialize the entry;
  /// a hole in a Mencius log would stall its execution frontier forever.
  sm::Command command;

  void encode(wire::ByteWriter& w) const {
    w.varint(index);
    command.encode(w);
  }
  static Commit decode(wire::ByteReader& r) {
    Commit m;
    m.index = r.varint();
    m.command = sm::Command::decode(r);
    return m;
  }
};

/// Follower -> owner: confirms a Commit was received, so the owner can stop
/// retransmitting it and drop the bookkeeping for that instance.
struct CommitAck {
  static constexpr wire::MessageType kType = wire::MessageType::kMenciusCommitAck;
  std::uint64_t index = 0;

  void encode(wire::ByteWriter& w) const { w.varint(index); }
  static CommitAck decode(wire::ByteReader& r) { return {r.varint()}; }
};

/// Heartbeat: advertises the sender's own-lane frontier so idle lanes do not
/// stall execution at other replicas.
struct Skip {
  static constexpr wire::MessageType kType = wire::MessageType::kMenciusSkip;
  std::uint64_t skip_through = 0;

  void encode(wire::ByteWriter& w) const { w.varint(skip_through); }
  static Skip decode(wire::ByteReader& r) { return {r.varint()}; }
};

struct ClientReply {
  static constexpr wire::MessageType kType = wire::MessageType::kMenciusClientReply;
  RequestId request;

  void encode(wire::ByteWriter& w) const { w.request_id(request); }
  static ClientReply decode(wire::ByteReader& r) { return {r.request_id()}; }
};

}  // namespace domino::mencius
