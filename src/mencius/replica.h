// Mencius replica (paper reference [24]; used as both a baseline and the
// design Domino's DM subsystem extends).
//
// Every replica leads the log instances congruent to its rank (mod n).
// A client sends requests to its closest replica, which proposes them at
// its next owned instance. Commit of instance p at its owner requires a
// majority of accepts AND the resolution (commit or skip) of all earlier
// instances — the "delayed commit" behaviour the paper measures as
// Mencius's extra latency (Section 7.2.2). The client is answered when its
// instance executes at the owner.
#pragma once

#include <functional>
#include <map>
#include <unordered_map>
#include <vector>

#include "log/index_log.h"
#include "measure/quorum.h"
#include "recovery/durable.h"
#include "rpc/node.h"
#include "statemachine/kvstore.h"

namespace domino::mencius {

class Replica : public rpc::Node {
 public:
  using ExecuteHook = std::function<void(const RequestId&, TimePoint)>;

  Replica(NodeId id, std::size_t dc, net::Network& network, std::vector<NodeId> replicas,
          Duration heartbeat_interval = milliseconds(10),
          sim::LocalClock clock = sim::LocalClock{});

  /// Start heartbeats; call after attach().
  void start();

  void set_execute_hook(ExecuteHook hook) { exec_hook_ = std::move(hook); }

  /// Bind simulated durable storage: promises (accepts, commit knowledge)
  /// are persisted before the replies that externalize them, and the
  /// replica survives an amnesiac restart().
  void enable_durability(recovery::DurableStore& store);

  /// Amnesiac restart: wipe volatile state, replay the durable image
  /// (rebuilding the own-lane reservation and pending retransmission
  /// state), and catch up from live peers.
  void restart();

  [[nodiscard]] bool catching_up() const { return catching_up_; }

  [[nodiscard]] std::size_t rank() const { return rank_; }
  [[nodiscard]] const log::IndexLog& log() const { return log_; }
  [[nodiscard]] const sm::KvStore& store() const { return store_; }
  [[nodiscard]] std::uint64_t owned_proposals() const { return owned_proposals_; }

 protected:
  void on_packet(const net::Packet& packet) override;

 private:
  [[nodiscard]] std::size_t owner_of(std::uint64_t index) const {
    return static_cast<std::size_t>(index % replicas_.size());
  }
  /// Smallest index owned by `rank` that is >= `at_least`.
  [[nodiscard]] std::uint64_t next_owned_at_or_after(std::size_t rank,
                                                     std::uint64_t at_least) const;

  void handle_client_request(const net::Packet& packet);
  void handle_accept(NodeId from, const wire::Payload& payload);
  void handle_accept_reply(NodeId from, const wire::Payload& payload);
  void handle_commit(NodeId from, const wire::Payload& payload);
  void handle_commit_ack(NodeId from, const wire::Payload& payload);
  void handle_skip(NodeId from, const wire::Payload& payload);
  void handle_catchup_request(NodeId from, const wire::Payload& payload);
  void handle_catchup_reply(const wire::Payload& payload);
  void send_catchup_requests();
  void finish_rejoin();

  /// The largest own-lane frontier that is safe to advertise to `peer`:
  /// every used owned instance below it has been acknowledged by that peer
  /// (via AcceptReply or CommitAck), so the peer cannot mistake a used
  /// instance it never received for a no-op. A global frontier would be
  /// sound only on loss-free FIFO channels; crashes and partitions drop
  /// packets, so the frontier must be per peer.
  [[nodiscard]] std::uint64_t safe_skip_frontier(NodeId peer) const;

  /// Record that `owner_rank`'s unused owned instances below `frontier` are
  /// no-ops (marks the empty ones in the log).
  void apply_skip_frontier(std::size_t owner_rank, std::uint64_t frontier);

  /// Advance our own lane past `index`: skip our unused owned instances
  /// below it (locally; peers learn via piggybacked skip_through).
  void advance_own_lane(std::uint64_t index);

  void execute_ready();
  void broadcast_heartbeat();

  /// Re-send an Accept whose majority is overdue (covers replies dropped by
  /// crashes/partitions). Comfortably above the widest NA/Globe RTT so
  /// fault-free runs never retransmit.
  static constexpr Duration kAcceptRetransmitAfter = milliseconds(400);

  std::vector<NodeId> replicas_;
  std::size_t rank_ = 0;
  Duration heartbeat_interval_;
  log::IndexLog log_;
  sm::KvStore store_;
  ExecuteHook exec_hook_;
  rpc::RepeatingTimer heartbeat_;

  std::uint64_t next_own_index_ = 0;  // smallest unused owned instance
  std::vector<std::uint64_t> skip_frontier_seen_;  // per owner rank

  // Crash recovery.
  recovery::Persistor persistor_;
  bool catching_up_ = false;
  TimePoint recovery_started_at_ = TimePoint::epoch();

  // Owner-side pending instances: index -> (ack set, origin client). The
  // ack set (rather than a count) makes Accept retransmission safe: a
  // follower that re-replies after a retransmit is not counted twice.
  struct Pending {
    std::vector<NodeId> acked;         // AcceptReply senders, self excluded
    std::vector<NodeId> commit_acked;  // CommitAck senders, self excluded
    sm::Command command;               // kept for retransmission
    NodeId client;
    bool committed = false;
    TimePoint last_sent;  // last (re)transmission of the Accept/Commit
  };
  std::map<std::uint64_t, Pending> pending_;  // ordered: commit in index order
  std::unordered_map<std::uint64_t, RequestId> owned_request_;  // index -> request id
  std::unordered_map<std::uint64_t, obs::SpanId> quorum_spans_;  // index -> open wait span
  std::uint64_t owned_proposals_ = 0;

  obs::CounterHandle obs_proposals_;
  obs::CounterHandle obs_accepts_;
  obs::CounterHandle obs_commits_;
  obs::CounterHandle obs_skips_;
  obs::CounterHandle obs_executed_;
};

}  // namespace domino::mencius
