#include "mencius/replica.h"

#include <algorithm>
#include <stdexcept>

#include "mencius/messages.h"

namespace domino::mencius {

Replica::Replica(NodeId id, std::size_t dc, net::Network& network,
                 std::vector<NodeId> replicas, Duration heartbeat_interval,
                 sim::LocalClock clock)
    : rpc::Node(id, dc, network, clock),
      replicas_(std::move(replicas)),
      heartbeat_interval_(heartbeat_interval),
      skip_frontier_seen_(replicas_.size(), 0) {
  const auto it = std::find(replicas_.begin(), replicas_.end(), id);
  if (it == replicas_.end()) throw std::invalid_argument("mencius::Replica: id not in set");
  rank_ = static_cast<std::size_t>(it - replicas_.begin());
  next_own_index_ = rank_;
  obs_proposals_ = obs_sink().counter("mencius.proposals");
  obs_accepts_ = obs_sink().counter("mencius.accepts");
  obs_commits_ = obs_sink().counter("mencius.commits");
  obs_skips_ = obs_sink().counter("mencius.skips");
  obs_executed_ = obs_sink().counter("mencius.executed");
}

void Replica::start() {
  heartbeat_.start(context(), heartbeat_interval_, heartbeat_interval_,
                   [this] { broadcast_heartbeat(); });
}

std::uint64_t Replica::next_owned_at_or_after(std::size_t rank, std::uint64_t at_least) const {
  const auto n = static_cast<std::uint64_t>(replicas_.size());
  const std::uint64_t rem = at_least % n;
  const auto target = static_cast<std::uint64_t>(rank);
  return at_least + (target >= rem ? target - rem : n - rem + target);
}

void Replica::on_packet(const net::Packet& packet) {
  switch (wire::peek_type(packet.payload)) {
    case wire::MessageType::kMenciusClientRequest:
      handle_client_request(packet);
      break;
    case wire::MessageType::kMenciusAccept:
      handle_accept(packet.src, packet.payload);
      break;
    case wire::MessageType::kMenciusAcceptReply:
      handle_accept_reply(packet.src, packet.payload);
      break;
    case wire::MessageType::kMenciusCommit:
      handle_commit(packet.payload);
      break;
    case wire::MessageType::kMenciusSkip:
      handle_skip(packet.src, packet.payload);
      break;
    default:
      break;
  }
}

void Replica::handle_client_request(const net::Packet& packet) {
  const auto req = wire::decode_message<ClientRequest>(packet.payload);
  const std::uint64_t p = next_own_index_;
  next_own_index_ = p + replicas_.size();
  ++owned_proposals_;
  obs_proposals_.inc();

  log_.accept(p, req.command);
  pending_.emplace(p, Pending{1, req.command.id.client, false});
  owned_request_.emplace(p, req.command.id);

  Accept msg{p, req.command, p};
  for (NodeId r : replicas_) {
    if (r != id()) send(r, msg);
  }
}

void Replica::handle_accept(NodeId from, const wire::Payload& payload) {
  const auto msg = wire::decode_message<Accept>(payload);
  const std::size_t owner = owner_of(msg.index);
  apply_skip_frontier(owner, msg.skip_through);
  log_.accept(msg.index, msg.command);
  obs_accepts_.inc();
  // Receiving a proposal for index p implicitly promises to never use our
  // own unused instances below p.
  advance_own_lane(msg.index);
  send(from, AcceptReply{msg.index, next_own_index_});
  execute_ready();
}

void Replica::handle_accept_reply(NodeId from, const wire::Payload& payload) {
  const auto msg = wire::decode_message<AcceptReply>(payload);
  const auto from_it = std::find(replicas_.begin(), replicas_.end(), from);
  if (from_it != replicas_.end()) {
    apply_skip_frontier(static_cast<std::size_t>(from_it - replicas_.begin()),
                        msg.skip_through);
  }
  auto it = pending_.find(msg.index);
  if (it != pending_.end() && !it->second.committed) {
    if (++it->second.acks >= measure::majority(replicas_.size())) {
      it->second.committed = true;
      log_.commit(msg.index);
      obs_commits_.inc();
      for (NodeId r : replicas_) {
        if (r != id()) send(r, Commit{msg.index});
      }
      pending_.erase(it);
    }
  }
  execute_ready();
}

void Replica::handle_commit(const wire::Payload& payload) {
  const auto msg = wire::decode_message<Commit>(payload);
  log_.commit(msg.index);
  execute_ready();
}

void Replica::handle_skip(NodeId from, const wire::Payload& payload) {
  const auto msg = wire::decode_message<Skip>(payload);
  const auto from_it = std::find(replicas_.begin(), replicas_.end(), from);
  if (from_it == replicas_.end()) return;
  apply_skip_frontier(static_cast<std::size_t>(from_it - replicas_.begin()),
                      msg.skip_through);
  execute_ready();
}

void Replica::apply_skip_frontier(std::size_t owner_rank, std::uint64_t frontier) {
  if (owner_rank >= replicas_.size()) return;
  std::uint64_t& seen = skip_frontier_seen_[owner_rank];
  if (frontier <= seen) return;
  // Walk the owner's instances in [seen, frontier); FIFO channels guarantee
  // every instance the owner actually used has already been accepted here,
  // so the empty ones are no-ops.
  for (std::uint64_t idx = next_owned_at_or_after(owner_rank, seen); idx < frontier;
       idx += replicas_.size()) {
    if (log_.entry(idx) == nullptr) {
      log_.skip(idx, idx);
      obs_skips_.inc();
    }
  }
  seen = frontier;
}

void Replica::advance_own_lane(std::uint64_t index) {
  while (next_own_index_ < index) {
    log_.skip(next_own_index_, next_own_index_);
    next_own_index_ += replicas_.size();
  }
}

void Replica::execute_ready() {
  for (auto& [index, command] : log_.drain_executable()) {
    store_.apply(command);
    obs_executed_.inc();
    if (exec_hook_) exec_hook_(command.id, true_now());
    const auto it = owned_request_.find(index);
    if (it != owned_request_.end()) {
      send(it->second.client, ClientReply{it->second});
      owned_request_.erase(it);
    }
  }
}

void Replica::broadcast_heartbeat() {
  for (NodeId r : replicas_) {
    if (r != id()) send(r, Skip{next_own_index_});
  }
}

}  // namespace domino::mencius
