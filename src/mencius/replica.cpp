#include "mencius/replica.h"

#include <algorithm>
#include <stdexcept>

#include "mencius/messages.h"

namespace domino::mencius {

Replica::Replica(NodeId id, std::size_t dc, net::Network& network,
                 std::vector<NodeId> replicas, Duration heartbeat_interval,
                 sim::LocalClock clock)
    : rpc::Node(id, dc, network, clock),
      replicas_(std::move(replicas)),
      heartbeat_interval_(heartbeat_interval),
      skip_frontier_seen_(replicas_.size(), 0) {
  const auto it = std::find(replicas_.begin(), replicas_.end(), id);
  if (it == replicas_.end()) throw std::invalid_argument("mencius::Replica: id not in set");
  rank_ = static_cast<std::size_t>(it - replicas_.begin());
  next_own_index_ = rank_;
  obs_proposals_ = obs_sink().counter("mencius.proposals");
  obs_accepts_ = obs_sink().counter("mencius.accepts");
  obs_commits_ = obs_sink().counter("mencius.commits");
  obs_skips_ = obs_sink().counter("mencius.skips");
  obs_executed_ = obs_sink().counter("mencius.executed");
}

void Replica::start() {
  heartbeat_.start(context(), heartbeat_interval_, heartbeat_interval_,
                   [this] { broadcast_heartbeat(); });
}

std::uint64_t Replica::next_owned_at_or_after(std::size_t rank, std::uint64_t at_least) const {
  const auto n = static_cast<std::uint64_t>(replicas_.size());
  const std::uint64_t rem = at_least % n;
  const auto target = static_cast<std::uint64_t>(rank);
  return at_least + (target >= rem ? target - rem : n - rem + target);
}

void Replica::on_packet(const net::Packet& packet) {
  switch (wire::peek_type(packet.payload)) {
    case wire::MessageType::kMenciusClientRequest:
      handle_client_request(packet);
      break;
    case wire::MessageType::kMenciusAccept:
      handle_accept(packet.src, packet.payload);
      break;
    case wire::MessageType::kMenciusAcceptReply:
      handle_accept_reply(packet.src, packet.payload);
      break;
    case wire::MessageType::kMenciusCommit:
      handle_commit(packet.src, packet.payload);
      break;
    case wire::MessageType::kMenciusCommitAck:
      handle_commit_ack(packet.src, packet.payload);
      break;
    case wire::MessageType::kMenciusSkip:
      handle_skip(packet.src, packet.payload);
      break;
    default:
      break;
  }
}

void Replica::handle_client_request(const net::Packet& packet) {
  const auto req = wire::decode_message<ClientRequest>(packet.payload);
  const std::uint64_t p = next_own_index_;
  next_own_index_ = p + replicas_.size();
  ++owned_proposals_;
  obs_proposals_.inc();

  log_.accept(p, req.command);
  pending_.emplace(p, Pending{{}, {}, req.command, req.command.id.client, false, true_now()});
  owned_request_.emplace(p, req.command.id);
  if (const obs::SpanId s = open_wait_span("mencius_quorum_wait"); s != 0) {
    quorum_spans_[p] = s;
  }

  for (NodeId r : replicas_) {
    if (r != id()) send(r, Accept{p, req.command, safe_skip_frontier(r)});
  }
}

void Replica::handle_accept(NodeId from, const wire::Payload& payload) {
  const auto msg = wire::decode_message<Accept>(payload);
  const std::size_t owner = owner_of(msg.index);
  apply_skip_frontier(owner, msg.skip_through);
  log_.accept(msg.index, msg.command);
  obs_accepts_.inc();
  // Receiving a proposal for index p implicitly promises to never use our
  // own unused instances below p.
  advance_own_lane(msg.index);
  send(from, AcceptReply{msg.index, safe_skip_frontier(from)});
  execute_ready();
}

void Replica::handle_accept_reply(NodeId from, const wire::Payload& payload) {
  const auto msg = wire::decode_message<AcceptReply>(payload);
  const auto from_it = std::find(replicas_.begin(), replicas_.end(), from);
  if (from_it != replicas_.end()) {
    apply_skip_frontier(static_cast<std::size_t>(from_it - replicas_.begin()),
                        msg.skip_through);
  }
  auto it = pending_.find(msg.index);
  if (it != pending_.end() && !it->second.committed) {
    auto& acked = it->second.acked;
    if (std::find(acked.begin(), acked.end(), from) == acked.end()) acked.push_back(from);
    if (acked.size() + 1 >= measure::majority(replicas_.size())) {
      it->second.committed = true;
      it->second.last_sent = true_now();
      const auto span_it = quorum_spans_.find(msg.index);
      if (span_it != quorum_spans_.end()) {
        close_wait_span(span_it->second);
        quorum_spans_.erase(span_it);
      }
      log_.commit(msg.index);
      obs_commits_.inc();
      // The Pending entry stays until every peer CommitAcks: the owner
      // retransmits the Commit to the stragglers from the heartbeat, so a
      // follower that was crashed or partitioned at commit time still
      // learns the command instead of stalling its execution frontier.
      for (NodeId r : replicas_) {
        if (r != id()) send(r, Commit{msg.index, it->second.command});
      }
    }
  }
  execute_ready();
}

void Replica::handle_commit(NodeId from, const wire::Payload& payload) {
  const auto msg = wire::decode_message<Commit>(payload);
  // The command rides on the Commit, so a replica that missed the Accept
  // (dropped while it was crashed or partitioned) still materializes the
  // entry; a hole here would stall its execution frontier forever.
  log_.commit(msg.index, msg.command);
  send(from, CommitAck{msg.index});
  execute_ready();
}

void Replica::handle_commit_ack(NodeId from, const wire::Payload& payload) {
  const auto msg = wire::decode_message<CommitAck>(payload);
  const auto it = pending_.find(msg.index);
  if (it == pending_.end() || !it->second.committed) return;
  auto& acked = it->second.commit_acked;
  if (std::find(acked.begin(), acked.end(), from) == acked.end()) acked.push_back(from);
  if (acked.size() + 1 >= replicas_.size()) pending_.erase(it);
}

void Replica::handle_skip(NodeId from, const wire::Payload& payload) {
  const auto msg = wire::decode_message<Skip>(payload);
  const auto from_it = std::find(replicas_.begin(), replicas_.end(), from);
  if (from_it == replicas_.end()) return;
  apply_skip_frontier(static_cast<std::size_t>(from_it - replicas_.begin()),
                      msg.skip_through);
  execute_ready();
}

void Replica::apply_skip_frontier(std::size_t owner_rank, std::uint64_t frontier) {
  if (owner_rank >= replicas_.size()) return;
  std::uint64_t& seen = skip_frontier_seen_[owner_rank];
  if (frontier <= seen) return;
  // Walk the owner's instances in [seen, frontier); FIFO channels guarantee
  // every instance the owner actually used has already been accepted here,
  // so the empty ones are no-ops.
  for (std::uint64_t idx = next_owned_at_or_after(owner_rank, seen); idx < frontier;
       idx += replicas_.size()) {
    if (log_.entry(idx) == nullptr) {
      log_.skip(idx, idx);
      obs_skips_.inc();
    }
  }
  seen = frontier;
}

std::uint64_t Replica::safe_skip_frontier(NodeId peer) const {
  for (const auto& [index, p] : pending_) {
    const bool peer_has_entry =
        std::find(p.acked.begin(), p.acked.end(), peer) != p.acked.end() ||
        std::find(p.commit_acked.begin(), p.commit_acked.end(), peer) !=
            p.commit_acked.end();
    if (!peer_has_entry) return index;  // pending_ is index-ordered
  }
  return next_own_index_;
}

void Replica::advance_own_lane(std::uint64_t index) {
  while (next_own_index_ < index) {
    log_.skip(next_own_index_, next_own_index_);
    next_own_index_ += replicas_.size();
  }
}

void Replica::execute_ready() {
  for (auto& [index, command] : log_.drain_executable()) {
    store_.apply(command);
    obs_executed_.inc();
    if (exec_hook_) exec_hook_(command.id, true_now());
    const auto it = owned_request_.find(index);
    if (it != owned_request_.end()) {
      send(it->second.client, ClientReply{it->second});
      owned_request_.erase(it);
    }
  }
}

void Replica::broadcast_heartbeat() {
  for (NodeId r : replicas_) {
    if (r != id()) send(r, Skip{safe_skip_frontier(r)});
  }
  // Retransmit lost protocol steps. The original Accepts, their replies,
  // or the Commit broadcast may have been dropped while a peer (or this
  // replica) was crashed or partitioned, and Mencius's total commit order
  // means one orphaned instance stalls every execution frontier in the
  // cluster forever — so the owner keeps re-sending until each peer has
  // acknowledged the Accept (uncommitted) or the Commit (committed).
  for (auto& [index, p] : pending_) {
    if (true_now() - p.last_sent < kAcceptRetransmitAfter) continue;
    p.last_sent = true_now();
    for (NodeId r : replicas_) {
      if (r == id()) continue;
      if (!p.committed) {
        if (std::find(p.acked.begin(), p.acked.end(), r) == p.acked.end()) {
          send(r, Accept{index, p.command, safe_skip_frontier(r)});
        }
      } else if (std::find(p.commit_acked.begin(), p.commit_acked.end(), r) ==
                 p.commit_acked.end()) {
        send(r, Commit{index, p.command});
      }
    }
  }
}

}  // namespace domino::mencius
