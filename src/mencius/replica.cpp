#include "mencius/replica.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "mencius/messages.h"
#include "recovery/messages.h"

namespace domino::mencius {

namespace {
/// Catch-up request retransmit interval for a recovering replica.
constexpr Duration kCatchupRetryInterval = milliseconds(100);
}  // namespace

Replica::Replica(NodeId id, std::size_t dc, net::Network& network,
                 std::vector<NodeId> replicas, Duration heartbeat_interval,
                 sim::LocalClock clock)
    : rpc::Node(id, dc, network, clock),
      replicas_(std::move(replicas)),
      heartbeat_interval_(heartbeat_interval),
      skip_frontier_seen_(replicas_.size(), 0) {
  const auto it = std::find(replicas_.begin(), replicas_.end(), id);
  if (it == replicas_.end()) throw std::invalid_argument("mencius::Replica: id not in set");
  rank_ = static_cast<std::size_t>(it - replicas_.begin());
  next_own_index_ = rank_;
  obs_proposals_ = obs_sink().counter("mencius.proposals");
  obs_accepts_ = obs_sink().counter("mencius.accepts");
  obs_commits_ = obs_sink().counter("mencius.commits");
  obs_skips_ = obs_sink().counter("mencius.skips");
  obs_executed_ = obs_sink().counter("mencius.executed");
}

void Replica::start() {
  heartbeat_.start(context(), heartbeat_interval_, heartbeat_interval_,
                   [this] { broadcast_heartbeat(); });
}

std::uint64_t Replica::next_owned_at_or_after(std::size_t rank, std::uint64_t at_least) const {
  const auto n = static_cast<std::uint64_t>(replicas_.size());
  const std::uint64_t rem = at_least % n;
  const auto target = static_cast<std::uint64_t>(rank);
  return at_least + (target >= rem ? target - rem : n - rem + target);
}

void Replica::on_packet(const net::Packet& packet) {
  switch (wire::peek_type(packet.payload)) {
    case wire::MessageType::kMenciusClientRequest:
      handle_client_request(packet);
      break;
    case wire::MessageType::kMenciusAccept:
      handle_accept(packet.src, packet.payload);
      break;
    case wire::MessageType::kMenciusAcceptReply:
      handle_accept_reply(packet.src, packet.payload);
      break;
    case wire::MessageType::kMenciusCommit:
      handle_commit(packet.src, packet.payload);
      break;
    case wire::MessageType::kMenciusCommitAck:
      handle_commit_ack(packet.src, packet.payload);
      break;
    case wire::MessageType::kMenciusSkip:
      handle_skip(packet.src, packet.payload);
      break;
    case wire::MessageType::kCatchupRequest:
      handle_catchup_request(packet.src, packet.payload);
      break;
    case wire::MessageType::kCatchupReply:
      handle_catchup_reply(packet.payload);
      break;
    default:
      break;
  }
}

void Replica::enable_durability(recovery::DurableStore& store) {
  persistor_.bind(store, id(), [this](Duration delay, std::function<void()> fn) {
    after(delay, std::move(fn));
  });
}

void Replica::handle_client_request(const net::Packet& packet) {
  if (catching_up_) return;  // not rejoined yet; the client's retry will land
  const auto req = wire::decode_message<ClientRequest>(packet.payload);
  const std::uint64_t p = next_own_index_;
  next_own_index_ = p + replicas_.size();
  ++owned_proposals_;
  obs_proposals_.inc();

  log_.accept(p, req.command);
  pending_.emplace(p, Pending{{}, {}, req.command, req.command.id.client, false, true_now()});
  owned_request_.emplace(p, req.command.id);
  if (const obs::SpanId s = open_wait_span("mencius_quorum_wait"); s != 0) {
    quorum_spans_[p] = s;
  }

  persistor_.persist(
      recovery::RecordTag::kAccepted,
      [&] {
        wire::ByteWriter w;
        w.varint(p);
        req.command.encode(w);
        w.boolean(true);  // own instance: carries the requesting client
        w.node_id(req.command.id.client);
        return w.take();
      },
      [this, p, command = req.command] {
        for (NodeId r : replicas_) {
          if (r != id()) send(r, Accept{p, command, safe_skip_frontier(r)});
        }
      });
}

void Replica::handle_accept(NodeId from, const wire::Payload& payload) {
  const auto msg = wire::decode_message<Accept>(payload);
  const std::size_t owner = owner_of(msg.index);
  apply_skip_frontier(owner, msg.skip_through);
  if (!log_.is_committed(msg.index)) log_.accept(msg.index, msg.command);
  obs_accepts_.inc();
  // Receiving a proposal for index p implicitly promises to never use our
  // own unused instances below p.
  advance_own_lane(msg.index);
  // The AcceptReply is the externalized promise: the owner will count this
  // instance as safely replicated here (and advance skip frontiers past it
  // towards us), so the accept must be durable before the reply leaves.
  persistor_.persist(
      recovery::RecordTag::kAccepted,
      [&] {
        wire::ByteWriter w;
        w.varint(msg.index);
        msg.command.encode(w);
        w.boolean(false);
        return w.take();
      },
      [this, from, index = msg.index] {
        send(from, AcceptReply{index, safe_skip_frontier(from)});
      });
  execute_ready();
}

void Replica::handle_accept_reply(NodeId from, const wire::Payload& payload) {
  const auto msg = wire::decode_message<AcceptReply>(payload);
  const auto from_it = std::find(replicas_.begin(), replicas_.end(), from);
  if (from_it != replicas_.end()) {
    apply_skip_frontier(static_cast<std::size_t>(from_it - replicas_.begin()),
                        msg.skip_through);
  }
  auto it = pending_.find(msg.index);
  if (it != pending_.end() && !it->second.committed) {
    auto& acked = it->second.acked;
    if (std::find(acked.begin(), acked.end(), from) == acked.end()) acked.push_back(from);
    if (acked.size() + 1 >= measure::majority(replicas_.size())) {
      it->second.committed = true;
      it->second.last_sent = true_now();
      const auto span_it = quorum_spans_.find(msg.index);
      if (span_it != quorum_spans_.end()) {
        close_wait_span(span_it->second);
        quorum_spans_.erase(span_it);
      }
      log_.commit(msg.index);
      obs_commits_.inc();
      // Persist the commit decision before it is externalized — by the
      // Commit broadcast, and by the ClientReply that owner execution (in
      // the continuation's execute_ready) may send.
      persistor_.persist(
          recovery::RecordTag::kCommitted,
          [&] {
            wire::ByteWriter w;
            w.varint(msg.index);
            it->second.command.encode(w);
            return w.take();
          },
          [this, index = msg.index, command = it->second.command] {
            // The Pending entry stays until every peer CommitAcks: the owner
            // retransmits the Commit to the stragglers from the heartbeat,
            // so a follower that was crashed or partitioned at commit time
            // still learns the command instead of stalling its execution
            // frontier.
            for (NodeId r : replicas_) {
              if (r != id()) send(r, Commit{index, command});
            }
            execute_ready();
          });
      return;
    }
  }
  execute_ready();
}

void Replica::handle_commit(NodeId from, const wire::Payload& payload) {
  const auto msg = wire::decode_message<Commit>(payload);
  // The command rides on the Commit, so a replica that missed the Accept
  // (dropped while it was crashed or partitioned) still materializes the
  // entry; a hole here would stall its execution frontier forever.
  log_.commit(msg.index, msg.command);
  // The CommitAck releases the owner from retransmitting this commit to us
  // — forget it after acking and the hole is permanent — so the commit must
  // be durable before the ack leaves.
  persistor_.persist(
      recovery::RecordTag::kCommitted,
      [&] {
        wire::ByteWriter w;
        w.varint(msg.index);
        msg.command.encode(w);
        return w.take();
      },
      [this, from, index = msg.index] { send(from, CommitAck{index}); });
  execute_ready();
}

void Replica::handle_commit_ack(NodeId from, const wire::Payload& payload) {
  const auto msg = wire::decode_message<CommitAck>(payload);
  const auto it = pending_.find(msg.index);
  if (it == pending_.end() || !it->second.committed) return;
  auto& acked = it->second.commit_acked;
  if (std::find(acked.begin(), acked.end(), from) == acked.end()) acked.push_back(from);
  if (acked.size() + 1 >= replicas_.size()) pending_.erase(it);
}

void Replica::handle_skip(NodeId from, const wire::Payload& payload) {
  const auto msg = wire::decode_message<Skip>(payload);
  const auto from_it = std::find(replicas_.begin(), replicas_.end(), from);
  if (from_it == replicas_.end()) return;
  apply_skip_frontier(static_cast<std::size_t>(from_it - replicas_.begin()),
                      msg.skip_through);
  execute_ready();
}

void Replica::apply_skip_frontier(std::size_t owner_rank, std::uint64_t frontier) {
  if (owner_rank >= replicas_.size()) return;
  std::uint64_t& seen = skip_frontier_seen_[owner_rank];
  if (frontier <= seen) return;
  // Walk the owner's instances in [seen, frontier); FIFO channels guarantee
  // every instance the owner actually used has already been accepted here,
  // so the empty ones are no-ops.
  for (std::uint64_t idx = next_owned_at_or_after(owner_rank, seen); idx < frontier;
       idx += replicas_.size()) {
    if (log_.entry(idx) == nullptr) {
      log_.skip(idx, idx);
      obs_skips_.inc();
    }
  }
  seen = frontier;
}

std::uint64_t Replica::safe_skip_frontier(NodeId peer) const {
  for (const auto& [index, p] : pending_) {
    const bool peer_has_entry =
        std::find(p.acked.begin(), p.acked.end(), peer) != p.acked.end() ||
        std::find(p.commit_acked.begin(), p.commit_acked.end(), peer) !=
            p.commit_acked.end();
    if (!peer_has_entry) return index;  // pending_ is index-ordered
  }
  return next_own_index_;
}

void Replica::advance_own_lane(std::uint64_t index) {
  while (next_own_index_ < index) {
    log_.skip(next_own_index_, next_own_index_);
    next_own_index_ += replicas_.size();
  }
}

void Replica::restart() {
  persistor_.begin_restart();
  for (auto& [index, span] : quorum_spans_) {
    (void)index;
    close_wait_span(span);
  }
  quorum_spans_.clear();
  log_ = log::IndexLog{};
  store_ = sm::KvStore{};
  pending_.clear();
  owned_request_.clear();
  next_own_index_ = rank_;
  skip_frontier_seen_.assign(replicas_.size(), 0);
  owned_proposals_ = 0;
  catching_up_ = true;
  recovery_started_at_ = true_now();
  if (obs_sink().tracing()) {
    obs_sink().record(obs::TraceEvent{
        .at = true_now(),
        .kind = obs::EventKind::kRecoveryStart,
        .node = id(),
        .value = static_cast<std::int64_t>(persistor_.epoch())});
  }

  persistor_.replay([this](const recovery::DurableRecord& rec) {
    wire::ByteReader r(rec.body);
    switch (rec.tag) {
      case recovery::RecordTag::kAccepted: {
        const std::uint64_t index = r.varint();
        sm::Command cmd = sm::Command::decode(r);
        const bool own = r.boolean();
        if (own) {
          const NodeId client = r.node_id();
          if (!log_.is_committed(index)) log_.accept(index, cmd);
          pending_.insert_or_assign(index,
                                    Pending{{}, {}, cmd, client, false, true_now()});
          owned_request_.insert_or_assign(index, cmd.id);
          ++owned_proposals_;
          next_own_index_ =
              std::max(next_own_index_, index + replicas_.size());
        } else {
          if (!log_.is_committed(index)) log_.accept(index, std::move(cmd));
          // Restore the implicit own-lane promise the accept made.
          advance_own_lane(index);
        }
        break;
      }
      case recovery::RecordTag::kCommitted: {
        const std::uint64_t index = r.varint();
        sm::Command cmd = sm::Command::decode(r);
        log_.commit(index, std::move(cmd));
        if (owner_of(index) == rank_) {
          const auto it = pending_.find(index);
          if (it != pending_.end()) {
            it->second.committed = true;
            it->second.acked.clear();
            it->second.commit_acked.clear();
          }
        } else {
          advance_own_lane(index);
        }
        break;
      }
      default:
        break;  // Mencius writes no other tags
    }
  });
  execute_ready();

  // All quorum/ack tallies died with the crash: immediately re-send every
  // pending own instance (Accept if uncommitted, Commit otherwise). Peers
  // re-ack idempotently; without this the execution frontiers of the whole
  // cluster could stall on an orphaned instance for a retransmit period.
  for (auto& [index, p] : pending_) {
    p.last_sent = true_now();
    for (NodeId r : replicas_) {
      if (r == id()) continue;
      if (p.committed) {
        send(r, Commit{index, p.command});
      } else {
        send(r, Accept{index, p.command, safe_skip_frontier(r)});
      }
    }
  }
  send_catchup_requests();
}

void Replica::send_catchup_requests() {
  if (!catching_up_) return;
  if (replicas_.size() <= 1) {
    finish_rejoin();
    return;
  }
  const recovery::CatchupRequest req{persistor_.epoch(), store_.applied_count()};
  for (NodeId r : replicas_) {
    if (r != id()) send(r, req);
  }
  after(kCatchupRetryInterval, [this, epoch = persistor_.epoch()] {
    if (catching_up_ && epoch == persistor_.epoch()) send_catchup_requests();
  });
}

void Replica::handle_catchup_request(NodeId from, const wire::Payload& payload) {
  // Always served, even mid-catch-up, so simultaneous recoveries converge.
  const auto req = wire::decode_message<recovery::CatchupRequest>(payload);
  recovery::CatchupReply reply;
  reply.epoch = req.epoch;
  reply.applied = store_.applied_count();
  reply.frontier = static_cast<std::int64_t>(log_.execution_frontier());
  reply.snapshot.reserve(store_.items().size());
  for (const auto& [key, value] : store_.items()) {
    reply.snapshot.push_back(recovery::KvEntry{key, value});
  }
  for (auto& [index, command] : log_.committed_unexecuted()) {
    reply.entries.push_back(recovery::CatchupEntry{
        static_cast<std::int64_t>(index), 0, std::move(command), {}});
  }
  send(from, reply);
}

void Replica::handle_catchup_reply(const wire::Payload& payload) {
  const auto msg = wire::decode_message<recovery::CatchupReply>(payload);
  if (msg.epoch != persistor_.epoch()) return;  // reply to an older incarnation
  if (msg.frontier > static_cast<std::int64_t>(log_.execution_frontier())) {
    std::unordered_map<std::string, std::string> items;
    items.reserve(msg.snapshot.size());
    for (const auto& e : msg.snapshot) items.emplace(e.key, e.value);
    store_.install_snapshot(std::move(items), msg.applied);
    log_.fast_forward(static_cast<std::uint64_t>(msg.frontier));
    next_own_index_ = std::max(
        next_own_index_,
        next_owned_at_or_after(rank_, static_cast<std::uint64_t>(msg.frontier)));
    persistor_.note_catchup_install(payload.size(), true_now() - recovery_started_at_);
    // Own instances the snapshot covers were executed cluster-wide: their
    // clients can be answered now; log execution will never reach them.
    for (auto it = owned_request_.begin(); it != owned_request_.end();) {
      if (it->first < static_cast<std::uint64_t>(msg.frontier)) {
        send(it->second.client, ClientReply{it->second});
        pending_.erase(it->first);
        it = owned_request_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (const auto& e : msg.entries) {
    if (e.pos < static_cast<std::int64_t>(log_.execution_frontier())) continue;
    log_.commit(static_cast<std::uint64_t>(e.pos), e.command);
  }
  execute_ready();
  finish_rejoin();
}

void Replica::finish_rejoin() {
  if (!catching_up_) return;
  catching_up_ = false;
  const Duration took = true_now() - recovery_started_at_;
  persistor_.note_rejoin(took);
  if (obs_sink().tracing()) {
    obs_sink().record(obs::TraceEvent{.at = true_now(),
                                      .kind = obs::EventKind::kRecoveryDone,
                                      .node = id(),
                                      .value = took.nanos()});
  }
}

void Replica::execute_ready() {
  for (auto& [index, command] : log_.drain_executable()) {
    store_.apply(command);
    obs_executed_.inc();
    if (exec_hook_) exec_hook_(command.id, true_now());
    const auto it = owned_request_.find(index);
    if (it != owned_request_.end()) {
      send(it->second.client, ClientReply{it->second});
      owned_request_.erase(it);
    }
  }
}

void Replica::broadcast_heartbeat() {
  for (NodeId r : replicas_) {
    if (r != id()) send(r, Skip{safe_skip_frontier(r)});
  }
  // Retransmit lost protocol steps. The original Accepts, their replies,
  // or the Commit broadcast may have been dropped while a peer (or this
  // replica) was crashed or partitioned, and Mencius's total commit order
  // means one orphaned instance stalls every execution frontier in the
  // cluster forever — so the owner keeps re-sending until each peer has
  // acknowledged the Accept (uncommitted) or the Commit (committed).
  for (auto& [index, p] : pending_) {
    if (true_now() - p.last_sent < kAcceptRetransmitAfter) continue;
    p.last_sent = true_now();
    for (NodeId r : replicas_) {
      if (r == id()) continue;
      if (!p.committed) {
        if (std::find(p.acked.begin(), p.acked.end(), r) == p.acked.end()) {
          send(r, Accept{index, p.command, safe_skip_frontier(r)});
        }
      } else if (std::find(p.commit_acked.begin(), p.commit_acked.end(), r) ==
                 p.commit_acked.end()) {
        send(r, Commit{index, p.command});
      }
    }
  }
}

}  // namespace domino::mencius
