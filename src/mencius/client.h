// Mencius client: sends every request to a pre-configured coordinator
// replica (the closest one, per the paper's Section 7.1: "a client always
// sends its requests to the closest replica that is pre-configured based on
// our network delay measurements").
#pragma once

#include "mencius/messages.h"
#include "rpc/client_base.h"

namespace domino::mencius {

class Client : public rpc::ClientBase {
 public:
  Client(NodeId id, std::size_t dc, net::Network& network, NodeId coordinator,
         sim::LocalClock clock = sim::LocalClock{})
      : rpc::ClientBase(id, dc, network, clock), coordinator_(coordinator) {}

  void set_coordinator(NodeId coordinator) { coordinator_ = coordinator; }
  [[nodiscard]] NodeId coordinator() const { return coordinator_; }

 protected:
  void propose(const sm::Command& command) override {
    send(coordinator_, ClientRequest{command});
  }

  void on_packet(const net::Packet& packet) override {
    if (wire::peek_type(packet.payload) != wire::MessageType::kMenciusClientReply) return;
    const auto reply = wire::decode_message<ClientReply>(packet.payload);
    handle_committed(reply.request);
  }

 private:
  NodeId coordinator_;
};

}  // namespace domino::mencius
