#include "net/latency_model.h"

#include <algorithm>
#include <cassert>

namespace domino::net {
namespace {

Duration jitter_sample(const JitterParams& p, Rng& rng) {
  Duration jitter = milliseconds_d(rng.lognormal(p.jitter_mu_ms, p.jitter_sigma));
  if (p.spike_prob > 0 && rng.chance(p.spike_prob)) {
    jitter += Duration{static_cast<std::int64_t>(
        rng.exponential(static_cast<double>(p.spike_mean.nanos())))};
  }
  return jitter;
}

}  // namespace

Duration JitterLatency::sample(TimePoint, Rng& rng) { return base_ + jitter_sample(p_, rng); }

ScheduledLatency::ScheduledLatency(std::vector<Step> steps, JitterParams params)
    : steps_(std::move(steps)), p_(params) {
  assert(!steps_.empty());
  assert(std::is_sorted(steps_.begin(), steps_.end(),
                        [](const Step& a, const Step& b) { return a.from < b.from; }));
}

Duration ScheduledLatency::base(TimePoint now) const {
  Duration current = steps_.front().base;
  for (const Step& s : steps_) {
    if (s.from <= now) current = s.base;
    else break;
  }
  return current;
}

Duration ScheduledLatency::sample(TimePoint now, Rng& rng) {
  return base(now) + jitter_sample(p_, rng);
}

}  // namespace domino::net
