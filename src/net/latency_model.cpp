#include "net/latency_model.h"

#include <algorithm>
#include <cassert>

namespace domino::net {
namespace {

Duration jitter_sample(const JitterParams& p, Rng& rng) {
  Duration jitter = milliseconds_d(rng.lognormal(p.jitter_mu_ms, p.jitter_sigma));
  if (p.spike_prob > 0 && rng.chance(p.spike_prob)) {
    jitter += Duration{static_cast<std::int64_t>(
        rng.exponential(static_cast<double>(p.spike_mean.nanos())))};
  }
  return jitter;
}

}  // namespace

Duration JitterLatency::sample(TimePoint, Rng& rng) { return base_ + jitter_sample(p_, rng); }

ScheduledLatency::ScheduledLatency(std::vector<Step> steps, JitterParams params)
    : steps_(std::move(steps)), p_(params) {
  assert(!steps_.empty());
  assert(std::is_sorted(steps_.begin(), steps_.end(),
                        [](const Step& a, const Step& b) { return a.from < b.from; }));
}

Duration ScheduledLatency::base(TimePoint now) const {
  // Binary search for the last step with from <= now; before the first
  // step the schedule has not started yet, so the first base applies.
  const auto it = std::upper_bound(
      steps_.begin(), steps_.end(), now,
      [](TimePoint t, const Step& s) { return t < s.from; });
  if (it == steps_.begin()) return steps_.front().base;
  return std::prev(it)->base;
}

Duration ScheduledLatency::sample(TimePoint now, Rng& rng) {
  return base(now) + jitter_sample(p_, rng);
}

std::vector<ScheduledLatency::Step> rtt_schedule_steps(const std::vector<RttStep>& steps) {
  std::vector<ScheduledLatency::Step> out;
  out.reserve(steps.size());
  for (const RttStep& s : steps) {
    out.push_back({TimePoint::epoch() + s.at, s.rtt / 2});
  }
  return out;
}

}  // namespace domino::net
