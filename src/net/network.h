// Simulated wide-area network.
//
// The Network owns:
//   - the node registry (which datacenter each node lives in, and its
//     receive callback),
//   - one LatencyModel + RNG stream per directed datacenter pair,
//   - per node-pair FIFO channels (a message never overtakes an earlier
//     message on the same (src, dst) channel — the TCP ordering Domino
//     requires, Section 5.1),
//   - optional capacity modelling: per-node receive service time (CPU cost
//     per message) and egress bandwidth, used by the peak-throughput
//     experiment (Figure 13),
//   - a FaultInjector (net/fault.h): the single drop/deform decision point
//     for crash failures, directed link partitions, degradation epochs and
//     route changes.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "common/rng.h"
#include "common/time.h"
#include "net/fault.h"
#include "net/latency_model.h"
#include "net/packet.h"
#include "net/topology.h"
#include "obs/sink.h"
#include "sim/simulator.h"
#include "wire/codec.h"

namespace domino::net {

/// Wire-level framing overhead charged per packet on top of the payload,
/// roughly TCP/IP + HTTP2 framing of a small gRPC call.
inline constexpr std::size_t kFrameOverheadBytes = 64;

class Network {
 public:
  using Receiver = std::function<void(const Packet&)>;

  Network(sim::Simulator& simulator, Topology topology, std::uint64_t seed);

  /// Place every directed datacenter link on a JitterLatency model with
  /// base = RTT/2 and the given jitter parameters.
  void use_default_links(const JitterParams& params);

  /// Override the model for one directed datacenter pair.
  void set_link_model(std::size_t from_dc, std::size_t to_dc,
                      std::unique_ptr<LatencyModel> model);

  /// Install a symmetric route-change schedule between datacenters `a` and
  /// `b`: each step sets both directions to ScheduledLatency with base =
  /// rtt/2 — the Figure 12 traffic-control idiom, shared so benches and
  /// tests never hand-roll step vectors.
  void set_scheduled_rtt_link(std::size_t a, std::size_t b,
                              const std::vector<RttStep>& steps,
                              const JitterParams& params);

  [[nodiscard]] LatencyModel& link_model(std::size_t from_dc, std::size_t to_dc);

  /// Register a node in a datacenter. The receiver is invoked (through the
  /// simulator) when a packet is delivered.
  void register_node(NodeId id, std::size_t dc, Receiver receiver);

  [[nodiscard]] std::size_t dc_of(NodeId id) const;
  [[nodiscard]] const Topology& topology() const { return topology_; }

  /// Send `payload` from `src` to `dst`. Self-sends are delivered with the
  /// intra-datacenter delay. Packets to/from crashed nodes are dropped.
  void send(NodeId src, NodeId dst, wire::Payload payload);

  /// Capacity modelling (all default off = infinitely fast).
  void set_receive_service_time(NodeId id, Duration per_message);
  void set_egress_bandwidth_bps(NodeId id, double bits_per_second);

  /// Crash-failure injection: a crashed node neither sends nor receives.
  /// Recovery resets the node's FIFO channel bookkeeping, so post-recovery
  /// packets are never delayed behind deliveries from before the crash.
  void crash(NodeId id) { fault_.crash(id); }
  void recover(NodeId id) { fault_.recover(id); }
  [[nodiscard]] bool is_crashed(NodeId id) const { return fault_.is_crashed(id); }

  /// The fault-injection state machine: partitions, degradation epochs,
  /// route changes, per-reason drop counters, and the fault/drop digest.
  [[nodiscard]] FaultInjector& fault() { return fault_; }
  [[nodiscard]] const FaultInjector& fault() const { return fault_; }

  /// Schedule a whole fault timeline on the simulator (declarative form
  /// used by harness::Scenario).
  void install_faults(const FaultSchedule& schedule) { fault_.install(schedule); }

  /// Amnesiac-restart hook: runs on every recover, after the FIFO channel
  /// reset. The harness wipes the recovered replica's volatile state here
  /// so it must replay its durable image and catch up from peers.
  void set_restart_hook(std::function<void(NodeId)> hook) {
    fault_.set_restart_hook(std::move(hook));
  }

  // Traffic statistics.
  [[nodiscard]] std::uint64_t packets_sent() const { return packets_sent_; }
  [[nodiscard]] std::uint64_t bytes_sent() const { return bytes_sent_; }
  [[nodiscard]] std::uint64_t packets_dropped() const { return packets_dropped_; }
  [[nodiscard]] std::uint64_t packets_dropped(DropReason reason) const {
    return fault_.drops(reason);
  }

  /// Attach an observability sink. Registers per-directed-datacenter-link
  /// message/byte counters and delivery-delay histograms, traces every
  /// packet send/deliver/drop, and is inherited by nodes constructed over
  /// this network (rpc::SimContext forwards it). Bind before registering
  /// nodes so their handles resolve.
  void bind_obs(const obs::Sink& sink);
  [[nodiscard]] const obs::Sink& obs_sink() const { return obs_; }

  [[nodiscard]] sim::Simulator& simulator() { return sim_; }

 private:
  struct NodeInfo {
    std::size_t dc = 0;
    Receiver receiver;
    Duration rx_service = Duration::zero();  // per-message processing time
    double egress_bps = 0.0;                 // 0 = unlimited
    TimePoint rx_busy_until = TimePoint::epoch();
    TimePoint tx_busy_until = TimePoint::epoch();
  };

  struct ChannelKey {
    NodeId src, dst;
    bool operator<(const ChannelKey& o) const {
      if (src != o.src) return src < o.src;
      return dst < o.dst;
    }
  };

  struct LinkObs {
    obs::CounterHandle messages;
    obs::CounterHandle bytes;
    obs::HistogramHandle delay_ns;
  };

  NodeInfo& info(NodeId id);
  [[nodiscard]] const NodeInfo& info(NodeId id) const;
  void count_drop(DropReason reason, NodeId src, NodeId dst, std::size_t bytes);
  /// Forget FIFO delivery state on every channel touching `id` (called on
  /// recovery; pre-crash deliveries must not delay post-recovery traffic).
  void reset_channels_of(NodeId id);

  sim::Simulator& sim_;
  Topology topology_;
  Rng rng_;
  std::vector<std::vector<std::unique_ptr<LatencyModel>>> links_;  // [from][to]
  std::vector<std::vector<Rng>> link_rngs_;
  std::unordered_map<NodeId, NodeInfo> nodes_;
  std::map<ChannelKey, TimePoint> channel_last_delivery_;
  FaultInjector fault_;

  std::uint64_t packets_sent_ = 0;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t packets_dropped_ = 0;

  obs::Sink obs_;
  std::vector<std::vector<LinkObs>> link_obs_;  // [from_dc][to_dc]
  obs::CounterHandle obs_dropped_;
};

}  // namespace domino::net
