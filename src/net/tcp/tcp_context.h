// rpc::Context implementation over real TCP sockets.
//
// One TcpContext serves all nodes hosted by the current process (a
// production deployment hosts one replica or client per process; tests and
// demos host several on one event loop). Each registered node gets its own
// TcpHost/listen socket; the shared address book tells every host where its
// peers live.
#pragma once

#include <memory>
#include <unordered_map>

#include "net/tcp/tcp_host.h"
#include "rpc/context.h"

namespace domino::net::tcp {

class TcpContext final : public rpc::Context {
 public:
  explicit TcpContext(EventLoop& loop) : loop_(loop) {}

  /// Declare a node hosted by THIS process; binds its listen socket
  /// immediately (port 0 = ephemeral). Must precede register_node(id,...).
  /// Returns the bound port.
  std::uint16_t host_node(NodeId id, const Endpoint& listen_on);

  /// Record a peer's address (local or remote); applied to every local host.
  void set_peer_address(NodeId peer, const Endpoint& endpoint);

  /// Port a locally hosted node is listening on.
  [[nodiscard]] std::uint16_t port_of(NodeId id) const;

  // ---- rpc::Context ----
  void send(NodeId src, NodeId dst, wire::Payload payload) override;
  void schedule(Duration delay, std::function<void()> fn) override {
    loop_.schedule(delay, std::move(fn));
  }
  [[nodiscard]] TimePoint now() const override { return loop_.now(); }
  void register_node(NodeId id, std::size_t dc, Receiver receiver) override;

  [[nodiscard]] EventLoop& loop() { return loop_; }

 private:
  EventLoop& loop_;
  std::unordered_map<NodeId, std::unique_ptr<TcpHost>> hosts_;
  std::unordered_map<NodeId, Endpoint> address_book_;
};

}  // namespace domino::net::tcp
