#include "net/tcp/frame_connection.h"

#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace domino::net::tcp {

FrameConnection::FrameConnection(EventLoop& loop, int fd, bool connected)
    : loop_(loop), fd_(fd), connected_(connected) {}

FrameConnection::~FrameConnection() { close(); }

void FrameConnection::register_with_loop() {
  want_write_ = !connected_;
  loop_.add_fd(fd_, EPOLLIN | (want_write_ ? EPOLLOUT : 0u),
               [this](std::uint32_t events) { on_events(events); });
}

void FrameConnection::close() {
  if (fd_ < 0) return;
  loop_.remove_fd(fd_);
  ::close(fd_);
  fd_ = -1;
  if (on_close_) {
    // Move out first: the callback may destroy this connection object.
    CloseCallback cb = std::move(on_close_);
    on_close_ = nullptr;
    cb();
  }
}

std::size_t FrameConnection::queued_bytes() const { return write_buffer_.size(); }

void FrameConnection::send_frame(const wire::Payload& payload) {
  if (fd_ < 0) return;
  if (payload.size() > kMaxFrameBytes) return;  // refuse absurd frames
  const auto len = static_cast<std::uint32_t>(payload.size());
  for (int i = 0; i < 4; ++i) {
    write_buffer_.push_back(static_cast<std::uint8_t>(len >> (8 * i)));
  }
  write_buffer_.insert(write_buffer_.end(), payload.begin(), payload.end());
  ++frames_sent_;
  if (connected_) {
    handle_writable();  // opportunistic immediate write
  } else {
    update_interest();  // flushed once the connect completes
  }
}

void FrameConnection::on_events(std::uint32_t events) {
  if (!connected_ && (events & (EPOLLOUT | EPOLLERR | EPOLLHUP))) {
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd_, SOL_SOCKET, SO_ERROR, &err, &len) < 0 || err != 0) {
      close();
      return;
    }
    connected_ = true;
  }
  if (events & (EPOLLHUP | EPOLLERR)) {
    close();
    return;
  }
  if (events & EPOLLIN) handle_readable();
  if (fd_ >= 0 && (events & EPOLLOUT)) handle_writable();
}

void FrameConnection::handle_readable() {
  std::uint8_t chunk[16384];
  for (;;) {
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n > 0) {
      read_buffer_.insert(read_buffer_.end(), chunk, chunk + n);
      continue;
    }
    if (n == 0) {  // orderly shutdown by the peer
      close();
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    close();
    return;
  }
  // Deliver complete frames.
  std::size_t offset = 0;
  while (read_buffer_.size() - offset >= 4) {
    std::uint32_t len = 0;
    for (int i = 0; i < 4; ++i) {
      len |= static_cast<std::uint32_t>(read_buffer_[offset + i]) << (8 * i);
    }
    if (len > kMaxFrameBytes) {  // corrupt peer
      close();
      return;
    }
    if (read_buffer_.size() - offset - 4 < len) break;
    wire::Payload frame(read_buffer_.begin() + static_cast<std::ptrdiff_t>(offset + 4),
                        read_buffer_.begin() + static_cast<std::ptrdiff_t>(offset + 4 + len));
    offset += 4 + len;
    ++frames_received_;
    if (on_frame_) on_frame_(std::move(frame));
    if (fd_ < 0) return;  // callback closed us
  }
  if (offset > 0) {
    read_buffer_.erase(read_buffer_.begin(),
                       read_buffer_.begin() + static_cast<std::ptrdiff_t>(offset));
  }
}

void FrameConnection::handle_writable() {
  while (!write_buffer_.empty()) {
    // deque is not contiguous; write the first contiguous run.
    std::uint8_t chunk[16384];
    const std::size_t n = std::min(write_buffer_.size(), sizeof(chunk));
    std::copy(write_buffer_.begin(),
              write_buffer_.begin() + static_cast<std::ptrdiff_t>(n), chunk);
    const ssize_t written = ::send(fd_, chunk, n, MSG_NOSIGNAL);
    if (written > 0) {
      write_buffer_.erase(write_buffer_.begin(), write_buffer_.begin() + written);
      continue;
    }
    if (written < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (written < 0 && errno == EINTR) continue;
    close();
    return;
  }
  update_interest();
}

void FrameConnection::update_interest() {
  if (fd_ < 0) return;
  const bool need_write = !connected_ || !write_buffer_.empty();
  if (need_write == want_write_) return;
  want_write_ = need_write;
  loop_.modify_fd(fd_, EPOLLIN | (need_write ? EPOLLOUT : 0u));
}

}  // namespace domino::net::tcp
