// Length-prefixed message framing over a non-blocking TCP socket.
//
// Frame format: 4-byte little-endian payload length, then the payload (a
// wire::Payload message envelope). Handles partial reads/writes and
// enforces a maximum frame size so a corrupt peer cannot trigger unbounded
// buffering.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "net/tcp/event_loop.h"
#include "wire/codec.h"

namespace domino::net::tcp {

class FrameConnection {
 public:
  using FrameCallback = std::function<void(wire::Payload)>;
  using CloseCallback = std::function<void()>;

  static constexpr std::size_t kMaxFrameBytes = 16 * 1024 * 1024;

  /// Takes ownership of `fd` (must already be non-blocking). Pass
  /// `connected = false` for a socket with a connect() still in progress;
  /// the connection completes (or fails) on the first EPOLLOUT.
  FrameConnection(EventLoop& loop, int fd, bool connected = true);
  ~FrameConnection();
  FrameConnection(const FrameConnection&) = delete;
  FrameConnection& operator=(const FrameConnection&) = delete;

  void set_frame_callback(FrameCallback cb) { on_frame_ = std::move(cb); }
  void set_close_callback(CloseCallback cb) { on_close_ = std::move(cb); }

  /// Register the socket with the event loop; call once after wiring the
  /// callbacks.
  void register_with_loop();

  /// Queue a frame for sending (writes immediately if the socket allows).
  void send_frame(const wire::Payload& payload);

  /// Close and unregister. Safe to call twice. on_close fires once.
  void close();

  [[nodiscard]] bool closed() const { return fd_ < 0; }
  [[nodiscard]] int fd() const { return fd_; }
  [[nodiscard]] std::size_t queued_bytes() const;
  [[nodiscard]] std::uint64_t frames_received() const { return frames_received_; }
  [[nodiscard]] std::uint64_t frames_sent() const { return frames_sent_; }

 private:
  void on_events(std::uint32_t events);
  void handle_readable();
  void handle_writable();
  void update_interest();

  EventLoop& loop_;
  int fd_;
  bool connected_;
  bool want_write_ = false;
  std::vector<std::uint8_t> read_buffer_;
  std::deque<std::uint8_t> write_buffer_;
  FrameCallback on_frame_;
  CloseCallback on_close_;
  std::uint64_t frames_received_ = 0;
  std::uint64_t frames_sent_ = 0;
};

}  // namespace domino::net::tcp
