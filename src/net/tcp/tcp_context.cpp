#include "net/tcp/tcp_context.h"

#include <stdexcept>

namespace domino::net::tcp {

std::uint16_t TcpContext::host_node(NodeId id, const Endpoint& listen_on) {
  if (hosts_.contains(id)) throw std::invalid_argument("TcpContext: node already hosted");
  auto host = std::make_unique<TcpHost>(loop_, id, listen_on);
  const std::uint16_t port = host->port();
  // Seed the new host with every known peer, and tell existing hosts about
  // this one (loopback multi-node setups).
  for (const auto& [peer, ep] : address_book_) host->add_peer(peer, ep);
  set_peer_address(id, Endpoint{listen_on.host, port});
  hosts_.emplace(id, std::move(host));
  return port;
}

void TcpContext::set_peer_address(NodeId peer, const Endpoint& endpoint) {
  address_book_[peer] = endpoint;
  for (auto& [id, host] : hosts_) {
    if (id != peer) host->add_peer(peer, endpoint);
  }
}

std::uint16_t TcpContext::port_of(NodeId id) const {
  auto it = hosts_.find(id);
  if (it == hosts_.end()) throw std::out_of_range("TcpContext: node not hosted here");
  return it->second->port();
}

void TcpContext::send(NodeId src, NodeId dst, wire::Payload payload) {
  auto it = hosts_.find(src);
  if (it == hosts_.end()) return;  // source not hosted here
  if (src == dst) {
    // Loopback to self: deliver through the loop to preserve asynchrony.
    TcpHost* host = it->second.get();
    loop_.schedule(Duration::zero(), [host, src, payload = std::move(payload)]() mutable {
      host->deliver_local(src, std::move(payload));
    });
    return;
  }
  it->second->send(dst, payload);
}

void TcpContext::register_node(NodeId id, std::size_t /*dc*/, Receiver receiver) {
  auto it = hosts_.find(id);
  if (it == hosts_.end()) {
    throw std::logic_error("TcpContext: call host_node() before register_node()");
  }
  TcpHost* host = it->second.get();
  host->set_receive_callback(
      [this, id, receiver = std::move(receiver)](NodeId from, wire::Payload payload) {
        net::Packet packet;
        packet.src = from;
        packet.dst = id;
        packet.sent_at = loop_.now();  // receive time; senders' clocks differ
        packet.payload = std::move(payload);
        receiver(packet);
      });
}

}  // namespace domino::net::tcp
