// A small epoll-based event loop for the real-socket transport.
//
// The simulator covers the evaluation; this loop (plus FrameConnection and
// TcpHost) lets the same wire-format messages run over actual TCP sockets —
// the deployment path a production user of the library would take.
//
// Single-threaded: all callbacks run on the thread calling run()/poll().
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "common/time.h"

namespace domino::net::tcp {

class EventLoop {
 public:
  using FdCallback = std::function<void(std::uint32_t epoll_events)>;
  using TimerCallback = std::function<void()>;

  EventLoop();
  ~EventLoop();
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Register `fd` for the given epoll event mask (EPOLLIN/EPOLLOUT/...).
  void add_fd(int fd, std::uint32_t events, FdCallback callback);
  void modify_fd(int fd, std::uint32_t events);
  void remove_fd(int fd);

  /// One-shot timer relative to now (steady clock).
  void schedule(Duration delay, TimerCallback callback);

  /// Monotonic time since the loop was created.
  [[nodiscard]] TimePoint now() const;

  /// Process events until stop() is called.
  void run();

  /// Process at most one epoll wait (with `max_wait` timeout); returns the
  /// number of fd events handled. Expired timers always run.
  int poll(Duration max_wait);

  void stop() { stopped_ = true; }
  [[nodiscard]] bool stopped() const { return stopped_; }

  [[nodiscard]] std::size_t fd_count() const { return callbacks_.size(); }
  [[nodiscard]] std::size_t pending_timers() const { return timers_.size(); }

 private:
  struct Timer {
    TimePoint at;
    std::uint64_t seq;
    TimerCallback callback;
  };
  struct TimerLater {
    bool operator()(const Timer& a, const Timer& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  void run_expired_timers();
  [[nodiscard]] int next_timeout_ms() const;

  int epoll_fd_ = -1;
  bool stopped_ = false;
  std::uint64_t timer_seq_ = 0;
  std::chrono::steady_clock::time_point origin_;
  std::unordered_map<int, FdCallback> callbacks_;
  std::priority_queue<Timer, std::vector<Timer>, TimerLater> timers_;
};

}  // namespace domino::net::tcp
