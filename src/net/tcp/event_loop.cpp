#include "net/tcp/event_loop.h"

#include <sys/epoll.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace domino::net::tcp {

namespace {
[[noreturn]] void throw_errno(const char* what) {
  throw std::runtime_error(std::string(what) + ": " + std::strerror(errno));
}
}  // namespace

EventLoop::EventLoop() : origin_(std::chrono::steady_clock::now()) {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) throw_errno("epoll_create1");
}

EventLoop::~EventLoop() {
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

void EventLoop::add_fd(int fd, std::uint32_t events, FdCallback callback) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) throw_errno("epoll_ctl(ADD)");
  callbacks_[fd] = std::move(callback);
}

void EventLoop::modify_fd(int fd, std::uint32_t events) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) < 0) throw_errno("epoll_ctl(MOD)");
}

void EventLoop::remove_fd(int fd) {
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);  // best effort
  callbacks_.erase(fd);
}

void EventLoop::schedule(Duration delay, TimerCallback callback) {
  if (delay < Duration::zero()) delay = Duration::zero();
  timers_.push(Timer{now() + delay, timer_seq_++, std::move(callback)});
}

TimePoint EventLoop::now() const {
  const auto elapsed = std::chrono::steady_clock::now() - origin_;
  return TimePoint{std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count()};
}

void EventLoop::run_expired_timers() {
  while (!timers_.empty() && timers_.top().at <= now()) {
    // priority_queue::top is const&; move the callback out before pop.
    TimerCallback cb = std::move(const_cast<Timer&>(timers_.top()).callback);
    timers_.pop();
    cb();
  }
}

int EventLoop::next_timeout_ms() const {
  if (timers_.empty()) return -1;
  const Duration until = timers_.top().at - now();
  if (until <= Duration::zero()) return 0;
  return static_cast<int>(until.nanos() / 1'000'000 + 1);
}

int EventLoop::poll(Duration max_wait) {
  run_expired_timers();
  int timeout_ms = next_timeout_ms();
  const int cap = static_cast<int>(max_wait.nanos() / 1'000'000);
  if (timeout_ms < 0 || timeout_ms > cap) timeout_ms = cap;

  epoll_event events[64];
  const int n = ::epoll_wait(epoll_fd_, events, 64, timeout_ms);
  if (n < 0) {
    if (errno == EINTR) return 0;
    throw_errno("epoll_wait");
  }
  for (int i = 0; i < n; ++i) {
    auto it = callbacks_.find(events[i].data.fd);
    if (it != callbacks_.end()) {
      // Copy: the callback may remove (and thereby invalidate) itself.
      FdCallback cb = it->second;
      cb(events[i].events);
    }
  }
  run_expired_timers();
  return n;
}

void EventLoop::run() {
  stopped_ = false;
  while (!stopped_) {
    if (callbacks_.empty() && timers_.empty()) break;
    poll(milliseconds(100));
  }
}

}  // namespace domino::net::tcp
