#include "net/tcp/tcp_host.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace domino::net::tcp {
namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw std::runtime_error(std::string(what) + ": " + std::strerror(errno));
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    throw_errno("fcntl(O_NONBLOCK)");
  }
}

void set_nodelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

wire::Payload make_hello(NodeId id) {
  wire::ByteWriter w;
  w.str("domino-hello");
  w.node_id(id);
  return w.take();
}

bool parse_hello(const wire::Payload& payload, NodeId& id) {
  try {
    wire::ByteReader r{payload};
    if (r.str() != "domino-hello") return false;
    id = r.node_id();
    r.expect_exhausted();
    return true;
  } catch (const wire::WireError&) {
    return false;
  }
}

}  // namespace

TcpHost::TcpHost(EventLoop& loop, NodeId id, const Endpoint& listen_on)
    : loop_(loop), id_(id) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) throw_errno("socket");
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(listen_on.port);
  if (::inet_pton(AF_INET, listen_on.host.c_str(), &addr.sin_addr) != 1) {
    throw std::runtime_error("TcpHost: bad listen address " + listen_on.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    throw_errno("bind");
  }
  if (::listen(listen_fd_, 64) < 0) throw_errno("listen");
  set_nonblocking(listen_fd_);

  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) < 0) {
    throw_errno("getsockname");
  }
  port_ = ntohs(bound.sin_port);

  loop_.add_fd(listen_fd_, EPOLLIN, [this](std::uint32_t events) { on_accept(events); });
}

TcpHost::~TcpHost() {
  if (listen_fd_ >= 0) {
    loop_.remove_fd(listen_fd_);
    ::close(listen_fd_);
  }
  for (auto& conn : connections_) {
    if (conn && conn->connection) conn->connection->set_close_callback(nullptr);
  }
}

void TcpHost::add_peer(NodeId peer, const Endpoint& endpoint) {
  address_book_[peer] = endpoint;
}

void TcpHost::on_accept(std::uint32_t) {
  for (;;) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      return;  // transient accept failure; keep listening
    }
    set_nodelay(fd);
    adopt(fd, NodeId::invalid());
  }
}

void TcpHost::adopt(int fd, NodeId peer_if_known) {
  auto conn = std::make_unique<Conn>();
  Conn* raw = conn.get();
  raw->peer = peer_if_known;
  raw->connection =
      std::make_unique<FrameConnection>(loop_, fd, /*connected=*/!peer_if_known.valid());
  raw->connection->set_frame_callback(
      [this, raw](wire::Payload payload) { on_frame(raw, std::move(payload)); });
  raw->connection->set_close_callback([this, raw] { on_conn_closed(raw); });
  raw->connection->register_with_loop();
  connections_.push_back(std::move(conn));
  if (peer_if_known.valid()) {
    by_peer_[peer_if_known] = raw;
    raw->connection->send_frame(make_hello(id_));
    raw->hello_sent = true;
  }
}

TcpHost::Conn* TcpHost::connect_to(NodeId peer) {
  auto addr_it = address_book_.find(peer);
  if (addr_it == address_book_.end()) return nullptr;

  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) return nullptr;
  set_nodelay(fd);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(addr_it->second.port);
  if (::inet_pton(AF_INET, addr_it->second.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return nullptr;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 &&
      errno != EINPROGRESS) {
    ::close(fd);
    return nullptr;
  }
  adopt(fd, peer);
  return by_peer_[peer];
}

bool TcpHost::send(NodeId to, const wire::Payload& payload) {
  auto it = by_peer_.find(to);
  Conn* conn = it != by_peer_.end() ? it->second : connect_to(to);
  if (conn == nullptr || conn->connection == nullptr || conn->connection->closed()) {
    return false;
  }
  conn->connection->send_frame(payload);
  return true;
}

void TcpHost::on_frame(Conn* conn, wire::Payload payload) {
  if (!conn->peer.valid()) {
    // Inbound connection: the first frame must be the hello.
    NodeId peer;
    if (!parse_hello(payload, peer)) {
      conn->connection->close();
      return;
    }
    conn->peer = peer;
    // Prefer the newest connection for a peer (the map may already hold an
    // outbound one; both work, frames are routed by `conn` regardless).
    by_peer_.emplace(peer, conn);
    return;
  }
  if (on_receive_) on_receive_(conn->peer, std::move(payload));
}

void TcpHost::on_conn_closed(Conn* conn) {
  auto it = by_peer_.find(conn->peer);
  if (it != by_peer_.end() && it->second == conn) by_peer_.erase(it);
  // The close callback can fire from inside a FrameConnection member
  // function; destroying the connection here would free the object under
  // its own feet. Defer the reap to the next loop iteration. (Corollary:
  // keep the TcpHost alive until the loop has drained.)
  loop_.schedule(Duration::zero(), [this, conn] {
    connections_.erase(
        std::remove_if(connections_.begin(), connections_.end(),
                       [conn](const std::unique_ptr<Conn>& c) { return c.get() == conn; }),
        connections_.end());
  });
}

void TcpHost::disconnect(NodeId peer) {
  auto it = by_peer_.find(peer);
  if (it == by_peer_.end()) return;
  it->second->connection->close();  // close callback cleans up the registry
}

}  // namespace domino::net::tcp
