// TcpHost: a process endpoint in a real-socket Domino deployment.
//
// Each host has a NodeId, listens on a TCP port, and lazily connects to
// peers from an address book. The first frame on every outbound connection
// is a hello carrying the sender's NodeId, so the acceptor can map inbound
// frames to logical nodes. Message payloads are the same wire envelopes the
// simulator transports — the codec layer is shared byte-for-byte.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>

#include "common/ids.h"
#include "net/tcp/frame_connection.h"
#include "wire/message.h"

namespace domino::net::tcp {

struct Endpoint {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
};

class TcpHost {
 public:
  using ReceiveCallback = std::function<void(NodeId from, wire::Payload payload)>;

  /// Binds and listens immediately. Port 0 picks an ephemeral port
  /// (retrievable via port()).
  TcpHost(EventLoop& loop, NodeId id, const Endpoint& listen_on);
  ~TcpHost();
  TcpHost(const TcpHost&) = delete;
  TcpHost& operator=(const TcpHost&) = delete;

  void set_receive_callback(ReceiveCallback cb) { on_receive_ = std::move(cb); }

  /// Register a peer's address for lazy connection.
  void add_peer(NodeId peer, const Endpoint& endpoint);

  /// Send a message envelope to a peer; connects on first use. Returns
  /// false if the peer is unknown or the connection could not be opened.
  bool send(NodeId to, const wire::Payload& payload);

  template <typename M>
  bool send_message(NodeId to, const M& msg) {
    return send(to, wire::encode_message(msg));
  }

  [[nodiscard]] NodeId id() const { return id_; }
  [[nodiscard]] std::uint16_t port() const { return port_; }
  [[nodiscard]] std::size_t connection_count() const { return by_peer_.size(); }

  /// Drop the connection to `peer` (tests: simulated link failure).
  void disconnect(NodeId peer);

  /// Invoke the receive callback directly (self-sends bypass the socket).
  void deliver_local(NodeId from, wire::Payload payload) {
    if (on_receive_) on_receive_(from, std::move(payload));
  }

 private:
  struct Conn {
    std::unique_ptr<FrameConnection> connection;
    NodeId peer;       // invalid until the hello frame arrives (inbound)
    bool hello_sent = false;
  };

  void on_accept(std::uint32_t events);
  Conn* connect_to(NodeId peer);
  void adopt(int fd, NodeId peer_if_known);
  void on_frame(Conn* conn, wire::Payload payload);
  void on_conn_closed(Conn* conn);

  EventLoop& loop_;
  NodeId id_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  ReceiveCallback on_receive_;
  std::unordered_map<NodeId, Endpoint> address_book_;
  std::vector<std::unique_ptr<Conn>> connections_;
  std::unordered_map<NodeId, Conn*> by_peer_;
};

}  // namespace domino::net::tcp
