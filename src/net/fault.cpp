#include "net/fault.h"

#include <algorithm>
#include <stdexcept>

namespace domino::net {

const char* drop_reason_name(DropReason reason) {
  switch (reason) {
    case DropReason::kNone: return "none";
    case DropReason::kCrashedSource: return "crashed_src";
    case DropReason::kCrashedDest: return "crashed_dst";
    case DropReason::kPartition: return "partition";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// FaultSchedule builders

FaultSchedule& FaultSchedule::crash(TimePoint at, NodeId node) {
  FaultEvent e;
  e.at = at;
  e.kind = FaultEvent::Kind::kCrash;
  e.node = node;
  events_.push_back(e);
  return *this;
}

FaultSchedule& FaultSchedule::recover(TimePoint at, NodeId node) {
  FaultEvent e;
  e.at = at;
  e.kind = FaultEvent::Kind::kRecover;
  e.node = node;
  events_.push_back(e);
  return *this;
}

FaultSchedule& FaultSchedule::crash_for(TimePoint at, NodeId node, Duration downtime) {
  return crash(at, node).recover(at + downtime, node);
}

FaultSchedule& FaultSchedule::partition(TimePoint at, std::size_t from_dc,
                                        std::size_t to_dc) {
  FaultEvent e;
  e.at = at;
  e.kind = FaultEvent::Kind::kPartition;
  e.from_dc = from_dc;
  e.to_dc = to_dc;
  events_.push_back(e);
  return *this;
}

FaultSchedule& FaultSchedule::heal(TimePoint at, std::size_t from_dc, std::size_t to_dc) {
  FaultEvent e;
  e.at = at;
  e.kind = FaultEvent::Kind::kHeal;
  e.from_dc = from_dc;
  e.to_dc = to_dc;
  events_.push_back(e);
  return *this;
}

FaultSchedule& FaultSchedule::partition_both_for(TimePoint at, std::size_t dc_a,
                                                 std::size_t dc_b, Duration duration) {
  partition(at, dc_a, dc_b);
  partition(at, dc_b, dc_a);
  heal(at + duration, dc_a, dc_b);
  heal(at + duration, dc_b, dc_a);
  return *this;
}

FaultSchedule& FaultSchedule::degrade(TimePoint at, Duration duration, std::size_t from_dc,
                                      std::size_t to_dc, double multiplier,
                                      double extra_spike_prob, Duration spike_mean) {
  FaultEvent start;
  start.at = at;
  start.kind = FaultEvent::Kind::kDegradeStart;
  start.from_dc = from_dc;
  start.to_dc = to_dc;
  start.delay_multiplier = multiplier;
  start.extra_spike_prob = extra_spike_prob;
  start.spike_mean = spike_mean;
  events_.push_back(start);

  FaultEvent end;
  end.at = at + duration;
  end.kind = FaultEvent::Kind::kDegradeEnd;
  end.from_dc = from_dc;
  end.to_dc = to_dc;
  events_.push_back(end);
  return *this;
}

FaultSchedule& FaultSchedule::route_change(TimePoint at, std::size_t from_dc,
                                           std::size_t to_dc, Duration new_base) {
  FaultEvent e;
  e.at = at;
  e.kind = FaultEvent::Kind::kRouteChange;
  e.from_dc = from_dc;
  e.to_dc = to_dc;
  e.new_base = new_base;
  events_.push_back(e);
  return *this;
}

// ---------------------------------------------------------------------------
// FaultInjector

FaultInjector::FaultInjector(sim::Simulator& simulator, std::size_t num_dcs,
                             std::uint64_t seed)
    : sim_(simulator), num_dcs_(num_dcs) {
  const std::size_t n = num_dcs * num_dcs;
  partitioned_.assign(n, false);
  degraded_.assign(n, Degradation{});
  route_base_.assign(n, std::nullopt);
  Rng root(seed ^ 0xFA017ull);
  spike_rngs_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) spike_rngs_.push_back(root.fork());
}

void FaultInjector::bind_obs(const obs::Sink& sink) {
  obs_ = sink;
  obs_faults_applied_ = sink.counter("fault.transitions");
  obs_downtime_ns_ = sink.histogram("recovery.downtime_ns");
  for (std::size_t r = 1; r < kDropReasonCount; ++r) {
    obs_drop_reason_[r] = sink.counter(
        std::string("net.drops.") + drop_reason_name(static_cast<DropReason>(r)));
  }
}

void FaultInjector::check_dc(std::size_t dc, const char* what) const {
  if (dc >= num_dcs_) {
    throw std::out_of_range(std::string("FaultInjector::") + what + ": bad dc index");
  }
}

void FaultInjector::mix(std::uint64_t v) {
  // FNV-1a over the 8 bytes of v, order-sensitive.
  for (int i = 0; i < 8; ++i) {
    digest_ ^= (v >> (8 * i)) & 0xFFu;
    digest_ *= 0x100000001b3ull;
  }
}

void FaultInjector::trace_link_event(obs::EventKind kind, TimePoint at,
                                     std::size_t from_dc, std::size_t to_dc,
                                     std::int64_t value) {
  if (obs_.tracing()) {
    obs_.record(obs::TraceEvent{.at = at,
                                .kind = kind,
                                .node = NodeId{static_cast<std::uint32_t>(from_dc)},
                                .peer = NodeId{static_cast<std::uint32_t>(to_dc)},
                                .value = value});
  }
}

void FaultInjector::install(const FaultSchedule& schedule) {
  // Stable sort so same-instant events apply in insertion order — the
  // property that makes two installs of the same schedule identical.
  std::vector<FaultEvent> events = schedule.events();
  std::stable_sort(events.begin(), events.end(),
                   [](const FaultEvent& a, const FaultEvent& b) { return a.at < b.at; });
  for (const FaultEvent& e : events) {
    sim_.schedule_at(e.at, [this, e] {
      switch (e.kind) {
        case FaultEvent::Kind::kCrash: crash(e.node); break;
        case FaultEvent::Kind::kRecover: recover(e.node); break;
        case FaultEvent::Kind::kPartition: partition(e.from_dc, e.to_dc); break;
        case FaultEvent::Kind::kHeal: heal(e.from_dc, e.to_dc); break;
        case FaultEvent::Kind::kDegradeStart:
          degrade(e.from_dc, e.to_dc, e.delay_multiplier, e.extra_spike_prob,
                  e.spike_mean);
          break;
        case FaultEvent::Kind::kDegradeEnd: end_degrade(e.from_dc, e.to_dc); break;
        case FaultEvent::Kind::kRouteChange:
          route_change(e.from_dc, e.to_dc, e.new_base);
          break;
      }
    });
  }
}

void FaultInjector::crash(NodeId node) {
  if (!crashed_.insert(node).second) return;
  crashed_at_[node] = sim_.now();
  ++transitions_;
  obs_faults_applied_.inc();
  mix(0x01);
  mix(static_cast<std::uint64_t>(sim_.now().nanos()));
  mix(node.value());
  if (obs_.tracing()) {
    obs_.record(obs::TraceEvent{
        .at = sim_.now(), .kind = obs::EventKind::kNodeCrash, .node = node});
  }
}

void FaultInjector::recover(NodeId node) {
  if (crashed_.erase(node) == 0) return;
  ++transitions_;
  obs_faults_applied_.inc();
  mix(0x02);
  mix(static_cast<std::uint64_t>(sim_.now().nanos()));
  mix(node.value());
  if (const auto it = crashed_at_.find(node); it != crashed_at_.end()) {
    const Duration downtime = sim_.now() - it->second;
    total_downtime_ += downtime;
    obs_downtime_ns_.record(downtime);
    crashed_at_.erase(it);
  }
  if (obs_.tracing()) {
    obs_.record(obs::TraceEvent{
        .at = sim_.now(), .kind = obs::EventKind::kNodeRecover, .node = node});
  }
  if (recover_hook_) recover_hook_(node);
  // Restart (amnesia) runs after the transport forgot the node's channel
  // state, so nothing the wiped replica sends is ordered behind pre-crash
  // deliveries.
  if (restart_hook_) restart_hook_(node);
}

void FaultInjector::partition(std::size_t from_dc, std::size_t to_dc) {
  check_dc(from_dc, "partition");
  check_dc(to_dc, "partition");
  std::vector<bool>::reference flag = partitioned_[link_index(from_dc, to_dc)];
  if (flag) return;
  flag = true;
  ++transitions_;
  obs_faults_applied_.inc();
  mix(0x03);
  mix(static_cast<std::uint64_t>(sim_.now().nanos()));
  mix(link_index(from_dc, to_dc));
  trace_link_event(obs::EventKind::kLinkPartition, sim_.now(), from_dc, to_dc, 0);
}

void FaultInjector::heal(std::size_t from_dc, std::size_t to_dc) {
  check_dc(from_dc, "heal");
  check_dc(to_dc, "heal");
  std::vector<bool>::reference flag = partitioned_[link_index(from_dc, to_dc)];
  if (!flag) return;
  flag = false;
  ++transitions_;
  obs_faults_applied_.inc();
  mix(0x04);
  mix(static_cast<std::uint64_t>(sim_.now().nanos()));
  mix(link_index(from_dc, to_dc));
  trace_link_event(obs::EventKind::kLinkHeal, sim_.now(), from_dc, to_dc, 0);
}

void FaultInjector::degrade(std::size_t from_dc, std::size_t to_dc, double multiplier,
                            double extra_spike_prob, Duration spike_mean) {
  check_dc(from_dc, "degrade");
  check_dc(to_dc, "degrade");
  Degradation& d = degraded_[link_index(from_dc, to_dc)];
  d.multiplier = multiplier;
  d.extra_spike_prob = extra_spike_prob;
  d.spike_mean = spike_mean;
  d.active = true;
  ++transitions_;
  obs_faults_applied_.inc();
  mix(0x05);
  mix(static_cast<std::uint64_t>(sim_.now().nanos()));
  mix(link_index(from_dc, to_dc));
  trace_link_event(obs::EventKind::kLinkDegrade, sim_.now(), from_dc, to_dc,
                   static_cast<std::int64_t>(multiplier * 1000.0));
}

void FaultInjector::end_degrade(std::size_t from_dc, std::size_t to_dc) {
  check_dc(from_dc, "end_degrade");
  check_dc(to_dc, "end_degrade");
  Degradation& d = degraded_[link_index(from_dc, to_dc)];
  if (!d.active) return;
  d = Degradation{};
  ++transitions_;
  obs_faults_applied_.inc();
  mix(0x06);
  mix(static_cast<std::uint64_t>(sim_.now().nanos()));
  mix(link_index(from_dc, to_dc));
  trace_link_event(obs::EventKind::kLinkRestore, sim_.now(), from_dc, to_dc, 0);
}

void FaultInjector::route_change(std::size_t from_dc, std::size_t to_dc,
                                 Duration new_base) {
  check_dc(from_dc, "route_change");
  check_dc(to_dc, "route_change");
  route_base_[link_index(from_dc, to_dc)] = new_base;
  ++transitions_;
  obs_faults_applied_.inc();
  mix(0x07);
  mix(static_cast<std::uint64_t>(sim_.now().nanos()));
  mix(link_index(from_dc, to_dc));
  trace_link_event(obs::EventKind::kRouteChange, sim_.now(), from_dc, to_dc,
                   new_base.nanos());
}

bool FaultInjector::is_partitioned(std::size_t from_dc, std::size_t to_dc) const {
  return partitioned_[link_index(from_dc, to_dc)];
}

DropReason FaultInjector::drop_reason(NodeId src, std::size_t src_dc, NodeId dst,
                                      std::size_t dst_dc) const {
  if (crashed_.contains(src)) return DropReason::kCrashedSource;
  if (crashed_.contains(dst)) return DropReason::kCrashedDest;
  if (src_dc != dst_dc && partitioned_[link_index(src_dc, dst_dc)]) {
    return DropReason::kPartition;
  }
  return DropReason::kNone;
}

Duration FaultInjector::deform(std::size_t from_dc, std::size_t to_dc, Duration sampled,
                               Duration model_base) {
  const std::size_t idx = link_index(from_dc, to_dc);
  Duration d = sampled;
  if (route_base_[idx].has_value()) {
    // Shift the base while keeping the model's jitter around it.
    d = d - model_base + *route_base_[idx];
    if (d < Duration::zero()) d = Duration::zero();
  }
  const Degradation& deg = degraded_[idx];
  if (deg.active) {
    d = scale(d, deg.multiplier);
    if (deg.extra_spike_prob > 0.0 && spike_rngs_[idx].chance(deg.extra_spike_prob)) {
      d += Duration{static_cast<std::int64_t>(
          spike_rngs_[idx].exponential(static_cast<double>(deg.spike_mean.nanos())))};
    }
  }
  return d;
}

void FaultInjector::count_drop(DropReason reason, TimePoint at, NodeId src, NodeId dst,
                               std::size_t bytes) {
  ++drops_[static_cast<std::size_t>(reason)];
  obs_drop_reason_[static_cast<std::size_t>(reason)].inc();
  mix(0x10 + static_cast<std::uint64_t>(reason));
  mix(static_cast<std::uint64_t>(at.nanos()));
  mix((static_cast<std::uint64_t>(src.value()) << 32) | dst.value());
  if (obs_.tracing()) {
    obs_.record(obs::TraceEvent{.at = at,
                                .kind = obs::EventKind::kMessageDrop,
                                .node = src,
                                .peer = dst,
                                .detail = static_cast<std::uint8_t>(reason),
                                .value = static_cast<std::int64_t>(bytes)});
  }
}

std::uint64_t FaultInjector::total_drops() const {
  std::uint64_t total = 0;
  for (std::size_t r = 1; r < kDropReasonCount; ++r) total += drops_[r];
  return total;
}

}  // namespace domino::net
