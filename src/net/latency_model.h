// One-way-delay models for directed WAN links.
//
// Each directed link (src datacenter -> dst datacenter) owns a LatencyModel
// and an independent RNG stream. Models compose a stable propagation base
// with short-timescale jitter and rare spikes — the regime the paper
// measures on Azure (Section 3: "the variance of the network roundtrip
// delay is relatively small compared to the minimum measured delay") — and
// support scheduled base-delay changes to emulate route changes
// (Section 7.3's microbenchmarks).
#pragma once

#include <memory>
#include <vector>

#include "common/rng.h"
#include "common/time.h"

namespace domino::net {

class LatencyModel {
 public:
  virtual ~LatencyModel() = default;

  /// Sample the one-way delay of a message sent at `now`.
  [[nodiscard]] virtual Duration sample(TimePoint now, Rng& rng) = 0;

  /// The deterministic floor of the delay at time `now` (no jitter), used
  /// by tests and by the geometry analysis.
  [[nodiscard]] virtual Duration base(TimePoint now) const = 0;
};

/// Fixed delay, no jitter. Useful for tests and the Section 4 analysis.
class ConstantLatency final : public LatencyModel {
 public:
  explicit ConstantLatency(Duration owd) : owd_(owd) {}
  Duration sample(TimePoint, Rng&) override { return owd_; }
  [[nodiscard]] Duration base(TimePoint) const override { return owd_; }

 private:
  Duration owd_;
};

/// Stable base + log-normal jitter + rare exponential spikes.
///
/// sampled = base + lognormal(jitter_mu_ms, jitter_sigma) ms
///           [+ exponential(spike_mean) with probability spike_prob]
struct JitterParams {
  double jitter_mu_ms = -2.0;    // median jitter exp(mu) ms (~0.135 ms)
  double jitter_sigma = 0.8;     // spread of the log-normal
  double spike_prob = 0.0005;    // per-message probability of a delay spike
  Duration spike_mean = milliseconds(8);
};

class JitterLatency final : public LatencyModel {
 public:
  JitterLatency(Duration base_owd, JitterParams params) : base_(base_owd), p_(params) {}

  Duration sample(TimePoint, Rng& rng) override;
  [[nodiscard]] Duration base(TimePoint) const override { return base_; }

  void set_base(Duration base_owd) { base_ = base_owd; }

 private:
  Duration base_;
  JitterParams p_;
};

/// Piecewise base delay following a schedule of (from, base) steps, with the
/// same jitter structure as JitterLatency. Emulates route changes: Figure 12
/// raises a link's RTT 30 -> 50 -> 70 ms mid-run.
class ScheduledLatency final : public LatencyModel {
 public:
  struct Step {
    TimePoint from;
    Duration base;
  };

  /// `steps` must be sorted by `from`; the first step should start at or
  /// before the simulation start. Queries before the first step return the
  /// first step's base; at or after a step's `from`, that step governs.
  ScheduledLatency(std::vector<Step> steps, JitterParams params);

  Duration sample(TimePoint now, Rng& rng) override;
  [[nodiscard]] Duration base(TimePoint now) const override;

 private:
  std::vector<Step> steps_;
  JitterParams p_;
};

/// One point of a round-trip route-change schedule, as the paper's Figure
/// 12 microbenchmarks specify them ("the RTT rises 30 -> 50 -> 70 ms").
struct RttStep {
  Duration at;   // simulation time the new RTT takes effect
  Duration rtt;  // round-trip delay from then on
};

/// Expand an RTT schedule into per-direction OWD steps (base = rtt/2),
/// the shared idiom for building symmetric ScheduledLatency links.
[[nodiscard]] std::vector<ScheduledLatency::Step> rtt_schedule_steps(
    const std::vector<RttStep>& steps);

}  // namespace domino::net
