// The unit of delivery every transport hands to a node: source,
// destination, send time, and the encoded message envelope. Shared by the
// simulated WAN (net::Network) and the real-socket transport (net::tcp).
#pragma once

#include "common/ids.h"
#include "common/time.h"
#include "wire/codec.h"

namespace domino::net {

struct Packet {
  NodeId src;
  NodeId dst;
  TimePoint sent_at;      // true time the packet left the source
  wire::Payload payload;  // encoded message envelope
};

}  // namespace domino::net
