#include "net/topology.h"

#include <stdexcept>

namespace domino::net {
namespace {

// Expands an upper-triangular ms matrix (as printed in the paper's tables)
// into a full symmetric matrix. `upper[i]` holds RTTs from datacenter i to
// datacenters i+1..n-1.
std::vector<std::vector<double>> expand_upper(std::size_t n,
                                              const std::vector<std::vector<double>>& upper) {
  std::vector<std::vector<double>> full(n, std::vector<double>(n, 0.0));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t k = 0; k < upper[i].size(); ++k) {
      const std::size_t j = i + 1 + k;
      full[i][j] = upper[i][k];
      full[j][i] = upper[i][k];
    }
  }
  return full;
}

}  // namespace

Topology::Topology(std::vector<std::string> names, std::vector<std::vector<double>> rtt_ms,
                   Duration intra_dc_rtt)
    : names_(std::move(names)) {
  const std::size_t n = names_.size();
  if (rtt_ms.size() != n) throw std::invalid_argument("Topology: matrix size mismatch");
  rtt_.assign(n, std::vector<Duration>(n, intra_dc_rtt));
  for (std::size_t i = 0; i < n; ++i) {
    if (rtt_ms[i].size() != n) throw std::invalid_argument("Topology: matrix row mismatch");
    for (std::size_t j = 0; j < n; ++j) {
      if (i != j) rtt_[i][j] = milliseconds_d(rtt_ms[i][j]);
    }
  }
}

std::size_t Topology::index_of(std::string_view name) const {
  for (std::size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return i;
  }
  throw std::out_of_range("Topology: unknown datacenter " + std::string(name));
}

Duration Topology::rtt(std::size_t i, std::size_t j) const {
  if (i >= size() || j >= size()) throw std::out_of_range("Topology::rtt: bad index");
  return rtt_[i][j];
}

Topology Topology::globe() {
  // Paper Table 1: network roundtrip delays (ms), Globe setting.
  //        WA   PR   NSW  SG   HK
  const std::vector<std::vector<double>> upper = {
      {67, 80, 196, 214, 196},  // VA
      {136, 175, 163, 141},     // WA
      {234, 149, 185},          // PR
      {87, 117},                // NSW
      {35},                     // SG
      {},                       // HK
  };
  return Topology{{"VA", "WA", "PR", "NSW", "SG", "HK"}, expand_upper(6, upper)};
}

Topology Topology::north_america() {
  // Paper Table 4: network roundtrip delays (ms) in North America.
  //        TX  CA  IA  WA  WY  IL  QC  TRT
  const std::vector<std::vector<double>> upper = {
      {27, 59, 31, 67, 46, 26, 38, 29},  // VA
      {33, 22, 42, 23, 30, 51, 43},      // TX
      {41, 23, 24, 48, 67, 59},          // CA
      {36, 14, 8, 32, 22},               // IA
      {21, 43, 68, 57},                  // WA
      {24, 46, 36},                      // WY
      {23, 14},                          // IL
      {11},                              // QC
      {},                                // TRT
  };
  return Topology{{"VA", "TX", "CA", "IA", "WA", "WY", "IL", "QC", "TRT"},
                  expand_upper(9, upper)};
}

}  // namespace domino::net
