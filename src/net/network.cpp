#include "net/network.h"

#include <stdexcept>
#include <utility>

#include "wire/message.h"

namespace domino::net {

Network::Network(sim::Simulator& simulator, Topology topology, std::uint64_t seed)
    : sim_(simulator),
      topology_(std::move(topology)),
      rng_(seed),
      fault_(simulator, topology_.size(), seed) {
  fault_.set_recover_hook([this](NodeId id) { reset_channels_of(id); });
  const std::size_t n = topology_.size();
  links_.resize(n);
  link_rngs_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    links_[i].resize(n);
    std::vector<Rng> row;
    row.reserve(n);
    for (std::size_t j = 0; j < n; ++j) row.push_back(rng_.fork());
    link_rngs_.push_back(std::move(row));
  }
  // Default every link (including intra-DC) to its constant base OWD; callers
  // typically replace inter-DC links via use_default_links().
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      links_[i][j] = std::make_unique<ConstantLatency>(topology_.owd(i, j));
    }
  }
}

void Network::use_default_links(const JitterParams& params) {
  const std::size_t n = topology_.size();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;  // keep intra-DC constant
      links_[i][j] = std::make_unique<JitterLatency>(topology_.owd(i, j), params);
    }
  }
}

void Network::set_link_model(std::size_t from_dc, std::size_t to_dc,
                             std::unique_ptr<LatencyModel> model) {
  if (from_dc >= topology_.size() || to_dc >= topology_.size()) {
    throw std::out_of_range("Network::set_link_model: bad datacenter index");
  }
  links_[from_dc][to_dc] = std::move(model);
}

void Network::set_scheduled_rtt_link(std::size_t a, std::size_t b,
                                     const std::vector<RttStep>& steps,
                                     const JitterParams& params) {
  set_link_model(a, b, std::make_unique<ScheduledLatency>(rtt_schedule_steps(steps), params));
  set_link_model(b, a, std::make_unique<ScheduledLatency>(rtt_schedule_steps(steps), params));
}

LatencyModel& Network::link_model(std::size_t from_dc, std::size_t to_dc) {
  if (from_dc >= topology_.size() || to_dc >= topology_.size()) {
    throw std::out_of_range("Network::link_model: bad datacenter index");
  }
  return *links_[from_dc][to_dc];
}

void Network::bind_obs(const obs::Sink& sink) {
  obs_ = sink;
  fault_.bind_obs(sink);
  obs_dropped_ = sink.counter("net.packets_dropped");
  const std::size_t n = topology_.size();
  link_obs_.assign(n, std::vector<LinkObs>(n));
  if (sink.metrics == nullptr) return;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const std::string link = "net.link." + topology_.name(i) + "->" + topology_.name(j);
      link_obs_[i][j].messages = sink.counter(link + ".messages");
      link_obs_[i][j].bytes = sink.counter(link + ".bytes");
      link_obs_[i][j].delay_ns = sink.histogram(link + ".delay_ns");
    }
  }
}

void Network::count_drop(DropReason reason, NodeId src, NodeId dst, std::size_t bytes) {
  ++packets_dropped_;
  obs_dropped_.inc();
  // The injector owns the per-reason counters, the fault/drop digest, and
  // the (reason-tagged) trace event.
  fault_.count_drop(reason, sim_.now(), src, dst, bytes);
}

void Network::reset_channels_of(NodeId id) {
  for (auto it = channel_last_delivery_.begin(); it != channel_last_delivery_.end();) {
    if (it->first.src == id || it->first.dst == id) {
      it = channel_last_delivery_.erase(it);
    } else {
      ++it;
    }
  }
}

void Network::register_node(NodeId id, std::size_t dc, Receiver receiver) {
  if (dc >= topology_.size()) throw std::out_of_range("Network::register_node: bad dc");
  if (nodes_.contains(id)) throw std::invalid_argument("Network: duplicate node id");
  NodeInfo ni;
  ni.dc = dc;
  ni.receiver = std::move(receiver);
  nodes_.emplace(id, std::move(ni));
}

Network::NodeInfo& Network::info(NodeId id) {
  auto it = nodes_.find(id);
  if (it == nodes_.end()) throw std::out_of_range("Network: unknown node " + id.to_string());
  return it->second;
}

const Network::NodeInfo& Network::info(NodeId id) const {
  auto it = nodes_.find(id);
  if (it == nodes_.end()) throw std::out_of_range("Network: unknown node " + id.to_string());
  return it->second;
}

std::size_t Network::dc_of(NodeId id) const { return info(id).dc; }

void Network::set_receive_service_time(NodeId id, Duration per_message) {
  info(id).rx_service = per_message;
}

void Network::set_egress_bandwidth_bps(NodeId id, double bits_per_second) {
  info(id).egress_bps = bits_per_second;
}

void Network::send(NodeId src, NodeId dst, wire::Payload payload) {
  NodeInfo& s = info(src);
  NodeInfo& d = info(dst);
  const std::size_t bytes = payload.size() + kFrameOverheadBytes;
  // Single drop decision point: crashes and partitions, with the reason.
  if (const DropReason reason = fault_.drop_reason(src, s.dc, dst, d.dc);
      reason != DropReason::kNone) {
    count_drop(reason, src, dst, bytes);
    return;
  }

  const TimePoint now = sim_.now();
  ++packets_sent_;
  bytes_sent_ += bytes;

  // Egress serialization: the sender's NIC transmits packets back to back.
  TimePoint tx_done = now;
  if (s.egress_bps > 0.0) {
    const Duration serialize{static_cast<std::int64_t>(
        static_cast<double>(bytes) * 8.0 / s.egress_bps * 1e9)};
    const TimePoint start = std::max(now, s.tx_busy_until);
    tx_done = start + serialize;
    s.tx_busy_until = tx_done;
  }

  // Sample the link model, then let the fault layer deform the delay
  // (route-change base shift, degradation multiplier + extra spikes).
  const Duration owd =
      fault_.deform(s.dc, d.dc, links_[s.dc][d.dc]->sample(now, link_rngs_[s.dc][d.dc]),
                    links_[s.dc][d.dc]->base(now));
  TimePoint arrival = tx_done + owd;

  // FIFO channel: never deliver before (or at the same instant as) an
  // earlier packet on this (src, dst) channel.
  TimePoint& last = channel_last_delivery_[ChannelKey{src, dst}];
  if (arrival <= last) arrival = last + nanoseconds(1);
  last = arrival;

  // Receive-side CPU: messages are processed serially at rx_service each.
  TimePoint deliver_at = arrival;
  if (d.rx_service > Duration::zero()) {
    const TimePoint start = std::max(arrival, d.rx_busy_until);
    deliver_at = start + d.rx_service;
    d.rx_busy_until = deliver_at;
  }

  if (obs_.active()) {
    if (!link_obs_.empty()) {
      LinkObs& lo = link_obs_[s.dc][d.dc];
      lo.messages.inc();
      lo.bytes.inc(bytes);
      lo.delay_ns.record(deliver_at - now);
    }
    if (obs_.tracing()) {
      obs_.record(obs::TraceEvent{
          .at = now,
          .kind = obs::EventKind::kMessageSend,
          .node = src,
          .peer = dst,
          .msg_type = static_cast<std::uint16_t>(wire::peek_type(payload)),
          .value = static_cast<std::int64_t>(bytes)});
    }
  }

  sim_.schedule_at(deliver_at,
                   [this, pkt = Packet{src, dst, now, std::move(payload)}, dst,
                    src_dc = s.dc, dst_dc = d.dc, bytes]() mutable {
                     // Re-check at delivery: a crash or partition that began
                     // while the packet was in flight still loses it.
                     if (const DropReason reason =
                             fault_.drop_reason(pkt.src, src_dc, dst, dst_dc);
                         reason != DropReason::kNone) {
                       count_drop(reason, pkt.src, dst, bytes);
                       return;
                     }
                     if (obs_.tracing()) {
                       obs_.record(obs::TraceEvent{
                           .at = sim_.now(),
                           .kind = obs::EventKind::kMessageDeliver,
                           .node = dst,
                           .peer = pkt.src,
                           .msg_type =
                               static_cast<std::uint16_t>(wire::peek_type(pkt.payload)),
                           .value = (sim_.now() - pkt.sent_at).nanos()});
                     }
                     auto it = nodes_.find(dst);
                     if (it != nodes_.end() && it->second.receiver) {
                       it->second.receiver(pkt);
                     }
                   });
}

}  // namespace domino::net
