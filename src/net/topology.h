// Datacenter topologies, including the paper's two deployments:
//
//   - Globe (Table 1): 6 datacenters — VA, WA, PR, NSW, SG, HK.
//   - North America (Table 4): 9 datacenters — VA, TX, CA, IA, WA, WY, IL,
//     QC, TRT.
//
// RTT values are the paper's averaged measurements in milliseconds; one-way
// delays default to RTT/2 per direction and can be skewed per-link to model
// asymmetric routing (Table 2's half-RTT mispredictions).
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "common/time.h"

namespace domino::net {

class Topology {
 public:
  Topology(std::vector<std::string> names, std::vector<std::vector<double>> rtt_ms,
           Duration intra_dc_rtt = microseconds(500));

  /// The Globe setting of Table 1.
  [[nodiscard]] static Topology globe();

  /// The North America setting of Table 4.
  [[nodiscard]] static Topology north_america();

  [[nodiscard]] std::size_t size() const { return names_.size(); }
  [[nodiscard]] const std::string& name(std::size_t i) const { return names_[i]; }
  [[nodiscard]] std::size_t index_of(std::string_view name) const;

  /// Round-trip delay between datacenters i and j (symmetric). i == j gives
  /// the intra-datacenter RTT.
  [[nodiscard]] Duration rtt(std::size_t i, std::size_t j) const;

  /// Default one-way delay: rtt / 2.
  [[nodiscard]] Duration owd(std::size_t i, std::size_t j) const { return rtt(i, j) / 2; }

 private:
  std::vector<std::string> names_;
  std::vector<std::vector<Duration>> rtt_;  // full symmetric matrix
};

}  // namespace domino::net
