// Deterministic fault injection for the simulated WAN.
//
// A FaultSchedule is a declarative list of timed fault events — node
// crash/recover, directed datacenter-link partition/heal, link degradation
// epochs (a temporary base-delay multiplier plus extra spike probability
// layered over whatever LatencyModel the link runs), and route-change steps
// (a permanent base-delay replacement) — built with a fluent API and
// installed onto the virtual-time event queue by a FaultInjector.
//
// The FaultInjector is the Network's single drop/deform decision point:
// every packet asks it (a) whether to drop, and with which DropReason, and
// (b) how to deform the sampled one-way delay given the active degradation
// epochs and route overrides. All randomness (degradation spikes) comes
// from per-directed-link forked RNG streams owned by the injector, so the
// same seed and schedule produce an identical drop/deliver trace — the
// property the chaos tests diff on (see FaultInjector::digest()).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/ids.h"
#include "common/rng.h"
#include "common/time.h"
#include "obs/sink.h"
#include "sim/simulator.h"

namespace domino::net {

/// Why a packet was dropped. kNone means "deliver it".
enum class DropReason : std::uint8_t {
  kNone = 0,
  kCrashedSource,  // sender is crashed
  kCrashedDest,    // destination is crashed (at send or at delivery)
  kPartition,      // the directed datacenter link is partitioned
};
inline constexpr std::size_t kDropReasonCount = 4;

[[nodiscard]] const char* drop_reason_name(DropReason reason);

/// One timed fault event. Build via FaultSchedule, not directly.
struct FaultEvent {
  enum class Kind : std::uint8_t {
    kCrash,         // node: neither sends nor receives from `at`
    kRecover,       // node: resumes
    kPartition,     // directed dc link from->to: packets dropped
    kHeal,          // directed dc link from->to: packets flow again
    kDegradeStart,  // directed dc link: delay multiplier + extra spikes
    kDegradeEnd,    // end of the degradation epoch
    kRouteChange,   // directed dc link: permanent base-delay replacement
  };

  TimePoint at;
  Kind kind = Kind::kCrash;
  NodeId node;                       // kCrash / kRecover
  std::size_t from_dc = 0;           // link events
  std::size_t to_dc = 0;
  double delay_multiplier = 1.0;     // kDegradeStart
  double extra_spike_prob = 0.0;     // kDegradeStart
  Duration spike_mean = Duration::zero();  // kDegradeStart
  Duration new_base = Duration::zero();    // kRouteChange
};

/// Declarative fault timeline. Events may be appended in any order; the
/// injector sorts by time (stable, so same-instant events apply in
/// insertion order).
class FaultSchedule {
 public:
  FaultSchedule& crash(TimePoint at, NodeId node);
  FaultSchedule& recover(TimePoint at, NodeId node);
  /// Crash at `at`, recover `downtime` later.
  FaultSchedule& crash_for(TimePoint at, NodeId node, Duration downtime);

  /// Drop all packets on the directed dc link from->to starting at `at`.
  FaultSchedule& partition(TimePoint at, std::size_t from_dc, std::size_t to_dc);
  FaultSchedule& heal(TimePoint at, std::size_t from_dc, std::size_t to_dc);
  /// Partition both directions at `at` and heal both `duration` later.
  FaultSchedule& partition_both_for(TimePoint at, std::size_t dc_a, std::size_t dc_b,
                                    Duration duration);

  /// Degradation epoch [at, at + duration): sampled delays are multiplied
  /// by `multiplier`, and each packet additionally suffers an exponential
  /// spike of mean `spike_mean` with probability `extra_spike_prob`.
  FaultSchedule& degrade(TimePoint at, Duration duration, std::size_t from_dc,
                         std::size_t to_dc, double multiplier,
                         double extra_spike_prob = 0.0,
                         Duration spike_mean = milliseconds(8));

  /// Permanent base-delay replacement (route change) from `at` on: the
  /// link's sampled delay is shifted by (new_base - model_base), preserving
  /// the model's jitter around the new base.
  FaultSchedule& route_change(TimePoint at, std::size_t from_dc, std::size_t to_dc,
                              Duration new_base);

  [[nodiscard]] const std::vector<FaultEvent>& events() const { return events_; }
  [[nodiscard]] bool empty() const { return events_.empty(); }
  [[nodiscard]] std::size_t size() const { return events_.size(); }

 private:
  std::vector<FaultEvent> events_;
};

/// Runtime fault state + the drop/deform decision point. Owned by
/// net::Network; exposed so tests and the harness can inject faults
/// directly or install whole schedules.
class FaultInjector {
 public:
  FaultInjector(sim::Simulator& simulator, std::size_t num_dcs, std::uint64_t seed);

  /// Attach an observability sink: per-reason drop counters plus a trace
  /// event per fault transition and per drop.
  void bind_obs(const obs::Sink& sink);

  /// Schedule every event of `schedule` on the simulator's virtual-time
  /// queue. May be called more than once; schedules compose.
  void install(const FaultSchedule& schedule);

  /// Immediate fault operations (also used by the scheduled events).
  void crash(NodeId node);
  void recover(NodeId node);
  void partition(std::size_t from_dc, std::size_t to_dc);
  void heal(std::size_t from_dc, std::size_t to_dc);
  void degrade(std::size_t from_dc, std::size_t to_dc, double multiplier,
               double extra_spike_prob, Duration spike_mean);
  void end_degrade(std::size_t from_dc, std::size_t to_dc);
  void route_change(std::size_t from_dc, std::size_t to_dc, Duration new_base);

  /// Invoked on every recover (scheduled or immediate). The Network uses
  /// this to reset FIFO channel state for the recovered node.
  void set_recover_hook(std::function<void(NodeId)> hook) {
    recover_hook_ = std::move(hook);
  }

  /// Invoked after the recover hook on every recover. The harness uses this
  /// to model amnesiac crashes: the hook wipes the recovered replica's
  /// volatile state, triggering durable-image replay and peer catch-up.
  /// Unset = crashes keep memory (the pre-recovery fault model).
  void set_restart_hook(std::function<void(NodeId)> hook) {
    restart_hook_ = std::move(hook);
  }

  [[nodiscard]] bool is_crashed(NodeId node) const { return crashed_.contains(node); }
  [[nodiscard]] bool is_partitioned(std::size_t from_dc, std::size_t to_dc) const;

  /// The drop decision for a packet src(@src_dc) -> dst(@dst_dc).
  [[nodiscard]] DropReason drop_reason(NodeId src, std::size_t src_dc, NodeId dst,
                                       std::size_t dst_dc) const;

  /// Deform a sampled one-way delay: apply the route override (shift the
  /// base while preserving jitter) and any active degradation epoch
  /// (multiplier + extra spikes). `model_base` is the link model's
  /// deterministic floor at sampling time.
  [[nodiscard]] Duration deform(std::size_t from_dc, std::size_t to_dc, Duration sampled,
                                Duration model_base);

  /// Record a drop (updates per-reason counters, the rolling digest, and
  /// the trace). `at` is the drop time, `bytes` the framed packet size.
  void count_drop(DropReason reason, TimePoint at, NodeId src, NodeId dst,
                  std::size_t bytes);

  [[nodiscard]] std::uint64_t drops(DropReason reason) const {
    return drops_[static_cast<std::size_t>(reason)];
  }
  [[nodiscard]] std::uint64_t total_drops() const;

  /// Order-sensitive FNV-1a digest over every fault transition and drop
  /// (kind, virtual time, endpoints). Two runs with the same seed and
  /// schedule produce the same digest; any divergence in fault/drop
  /// behaviour changes it.
  [[nodiscard]] std::uint64_t digest() const { return digest_; }

  /// Fault transitions applied so far (for tests; drops excluded).
  [[nodiscard]] std::uint64_t transitions() const { return transitions_; }

  /// Total crashed time over all completed crash->recover pairs, for the
  /// recovery accounting (recovery.downtime_ns records each one).
  [[nodiscard]] Duration total_downtime() const { return total_downtime_; }

 private:
  struct Degradation {
    double multiplier = 1.0;
    double extra_spike_prob = 0.0;
    Duration spike_mean = Duration::zero();
    bool active = false;
  };

  void mix(std::uint64_t v);
  void trace_link_event(obs::EventKind kind, TimePoint at, std::size_t from_dc,
                        std::size_t to_dc, std::int64_t value);
  [[nodiscard]] std::size_t link_index(std::size_t from_dc, std::size_t to_dc) const {
    return from_dc * num_dcs_ + to_dc;
  }
  void check_dc(std::size_t dc, const char* what) const;

  sim::Simulator& sim_;
  std::size_t num_dcs_;
  std::unordered_set<NodeId> crashed_;
  std::unordered_map<NodeId, TimePoint> crashed_at_;  // downtime accounting
  Duration total_downtime_ = Duration::zero();
  std::vector<bool> partitioned_;                       // [from*n+to]
  std::vector<Degradation> degraded_;                   // [from*n+to]
  std::vector<std::optional<Duration>> route_base_;     // [from*n+to]
  std::vector<Rng> spike_rngs_;                         // [from*n+to]
  std::function<void(NodeId)> recover_hook_;
  std::function<void(NodeId)> restart_hook_;

  std::uint64_t drops_[kDropReasonCount] = {0, 0, 0, 0};
  std::uint64_t digest_ = 0xcbf29ce484222325ull;  // FNV-1a offset basis
  std::uint64_t transitions_ = 0;

  obs::Sink obs_;
  obs::CounterHandle obs_drop_reason_[kDropReasonCount];
  obs::CounterHandle obs_faults_applied_;
  obs::HistogramHandle obs_downtime_ns_;
};

}  // namespace domino::net
