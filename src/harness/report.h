// Plain-text rendering of experiment results: CDF rows, percentile summary
// lines, and comparison tables, printed by the bench binaries in the shape
// of the paper's figures.
#pragma once

#include <string>
#include <vector>

#include "common/stats.h"

namespace domino::harness {

/// "name: p50=48.2ms p95=70.1ms p99=81.0ms n=12345"
[[nodiscard]] std::string summary_line(const std::string& name, const StatAccumulator& s);

/// Multi-series CDF table: one row per CDF fraction, one column per series
/// (values are the latencies in ms at that fraction). Mirrors the paper's
/// CDF figures (Figures 7, 8, 10).
[[nodiscard]] std::string render_cdf_table(const std::vector<std::string>& names,
                                           const std::vector<const StatAccumulator*>& series,
                                           std::size_t rows = 20);

/// Box-and-whisker row, as in Figures 2 and 11: p5 [p25 p50 p75] p95.
[[nodiscard]] std::string box_line(const std::string& name, const StatAccumulator& s);

}  // namespace domino::harness
