// Experiment runner: builds a deployment of one protocol on a simulated
// topology, applies the paper's workload, and returns latency statistics.
//
// The runner mirrors the paper's experimental settings (Section 7.1):
// replicas and clients placed in datacenters of the NA or Globe topology,
// open-loop clients at a fixed request rate, Zipfian keys, a warmup period
// excluded from measurement, and commit/execution latency collection.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/stats.h"
#include "core/client.h"
#include "harness/collector.h"
#include "net/fault.h"
#include "net/latency_model.h"
#include "net/topology.h"
#include "obs/calibration.h"
#include "obs/causal.h"
#include "obs/metrics.h"
#include "obs/predict.h"
#include "obs/slo.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "recovery/durable.h"
#include "statemachine/workload.h"
#include "wan/delay_trace.h"
#include "wan/empirical.h"

namespace domino::harness {

struct Scenario {
  net::Topology topology = net::Topology::globe();
  std::vector<std::size_t> replica_dcs;  // datacenter index per replica
  std::vector<std::size_t> client_dcs;   // datacenter index per client
  /// Index (into replica_dcs) of the Multi-Paxos leader / Fast Paxos and
  /// DFP coordinator.
  std::size_t leader_index = 0;

  double rps = 200.0;  // per client, open loop
  sm::WorkloadConfig workload;

  Duration warmup = seconds(2);
  Duration measure = seconds(20);
  Duration cooldown = seconds(2);

  std::uint64_t seed = 1;
  net::JitterParams jitter;
  Duration clock_offset_stddev = milliseconds(1);

  // WAN delay-trace replay (src/wan). When a trace is present, every
  // directed link it names replays that link's empirical delay
  // distribution (wan::EmpiricalLatency) instead of the synthetic jitter
  // model; links absent from the trace keep the default JitterLatency.
  /// Path of a trace CSV, or a directory of *.csv files loaded in sorted
  /// order; empty = no file-based trace.
  std::string trace_dir;
  /// Already-loaded/generated trace; takes precedence over trace_dir so
  /// benches and tests can replay generator output without touching disk.
  std::shared_ptr<const wan::DelayTrace> wan_trace;
  /// Replay window / past-end policy for the empirical models.
  wan::EmpiricalConfig wan_config;

  // Domino knobs.
  Duration additional_delay = Duration::zero();  // added to DFP timestamps
  double measurement_percentile = 95.0;
  Duration probe_interval = milliseconds(10);    // Section 7.1 default
  Duration measurement_window = seconds(1);
  core::ClientConfig::Mode domino_mode = core::ClientConfig::Mode::kAuto;
  /// Section 5.7 every-replica-learner mode: lowers execution latency by a
  /// WAN hop at the cost of O(n^2) acceptance traffic. On for the latency
  /// experiments, off for throughput runs.
  bool domino_all_learners = true;
  /// Section 5.4 adaptive feedback control (future-work extension).
  bool domino_adaptive = false;
  /// Section 5.3.3 pre-sharded timestamps (0 = off).
  std::uint32_t domino_timestamp_shard_space = 0;

  // Capacity model (Figure 13 throughput runs); zero = infinitely fast.
  Duration replica_service_time = Duration::zero();
  double node_egress_bps = 0.0;

  /// When true (default), the run records metrics and protocol events into
  /// RunResult::metrics / RunResult::trace. Disabling reduces every
  /// instrumentation site to one null-pointer branch.
  bool observability = true;
  /// Trace ring capacity (events); older events are overwritten.
  std::size_t trace_capacity = obs::TraceRecorder::kDefaultCapacity;
  /// Causal per-command spans (obs/span.h): every command gets a root span
  /// whose context is piggybacked on the wire, and the run computes
  /// critical-path latency attribution (RunResult::critical_paths). Opt-in:
  /// the piggybacked context adds bytes to every traced message, which
  /// would perturb bytes_sent stats and bandwidth-modelled runs. Requires
  /// `observability`.
  bool command_spans = false;
  /// Span/edge store capacity; overflow drops records and counts them.
  std::size_t span_capacity = obs::SpanStore::kDefaultCapacity;
  /// Prediction audit (obs/predict.h): the Domino client records what it
  /// predicted at every choice point and reconciles it at commit into
  /// per-command error, oracle regret and misprediction attribution;
  /// probers additionally score their percentile predictions against every
  /// realized probe arrival (RunResult::calibration). Opt-in; requires
  /// `observability`. Wire format is untouched either way.
  bool prediction_audit = false;
  /// Decision-record store capacity; overflow is counted, never silent.
  std::size_t predict_capacity = obs::PredictionAudit::kDefaultCapacity;
  /// Time-series telemetry (obs/timeseries.h): a periodic simulator task
  /// snapshots metric deltas into fixed-capacity windows. Zero (default) =
  /// off: no sampler task is scheduled and every existing export stays
  /// byte-identical. Requires `observability`. The sampler only *reads*
  /// metrics, so enabling it never changes wire behaviour.
  Duration timeseries_interval = Duration::zero();
  /// Window capacity; further samples are counted as dropped, never silent.
  std::size_t timeseries_max_windows = obs::Timeseries::kDefaultMaxWindows;
  /// SLO rules + steady-state detector evaluated over the timeline after
  /// the run (obs/slo.h). Ignored unless timeseries_interval is set. The
  /// harness fills slo.evaluate_until with the end of the load window when
  /// left at its TimePoint::max() default, and derives the fault instants
  /// from `faults`.
  obs::SloConfig slo;

  // Robustness knobs (chaos runs).
  /// Timed fault events (crashes, partitions, degradations, route changes)
  /// installed into the network before the run starts. Empty = fault-free.
  net::FaultSchedule faults;
  /// When > 0, every client arms a per-request timeout and re-proposes
  /// (protocol-specific: Domino fails over to DM) up to
  /// client_max_retries times before abandoning the request.
  Duration client_request_timeout = Duration::zero();
  std::size_t client_max_retries = 3;
  /// Deterministic exponential retry backoff (rpc::ClientBase): the wait
  /// before retry k is min(timeout * multiplier^(k-1), cap) * (1+jitter*u)
  /// with u from a per-client seeded stream. multiplier 1 and jitter 0 (the
  /// defaults) reproduce the legacy fixed retry interval.
  double client_backoff_multiplier = 1.0;
  Duration client_backoff_cap = Duration::zero();  // zero = uncapped
  double client_backoff_jitter = 0.0;

  // Crash-recovery knobs (amnesia runs).
  /// When true, every FaultEvent::kRecover wipes the recovered replica's
  /// volatile state through the network restart hook; the replica replays
  /// its durable image and catches up from live peers before re-entering
  /// quorums. When false, crashes only drop packets and a recovered node
  /// keeps its memory (the pre-durability fault model).
  bool amnesia_crashes = false;
  /// Simulated latency of one durable sync. Non-zero puts persistence on
  /// the protocol critical path (promises/acks/commit notices wait for it)
  /// even on fault-free runs. Durability is enabled whenever this is
  /// non-zero, amnesia_crashes is set, or weakened_replicas is non-empty.
  Duration sync_latency = Duration::zero();
  /// Negative-test knob: indices (into replica_dcs) of replicas whose
  /// durable log silently drops appends — the model of a forgotten fsync.
  /// The chaos consistency checker must flag the resulting lost commits.
  std::vector<std::size_t> weakened_replicas;
};

struct RunResult {
  StatAccumulator commit_ms;                    // all clients
  std::vector<StatAccumulator> commit_per_client;
  StatAccumulator exec_ms;
  std::uint64_t submitted = 0;
  std::uint64_t committed = 0;

  // Protocol-specific counters (zero when not applicable).
  std::uint64_t fast_path = 0;
  std::uint64_t slow_path = 0;
  std::uint64_t dfp_chosen = 0;
  std::uint64_t dm_chosen = 0;

  std::uint64_t packets_sent = 0;
  std::uint64_t bytes_sent = 0;

  // Robustness accounting (all zero on fault-free runs without timeouts).
  /// Commits observed by clients over the WHOLE run (warmup + measure +
  /// cooldown) — unlike `committed`, which counts only the measurement
  /// window. The liveness invariant is
  ///   submitted == client_committed + client_abandoned + client_inflight_end.
  std::uint64_t client_committed = 0;
  std::uint64_t packets_dropped = 0;        // total, all reasons
  std::uint64_t drops_crashed_source = 0;
  std::uint64_t drops_crashed_dest = 0;
  std::uint64_t drops_partition = 0;
  /// Order-sensitive digest over every fault transition and drop; equal
  /// digests mean byte-identical fault/drop behaviour (determinism checks).
  std::uint64_t fault_digest = 0;
  std::uint64_t fault_transitions = 0;
  std::uint64_t client_retries = 0;
  std::uint64_t client_abandoned = 0;
  std::uint64_t client_inflight_end = 0;    // submitted but never resolved
  /// KvStore::fingerprint() per replica, in replica order. Replicas that
  /// are crashed at the end of the run may legitimately lag; chaos tests
  /// compare the fingerprints of the live majority.
  std::vector<std::uint64_t> replica_store_fingerprints;
  std::vector<std::uint64_t> replica_applied_counts;
  /// Crash-recovery accounting summed over all replicas (the recovery.*
  /// metrics); all zero unless durability was enabled (see
  /// Scenario::amnesia_crashes / sync_latency / weakened_replicas).
  recovery::RecoveryStats recovery;
  /// Total crashed time over completed crash->recover pairs.
  std::int64_t recovery_downtime_ns = 0;

  /// Committed requests per second of measurement window.
  [[nodiscard]] double throughput_rps() const;
  Duration measure_window = Duration::zero();

  /// Latency order statistics from the collector (single source of truth
  /// for reports and bench tables).
  LatencySummary latency;

  /// Full metrics registry and protocol event trace for the run; null when
  /// Scenario::observability is false.
  std::shared_ptr<obs::MetricsRegistry> metrics;
  std::shared_ptr<obs::TraceRecorder> trace;

  /// Per-command span DAG and critical-path attribution; spans is null (and
  /// critical_paths empty) unless Scenario::command_spans was set.
  std::shared_ptr<obs::SpanStore> spans;
  std::vector<obs::CommandPath> critical_paths;
  /// Decision records + reconciliation aggregates; null unless
  /// Scenario::prediction_audit was set (only Domino populates it).
  std::shared_ptr<obs::PredictionAudit> predict;
  /// Per-(owner,target) estimator-calibration rows, replicas first then
  /// clients, each in construction order; empty unless prediction_audit.
  std::vector<obs::CalibrationRow> calibration;
  /// Protocol events lost to trace-ring overwrite (satellite of the span
  /// work: overflow is counted, never silent).
  std::uint64_t trace_events_dropped = 0;

  /// Windowed telemetry frames; null unless Scenario::timeseries_interval
  /// was set (and observability was on).
  std::shared_ptr<obs::Timeseries> timeseries;
  /// SLO rule + steady-state evaluation over the timeline; default-empty
  /// unless sampling was on. Also surfaced as slo.* metrics.
  obs::SloReport slo;
};

enum class Protocol { kMultiPaxos, kMencius, kEPaxos, kFastPaxos, kDomino };

[[nodiscard]] std::string protocol_name(Protocol p);

/// Run one protocol on one scenario.
[[nodiscard]] RunResult run_protocol(Protocol protocol, const Scenario& scenario);

/// Convenience wrappers.
[[nodiscard]] inline RunResult run_multipaxos(const Scenario& s) {
  return run_protocol(Protocol::kMultiPaxos, s);
}
[[nodiscard]] inline RunResult run_mencius(const Scenario& s) {
  return run_protocol(Protocol::kMencius, s);
}
[[nodiscard]] inline RunResult run_epaxos(const Scenario& s) {
  return run_protocol(Protocol::kEPaxos, s);
}
[[nodiscard]] inline RunResult run_fastpaxos(const Scenario& s) {
  return run_protocol(Protocol::kFastPaxos, s);
}
[[nodiscard]] inline RunResult run_domino(const Scenario& s) {
  return run_protocol(Protocol::kDomino, s);
}

/// The closest replica (index into replica_dcs) for a client datacenter,
/// by topology RTT — how the paper pre-configures Mencius/EPaxos clients.
[[nodiscard]] std::size_t closest_replica(const net::Topology& topology,
                                          const std::vector<std::size_t>& replica_dcs,
                                          std::size_t client_dc);

}  // namespace domino::harness
