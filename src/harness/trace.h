// Synthetic delay-trace generation and arrival-time prediction analysis.
//
// Stands in for the paper's 24-hour Azure probe traces [4, 5]: a directed
// link is modelled as a stable one-way propagation delay plus log-normal
// jitter, rare spikes, optional slow base-delay wander, and optional route
// asymmetry; endpoints carry clock offsets. From a generated trace the
// analysis utilities reproduce:
//   - Figure 3's correct-prediction rate (percentile x window sweep),
//   - Tables 2 and 3's p99 misprediction values for the half-RTT and
//     replica-timestamp OWD estimators.
#pragma once

#include <vector>

#include "common/rng.h"
#include "common/stats.h"
#include "common/time.h"
#include "wan/delay_trace.h"

namespace domino::harness {

struct LinkTraceConfig {
  Duration rtt = milliseconds(67);   // nominal round-trip propagation delay
  double forward_share = 0.5;        // fraction of the RTT on the forward path
  double jitter_mu_ms = -2.0;        // log-normal jitter (per direction)
  double jitter_sigma = 0.8;
  double spike_prob = 0.0005;
  Duration spike_mean = milliseconds(8);
  /// Slow sinusoidal wander of the base delay (amplitude), emulating
  /// diurnal drift; zero disables.
  Duration wander_amplitude = Duration::zero();
  Duration wander_period = seconds(3600);
  /// Clock offset of the remote endpoint relative to the prober.
  Duration remote_clock_offset = Duration::zero();

  Duration probe_interval = milliseconds(10);
  Duration duration = seconds(60);
  std::uint64_t seed = 1;
};

struct ProbeSample {
  TimePoint sent_at;        // prober's clock
  Duration rtt;             // measured round-trip
  Duration owd_measured;    // replica timestamp - send timestamp (includes skew)
  Duration owd_true_offset; // true forward delay + clock skew (what arrivals obey)
};

/// Generate a probe trace over one directed link pair.
[[nodiscard]] std::vector<ProbeSample> generate_trace(const LinkTraceConfig& config);

/// Pair a WAN delay trace's forward and reverse OWD series into probe
/// samples, as an ideal prober with synchronized clocks would observe them:
/// one probe per forward sample, RTT = forward + time-matched reverse delay.
/// The series may have different lengths/intervals; each forward sample is
/// matched with the latest reverse sample at or before its timestamp (the
/// first one, before any reverse data). Throws TraceError if either series
/// is empty. `remote_clock_offset` skews the replica's receipt timestamps.
[[nodiscard]] std::vector<ProbeSample> probe_samples_from_wan(
    const std::vector<wan::TraceSample>& forward,
    const std::vector<wan::TraceSample>& reverse,
    Duration remote_clock_offset = Duration::zero());

enum class OwdEstimator {
  kHalfRtt,           // predicted arrival offset = RTT/2 (no skew correction)
  kReplicaTimestamp,  // Domino's Section 5.4 technique
};

struct PredictionOutcome {
  double correct_rate = 0.0;        // fraction of arrivals at/before prediction
  double p99_misprediction_ms = 0;  // over late arrivals only (paper's metric)
  std::size_t evaluated = 0;
};

/// Replay `trace` through a sliding-window percentile predictor and score
/// arrival-time predictions, exactly as Sections 3 and 5.4 evaluate them:
/// prediction for a request sent at t = t + percentile(window) estimate of
/// the arrival offset; an arrival at or before the prediction is correct;
/// the misprediction value of a late arrival is (actual - predicted).
[[nodiscard]] PredictionOutcome evaluate_predictions(const std::vector<ProbeSample>& trace,
                                                     OwdEstimator estimator, Duration window,
                                                     double percentile);

}  // namespace domino::harness
