#include "harness/runner.h"

#include <functional>
#include <memory>
#include <stdexcept>
#include <unordered_map>

#include "common/rng.h"
#include "core/replica.h"
#include "epaxos/client.h"
#include "epaxos/replica.h"
#include "fastpaxos/client.h"
#include "fastpaxos/replica.h"
#include "harness/collector.h"
#include "mencius/client.h"
#include "mencius/replica.h"
#include "net/network.h"
#include "obs/sink.h"
#include "paxos/client.h"
#include "paxos/replica.h"
#include "sim/simulator.h"

namespace domino::harness {

std::string protocol_name(Protocol p) {
  switch (p) {
    case Protocol::kMultiPaxos: return "Multi-Paxos";
    case Protocol::kMencius: return "Mencius";
    case Protocol::kEPaxos: return "EPaxos";
    case Protocol::kFastPaxos: return "Fast Paxos";
    case Protocol::kDomino: return "Domino";
  }
  return "?";
}

double RunResult::throughput_rps() const {
  if (measure_window <= Duration::zero()) return 0.0;
  return static_cast<double>(committed) / measure_window.seconds();
}

std::size_t closest_replica(const net::Topology& topology,
                            const std::vector<std::size_t>& replica_dcs,
                            std::size_t client_dc) {
  std::size_t best = 0;
  Duration best_rtt = Duration::max();
  for (std::size_t i = 0; i < replica_dcs.size(); ++i) {
    const Duration rtt = topology.rtt(client_dc, replica_dcs[i]);
    if (rtt < best_rtt) {
      best_rtt = rtt;
      best = i;
    }
  }
  return best;
}

namespace {

NodeId replica_id(std::size_t i) { return NodeId{static_cast<std::uint32_t>(i)}; }
NodeId client_id(std::size_t i) { return NodeId{static_cast<std::uint32_t>(1000 + i)}; }

struct Env {
  explicit Env(const Scenario& s)
      : scenario(s),
        network(simulator, s.topology, s.seed),
        clock_rng(s.seed ^ 0x5DEECE66Dull),
        window_start(TimePoint::epoch() + s.warmup),
        window_end(window_start + s.measure),
        collector(window_start, window_end, s.client_dcs.size()),
        durable(recovery::DurableConfig{s.sync_latency}) {
    if (s.replica_dcs.empty()) throw std::invalid_argument("Scenario: no replicas");
    if (s.leader_index >= s.replica_dcs.size()) {
      throw std::invalid_argument("Scenario: bad leader index");
    }
    network.use_default_links(s.jitter);
    if (s.wan_trace != nullptr) {
      wan::apply_trace(*s.wan_trace, network, s.wan_config);
    } else if (!s.trace_dir.empty()) {
      const wan::DelayTrace loaded = wan::DelayTrace::load(s.trace_dir);
      wan::apply_trace(loaded, network, s.wan_config);
    }
    if (!s.faults.empty()) network.install_faults(s.faults);
    if (s.observability) {
      metrics = std::make_shared<obs::MetricsRegistry>();
      trace = std::make_shared<obs::TraceRecorder>(s.trace_capacity);
      if (s.command_spans) {
        spans = std::make_shared<obs::SpanStore>(s.span_capacity, s.span_capacity);
      }
      if (s.prediction_audit) {
        predict = std::make_shared<obs::PredictionAudit>(s.predict_capacity);
        predict->bind_metrics(metrics.get());
      }
      const obs::Sink sink{metrics.get(), trace.get(), spans.get(), predict.get()};
      simulator.bind_obs(sink);
      network.bind_obs(sink);  // nodes pick the sink up at construction
      durable.bind_obs(sink);
      if (s.timeseries_interval > Duration::zero()) {
        timeseries = std::make_shared<obs::Timeseries>(s.timeseries_max_windows);
      }
    }
    for (const std::size_t idx : s.weakened_replicas) {
      if (idx >= s.replica_dcs.size()) {
        throw std::invalid_argument("Scenario: bad weakened replica index");
      }
      durable.weaken(replica_id(idx));
    }
    if (s.amnesia_crashes) {
      // Dispatch every scheduled recover through the restart table: the
      // recover hook (FIFO channel reset) has already run when this fires.
      network.set_restart_hook([this](NodeId node) {
        const auto it = restarters.find(node);
        if (it != restarters.end()) it->second();
      });
    }
  }

  /// Durability is on whenever anything needs the store: amnesiac crashes,
  /// a non-zero sync latency, or a deliberately weakened log.
  [[nodiscard]] bool durability() const {
    return scenario.amnesia_crashes || scenario.sync_latency > Duration::zero() ||
           !scenario.weakened_replicas.empty();
  }

  /// Bind `replica` to the durable store and register its amnesiac-restart
  /// action. Call before moving the owning unique_ptr into the vector is
  /// fine — the pointee address is stable.
  template <typename ReplicaT>
  void enable_recovery(ReplicaT& replica, NodeId id) {
    if (!durability()) return;
    replica.enable_durability(durable);
    if (scenario.amnesia_crashes) {
      restarters[id] = [r = &replica] { r->restart(); };
    }
  }

  sim::LocalClock next_clock() {
    const double stddev = static_cast<double>(scenario.clock_offset_stddev.nanos());
    return sim::LocalClock{Duration{static_cast<std::int64_t>(clock_rng.normal(0, stddev))},
                           /*drift_ppm=*/clock_rng.normal(0, 5.0)};
  }

  /// Configure capacity modelling on a node if the scenario asks for it.
  void apply_capacity(NodeId id, bool is_replica) {
    if (is_replica && scenario.replica_service_time > Duration::zero()) {
      network.set_receive_service_time(id, scenario.replica_service_time);
    }
    if (scenario.node_egress_bps > 0.0) {
      network.set_egress_bandwidth_bps(id, scenario.node_egress_bps);
    }
  }

  /// Start load on the clients, run the full schedule, fill common results.
  template <typename ClientT>
  void drive(std::vector<std::unique_ptr<ClientT>>& clients, RunResult& result) {
    workloads.reserve(clients.size());
    for (std::size_t i = 0; i < clients.size(); ++i) {
      workloads.push_back(std::make_unique<sm::WorkloadGenerator>(
          scenario.workload, scenario.seed * 7919 + i));
      ClientT* client = clients[i].get();
      if (scenario.client_request_timeout > Duration::zero()) {
        client->set_request_timeout(scenario.client_request_timeout,
                                    scenario.client_max_retries);
        client->set_retry_backoff(scenario.client_backoff_multiplier,
                                  scenario.client_backoff_cap,
                                  scenario.client_backoff_jitter,
                                  scenario.seed * 40503 + i);
      }
      client->set_send_hook([this, i](const RequestId& id, TimePoint at) {
        collector.on_send(i, id, at);
      });
      client->set_commit_hook(
          [this, i](const RequestId& id, TimePoint sent, TimePoint committed) {
            collector.on_commit(i, id, sent, committed);
          });
      // Stagger client start to avoid synchronized request bursts.
      const Duration stagger = milliseconds(1) * static_cast<std::int64_t>(i);
      simulator.schedule_after(stagger, [this, client, i] {
        client->start_load(*workloads[i], scenario.rps);
      });
      simulator.schedule_at(window_end, [client] { client->stop_load(); });
    }
    if (timeseries != nullptr) {
      // Read-only sampler on the virtual-time queue: snapshots metric
      // deltas every interval, so enabling it cannot perturb the protocols.
      sampler.start(simulator, scenario.timeseries_interval, scenario.timeseries_interval,
                    [this] { timeseries->sample(*metrics, simulator.now()); });
    }
    simulator.run_until(window_end + scenario.cooldown);
    if (timeseries != nullptr) {
      sampler.stop();
      // Flush the tail: whatever accumulated since the last periodic tick
      // becomes the final (possibly short) window.
      timeseries->sample(*metrics, simulator.now());
    }

    result.commit_ms = collector.commit_ms();
    result.exec_ms = collector.exec_ms();
    result.commit_per_client.reserve(clients.size());
    for (std::size_t i = 0; i < clients.size(); ++i) {
      result.commit_per_client.push_back(collector.commit_ms_of(i));
    }
    for (const auto& c : clients) {
      result.submitted += c->submitted_count();
      result.client_committed += c->committed_count();
      result.client_retries += c->retry_count();
      result.client_abandoned += c->abandoned_count();
      result.client_inflight_end += c->inflight_count();
    }
    result.committed = collector.committed_count();
    result.packets_sent = network.packets_sent();
    result.bytes_sent = network.bytes_sent();
    result.packets_dropped = network.packets_dropped();
    result.drops_crashed_source = network.packets_dropped(net::DropReason::kCrashedSource);
    result.drops_crashed_dest = network.packets_dropped(net::DropReason::kCrashedDest);
    result.drops_partition = network.packets_dropped(net::DropReason::kPartition);
    result.fault_digest = network.fault().digest();
    result.fault_transitions = network.fault().transitions();
    result.recovery = durable.aggregate();
    result.recovery_downtime_ns = network.fault().total_downtime().nanos();
    result.measure_window = scenario.measure;
    result.latency = collector.summarize();
    result.metrics = metrics;
    result.trace = trace;
    result.spans = spans;
    result.predict = predict;
    if (trace != nullptr) {
      // Surface ring-buffer overwrite: dropped events must be visible, not
      // silent (satellite of the span work).
      result.trace_events_dropped = trace->overwritten();
      if (metrics != nullptr) {
        metrics->counter("obs.trace.dropped_events").inc(trace->overwritten());
      }
    }
    if (spans != nullptr) {
      if (metrics != nullptr) {
        metrics->counter("obs.span.dropped_spans").inc(spans->dropped_spans());
        metrics->counter("obs.span.dropped_edges").inc(spans->dropped_edges());
      }
      result.critical_paths = obs::critical_paths(*spans);
      if (metrics != nullptr) obs::accumulate_phases(result.critical_paths, *metrics);
    }
    result.timeseries = timeseries;
    if (timeseries != nullptr) {
      if (metrics != nullptr && timeseries->dropped_windows() > 0) {
        metrics->counter("obs.timeseries.dropped_windows")
            .inc(timeseries->dropped_windows());
      }
      obs::SloConfig cfg = scenario.slo;
      if (cfg.evaluate_until == TimePoint::max()) cfg.evaluate_until = window_end;
      result.slo = obs::evaluate_slo(*timeseries, cfg, fault_instants());
      if (metrics != nullptr) obs::publish_slo_metrics(result.slo, *metrics);
    }
  }

  /// Convert the scenario's fault schedule into the SLO engine's
  /// layering-neutral instants (obs cannot see net/fault.h).
  [[nodiscard]] std::vector<obs::FaultInstant> fault_instants() const {
    std::vector<obs::FaultInstant> out;
    out.reserve(scenario.faults.size());
    for (const net::FaultEvent& e : scenario.faults.events()) {
      const char* kind = "?";
      switch (e.kind) {
        case net::FaultEvent::Kind::kCrash: kind = "crash"; break;
        case net::FaultEvent::Kind::kRecover: kind = "recover"; break;
        case net::FaultEvent::Kind::kPartition: kind = "partition"; break;
        case net::FaultEvent::Kind::kHeal: kind = "heal"; break;
        case net::FaultEvent::Kind::kDegradeStart: kind = "degrade_start"; break;
        case net::FaultEvent::Kind::kDegradeEnd: kind = "degrade_end"; break;
        case net::FaultEvent::Kind::kRouteChange: kind = "route_change"; break;
      }
      out.push_back(obs::FaultInstant{e.at, kind, e.node});
    }
    return out;
  }

  /// Record each replica's state-machine fingerprint (chaos convergence
  /// checks compare these across the live majority).
  template <typename ReplicaT>
  void collect_stores(const std::vector<std::unique_ptr<ReplicaT>>& replicas,
                      RunResult& result) const {
    result.replica_store_fingerprints.reserve(replicas.size());
    result.replica_applied_counts.reserve(replicas.size());
    for (const auto& r : replicas) {
      result.replica_store_fingerprints.push_back(r->store().fingerprint());
      result.replica_applied_counts.push_back(r->store().applied_count());
    }
  }

  const Scenario& scenario;
  // Declared before the simulator/network/nodes so every obs handle stays
  // valid for the users' whole lifetime (members destroy in reverse order).
  std::shared_ptr<obs::MetricsRegistry> metrics;
  std::shared_ptr<obs::TraceRecorder> trace;
  std::shared_ptr<obs::SpanStore> spans;
  std::shared_ptr<obs::PredictionAudit> predict;
  std::shared_ptr<obs::Timeseries> timeseries;
  sim::Simulator simulator;
  sim::PeriodicTimer sampler;
  net::Network network;
  Rng clock_rng;
  TimePoint window_start;
  TimePoint window_end;
  LatencyCollector collector;
  std::vector<std::unique_ptr<sm::WorkloadGenerator>> workloads;
  recovery::DurableStore durable;  // outlives replicas (impl-function locals)
  std::unordered_map<NodeId, std::function<void()>> restarters;
};

RunResult run_multipaxos_impl(const Scenario& s) {
  Env env(s);
  RunResult result;

  std::vector<NodeId> rids;
  for (std::size_t i = 0; i < s.replica_dcs.size(); ++i) rids.push_back(replica_id(i));
  const NodeId leader = rids[s.leader_index];

  std::vector<std::unique_ptr<paxos::Replica>> replicas;
  for (std::size_t i = 0; i < s.replica_dcs.size(); ++i) {
    auto r = std::make_unique<paxos::Replica>(rids[i], s.replica_dcs[i], env.network, rids,
                                              leader, env.next_clock());
    r->attach();
    env.enable_recovery(*r, rids[i]);
    env.apply_capacity(rids[i], true);
    r->set_execute_hook([&env](const RequestId& id, TimePoint at) {
      env.collector.on_execute(id, at);
    });
    replicas.push_back(std::move(r));
  }

  std::vector<std::unique_ptr<paxos::Client>> clients;
  for (std::size_t i = 0; i < s.client_dcs.size(); ++i) {
    auto c = std::make_unique<paxos::Client>(client_id(i), s.client_dcs[i], env.network,
                                             leader, env.next_clock());
    c->attach();
    env.apply_capacity(client_id(i), false);
    clients.push_back(std::move(c));
  }

  env.drive(clients, result);
  env.collect_stores(replicas, result);
  return result;
}

RunResult run_mencius_impl(const Scenario& s) {
  Env env(s);
  RunResult result;

  std::vector<NodeId> rids;
  for (std::size_t i = 0; i < s.replica_dcs.size(); ++i) rids.push_back(replica_id(i));

  std::vector<std::unique_ptr<mencius::Replica>> replicas;
  for (std::size_t i = 0; i < s.replica_dcs.size(); ++i) {
    auto r = std::make_unique<mencius::Replica>(rids[i], s.replica_dcs[i], env.network, rids,
                                                milliseconds(10), env.next_clock());
    r->attach();
    env.enable_recovery(*r, rids[i]);
    r->start();
    env.apply_capacity(rids[i], true);
    r->set_execute_hook([&env](const RequestId& id, TimePoint at) {
      env.collector.on_execute(id, at);
    });
    replicas.push_back(std::move(r));
  }

  std::vector<std::unique_ptr<mencius::Client>> clients;
  for (std::size_t i = 0; i < s.client_dcs.size(); ++i) {
    const NodeId coordinator =
        rids[closest_replica(s.topology, s.replica_dcs, s.client_dcs[i])];
    auto c = std::make_unique<mencius::Client>(client_id(i), s.client_dcs[i], env.network,
                                               coordinator, env.next_clock());
    c->attach();
    env.apply_capacity(client_id(i), false);
    clients.push_back(std::move(c));
  }

  env.drive(clients, result);
  env.collect_stores(replicas, result);
  return result;
}

RunResult run_epaxos_impl(const Scenario& s) {
  Env env(s);
  RunResult result;

  std::vector<NodeId> rids;
  for (std::size_t i = 0; i < s.replica_dcs.size(); ++i) rids.push_back(replica_id(i));

  std::vector<std::unique_ptr<epaxos::Replica>> replicas;
  for (std::size_t i = 0; i < s.replica_dcs.size(); ++i) {
    auto r = std::make_unique<epaxos::Replica>(rids[i], s.replica_dcs[i], env.network, rids,
                                               env.next_clock());
    r->attach();
    env.enable_recovery(*r, rids[i]);
    env.apply_capacity(rids[i], true);
    r->set_execute_hook([&env](const RequestId& id, TimePoint at) {
      env.collector.on_execute(id, at);
    });
    replicas.push_back(std::move(r));
  }

  std::vector<std::unique_ptr<epaxos::Client>> clients;
  for (std::size_t i = 0; i < s.client_dcs.size(); ++i) {
    const NodeId leader = rids[closest_replica(s.topology, s.replica_dcs, s.client_dcs[i])];
    auto c = std::make_unique<epaxos::Client>(client_id(i), s.client_dcs[i], env.network,
                                              leader, env.next_clock());
    c->attach();
    env.apply_capacity(client_id(i), false);
    clients.push_back(std::move(c));
  }

  env.drive(clients, result);
  env.collect_stores(replicas, result);
  for (const auto& r : replicas) {
    result.fast_path += r->fast_path_commits();
    result.slow_path += r->slow_path_commits();
  }
  return result;
}

RunResult run_fastpaxos_impl(const Scenario& s) {
  Env env(s);
  RunResult result;

  std::vector<NodeId> rids;
  for (std::size_t i = 0; i < s.replica_dcs.size(); ++i) rids.push_back(replica_id(i));
  const NodeId coordinator = rids[s.leader_index];

  std::vector<std::unique_ptr<fastpaxos::Replica>> replicas;
  for (std::size_t i = 0; i < s.replica_dcs.size(); ++i) {
    auto r = std::make_unique<fastpaxos::Replica>(rids[i], s.replica_dcs[i], env.network,
                                                  rids, coordinator, milliseconds(500),
                                                  env.next_clock());
    r->attach();
    env.enable_recovery(*r, rids[i]);
    env.apply_capacity(rids[i], true);
    r->set_execute_hook([&env](const RequestId& id, TimePoint at) {
      env.collector.on_execute(id, at);
    });
    replicas.push_back(std::move(r));
  }

  std::vector<std::unique_ptr<fastpaxos::Client>> clients;
  for (std::size_t i = 0; i < s.client_dcs.size(); ++i) {
    auto c = std::make_unique<fastpaxos::Client>(client_id(i), s.client_dcs[i], env.network,
                                                 rids, env.next_clock());
    c->attach();
    env.apply_capacity(client_id(i), false);
    clients.push_back(std::move(c));
  }

  env.drive(clients, result);
  env.collect_stores(replicas, result);
  for (const auto& r : replicas) {
    result.fast_path += r->fast_commits();
    result.slow_path += r->slow_commits();
  }
  return result;
}

RunResult run_domino_impl(const Scenario& s) {
  Env env(s);
  RunResult result;

  std::vector<NodeId> rids;
  for (std::size_t i = 0; i < s.replica_dcs.size(); ++i) rids.push_back(replica_id(i));
  const NodeId coordinator = rids[s.leader_index];

  std::vector<std::unique_ptr<core::Replica>> replicas;
  for (std::size_t i = 0; i < s.replica_dcs.size(); ++i) {
    core::ReplicaConfig rc;
    rc.prober.percentile = s.measurement_percentile;
    rc.prober.probe_interval = s.probe_interval;
    rc.prober.window = s.measurement_window;
    rc.all_replicas_learn = s.domino_all_learners;
    auto r = std::make_unique<core::Replica>(rids[i], s.replica_dcs[i], env.network, rids,
                                             coordinator, rc, env.next_clock());
    r->attach();
    env.enable_recovery(*r, rids[i]);
    r->start();
    env.apply_capacity(rids[i], true);
    r->set_execute_hook([&env](const RequestId& id, TimePoint at) {
      env.collector.on_execute(id, at);
    });
    replicas.push_back(std::move(r));
  }

  std::vector<std::unique_ptr<core::Client>> clients;
  for (std::size_t i = 0; i < s.client_dcs.size(); ++i) {
    core::ClientConfig cc;
    cc.prober.percentile = s.measurement_percentile;
    cc.prober.probe_interval = s.probe_interval;
    cc.prober.window = s.measurement_window;
    cc.additional_delay = s.additional_delay;
    cc.mode = s.domino_mode;
    cc.adaptive = s.domino_adaptive;
    cc.timestamp_shard_space = s.domino_timestamp_shard_space;
    auto c = std::make_unique<core::Client>(client_id(i), s.client_dcs[i], env.network,
                                            rids, cc, env.next_clock());
    c->attach();
    c->start();
    env.apply_capacity(client_id(i), false);
    clients.push_back(std::move(c));
  }

  env.drive(clients, result);
  env.collect_stores(replicas, result);
  for (const auto& r : replicas) {
    result.fast_path += r->dfp_fast_commits();
    result.slow_path += r->dfp_slow_commits();
  }
  for (const auto& c : clients) {
    result.dfp_chosen += c->dfp_chosen();
    result.dm_chosen += c->dm_chosen();
  }
  if (s.prediction_audit && s.observability) {
    // Estimator calibration: every prober's predicted-vs-realized score
    // card, replicas first then clients, in construction order (each
    // prober's targets are already in registered order) — deterministic.
    for (const auto& r : replicas) {
      const auto rows = obs::calibration_rows(r->prober().calibration());
      result.calibration.insert(result.calibration.end(), rows.begin(), rows.end());
    }
    for (const auto& c : clients) {
      const auto rows = obs::calibration_rows(c->prober().calibration());
      result.calibration.insert(result.calibration.end(), rows.begin(), rows.end());
    }
  }
  return result;
}

}  // namespace

RunResult run_protocol(Protocol protocol, const Scenario& scenario) {
  switch (protocol) {
    case Protocol::kMultiPaxos: return run_multipaxos_impl(scenario);
    case Protocol::kMencius: return run_mencius_impl(scenario);
    case Protocol::kEPaxos: return run_epaxos_impl(scenario);
    case Protocol::kFastPaxos: return run_fastpaxos_impl(scenario);
    case Protocol::kDomino: return run_domino_impl(scenario);
  }
  throw std::logic_error("run_protocol: unknown protocol");
}

}  // namespace domino::harness
