#include "harness/run_report.h"

#include "obs/chrome_trace.h"
#include "obs/export.h"

namespace domino::harness {

namespace {

// Shared formatting helpers (obs/json.h) under the names this file has
// always used.
using obs::append_u64;
using obs::append_i64;

void append_f(std::string& out, const char* fmt, double v) { obs::appendf(out, fmt, v); }

void append_latency_stats(std::string& out, const LatencyStats& s) {
  out += "{\"count\":";
  append_u64(out, s.count);
  out += ",\"mean\":";
  append_f(out, "%.6f", s.mean);
  out += ",\"min\":";
  append_f(out, "%.6f", s.min);
  out += ",\"max\":";
  append_f(out, "%.6f", s.max);
  out += ",\"p50\":";
  append_f(out, "%.6f", s.p50);
  out += ",\"p95\":";
  append_f(out, "%.6f", s.p95);
  out += ",\"p99\":";
  append_f(out, "%.6f", s.p99);
  out += "}";
}

}  // namespace

std::string RunReport::to_json(bool include_trace) const {
  std::string out = "{\n";
  out += "\"protocol\":\"" + obs::json_escape(protocol) + "\",\n";
  out += "\"seed\":";
  append_u64(out, seed);
  out += ",\n\"replicas\":";
  append_u64(out, replicas);
  out += ",\n\"clients\":";
  append_u64(out, clients);
  out += ",\n\"rps_per_client\":";
  append_f(out, "%.3f", rps);
  out += ",\n\"warmup_ms\":";
  append_f(out, "%.3f", warmup.millis());
  out += ",\n\"measure_ms\":";
  append_f(out, "%.3f", measure.millis());
  out += ",\n\"submitted\":";
  append_u64(out, submitted);
  out += ",\n\"committed\":";
  append_u64(out, committed);
  out += ",\n\"throughput_rps\":";
  append_f(out, "%.3f", throughput_rps);
  out += ",\n\"fast_path\":";
  append_u64(out, fast_path);
  out += ",\n\"slow_path\":";
  append_u64(out, slow_path);
  out += ",\n\"packets_sent\":";
  append_u64(out, packets_sent);
  out += ",\n\"bytes_sent\":";
  append_u64(out, bytes_sent);
  out += ",\n\"recovery\":{\"restarts\":";
  append_u64(out, recovery.restarts);
  out += ",\"persisted_records\":";
  append_u64(out, recovery.persisted_records);
  out += ",\"persisted_bytes\":";
  append_u64(out, recovery.persisted_bytes);
  out += ",\"replayed_records\":";
  append_u64(out, recovery.replayed_records);
  out += ",\"replayed_bytes\":";
  append_u64(out, recovery.replayed_bytes);
  out += ",\"catchup_installs\":";
  append_u64(out, recovery.catchup_installs);
  out += ",\"catchup_bytes\":";
  append_u64(out, recovery.catchup_bytes);
  out += ",\"rejoin_ns_total\":";
  append_i64(out, recovery.rejoin_ns_total);
  out += ",\"downtime_ns\":";
  append_i64(out, recovery_downtime_ns);
  out += "}";
  out += ",\n\"latency\":{\"commit_ms\":";
  append_latency_stats(out, latency.commit_ms);
  out += ",\"exec_ms\":";
  append_latency_stats(out, latency.exec_ms);
  out += ",\"tracked\":";
  append_u64(out, latency.tracked);
  out += ",\"committed\":";
  append_u64(out, latency.committed);
  out += "}";
  if (metrics != nullptr) {
    out += ",\n\"metrics\":" + obs::metrics_to_json(*metrics);
  }
  if (trace != nullptr) {
    out += ",\n\"trace_events_recorded\":";
    append_u64(out, trace->total_recorded());
    out += ",\n\"trace_events_retained\":";
    append_u64(out, trace->size());
    out += ",\n\"trace_events_dropped\":";
    append_u64(out, trace_events_dropped);
    if (include_trace) {
      out += ",\n\"trace\":" + obs::trace_to_json(*trace);
    }
  }
  if (spans != nullptr) {
    out += ",\n\"spans_recorded\":";
    append_u64(out, spans->spans().size());
    out += ",\n\"span_edges_recorded\":";
    append_u64(out, spans->edges().size());
    out += ",\n\"spans_dropped\":";
    append_u64(out, spans->dropped_spans());
    out += ",\n\"span_edges_dropped\":";
    append_u64(out, spans->dropped_edges());
    out += ",\n\"critical_paths\":";
    append_u64(out, critical_paths.size());
  }
  if (predict != nullptr) {
    // Aggregates only; the per-decision rows live in predict_csv().
    out += ",\n\"predict\":{\"decisions\":";
    append_u64(out, predict->decisions());
    out += ",\"reconciled\":";
    append_u64(out, predict->reconciled());
    out += ",\"pending\":";
    append_u64(out, predict->pending());
    out += ",\"dropped\":";
    append_u64(out, predict->dropped());
    out += ",\"fast_path\":";
    append_u64(out, predict->fast_path());
    out += ",\"slow_path\":";
    append_u64(out, predict->slow_path());
    out += ",\"dm_commits\":";
    append_u64(out, predict->dm_commits());
    out += ",\"failovers\":";
    append_u64(out, predict->failovers());
    out += ",\"adaptive_overrides\":";
    append_u64(out, predict->adaptive_overrides());
    out += ",\"error_samples\":";
    append_u64(out, predict->error_samples());
    out += ",\"error_abs_sum_ns\":";
    append_i64(out, predict->error_abs_sum_ns());
    out += ",\"regret_samples\":";
    append_u64(out, predict->regret_samples());
    out += ",\"regret_sum_ns\":";
    append_i64(out, predict->regret_sum_ns());
    out += ",\"regret_max_ns\":";
    append_i64(out, predict->regret_max_ns());
    out += "}";
    out += ",\n\"calibration\":{\"series\":";
    append_u64(out, calibration.size());
    std::uint64_t samples = 0;
    std::uint64_t covered = 0;
    for (const obs::CalibrationRow& row : calibration) {
      samples += row.samples;
      covered += row.covered;
    }
    out += ",\"samples\":";
    append_u64(out, samples);
    out += ",\"covered\":";
    append_u64(out, covered);
    out += "}";
  }
  if (timeseries != nullptr) {
    out += ",\n\"timeline\":{\"interval_ms\":";
    append_f(out, "%.3f", timeseries_interval.millis());
    out += ",\"series\":";
    obs::append_timeseries_json(out, *timeseries);
    out += "}";
    out += ",\n\"slo\":";
    obs::append_slo_json(out, slo);
  }
  out += "\n}\n";
  return out;
}

void RunReport::write(const std::string& path, bool include_trace) const {
  obs::write_file(path, to_json(include_trace));
}

std::string RunReport::chrome_trace() const {
  return obs::chrome_trace_json(spans.get(), trace.get());
}

std::string RunReport::command_csv() const {
  return obs::paths_to_csv(critical_paths, protocol);
}

std::string RunReport::predict_csv() const {
  static const std::vector<obs::DecisionRecord> kEmpty;
  return obs::decisions_to_csv(predict != nullptr ? predict->records() : kEmpty, protocol);
}

std::string RunReport::calibration_csv() const { return obs::calibration_to_csv(calibration); }

std::string RunReport::timeline_csv() const {
  if (timeseries == nullptr) {
    return "window,start_ns,end_ns,kind,name,field,value\n";
  }
  return obs::timeseries_to_csv(*timeseries);
}

RunReport make_report(Protocol protocol, const Scenario& scenario, const RunResult& result) {
  RunReport r;
  r.protocol = protocol_name(protocol);
  r.seed = scenario.seed;
  r.replicas = scenario.replica_dcs.size();
  r.clients = scenario.client_dcs.size();
  r.rps = scenario.rps;
  r.warmup = scenario.warmup;
  r.measure = scenario.measure;
  r.submitted = result.submitted;
  r.committed = result.committed;
  r.throughput_rps = result.throughput_rps();
  r.fast_path = result.fast_path;
  r.slow_path = result.slow_path;
  r.packets_sent = result.packets_sent;
  r.bytes_sent = result.bytes_sent;
  r.recovery = result.recovery;
  r.recovery_downtime_ns = result.recovery_downtime_ns;
  r.latency = result.latency;
  r.metrics = result.metrics;
  r.trace = result.trace;
  r.spans = result.spans;
  r.critical_paths = result.critical_paths;
  r.trace_events_dropped = result.trace_events_dropped;
  r.predict = result.predict;
  r.calibration = result.calibration;
  r.timeseries = result.timeseries;
  r.slo = result.slo;
  r.timeseries_interval = scenario.timeseries_interval;
  return r;
}

}  // namespace domino::harness
