#include "harness/report.h"

#include <cstdio>

namespace domino::harness {

std::string summary_line(const std::string& name, const StatAccumulator& s) {
  char buf[160];
  if (s.empty()) {
    std::snprintf(buf, sizeof(buf), "%-14s (no samples)", name.c_str());
    return buf;
  }
  std::snprintf(buf, sizeof(buf),
                "%-14s p50=%7.1fms  p95=%7.1fms  p99=%7.1fms  mean=%7.1fms  n=%zu",
                name.c_str(), s.percentile(50), s.percentile(95), s.percentile(99), s.mean(),
                s.count());
  return buf;
}

std::string render_cdf_table(const std::vector<std::string>& names,
                             const std::vector<const StatAccumulator*>& series,
                             std::size_t rows) {
  std::string out = "  CDF   ";
  char buf[96];
  for (const auto& n : names) {
    std::snprintf(buf, sizeof(buf), "%12s", n.c_str());
    out += buf;
  }
  out += "\n";
  for (std::size_t i = 1; i <= rows; ++i) {
    const double frac = static_cast<double>(i) / static_cast<double>(rows);
    std::snprintf(buf, sizeof(buf), "%6.3f  ", frac);
    out += buf;
    for (const auto* s : series) {
      if (s == nullptr || s->empty()) {
        std::snprintf(buf, sizeof(buf), "%12s", "-");
      } else {
        std::snprintf(buf, sizeof(buf), "%12.1f", s->percentile(frac * 100.0));
      }
      out += buf;
    }
    out += "\n";
  }
  return out;
}

std::string box_line(const std::string& name, const StatAccumulator& s) {
  char buf[200];
  if (s.empty()) {
    std::snprintf(buf, sizeof(buf), "%-14s (no samples)", name.c_str());
    return buf;
  }
  const auto b = s.box_summary();
  std::snprintf(buf, sizeof(buf),
                "%-14s p5=%7.1f  [p25=%7.1f  p50=%7.1f  p75=%7.1f]  p95=%7.1f  (ms)",
                name.c_str(), b.p5, b.p25, b.p50, b.p75, b.p95);
  return buf;
}

}  // namespace domino::harness
