// Network-geometry analysis (paper Section 4).
//
// Over a topology's RTT matrix, enumerate replica placements and client
// locations and compare the idealized (conflict-free) commit latency of
// Fast Paxos, Mencius, and Multi-Paxos:
//   Fast Paxos : q-th smallest client->replica RTT (q = supermajority),
//   Mencius    : RTT(client, closest replica c) + L_c,
//   Multi-Paxos: RTT(client, leader) + L_leader,
// where L_r is the majority-th smallest RTT from r to all replicas (self =
// 0). The paper reports Fast Paxos winning 32.5% of cases against Mencius
// and 70.8% against Multi-Paxos on the Globe matrix with 3 replicas.
#pragma once

#include <cstddef>
#include <vector>

#include "common/time.h"
#include "net/topology.h"

namespace domino::harness {

struct GeometryCase {
  std::vector<std::size_t> replica_dcs;
  std::size_t client_dc = 0;
  std::size_t leader_index = 0;  // Multi-Paxos leader for this case
  Duration fast_paxos;
  Duration mencius;
  Duration multi_paxos;
};

struct GeometrySummary {
  std::vector<GeometryCase> cases;
  double fp_beats_mencius = 0.0;     // fraction of cases
  double fp_beats_multipaxos = 0.0;  // fraction of cases
};

/// Idealized commit latencies for one placement.
[[nodiscard]] Duration fast_paxos_latency(const net::Topology& topology,
                                          const std::vector<std::size_t>& replica_dcs,
                                          std::size_t client_dc);
[[nodiscard]] Duration replication_latency(const net::Topology& topology,
                                           const std::vector<std::size_t>& replica_dcs,
                                           std::size_t replica_index);
[[nodiscard]] Duration mencius_latency(const net::Topology& topology,
                                       const std::vector<std::size_t>& replica_dcs,
                                       std::size_t client_dc);
[[nodiscard]] Duration multipaxos_latency(const net::Topology& topology,
                                          const std::vector<std::size_t>& replica_dcs,
                                          std::size_t client_dc, std::size_t leader_index);

/// Enumerate every unordered placement of `replica_count` replicas in
/// distinct datacenters, every client datacenter, and every leader choice
/// (enumerating leaders reproduces the paper's "randomly select a replica
/// to be the leader" in expectation).
[[nodiscard]] GeometrySummary analyze_geometry(const net::Topology& topology,
                                               std::size_t replica_count);

}  // namespace domino::harness
