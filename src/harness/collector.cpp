#include "harness/collector.h"

namespace domino::harness {

void LatencyCollector::on_send(std::size_t client_index, const RequestId& id, TimePoint at) {
  (void)client_index;
  if (at < window_start_ || at > window_end_) return;
  pending_exec_.emplace(id, at);
  ++tracked_;
}

void LatencyCollector::on_commit(std::size_t client_index, const RequestId& id,
                                 TimePoint sent_at, TimePoint committed_at) {
  if (sent_at < window_start_ || sent_at > window_end_) return;
  (void)id;
  const double ms = (committed_at - sent_at).millis();
  commit_.add(ms);
  if (client_index < per_client_.size()) per_client_[client_index].add(ms);
  ++committed_;
}

void LatencyCollector::on_execute(const RequestId& id, TimePoint at) {
  auto it = pending_exec_.find(id);
  if (it == pending_exec_.end()) return;  // untracked
  exec_.add((at - it->second).millis());
}

}  // namespace domino::harness
