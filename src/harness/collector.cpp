#include "harness/collector.h"

namespace domino::harness {

void LatencyCollector::on_send(std::size_t client_index, const RequestId& id, TimePoint at) {
  (void)client_index;
  if (at < window_start_ || at > window_end_) return;
  pending_exec_.emplace(id, at);
  ++tracked_;
}

void LatencyCollector::on_commit(std::size_t client_index, const RequestId& id,
                                 TimePoint sent_at, TimePoint committed_at) {
  if (sent_at < window_start_ || sent_at > window_end_) return;
  (void)id;
  const double ms = (committed_at - sent_at).millis();
  commit_.add(ms);
  if (client_index < per_client_.size()) per_client_[client_index].add(ms);
  ++committed_;
}

void LatencyCollector::on_execute(const RequestId& id, TimePoint at) {
  auto it = pending_exec_.find(id);
  if (it == pending_exec_.end()) return;  // untracked
  exec_.add((at - it->second).millis());
}

LatencyStats summarize_stats(const StatAccumulator& acc) {
  LatencyStats s;
  s.count = acc.count();
  if (acc.empty()) return s;
  s.mean = acc.mean();
  s.min = acc.min();
  s.max = acc.max();
  s.p50 = acc.percentile(50);
  s.p95 = acc.percentile(95);
  s.p99 = acc.percentile(99);
  return s;
}

LatencySummary LatencyCollector::summarize() const {
  LatencySummary s;
  s.commit_ms = summarize_stats(commit_);
  s.exec_ms = summarize_stats(exec_);
  s.tracked = tracked_;
  s.committed = committed_;
  return s;
}

}  // namespace domino::harness
