// Latency collection for experiment runs.
//
// Commit latency: client submit -> client learns commit (the paper's metric
// throughout Section 7). Execution latency: client submit -> execution of
// the command, sampled at every replica (Section 7.2.3) — protocols whose
// followers learn commits late (leader-based notification chains) therefore
// show a heavier execution tail than protocols that execute in globally
// synchronized timestamp order. Only requests submitted within the
// measurement window are recorded, mirroring the paper's "each experiment
// lasts 90 s, and we use the results in the middle 60 s".
#pragma once

#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "common/stats.h"
#include "common/time.h"

namespace domino::harness {

/// Order statistics of one latency series, in milliseconds.
struct LatencyStats {
  std::size_t count = 0;
  double mean = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

/// Condensed view of a collector — the single source of truth the
/// RunReport exporter and the bench tables both read from.
struct LatencySummary {
  LatencyStats commit_ms;
  LatencyStats exec_ms;
  std::size_t tracked = 0;
  std::size_t committed = 0;
};

[[nodiscard]] LatencyStats summarize_stats(const StatAccumulator& acc);

class LatencyCollector {
 public:
  LatencyCollector(TimePoint window_start, TimePoint window_end, std::size_t client_count)
      : window_start_(window_start), window_end_(window_end), per_client_(client_count) {}

  /// Wire into ClientBase::set_send_hook. `client_index` selects the
  /// per-client accumulator.
  void on_send(std::size_t client_index, const RequestId& id, TimePoint at);

  /// Wire into ClientBase::set_commit_hook.
  void on_commit(std::size_t client_index, const RequestId& id, TimePoint sent_at,
                 TimePoint committed_at);

  /// Wire into every replica's execute hook; each replica's execution of a
  /// tracked command contributes one sample.
  void on_execute(const RequestId& id, TimePoint at);

  [[nodiscard]] const StatAccumulator& commit_ms() const { return commit_; }
  [[nodiscard]] const StatAccumulator& exec_ms() const { return exec_; }
  [[nodiscard]] const StatAccumulator& commit_ms_of(std::size_t client) const {
    return per_client_.at(client);
  }
  [[nodiscard]] std::size_t tracked_count() const { return tracked_; }
  [[nodiscard]] std::size_t committed_count() const { return committed_; }

  /// Snapshot the order statistics of everything collected so far.
  [[nodiscard]] LatencySummary summarize() const;

 private:
  TimePoint window_start_;
  TimePoint window_end_;
  StatAccumulator commit_;
  StatAccumulator exec_;
  std::vector<StatAccumulator> per_client_;
  std::unordered_map<RequestId, TimePoint> pending_exec_;  // tracked, not yet executed
  std::size_t tracked_ = 0;
  std::size_t committed_ = 0;
};

}  // namespace domino::harness
