// Per-run report: one JSON document tying together the scenario, the
// latency summary (from the LatencyCollector), the full metrics registry
// and the protocol event trace. Deterministic: same seed, same protocol,
// same scenario => byte-identical report (all timestamps are virtual, all
// maps iterate in name order).
#pragma once

#include <string>

#include "harness/runner.h"

namespace domino::harness {

struct RunReport {
  std::string protocol;
  std::uint64_t seed = 0;
  std::size_t replicas = 0;
  std::size_t clients = 0;
  double rps = 0.0;
  Duration warmup = Duration::zero();
  Duration measure = Duration::zero();

  std::uint64_t submitted = 0;
  std::uint64_t committed = 0;
  double throughput_rps = 0.0;
  std::uint64_t fast_path = 0;
  std::uint64_t slow_path = 0;
  std::uint64_t packets_sent = 0;
  std::uint64_t bytes_sent = 0;

  LatencySummary latency;

  // Borrowed from the RunResult; may be null (observability disabled).
  std::shared_ptr<obs::MetricsRegistry> metrics;
  std::shared_ptr<obs::TraceRecorder> trace;

  /// Render the whole report as a JSON document. The trace is included as
  /// text lines when `include_trace` is set (it can be large).
  [[nodiscard]] std::string to_json(bool include_trace = false) const;

  /// Write to_json(include_trace) to `path`.
  void write(const std::string& path, bool include_trace = false) const;
};

/// Assemble a report from a finished run.
[[nodiscard]] RunReport make_report(Protocol protocol, const Scenario& scenario,
                                    const RunResult& result);

}  // namespace domino::harness
