// Per-run report: one JSON document tying together the scenario, the
// latency summary (from the LatencyCollector), the full metrics registry
// and the protocol event trace. Deterministic: same seed, same protocol,
// same scenario => byte-identical report (all timestamps are virtual, all
// maps iterate in name order).
#pragma once

#include <string>

#include "harness/runner.h"

namespace domino::harness {

struct RunReport {
  std::string protocol;
  std::uint64_t seed = 0;
  std::size_t replicas = 0;
  std::size_t clients = 0;
  double rps = 0.0;
  Duration warmup = Duration::zero();
  Duration measure = Duration::zero();

  std::uint64_t submitted = 0;
  std::uint64_t committed = 0;
  double throughput_rps = 0.0;
  std::uint64_t fast_path = 0;
  std::uint64_t slow_path = 0;
  std::uint64_t packets_sent = 0;
  std::uint64_t bytes_sent = 0;
  /// Crash-recovery accounting (all zero on runs without durability).
  recovery::RecoveryStats recovery;
  std::int64_t recovery_downtime_ns = 0;

  LatencySummary latency;

  // Borrowed from the RunResult; may be null (observability disabled).
  std::shared_ptr<obs::MetricsRegistry> metrics;
  std::shared_ptr<obs::TraceRecorder> trace;
  std::shared_ptr<obs::SpanStore> spans;  // null unless Scenario::command_spans
  std::vector<obs::CommandPath> critical_paths;
  std::uint64_t trace_events_dropped = 0;
  /// Decision-record audit; null unless Scenario::prediction_audit (the
  /// "predict" JSON block and predict_csv() are omitted/empty then).
  std::shared_ptr<obs::PredictionAudit> predict;
  std::vector<obs::CalibrationRow> calibration;
  /// Windowed telemetry + SLO evaluation; timeseries is null (and the
  /// "timeline"/"slo" JSON blocks omitted) unless
  /// Scenario::timeseries_interval was set.
  std::shared_ptr<obs::Timeseries> timeseries;
  obs::SloReport slo;
  Duration timeseries_interval = Duration::zero();

  /// Render the whole report as a JSON document. The trace is included as
  /// text lines when `include_trace` is set (it can be large).
  [[nodiscard]] std::string to_json(bool include_trace = false) const;

  /// Write to_json(include_trace) to `path`.
  void write(const std::string& path, bool include_trace = false) const;

  /// Chrome trace_event JSON for the run (spans + message flows + fault
  /// instants). Valid (if empty) even when spans were disabled.
  [[nodiscard]] std::string chrome_trace() const;

  /// Per-command critical-path CSV (obs::paths_to_csv with this report's
  /// protocol name).
  [[nodiscard]] std::string command_csv() const;

  /// Per-command decision-record CSV (obs::decisions_to_csv). Header-only
  /// when the prediction audit was disabled or recorded nothing.
  [[nodiscard]] std::string predict_csv() const;

  /// Per-(owner,target) estimator-calibration CSV (obs::calibration_to_csv).
  [[nodiscard]] std::string calibration_csv() const;

  /// Per-window telemetry CSV (obs::timeseries_to_csv). Header-only when
  /// sampling was off.
  [[nodiscard]] std::string timeline_csv() const;
};

/// Assemble a report from a finished run.
[[nodiscard]] RunReport make_report(Protocol protocol, const Scenario& scenario,
                                    const RunResult& result);

}  // namespace domino::harness
