#include "harness/trace.h"

#include <cmath>

#include "common/window_estimator.h"

namespace domino::harness {
namespace {

Duration jitter(Rng& rng, const LinkTraceConfig& c) {
  Duration j = milliseconds_d(rng.lognormal(c.jitter_mu_ms, c.jitter_sigma));
  if (c.spike_prob > 0 && rng.chance(c.spike_prob)) {
    j += Duration{static_cast<std::int64_t>(
        rng.exponential(static_cast<double>(c.spike_mean.nanos())))};
  }
  return j;
}

Duration wander(const LinkTraceConfig& c, TimePoint at) {
  if (c.wander_amplitude == Duration::zero()) return Duration::zero();
  const double phase =
      2.0 * M_PI * at.seconds() / std::max(1.0, c.wander_period.seconds());
  return scale(c.wander_amplitude, std::sin(phase));
}

}  // namespace

std::vector<ProbeSample> generate_trace(const LinkTraceConfig& c) {
  Rng rng(c.seed);
  std::vector<ProbeSample> out;
  const Duration fwd_base = scale(c.rtt, c.forward_share);
  const Duration rev_base = c.rtt - fwd_base;

  for (TimePoint t = TimePoint::epoch(); t < TimePoint::epoch() + c.duration;
       t += c.probe_interval) {
    const Duration fwd = fwd_base + wander(c, t) + jitter(rng, c);
    const Duration rev = rev_base + wander(c, t) + jitter(rng, c);
    ProbeSample s;
    s.sent_at = t;
    s.rtt = fwd + rev;
    // The replica stamps its local clock on receipt: measured OWD is the
    // true forward delay plus the clock offset between the two endpoints.
    s.owd_measured = fwd + c.remote_clock_offset;
    s.owd_true_offset = s.owd_measured;
    out.push_back(s);
  }
  return out;
}

std::vector<ProbeSample> probe_samples_from_wan(
    const std::vector<wan::TraceSample>& forward,
    const std::vector<wan::TraceSample>& reverse, Duration remote_clock_offset) {
  if (forward.empty() || reverse.empty()) {
    throw wan::TraceError("probe_samples_from_wan: empty direction series");
  }
  std::vector<ProbeSample> out;
  out.reserve(forward.size());
  std::size_t r = 0;
  for (const wan::TraceSample& f : forward) {
    while (r + 1 < reverse.size() && reverse[r + 1].at <= f.at) ++r;
    ProbeSample s;
    s.sent_at = f.at;
    s.rtt = f.owd + reverse[r].owd;
    s.owd_measured = f.owd + remote_clock_offset;
    s.owd_true_offset = s.owd_measured;
    out.push_back(s);
  }
  return out;
}

PredictionOutcome evaluate_predictions(const std::vector<ProbeSample>& trace,
                                       OwdEstimator estimator, Duration window,
                                       double percentile) {
  WindowEstimator estimates(window);
  PredictionOutcome outcome;
  std::size_t correct = 0;
  StatAccumulator late_ms;

  for (const ProbeSample& s : trace) {
    const auto predicted_offset = estimates.percentile(s.sent_at, percentile);
    if (predicted_offset) {
      ++outcome.evaluated;
      // A request sent now would arrive at offset owd_true_offset; the
      // prediction is correct if that is <= the predicted offset.
      if (s.owd_true_offset <= *predicted_offset) {
        ++correct;
      } else {
        late_ms.add((s.owd_true_offset - *predicted_offset).millis());
      }
    }
    // Feed the estimator after predicting (the probe that measures this
    // sample completes one RTT later; the half-step is negligible at 10 ms
    // probing).
    switch (estimator) {
      case OwdEstimator::kHalfRtt:
        estimates.add(s.sent_at, s.rtt / 2);
        break;
      case OwdEstimator::kReplicaTimestamp:
        estimates.add(s.sent_at, s.owd_measured);
        break;
    }
  }

  if (outcome.evaluated > 0) {
    outcome.correct_rate =
        static_cast<double>(correct) / static_cast<double>(outcome.evaluated);
  }
  outcome.p99_misprediction_ms = late_ms.empty() ? 0.0 : late_ms.percentile(99);
  return outcome;
}

}  // namespace domino::harness
