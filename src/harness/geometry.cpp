#include "harness/geometry.h"

#include <algorithm>

#include "measure/quorum.h"

namespace domino::harness {
namespace {

Duration kth_smallest_local(std::vector<Duration> v, std::size_t k) {
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(k - 1), v.end());
  return v[k - 1];
}

}  // namespace

Duration fast_paxos_latency(const net::Topology& topology,
                            const std::vector<std::size_t>& replica_dcs,
                            std::size_t client_dc) {
  std::vector<Duration> rtts;
  rtts.reserve(replica_dcs.size());
  for (std::size_t dc : replica_dcs) rtts.push_back(topology.rtt(client_dc, dc));
  return kth_smallest_local(std::move(rtts), measure::supermajority(replica_dcs.size()));
}

Duration replication_latency(const net::Topology& topology,
                             const std::vector<std::size_t>& replica_dcs,
                             std::size_t replica_index) {
  std::vector<Duration> rtts;
  rtts.reserve(replica_dcs.size());
  for (std::size_t i = 0; i < replica_dcs.size(); ++i) {
    rtts.push_back(i == replica_index
                       ? Duration::zero()
                       : topology.rtt(replica_dcs[replica_index], replica_dcs[i]));
  }
  return kth_smallest_local(std::move(rtts), measure::majority(replica_dcs.size()));
}

Duration mencius_latency(const net::Topology& topology,
                         const std::vector<std::size_t>& replica_dcs,
                         std::size_t client_dc) {
  Duration best = Duration::max();
  std::size_t closest = 0;
  for (std::size_t i = 0; i < replica_dcs.size(); ++i) {
    const Duration rtt = topology.rtt(client_dc, replica_dcs[i]);
    if (rtt < best) {
      best = rtt;
      closest = i;
    }
  }
  return best + replication_latency(topology, replica_dcs, closest);
}

Duration multipaxos_latency(const net::Topology& topology,
                            const std::vector<std::size_t>& replica_dcs,
                            std::size_t client_dc, std::size_t leader_index) {
  return topology.rtt(client_dc, replica_dcs[leader_index]) +
         replication_latency(topology, replica_dcs, leader_index);
}

GeometrySummary analyze_geometry(const net::Topology& topology, std::size_t replica_count) {
  GeometrySummary summary;
  const std::size_t n = topology.size();
  std::vector<std::size_t> placement(replica_count);

  // Enumerate combinations of distinct datacenters.
  std::vector<bool> select(n, false);
  std::fill(select.begin(), select.begin() + static_cast<std::ptrdiff_t>(replica_count),
            true);
  std::sort(select.begin(), select.end());  // prepare for next_permutation order
  std::size_t fp_vs_mencius = 0;
  std::size_t fp_vs_mp = 0;
  std::size_t mencius_cases = 0;
  std::size_t mp_cases = 0;
  do {
    placement.clear();
    for (std::size_t i = 0; i < n; ++i) {
      if (select[i]) placement.push_back(i);
    }
    if (placement.size() != replica_count) continue;
    for (std::size_t client = 0; client < n; ++client) {
      const Duration fp = fast_paxos_latency(topology, placement, client);
      const Duration men = mencius_latency(topology, placement, client);
      ++mencius_cases;
      if (fp < men) ++fp_vs_mencius;
      for (std::size_t leader = 0; leader < replica_count; ++leader) {
        const Duration mp = multipaxos_latency(topology, placement, client, leader);
        ++mp_cases;
        if (fp < mp) ++fp_vs_mp;
        GeometryCase c;
        c.replica_dcs = placement;
        c.client_dc = client;
        c.leader_index = leader;
        c.fast_paxos = fp;
        c.mencius = men;
        c.multi_paxos = mp;
        summary.cases.push_back(std::move(c));
      }
    }
  } while (std::next_permutation(select.begin(), select.end()));

  if (mencius_cases > 0) {
    summary.fp_beats_mencius =
        static_cast<double>(fp_vs_mencius) / static_cast<double>(mencius_cases);
  }
  if (mp_cases > 0) {
    summary.fp_beats_multipaxos =
        static_cast<double>(fp_vs_mp) / static_cast<double>(mp_cases);
  }
  return summary;
}

}  // namespace domino::harness
