#include "obs/export.h"

#include <cstdarg>
#include <cstdio>

namespace domino::obs {
namespace {

void append_f(std::string& out, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  out += buf;
}

void append_histogram_json(std::string& out, const Histogram& h) {
  append_f(out, "{\"count\":%llu,\"min\":%lld,\"max\":%lld,\"mean\":%.6g",
           static_cast<unsigned long long>(h.count()), static_cast<long long>(h.min()),
           static_cast<long long>(h.max()), h.mean());
  append_f(out, ",\"p50\":%lld,\"p95\":%lld,\"p99\":%lld",
           static_cast<long long>(h.percentile(50)), static_cast<long long>(h.percentile(95)),
           static_cast<long long>(h.percentile(99)));
  out += ",\"buckets\":[";
  bool first = true;
  for (std::size_t i = 0; i < Histogram::kBucketCount; ++i) {
    if (h.bucket_count(i) == 0) continue;
    if (!first) out += ',';
    first = false;
    append_f(out, "[%lld,%llu]", static_cast<long long>(Histogram::bucket_upper_bound(i)),
             static_cast<unsigned long long>(h.bucket_count(i)));
  }
  out += "]}";
}

std::string node_str(NodeId id) { return id.valid() ? id.to_string() : "-"; }

std::string request_str(const RequestId& id) {
  return id.client.valid() ? id.to_string() : "-";
}

}  // namespace

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string metrics_to_json(const MetricsRegistry& registry) {
  std::string counters, gauges, histograms;
  registry.visit([&](const std::string& name, const Counter* c, const Gauge* g,
                     const Histogram* h) {
    if (c != nullptr) {
      if (!counters.empty()) counters += ',';
      append_f(counters, "\"%s\":%llu", json_escape(name).c_str(),
               static_cast<unsigned long long>(c->value()));
    } else if (g != nullptr) {
      if (!gauges.empty()) gauges += ',';
      append_f(gauges, "\"%s\":{\"value\":%lld,\"max\":%lld}", json_escape(name).c_str(),
               static_cast<long long>(g->value()), static_cast<long long>(g->max()));
    } else if (h != nullptr) {
      if (!histograms.empty()) histograms += ',';
      append_f(histograms, "\"%s\":", json_escape(name).c_str());
      append_histogram_json(histograms, *h);
    }
  });
  return "{\"counters\":{" + counters + "},\"gauges\":{" + gauges + "},\"histograms\":{" +
         histograms + "}}";
}

std::string metrics_to_csv(const MetricsRegistry& registry) {
  std::string out = "kind,name,field,value\n";
  registry.visit([&](const std::string& name, const Counter* c, const Gauge* g,
                     const Histogram* h) {
    if (c != nullptr) {
      append_f(out, "counter,%s,value,%llu\n", name.c_str(),
               static_cast<unsigned long long>(c->value()));
    } else if (g != nullptr) {
      append_f(out, "gauge,%s,value,%lld\n", name.c_str(),
               static_cast<long long>(g->value()));
      append_f(out, "gauge,%s,max,%lld\n", name.c_str(), static_cast<long long>(g->max()));
    } else if (h != nullptr) {
      append_f(out, "histogram,%s,count,%llu\n", name.c_str(),
               static_cast<unsigned long long>(h->count()));
      append_f(out, "histogram,%s,min,%lld\n", name.c_str(),
               static_cast<long long>(h->min()));
      append_f(out, "histogram,%s,max,%lld\n", name.c_str(),
               static_cast<long long>(h->max()));
      append_f(out, "histogram,%s,mean,%.6g\n", name.c_str(), h->mean());
      for (const double p : {50.0, 95.0, 99.0}) {
        append_f(out, "histogram,%s,p%.0f,%lld\n", name.c_str(), p,
                 static_cast<long long>(h->percentile(p)));
      }
    }
  });
  return out;
}

std::string trace_to_text(const TraceRecorder& trace) {
  std::string out;
  for (const TraceEvent& e : trace.snapshot()) {
    append_f(out, "%lld %s node=%s peer=%s req=%s type=%u detail=%u value=%lld\n",
             static_cast<long long>(e.at.nanos()), event_kind_name(e.kind),
             node_str(e.node).c_str(), node_str(e.peer).c_str(),
             request_str(e.request).c_str(), static_cast<unsigned>(e.msg_type),
             static_cast<unsigned>(e.detail), static_cast<long long>(e.value));
  }
  return out;
}

std::string trace_to_json(const TraceRecorder& trace) {
  std::string out = "[";
  bool first = true;
  for (const TraceEvent& e : trace.snapshot()) {
    if (!first) out += ',';
    first = false;
    append_f(out,
             "{\"at\":%lld,\"kind\":\"%s\",\"node\":\"%s\",\"peer\":\"%s\","
             "\"req\":\"%s\",\"type\":%u,\"detail\":%u,\"value\":%lld}",
             static_cast<long long>(e.at.nanos()), event_kind_name(e.kind),
             node_str(e.node).c_str(), node_str(e.peer).c_str(),
             request_str(e.request).c_str(), static_cast<unsigned>(e.msg_type),
             static_cast<unsigned>(e.detail), static_cast<long long>(e.value));
  }
  out += ']';
  return out;
}

bool write_file(const std::string& path, std::string_view content) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const std::size_t written = std::fwrite(content.data(), 1, content.size(), f);
  const bool ok = std::fclose(f) == 0 && written == content.size();
  return ok;
}

}  // namespace domino::obs
