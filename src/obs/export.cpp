#include "obs/export.h"

namespace domino::obs {
namespace {

void append_histogram_json(std::string& out, const Histogram& h) {
  appendf(out, "{\"count\":%llu,\"min\":%lld,\"max\":%lld,\"mean\":%.6g",
           static_cast<unsigned long long>(h.count()), static_cast<long long>(h.min()),
           static_cast<long long>(h.max()), h.mean());
  appendf(out, ",\"p50\":%lld,\"p95\":%lld,\"p99\":%lld",
           static_cast<long long>(h.percentile(50)), static_cast<long long>(h.percentile(95)),
           static_cast<long long>(h.percentile(99)));
  out += ",\"buckets\":[";
  bool first = true;
  for (std::size_t i = 0; i < Histogram::kBucketCount; ++i) {
    if (h.bucket_count(i) == 0) continue;
    if (!first) out += ',';
    first = false;
    appendf(out, "[%lld,%llu]", static_cast<long long>(Histogram::bucket_upper_bound(i)),
             static_cast<unsigned long long>(h.bucket_count(i)));
  }
  out += "]}";
}

std::string node_str(NodeId id) { return id.valid() ? id.to_string() : "-"; }

std::string request_str(const RequestId& id) {
  return id.client.valid() ? id.to_string() : "-";
}

}  // namespace

std::string metrics_to_json(const MetricsRegistry& registry) {
  std::string counters, gauges, histograms;
  registry.visit([&](const std::string& name, const Counter* c, const Gauge* g,
                     const Histogram* h) {
    if (c != nullptr) {
      if (!counters.empty()) counters += ',';
      appendf(counters, "\"%s\":%llu", json_escape(name).c_str(),
               static_cast<unsigned long long>(c->value()));
    } else if (g != nullptr) {
      if (!gauges.empty()) gauges += ',';
      appendf(gauges, "\"%s\":{\"value\":%lld,\"max\":%lld}", json_escape(name).c_str(),
               static_cast<long long>(g->value()), static_cast<long long>(g->max()));
    } else if (h != nullptr) {
      if (!histograms.empty()) histograms += ',';
      appendf(histograms, "\"%s\":", json_escape(name).c_str());
      append_histogram_json(histograms, *h);
    }
  });
  return "{\"counters\":{" + counters + "},\"gauges\":{" + gauges + "},\"histograms\":{" +
         histograms + "}}";
}

std::string metrics_to_csv(const MetricsRegistry& registry) {
  std::string out = "kind,name,field,value\n";
  registry.visit([&](const std::string& name, const Counter* c, const Gauge* g,
                     const Histogram* h) {
    if (c != nullptr) {
      appendf(out, "counter,%s,value,%llu\n", name.c_str(),
               static_cast<unsigned long long>(c->value()));
    } else if (g != nullptr) {
      appendf(out, "gauge,%s,value,%lld\n", name.c_str(),
               static_cast<long long>(g->value()));
      appendf(out, "gauge,%s,max,%lld\n", name.c_str(), static_cast<long long>(g->max()));
    } else if (h != nullptr) {
      appendf(out, "histogram,%s,count,%llu\n", name.c_str(),
               static_cast<unsigned long long>(h->count()));
      appendf(out, "histogram,%s,min,%lld\n", name.c_str(),
               static_cast<long long>(h->min()));
      appendf(out, "histogram,%s,max,%lld\n", name.c_str(),
               static_cast<long long>(h->max()));
      appendf(out, "histogram,%s,mean,%.6g\n", name.c_str(), h->mean());
      for (const double p : {50.0, 95.0, 99.0}) {
        appendf(out, "histogram,%s,p%.0f,%lld\n", name.c_str(), p,
                 static_cast<long long>(h->percentile(p)));
      }
    }
  });
  return out;
}

std::string trace_to_text(const TraceRecorder& trace) {
  std::string out;
  for (const TraceEvent& e : trace.snapshot()) {
    appendf(out, "%lld %s node=%s peer=%s req=%s type=%u detail=%u value=%lld\n",
             static_cast<long long>(e.at.nanos()), event_kind_name(e.kind),
             node_str(e.node).c_str(), node_str(e.peer).c_str(),
             request_str(e.request).c_str(), static_cast<unsigned>(e.msg_type),
             static_cast<unsigned>(e.detail), static_cast<long long>(e.value));
  }
  return out;
}

std::string trace_to_json(const TraceRecorder& trace) {
  std::string out = "[";
  bool first = true;
  for (const TraceEvent& e : trace.snapshot()) {
    if (!first) out += ',';
    first = false;
    appendf(out,
             "{\"at\":%lld,\"kind\":\"%s\",\"node\":\"%s\",\"peer\":\"%s\","
             "\"req\":\"%s\",\"type\":%u,\"detail\":%u,\"value\":%lld}",
             static_cast<long long>(e.at.nanos()), event_kind_name(e.kind),
             node_str(e.node).c_str(), node_str(e.peer).c_str(),
             request_str(e.request).c_str(), static_cast<unsigned>(e.msg_type),
             static_cast<unsigned>(e.detail), static_cast<long long>(e.value));
  }
  out += ']';
  return out;
}

}  // namespace domino::obs
