// Prediction audit: per-command decision records reconciled against
// realized outcomes.
//
// Domino's client decides per request between DFP and DM by comparing the
// *predicted* commit latencies LatDFP and LatDM, and stamps DFP proposals
// with a *predicted* supermajority arrival deadline (paper Sections 5.4 and
// 5.6). The rest of the observability layer records what happened; this
// module records what was predicted, so the two can be reconciled exactly:
//
//   - prediction error  = realized commit latency - predicted latency of
//                         the chosen path (signed),
//   - oracle regret     = realized commit latency - best-in-hindsight
//                         estimate min(LatDFP, LatDM). Both estimates are
//                         captured at the choice point, so the identity
//                         regret_ns == realized_ns - hindsight_best_ns is
//                         exact (integer virtual-time nanoseconds) and is
//                         enforced by the `ctest -L predict` suite,
//   - misprediction attribution = for a DFP request that missed its fast
//                         path, the replica whose realized arrival offset
//                         overshot its predicted offset the most among the
//                         rejecting replicas — the stale/wrong estimate
//                         that blew the deadline.
//
// One DecisionRecord is opened per proposed command and finalized exactly
// once, at commit, in commit order; a record that never commits (abandoned
// under chaos) stays pending and is counted, never silently dropped.
// Everything is integer arithmetic over virtual time: same-seed runs export
// byte-identical decision CSVs.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "common/time.h"
#include "obs/metrics.h"

namespace domino::obs {

/// Which subsystem the client sent the request through.
enum class DecisionPath : std::uint8_t { kDfp, kDm };

/// Why the client was choosing at all.
enum class DecisionMode : std::uint8_t { kAuto, kDfpForced, kDmForced };

/// How the request eventually committed.
enum class DecisionOutcome : std::uint8_t {
  kPending,    // not reconciled yet
  kFastPath,   // DFP supermajority learned at the client
  kSlowPath,   // DFP coordinator slow-path reply
  kDmCommit,   // DM leader reply
};

[[nodiscard]] const char* to_string(DecisionPath p);
[[nodiscard]] const char* to_string(DecisionMode m);
[[nodiscard]] const char* to_string(DecisionOutcome o);

/// One replica's predicted vs realized arrival for a DFP proposal. The
/// realized side comes from the replica's DfpAcceptNotice: its local clock
/// when it processed the proposal, compared against the stamped deadline
/// and against the offset the client predicted for it at the choice point.
struct ReplicaArrival {
  NodeId replica;
  /// Client's predicted arrival offset for this replica at decision time
  /// (owd estimate at the configured percentile); max() if unknown.
  Duration predicted_offset = Duration::max();
  /// Realized arrival offset: replica local time at processing minus the
  /// client's local time at stamping.
  Duration realized_offset = Duration::zero();
  /// Replica local arrival time minus the stamped deadline; positive means
  /// the proposal arrived after its timestamp (rejected).
  Duration lateness = Duration::zero();
  bool accepted = false;
  /// A DfpAcceptNotice was actually received from this replica; the
  /// realized fields are meaningless until then.
  bool heard = false;
};

/// The full audit trail of one client decision.
struct DecisionRecord {
  RequestId request;
  NodeId client;
  TimePoint decided_at;  // true time of the choice
  DecisionMode mode = DecisionMode::kAuto;
  DecisionPath chosen = DecisionPath::kDm;

  // Estimates at the choice point (Duration::max() = no usable estimate).
  Duration predicted_dfp = Duration::max();
  Duration predicted_dm = Duration::max();
  NodeId dm_leader;  // predicted-best DM leader (the one used on the DM path)

  /// Auto choice preferred DFP but the adaptive controller's recent
  /// fast-path rate forced DM instead (Section 5.4 feedback override).
  bool adaptive_override = false;
  /// DFP was chosen but no usable arrival prediction existed, so the
  /// client fell back to DM inside propose_dfp.
  bool dfp_unpredictable = false;
  /// The request timed out on its original path and was re-routed through
  /// DM (failure handling; the realized outcome belongs to the retry).
  bool failover = false;

  // DFP stamping details (valid when the DFP path was actually taken).
  std::int64_t deadline_ts = 0;       // stamped timestamp = DFP log position
  TimePoint proposed_local;           // client local clock at stamping
  Duration additional_delay = Duration::zero();  // configured slack
  Duration adaptive_extra = Duration::zero();    // controller slack on top
  double recent_fast_rate = 1.0;      // controller state at the choice

  /// Predicted vs realized arrivals, in notice-arrival order (deterministic
  /// under the simulator). Only replicas actually heard from appear.
  std::vector<ReplicaArrival> arrivals;

  // ----- reconciliation (filled exactly once, at commit) -----
  DecisionOutcome outcome = DecisionOutcome::kPending;
  TimePoint committed_at;
  Duration realized = Duration::max();  // true-time commit latency

  /// realized - predicted(chosen path); valid only when that estimate was
  /// finite at the choice point.
  std::int64_t error_ns = 0;
  bool error_valid = false;
  /// realized - min(finite estimates); the exact oracle-regret identity.
  std::int64_t regret_ns = 0;
  std::int64_t hindsight_best_ns = 0;
  bool regret_valid = false;
  /// The replica blamed for a missed DFP fast path (invalid when the fast
  /// path hit, the DM path was taken, or no rejecting replica was heard).
  NodeId blamed;
  /// That replica's realized-minus-predicted arrival overshoot.
  std::int64_t blamed_overshoot_ns = 0;
};

/// Run-wide store of decision records. The Domino client opens a record at
/// its choice point, annotates it as the request progresses, and the
/// commit notification reconciles it. Bounded: records beyond the capacity
/// are counted as dropped, never silently lost.
class PredictionAudit {
 public:
  static constexpr std::size_t kDefaultCapacity = 1 << 20;

  explicit PredictionAudit(std::size_t capacity = kDefaultCapacity)
      : capacity_(capacity) {}

  /// Create metric handles in `registry` (predict.* counters/histograms).
  /// Optional; a no-registry audit still records and reconciles.
  void bind_metrics(MetricsRegistry* registry);

  /// Open the record for one proposed command. Ignored (and counted as
  /// dropped) once the store is full. Opening an id that is already pending
  /// is ignored — exactly one record per command.
  void open(const DecisionRecord& decision);

  /// Annotate the pending record: the DFP path was taken with this stamped
  /// deadline and these per-replica predicted offsets.
  void note_dfp(const RequestId& id, std::int64_t deadline_ts, TimePoint proposed_local,
                Duration additional_delay, Duration adaptive_extra,
                const std::vector<NodeId>& replicas,
                const std::vector<Duration>& predicted_offsets);

  /// Annotate: the DM path was taken (directly, as an in-propose fallback
  /// when `unpredictable`, or as a timeout failover).
  void note_dm(const RequestId& id, NodeId leader, bool unpredictable);

  /// Annotate: the request timed out and is being re-routed.
  void note_failover(const RequestId& id);

  /// One replica's DfpAcceptNotice for the pending record. `ts` must match
  /// the stamped deadline (stale notices from an older attempt are
  /// ignored); `replica_local_time` is the replica's clock at processing.
  void note_arrival(const RequestId& id, NodeId replica, std::int64_t ts,
                    TimePoint replica_local_time, bool accepted);

  /// The commit outcome kind, noted by the packet handler just before the
  /// commit is processed (the reconcile that follows uses the last noted
  /// kind). Ignored for unknown ids.
  void note_outcome(const RequestId& id, DecisionOutcome outcome);

  /// Finalize: compute error, regret and attribution, record metrics, and
  /// move the record to the reconciled list. Exactly once per command (a
  /// second call for the same id is a no-op).
  void reconcile(const RequestId& id, TimePoint committed_at, Duration realized);

  [[nodiscard]] const std::vector<DecisionRecord>& records() const { return records_; }
  [[nodiscard]] std::uint64_t decisions() const { return decisions_; }
  [[nodiscard]] std::uint64_t reconciled() const { return records_.size(); }
  [[nodiscard]] std::uint64_t pending() const { return pending_.size(); }
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }

  // Deterministic aggregates over reconciled records (integer sums).
  [[nodiscard]] std::uint64_t fast_path() const { return fast_path_; }
  [[nodiscard]] std::uint64_t slow_path() const { return slow_path_; }
  [[nodiscard]] std::uint64_t dm_commits() const { return dm_commits_; }
  [[nodiscard]] std::uint64_t failovers() const { return failovers_; }
  [[nodiscard]] std::uint64_t adaptive_overrides() const { return adaptive_overrides_; }
  [[nodiscard]] std::uint64_t regret_samples() const { return regret_samples_; }
  [[nodiscard]] std::int64_t regret_sum_ns() const { return regret_sum_ns_; }
  [[nodiscard]] std::int64_t regret_max_ns() const { return regret_max_ns_; }
  [[nodiscard]] std::uint64_t error_samples() const { return error_samples_; }
  [[nodiscard]] std::int64_t error_abs_sum_ns() const { return error_abs_sum_ns_; }

 private:
  DecisionRecord* find_pending(const RequestId& id);

  std::size_t capacity_;
  std::unordered_map<RequestId, DecisionRecord> pending_;
  std::vector<DecisionRecord> records_;  // reconciled, in commit order
  std::uint64_t decisions_ = 0;
  std::uint64_t dropped_ = 0;

  std::uint64_t fast_path_ = 0;
  std::uint64_t slow_path_ = 0;
  std::uint64_t dm_commits_ = 0;
  std::uint64_t failovers_ = 0;
  std::uint64_t adaptive_overrides_ = 0;
  std::uint64_t regret_samples_ = 0;
  std::int64_t regret_sum_ns_ = 0;
  std::int64_t regret_max_ns_ = 0;
  std::uint64_t error_samples_ = 0;
  std::int64_t error_abs_sum_ns_ = 0;

  // predict.* metric handles (null when no registry is bound). Histograms
  // only hold non-negative values, so signed quantities split into
  // over/under pairs.
  CounterHandle obs_decisions_;
  CounterHandle obs_reconciled_;
  CounterHandle obs_dropped_;
  CounterHandle obs_failovers_;
  CounterHandle obs_adaptive_overrides_;
  CounterHandle obs_blamed_;
  HistogramHandle obs_error_over_;    // realized above prediction
  HistogramHandle obs_error_under_;   // realized below prediction (|error|)
  HistogramHandle obs_regret_over_;   // paid more than hindsight best
  HistogramHandle obs_regret_under_;  // beat the estimate (|regret|)
  HistogramHandle obs_arrival_overshoot_;  // per heard replica, >0 only
  HistogramHandle obs_arrival_slack_;      // per heard replica, |<=0|
  HistogramHandle obs_deadline_miss_;      // per rejected replica lateness
};

/// Long-format CSV, one row per reconciled decision:
///   protocol,request,mode,chosen,outcome,failover,adaptive_override,
///   dfp_unpredictable,decided_ns,committed_ns,realized_ns,
///   predicted_dfp_ns,predicted_dm_ns,dm_leader,deadline_ts,
///   additional_delay_ns,adaptive_extra_ns,recent_fast_rate,
///   error_ns,error_valid,regret_ns,hindsight_best_ns,regret_valid,
///   arrivals_heard,arrivals_accepted,blamed,blamed_overshoot_ns
[[nodiscard]] std::string decisions_to_csv(const std::vector<DecisionRecord>& records,
                                           std::string_view protocol);

}  // namespace domino::obs
