#include "obs/trace.h"

#include <algorithm>

namespace domino::obs {

const char* event_kind_name(EventKind kind) {
  switch (kind) {
    case EventKind::kRequestSubmit: return "request_submit";
    case EventKind::kFastAccept: return "fast_accept";
    case EventKind::kCoordinatorFallback: return "coordinator_fallback";
    case EventKind::kCommit: return "commit";
    case EventKind::kExecute: return "execute";
    case EventKind::kProbeSend: return "probe_send";
    case EventKind::kProbeRecv: return "probe_recv";
    case EventKind::kMessageSend: return "msg_send";
    case EventKind::kMessageDeliver: return "msg_deliver";
    case EventKind::kMessageDrop: return "msg_drop";
    case EventKind::kNodeCrash: return "node_crash";
    case EventKind::kNodeRecover: return "node_recover";
    case EventKind::kLinkPartition: return "link_partition";
    case EventKind::kLinkHeal: return "link_heal";
    case EventKind::kLinkDegrade: return "link_degrade";
    case EventKind::kLinkRestore: return "link_restore";
    case EventKind::kRouteChange: return "route_change";
    case EventKind::kClientRetry: return "client_retry";
    case EventKind::kClientAbandon: return "client_abandon";
    case EventKind::kRecoveryStart: return "recovery_start";
    case EventKind::kRecoveryDone: return "recovery_done";
  }
  return "?";
}

TraceRecorder::TraceRecorder(std::size_t capacity)
    : ring_(std::max<std::size_t>(1, capacity)) {}

void TraceRecorder::record(const TraceEvent& event) {
  ring_[head_] = event;
  head_ = (head_ + 1) % ring_.size();
  ++total_;
}

std::size_t TraceRecorder::size() const {
  return std::min<std::uint64_t>(total_, ring_.size());
}

std::vector<TraceEvent> TraceRecorder::snapshot() const {
  std::vector<TraceEvent> out;
  const std::size_t n = size();
  out.reserve(n);
  // Oldest event: at head_ when the ring has wrapped, else at 0.
  const std::size_t start = total_ > ring_.size() ? head_ : 0;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

void TraceRecorder::clear() {
  head_ = 0;
  total_ = 0;
}

}  // namespace domino::obs
