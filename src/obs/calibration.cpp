#include "obs/calibration.h"

#include <cstdio>

namespace domino::obs {

std::vector<CalibrationRow> calibration_rows(const Calibration& calibration) {
  std::vector<CalibrationRow> rows;
  calibration.visit([&](NodeId target, const CalibrationCell& cell) {
    if (cell.samples() == 0) return;
    CalibrationRow row;
    row.owner = calibration.owner();
    row.target = target;
    row.samples = cell.samples();
    row.covered = cell.covered();
    row.mean_margin_ns = cell.mean_margin_ns();
    row.max_overshoot_ns = cell.max_overshoot_ns();
    rows.push_back(row);
  });
  return rows;
}

std::string calibration_to_csv(const std::vector<CalibrationRow>& rows) {
  std::string out = "owner,target,samples,covered,coverage,mean_margin_ns,max_overshoot_ns\n";
  char buf[192];
  for (const CalibrationRow& r : rows) {
    std::snprintf(buf, sizeof(buf), "%s,%s,%llu,%llu,%.6f,%lld,%lld\n",
                  r.owner.to_string().c_str(), r.target.to_string().c_str(),
                  static_cast<unsigned long long>(r.samples),
                  static_cast<unsigned long long>(r.covered), r.coverage(),
                  static_cast<long long>(r.mean_margin_ns),
                  static_cast<long long>(r.max_overshoot_ns));
    out += buf;
  }
  return out;
}

}  // namespace domino::obs
