#include "obs/predict.h"

#include <algorithm>
#include <cstdio>

namespace domino::obs {

const char* to_string(DecisionPath p) {
  switch (p) {
    case DecisionPath::kDfp: return "dfp";
    case DecisionPath::kDm: return "dm";
  }
  return "?";
}

const char* to_string(DecisionMode m) {
  switch (m) {
    case DecisionMode::kAuto: return "auto";
    case DecisionMode::kDfpForced: return "dfp_forced";
    case DecisionMode::kDmForced: return "dm_forced";
  }
  return "?";
}

const char* to_string(DecisionOutcome o) {
  switch (o) {
    case DecisionOutcome::kPending: return "pending";
    case DecisionOutcome::kFastPath: return "fast_path";
    case DecisionOutcome::kSlowPath: return "slow_path";
    case DecisionOutcome::kDmCommit: return "dm_commit";
  }
  return "?";
}

void PredictionAudit::bind_metrics(MetricsRegistry* registry) {
  if (registry == nullptr) return;
  obs_decisions_ = CounterHandle{&registry->counter("predict.decisions")};
  obs_reconciled_ = CounterHandle{&registry->counter("predict.reconciled")};
  obs_dropped_ = CounterHandle{&registry->counter("predict.dropped")};
  obs_failovers_ = CounterHandle{&registry->counter("predict.failovers")};
  obs_adaptive_overrides_ =
      CounterHandle{&registry->counter("predict.adaptive_overrides")};
  obs_blamed_ = CounterHandle{&registry->counter("predict.blamed_replicas")};
  obs_error_over_ = HistogramHandle{&registry->histogram("predict.error_over_ns")};
  obs_error_under_ = HistogramHandle{&registry->histogram("predict.error_under_ns")};
  obs_regret_over_ = HistogramHandle{&registry->histogram("predict.regret_over_ns")};
  obs_regret_under_ = HistogramHandle{&registry->histogram("predict.regret_under_ns")};
  obs_arrival_overshoot_ =
      HistogramHandle{&registry->histogram("predict.arrival_overshoot_ns")};
  obs_arrival_slack_ = HistogramHandle{&registry->histogram("predict.arrival_slack_ns")};
  obs_deadline_miss_ = HistogramHandle{&registry->histogram("predict.deadline_miss_ns")};
}

DecisionRecord* PredictionAudit::find_pending(const RequestId& id) {
  const auto it = pending_.find(id);
  return it == pending_.end() ? nullptr : &it->second;
}

void PredictionAudit::open(const DecisionRecord& decision) {
  if (pending_.size() + records_.size() >= capacity_) {
    ++dropped_;
    obs_dropped_.inc();
    return;
  }
  if (pending_.contains(decision.request)) return;  // exactly one per command
  ++decisions_;
  obs_decisions_.inc();
  pending_.emplace(decision.request, decision);
}

void PredictionAudit::note_dfp(const RequestId& id, std::int64_t deadline_ts,
                               TimePoint proposed_local, Duration additional_delay,
                               Duration adaptive_extra,
                               const std::vector<NodeId>& replicas,
                               const std::vector<Duration>& predicted_offsets) {
  DecisionRecord* r = find_pending(id);
  if (r == nullptr) return;
  r->chosen = DecisionPath::kDfp;
  r->deadline_ts = deadline_ts;
  r->proposed_local = proposed_local;
  r->additional_delay = additional_delay;
  r->adaptive_extra = adaptive_extra;
  // Pre-size the arrival table with the predicted offsets; realized sides
  // are filled per notice in note_arrival.
  r->arrivals.clear();
  r->arrivals.reserve(replicas.size());
  for (std::size_t i = 0; i < replicas.size() && i < predicted_offsets.size(); ++i) {
    ReplicaArrival a;
    a.replica = replicas[i];
    a.predicted_offset = predicted_offsets[i];
    r->arrivals.push_back(a);
  }
}

void PredictionAudit::note_dm(const RequestId& id, NodeId leader, bool unpredictable) {
  DecisionRecord* r = find_pending(id);
  if (r == nullptr) return;
  r->chosen = DecisionPath::kDm;
  r->dm_leader = leader;
  if (unpredictable) r->dfp_unpredictable = true;
}

void PredictionAudit::note_failover(const RequestId& id) {
  DecisionRecord* r = find_pending(id);
  if (r == nullptr) return;
  r->failover = true;
}

void PredictionAudit::note_arrival(const RequestId& id, NodeId replica, std::int64_t ts,
                                   TimePoint replica_local_time, bool accepted) {
  DecisionRecord* r = find_pending(id);
  if (r == nullptr) return;
  if (r->chosen != DecisionPath::kDfp || r->deadline_ts != ts) return;
  for (ReplicaArrival& a : r->arrivals) {
    if (a.replica != replica) continue;
    if (a.heard) return;  // duplicate notice (retransmission); keep the first
    a.realized_offset = replica_local_time - r->proposed_local;
    a.lateness = Duration{replica_local_time.nanos() - ts};
    a.accepted = accepted;
    a.heard = true;
    return;
  }
}

void PredictionAudit::note_outcome(const RequestId& id, DecisionOutcome outcome) {
  DecisionRecord* r = find_pending(id);
  if (r == nullptr) return;
  r->outcome = outcome;
}

void PredictionAudit::reconcile(const RequestId& id, TimePoint committed_at,
                                Duration realized) {
  const auto it = pending_.find(id);
  if (it == pending_.end()) return;
  DecisionRecord r = std::move(it->second);
  pending_.erase(it);

  r.committed_at = committed_at;
  r.realized = realized;
  if (r.outcome == DecisionOutcome::kPending) {
    // Commit learned without a path-specific notice (should not happen for
    // Domino, but keep the record honest rather than guessing).
    r.outcome = r.chosen == DecisionPath::kDfp ? DecisionOutcome::kSlowPath
                                               : DecisionOutcome::kDmCommit;
  }

  const Duration chosen_est =
      r.chosen == DecisionPath::kDfp ? r.predicted_dfp : r.predicted_dm;
  if (chosen_est != Duration::max()) {
    r.error_ns = realized.nanos() - chosen_est.nanos();
    r.error_valid = true;
    ++error_samples_;
    error_abs_sum_ns_ += r.error_ns < 0 ? -r.error_ns : r.error_ns;
    if (r.error_ns >= 0) {
      obs_error_over_.record(r.error_ns);
    } else {
      obs_error_under_.record(-r.error_ns);
    }
  }

  Duration best = Duration::max();
  if (r.predicted_dfp != Duration::max()) best = r.predicted_dfp;
  if (r.predicted_dm != Duration::max() && r.predicted_dm < best) best = r.predicted_dm;
  if (best != Duration::max()) {
    r.hindsight_best_ns = best.nanos();
    r.regret_ns = realized.nanos() - best.nanos();
    r.regret_valid = true;
    ++regret_samples_;
    regret_sum_ns_ += r.regret_ns;
    if (regret_samples_ == 1 || r.regret_ns > regret_max_ns_) regret_max_ns_ = r.regret_ns;
    if (r.regret_ns >= 0) {
      obs_regret_over_.record(r.regret_ns);
    } else {
      obs_regret_under_.record(-r.regret_ns);
    }
  }

  // Arrival calibration + misprediction attribution: blame the rejecting
  // replica whose realized arrival overshot its predicted offset the most.
  std::int64_t worst_overshoot = 0;
  for (const ReplicaArrival& a : r.arrivals) {
    if (!a.heard) continue;
    if (a.predicted_offset != Duration::max()) {
      const std::int64_t overshoot =
          a.realized_offset.nanos() - a.predicted_offset.nanos();
      if (overshoot > 0) {
        obs_arrival_overshoot_.record(overshoot);
      } else {
        obs_arrival_slack_.record(-overshoot);
      }
      if (!a.accepted && a.lateness > Duration::zero()) {
        obs_deadline_miss_.record(a.lateness);
        if (r.outcome == DecisionOutcome::kSlowPath && overshoot > worst_overshoot) {
          worst_overshoot = overshoot;
          r.blamed = a.replica;
          r.blamed_overshoot_ns = overshoot;
        }
      }
    }
  }
  if (r.blamed.valid()) obs_blamed_.inc();

  switch (r.outcome) {
    case DecisionOutcome::kFastPath: ++fast_path_; break;
    case DecisionOutcome::kSlowPath: ++slow_path_; break;
    case DecisionOutcome::kDmCommit: ++dm_commits_; break;
    case DecisionOutcome::kPending: break;  // unreachable
  }
  if (r.failover) {
    ++failovers_;
    obs_failovers_.inc();
  }
  if (r.adaptive_override) {
    ++adaptive_overrides_;
    obs_adaptive_overrides_.inc();
  }
  obs_reconciled_.inc();
  records_.push_back(std::move(r));
}

std::string decisions_to_csv(const std::vector<DecisionRecord>& records,
                             std::string_view protocol) {
  std::string out =
      "protocol,request,mode,chosen,outcome,failover,adaptive_override,"
      "dfp_unpredictable,decided_ns,committed_ns,realized_ns,"
      "predicted_dfp_ns,predicted_dm_ns,dm_leader,deadline_ts,"
      "additional_delay_ns,adaptive_extra_ns,recent_fast_rate,"
      "error_ns,error_valid,regret_ns,hindsight_best_ns,regret_valid,"
      "arrivals_heard,arrivals_accepted,blamed,blamed_overshoot_ns\n";
  const std::string proto(protocol);
  char buf[512];
  for (const DecisionRecord& r : records) {
    std::size_t heard_count = 0;
    std::size_t accepted_count = 0;
    for (const ReplicaArrival& a : r.arrivals) {
      if (!a.heard) continue;
      ++heard_count;
      if (a.accepted) ++accepted_count;
    }
    // max() estimates export as -1: "no usable estimate".
    const auto est = [](Duration d) {
      return static_cast<long long>(d == Duration::max() ? -1 : d.nanos());
    };
    std::snprintf(
        buf, sizeof(buf),
        "%s,%s,%s,%s,%s,%d,%d,%d,%lld,%lld,%lld,%lld,%lld,%s,%lld,%lld,%lld,"
        "%.6f,%lld,%d,%lld,%lld,%d,%zu,%zu,%s,%lld\n",
        proto.c_str(), r.request.to_string().c_str(), to_string(r.mode),
        to_string(r.chosen), to_string(r.outcome), r.failover ? 1 : 0,
        r.adaptive_override ? 1 : 0, r.dfp_unpredictable ? 1 : 0,
        static_cast<long long>(r.decided_at.nanos()),
        static_cast<long long>(r.committed_at.nanos()),
        static_cast<long long>(r.realized == Duration::max() ? -1 : r.realized.nanos()),
        est(r.predicted_dfp), est(r.predicted_dm),
        r.dm_leader.valid() ? r.dm_leader.to_string().c_str() : "-",
        static_cast<long long>(r.deadline_ts),
        static_cast<long long>(r.additional_delay.nanos()),
        static_cast<long long>(r.adaptive_extra.nanos()), r.recent_fast_rate,
        static_cast<long long>(r.error_ns), r.error_valid ? 1 : 0,
        static_cast<long long>(r.regret_ns),
        static_cast<long long>(r.hindsight_best_ns), r.regret_valid ? 1 : 0,
        heard_count, accepted_count,
        r.blamed.valid() ? r.blamed.to_string().c_str() : "-",
        static_cast<long long>(r.blamed_overshoot_ns));
    out += buf;
  }
  return out;
}

}  // namespace domino::obs
