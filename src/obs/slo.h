// Declarative SLO rules and steady-state detection over a Timeseries.
//
// The engine is a pure function of the frame stream: evaluate_slo() walks
// the windows once per rule, flags breaches, groups consecutive breaches
// into burns, and — for each fault instant the harness hands it — finds
// the first window after which K consecutive windows sit within tolerance
// of the pre-fault baseline (time-to-steady-state, the recovery headline
// number). Everything is integer window arithmetic over already-sampled
// data, so results are deterministic whenever the timeline is.
//
// Layering: obs cannot see net/fault.h (net depends on obs), so fault
// instants arrive as plain FaultInstant records; the harness converts its
// FaultSchedule.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/ids.h"
#include "common/time.h"
#include "obs/metrics.h"
#include "obs/timeseries.h"

namespace domino::obs {

/// One declarative rule over a sampled metric. Ceilings read a windowed
/// histogram percentile (one of the sampled 50/95/99); floors read a
/// counter's per-window rate in events/second.
struct SloRule {
  enum class Kind : std::uint8_t {
    kLatencyCeiling,  // breach when percentile(metric) > threshold (ns)
    kRateFloor,       // breach when delta(metric)/window_s < threshold (1/s)
  };

  std::string name;    // stable identifier used in reports and slo.* metrics
  std::string metric;  // registry name; must already exist (rules never create metrics)
  Kind kind = Kind::kLatencyCeiling;
  double percentile = 95.0;  // ceilings only; snapped to 50/95/99
  double threshold = 0.0;    // ns (ceiling) or events/second (floor)
  /// A "burn" is a run of at least this many consecutive breached windows.
  std::size_t burn_windows = 3;
};

struct SloRuleResult {
  SloRule rule;
  std::uint64_t windows_evaluated = 0;  // windows with data (ceilings skip empty)
  std::uint64_t windows_breached = 0;
  std::uint64_t burns = 0;  // maximal runs of >= rule.burn_windows breaches
  std::uint64_t longest_burn_windows = 0;
  std::int64_t first_breach_ns = -1;  // end of first breached window, -1 if none
  double worst_value = 0.0;  // max over threshold (ceiling) / min under (floor)
};

/// A moment the steady-state detector should measure recovery from
/// (crash, restart, partition heal, ...). `kind` is a display label.
struct FaultInstant {
  TimePoint at;
  std::string kind;
  NodeId node;  // invalid for link-level events
};

struct SteadyStateResult {
  FaultInstant fault;
  bool reached = false;
  /// fault.at -> end of the K-th consecutive in-tolerance window.
  Duration time_to_steady = Duration::zero();
  std::size_t settle_window = 0;  // global index of the first settled window
  double baseline = 0.0;          // mean pre-fault per-window value
  double settled_value = 0.0;     // value in the settle window
};

struct SloConfig {
  std::vector<SloRule> rules;

  /// Steady-state detector: the per-window value of `steady_metric`
  /// (histogram percentile, or counter rate in events/second) must sit
  /// within `steady_tolerance` of the pre-fault baseline for
  /// `steady_windows` consecutive windows. Tolerance is direction-aware:
  /// an improvement (lower latency, higher rate) is always in tolerance.
  std::string steady_metric = "client.commit_latency_ns";
  double steady_percentile = 95.0;
  double steady_tolerance = 0.25;
  std::size_t steady_windows = 3;

  /// Windows ending after this instant are ignored. The harness sets it to
  /// the end of the load window so drained-load windows can't masquerade
  /// as (or prevent) steady state.
  TimePoint evaluate_until = TimePoint::max();

  [[nodiscard]] bool enabled() const {
    return !rules.empty() || !steady_metric.empty();
  }
};

struct SloReport {
  std::vector<SloRuleResult> rules;
  std::vector<SteadyStateResult> steady;
  std::string steady_metric;
  double steady_tolerance = 0.0;
  std::size_t steady_windows = 0;

  [[nodiscard]] std::uint64_t total_breaches() const;
  [[nodiscard]] std::uint64_t total_burns() const;
  /// True iff every fault instant reached steady state.
  [[nodiscard]] bool all_settled() const;
};

/// Evaluate rules and steady-state over the timeline. Faults are evaluated
/// in the order given; a rule naming a metric the timeline never sampled
/// evaluates zero windows (reported, not an error).
[[nodiscard]] SloReport evaluate_slo(const Timeseries& ts, const SloConfig& config,
                                     const std::vector<FaultInstant>& faults);

/// Surface the report as slo.* metrics (per-rule breach/burn counters, a
/// steady-state reached/unreached pair and a time-to-steady histogram) so
/// existing exports and report summaries pick it up with no new plumbing.
void publish_slo_metrics(const SloReport& report, MetricsRegistry& registry);

/// Append {"rules":[...],"steady_state":[...],...} — fixed keys only.
void append_slo_json(std::string& out, const SloReport& report);

}  // namespace domino::obs
