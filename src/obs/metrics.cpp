#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace domino::obs {

std::int64_t Histogram::percentile(double p) const {
  if (count_ == 0) return 0;
  p = std::clamp(p, 0.0, 100.0);
  const auto rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::ceil(p / 100.0 * static_cast<double>(count_))));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    seen += buckets_[i];
    if (seen >= rank) return std::min(bucket_upper_bound(i), max_);
  }
  return max_;
}

std::int64_t Histogram::bucket_upper_bound(std::size_t i) {
  if (i < 8) return static_cast<std::int64_t>(i);
  const std::size_t msb = 3 + (i - 8) / kSubBuckets;
  const std::size_t sub = (i - 8) % kSubBuckets;
  const std::uint64_t lower =
      (std::uint64_t{1} << msb) + (static_cast<std::uint64_t>(sub) << (msb - 3));
  const std::uint64_t width = std::uint64_t{1} << (msb - 3);
  return static_cast<std::int64_t>(lower + width - 1);
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot s;
  s.buckets = buckets_;
  s.count = count_;
  s.sum = sum_;
  s.min = min();
  s.max = max_;
  return s;
}

HistogramDelta::HistogramDelta(const HistogramSnapshot& before,
                               const HistogramSnapshot& after) {
  for (std::size_t i = 0; i < HistogramSnapshot::kBucketCount; ++i) {
    buckets_[i] = after.buckets[i] - before.buckets[i];
  }
  count_ = after.count - before.count;
  sum_ = after.sum - before.sum;
  max_ = after.max;
}

std::int64_t HistogramDelta::percentile(double p) const {
  if (count_ == 0) return 0;
  p = std::clamp(p, 0.0, 100.0);
  const auto rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::ceil(p / 100.0 * static_cast<double>(count_))));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < HistogramSnapshot::kBucketCount; ++i) {
    seen += buckets_[i];
    if (seen >= rank) return std::min(Histogram::bucket_upper_bound(i), max_);
  }
  return max_;
}

void Histogram::reset() {
  buckets_.fill(0);
  count_ = 0;
  sum_ = 0.0;
  min_ = 0;
  max_ = 0;
}

namespace {

[[noreturn]] void kind_mismatch(std::string_view name) {
  throw std::logic_error("MetricsRegistry: '" + std::string(name) +
                         "' already registered with a different kind");
}

}  // namespace

Counter& MetricsRegistry::counter(std::string_view name) {
  auto it = slots_.find(name);
  if (it == slots_.end()) {
    it = slots_.emplace(std::string(name), Slot{}).first;
    it->second.counter = std::make_unique<Counter>();
  } else if (it->second.counter == nullptr) {
    kind_mismatch(name);
  }
  return *it->second.counter;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  auto it = slots_.find(name);
  if (it == slots_.end()) {
    it = slots_.emplace(std::string(name), Slot{}).first;
    it->second.gauge = std::make_unique<Gauge>();
  } else if (it->second.gauge == nullptr) {
    kind_mismatch(name);
  }
  return *it->second.gauge;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  auto it = slots_.find(name);
  if (it == slots_.end()) {
    it = slots_.emplace(std::string(name), Slot{}).first;
    it->second.histogram = std::make_unique<Histogram>();
  } else if (it->second.histogram == nullptr) {
    kind_mismatch(name);
  }
  return *it->second.histogram;
}

const Counter* MetricsRegistry::find_counter(std::string_view name) const {
  const auto it = slots_.find(name);
  return it == slots_.end() ? nullptr : it->second.counter.get();
}

const Gauge* MetricsRegistry::find_gauge(std::string_view name) const {
  const auto it = slots_.find(name);
  return it == slots_.end() ? nullptr : it->second.gauge.get();
}

const Histogram* MetricsRegistry::find_histogram(std::string_view name) const {
  const auto it = slots_.find(name);
  return it == slots_.end() ? nullptr : it->second.histogram.get();
}

void MetricsRegistry::reset() {
  for (auto& [name, slot] : slots_) {
    if (slot.counter) slot.counter->reset();
    if (slot.gauge) slot.gauge->reset();
    if (slot.histogram) slot.histogram->reset();
  }
}

}  // namespace domino::obs
