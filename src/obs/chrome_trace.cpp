#include "obs/chrome_trace.h"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <set>

#include "wire/message.h"

namespace domino::obs {

namespace {

void append_f(std::string& out, const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  const int n = std::vsnprintf(buf, sizeof buf, fmt, args);
  va_end(args);
  if (n > 0) {
    out.append(buf, static_cast<std::size_t>(std::min(n, static_cast<int>(sizeof buf) - 1)));
  }
}

/// Microsecond timestamp with nanosecond precision kept in the fraction.
double us(TimePoint t) { return static_cast<double>(t.nanos()) / 1e3; }
double us(Duration d) { return static_cast<double>(d.nanos()) / 1e3; }

/// Lane label: the harness numbers replicas from 0 and clients from 1000.
const char* node_kind(NodeId n) { return n.value() >= 1000 ? "client" : "replica"; }

/// True when the event's node/peer fields hold node ids (not dc indices).
bool node_scoped(EventKind k) {
  switch (k) {
    case EventKind::kNodeCrash:
    case EventKind::kNodeRecover:
    case EventKind::kClientRetry:
    case EventKind::kClientAbandon:
    case EventKind::kRecoveryStart:
    case EventKind::kRecoveryDone: return true;
    default: return false;
  }
}

bool fault_kind(EventKind k) {
  switch (k) {
    case EventKind::kNodeCrash:
    case EventKind::kNodeRecover:
    case EventKind::kLinkPartition:
    case EventKind::kLinkHeal:
    case EventKind::kLinkDegrade:
    case EventKind::kLinkRestore:
    case EventKind::kRouteChange:
    case EventKind::kClientRetry:
    case EventKind::kClientAbandon:
    case EventKind::kRecoveryStart:
    case EventKind::kRecoveryDone: return true;
    default: return false;
  }
}

}  // namespace

std::string chrome_trace_json(const SpanStore* spans, const TraceRecorder* trace) {
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  const auto sep = [&out, &first] {
    if (!first) out += ',';
    first = false;
  };

  // Lane metadata: name every node that appears, in id order so the lanes
  // (and the bytes) are stable across runs.
  std::set<std::uint32_t> lanes;
  if (spans != nullptr) {
    for (const Span& s : spans->spans()) lanes.insert(s.node.value());
  }
  if (trace != nullptr) {
    for (const TraceEvent& e : trace->snapshot()) {
      if (fault_kind(e.kind) && node_scoped(e.kind) && e.node.valid()) {
        lanes.insert(e.node.value());
      }
    }
  }
  for (const std::uint32_t lane : lanes) {
    sep();
    append_f(out,
             "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":%lu,"
             "\"args\":{\"name\":\"%s %lu\"}}",
             static_cast<unsigned long>(lane), node_kind(NodeId{lane}),
             static_cast<unsigned long>(lane));
  }

  if (spans != nullptr) {
    for (const Span& s : spans->spans()) {
      sep();
      append_f(out,
               "{\"name\":\"%s\",\"cat\":\"span\",\"ph\":\"X\",\"ts\":%.3f,"
               "\"dur\":%.3f,\"pid\":1,\"tid\":%lu,\"args\":{\"trace\":%llu,"
               "\"span\":%llu,\"parent\":%llu}}",
               s.name, us(s.begin), us(s.end - s.begin),
               static_cast<unsigned long>(s.node.value()),
               static_cast<unsigned long long>(s.trace),
               static_cast<unsigned long long>(s.id),
               static_cast<unsigned long long>(s.parent));
    }
    std::int32_t edge_id = 0;
    for (const MsgEdge& e : spans->edges()) {
      const char* name =
          wire::message_type_name(static_cast<wire::MessageType>(e.msg_type));
      sep();
      append_f(out,
               "{\"name\":\"%s\",\"cat\":\"msg\",\"ph\":\"s\",\"id\":%ld,"
               "\"ts\":%.3f,\"pid\":1,\"tid\":%lu}",
               name, static_cast<long>(edge_id), us(e.sent_at),
               static_cast<unsigned long>(e.src.value()));
      sep();
      append_f(out,
               "{\"name\":\"%s\",\"cat\":\"msg\",\"ph\":\"f\",\"bp\":\"e\","
               "\"id\":%ld,\"ts\":%.3f,\"pid\":1,\"tid\":%lu}",
               name, static_cast<long>(edge_id), us(e.recv_at),
               static_cast<unsigned long>(e.dst.value()));
      ++edge_id;
    }
  }

  // Fault-injection instants. Link/route events carry dc indices rather
  // than node ids, so they get global scope instead of a node lane.
  if (trace != nullptr) {
    for (const TraceEvent& e : trace->snapshot()) {
      if (!fault_kind(e.kind)) continue;
      sep();
      if (e.kind == EventKind::kRecoveryDone) {
        // The rejoin event carries the whole recovery duration; render it as
        // a complete ("X") slice ending at the event, on the node's lane.
        append_f(out,
                 "{\"name\":\"recovery\",\"cat\":\"recovery\",\"ph\":\"X\","
                 "\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,\"tid\":%lu,"
                 "\"args\":{\"rejoin_ns\":%lld}}",
                 us(e.at) - static_cast<double>(e.value) / 1e3,
                 static_cast<double>(e.value) / 1e3,
                 static_cast<unsigned long>(e.node.value()),
                 static_cast<long long>(e.value));
        continue;
      }
      if (node_scoped(e.kind)) {
        append_f(out,
                 "{\"name\":\"%s\",\"cat\":\"fault\",\"ph\":\"i\",\"s\":\"t\","
                 "\"ts\":%.3f,\"pid\":1,\"tid\":%lu,\"args\":{\"value\":%lld}}",
                 event_kind_name(e.kind), us(e.at),
                 static_cast<unsigned long>(e.node.value()),
                 static_cast<long long>(e.value));
      } else {
        append_f(out,
                 "{\"name\":\"%s\",\"cat\":\"fault\",\"ph\":\"i\",\"s\":\"g\","
                 "\"ts\":%.3f,\"pid\":1,\"tid\":0,\"args\":{\"src_dc\":%lu,"
                 "\"dst_dc\":%lu,\"value\":%lld}}",
                 event_kind_name(e.kind), us(e.at),
                 static_cast<unsigned long>(e.node.value()),
                 static_cast<unsigned long>(e.peer.value()),
                 static_cast<long long>(e.value));
      }
    }
  }

  out += "]}";
  return out;
}

}  // namespace domino::obs
