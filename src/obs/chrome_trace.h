// Chrome trace_event JSON export (viewable in Perfetto / chrome://tracing).
//
// One process (pid 1), one lane (tid) per node: spans become "X" complete
// events on their node's lane, message edges become flow arrows ("s"/"f")
// linking the sending span to the handler span they opened, and fault
// events from the TraceRecorder (crashes, partitions, degradations, client
// retries) become instant events — on the affected node's lane when the
// event names a node, global otherwise.
//
// Deterministic: events are emitted in store order with virtual-time
// stamps, so two runs with the same seed produce byte-identical JSON.
#pragma once

#include <string>

#include "obs/span.h"
#include "obs/trace.h"

namespace domino::obs {

/// Either argument may be null; a null SpanStore yields no span/flow
/// events, a null TraceRecorder no fault instants. Always returns a valid
/// JSON object ({"displayTimeUnit":"ms","traceEvents":[...]}).
[[nodiscard]] std::string chrome_trace_json(const SpanStore* spans,
                                            const TraceRecorder* trace);

}  // namespace domino::obs
