// Causal per-command span store.
//
// Every client command owns a trace: a root span opened at submit time and
// closed at commit (or abandon). The trace context (trace id + active span
// id) is piggybacked on every wire message the command causes (see
// wire/message.h), so each node that handles such a message opens a child
// span linked to the sender's span through a message edge. The result is a
// per-command DAG of spans and send/recv edges over virtual time, which the
// critical-path analyzer (obs/causal.h) walks backwards from the commit to
// attribute every nanosecond of end-to-end latency to a named phase.
//
// Determinism: span and edge ids are allocated in simulator execution
// order, all timestamps are virtual time, and storage is append-only, so
// two runs with the same seed produce byte-identical exports. Capacity is
// bounded; overflow drops new records and counts them (never silently).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "common/time.h"

namespace domino::obs {

/// Trace identifier: derived from the command's RequestId, never zero.
using TraceId = std::uint64_t;
/// Span identifier: 1-based index into the store, 0 = invalid.
using SpanId = std::uint64_t;

[[nodiscard]] constexpr TraceId trace_id_of(const RequestId& id) {
  return (static_cast<TraceId>(id.client.value() + 1) << 32) ^ id.seq;
}

/// The context piggybacked on wire messages: which trace caused this
/// message, and which span sent it.
struct TraceContext {
  TraceId trace_id = 0;
  SpanId span_id = 0;

  [[nodiscard]] constexpr bool valid() const { return trace_id != 0 && span_id != 0; }
};

struct Span {
  SpanId id = 0;
  TraceId trace = 0;
  SpanId parent = 0;          // causal parent span (0 for roots)
  NodeId node;                // node the span ran on
  const char* name = "";      // static string (message/phase name)
  TimePoint begin;
  TimePoint end;              // == begin until closed
  std::uint16_t msg_type = 0; // inbound wire tag for handler spans, else 0
  std::int32_t in_edge = -1;  // edge that caused this span, -1 = none
  bool root = false;          // root span of its trace
};

/// One delivered message inside a trace: the FIFO-channel send/recv edge
/// between the sending span and the handler span it opened.
struct MsgEdge {
  TraceId trace = 0;
  SpanId from_span = 0;
  SpanId to_span = 0;  // handler span opened at delivery
  NodeId src;
  NodeId dst;
  TimePoint sent_at;
  TimePoint recv_at;
  std::uint16_t msg_type = 0;
};

/// The terminal event of a committed command: when the owning client
/// learned the commit, and inside which span it learned it.
struct CommitRecord {
  TraceId trace = 0;
  RequestId request;
  TimePoint committed_at;
  SpanId via_span = 0;  // 0 when the commit arrived on an untraced path
};

class SpanStore {
 public:
  static constexpr std::size_t kDefaultCapacity = 1 << 20;

  explicit SpanStore(std::size_t max_spans = kDefaultCapacity,
                     std::size_t max_edges = kDefaultCapacity);

  /// Open a span. Returns 0 (and counts a drop) when the store is full.
  /// `name` must point to storage outliving the store (static strings).
  SpanId open(TraceId trace, SpanId parent, NodeId node, const char* name, TimePoint at,
              std::uint16_t msg_type = 0, std::int32_t in_edge = -1);

  /// Open the root span of `trace` and remember it for root_of().
  SpanId open_root(TraceId trace, NodeId node, const char* name, TimePoint at);

  void close(SpanId id, TimePoint at);

  /// Record a delivered message edge. Returns the edge index, or -1 (and a
  /// counted drop) when full.
  std::int32_t add_edge(TraceId trace, SpanId from_span, NodeId src, NodeId dst,
                        TimePoint sent_at, TimePoint recv_at, std::uint16_t msg_type);

  /// Link the handler span opened at delivery back to its edge.
  void bind_edge_target(std::int32_t edge, SpanId to_span);

  /// Record that `request`'s client learned the commit at `at`, inside
  /// `via_span` (0 when the notification arrived on an untraced path).
  void note_commit(TraceId trace, const RequestId& request, TimePoint at, SpanId via_span);

  [[nodiscard]] const Span* span(SpanId id) const {
    return (id >= 1 && id <= spans_.size()) ? &spans_[id - 1] : nullptr;
  }
  [[nodiscard]] SpanId root_of(TraceId trace) const;

  [[nodiscard]] const std::vector<Span>& spans() const { return spans_; }
  [[nodiscard]] const std::vector<MsgEdge>& edges() const { return edges_; }
  [[nodiscard]] const std::vector<CommitRecord>& commits() const { return commits_; }

  [[nodiscard]] std::uint64_t dropped_spans() const { return dropped_spans_; }
  [[nodiscard]] std::uint64_t dropped_edges() const { return dropped_edges_; }
  [[nodiscard]] bool empty() const { return spans_.empty(); }

  void clear();

 private:
  std::size_t max_spans_;
  std::size_t max_edges_;
  std::vector<Span> spans_;
  std::vector<MsgEdge> edges_;
  std::vector<CommitRecord> commits_;
  std::unordered_map<TraceId, SpanId> roots_;
  std::uint64_t dropped_spans_ = 0;
  std::uint64_t dropped_edges_ = 0;
};

}  // namespace domino::obs
