#include "obs/causal.h"

#include <algorithm>
#include <cstdio>
#include <map>

#include "wire/message.h"

namespace domino::obs {

namespace {

/// Backstop against pathological DAGs (cross-trace cycles cannot occur —
/// edges only point backwards in virtual time — but a dropped-edge chain
/// could be long). Beyond this many steps the rest is "unattributed".
constexpr std::size_t kMaxWalkSteps = 4096;

}  // namespace

const char* transit_phase(std::uint16_t msg_type) {
  using MT = wire::MessageType;
  switch (static_cast<MT>(msg_type)) {
    // Domino fast path: client broadcast, then the client (fast learner)
    // waits for a supermajority of accept notices. The edge completing the
    // quorum names the straggler replica.
    case MT::kDfpPropose: return "dfp_propose_transit";
    case MT::kDfpAcceptNotice: return "dfp_quorum_wait";
    case MT::kDfpClientReply: return "dfp_slow_reply_transit";
    // Domino DM (Mencius-style) path: forward to the lane owner, Accept
    // round, quorum gather.
    case MT::kDmPropose: return "dm_forward_transit";
    case MT::kDmAccept: return "dm_accept_transit";
    case MT::kDmAcceptReply: return "dm_quorum_wait";
    case MT::kDmClientReply: return "reply_transit";
    // Baselines.
    case MT::kPaxosClientRequest:
    case MT::kMenciusClientRequest:
    case MT::kEpaxosClientRequest:
    case MT::kFastPaxosClientRequest: return "request_transit";
    case MT::kPaxosAccept:
    case MT::kMenciusAccept:
    case MT::kEpaxosPreAccept:
    case MT::kEpaxosAccept: return "accept_transit";
    case MT::kPaxosAcceptReply:
    case MT::kMenciusAcceptReply:
    case MT::kEpaxosPreAcceptReply:
    case MT::kEpaxosAcceptReply: return "quorum_wait";
    case MT::kPaxosClientReply:
    case MT::kMenciusClientReply:
    case MT::kEpaxosClientReply:
    case MT::kFastPaxosClientReply: return "reply_transit";
    case MT::kDfpCommit:
    case MT::kDmCommit:
    case MT::kPaxosCommit:
    case MT::kMenciusCommit:
    case MT::kEpaxosCommit:
    case MT::kFastPaxosCommit: return "commit_transit";
    case MT::kFastPaxosAcceptNotice: return "fp_notice_transit";
    // Slow-path machinery: coordinator recovery, lane revocation, range
    // recovery. Time spent behind these edges is slow-path penalty.
    case MT::kFastPaxosRecoveryAccept:
    case MT::kFastPaxosRecoveryReply:
    case MT::kDfpRecoveryAccept:
    case MT::kDfpRecoveryReply:
    case MT::kDmRevoke:
    case MT::kDmRevokeReply:
    case MT::kDmRevokeResult:
    case MT::kDfpRangeRecover:
    case MT::kDfpRangeReply:
    case MT::kDfpRangeResolve: return "recovery_transit";
    default: return "transit";
  }
}

std::vector<CommandPath> critical_paths(const SpanStore& store) {
  std::vector<CommandPath> paths;
  paths.reserve(store.commits().size());
  for (const CommitRecord& c : store.commits()) {
    const Span* root = store.span(store.root_of(c.trace));
    if (root == nullptr) continue;  // dropped root: no interval to anchor

    CommandPath path;
    path.trace = c.trace;
    path.request = c.request;
    path.submitted_at = root->begin;
    path.committed_at = c.committed_at;
    const TimePoint t0 = root->begin;

    // Segments are emitted newest-first, then reversed. emit() drops
    // zero-width segments (handlers run at a virtual instant), which never
    // breaks the tiling: a zero-width slice contributes zero latency.
    auto& segs = path.segments;
    const auto emit = [&segs](const char* phase, NodeId node, NodeId peer, TimePoint b,
                              TimePoint e) {
      if (e > b) segs.push_back(PathSegment{phase, node, peer, b, e});
    };

    TimePoint cur_time = c.committed_at;
    SpanId cur = c.via_span;
    if (cur == 0) {
      // The commit notification arrived on an untraced path (a timer or
      // heartbeat resolved the command — e.g. Mencius skips). The whole
      // interval is one opaque wait; the sum stays exact.
      emit("untraced_wait", root->node, root->node, t0, cur_time);
      paths.push_back(std::move(path));
      continue;
    }

    std::size_t steps = 0;
    while (cur_time > t0) {
      const Span* s = store.span(cur);
      if (s == nullptr || ++steps > kMaxWalkSteps) {
        emit("unattributed", root->node, root->node, t0, cur_time);
        break;
      }
      // Local segment: time spent inside span `s` up to the moment the walk
      // entered it. Handler spans are zero-width in virtual time; a nonzero
      // slice on the root span means the committing attempt was a retry
      // sent after the original submission.
      TimePoint seg_begin = std::clamp(s->begin, t0, cur_time);
      const bool own_root = s->root && s->trace == c.trace;
      emit(own_root ? "client_retry_wait" : "local_work", s->node, s->node, seg_begin,
           cur_time);
      cur_time = seg_begin;
      if (own_root || cur_time <= t0) break;  // reached the submit: fully tiled

      if (s->in_edge >= 0 &&
          static_cast<std::size_t>(s->in_edge) < store.edges().size()) {
        const MsgEdge& e = store.edges()[static_cast<std::size_t>(s->in_edge)];
        const TimePoint sent = std::clamp(e.sent_at, t0, cur_time);
        emit(transit_phase(e.msg_type), e.src, e.dst, sent, cur_time);
        cur_time = sent;
        cur = e.from_span;
      } else {
        // A span with no inbound message edge that is not our root: the
        // root of another command's trace (cross-command dependency, e.g.
        // an EPaxos dependency or a rerouted attempt), a wait span, or a
        // handler whose edge record was dropped. Whatever the command was
        // blocked on is outside its own causal chain — slow-path penalty.
        emit("slow_path_wait", s->node, s->node, t0, cur_time);
        break;
      }
    }
    std::reverse(segs.begin(), segs.end());
    paths.push_back(std::move(path));
  }
  return paths;
}

void accumulate_phases(const std::vector<CommandPath>& paths, MetricsRegistry& registry) {
  Counter& commands = registry.counter("critpath.commands");
  for (const CommandPath& p : paths) {
    commands.inc();
    registry.histogram("critpath.total_ns").record(p.total());
    // One histogram sample per phase per command (a command may cross the
    // same phase several times, e.g. retries). std::map keeps phase
    // iteration order deterministic.
    std::map<std::string_view, std::int64_t> by_phase;
    for (const PathSegment& s : p.segments) by_phase[s.phase] += s.duration().nanos();
    for (const auto& [phase, ns] : by_phase) {
      registry.histogram("critpath." + std::string(phase) + "_ns").record(ns);
    }
  }
}

std::string paths_to_csv(const std::vector<CommandPath>& paths, std::string_view protocol) {
  std::string out =
      "protocol,request,trace,submit_ns,commit_ns,total_ns,"
      "phase_index,phase,node,peer,begin_ns,end_ns,dur_ns\n";
  char buf[320];
  const std::string proto(protocol);
  for (const CommandPath& p : paths) {
    std::size_t idx = 0;
    for (const PathSegment& s : p.segments) {
      std::snprintf(buf, sizeof buf,
                    "%s,%lu:%llu,%llu,%lld,%lld,%lld,%zu,%s,%lu,%lu,%lld,%lld,%lld\n",
                    proto.c_str(), static_cast<unsigned long>(p.request.client.value()),
                    static_cast<unsigned long long>(p.request.seq),
                    static_cast<unsigned long long>(p.trace),
                    static_cast<long long>(p.submitted_at.nanos()),
                    static_cast<long long>(p.committed_at.nanos()),
                    static_cast<long long>(p.total().nanos()), idx, s.phase,
                    static_cast<unsigned long>(s.node.value()),
                    static_cast<unsigned long>(s.peer.value()),
                    static_cast<long long>(s.begin.nanos()),
                    static_cast<long long>(s.end.nanos()),
                    static_cast<long long>(s.duration().nanos()));
      out += buf;
      ++idx;
    }
  }
  return out;
}

}  // namespace domino::obs
