// Deterministic critical-path analysis over per-command span DAGs.
//
// For every committed command recorded in a SpanStore, the analyzer walks
// the span DAG backwards from the commit notification (CommitRecord) to the
// root span's begin, alternating between local span segments and message
// transit segments (FIFO send/recv edges). The walk emits a contiguous
// tiling of the interval [submit, commit]: segment durations sum EXACTLY
// (virtual time, integer nanoseconds) to the command's end-to-end latency.
// Causal gaps — commits resolved by untraced timers or heartbeats — are
// covered by explicit fallback segments ("untraced_wait", "slow_path_wait")
// rather than dropped, preserving the exact-sum invariant.
//
// Phase names attribute each transit edge to a protocol-meaningful step:
// a PaxosAcceptReply edge is the leader's quorum wait (its `node` names the
// straggler replica whose reply completed the quorum), a DfpPropose edge is
// client→replica transit on Domino's fast path, a DmPropose edge is the
// coordinator forward, recovery/revocation messages become slow-path
// penalty, and so on.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"
#include "obs/span.h"

namespace domino::obs {

/// One contiguous slice of a command's end-to-end latency. For transit
/// segments `node` is the sender and `peer` the receiver; for local
/// segments both name the node the time was spent on.
struct PathSegment {
  const char* phase = "";
  NodeId node;
  NodeId peer;
  TimePoint begin;
  TimePoint end;

  [[nodiscard]] Duration duration() const { return end - begin; }
};

/// The critical path of one committed command: chronological segments
/// tiling [submitted_at, committed_at] exactly.
struct CommandPath {
  TraceId trace = 0;
  RequestId request;
  TimePoint submitted_at;
  TimePoint committed_at;
  std::vector<PathSegment> segments;

  [[nodiscard]] Duration total() const { return committed_at - submitted_at; }
};

/// Phase name for a transit edge carrying wire tag `msg_type`.
[[nodiscard]] const char* transit_phase(std::uint16_t msg_type);

/// Compute the critical path of every committed command in `store`, in
/// commit order. Deterministic: depends only on store contents.
[[nodiscard]] std::vector<CommandPath> critical_paths(const SpanStore& store);

/// Aggregate per-phase durations into `critpath.<phase>_ns` histograms
/// (one sample per command per phase, summed within a command) plus a
/// `critpath.commands` counter.
void accumulate_phases(const std::vector<CommandPath>& paths, MetricsRegistry& registry);

/// Long-format CSV, one row per (command, segment):
/// protocol,request,trace,submit_ns,commit_ns,total_ns,
/// phase_index,phase,node,peer,begin_ns,end_ns,dur_ns
[[nodiscard]] std::string paths_to_csv(const std::vector<CommandPath>& paths,
                                       std::string_view protocol);

}  // namespace domino::obs
