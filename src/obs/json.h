// Shared deterministic JSON/string-building helpers.
//
// One home for the low-level pieces every exporter needs — printf-style
// string appending, fixed-width integer formatting, JSON string escaping
// and whole-file writes — so the observability exporters (obs/export.cpp,
// obs/timeseries.cpp), the harness report (harness/run_report.cpp) and the
// bench binaries (bench/bench_util.h) all format numbers identically.
// Determinism rules: fixed printf conversions only, no locale, no wall
// clock, no pointer values.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace domino::obs {

/// Append printf-formatted text to `out`. The formatted result must fit in
/// 256 bytes (every caller formats a handful of scalars at a time).
void appendf(std::string& out, const char* fmt, ...)
#if defined(__GNUC__) || defined(__clang__)
    __attribute__((format(printf, 2, 3)))
#endif
    ;

/// Append a decimal unsigned 64-bit integer ("%llu").
void append_u64(std::string& out, std::uint64_t v);

/// Append a decimal signed 64-bit integer ("%lld").
void append_i64(std::string& out, std::int64_t v);

/// Minimal JSON string escaping (quotes, backslashes, control chars).
[[nodiscard]] std::string json_escape(std::string_view s);

/// Write `content` to `path`; returns false on I/O failure.
bool write_file(const std::string& path, std::string_view content);

}  // namespace domino::obs
