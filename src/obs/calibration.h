// Estimator calibration: predicted-percentile arrival offsets vs realized
// offsets, per measurement target.
//
// Domino's fast path stands or falls with the prober's percentile
// estimates (paper Section 5.4): a DFP timestamp is "local now + predicted
// p95 arrival offset", so the useful calibration question is *coverage* —
// how often does the realized offset land at or below the prediction the
// estimator would have made just before the sample arrived? A perfectly
// calibrated p95 estimator covers ~95% of samples; systematic under-
// coverage on one target is exactly the stale/wrong estimate that blows
// DFP deadlines, and the prediction-audit layer (obs/predict.h) blames it.
//
// CalibrationCell accumulates one (owner, target) series; Calibration owns
// the per-target map a measure::Prober reports into. Everything is integer
// arithmetic over virtual time, so same-seed runs export byte-identical
// calibration tables.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/ids.h"
#include "common/time.h"

namespace domino::obs {

/// Rolling calibration of one predicted-percentile series against its
/// realized samples. `record` takes the prediction that was current
/// *before* the sample was folded into the estimator window.
class CalibrationCell {
 public:
  void record(Duration predicted, Duration realized) {
    ++samples_;
    const std::int64_t margin = (predicted - realized).nanos();
    sum_margin_ns_ += margin;
    if (margin >= 0) {
      // Covered: the realized offset stayed at or below the prediction.
      ++covered_;
    } else if (-margin > max_overshoot_ns_) {
      max_overshoot_ns_ = -margin;
    }
  }

  [[nodiscard]] std::uint64_t samples() const { return samples_; }
  [[nodiscard]] std::uint64_t covered() const { return covered_; }
  /// Fraction of samples with realized <= predicted (1.0 when empty, the
  /// same convention as Client::recent_fast_rate).
  [[nodiscard]] double coverage() const {
    return samples_ == 0
               ? 1.0
               : static_cast<double>(covered_) / static_cast<double>(samples_);
  }
  /// Mean signed margin (predicted - realized) in nanoseconds; positive
  /// means the estimator predicts conservatively (slack), negative means it
  /// systematically undershoots.
  [[nodiscard]] std::int64_t mean_margin_ns() const {
    return samples_ == 0 ? 0 : sum_margin_ns_ / static_cast<std::int64_t>(samples_);
  }
  [[nodiscard]] std::int64_t sum_margin_ns() const { return sum_margin_ns_; }
  /// Largest realized-above-predicted excursion seen (0 if always covered).
  [[nodiscard]] std::int64_t max_overshoot_ns() const { return max_overshoot_ns_; }

 private:
  std::uint64_t samples_ = 0;
  std::uint64_t covered_ = 0;
  std::int64_t sum_margin_ns_ = 0;
  std::int64_t max_overshoot_ns_ = 0;
};

/// Per-target calibration map for one measurement owner (a prober). Targets
/// are registered up front so iteration order is the owner's target order —
/// deterministic, not hash order.
class Calibration {
 public:
  Calibration() = default;
  Calibration(NodeId owner, const std::vector<NodeId>& targets) : owner_(owner) {
    cells_.reserve(targets.size());
    for (NodeId t : targets) cells_.push_back({t, CalibrationCell{}});
  }

  void record(NodeId target, Duration predicted, Duration realized) {
    for (auto& [id, cell] : cells_) {
      if (id == target) {
        cell.record(predicted, realized);
        return;
      }
    }
  }

  [[nodiscard]] NodeId owner() const { return owner_; }
  [[nodiscard]] const CalibrationCell* cell(NodeId target) const {
    for (const auto& [id, cell] : cells_) {
      if (id == target) return &cell;
    }
    return nullptr;
  }
  [[nodiscard]] std::uint64_t total_samples() const {
    std::uint64_t n = 0;
    for (const auto& [id, cell] : cells_) n += cell.samples();
    return n;
  }

  template <typename Fn>
  void visit(Fn&& fn) const {
    for (const auto& [id, cell] : cells_) fn(id, cell);
  }

 private:
  NodeId owner_;
  std::vector<std::pair<NodeId, CalibrationCell>> cells_;
};

/// One exported calibration series (owner -> target), flattened for run
/// reports and CSV.
struct CalibrationRow {
  NodeId owner;
  NodeId target;
  std::uint64_t samples = 0;
  std::uint64_t covered = 0;
  std::int64_t mean_margin_ns = 0;
  std::int64_t max_overshoot_ns = 0;

  [[nodiscard]] double coverage() const {
    return samples == 0 ? 1.0 : static_cast<double>(covered) / static_cast<double>(samples);
  }
};

/// Flatten a calibration map into rows (target order), skipping targets
/// that never produced a sample.
[[nodiscard]] std::vector<CalibrationRow> calibration_rows(const Calibration& calibration);

/// CSV with header
///   owner,target,samples,covered,coverage,mean_margin_ns,max_overshoot_ns
/// one row per (owner, target) series, in input order.
[[nodiscard]] std::string calibration_to_csv(const std::vector<CalibrationRow>& rows);

}  // namespace domino::obs
