// Structured protocol event tracing.
//
// A TraceRecorder captures fixed-size events into a preallocated ring
// buffer. Timestamps are virtual time only (never a wall clock), and events
// are recorded in simulator execution order, so two runs with the same seed
// produce byte-identical trace output — the property the evaluation harness
// relies on to diff runs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/ids.h"
#include "common/time.h"

namespace domino::obs {

/// The protocol event taxonomy (see DESIGN.md "Observability").
enum class EventKind : std::uint8_t {
  kRequestSubmit,        // client submits a command
  kFastAccept,           // DFP / fast-quorum fast-path resolution
  kCoordinatorFallback,  // request rerouted through the slow path (DM)
  kCommit,               // client learns a request committed
  kExecute,              // replica executes a command
  kProbeSend,            // measurement probe sent
  kProbeRecv,            // measurement probe reply received
  kMessageSend,          // transport accepted a packet
  kMessageDeliver,       // transport delivered a packet
  kMessageDrop,          // transport dropped a packet (detail = net::DropReason)
  kNodeCrash,            // fault injector crashed a node
  kNodeRecover,          // fault injector recovered a node
  kLinkPartition,        // directed dc link partitioned (node/peer = dc indices)
  kLinkHeal,             // directed dc link healed
  kLinkDegrade,          // degradation epoch began (value = multiplier x1000)
  kLinkRestore,          // degradation epoch ended
  kRouteChange,          // permanent base-delay change (value = new base ns)
  kClientRetry,          // client re-proposed a timed-out request
  kClientAbandon,        // client gave up on a request (retries exhausted)
  kRecoveryStart,        // amnesiac restart began (value = restart epoch)
  kRecoveryDone,         // replica rejoined after catch-up (value = ns spent)
};

[[nodiscard]] const char* event_kind_name(EventKind kind);

struct TraceEvent {
  TimePoint at;                       // virtual (true) time
  EventKind kind = EventKind::kMessageSend;
  NodeId node;                        // acting node
  NodeId peer = NodeId::invalid();    // counterpart, if any
  RequestId request{NodeId::invalid(), 0};  // subject request, if any
  std::uint16_t msg_type = 0;         // wire::MessageType tag, 0 if n/a
  std::uint8_t detail = 0;            // kind-specific code (e.g. drop reason)
  std::int64_t value = 0;             // kind-specific (bytes, delay ns, ts)
};

class TraceRecorder {
 public:
  static constexpr std::size_t kDefaultCapacity = 1 << 16;

  explicit TraceRecorder(std::size_t capacity = kDefaultCapacity);

  /// O(1); once the ring is full the oldest event is overwritten.
  void record(const TraceEvent& event);

  [[nodiscard]] std::size_t capacity() const { return ring_.size(); }
  /// Events currently retained.
  [[nodiscard]] std::size_t size() const;
  /// Events ever recorded (retained + overwritten).
  [[nodiscard]] std::uint64_t total_recorded() const { return total_; }
  [[nodiscard]] std::uint64_t overwritten() const { return total_ - size(); }
  [[nodiscard]] bool empty() const { return total_ == 0; }

  /// Retained events, oldest first.
  [[nodiscard]] std::vector<TraceEvent> snapshot() const;

  void clear();

 private:
  std::vector<TraceEvent> ring_;
  std::size_t head_ = 0;     // next write position
  std::uint64_t total_ = 0;  // events ever recorded
};

}  // namespace domino::obs
