// Windowed telemetry: deterministic per-window snapshots of a
// MetricsRegistry, sampled on virtual time.
//
// A Timeseries turns the registry's end-of-run aggregates into a frame
// stream: each sample() call closes one window and appends, per metric,
// the *delta* since the previous sample — counter increments, gauge last
// values, and the exact distribution of histogram values recorded inside
// the window (via Histogram::snapshot() / HistogramDelta, so windowed
// percentiles carry the same <= 12.5% bucket error as lifetime ones).
//
// Design constraints:
//   - Determinism: sampling happens on the simulator's virtual-time queue
//     and only *reads* metrics, so enabling it never perturbs protocol
//     behaviour; series iterate in metric-name order and exports use fixed
//     printf conversions, so same-seed runs export byte-identical
//     timelines.
//   - Fixed capacity: at most `max_windows` windows are retained; further
//     samples are counted in dropped_windows(), never silently discarded.
//   - Late registration: a metric that first appears at window w gets w
//     zero-filled leading entries, so every series has one entry per
//     window.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/time.h"
#include "obs/metrics.h"

namespace domino::obs {

/// One window's view of one histogram: headline stats of the delta
/// distribution, computed exactly at sampling time from the bucket delta.
struct WindowHistogram {
  std::uint64_t count = 0;
  double sum = 0.0;
  std::int64_t p50 = 0;
  std::int64_t p95 = 0;
  std::int64_t p99 = 0;

  [[nodiscard]] double mean() const {
    return count == 0 ? 0.0 : sum / static_cast<double>(count);
  }
};

class Timeseries {
 public:
  static constexpr std::size_t kDefaultMaxWindows = 4096;

  explicit Timeseries(std::size_t max_windows = kDefaultMaxWindows)
      : max_windows_(max_windows) {}

  /// Close the window (previous sample time, now] and record every
  /// registered metric's delta. Samples at or before the previous sample
  /// instant are ignored (guards the end-of-run flush against a periodic
  /// tick at the same instant). The first window starts at the epoch.
  void sample(const MetricsRegistry& registry, TimePoint now);

  struct Window {
    TimePoint start;
    TimePoint end;
    [[nodiscard]] Duration length() const { return end - start; }
  };

  /// Per-series storage. `prev` members carry the between-samples snapshot
  /// state; exports only read the per-window vectors.
  struct CounterSeries {
    std::vector<std::uint64_t> deltas;  // one per window
    std::uint64_t prev = 0;
  };
  struct GaugeSeries {
    std::vector<std::int64_t> values;  // last value per window
  };
  struct HistogramSeries {
    std::vector<WindowHistogram> windows;
    HistogramSnapshot prev;
  };
  using CounterMap = std::map<std::string, CounterSeries, std::less<>>;
  using GaugeMap = std::map<std::string, GaugeSeries, std::less<>>;
  using HistogramMap = std::map<std::string, HistogramSeries, std::less<>>;

  [[nodiscard]] const std::vector<Window>& windows() const { return windows_; }
  [[nodiscard]] std::size_t window_count() const { return windows_.size(); }
  [[nodiscard]] std::uint64_t dropped_windows() const { return dropped_windows_; }
  [[nodiscard]] std::size_t max_windows() const { return max_windows_; }

  [[nodiscard]] const CounterMap& counters() const { return counters_; }
  [[nodiscard]] const GaugeMap& gauges() const { return gauges_; }
  [[nodiscard]] const HistogramMap& histograms() const { return histograms_; }

  [[nodiscard]] const CounterSeries* find_counter(std::string_view name) const;
  [[nodiscard]] const HistogramSeries* find_histogram(std::string_view name) const;

 private:
  std::size_t max_windows_;
  std::vector<Window> windows_;
  std::uint64_t dropped_windows_ = 0;
  CounterMap counters_;
  GaugeMap gauges_;
  HistogramMap histograms_;
};

/// One row per scalar, window-major:
///   window,start_ns,end_ns,kind,name,field,value
/// Counters emit `delta`, gauges `value`; histograms emit `count` always
/// and mean/p50/p95/p99 only for non-empty windows. Byte-stable for a
/// given timeline.
[[nodiscard]] std::string timeseries_to_csv(const Timeseries& ts);

/// Append the timeline as a JSON object:
///   {"windows":N,"dropped_windows":D,"window_end_ms":[...],
///    "metrics":{name:{"kind":...,...series arrays...}}}
/// The "metrics" member has data-dependent keys (one per metric name).
void append_timeseries_json(std::string& out, const Timeseries& ts);

}  // namespace domino::obs
