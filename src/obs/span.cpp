#include "obs/span.h"

namespace domino::obs {

SpanStore::SpanStore(std::size_t max_spans, std::size_t max_edges)
    : max_spans_(max_spans), max_edges_(max_edges) {}

SpanId SpanStore::open(TraceId trace, SpanId parent, NodeId node, const char* name,
                       TimePoint at, std::uint16_t msg_type, std::int32_t in_edge) {
  if (spans_.size() >= max_spans_) {
    ++dropped_spans_;
    return 0;
  }
  Span s;
  s.id = spans_.size() + 1;
  s.trace = trace;
  s.parent = parent;
  s.node = node;
  s.name = name;
  s.begin = at;
  s.end = at;
  s.msg_type = msg_type;
  s.in_edge = in_edge;
  spans_.push_back(s);
  return s.id;
}

SpanId SpanStore::open_root(TraceId trace, NodeId node, const char* name, TimePoint at) {
  const SpanId id = open(trace, /*parent=*/0, node, name, at);
  if (id != 0) {
    spans_[id - 1].root = true;
    roots_.emplace(trace, id);  // first root wins (retries reuse it)
  }
  return id;
}

void SpanStore::close(SpanId id, TimePoint at) {
  if (id >= 1 && id <= spans_.size()) spans_[id - 1].end = at;
}

std::int32_t SpanStore::add_edge(TraceId trace, SpanId from_span, NodeId src, NodeId dst,
                                 TimePoint sent_at, TimePoint recv_at,
                                 std::uint16_t msg_type) {
  if (edges_.size() >= max_edges_) {
    ++dropped_edges_;
    return -1;
  }
  MsgEdge e;
  e.trace = trace;
  e.from_span = from_span;
  e.src = src;
  e.dst = dst;
  e.sent_at = sent_at;
  e.recv_at = recv_at;
  e.msg_type = msg_type;
  edges_.push_back(e);
  return static_cast<std::int32_t>(edges_.size() - 1);
}

void SpanStore::bind_edge_target(std::int32_t edge, SpanId to_span) {
  if (edge >= 0 && static_cast<std::size_t>(edge) < edges_.size()) {
    edges_[static_cast<std::size_t>(edge)].to_span = to_span;
  }
}

void SpanStore::note_commit(TraceId trace, const RequestId& request, TimePoint at,
                            SpanId via_span) {
  commits_.push_back(CommitRecord{trace, request, at, via_span});
}

SpanId SpanStore::root_of(TraceId trace) const {
  const auto it = roots_.find(trace);
  return it == roots_.end() ? 0 : it->second;
}

void SpanStore::clear() {
  spans_.clear();
  edges_.clear();
  commits_.clear();
  roots_.clear();
  dropped_spans_ = 0;
  dropped_edges_ = 0;
}

}  // namespace domino::obs
