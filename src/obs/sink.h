// The wiring point between instrumented code and the observability layer.
//
// A Sink is a pair of optional destinations (metrics registry, trace
// recorder). Instrumented components copy the sink once at construction /
// bind time, create metric handles through it, and guard trace emission on
// `tracing()`. A default-constructed Sink disables everything at the cost
// of one branch per instrumentation point.
#pragma once

#include "obs/metrics.h"
#include "obs/predict.h"
#include "obs/span.h"
#include "obs/trace.h"

namespace domino::obs {

struct Sink {
  MetricsRegistry* metrics = nullptr;
  TraceRecorder* trace = nullptr;
  /// Causal per-command span store (obs/span.h); null disables span
  /// collection and trace-context piggybacking on the wire.
  SpanStore* spans = nullptr;
  /// Prediction audit (obs/predict.h); null disables decision-record
  /// capture at the Domino client's choice point. Never touches the wire.
  PredictionAudit* predict = nullptr;

  [[nodiscard]] bool active() const {
    return metrics != nullptr || trace != nullptr || spans != nullptr ||
           predict != nullptr;
  }
  [[nodiscard]] bool tracing() const { return trace != nullptr; }
  [[nodiscard]] bool spans_enabled() const { return spans != nullptr; }

  /// Handle factories: null handles when the registry is disabled.
  [[nodiscard]] CounterHandle counter(std::string_view name) const {
    return metrics != nullptr ? CounterHandle{&metrics->counter(name)} : CounterHandle{};
  }
  [[nodiscard]] GaugeHandle gauge(std::string_view name) const {
    return metrics != nullptr ? GaugeHandle{&metrics->gauge(name)} : GaugeHandle{};
  }
  [[nodiscard]] HistogramHandle histogram(std::string_view name) const {
    return metrics != nullptr ? HistogramHandle{&metrics->histogram(name)}
                              : HistogramHandle{};
  }

  void record(const TraceEvent& event) const {
    if (trace != nullptr) trace->record(event);
  }
};

}  // namespace domino::obs
