// Deterministic serialization of observability data.
//
// All output is byte-stable for a given run: metrics iterate in name order,
// trace events in recording order, and numbers are formatted with fixed
// printf conversions (no locale, no pointer values, no wall clock).
#pragma once

#include <string>
#include <string_view>

#include "obs/json.h"  // json_escape / write_file / number formatting
#include "obs/metrics.h"
#include "obs/trace.h"

namespace domino::obs {

/// {"counters":{...},"gauges":{...},"histograms":{...}}
[[nodiscard]] std::string metrics_to_json(const MetricsRegistry& registry);

/// One row per scalar: kind,name,field,value. Histograms emit count, min,
/// max, mean and the standard percentiles.
[[nodiscard]] std::string metrics_to_csv(const MetricsRegistry& registry);

/// One line per retained event, oldest first.
[[nodiscard]] std::string trace_to_text(const TraceRecorder& trace);

/// JSON array of event objects, oldest first.
[[nodiscard]] std::string trace_to_json(const TraceRecorder& trace);

}  // namespace domino::obs
