#include "obs/json.h"

#include <cstdarg>
#include <cstdio>

namespace domino::obs {

void appendf(std::string& out, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  out += buf;
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  out += buf;
}

void append_i64(std::string& out, std::int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  out += buf;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

bool write_file(const std::string& path, std::string_view content) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const std::size_t written = std::fwrite(content.data(), 1, content.size(), f);
  const bool ok = std::fclose(f) == 0 && written == content.size();
  return ok;
}

}  // namespace domino::obs
