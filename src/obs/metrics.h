// Deterministic metrics for experiment runs: named counters, gauges and
// log-scale histograms collected in a MetricsRegistry.
//
// Design constraints (the observability layer is on every hot path):
//   - No allocation on the record path. Histograms use fixed HDR-style
//     buckets (8 sub-buckets per power of two, <= 12.5% relative error);
//     counters and gauges are single words.
//   - Registration (name lookup) happens once, at wiring time; hot paths
//     hold handles. A handle over a disabled registry is null, so a
//     disabled metric costs exactly one branch.
//   - Determinism: no wall clocks, no addresses, no hashing order. Export
//     iterates metrics in name order, so two runs with the same seed
//     produce byte-identical output.
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>

#include "common/time.h"

namespace domino::obs {

/// Monotonically increasing event count.
class Counter {
 public:
  void inc(std::uint64_t delta = 1) { v_ += delta; }
  [[nodiscard]] std::uint64_t value() const { return v_; }
  void reset() { v_ = 0; }

 private:
  std::uint64_t v_ = 0;
};

/// Last-write-wins instantaneous value (queue depths, inflight counts).
class Gauge {
 public:
  void set(std::int64_t v) { v_ = v; }
  void add(std::int64_t delta) { v_ += delta; }
  [[nodiscard]] std::int64_t value() const { return v_; }
  /// High-water mark since the last reset.
  [[nodiscard]] std::int64_t max() const { return max_; }
  void update_max() {
    if (v_ > max_) max_ = v_;
  }
  void reset() { v_ = max_ = 0; }

 private:
  std::int64_t v_ = 0;
  std::int64_t max_ = 0;
};

class Histogram;

/// A point-in-time copy of a histogram's state. Two snapshots of the same
/// histogram delimit a window; HistogramDelta recovers the distribution of
/// exactly the values recorded between them (bucket counts are monotone).
struct HistogramSnapshot {
  static constexpr std::size_t kBucketCount = 8 + 60 * 8;  // == Histogram::kBucketCount
  std::array<std::uint64_t, kBucketCount> buckets{};
  std::uint64_t count = 0;
  double sum = 0.0;
  /// Lifetime extrema at snapshot time (not per-window; used to clamp
  /// windowed percentiles to values that were actually ever recorded).
  std::int64_t min = 0;
  std::int64_t max = 0;
};

/// The distribution of values recorded between two snapshots of one
/// histogram (`after - before`, bucket-wise). Percentiles carry the same
/// <= 12.5% bucket-width error as Histogram::percentile; the clamp uses the
/// lifetime max, so a windowed percentile never exceeds any recorded value.
class HistogramDelta {
 public:
  HistogramDelta() = default;
  HistogramDelta(const HistogramSnapshot& before, const HistogramSnapshot& after);

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] bool empty() const { return count_ == 0; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double mean() const {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }
  /// Nearest-rank percentile over the window's values, p in [0, 100].
  [[nodiscard]] std::int64_t percentile(double p) const;
  [[nodiscard]] std::uint64_t bucket_count(std::size_t i) const { return buckets_[i]; }

 private:
  std::array<std::uint64_t, HistogramSnapshot::kBucketCount> buckets_{};
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  std::int64_t max_ = 0;  // lifetime max at `after`
};

/// Fixed-bucket log-scale histogram of non-negative 64-bit values
/// (nanosecond latencies, byte sizes). Values 0..7 are exact; above that,
/// each power of two is split into 8 sub-buckets, so a recorded value is
/// attributed to a bucket whose width is at most 12.5% of its value.
class Histogram {
 public:
  static constexpr std::size_t kSubBuckets = 8;  // per power of two
  static constexpr std::size_t kBucketCount = 8 + 60 * kSubBuckets;
  static_assert(kBucketCount == HistogramSnapshot::kBucketCount);

  void record(std::int64_t v) {
    if (v < 0) v = 0;
    ++buckets_[bucket_index(static_cast<std::uint64_t>(v))];
    ++count_;
    sum_ += static_cast<double>(v);
    if (v < min_ || count_ == 1) min_ = v;
    if (v > max_) max_ = v;
  }
  void record(Duration d) { record(d.nanos()); }

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] bool empty() const { return count_ == 0; }
  [[nodiscard]] std::int64_t min() const { return count_ == 0 ? 0 : min_; }
  [[nodiscard]] std::int64_t max() const { return max_; }
  [[nodiscard]] double mean() const {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }

  /// Nearest-rank percentile, p in [0, 100]. Returns the upper bound of the
  /// bucket holding the rank (clamped to the exact recorded max), so the
  /// answer never underestimates by more than one bucket width.
  [[nodiscard]] std::int64_t percentile(double p) const;

  [[nodiscard]] std::uint64_t bucket_count(std::size_t i) const { return buckets_[i]; }
  /// Inclusive upper bound of bucket `i`'s value range.
  [[nodiscard]] static std::int64_t bucket_upper_bound(std::size_t i);

  /// Copy the current state; diff two snapshots with HistogramDelta to get
  /// the distribution of one window's worth of samples.
  [[nodiscard]] HistogramSnapshot snapshot() const;

  void reset();

 private:
  [[nodiscard]] static std::size_t bucket_index(std::uint64_t v) {
    if (v < 8) return static_cast<std::size_t>(v);
    const int msb = std::bit_width(v) - 1;  // >= 3
    const auto sub = static_cast<std::size_t>((v >> (msb - 3)) & 7u);
    return 8 + static_cast<std::size_t>(msb - 3) * kSubBuckets + sub;
  }

  std::array<std::uint64_t, kBucketCount> buckets_{};
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  std::int64_t min_ = 0;
  std::int64_t max_ = 0;
};

/// Owns metrics by name. Metric addresses are stable for the registry's
/// lifetime, so handles can be cached. Lookup is a map walk — wiring-time
/// only, never on a hot path.
class MetricsRegistry {
 public:
  /// Find-or-create. Throws std::logic_error if `name` already names a
  /// metric of a different kind.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// Find-only (nullptr when absent or of a different kind).
  [[nodiscard]] const Counter* find_counter(std::string_view name) const;
  [[nodiscard]] const Gauge* find_gauge(std::string_view name) const;
  [[nodiscard]] const Histogram* find_histogram(std::string_view name) const;

  [[nodiscard]] std::size_t size() const { return slots_.size(); }

  /// Zero every metric, keeping registrations (and handle validity).
  void reset();

  /// Visit metrics in name order. Exactly one pointer per slot is non-null.
  template <typename Fn>
  void visit(Fn&& fn) const {
    for (const auto& [name, slot] : slots_) {
      fn(name, slot.counter.get(), slot.gauge.get(), slot.histogram.get());
    }
  }

 private:
  struct Slot {
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  std::map<std::string, Slot, std::less<>> slots_;
};

/// Null-safe handles: the hot-path API. A default-constructed handle is
/// disabled and every operation on it is a single predictable branch.
class CounterHandle {
 public:
  CounterHandle() = default;
  explicit CounterHandle(Counter* c) : c_(c) {}
  void inc(std::uint64_t delta = 1) {
    if (c_ != nullptr) c_->inc(delta);
  }
  [[nodiscard]] bool enabled() const { return c_ != nullptr; }

 private:
  Counter* c_ = nullptr;
};

class GaugeHandle {
 public:
  GaugeHandle() = default;
  explicit GaugeHandle(Gauge* g) : g_(g) {}
  void set(std::int64_t v) {
    if (g_ != nullptr) {
      g_->set(v);
      g_->update_max();
    }
  }
  void add(std::int64_t delta) {
    if (g_ != nullptr) {
      g_->add(delta);
      g_->update_max();
    }
  }
  [[nodiscard]] bool enabled() const { return g_ != nullptr; }

 private:
  Gauge* g_ = nullptr;
};

class HistogramHandle {
 public:
  HistogramHandle() = default;
  explicit HistogramHandle(Histogram* h) : h_(h) {}
  void record(std::int64_t v) {
    if (h_ != nullptr) h_->record(v);
  }
  void record(Duration d) { record(d.nanos()); }
  [[nodiscard]] bool enabled() const { return h_ != nullptr; }

 private:
  Histogram* h_ = nullptr;
};

}  // namespace domino::obs
