#include "obs/slo.h"

#include <algorithm>
#include <optional>

#include "obs/json.h"

namespace domino::obs {
namespace {

// The sampler stores three fixed percentiles per window; snap a rule's
// requested percentile onto the nearest sampled one.
std::int64_t pick_percentile(const WindowHistogram& wh, double p) {
  if (p >= 97.0) return wh.p99;
  if (p >= 75.0) return wh.p95;
  return wh.p50;
}

/// Per-window value of a metric: histogram percentile, or counter rate in
/// events/second. nullopt when the metric was never sampled, or when a
/// histogram window recorded nothing (no latency data != zero latency).
std::optional<double> window_value(const Timeseries& ts, const std::string& metric,
                                   double percentile, std::size_t w) {
  if (const auto* h = ts.find_histogram(metric); h != nullptr) {
    const WindowHistogram wh =
        w < h->windows.size() ? h->windows[w] : WindowHistogram{};
    if (wh.count == 0) return std::nullopt;
    return static_cast<double>(pick_percentile(wh, percentile));
  }
  if (const auto* c = ts.find_counter(metric); c != nullptr) {
    const double delta =
        w < c->deltas.size() ? static_cast<double>(c->deltas[w]) : 0.0;
    return delta / ts.windows()[w].length().seconds();
  }
  return std::nullopt;
}

bool metric_is_rate(const Timeseries& ts, const std::string& metric) {
  return ts.find_histogram(metric) == nullptr && ts.find_counter(metric) != nullptr;
}

SloRuleResult evaluate_rule(const Timeseries& ts, const SloRule& rule,
                            TimePoint until) {
  SloRuleResult r;
  r.rule = rule;
  const auto& windows = ts.windows();
  std::size_t run = 0;
  for (std::size_t w = 0; w < windows.size(); ++w) {
    if (windows[w].end > until) break;
    const auto v = window_value(ts, rule.metric, rule.percentile, w);
    if (!v.has_value()) {
      run = 0;
      continue;
    }
    ++r.windows_evaluated;
    const bool breach = rule.kind == SloRule::Kind::kLatencyCeiling
                            ? *v > rule.threshold
                            : *v < rule.threshold;
    if (!breach) {
      run = 0;
      continue;
    }
    if (r.windows_breached == 0) {
      r.first_breach_ns = windows[w].end.nanos();
      r.worst_value = *v;
    } else if (rule.kind == SloRule::Kind::kLatencyCeiling) {
      r.worst_value = std::max(r.worst_value, *v);
    } else {
      r.worst_value = std::min(r.worst_value, *v);
    }
    ++r.windows_breached;
    ++run;
    if (run == rule.burn_windows) ++r.burns;
    r.longest_burn_windows = std::max<std::uint64_t>(r.longest_burn_windows, run);
  }
  return r;
}

SteadyStateResult evaluate_steady(const Timeseries& ts, const SloConfig& cfg,
                                  const FaultInstant& fault, double baseline,
                                  bool has_baseline, bool is_rate) {
  SteadyStateResult r;
  r.fault = fault;
  r.baseline = baseline;
  if (!has_baseline || cfg.steady_windows == 0) return r;

  const auto in_tolerance = [&](double v) {
    // Direction-aware: improvement over baseline is always steady.
    return is_rate ? v >= baseline * (1.0 - cfg.steady_tolerance)
                   : v <= baseline * (1.0 + cfg.steady_tolerance);
  };

  const auto& windows = ts.windows();
  std::size_t run = 0;
  std::size_t run_start = 0;
  double run_start_value = 0.0;
  for (std::size_t w = 0; w < windows.size(); ++w) {
    if (windows[w].end > cfg.evaluate_until) break;
    if (windows[w].start < fault.at) continue;  // straddling windows can't settle
    const auto v = window_value(ts, cfg.steady_metric, cfg.steady_percentile, w);
    if (!v.has_value() || !in_tolerance(*v)) {
      run = 0;
      continue;
    }
    if (run == 0) {
      run_start = w;
      run_start_value = *v;
    }
    ++run;
    if (run == cfg.steady_windows) {
      r.reached = true;
      r.settle_window = run_start;
      r.settled_value = run_start_value;
      r.time_to_steady = windows[w].end - fault.at;
      return r;
    }
  }
  return r;
}

std::string node_str(NodeId id) { return id.valid() ? id.to_string() : "-"; }

const char* kind_name(SloRule::Kind k) {
  return k == SloRule::Kind::kLatencyCeiling ? "latency_ceiling" : "rate_floor";
}

}  // namespace

std::uint64_t SloReport::total_breaches() const {
  std::uint64_t n = 0;
  for (const auto& r : rules) n += r.windows_breached;
  return n;
}

std::uint64_t SloReport::total_burns() const {
  std::uint64_t n = 0;
  for (const auto& r : rules) n += r.burns;
  return n;
}

bool SloReport::all_settled() const {
  return std::all_of(steady.begin(), steady.end(),
                     [](const SteadyStateResult& s) { return s.reached; });
}

SloReport evaluate_slo(const Timeseries& ts, const SloConfig& config,
                       const std::vector<FaultInstant>& faults) {
  SloReport report;
  report.steady_metric = config.steady_metric;
  report.steady_tolerance = config.steady_tolerance;
  report.steady_windows = config.steady_windows;

  report.rules.reserve(config.rules.size());
  for (const SloRule& rule : config.rules) {
    report.rules.push_back(evaluate_rule(ts, rule, config.evaluate_until));
  }

  if (config.steady_metric.empty() || faults.empty()) return report;

  // Baseline: mean per-window value over windows fully before the earliest
  // fault — the clean running state every fault is measured against.
  TimePoint first_fault = TimePoint::max();
  for (const FaultInstant& f : faults) first_fault = std::min(first_fault, f.at);
  const bool is_rate = metric_is_rate(ts, config.steady_metric);
  double baseline_sum = 0.0;
  std::size_t baseline_n = 0;
  const auto& windows = ts.windows();
  for (std::size_t w = 0; w < windows.size(); ++w) {
    if (windows[w].end > first_fault || windows[w].end > config.evaluate_until) break;
    const auto v = window_value(ts, config.steady_metric, config.steady_percentile, w);
    if (!v.has_value()) continue;
    baseline_sum += *v;
    ++baseline_n;
  }
  const bool has_baseline = baseline_n > 0;
  const double baseline =
      has_baseline ? baseline_sum / static_cast<double>(baseline_n) : 0.0;

  report.steady.reserve(faults.size());
  for (const FaultInstant& f : faults) {
    report.steady.push_back(
        evaluate_steady(ts, config, f, baseline, has_baseline, is_rate));
  }
  return report;
}

void publish_slo_metrics(const SloReport& report, MetricsRegistry& registry) {
  for (const auto& r : report.rules) {
    registry.counter("slo.rule." + r.rule.name + ".windows_breached")
        .inc(r.windows_breached);
    registry.counter("slo.rule." + r.rule.name + ".burns").inc(r.burns);
  }
  if (report.steady.empty()) return;
  auto& reached = registry.counter("slo.steady.reached");
  auto& unreached = registry.counter("slo.steady.unreached");
  auto& tts = registry.histogram("slo.steady.time_to_steady_ns");
  for (const auto& s : report.steady) {
    if (s.reached) {
      reached.inc();
      tts.record(s.time_to_steady);
    } else {
      unreached.inc();
    }
  }
}

void append_slo_json(std::string& out, const SloReport& report) {
  appendf(out, "{\"steady_metric\":\"%s\",\"steady_tolerance\":%.6g",
          json_escape(report.steady_metric).c_str(), report.steady_tolerance);
  appendf(out, ",\"steady_windows\":%llu",
          static_cast<unsigned long long>(report.steady_windows));
  out += ",\"rules\":[";
  bool first = true;
  for (const auto& r : report.rules) {
    if (!first) out += ',';
    first = false;
    appendf(out, "{\"name\":\"%s\",\"metric\":\"%s\",\"kind\":\"%s\"",
            json_escape(r.rule.name).c_str(), json_escape(r.rule.metric).c_str(),
            kind_name(r.rule.kind));
    appendf(out, ",\"percentile\":%.0f,\"threshold\":%.6g,\"burn_windows\":%llu",
            r.rule.percentile, r.rule.threshold,
            static_cast<unsigned long long>(r.rule.burn_windows));
    appendf(out, ",\"windows_evaluated\":%llu,\"windows_breached\":%llu",
            static_cast<unsigned long long>(r.windows_evaluated),
            static_cast<unsigned long long>(r.windows_breached));
    appendf(out, ",\"burns\":%llu,\"longest_burn_windows\":%llu",
            static_cast<unsigned long long>(r.burns),
            static_cast<unsigned long long>(r.longest_burn_windows));
    appendf(out, ",\"first_breach_ns\":%lld,\"worst_value\":%.6g}",
            static_cast<long long>(r.first_breach_ns), r.worst_value);
  }
  out += "],\"steady_state\":[";
  first = true;
  for (const auto& s : report.steady) {
    if (!first) out += ',';
    first = false;
    appendf(out, "{\"fault_ns\":%lld,\"fault_kind\":\"%s\",\"node\":\"%s\"",
            static_cast<long long>(s.fault.at.nanos()),
            json_escape(s.fault.kind).c_str(), node_str(s.fault.node).c_str());
    appendf(out, ",\"reached\":%s,\"time_to_steady_ns\":%lld",
            s.reached ? "true" : "false",
            static_cast<long long>(s.time_to_steady.nanos()));
    appendf(out, ",\"settle_window\":%llu,\"baseline\":%.6g,\"settled_value\":%.6g}",
            static_cast<unsigned long long>(s.settle_window), s.baseline,
            s.settled_value);
  }
  out += "]}";
}

}  // namespace domino::obs
