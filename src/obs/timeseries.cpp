#include "obs/timeseries.h"

#include "obs/json.h"

namespace domino::obs {
namespace {

// Bring a series that first appeared at window `upto` in line with the
// window count: leading windows it never saw become zero entries.
template <typename Vec>
void pad_to(Vec& v, std::size_t upto) {
  if (v.size() < upto) v.resize(upto);
}

double ms(TimePoint t) { return static_cast<double>(t.nanos()) / 1e6; }

}  // namespace

void Timeseries::sample(const MetricsRegistry& registry, TimePoint now) {
  if (!windows_.empty() && now <= windows_.back().end) return;
  if (windows_.size() >= max_windows_) {
    ++dropped_windows_;
    return;
  }
  const TimePoint start = windows_.empty() ? TimePoint{} : windows_.back().end;
  windows_.push_back(Window{start, now});
  const std::size_t w = windows_.size() - 1;

  registry.visit([&](const std::string& name, const Counter* c, const Gauge* g,
                     const Histogram* h) {
    if (c != nullptr) {
      auto& s = counters_[name];
      pad_to(s.deltas, w);
      s.deltas.push_back(c->value() - s.prev);
      s.prev = c->value();
    } else if (g != nullptr) {
      auto& s = gauges_[name];
      pad_to(s.values, w);
      s.values.push_back(g->value());
    } else if (h != nullptr) {
      auto& s = histograms_[name];
      pad_to(s.windows, w);
      const HistogramSnapshot cur = h->snapshot();
      const HistogramDelta d(s.prev, cur);
      s.windows.push_back(WindowHistogram{d.count(), d.sum(), d.percentile(50),
                                          d.percentile(95), d.percentile(99)});
      s.prev = cur;
    }
  });
}

const Timeseries::CounterSeries* Timeseries::find_counter(std::string_view name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : &it->second;
}

const Timeseries::HistogramSeries* Timeseries::find_histogram(
    std::string_view name) const {
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

std::string timeseries_to_csv(const Timeseries& ts) {
  std::string out = "window,start_ns,end_ns,kind,name,field,value\n";
  const auto& windows = ts.windows();
  for (std::size_t w = 0; w < windows.size(); ++w) {
    const auto prefix = [&](std::string_view kind, const std::string& name,
                            const char* field) {
      appendf(out, "%llu,%lld,%lld,%.*s,%s,%s,", static_cast<unsigned long long>(w),
              static_cast<long long>(windows[w].start.nanos()),
              static_cast<long long>(windows[w].end.nanos()),
              static_cast<int>(kind.size()), kind.data(), name.c_str(), field);
    };
    for (const auto& [name, s] : ts.counters()) {
      prefix("counter", name, "delta");
      append_u64(out, w < s.deltas.size() ? s.deltas[w] : 0);
      out += '\n';
    }
    for (const auto& [name, s] : ts.gauges()) {
      prefix("gauge", name, "value");
      append_i64(out, w < s.values.size() ? s.values[w] : 0);
      out += '\n';
    }
    for (const auto& [name, s] : ts.histograms()) {
      const WindowHistogram wh =
          w < s.windows.size() ? s.windows[w] : WindowHistogram{};
      prefix("histogram", name, "count");
      append_u64(out, wh.count);
      out += '\n';
      if (wh.count == 0) continue;
      prefix("histogram", name, "mean");
      appendf(out, "%.3f\n", wh.mean());
      prefix("histogram", name, "p50");
      append_i64(out, wh.p50);
      out += '\n';
      prefix("histogram", name, "p95");
      append_i64(out, wh.p95);
      out += '\n';
      prefix("histogram", name, "p99");
      append_i64(out, wh.p99);
      out += '\n';
    }
  }
  return out;
}

void append_timeseries_json(std::string& out, const Timeseries& ts) {
  appendf(out, "{\"windows\":%llu,\"dropped_windows\":%llu",
          static_cast<unsigned long long>(ts.window_count()),
          static_cast<unsigned long long>(ts.dropped_windows()));
  out += ",\"window_end_ms\":[";
  bool first = true;
  for (const auto& w : ts.windows()) {
    if (!first) out += ',';
    first = false;
    appendf(out, "%.3f", ms(w.end));
  }
  out += "],\"metrics\":{";
  first = true;
  const std::size_t n = ts.window_count();
  const auto key = [&](const std::string& name, const char* kind) {
    if (!first) out += ',';
    first = false;
    appendf(out, "\"%s\":{\"kind\":\"%s\"", json_escape(name).c_str(), kind);
  };
  const auto array_u64 = [&](const char* field, const auto& vec, auto get) {
    appendf(out, ",\"%s\":[", field);
    for (std::size_t w = 0; w < n; ++w) {
      if (w != 0) out += ',';
      if (w < vec.size()) {
        get(vec[w]);
      } else {
        out += '0';
      }
    }
    out += ']';
  };
  for (const auto& [name, s] : ts.counters()) {
    key(name, "counter");
    array_u64("delta", s.deltas, [&](std::uint64_t v) { append_u64(out, v); });
    out += '}';
  }
  for (const auto& [name, s] : ts.gauges()) {
    key(name, "gauge");
    array_u64("value", s.values, [&](std::int64_t v) { append_i64(out, v); });
    out += '}';
  }
  for (const auto& [name, s] : ts.histograms()) {
    key(name, "histogram");
    array_u64("count", s.windows, [&](const WindowHistogram& wh) {
      append_u64(out, wh.count);
    });
    array_u64("mean", s.windows, [&](const WindowHistogram& wh) {
      appendf(out, "%.3f", wh.mean());
    });
    array_u64("p50", s.windows, [&](const WindowHistogram& wh) {
      append_i64(out, wh.p50);
    });
    array_u64("p95", s.windows, [&](const WindowHistogram& wh) {
      append_i64(out, wh.p95);
    });
    array_u64("p99", s.windows, [&](const WindowHistogram& wh) {
      append_i64(out, wh.p99);
    });
    out += '}';
  }
  out += "}}";
}

}  // namespace domino::obs
