#include "wan/empirical.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "net/network.h"

namespace domino::wan {

EmpiricalLatency::EmpiricalLatency(
    std::shared_ptr<const std::vector<TraceSample>> samples, EmpiricalConfig config)
    : samples_(std::move(samples)), cfg_(config) {
  if (samples_ == nullptr || samples_->empty()) {
    throw std::invalid_argument("EmpiricalLatency: empty trace link");
  }
  if (cfg_.window <= Duration::zero()) {
    throw std::invalid_argument("EmpiricalLatency: non-positive window");
  }
  first_ = samples_->front().at;
  last_ = samples_->back().at;
}

TimePoint EmpiricalLatency::trace_time(TimePoint now) const {
  if (now <= last_) return now < first_ ? first_ : now;
  const std::int64_t span = (last_ - first_).nanos();
  if (cfg_.end_policy == TraceEndPolicy::kClamp || span == 0) return last_;
  return first_ + Duration{(now - first_).nanos() % span};
}

void EmpiricalLatency::refresh(TimePoint trace_now) const {
  const std::vector<TraceSample>& s = *samples_;
  // hi: one past the last sample with at <= trace_now.
  std::size_t hi = static_cast<std::size_t>(
      std::upper_bound(s.begin(), s.end(), trace_now,
                       [](TimePoint t, const TraceSample& a) { return t < a.at; }) -
      s.begin());
  // lo: first sample inside the window (t - window, t].
  std::size_t lo = static_cast<std::size_t>(
      std::lower_bound(s.begin(), s.end(), trace_now - cfg_.window,
                       [](const TraceSample& a, TimePoint t) { return a.at <= t; }) -
      s.begin());
  if (lo >= hi) {
    // Empty window (before the first sample, or a probing gap wider than
    // the window): fall back to the single nearest sample.
    if (hi == 0) hi = 1;
    lo = hi - 1;
  }
  if (cache_valid_ && lo == win_lo_ && hi == win_hi_) return;
  win_lo_ = lo;
  win_hi_ = hi;
  sorted_.clear();
  sorted_.reserve(hi - lo);
  for (std::size_t i = lo; i < hi; ++i) sorted_.push_back(s[i].owd);
  std::sort(sorted_.begin(), sorted_.end());
  cache_valid_ = true;
}

Duration EmpiricalLatency::sample(TimePoint now, Rng& rng) {
  refresh(trace_time(now));
  // Inverse transform with linear interpolation between order statistics:
  // deterministic given the draw, continuous in u, exact at the extremes.
  const double u = rng.next_double();
  const std::size_t n = sorted_.size();
  if (n == 1) return sorted_.front();
  const double pos = u * static_cast<double>(n - 1);
  const std::size_t i = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(i);
  const std::int64_t a = sorted_[i].nanos();
  const std::int64_t b = sorted_[i + 1].nanos();
  return Duration{a + static_cast<std::int64_t>(
                          std::llround(static_cast<double>(b - a) * frac))};
}

Duration EmpiricalLatency::base(TimePoint now) const {
  refresh(trace_time(now));
  return sorted_.front();
}

std::size_t apply_trace(const DelayTrace& trace, net::Network& network,
                        const EmpiricalConfig& config) {
  const net::Topology& topo = network.topology();
  std::size_t replaced = 0;
  for (std::size_t i = 0; i < trace.link_count(); ++i) {
    const DelayTrace::LinkKey& key = trace.link(i);
    const std::size_t from = topo.index_of(key.from);
    const std::size_t to = topo.index_of(key.to);
    network.set_link_model(from, to,
                           std::make_unique<EmpiricalLatency>(trace.samples_at(i), config));
    ++replaced;
  }
  return replaced;
}

}  // namespace domino::wan
