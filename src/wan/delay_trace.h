// Empirical WAN delay traces: timestamped per-directed-link one-way-delay
// samples, the data product the paper builds everything on (Sections 3 and
// 7 measure 24-hour OWD/RTT traces between real datacenters and show their
// short-window stability).
//
// A DelayTrace holds one or more directed links, each a time-ordered vector
// of (timestamp, OWD) samples, and round-trips through a simple CSV:
//
//   # optional comment lines
//   time_ms,from,to,owd_ms
//   0.000000,VA,WA,33.512000
//   10.000000,VA,WA,33.498000
//   ...
//
// Link endpoints are datacenter names (net::Topology names them the same
// way), times are milliseconds since the trace epoch with nanosecond
// resolution, and delays are milliseconds. Parsing validates everything the
// replay layer depends on — per-link timestamp monotonicity, finite
// non-negative delays, a sane delay ceiling — and guards allocations
// against hostile row/link counts (mirroring the wire-layer length-prefix
// guards in recovery/messages.h).
#pragma once

#include <cstddef>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "common/time.h"

namespace domino::wan {

/// One OWD observation on a directed link.
struct TraceSample {
  TimePoint at;  // when the probed message was sent, trace-relative
  Duration owd;  // measured one-way delay

  friend bool operator==(const TraceSample&, const TraceSample&) = default;
};

/// Ingestion failure: malformed row, constraint violation, or an input that
/// would force an unreasonable allocation. The message carries the 1-based
/// line number when the failure is tied to one.
class TraceError : public std::runtime_error {
 public:
  explicit TraceError(const std::string& what) : std::runtime_error(what) {}
};

/// Hard caps applied while parsing untrusted trace files. The defaults
/// admit a 24 h trace probed every 10 ms on a handful of links while
/// rejecting allocation bombs (a forged row count cannot make us reserve
/// unbounded memory: rows are appended one by one and counted).
struct TraceLimits {
  std::size_t max_rows = 16'000'000;   // total samples across all links
  std::size_t max_links = 4'096;       // distinct directed pairs
  std::size_t max_name_length = 64;    // datacenter name bytes
  Duration max_owd = seconds(60);      // reject absurd delays
  Duration max_time = seconds(200'000);  // > 2 days of trace
};

/// An empirical delay trace over directed links. Samples per link are kept
/// in insertion order and must be added with non-decreasing timestamps;
/// links iterate in first-appearance order so every export is
/// deterministic.
class DelayTrace {
 public:
  struct LinkKey {
    std::string from;
    std::string to;

    friend bool operator==(const LinkKey&, const LinkKey&) = default;
  };

  DelayTrace() = default;
  explicit DelayTrace(TraceLimits limits) : limits_(limits) {}

  /// Append one sample; creates the link on first use. Throws TraceError on
  /// a non-monotone timestamp, a non-finite/negative/oversized delay, or a
  /// breached limit.
  void add(std::string_view from, std::string_view to, TimePoint at, Duration owd);

  /// Move a whole pre-built sample vector in as one link (generator path).
  /// The samples must already be time-ordered and valid; this re-checks.
  void add_link(std::string_view from, std::string_view to,
                std::vector<TraceSample> samples);

  [[nodiscard]] std::size_t link_count() const { return links_.size(); }
  [[nodiscard]] std::size_t total_samples() const { return total_samples_; }
  [[nodiscard]] const LinkKey& link(std::size_t i) const { return links_[i].key; }

  /// Samples of one directed link, shared so replay models can hold them
  /// without copying; null when the link is absent. The vector must not be
  /// mutated after models are constructed over it.
  [[nodiscard]] std::shared_ptr<const std::vector<TraceSample>> samples(
      std::string_view from, std::string_view to) const;
  [[nodiscard]] std::shared_ptr<const std::vector<TraceSample>> samples_at(
      std::size_t i) const {
    return links_[i].samples;
  }

  /// Last sample timestamp across all links (epoch for an empty trace).
  [[nodiscard]] TimePoint end_time() const { return end_time_; }

  /// Parse CSV text (format above). Rejects missing/unknown header, short
  /// or overlong rows, unparsable numbers, NaN/negative/oversized delays,
  /// per-link non-monotone timestamps, and row/link counts past `limits`.
  [[nodiscard]] static DelayTrace parse_csv(std::string_view text,
                                            const TraceLimits& limits = {});

  /// Load from one CSV file, or — when `path` names a directory — from
  /// every `*.csv` inside it, in sorted filename order (per-link samples
  /// must stay monotone across files).
  [[nodiscard]] static DelayTrace load(const std::string& path,
                                       const TraceLimits& limits = {});

  /// Deterministic CSV serialization; parse_csv(to_csv()) round-trips
  /// exactly (times and delays are printed at nanosecond resolution).
  [[nodiscard]] std::string to_csv() const;

 private:
  struct Link {
    LinkKey key;
    std::shared_ptr<std::vector<TraceSample>> samples;
  };

  Link& link_slot(std::string_view from, std::string_view to);

  TraceLimits limits_;
  std::vector<Link> links_;
  std::size_t total_samples_ = 0;
  TimePoint end_time_ = TimePoint::epoch();
};

}  // namespace domino::wan
