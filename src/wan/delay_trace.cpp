#include "wan/delay_trace.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace domino::wan {
namespace {

[[noreturn]] void fail(std::size_t line, const std::string& what) {
  throw TraceError("delay trace, line " + std::to_string(line) + ": " + what);
}

/// Millisecond value -> nanoseconds, with the finite/range checks every
/// numeric trace field needs.
std::int64_t parse_ms_field(std::string_view field, std::size_t line, const char* name) {
  if (field.empty()) fail(line, std::string(name) + " is empty");
  char* end = nullptr;
  const std::string buf(field);
  const double ms = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size()) fail(line, std::string(name) + " is not a number");
  if (!std::isfinite(ms)) fail(line, std::string(name) + " is not finite");
  // llround keeps the CSV<->ns round trip exact at the printed resolution.
  const double ns = ms * 1e6;
  if (ns < -9.2e18 || ns > 9.2e18) fail(line, std::string(name) + " out of range");
  return std::llround(ns);
}

void append_ms(std::string& out, std::int64_t ns) {
  char buf[48];
  const std::int64_t ms = ns / 1'000'000;
  std::int64_t frac = ns % 1'000'000;
  if (frac < 0) frac = -frac;
  std::snprintf(buf, sizeof(buf), "%lld.%06lld", static_cast<long long>(ms),
                static_cast<long long>(frac));
  out += buf;
}

}  // namespace

DelayTrace::Link& DelayTrace::link_slot(std::string_view from, std::string_view to) {
  for (Link& l : links_) {
    if (l.key.from == from && l.key.to == to) return l;
  }
  if (from.empty() || to.empty()) throw TraceError("delay trace: empty endpoint name");
  if (from.size() > limits_.max_name_length || to.size() > limits_.max_name_length) {
    throw TraceError("delay trace: endpoint name longer than " +
                     std::to_string(limits_.max_name_length) + " bytes");
  }
  if (links_.size() >= limits_.max_links) {
    throw TraceError("delay trace: more than " + std::to_string(limits_.max_links) +
                     " directed links");
  }
  links_.push_back(Link{LinkKey{std::string(from), std::string(to)},
                        std::make_shared<std::vector<TraceSample>>()});
  return links_.back();
}

void DelayTrace::add(std::string_view from, std::string_view to, TimePoint at,
                     Duration owd) {
  if (total_samples_ >= limits_.max_rows) {
    throw TraceError("delay trace: more than " + std::to_string(limits_.max_rows) +
                     " samples");
  }
  if (owd < Duration::zero()) throw TraceError("delay trace: negative delay");
  if (owd > limits_.max_owd) {
    throw TraceError("delay trace: delay above the " +
                     std::to_string(limits_.max_owd.nanos() / 1'000'000) + " ms ceiling");
  }
  if (at < TimePoint::epoch() || at > TimePoint::epoch() + limits_.max_time) {
    throw TraceError("delay trace: timestamp outside [0, max_time]");
  }
  Link& l = link_slot(from, to);
  if (!l.samples->empty() && at < l.samples->back().at) {
    throw TraceError("delay trace: non-monotone timestamps on link " + l.key.from +
                     "->" + l.key.to);
  }
  l.samples->push_back(TraceSample{at, owd});
  ++total_samples_;
  if (at > end_time_) end_time_ = at;
}

void DelayTrace::add_link(std::string_view from, std::string_view to,
                          std::vector<TraceSample> samples) {
  for (const TraceSample& s : samples) add(from, to, s.at, s.owd);
}

std::shared_ptr<const std::vector<TraceSample>> DelayTrace::samples(
    std::string_view from, std::string_view to) const {
  for (const Link& l : links_) {
    if (l.key.from == from && l.key.to == to) return l.samples;
  }
  return nullptr;
}

DelayTrace DelayTrace::parse_csv(std::string_view text, const TraceLimits& limits) {
  DelayTrace trace(limits);
  std::size_t line_no = 0;
  bool saw_header = false;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = text.find('\n', pos);
    std::string_view line = text.substr(
        pos, eol == std::string_view::npos ? text.size() - pos : eol - pos);
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    if (line.empty() || line.front() == '#') continue;
    if (!saw_header) {
      if (line != "time_ms,from,to,owd_ms") {
        fail(line_no, "expected header \"time_ms,from,to,owd_ms\"");
      }
      saw_header = true;
      continue;
    }
    // Split into exactly four fields; a truncated or overlong row is a
    // parse error, not a silently-misread sample.
    std::string_view fields[4];
    std::size_t start = 0;
    std::size_t field = 0;
    for (std::size_t i = 0; i <= line.size(); ++i) {
      if (i == line.size() || line[i] == ',') {
        if (field >= 4) fail(line_no, "too many fields (want 4)");
        fields[field++] = line.substr(start, i - start);
        start = i + 1;
      }
    }
    if (field != 4) fail(line_no, "truncated row (want 4 fields, got " +
                                      std::to_string(field) + ")");
    const std::int64_t at_ns = parse_ms_field(fields[0], line_no, "time_ms");
    const std::int64_t owd_ns = parse_ms_field(fields[3], line_no, "owd_ms");
    try {
      trace.add(fields[1], fields[2], TimePoint{at_ns}, Duration{owd_ns});
    } catch (const TraceError& e) {
      fail(line_no, e.what());
    }
  }
  if (!saw_header) throw TraceError("delay trace: empty input (no header)");
  if (trace.total_samples() == 0) throw TraceError("delay trace: no samples");
  return trace;
}

DelayTrace DelayTrace::load(const std::string& path, const TraceLimits& limits) {
  namespace fs = std::filesystem;
  std::vector<std::string> files;
  std::error_code ec;
  if (fs::is_directory(path, ec)) {
    for (const auto& entry : fs::directory_iterator(path)) {
      if (entry.path().extension() == ".csv") files.push_back(entry.path().string());
    }
    std::sort(files.begin(), files.end());
    if (files.empty()) throw TraceError("delay trace: no *.csv files in " + path);
  } else {
    files.push_back(path);
  }
  DelayTrace trace(limits);
  for (const std::string& file : files) {
    std::ifstream in(file, std::ios::binary);
    if (!in) throw TraceError("delay trace: cannot open " + file);
    std::ostringstream buf;
    buf << in.rdbuf();
    const DelayTrace part = parse_csv(buf.str(), limits);
    for (std::size_t i = 0; i < part.link_count(); ++i) {
      const LinkKey& key = part.link(i);
      for (const TraceSample& s : *part.samples_at(i)) {
        trace.add(key.from, key.to, s.at, s.owd);
      }
    }
  }
  return trace;
}

std::string DelayTrace::to_csv() const {
  std::string out = "time_ms,from,to,owd_ms\n";
  for (const Link& l : links_) {
    for (const TraceSample& s : *l.samples) {
      append_ms(out, s.at.nanos());
      out += ',';
      out += l.key.from;
      out += ',';
      out += l.key.to;
      out += ',';
      append_ms(out, s.owd.nanos());
      out += '\n';
    }
  }
  return out;
}

}  // namespace domino::wan
