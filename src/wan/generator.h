// Deterministic non-stationary delay-trace generation.
//
// The paper's core stability claim (Sections 3, 7: short-window percentile
// estimates predict arrival times because WAN delay distributions move
// slowly) holds on its measured traces — this generator produces traces
// where the claim holds *and* traces where it deliberately breaks, so the
// prober/estimator/calibration stack can be scored against ground truth it
// was never tuned on. Regimes compose:
//
//   - stable floor + log-normal jitter (the Section 3 baseline),
//   - diurnal drift: slow sinusoidal wander of the base delay,
//   - congestion epochs: seeded busy periods (exponential gaps/lengths)
//     adding queueing delay and widening jitter,
//   - route-change steps: instantaneous base-delay jumps (Figure 12's
//     traffic-control idiom),
//   - heavy-tail spikes: rare exponential spikes with an optional extra
//     tail multiplier.
//
// Everything is derived from the seed via forked RNG streams; one config
// always generates byte-identical samples.
#pragma once

#include <string_view>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/time.h"
#include "wan/delay_trace.h"

namespace domino::wan {

struct GeneratorConfig {
  Duration base = milliseconds(33);            // propagation floor (OWD)
  Duration sample_interval = milliseconds(10);
  Duration duration = seconds(60);
  std::uint64_t seed = 1;

  // Short-timescale jitter (log-normal, the paper's observed shape).
  double jitter_mu_ms = -2.0;
  double jitter_sigma = 0.8;

  // Diurnal drift: base += amplitude * sin(2*pi * t / period).
  Duration diurnal_amplitude = Duration::zero();
  Duration diurnal_period = seconds(600);

  // Congestion epochs: busy periods arrive with exponential inter-epoch
  // gaps of mean `congestion_gap` and last exponential `congestion_len`;
  // during an epoch every sample gains `congestion_extra` queueing delay
  // and jitter sigma is multiplied by `congestion_sigma_factor`.
  // congestion_gap == zero disables.
  Duration congestion_gap = Duration::zero();
  Duration congestion_len = seconds(2);
  Duration congestion_extra = milliseconds(5);
  double congestion_sigma_factor = 2.0;

  // Route changes: (at, new base OWD) steps, applied in order; empty keeps
  // `base` throughout. Must be sorted by time.
  std::vector<std::pair<Duration, Duration>> route_steps;

  // Heavy-tail spikes: with probability spike_prob a sample gains an
  // exponential spike of mean spike_mean; with probability heavy_tail_prob
  // (conditional on spiking) the spike is further multiplied by
  // heavy_tail_factor — the occasional hundreds-of-ms excursion real
  // traces show.
  double spike_prob = 0.0005;
  Duration spike_mean = milliseconds(8);
  double heavy_tail_prob = 0.0;
  double heavy_tail_factor = 10.0;
};

class TraceGenerator {
 public:
  explicit TraceGenerator(GeneratorConfig config);

  /// Generate this link's samples; same config -> byte-identical output.
  [[nodiscard]] std::vector<TraceSample> generate() const;

  /// Generate and append under (from -> to); throws TraceError if the
  /// trace's limits are breached.
  void generate_into(DelayTrace& trace, std::string_view from, std::string_view to) const;

  [[nodiscard]] const GeneratorConfig& config() const { return cfg_; }

 private:
  GeneratorConfig cfg_;
};

/// Convenience presets used by the benches, fixtures and tests.

/// A Section 3-style stationary link: stable floor, small jitter, rare
/// spikes — the regime where the paper's prediction claim holds.
[[nodiscard]] GeneratorConfig stationary_config(Duration base_owd, std::uint64_t seed);

/// A deliberately non-stationary link: diurnal drift, congestion epochs,
/// route-change steps and heavy-tail spikes — the regime where it breaks.
[[nodiscard]] GeneratorConfig drifting_config(Duration base_owd, std::uint64_t seed);

}  // namespace domino::wan
