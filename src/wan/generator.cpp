#include "wan/generator.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace domino::wan {
namespace {

/// Precomputed [start, end) congestion epochs over the trace duration.
std::vector<std::pair<TimePoint, TimePoint>> congestion_epochs(const GeneratorConfig& c,
                                                               Rng& rng) {
  std::vector<std::pair<TimePoint, TimePoint>> epochs;
  if (c.congestion_gap <= Duration::zero()) return epochs;
  const TimePoint end = TimePoint::epoch() + c.duration;
  TimePoint t = TimePoint::epoch();
  while (true) {
    t += Duration{static_cast<std::int64_t>(
        rng.exponential(static_cast<double>(c.congestion_gap.nanos())))};
    if (t >= end) break;
    const Duration len{static_cast<std::int64_t>(
        rng.exponential(static_cast<double>(c.congestion_len.nanos())))};
    epochs.emplace_back(t, t + len);
    t += len;
  }
  return epochs;
}

}  // namespace

TraceGenerator::TraceGenerator(GeneratorConfig config) : cfg_(std::move(config)) {
  if (cfg_.sample_interval <= Duration::zero()) {
    throw std::invalid_argument("TraceGenerator: non-positive sample interval");
  }
  if (cfg_.duration <= Duration::zero()) {
    throw std::invalid_argument("TraceGenerator: non-positive duration");
  }
  if (!std::is_sorted(cfg_.route_steps.begin(), cfg_.route_steps.end(),
                      [](const auto& a, const auto& b) { return a.first < b.first; })) {
    throw std::invalid_argument("TraceGenerator: route steps not sorted by time");
  }
}

std::vector<TraceSample> TraceGenerator::generate() const {
  Rng seed_rng(cfg_.seed);
  Rng epoch_rng = seed_rng.fork();   // epoch layout is independent of the
  Rng sample_rng = seed_rng.fork();  // per-sample draws (stable composition)
  const auto epochs = congestion_epochs(cfg_, epoch_rng);

  std::vector<TraceSample> out;
  out.reserve(static_cast<std::size_t>(cfg_.duration.nanos() /
                                       cfg_.sample_interval.nanos()) +
              1);
  std::size_t epoch_idx = 0;
  std::size_t step_idx = 0;
  Duration route_base = cfg_.base;
  const TimePoint end = TimePoint::epoch() + cfg_.duration;
  for (TimePoint t = TimePoint::epoch(); t < end; t += cfg_.sample_interval) {
    // Route-change steps: the latest step at or before t wins.
    while (step_idx < cfg_.route_steps.size() &&
           TimePoint::epoch() + cfg_.route_steps[step_idx].first <= t) {
      route_base = cfg_.route_steps[step_idx].second;
      ++step_idx;
    }
    Duration owd = route_base;
    if (cfg_.diurnal_amplitude > Duration::zero()) {
      const double phase = 2.0 * M_PI * t.seconds() /
                           std::max(1.0, cfg_.diurnal_period.seconds());
      owd += scale(cfg_.diurnal_amplitude, std::sin(phase));
    }
    while (epoch_idx < epochs.size() && epochs[epoch_idx].second <= t) ++epoch_idx;
    const bool congested =
        epoch_idx < epochs.size() && epochs[epoch_idx].first <= t && t < epochs[epoch_idx].second;
    double sigma = cfg_.jitter_sigma;
    if (congested) {
      owd += cfg_.congestion_extra;
      sigma *= cfg_.congestion_sigma_factor;
    }
    owd += milliseconds_d(sample_rng.lognormal(cfg_.jitter_mu_ms, sigma));
    if (cfg_.spike_prob > 0 && sample_rng.chance(cfg_.spike_prob)) {
      Duration spike{static_cast<std::int64_t>(
          sample_rng.exponential(static_cast<double>(cfg_.spike_mean.nanos())))};
      if (cfg_.heavy_tail_prob > 0 && sample_rng.chance(cfg_.heavy_tail_prob)) {
        spike = scale(spike, cfg_.heavy_tail_factor);
      }
      owd += spike;
    }
    if (owd < Duration::zero()) owd = Duration::zero();
    out.push_back(TraceSample{t, owd});
  }
  return out;
}

void TraceGenerator::generate_into(DelayTrace& trace, std::string_view from,
                                   std::string_view to) const {
  trace.add_link(from, to, generate());
}

GeneratorConfig stationary_config(Duration base_owd, std::uint64_t seed) {
  GeneratorConfig c;
  c.base = base_owd;
  c.seed = seed;
  // A touch of slow wander keeps the trace from being suspiciously flat
  // without moving percentiles faster than the estimator window tracks.
  c.diurnal_amplitude = milliseconds_d(0.3);
  c.diurnal_period = seconds(240);
  return c;
}

GeneratorConfig drifting_config(Duration base_owd, std::uint64_t seed) {
  GeneratorConfig c;
  c.base = base_owd;
  c.seed = seed;
  c.diurnal_amplitude = milliseconds(3);
  c.diurnal_period = seconds(40);
  c.congestion_gap = seconds(6);
  c.congestion_len = seconds(2);
  c.congestion_extra = milliseconds(6);
  c.congestion_sigma_factor = 2.5;
  c.spike_prob = 0.002;
  c.heavy_tail_prob = 0.1;
  // Two route changes per minute of trace: up by ~25%, back down.
  const std::int64_t secs = std::max<std::int64_t>(1, c.duration.nanos() / 1'000'000'000);
  for (std::int64_t s = 10; s + 10 <= secs; s += 20) {
    c.route_steps.emplace_back(seconds(s), scale(base_owd, 1.25));
    c.route_steps.emplace_back(seconds(s + 10), base_owd);
  }
  return c;
}

}  // namespace domino::wan
