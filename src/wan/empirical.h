// Trace-replay latency model: a net::LatencyModel that re-samples a
// measured (or generated) delay trace as a time-varying empirical
// distribution.
//
// At simulation time t the model looks at the trace samples inside the
// sliding window (t - window, t], sorts them, and draws delays by inverse
// transform sampling with linear interpolation between order statistics —
// one uniform draw from the link's existing RNG stream per message, so a
// same-seed run replays byte-identically. base(t) is the windowed minimum,
// which keeps the Section 4 geometry analysis and every base()-dependent
// fault deformation meaningful on replayed links.
//
// Replay past the trace end follows TraceEndPolicy: kWrap loops trace time
// (a 60 s trace drives an arbitrarily long run, repeating its regimes),
// kClamp freezes the final window. Before the first sample the first
// sample's delay is used.
#pragma once

#include <memory>
#include <vector>

#include "net/latency_model.h"
#include "wan/delay_trace.h"

namespace domino::net {
class Network;
}  // namespace domino::net

namespace domino::wan {

enum class TraceEndPolicy {
  kWrap,   // loop trace time modulo the trace span
  kClamp,  // keep replaying the final window forever
};

struct EmpiricalConfig {
  /// Sliding-window width the empirical distribution is drawn from; the
  /// paper's measurement-window scale (Section 3 uses 0.1 s - 1 s).
  Duration window = seconds(1);
  TraceEndPolicy end_policy = TraceEndPolicy::kWrap;
};

class EmpiricalLatency final : public net::LatencyModel {
 public:
  /// `samples` must be non-empty and time-ordered (DelayTrace guarantees
  /// both for its links) and must outlive the model unmutated.
  EmpiricalLatency(std::shared_ptr<const std::vector<TraceSample>> samples,
                   EmpiricalConfig config);

  Duration sample(TimePoint now, Rng& rng) override;
  [[nodiscard]] Duration base(TimePoint now) const override;

  /// Trace-relative time the model replays at `now` (wrap/clamp applied);
  /// exposed for tests.
  [[nodiscard]] TimePoint trace_time(TimePoint now) const;

 private:
  /// Rebuild the cached sorted window when [lo, hi) moved. The window
  /// advances slowly relative to message sends, so the sort amortizes to
  /// near-zero per sample.
  void refresh(TimePoint trace_now) const;

  std::shared_ptr<const std::vector<TraceSample>> samples_;
  EmpiricalConfig cfg_;
  TimePoint first_;  // samples_->front().at
  TimePoint last_;   // samples_->back().at

  mutable std::size_t win_lo_ = 0;
  mutable std::size_t win_hi_ = 0;  // half-open [lo, hi)
  mutable std::vector<Duration> sorted_;
  mutable bool cache_valid_ = false;
};

/// Replace every directed link named in `trace` with an EmpiricalLatency
/// replaying that link's samples; endpoints are resolved against the
/// network's topology names (unknown names throw std::out_of_range).
/// Links absent from the trace keep their current model. Returns the number
/// of links replaced.
std::size_t apply_trace(const DelayTrace& trace, net::Network& network,
                        const EmpiricalConfig& config);

}  // namespace domino::wan
