#include "common/interval_set.h"

#include <cassert>
#include <limits>

namespace domino {

void IntervalSet::insert(Key lo, Key hi) {
  assert(lo <= hi);
  // Find the first interval that could coalesce with [lo, hi]: the last
  // interval starting at or before hi+1 is a merge candidate, and so is any
  // interval starting within [lo, hi+1].
  auto it = ivals_.upper_bound(lo);
  if (it != ivals_.begin()) {
    auto prev = std::prev(it);
    // prev->first <= lo. Merge if prev reaches lo-1 or beyond.
    if (prev->second >= lo - 1 && lo != std::numeric_limits<Key>::min()) {
      lo = prev->first;
      if (prev->second > hi) hi = prev->second;
      it = ivals_.erase(prev);
    } else if (prev->second >= lo) {  // lo == min: overlap check without lo-1
      lo = prev->first;
      if (prev->second > hi) hi = prev->second;
      it = ivals_.erase(prev);
    }
  }
  // Absorb all intervals that start within [lo, hi+1].
  while (it != ivals_.end() &&
         (it->first <= hi || (hi != std::numeric_limits<Key>::max() && it->first == hi + 1))) {
    if (it->second > hi) hi = it->second;
    it = ivals_.erase(it);
  }
  ivals_.emplace(lo, hi);
}

bool IntervalSet::contains(Key point) const {
  auto it = ivals_.upper_bound(point);
  if (it == ivals_.begin()) return false;
  --it;
  return it->second >= point;
}

bool IntervalSet::covers(Key lo, Key hi) const {
  auto it = ivals_.upper_bound(lo);
  if (it == ivals_.begin()) return false;
  --it;
  return it->first <= lo && it->second >= hi;
}

IntervalSet::Key IntervalSet::first_gap(Key from) const {
  auto it = ivals_.upper_bound(from);
  if (it == ivals_.begin()) return from;
  --it;
  if (it->second < from) return from;
  if (it->second == std::numeric_limits<Key>::max()) return it->second;  // saturate
  return it->second + 1;
}

std::optional<IntervalSet::Key> IntervalSet::contiguous_end(Key from) const {
  auto it = ivals_.upper_bound(from);
  if (it == ivals_.begin()) return std::nullopt;
  --it;
  if (it->second < from) return std::nullopt;
  return it->second;
}

std::uint64_t IntervalSet::cardinality() const {
  std::uint64_t total = 0;
  for (const auto& [lo, hi] : ivals_) {
    total += static_cast<std::uint64_t>(hi - lo) + 1;
  }
  return total;
}

std::string IntervalSet::to_string() const {
  std::string out = "{";
  bool first = true;
  for (const auto& [lo, hi] : ivals_) {
    if (!first) out += ", ";
    first = false;
    out += "[" + std::to_string(lo) + "," + std::to_string(hi) + "]";
  }
  out += "}";
  return out;
}

}  // namespace domino
