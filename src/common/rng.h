// Deterministic pseudo-random number generation.
//
// The whole evaluation harness must be reproducible from a single seed, so
// we use our own xoshiro256** implementation (identical output on every
// platform, unlike the unspecified std:: distributions) together with
// explicit, portable distribution transforms.
#pragma once

#include <array>
#include <cstdint>

#include "common/time.h"

namespace domino {

/// xoshiro256** by Blackman & Vigna, seeded via splitmix64.
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  /// Uniform on [0, 2^64).
  std::uint64_t next_u64();

  /// Uniform on [0, 1).
  double next_double();

  /// Uniform on [lo, hi] inclusive; requires lo <= hi.
  std::int64_t uniform_i64(std::int64_t lo, std::int64_t hi);

  /// Uniform on [lo, hi); requires lo < hi.
  double uniform(double lo, double hi);

  /// Standard normal (Box-Muller, deterministic).
  double normal();

  /// Normal with given mean/stddev.
  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Exponential with given mean (> 0).
  double exponential(double mean);

  /// Log-normal: exp(normal(mu, sigma)).
  double lognormal(double mu, double sigma);

  /// Bernoulli trial.
  bool chance(double p) { return next_double() < p; }

  /// Fork an independent generator (for per-link RNG streams).
  Rng fork();

  /// Uniform duration on [lo, hi].
  Duration uniform_duration(Duration lo, Duration hi) {
    return Duration{uniform_i64(lo.nanos(), hi.nanos())};
  }

 private:
  std::array<std::uint64_t, 4> s_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace domino
