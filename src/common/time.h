// Time types used throughout the Domino codebase.
//
// All simulation and protocol logic operates on nanosecond-resolution
// timestamps, matching the paper's use of nanosecond-level log positions
// (Section 5.3: "DFP by default uses nanosecond-level timestamps").
//
// Two strong types are provided so that a point in time can never be
// accidentally added to another point in time:
//   - Duration:  a signed span of time.
//   - TimePoint: an instant, measured as nanoseconds since the simulation
//                epoch (or since a node's local epoch for skewed clocks).
#pragma once

#include <compare>
#include <cstdint>
#include <limits>
#include <string>

namespace domino {

/// A signed span of time with nanosecond resolution.
class Duration {
 public:
  constexpr Duration() = default;
  constexpr explicit Duration(std::int64_t nanos) : ns_(nanos) {}

  [[nodiscard]] constexpr std::int64_t nanos() const { return ns_; }
  [[nodiscard]] constexpr double micros() const { return static_cast<double>(ns_) / 1e3; }
  [[nodiscard]] constexpr double millis() const { return static_cast<double>(ns_) / 1e6; }
  [[nodiscard]] constexpr double seconds() const { return static_cast<double>(ns_) / 1e9; }

  constexpr auto operator<=>(const Duration&) const = default;

  constexpr Duration operator+(Duration o) const { return Duration{ns_ + o.ns_}; }
  constexpr Duration operator-(Duration o) const { return Duration{ns_ - o.ns_}; }
  constexpr Duration operator-() const { return Duration{-ns_}; }
  constexpr Duration operator*(std::int64_t k) const { return Duration{ns_ * k}; }
  constexpr Duration operator/(std::int64_t k) const { return Duration{ns_ / k}; }
  constexpr double operator/(Duration o) const {
    return static_cast<double>(ns_) / static_cast<double>(o.ns_);
  }
  constexpr Duration& operator+=(Duration o) {
    ns_ += o.ns_;
    return *this;
  }
  constexpr Duration& operator-=(Duration o) {
    ns_ -= o.ns_;
    return *this;
  }

  [[nodiscard]] static constexpr Duration zero() { return Duration{0}; }
  [[nodiscard]] static constexpr Duration max() {
    return Duration{std::numeric_limits<std::int64_t>::max()};
  }

  [[nodiscard]] std::string to_string() const;

 private:
  std::int64_t ns_ = 0;
};

/// Scale a duration by a floating-point factor (used by jitter models).
[[nodiscard]] constexpr Duration scale(Duration d, double factor) {
  return Duration{static_cast<std::int64_t>(static_cast<double>(d.nanos()) * factor)};
}

[[nodiscard]] constexpr Duration nanoseconds(std::int64_t v) { return Duration{v}; }
[[nodiscard]] constexpr Duration microseconds(std::int64_t v) { return Duration{v * 1'000}; }
[[nodiscard]] constexpr Duration milliseconds(std::int64_t v) { return Duration{v * 1'000'000}; }
[[nodiscard]] constexpr Duration milliseconds_d(double v) {
  return Duration{static_cast<std::int64_t>(v * 1e6)};
}
[[nodiscard]] constexpr Duration seconds(std::int64_t v) { return Duration{v * 1'000'000'000}; }
[[nodiscard]] constexpr Duration seconds_d(double v) {
  return Duration{static_cast<std::int64_t>(v * 1e9)};
}

/// An instant in time: nanoseconds since an epoch.
class TimePoint {
 public:
  constexpr TimePoint() = default;
  constexpr explicit TimePoint(std::int64_t nanos) : ns_(nanos) {}

  [[nodiscard]] constexpr std::int64_t nanos() const { return ns_; }
  [[nodiscard]] constexpr double millis() const { return static_cast<double>(ns_) / 1e6; }
  [[nodiscard]] constexpr double seconds() const { return static_cast<double>(ns_) / 1e9; }

  constexpr auto operator<=>(const TimePoint&) const = default;

  constexpr TimePoint operator+(Duration d) const { return TimePoint{ns_ + d.nanos()}; }
  constexpr TimePoint operator-(Duration d) const { return TimePoint{ns_ - d.nanos()}; }
  constexpr Duration operator-(TimePoint o) const { return Duration{ns_ - o.ns_}; }
  constexpr TimePoint& operator+=(Duration d) {
    ns_ += d.nanos();
    return *this;
  }

  [[nodiscard]] static constexpr TimePoint epoch() { return TimePoint{0}; }
  [[nodiscard]] static constexpr TimePoint max() {
    return TimePoint{std::numeric_limits<std::int64_t>::max()};
  }

  [[nodiscard]] std::string to_string() const;

 private:
  std::int64_t ns_ = 0;
};

}  // namespace domino
