#include "common/window_estimator.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace domino {

void WindowEstimator::add(TimePoint now, Duration value) {
  samples_.push_back({now, value});
  evict(now);
}

void WindowEstimator::evict(TimePoint now) {
  const TimePoint cutoff = now - window_;
  while (!samples_.empty() && samples_.front().at < cutoff) samples_.pop_front();
}

std::size_t WindowEstimator::count(TimePoint now) const {
  const TimePoint cutoff = now - window_;
  std::size_t n = 0;
  for (auto it = samples_.rbegin(); it != samples_.rend() && it->at >= cutoff; ++it) ++n;
  return n;
}

std::optional<Duration> WindowEstimator::percentile(TimePoint now, double p) const {
  const TimePoint cutoff = now - window_;
  std::vector<Duration> vals;
  vals.reserve(samples_.size());
  for (auto it = samples_.rbegin(); it != samples_.rend() && it->at >= cutoff; ++it) {
    vals.push_back(it->value);
  }
  if (vals.empty()) return std::nullopt;
  p = std::clamp(p, 0.0, 100.0);
  std::size_t rank = 0;
  if (p > 0.0) {
    rank = static_cast<std::size_t>(
        std::ceil(p / 100.0 * static_cast<double>(vals.size())));
    if (rank > 0) --rank;  // convert 1-based nearest rank to 0-based index
  }
  std::nth_element(vals.begin(), vals.begin() + static_cast<std::ptrdiff_t>(rank), vals.end());
  return vals[rank];
}

}  // namespace domino
