#include "common/time.h"

#include <cstdio>

namespace domino {

std::string Duration::to_string() const {
  char buf[48];
  if (ns_ % 1'000'000 == 0) {
    std::snprintf(buf, sizeof(buf), "%lldms", static_cast<long long>(ns_ / 1'000'000));
  } else {
    std::snprintf(buf, sizeof(buf), "%.3fms", millis());
  }
  return buf;
}

std::string TimePoint::to_string() const {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "t=%.3fms", millis());
  return buf;
}

}  // namespace domino
