// Sliding-window percentile estimator.
//
// Domino clients and replicas estimate network delays as "the n-th
// percentile value in the past time period (i.e., window size)" (paper
// Sections 3 and 5.4). This class keeps timestamped samples, evicts those
// older than the window, and answers percentile queries.
#pragma once

#include <deque>
#include <optional>

#include "common/time.h"

namespace domino {

class WindowEstimator {
 public:
  /// @param window how far back samples are retained, relative to the most
  ///               recent query/insert time.
  explicit WindowEstimator(Duration window) : window_(window) {}

  /// Record a sample observed at time `now`. Samples must be added in
  /// non-decreasing time order.
  void add(TimePoint now, Duration value);

  /// The p-th percentile (p in [0, 100]) of samples within the window
  /// ending at `now`, or nullopt if the window is empty.
  /// Uses the nearest-rank method: the ceil(p/100 * n)-th smallest sample
  /// (and the smallest sample for p = 0).
  [[nodiscard]] std::optional<Duration> percentile(TimePoint now, double p) const;

  /// Number of samples currently within the window ending at `now`.
  [[nodiscard]] std::size_t count(TimePoint now) const;

  [[nodiscard]] bool empty(TimePoint now) const { return count(now) == 0; }

  [[nodiscard]] Duration window() const { return window_; }
  void set_window(Duration w) { window_ = w; }

 private:
  void evict(TimePoint now);

  struct Sample {
    TimePoint at;
    Duration value;
  };

  Duration window_;
  mutable std::deque<Sample> samples_;
};

}  // namespace domino
