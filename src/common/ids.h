// Strong identifier types.
//
// NodeId identifies any process in a deployment (replica or client).
// Replicas and clients share one id space so the network layer can route
// between any pair of processes.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <string>

namespace domino {

/// Identifies a process (replica or client) in a deployment.
class NodeId {
 public:
  constexpr NodeId() = default;
  constexpr explicit NodeId(std::uint32_t v) : v_(v) {}

  [[nodiscard]] constexpr std::uint32_t value() const { return v_; }
  constexpr auto operator<=>(const NodeId&) const = default;

  [[nodiscard]] static constexpr NodeId invalid() { return NodeId{0xFFFFFFFFu}; }
  [[nodiscard]] constexpr bool valid() const { return v_ != 0xFFFFFFFFu; }

  [[nodiscard]] std::string to_string() const { return "n" + std::to_string(v_); }

 private:
  std::uint32_t v_ = 0xFFFFFFFFu;
};

/// Identifies one client request: the proposing node plus a per-node
/// monotonically increasing sequence number.
struct RequestId {
  NodeId client;
  std::uint64_t seq = 0;

  constexpr auto operator<=>(const RequestId&) const = default;

  [[nodiscard]] std::string to_string() const {
    return client.to_string() + "#" + std::to_string(seq);
  }
};

/// Paxos-style ballot number: round number plus proposing node for
/// tie-breaking. Ballot 0 is the implicit "fast" ballot in Fast Paxos.
struct Ballot {
  std::uint32_t round = 0;
  NodeId node;

  constexpr auto operator<=>(const Ballot&) const = default;
};

}  // namespace domino

template <>
struct std::hash<domino::NodeId> {
  std::size_t operator()(const domino::NodeId& id) const noexcept {
    return std::hash<std::uint32_t>{}(id.value());
  }
};

template <>
struct std::hash<domino::RequestId> {
  std::size_t operator()(const domino::RequestId& id) const noexcept {
    return std::hash<std::uint64_t>{}(
        (static_cast<std::uint64_t>(id.client.value()) << 40) ^ id.seq);
  }
};
