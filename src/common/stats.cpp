#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>
#include <stdexcept>

namespace domino {

void StatAccumulator::ensure_sorted() const {
  if (!sorted_) {
    std::sort(values_.begin(), values_.end());
    sorted_ = true;
  }
}

double StatAccumulator::mean() const {
  if (values_.empty()) throw std::logic_error("StatAccumulator::mean on empty set");
  return std::accumulate(values_.begin(), values_.end(), 0.0) /
         static_cast<double>(values_.size());
}

double StatAccumulator::min() const {
  ensure_sorted();
  if (values_.empty()) throw std::logic_error("StatAccumulator::min on empty set");
  return values_.front();
}

double StatAccumulator::max() const {
  ensure_sorted();
  if (values_.empty()) throw std::logic_error("StatAccumulator::max on empty set");
  return values_.back();
}

double StatAccumulator::stddev() const {
  if (values_.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0.0;
  for (double v : values_) acc += (v - m) * (v - m);
  return std::sqrt(acc / static_cast<double>(values_.size() - 1));
}

double StatAccumulator::percentile(double p) const {
  ensure_sorted();
  if (values_.empty()) throw std::logic_error("StatAccumulator::percentile on empty set");
  p = std::clamp(p, 0.0, 100.0);
  std::size_t rank = 0;
  if (p > 0.0) {
    rank = static_cast<std::size_t>(
        std::ceil(p / 100.0 * static_cast<double>(values_.size())));
    if (rank > 0) --rank;
  }
  return values_[rank];
}

double StatAccumulator::cdf_at(double x) const {
  ensure_sorted();
  if (values_.empty()) return 0.0;
  const auto it = std::upper_bound(values_.begin(), values_.end(), x);
  return static_cast<double>(it - values_.begin()) / static_cast<double>(values_.size());
}

void StatAccumulator::merge(const StatAccumulator& other) {
  values_.insert(values_.end(), other.values_.begin(), other.values_.end());
  sorted_ = false;
}

const std::vector<double>& StatAccumulator::sorted_values() const {
  ensure_sorted();
  return values_;
}

std::string StatAccumulator::render_cdf(std::size_t points) const {
  if (values_.empty()) return "(no samples)\n";
  ensure_sorted();
  std::string out;
  char line[96];
  for (std::size_t i = 1; i <= points; ++i) {
    const double frac = static_cast<double>(i) / static_cast<double>(points);
    const auto idx = std::min(
        values_.size() - 1,
        static_cast<std::size_t>(std::ceil(frac * static_cast<double>(values_.size()))) - 1);
    std::snprintf(line, sizeof(line), "%10.2f  %5.3f\n", values_[idx], frac);
    out += line;
  }
  return out;
}

StatAccumulator::BoxSummary StatAccumulator::box_summary() const {
  return {percentile(5), percentile(25), percentile(50), percentile(75), percentile(95)};
}

void TimeSeries::add(TimePoint at, double value) {
  if (at < TimePoint::epoch()) return;
  const auto idx = static_cast<std::size_t>((at - TimePoint::epoch()).nanos() / width_.nanos());
  if (idx >= buckets_.size()) buckets_.resize(idx + 1);
  buckets_[idx].add(value);
}

}  // namespace domino
