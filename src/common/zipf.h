// Zipfian key-selection, matching the paper's workload: "The requests
// select keys based on a Zipfian distribution, where the alpha value is
// 0.75" (Section 7.1; 0.95 in the high-contention runs of Figure 10b).
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace domino {

/// Samples ranks in [0, n) with P(rank k) proportional to 1 / (k+1)^alpha.
/// Uses a precomputed inverse-CDF table; O(log n) per sample.
class ZipfGenerator {
 public:
  ZipfGenerator(std::uint64_t n, double alpha);

  [[nodiscard]] std::uint64_t sample(Rng& rng) const;

  [[nodiscard]] std::uint64_t n() const { return n_; }
  [[nodiscard]] double alpha() const { return alpha_; }

 private:
  std::uint64_t n_;
  double alpha_;
  std::vector<double> cdf_;  // cdf_[k] = P(rank <= k)
};

}  // namespace domino
