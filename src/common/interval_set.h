// A set of disjoint, closed integer intervals with coalescing.
//
// The Domino prototype "compresses continuous no-op log entries into one
// entry" (paper Section 6). IntervalSet is that compression: a replica's
// no-op'd (or committed) log positions are stored as coalesced ranges, so a
// billion no-op positions per second cost O(#holes) memory, not O(#ticks).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

namespace domino {

class IntervalSet {
 public:
  using Key = std::int64_t;

  /// Insert the closed interval [lo, hi]; coalesces with neighbours and
  /// overlapping intervals. Requires lo <= hi.
  void insert(Key lo, Key hi);

  /// Insert a single point.
  void insert(Key point) { insert(point, point); }

  [[nodiscard]] bool contains(Key point) const;

  /// True when [lo, hi] is fully covered by the set.
  [[nodiscard]] bool covers(Key lo, Key hi) const;

  /// Smallest key >= from that is NOT in the set.
  [[nodiscard]] Key first_gap(Key from) const;

  /// Largest H such that every key in [from, H] is in the set, or nullopt
  /// if `from` itself is absent. (The "contiguous committed prefix".)
  [[nodiscard]] std::optional<Key> contiguous_end(Key from) const;

  [[nodiscard]] std::size_t interval_count() const { return ivals_.size(); }
  [[nodiscard]] bool empty() const { return ivals_.empty(); }

  /// Total number of integer points covered (may overflow for huge sets;
  /// intended for tests).
  [[nodiscard]] std::uint64_t cardinality() const;

  [[nodiscard]] std::string to_string() const;

  /// Iteration over the disjoint intervals, ascending: map lo -> hi.
  [[nodiscard]] const std::map<Key, Key>& intervals() const { return ivals_; }

 private:
  std::map<Key, Key> ivals_;  // lo -> hi, disjoint, non-adjacent
};

}  // namespace domino
