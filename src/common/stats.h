// Offline statistics accumulators used by the evaluation harness:
// percentiles, CDF rendering, box-plot summaries and time-bucketed series.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/time.h"

namespace domino {

/// Accumulates scalar samples (latencies in milliseconds, rates, ...) and
/// answers order statistics. Sorting is deferred until a query.
class StatAccumulator {
 public:
  void add(double v) {
    values_.push_back(v);
    sorted_ = false;
  }
  void add(Duration d) { add(d.millis()); }

  [[nodiscard]] std::size_t count() const { return values_.size(); }
  [[nodiscard]] bool empty() const { return values_.empty(); }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double stddev() const;

  /// p in [0, 100], nearest-rank percentile.
  [[nodiscard]] double percentile(double p) const;
  [[nodiscard]] double median() const { return percentile(50); }

  /// Fraction of samples <= x, in [0, 1].
  [[nodiscard]] double cdf_at(double x) const;

  /// Merge another accumulator's samples into this one.
  void merge(const StatAccumulator& other);

  /// All samples, sorted ascending.
  [[nodiscard]] const std::vector<double>& sorted_values() const;

  /// Render an ASCII CDF table: `points` rows of "value  cdf".
  [[nodiscard]] std::string render_cdf(std::size_t points = 20) const;

  /// Five-number summary (p5, p25, p50, p75, p95) as used by the paper's
  /// box-and-whisker figures (Figures 2 and 11).
  struct BoxSummary {
    double p5, p25, p50, p75, p95;
  };
  [[nodiscard]] BoxSummary box_summary() const;

 private:
  void ensure_sorted() const;

  mutable std::vector<double> values_;
  mutable bool sorted_ = false;
};

/// Time-bucketed series: samples are assigned to fixed-width buckets by
/// timestamp; per-bucket accumulators answer queries. Used for the Figure 12
/// latency timelines and the Figure 1 per-minute heat maps.
class TimeSeries {
 public:
  explicit TimeSeries(Duration bucket_width) : width_(bucket_width) {}

  void add(TimePoint at, double value);

  [[nodiscard]] std::size_t bucket_count() const { return buckets_.size(); }
  [[nodiscard]] TimePoint bucket_start(std::size_t i) const {
    return TimePoint::epoch() + width_ * static_cast<std::int64_t>(i);
  }
  [[nodiscard]] const StatAccumulator& bucket(std::size_t i) const { return buckets_[i]; }

 private:
  Duration width_;
  std::vector<StatAccumulator> buckets_;
};

}  // namespace domino
