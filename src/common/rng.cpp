#include "common/rng.h"

#include <cmath>

namespace domino {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& word : s_) word = splitmix64(x);
  // Avoid the all-zero state, which xoshiro cannot escape.
  if (s_[0] == 0 && s_[1] == 0 && s_[2] == 0 && s_[3] == 0) s_[0] = 1;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::next_double() {
  // 53 high bits -> uniform double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::int64_t Rng::uniform_i64(std::int64_t lo, std::int64_t hi) {
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>(next_u64());  // full 64-bit range
  return lo + static_cast<std::int64_t>(next_u64() % range);
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * next_double(); }

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = next_double();
  } while (u1 <= 1e-300);
  const double u2 = next_double();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::exponential(double mean) {
  double u = 0.0;
  do {
    u = next_double();
  } while (u <= 1e-300);
  return -mean * std::log(u);
}

double Rng::lognormal(double mu, double sigma) { return std::exp(normal(mu, sigma)); }

Rng Rng::fork() { return Rng{next_u64()}; }

}  // namespace domino
