#include "common/zipf.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace domino {

ZipfGenerator::ZipfGenerator(std::uint64_t n, double alpha) : n_(n), alpha_(alpha) {
  if (n == 0) throw std::invalid_argument("ZipfGenerator: n must be > 0");
  if (alpha < 0) throw std::invalid_argument("ZipfGenerator: alpha must be >= 0");
  cdf_.resize(n);
  double acc = 0.0;
  for (std::uint64_t k = 0; k < n; ++k) {
    acc += 1.0 / std::pow(static_cast<double>(k + 1), alpha);
    cdf_[k] = acc;
  }
  const double total = acc;
  for (double& v : cdf_) v /= total;
  cdf_.back() = 1.0;  // guard against rounding
}

std::uint64_t ZipfGenerator::sample(Rng& rng) const {
  const double u = rng.next_double();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::uint64_t>(it - cdf_.begin());
}

}  // namespace domino
