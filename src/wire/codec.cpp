#include "wire/codec.h"

namespace domino::wire {

void ByteWriter::u16(std::uint16_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v));
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
}

void ByteWriter::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void ByteWriter::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void ByteWriter::varint(std::uint64_t v) {
  while (v >= 0x80) {
    buf_.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  buf_.push_back(static_cast<std::uint8_t>(v));
}

void ByteWriter::svarint(std::int64_t v) {
  const auto u = static_cast<std::uint64_t>(v);
  varint((u << 1) ^ static_cast<std::uint64_t>(v >> 63));
}

void ByteWriter::str(std::string_view s) {
  varint(s.size());
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void ByteWriter::bytes(std::span<const std::uint8_t> data) {
  varint(data.size());
  buf_.insert(buf_.end(), data.begin(), data.end());
}

void ByteWriter::request_id(const RequestId& id) {
  node_id(id.client);
  varint(id.seq);
}

void ByteWriter::ballot(const Ballot& b) {
  varint(b.round);
  node_id(b.node);
}

void ByteReader::need(std::size_t n) const {
  if (pos_ + n > data_.size()) throw WireError("ByteReader: truncated input");
}

std::uint8_t ByteReader::u8() {
  need(1);
  return data_[pos_++];
}

std::uint16_t ByteReader::u16() {
  need(2);
  std::uint16_t v = static_cast<std::uint16_t>(data_[pos_]) |
                    static_cast<std::uint16_t>(data_[pos_ + 1]) << 8;
  pos_ += 2;
  return v;
}

std::uint32_t ByteReader::u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(data_[pos_ + i]) << (8 * i);
  pos_ += 4;
  return v;
}

std::uint64_t ByteReader::u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
  pos_ += 8;
  return v;
}

std::uint64_t ByteReader::varint() {
  std::uint64_t v = 0;
  int shift = 0;
  for (;;) {
    need(1);
    const std::uint8_t byte = data_[pos_++];
    if (shift >= 64) throw WireError("ByteReader: varint overflow");
    v |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) break;
    shift += 7;
  }
  return v;
}

std::int64_t ByteReader::svarint() {
  const std::uint64_t u = varint();
  return static_cast<std::int64_t>((u >> 1) ^ (~(u & 1) + 1));
}

std::uint64_t ByteReader::length_prefix(std::size_t min_element_bytes) {
  const std::uint64_t n = varint();
  const std::size_t min_bytes = min_element_bytes == 0 ? 1 : min_element_bytes;
  if (n > remaining() / min_bytes) {
    throw WireError("ByteReader: length prefix exceeds remaining payload");
  }
  return n;
}

std::string ByteReader::str() {
  const std::uint64_t n = varint();
  need(n);
  std::string s(reinterpret_cast<const char*>(data_.data() + pos_), n);
  pos_ += n;
  return s;
}

Payload ByteReader::bytes() {
  const std::uint64_t n = varint();
  need(n);
  Payload p(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
            data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return p;
}

RequestId ByteReader::request_id() {
  RequestId id;
  id.client = node_id();
  id.seq = varint();
  return id;
}

Ballot ByteReader::ballot() {
  Ballot b;
  b.round = static_cast<std::uint32_t>(varint());
  b.node = node_id();
  return b;
}

void ByteReader::expect_exhausted() const {
  if (!exhausted()) throw WireError("ByteReader: trailing bytes after message");
}

}  // namespace domino::wire
