// Binary wire codec.
//
// Every protocol message in this repository is serialized to bytes before
// crossing the simulated network and parsed on receipt, mirroring what a
// gRPC/protobuf deployment would do. The codec is a compact hand-rolled
// format: little-endian fixed integers, LEB128 varints, zig-zag signed
// varints, and length-prefixed strings.
//
// Decoding is defensive: all reads are bounds-checked and malformed input
// raises WireError rather than reading out of bounds.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "common/ids.h"
#include "common/time.h"

namespace domino::wire {

class WireError : public std::runtime_error {
 public:
  explicit WireError(const std::string& what) : std::runtime_error(what) {}
};

using Payload = std::vector<std::uint8_t>;

class ByteWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);

  /// LEB128 unsigned varint.
  void varint(std::uint64_t v);

  /// Zig-zag encoded signed varint.
  void svarint(std::int64_t v);

  void boolean(bool v) { u8(v ? 1 : 0); }
  void str(std::string_view s);
  void bytes(std::span<const std::uint8_t> data);

  void node_id(NodeId id) { u32(id.value()); }
  void request_id(const RequestId& id);
  void ballot(const Ballot& b);
  void time_point(TimePoint t) { svarint(t.nanos()); }
  void duration(Duration d) { svarint(d.nanos()); }

  [[nodiscard]] std::size_t size() const { return buf_.size(); }
  [[nodiscard]] Payload take() { return std::move(buf_); }
  [[nodiscard]] const Payload& buffer() const { return buf_; }

 private:
  Payload buf_;
};

class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  std::uint64_t varint();
  std::int64_t svarint();

  /// Read a container length prefix, rejecting values that could not
  /// possibly be backed by the remaining bytes (each element occupies at
  /// least `min_element_bytes`). Guards decoders against allocation bombs.
  std::uint64_t length_prefix(std::size_t min_element_bytes = 1);
  bool boolean() { return u8() != 0; }
  std::string str();
  Payload bytes();

  NodeId node_id() { return NodeId{u32()}; }
  RequestId request_id();
  Ballot ballot();
  TimePoint time_point() { return TimePoint{svarint()}; }
  Duration duration() { return Duration{svarint()}; }

  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  [[nodiscard]] bool exhausted() const { return pos_ == data_.size(); }

  /// Throws WireError unless all bytes have been consumed.
  void expect_exhausted() const;

 private:
  void need(std::size_t n) const;

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace domino::wire
