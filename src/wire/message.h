// Message envelope: a type tag followed by the message body.
//
// All protocols in the repository share one MessageType space so a node can
// host several protocol roles (e.g. a Domino replica participates in DFP
// and DM simultaneously) behind a single dispatch point.
#pragma once

#include <cstddef>
#include <cstdint>

#include "wire/codec.h"

namespace domino::wire {

enum class MessageType : std::uint16_t {
  // Measurement plane (src/measure)
  kProbe = 1,
  kProbeReply = 2,

  // Multi-Paxos (src/paxos)
  kPaxosClientRequest = 10,
  kPaxosAccept = 11,
  kPaxosAcceptReply = 12,
  kPaxosCommit = 13,
  kPaxosClientReply = 14,
  kPaxosExecuted = 15,

  // Mencius (src/mencius)
  kMenciusClientRequest = 20,
  kMenciusAccept = 21,
  kMenciusAcceptReply = 22,
  kMenciusCommit = 23,
  kMenciusSkip = 24,
  kMenciusClientReply = 25,
  kMenciusExecuted = 26,
  kMenciusCommitAck = 27,

  // EPaxos (src/epaxos)
  kEpaxosClientRequest = 30,
  kEpaxosPreAccept = 31,
  kEpaxosPreAcceptReply = 32,
  kEpaxosAccept = 33,
  kEpaxosAcceptReply = 34,
  kEpaxosCommit = 35,
  kEpaxosClientReply = 36,
  kEpaxosExecuted = 37,

  // Classic Fast Paxos (src/fastpaxos)
  kFastPaxosClientRequest = 40,
  kFastPaxosAcceptNotice = 41,
  kFastPaxosRecoveryAccept = 42,
  kFastPaxosRecoveryReply = 43,
  kFastPaxosCommit = 44,
  kFastPaxosClientReply = 45,
  kFastPaxosExecuted = 46,

  // Domino (src/core)
  kDfpPropose = 50,
  kDfpAcceptNotice = 51,
  kDfpCommit = 52,
  kDfpClientReply = 53,
  kDfpRecoveryAccept = 54,
  kDfpRecoveryReply = 55,
  kDominoHeartbeat = 56,
  kDmPropose = 57,
  kDmAccept = 58,
  kDmAcceptReply = 59,
  kDmCommit = 60,
  kDmClientReply = 61,
  kDominoExecuted = 62,

  // Measurement proxy (paper Section 5.6's probe-traffic reduction)
  kProxyQuery = 65,
  kProxyReport = 66,

  // Domino failure handling (paper Section 5.8)
  kDmRevoke = 70,
  kDmRevokeReply = 71,
  kDmRevokeResult = 72,
  kDfpRangeRecover = 73,
  kDfpRangeReply = 74,
  kDfpRangeResolve = 75,

  // Crash recovery (src/recovery): peer catch-up after an amnesiac restart
  kCatchupRequest = 76,
  kCatchupReply = 77,
};

/// Stable human-readable name of a message type (metric names, trace
/// output). Unknown tags map to "Unknown".
[[nodiscard]] constexpr const char* message_type_name(MessageType t) {
  switch (t) {
    case MessageType::kProbe: return "Probe";
    case MessageType::kProbeReply: return "ProbeReply";
    case MessageType::kPaxosClientRequest: return "PaxosClientRequest";
    case MessageType::kPaxosAccept: return "PaxosAccept";
    case MessageType::kPaxosAcceptReply: return "PaxosAcceptReply";
    case MessageType::kPaxosCommit: return "PaxosCommit";
    case MessageType::kPaxosClientReply: return "PaxosClientReply";
    case MessageType::kPaxosExecuted: return "PaxosExecuted";
    case MessageType::kMenciusClientRequest: return "MenciusClientRequest";
    case MessageType::kMenciusAccept: return "MenciusAccept";
    case MessageType::kMenciusAcceptReply: return "MenciusAcceptReply";
    case MessageType::kMenciusCommit: return "MenciusCommit";
    case MessageType::kMenciusSkip: return "MenciusSkip";
    case MessageType::kMenciusClientReply: return "MenciusClientReply";
    case MessageType::kMenciusExecuted: return "MenciusExecuted";
    case MessageType::kMenciusCommitAck: return "MenciusCommitAck";
    case MessageType::kEpaxosClientRequest: return "EpaxosClientRequest";
    case MessageType::kEpaxosPreAccept: return "EpaxosPreAccept";
    case MessageType::kEpaxosPreAcceptReply: return "EpaxosPreAcceptReply";
    case MessageType::kEpaxosAccept: return "EpaxosAccept";
    case MessageType::kEpaxosAcceptReply: return "EpaxosAcceptReply";
    case MessageType::kEpaxosCommit: return "EpaxosCommit";
    case MessageType::kEpaxosClientReply: return "EpaxosClientReply";
    case MessageType::kEpaxosExecuted: return "EpaxosExecuted";
    case MessageType::kFastPaxosClientRequest: return "FastPaxosClientRequest";
    case MessageType::kFastPaxosAcceptNotice: return "FastPaxosAcceptNotice";
    case MessageType::kFastPaxosRecoveryAccept: return "FastPaxosRecoveryAccept";
    case MessageType::kFastPaxosRecoveryReply: return "FastPaxosRecoveryReply";
    case MessageType::kFastPaxosCommit: return "FastPaxosCommit";
    case MessageType::kFastPaxosClientReply: return "FastPaxosClientReply";
    case MessageType::kFastPaxosExecuted: return "FastPaxosExecuted";
    case MessageType::kDfpPropose: return "DfpPropose";
    case MessageType::kDfpAcceptNotice: return "DfpAcceptNotice";
    case MessageType::kDfpCommit: return "DfpCommit";
    case MessageType::kDfpClientReply: return "DfpClientReply";
    case MessageType::kDfpRecoveryAccept: return "DfpRecoveryAccept";
    case MessageType::kDfpRecoveryReply: return "DfpRecoveryReply";
    case MessageType::kDominoHeartbeat: return "DominoHeartbeat";
    case MessageType::kDmPropose: return "DmPropose";
    case MessageType::kDmAccept: return "DmAccept";
    case MessageType::kDmAcceptReply: return "DmAcceptReply";
    case MessageType::kDmCommit: return "DmCommit";
    case MessageType::kDmClientReply: return "DmClientReply";
    case MessageType::kDominoExecuted: return "DominoExecuted";
    case MessageType::kProxyQuery: return "ProxyQuery";
    case MessageType::kProxyReport: return "ProxyReport";
    case MessageType::kDmRevoke: return "DmRevoke";
    case MessageType::kDmRevokeReply: return "DmRevokeReply";
    case MessageType::kDmRevokeResult: return "DmRevokeResult";
    case MessageType::kDfpRangeRecover: return "DfpRangeRecover";
    case MessageType::kDfpRangeReply: return "DfpRangeReply";
    case MessageType::kDfpRangeResolve: return "DfpRangeResolve";
    case MessageType::kCatchupRequest: return "CatchupRequest";
    case MessageType::kCatchupReply: return "CatchupReply";
  }
  return "Unknown";
}

/// Upper bound (exclusive) on MessageType tag values; sized so per-type
/// handle tables can be fixed arrays.
inline constexpr std::size_t kMaxMessageTypeTag = 80;

/// Envelope flag bit: when set on the type tag, a trace context (two
/// varints: trace id, sending span id) sits between the tag and the body.
/// Real tags stay below kMaxMessageTypeTag, so the bit is unambiguous.
inline constexpr std::uint16_t kTraceContextFlag = 0x8000;

/// The causal trace context piggybacked on a message envelope (see
/// obs/span.h for the semantics). Zero fields = no context.
struct TraceContextWire {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;

  [[nodiscard]] constexpr bool valid() const { return trace_id != 0 && span_id != 0; }
};

/// Serialize a message struct (anything with `kType` and `encode`) into an
/// envelope payload.
template <typename M>
[[nodiscard]] Payload encode_message(const M& msg) {
  ByteWriter w;
  w.u16(static_cast<std::uint16_t>(M::kType));
  msg.encode(w);
  return w.take();
}

/// Serialize a message with a piggybacked trace context. When `ctx` is not
/// valid this is byte-identical to encode_message (tracing must never
/// change the wire format of untraced runs).
template <typename M>
[[nodiscard]] Payload encode_message_traced(const M& msg, const TraceContextWire& ctx) {
  if (!ctx.valid()) return encode_message(msg);
  ByteWriter w;
  w.u16(static_cast<std::uint16_t>(M::kType) | kTraceContextFlag);
  w.varint(ctx.trace_id);
  w.varint(ctx.span_id);
  msg.encode(w);
  return w.take();
}

/// Read the envelope type tag without consuming the body. The trace-context
/// flag is masked off, so dispatch code is oblivious to tracing.
[[nodiscard]] inline MessageType peek_type(std::span<const std::uint8_t> payload) {
  ByteReader r{payload};
  return static_cast<MessageType>(r.u16() & ~kTraceContextFlag);
}

/// Read the piggybacked trace context, if any (invalid context otherwise).
[[nodiscard]] inline TraceContextWire peek_trace_context(
    std::span<const std::uint8_t> payload) {
  ByteReader r{payload};
  if ((r.u16() & kTraceContextFlag) == 0) return {};
  TraceContextWire ctx;
  ctx.trace_id = r.varint();
  ctx.span_id = r.varint();
  return ctx;
}

/// Parse a full message of known type M; throws WireError on a tag mismatch
/// or malformed body. A piggybacked trace context is skipped transparently.
template <typename M>
[[nodiscard]] M decode_message(std::span<const std::uint8_t> payload) {
  ByteReader r{payload};
  const std::uint16_t raw = r.u16();
  const auto tag = static_cast<MessageType>(raw & ~kTraceContextFlag);
  if (tag != M::kType) throw WireError("decode_message: type tag mismatch");
  if ((raw & kTraceContextFlag) != 0) {
    (void)r.varint();  // trace id
    (void)r.varint();  // span id
  }
  M msg = M::decode(r);
  r.expect_exhausted();
  return msg;
}

}  // namespace domino::wire
