// Per-node local clocks with configurable offset (skew) and drift.
//
// The paper assumes "loosely synchronized clocks" (Section 5.1): NTP-level
// skew affects Domino's performance but not its correctness. LocalClock maps
// true simulation time to a node's local wall-clock reading:
//
//     local(t) = t * (1 + drift_ppm * 1e-6) + offset
//
// DFP timestamps, OWD estimates and no-op watermarks are all read through
// this mapping, so clock skew flows into the protocol exactly as it does on
// real deployments.
#pragma once

#include <cstdint>

#include "common/time.h"

namespace domino::sim {

class LocalClock {
 public:
  LocalClock() = default;
  LocalClock(Duration offset, double drift_ppm) : offset_(offset), drift_ppm_(drift_ppm) {}

  /// The node's local reading when true time is `true_now`.
  [[nodiscard]] TimePoint local(TimePoint true_now) const {
    const double drifted =
        static_cast<double>(true_now.nanos()) * (1.0 + drift_ppm_ * 1e-6);
    return TimePoint{static_cast<std::int64_t>(drifted) + offset_.nanos()};
  }

  /// Inverse mapping: the true time at which this clock reads `local_time`.
  [[nodiscard]] TimePoint true_at(TimePoint local_time) const {
    const double t =
        static_cast<double>((local_time - Duration{offset_.nanos()}).nanos()) /
        (1.0 + drift_ppm_ * 1e-6);
    return TimePoint{static_cast<std::int64_t>(t)};
  }

  [[nodiscard]] Duration offset() const { return offset_; }
  [[nodiscard]] double drift_ppm() const { return drift_ppm_; }

  void set_offset(Duration offset) { offset_ = offset; }
  void set_drift_ppm(double ppm) { drift_ppm_ = ppm; }

 private:
  Duration offset_ = Duration::zero();
  double drift_ppm_ = 0.0;
};

}  // namespace domino::sim
