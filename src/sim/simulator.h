// Deterministic discrete-event simulation engine.
//
// All protocol activity (message delivery, timers, client load generation)
// is expressed as events on one global virtual-time queue. Events scheduled
// for the same instant fire in scheduling order (a monotonic tie-break
// counter), so a run is exactly reproducible from its RNG seed.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "common/time.h"
#include "obs/sink.h"

namespace domino::sim {

class Simulator {
 public:
  using Action = std::function<void()>;

  /// Attach an observability sink: counts executed/scheduled events and
  /// tracks the event-queue depth. Call before scheduling load; an unbound
  /// simulator pays one branch per event.
  void bind_obs(const obs::Sink& sink);

  /// Current virtual ("true") time. Nodes see skewed views of this via
  /// LocalClock.
  [[nodiscard]] TimePoint now() const { return now_; }

  /// Schedule `action` to run at absolute virtual time `at`. Events in the
  /// past are clamped to `now()` (they run next, before time advances).
  void schedule_at(TimePoint at, Action action);

  /// Schedule `action` to run `delay` from now. Negative delays clamp to 0.
  void schedule_after(Duration delay, Action action);

  /// Run until the event queue is empty or `deadline` is reached (events at
  /// exactly `deadline` still run). Returns the number of events executed.
  std::uint64_t run_until(TimePoint deadline);

  /// Run until the queue drains completely.
  std::uint64_t run();

  /// Execute a single event if one exists; returns false when queue empty.
  bool step();

  [[nodiscard]] std::size_t pending_events() const { return queue_.size(); }
  [[nodiscard]] std::uint64_t executed_events() const { return executed_; }

 private:
  struct Event {
    TimePoint at;
    std::uint64_t seq;
    Action action;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  TimePoint now_ = TimePoint::epoch();
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;

  obs::CounterHandle obs_executed_;
  obs::CounterHandle obs_scheduled_;
  obs::GaugeHandle obs_queue_depth_;
};

/// A periodic timer helper: reschedules itself every `interval` until
/// cancelled. Cancellation is cooperative (a shared flag), since the
/// simulator has no event handles.
class PeriodicTimer {
 public:
  PeriodicTimer() = default;
  ~PeriodicTimer() { stop(); }
  PeriodicTimer(const PeriodicTimer&) = delete;
  PeriodicTimer& operator=(const PeriodicTimer&) = delete;

  /// Starts firing `tick` every `interval`, first firing after `initial`.
  /// Any previously started schedule is cancelled.
  void start(Simulator& simulator, Duration initial, Duration interval,
             std::function<void()> tick);

  void stop();

  [[nodiscard]] bool running() const { return alive_ && *alive_; }

 private:
  std::shared_ptr<bool> alive_;
  std::shared_ptr<std::function<void()>> fire_;
};

}  // namespace domino::sim
