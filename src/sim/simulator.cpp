#include "sim/simulator.h"

#include <memory>
#include <utility>

namespace domino::sim {

void Simulator::bind_obs(const obs::Sink& sink) {
  obs_executed_ = sink.counter("sim.events_executed");
  obs_scheduled_ = sink.counter("sim.events_scheduled");
  obs_queue_depth_ = sink.gauge("sim.queue_depth");
}

void Simulator::schedule_at(TimePoint at, Action action) {
  if (at < now_) at = now_;
  queue_.push(Event{at, next_seq_++, std::move(action)});
  obs_scheduled_.inc();
  obs_queue_depth_.set(static_cast<std::int64_t>(queue_.size()));
}

void Simulator::schedule_after(Duration delay, Action action) {
  if (delay < Duration::zero()) delay = Duration::zero();
  schedule_at(now_ + delay, std::move(action));
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  // priority_queue::top returns const&; move out via const_cast is UB-free
  // here because we pop immediately and Event's members are not const.
  Event ev = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  now_ = ev.at;
  ++executed_;
  obs_executed_.inc();
  obs_queue_depth_.set(static_cast<std::int64_t>(queue_.size()));
  ev.action();
  return true;
}

std::uint64_t Simulator::run_until(TimePoint deadline) {
  std::uint64_t n = 0;
  while (!queue_.empty() && queue_.top().at <= deadline) {
    step();
    ++n;
  }
  if (now_ < deadline) now_ = deadline;
  return n;
}

std::uint64_t Simulator::run() {
  std::uint64_t n = 0;
  while (step()) ++n;
  return n;
}

void PeriodicTimer::start(Simulator& simulator, Duration initial, Duration interval,
                          std::function<void()> tick) {
  stop();
  alive_ = std::make_shared<bool>(true);
  // The timer owns the recursive closure; scheduled copies reach it through
  // a weak_ptr, so stop() breaks the chain at the next firing and no
  // self-referential shared_ptr cycle is left behind.
  auto alive = alive_;
  fire_ = std::make_shared<std::function<void()>>();
  std::weak_ptr<std::function<void()>> weak = fire_;
  *fire_ = [&simulator, interval, tick = std::move(tick), alive, weak]() {
    if (!*alive) return;
    tick();
    if (!*alive) return;
    if (auto fire = weak.lock()) simulator.schedule_after(interval, *fire);
  };
  simulator.schedule_after(initial, *fire_);
}

void PeriodicTimer::stop() {
  if (alive_) *alive_ = false;
  alive_.reset();
  fire_.reset();
}

}  // namespace domino::sim
