#include "epaxos/replica.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "recovery/messages.h"

namespace domino::epaxos {
namespace {

/// Catch-up request retransmit interval for a recovering replica.
constexpr Duration kCatchupRetryInterval = milliseconds(100);

/// Union of two dependency lists (small lists; linear scan is fine).
DepList merge_deps(DepList a, const DepList& b) {
  for (const auto& d : b) {
    if (std::find(a.begin(), a.end(), d) == a.end()) a.push_back(d);
  }
  return a;
}

bool same_deps(const DepList& a, const DepList& b) {
  if (a.size() != b.size()) return false;
  for (const auto& d : a) {
    if (std::find(b.begin(), b.end(), d) == b.end()) return false;
  }
  return true;
}

}  // namespace

Replica::Replica(NodeId id, std::size_t dc, net::Network& network,
                 std::vector<NodeId> replicas, sim::LocalClock clock)
    : rpc::Node(id, dc, network, clock), replicas_(std::move(replicas)) {
  if (std::find(replicas_.begin(), replicas_.end(), id) == replicas_.end()) {
    throw std::invalid_argument("epaxos::Replica: id not in replica set");
  }
  obs_preaccepts_ = obs_sink().counter("epaxos.preaccepts");
  obs_fast_ = obs_sink().counter("epaxos.fast_commits");
  obs_slow_ = obs_sink().counter("epaxos.slow_commits");
  obs_committed_ = obs_sink().counter("epaxos.committed");
  obs_executed_ = obs_sink().counter("epaxos.executed");
}

void Replica::on_packet(const net::Packet& packet) {
  switch (wire::peek_type(packet.payload)) {
    case wire::MessageType::kEpaxosClientRequest:
      handle_client_request(packet);
      break;
    case wire::MessageType::kEpaxosPreAccept:
      handle_preaccept(packet.src, packet.payload);
      break;
    case wire::MessageType::kEpaxosPreAcceptReply:
      handle_preaccept_reply(packet.src, packet.payload);
      break;
    case wire::MessageType::kEpaxosAccept:
      handle_accept(packet.src, packet.payload);
      break;
    case wire::MessageType::kEpaxosAcceptReply:
      handle_accept_reply(packet.src, packet.payload);
      break;
    case wire::MessageType::kEpaxosCommit:
      handle_commit(packet.payload);
      break;
    case wire::MessageType::kCatchupRequest:
      handle_catchup_request(packet.src, packet.payload);
      break;
    case wire::MessageType::kCatchupReply:
      handle_catchup_reply(packet.payload);
      break;
    default:
      break;
  }
}

void Replica::enable_durability(recovery::DurableStore& store) {
  persistor_.bind(store, id(), [this](Duration delay, std::function<void()> fn) {
    after(delay, std::move(fn));
  });
}

wire::Payload Replica::instance_record(const InstanceId& inst_id, const sm::Command& cmd,
                                       std::uint64_t seq, const DepList& deps,
                                       Status status, NodeId client) const {
  wire::ByteWriter w;
  inst_id.encode(w);
  cmd.encode(w);
  w.varint(seq);
  encode_deps(w, deps);
  w.u8(static_cast<std::uint8_t>(status));
  w.boolean(client.valid());  // leader records carry the requesting client
  if (client.valid()) w.node_id(client);
  return w.take();
}

std::pair<std::uint64_t, DepList> Replica::attributes_for(const sm::Command& cmd,
                                                          const InstanceId& inst) {
  std::uint64_t seq = 1;
  DepList deps;
  auto it = key_table_.find(cmd.key);
  if (it != key_table_.end() && it->second.first != inst) {
    deps.push_back(it->second.first);
    seq = it->second.second + 1;
  }
  key_table_[cmd.key] = {inst, seq};
  return {seq, deps};
}

void Replica::handle_client_request(const net::Packet& packet) {
  if (catching_up_) return;  // not rejoined yet; the client's retry will land
  const auto req = wire::decode_message<ClientRequest>(packet.payload);
  const InstanceId inst{id(), next_instance_++};
  auto [seq, deps] = attributes_for(req.command, inst);
  instances_[inst] = Instance{req.command, seq, deps, Status::kPreAccepted};
  LeaderBook book;
  book.seq = seq;
  book.deps = deps;
  book.client = req.command.id.client;
  leading_[inst] = std::move(book);
  if (const obs::SpanId s = open_wait_span("epaxos_quorum_wait"); s != 0) {
    quorum_spans_[inst] = s;
  }

  const sm::Command command = req.command;
  persistor_.persist(
      recovery::RecordTag::kAccepted,
      [&] {
        return instance_record(inst, command, seq, deps, Status::kPreAccepted,
                               command.id.client);
      },
      [this, inst, command, seq = seq, deps = deps] {
        const PreAccept msg{inst, command, seq, deps};
        for (NodeId r : replicas_) {
          if (r != id()) send(r, msg);
        }
      });
}

void Replica::handle_preaccept(NodeId from, const wire::Payload& payload) {
  const auto msg = wire::decode_message<PreAccept>(payload);
  std::uint64_t seq = msg.seq;
  DepList deps = msg.deps;
  auto it = key_table_.find(msg.command.key);
  if (it != key_table_.end() && it->second.first != msg.instance) {
    seq = std::max(seq, it->second.second + 1);
    deps = merge_deps(std::move(deps), {it->second.first});
  }
  key_table_[msg.command.key] = {msg.instance, seq};
  obs_preaccepts_.inc();
  // A commit may already have arrived on another channel; never downgrade.
  auto inst_it = instances_.find(msg.instance);
  if (inst_it == instances_.end() || inst_it->second.status == Status::kPreAccepted) {
    instances_[msg.instance] = Instance{msg.command, seq, deps, Status::kPreAccepted};
  }
  // The reply promises the merged attributes; they must survive a crash or
  // the leader could fast-commit on attributes this replica later disowns.
  persistor_.persist(
      recovery::RecordTag::kAccepted,
      [&] {
        return instance_record(msg.instance, msg.command, seq, deps, Status::kPreAccepted,
                               NodeId::invalid());
      },
      [this, from, inst = msg.instance, seq, deps] {
        send(from, PreAcceptReply{inst, seq, deps});
      });
}

void Replica::handle_preaccept_reply(NodeId from, const wire::Payload& payload) {
  const auto msg = wire::decode_message<PreAcceptReply>(payload);
  auto book_it = leading_.find(msg.instance);
  if (book_it == leading_.end()) return;
  LeaderBook& book = book_it->second;
  if (book.in_accept_phase) return;
  auto inst_it = instances_.find(msg.instance);
  if (inst_it == instances_.end() || inst_it->second.status != Status::kPreAccepted) return;
  if (std::find(book.preaccept_acks.begin(), book.preaccept_acks.end(), from) !=
      book.preaccept_acks.end()) {
    return;  // duplicate reply (re-broadcast after a restart)
  }

  book.preaccept_acks.push_back(from);
  if (msg.seq != book.seq || !same_deps(msg.deps, book.deps)) {
    book.attributes_changed = true;
    book.seq = std::max(book.seq, msg.seq);
    book.deps = merge_deps(std::move(book.deps), msg.deps);
  }
  if (book.preaccept_acks.size() + 1 < fast_quorum(replicas_.size())) return;

  Instance& inst = inst_it->second;
  if (!book.attributes_changed) {
    // Fast path: one round trip.
    ++fast_commits_;
    obs_fast_.inc();
    if (obs_sink().tracing()) {
      obs_sink().record(obs::TraceEvent{.at = true_now(),
                                        .kind = obs::EventKind::kFastAccept,
                                        .node = id(),
                                        .request = inst.command.id});
    }
    // The commit decision is externalized by the ClientReply and the Commit
    // broadcast, so it must be durable first. The book is erased now so
    // replies landing during the sync window cannot re-trigger the quorum.
    const sm::Command command = inst.command;
    const std::uint64_t seq = book.seq;
    const DepList deps = book.deps;
    const NodeId client = book.client;
    leading_.erase(book_it);
    persistor_.persist(
        recovery::RecordTag::kCommitted,
        [&] {
          return instance_record(msg.instance, command, seq, deps, Status::kCommitted,
                                 NodeId::invalid());
        },
        [this, inst_id = msg.instance, command, seq, deps, client] {
          commit_instance(inst_id, command, seq, deps, /*broadcast=*/true);
          send(client, ClientReply{command.id});
        });
    return;
  }
  // Slow path: Paxos-Accept round with the union attributes.
  book.in_accept_phase = true;
  inst.seq = book.seq;
  inst.deps = book.deps;
  inst.status = Status::kAccepted;
  const sm::Command command = inst.command;
  persistor_.persist(
      recovery::RecordTag::kAccepted,
      [&] {
        return instance_record(msg.instance, command, book.seq, book.deps,
                               Status::kAccepted, book.client);
      },
      [this, inst_id = msg.instance, command, seq = book.seq, deps = book.deps] {
        const Accept msg_out{inst_id, command, seq, deps};
        for (NodeId r : replicas_) {
          if (r != id()) send(r, msg_out);
        }
      });
}

void Replica::handle_accept(NodeId from, const wire::Payload& payload) {
  const auto msg = wire::decode_message<Accept>(payload);
  auto it = instances_.find(msg.instance);
  if (it == instances_.end()) {
    instances_[msg.instance] = Instance{msg.command, msg.seq, msg.deps, Status::kAccepted};
  } else if (it->second.status == Status::kPreAccepted) {
    it->second.seq = msg.seq;
    it->second.deps = msg.deps;
    it->second.status = Status::kAccepted;
  }
  auto kt = key_table_.find(msg.command.key);
  if (kt == key_table_.end() || kt->second.second < msg.seq) {
    key_table_[msg.command.key] = {msg.instance, msg.seq};
  }
  persistor_.persist(
      recovery::RecordTag::kAccepted,
      [&] {
        return instance_record(msg.instance, msg.command, msg.seq, msg.deps,
                               Status::kAccepted, NodeId::invalid());
      },
      [this, from, inst = msg.instance] { send(from, AcceptReply{inst}); });
}

void Replica::handle_accept_reply(NodeId from, const wire::Payload& payload) {
  const auto msg = wire::decode_message<AcceptReply>(payload);
  auto book_it = leading_.find(msg.instance);
  if (book_it == leading_.end()) return;
  LeaderBook& book = book_it->second;
  if (!book.in_accept_phase) return;
  if (std::find(book.accept_acks.begin(), book.accept_acks.end(), from) !=
      book.accept_acks.end()) {
    return;  // duplicate reply (re-broadcast after a restart)
  }
  book.accept_acks.push_back(from);
  if (book.accept_acks.size() + 1 < measure::majority(replicas_.size())) return;

  auto inst_it = instances_.find(msg.instance);
  if (inst_it == instances_.end()) return;
  ++slow_commits_;
  obs_slow_.inc();
  const sm::Command command = inst_it->second.command;
  const std::uint64_t seq = book.seq;
  const DepList deps = book.deps;
  const NodeId client = book.client;
  leading_.erase(book_it);
  persistor_.persist(
      recovery::RecordTag::kCommitted,
      [&] {
        return instance_record(msg.instance, command, seq, deps, Status::kCommitted,
                               NodeId::invalid());
      },
      [this, inst_id = msg.instance, command, seq, deps, client] {
        commit_instance(inst_id, command, seq, deps, /*broadcast=*/true);
        send(client, ClientReply{command.id});
      });
}

void Replica::handle_commit(const wire::Payload& payload) {
  const auto msg = wire::decode_message<Commit>(payload);
  commit_instance(msg.instance, msg.command, msg.seq, msg.deps, /*broadcast=*/false);
  // Nothing is externalized on this path, so the persist is fire-and-forget.
  persistor_.persist(recovery::RecordTag::kCommitted, [&] {
    return instance_record(msg.instance, msg.command, msg.seq, msg.deps,
                           Status::kCommitted, NodeId::invalid());
  });
}

void Replica::restart() {
  persistor_.begin_restart();
  for (auto& [inst, span] : quorum_spans_) {
    (void)inst;
    close_wait_span(span);
  }
  quorum_spans_.clear();
  for (auto& [inst, span] : dep_spans_) {
    (void)inst;
    close_wait_span(span);
  }
  dep_spans_.clear();
  instances_.clear();
  leading_.clear();
  key_table_.clear();
  waiters_.clear();
  store_ = sm::KvStore{};
  next_instance_ = 0;
  committed_ = 0;
  executed_ = 0;
  catching_up_ = true;
  recovery_started_at_ = true_now();
  if (obs_sink().tracing()) {
    obs_sink().record(obs::TraceEvent{
        .at = true_now(),
        .kind = obs::EventKind::kRecoveryStart,
        .node = id(),
        .value = static_cast<std::int64_t>(persistor_.epoch())});
  }

  persistor_.replay([this](const recovery::DurableRecord& rec) {
    if (rec.tag != recovery::RecordTag::kAccepted &&
        rec.tag != recovery::RecordTag::kCommitted) {
      return;  // EPaxos writes no other tags
    }
    wire::ByteReader r(rec.body);
    const InstanceId inst_id = InstanceId::decode(r);
    sm::Command cmd = sm::Command::decode(r);
    const std::uint64_t seq = r.varint();
    DepList deps = decode_deps(r);
    const auto status = static_cast<Status>(r.u8());
    NodeId client = NodeId::invalid();
    if (r.boolean()) client = r.node_id();

    if (inst_id.replica == id()) {
      next_instance_ = std::max(next_instance_, inst_id.seq + 1);
    }
    auto kt = key_table_.find(cmd.key);
    if (kt == key_table_.end() || kt->second.second < seq) {
      key_table_[cmd.key] = {inst_id, seq};
    }
    if (rec.tag == recovery::RecordTag::kCommitted) {
      // Direct mutation (not commit_instance): replay rebuilds state without
      // re-counting commits or re-broadcasting.
      instances_[inst_id] = Instance{std::move(cmd), seq, deps, Status::kCommitted};
      leading_.erase(inst_id);  // the client was already answered
      return;
    }
    auto it = instances_.find(inst_id);
    if (it == instances_.end() || it->second.status < Status::kCommitted) {
      // Later records supersede earlier ones, but never downgrade a commit
      // (a duplicate round from a previous incarnation may replay late).
      instances_[inst_id] = Instance{std::move(cmd), seq, deps, status};
    }
    if (client.valid()) {
      LeaderBook book;
      book.seq = seq;
      book.deps = std::move(deps);
      book.in_accept_phase = (status == Status::kAccepted);
      book.attributes_changed = book.in_accept_phase;
      book.client = client;
      leading_[inst_id] = std::move(book);
    }
  });

  // Re-execute the committed graph from an empty store.
  std::vector<InstanceId> committed_ids;
  for (const auto& [inst_id, inst] : instances_) {
    if (inst.status == Status::kCommitted) committed_ids.push_back(inst_id);
  }
  committed_ = committed_ids.size();
  for (const auto& inst_id : committed_ids) try_execute(inst_id);

  // Re-lead own uncommitted instances: the reply tallies died with the
  // crash, so restart the round (peers treat the re-broadcast as a
  // retransmission and simply re-reply).
  for (auto& [inst_id, book] : leading_) {
    const auto it = instances_.find(inst_id);
    if (it == instances_.end() || it->second.status >= Status::kCommitted) continue;
    book.preaccept_acks.clear();
    book.accept_acks.clear();
    if (const obs::SpanId s = open_wait_span("epaxos_quorum_wait"); s != 0) {
      quorum_spans_[inst_id] = s;
    }
    if (book.in_accept_phase) {
      const Accept msg{inst_id, it->second.command, book.seq, book.deps};
      for (NodeId r : replicas_) {
        if (r != id()) send(r, msg);
      }
    } else {
      const PreAccept msg{inst_id, it->second.command, book.seq, book.deps};
      for (NodeId r : replicas_) {
        if (r != id()) send(r, msg);
      }
    }
  }
  send_catchup_requests();
}

void Replica::send_catchup_requests() {
  if (!catching_up_) return;
  if (replicas_.size() <= 1) {
    finish_rejoin();
    return;
  }
  const recovery::CatchupRequest req{persistor_.epoch(), store_.applied_count()};
  for (NodeId r : replicas_) {
    if (r != id()) send(r, req);
  }
  after(kCatchupRetryInterval, [this, epoch = persistor_.epoch()] {
    if (catching_up_ && epoch == persistor_.epoch()) send_catchup_requests();
  });
}

void Replica::handle_catchup_request(NodeId from, const wire::Payload& payload) {
  // Always served, even while this replica is itself catching up: replying
  // with the current state keeps simultaneous recoveries from deadlocking.
  const auto req = wire::decode_message<recovery::CatchupRequest>(payload);
  recovery::CatchupReply reply;
  reply.epoch = req.epoch;
  reply.applied = store_.applied_count();
  reply.frontier = static_cast<std::int64_t>(store_.applied_count());
  reply.snapshot.reserve(store_.items().size());
  for (const auto& [key, value] : store_.items()) {
    reply.snapshot.push_back(recovery::KvEntry{key, value});
  }
  // EPaxos has no totally-ordered log: ship the full committed instance set
  // with its attributes in the aux field.
  for (const auto& [inst_id, inst] : instances_) {
    if (inst.status != Status::kCommitted && inst.status != Status::kExecuted) continue;
    wire::ByteWriter aux;
    inst_id.encode(aux);
    aux.varint(inst.seq);
    encode_deps(aux, inst.deps);
    aux.boolean(inst.status == Status::kExecuted);
    reply.entries.push_back(recovery::CatchupEntry{0, 0, inst.command, aux.take()});
  }
  send(from, reply);
}

void Replica::handle_catchup_reply(const wire::Payload& payload) {
  const auto msg = wire::decode_message<recovery::CatchupReply>(payload);
  if (msg.epoch != persistor_.epoch()) return;  // reply to an older incarnation
  // Only the first qualifying reply installs a snapshot: once rejoined the
  // store reflects live executions a later reply's snapshot (taken at the
  // peer's earlier reply time, or by a peer with a different execution
  // frontier) may not contain — overwriting would silently lose them while
  // their instances stay marked executed. Later replies still merge their
  // committed-instance sets below, which is idempotent.
  const bool installed = catching_up_ && msg.applied > store_.applied_count();
  if (installed) {
    std::unordered_map<std::string, std::string> items;
    items.reserve(msg.snapshot.size());
    for (const auto& e : msg.snapshot) items.emplace(e.key, e.value);
    store_.install_snapshot(std::move(items), msg.applied);
    persistor_.note_catchup_install(payload.size(), true_now() - recovery_started_at_);
  }
  std::unordered_set<InstanceId> peer_knows;
  peer_knows.reserve(msg.entries.size());
  for (const auto& e : msg.entries) {
    wire::ByteReader ar(e.aux);
    const InstanceId inst_id = InstanceId::decode(ar);
    const std::uint64_t seq = ar.varint();
    DepList deps = decode_deps(ar);
    const bool peer_executed = ar.boolean();
    peer_knows.insert(inst_id);
    if (inst_id.replica == id()) {
      next_instance_ = std::max(next_instance_, inst_id.seq + 1);
    }
    auto it = instances_.find(inst_id);
    if (it != instances_.end() && it->second.status == Status::kExecuted) continue;
    auto kt = key_table_.find(e.command.key);
    if (kt == key_table_.end() || kt->second.second < seq) {
      key_table_[e.command.key] = {inst_id, seq};
    }
    leading_.erase(inst_id);  // committed cluster-wide; nothing left to lead
    if (installed && peer_executed) {
      // The installed snapshot already reflects this command's execution:
      // mark it executed without re-applying, and release its waiters.
      instances_[inst_id] = Instance{e.command, seq, std::move(deps), Status::kExecuted};
      auto w = waiters_.find(inst_id);
      if (w != waiters_.end()) {
        const std::vector<InstanceId> blocked = std::move(w->second);
        waiters_.erase(w);
        for (const auto& b : blocked) {
          const auto dspan_it = dep_spans_.find(b);
          if (dspan_it != dep_spans_.end()) {
            close_wait_span(dspan_it->second);
            dep_spans_.erase(dspan_it);
          }
          try_execute(b);
        }
      }
    } else {
      commit_instance(inst_id, e.command, seq, deps, /*broadcast=*/false);
    }
  }
  if (catching_up_) {
    // Re-announce own-led commits this peer does not know. A crash inside
    // the durable-sync window cancels the Commit broadcast after the
    // decision is already durable, and replay deliberately does not
    // re-broadcast — so a peer that was live the whole time (and thus will
    // never catch up itself) would block forever on the instance, wedging
    // every later instance that depends on it. Duplicates are no-ops at
    // the receiver (commit_instance is idempotent).
    for (const auto& [inst_id, inst] : instances_) {
      if (inst_id.replica != id()) continue;
      if (inst.status != Status::kCommitted && inst.status != Status::kExecuted) continue;
      if (peer_knows.contains(inst_id)) continue;
      const Commit out{inst_id, inst.command, inst.seq, inst.deps};
      for (NodeId r : replicas_) {
        if (r != id()) send(r, out);
      }
    }
  }
  finish_rejoin();
}

void Replica::finish_rejoin() {
  if (!catching_up_) return;
  catching_up_ = false;
  const Duration took = true_now() - recovery_started_at_;
  persistor_.note_rejoin(took);
  if (obs_sink().tracing()) {
    obs_sink().record(obs::TraceEvent{.at = true_now(),
                                      .kind = obs::EventKind::kRecoveryDone,
                                      .node = id(),
                                      .value = took.nanos()});
  }
}

void Replica::commit_instance(const InstanceId& inst_id, const sm::Command& cmd,
                              std::uint64_t seq, const DepList& deps, bool broadcast) {
  auto it = instances_.find(inst_id);
  if (it == instances_.end()) {
    it = instances_.emplace(inst_id, Instance{cmd, seq, deps, Status::kCommitted}).first;
  } else {
    if (it->second.status == Status::kCommitted || it->second.status == Status::kExecuted) {
      return;  // idempotent
    }
    it->second.seq = seq;
    it->second.deps = deps;
    it->second.status = Status::kCommitted;
  }
  ++committed_;
  obs_committed_.inc();
  const auto qspan_it = quorum_spans_.find(inst_id);
  if (qspan_it != quorum_spans_.end()) {
    close_wait_span(qspan_it->second);
    quorum_spans_.erase(qspan_it);
  }
  if (broadcast) {
    Commit msg{inst_id, cmd, seq, deps};
    for (NodeId r : replicas_) {
      if (r != id()) send(r, msg);
    }
  }
  try_execute(inst_id);
  // Wake instances that were blocked on this commit.
  auto w = waiters_.find(inst_id);
  if (w != waiters_.end()) {
    const std::vector<InstanceId> blocked = std::move(w->second);
    waiters_.erase(w);
    for (const auto& b : blocked) {
      const auto dspan_it = dep_spans_.find(b);
      if (dspan_it != dep_spans_.end()) {
        close_wait_span(dspan_it->second);
        dep_spans_.erase(dspan_it);
      }
      try_execute(b);
    }
  }
}

void Replica::try_execute(const InstanceId& root) {
  auto it = instances_.find(root);
  if (it == instances_.end() || it->second.status != Status::kCommitted) return;
  execute_scc_from(root);
}

void Replica::execute_scc_from(const InstanceId& root) {
  // Iterative Tarjan over the committed dependency graph. Edges run from an
  // instance to its dependencies; executed instances are terminal. If any
  // reachable dependency is not yet committed, execution of `root` is
  // deferred until that dependency commits.
  struct NodeState {
    std::size_t index = 0;
    std::size_t lowlink = 0;
    bool on_stack = false;
  };
  std::unordered_map<InstanceId, NodeState> state;
  std::vector<InstanceId> stack;               // Tarjan stack
  std::vector<std::vector<InstanceId>> sccs;   // emitted in dependency-first order
  std::size_t next_index = 0;

  struct Frame {
    InstanceId node;
    std::size_t dep_cursor = 0;
  };
  std::vector<Frame> call_stack;
  call_stack.push_back({root, 0});
  state[root] = {next_index, next_index, true};
  ++next_index;
  stack.push_back(root);

  while (!call_stack.empty()) {
    Frame& frame = call_stack.back();
    Instance& inst = instances_.at(frame.node);
    if (frame.dep_cursor < inst.deps.size()) {
      const InstanceId dep = inst.deps[frame.dep_cursor++];
      auto dep_it = instances_.find(dep);
      if (dep_it == instances_.end() ||
          (dep_it->second.status != Status::kCommitted &&
           dep_it->second.status != Status::kExecuted)) {
        // Uncommitted dependency: defer the whole attempt.
        waiters_[dep].push_back(root);
        if (span_store() != nullptr && dep_spans_.find(root) == dep_spans_.end()) {
          if (const obs::SpanId s = open_wait_span("epaxos_dep_wait"); s != 0) {
            dep_spans_[root] = s;
          }
        }
        return;
      }
      if (dep_it->second.status == Status::kExecuted) continue;
      auto st = state.find(dep);
      if (st == state.end()) {
        state[dep] = {next_index, next_index, true};
        ++next_index;
        stack.push_back(dep);
        call_stack.push_back({dep, 0});
      } else if (st->second.on_stack) {
        auto& me = state.at(frame.node);
        me.lowlink = std::min(me.lowlink, st->second.index);
      }
      continue;
    }
    // Node finished: maybe emit an SCC.
    const NodeState me = state.at(frame.node);
    if (me.lowlink == me.index) {
      std::vector<InstanceId> scc;
      for (;;) {
        const InstanceId top = stack.back();
        stack.pop_back();
        state.at(top).on_stack = false;
        scc.push_back(top);
        if (top == frame.node) break;
      }
      sccs.push_back(std::move(scc));
    }
    const InstanceId finished = frame.node;
    call_stack.pop_back();
    if (!call_stack.empty()) {
      auto& parent = state.at(call_stack.back().node);
      parent.lowlink = std::min(parent.lowlink, state.at(finished).lowlink);
    }
  }

  // SCCs are emitted dependencies-first; execute each, ordering commands
  // within a component by (seq, instance id).
  for (auto& scc : sccs) {
    std::sort(scc.begin(), scc.end(), [this](const InstanceId& a, const InstanceId& b) {
      const Instance& ia = instances_.at(a);
      const Instance& ib = instances_.at(b);
      if (ia.seq != ib.seq) return ia.seq < ib.seq;
      return a < b;
    });
    for (const auto& inst_id : scc) {
      Instance& inst = instances_.at(inst_id);
      if (inst.status == Status::kExecuted) continue;
      inst.status = Status::kExecuted;
      ++executed_;
      obs_executed_.inc();
      store_.apply(inst.command);
      if (exec_hook_) exec_hook_(inst.command.id, true_now());
    }
  }
}

}  // namespace domino::epaxos
