#include "epaxos/replica.h"

#include <algorithm>
#include <stdexcept>

namespace domino::epaxos {
namespace {

/// Union of two dependency lists (small lists; linear scan is fine).
DepList merge_deps(DepList a, const DepList& b) {
  for (const auto& d : b) {
    if (std::find(a.begin(), a.end(), d) == a.end()) a.push_back(d);
  }
  return a;
}

bool same_deps(const DepList& a, const DepList& b) {
  if (a.size() != b.size()) return false;
  for (const auto& d : a) {
    if (std::find(b.begin(), b.end(), d) == b.end()) return false;
  }
  return true;
}

}  // namespace

Replica::Replica(NodeId id, std::size_t dc, net::Network& network,
                 std::vector<NodeId> replicas, sim::LocalClock clock)
    : rpc::Node(id, dc, network, clock), replicas_(std::move(replicas)) {
  if (std::find(replicas_.begin(), replicas_.end(), id) == replicas_.end()) {
    throw std::invalid_argument("epaxos::Replica: id not in replica set");
  }
  obs_preaccepts_ = obs_sink().counter("epaxos.preaccepts");
  obs_fast_ = obs_sink().counter("epaxos.fast_commits");
  obs_slow_ = obs_sink().counter("epaxos.slow_commits");
  obs_committed_ = obs_sink().counter("epaxos.committed");
  obs_executed_ = obs_sink().counter("epaxos.executed");
}

void Replica::on_packet(const net::Packet& packet) {
  switch (wire::peek_type(packet.payload)) {
    case wire::MessageType::kEpaxosClientRequest:
      handle_client_request(packet);
      break;
    case wire::MessageType::kEpaxosPreAccept:
      handle_preaccept(packet.src, packet.payload);
      break;
    case wire::MessageType::kEpaxosPreAcceptReply:
      handle_preaccept_reply(packet.payload);
      break;
    case wire::MessageType::kEpaxosAccept:
      handle_accept(packet.src, packet.payload);
      break;
    case wire::MessageType::kEpaxosAcceptReply:
      handle_accept_reply(packet.payload);
      break;
    case wire::MessageType::kEpaxosCommit:
      handle_commit(packet.payload);
      break;
    default:
      break;
  }
}

std::pair<std::uint64_t, DepList> Replica::attributes_for(const sm::Command& cmd,
                                                          const InstanceId& inst) {
  std::uint64_t seq = 1;
  DepList deps;
  auto it = key_table_.find(cmd.key);
  if (it != key_table_.end() && it->second.first != inst) {
    deps.push_back(it->second.first);
    seq = it->second.second + 1;
  }
  key_table_[cmd.key] = {inst, seq};
  return {seq, deps};
}

void Replica::handle_client_request(const net::Packet& packet) {
  const auto req = wire::decode_message<ClientRequest>(packet.payload);
  const InstanceId inst{id(), next_instance_++};
  auto [seq, deps] = attributes_for(req.command, inst);
  instances_[inst] = Instance{req.command, seq, deps, Status::kPreAccepted};
  LeaderBook book;
  book.seq = seq;
  book.deps = deps;
  book.client = req.command.id.client;
  leading_[inst] = std::move(book);
  if (const obs::SpanId s = open_wait_span("epaxos_quorum_wait"); s != 0) {
    quorum_spans_[inst] = s;
  }

  PreAccept msg{inst, req.command, seq, deps};
  for (NodeId r : replicas_) {
    if (r != id()) send(r, msg);
  }
}

void Replica::handle_preaccept(NodeId from, const wire::Payload& payload) {
  const auto msg = wire::decode_message<PreAccept>(payload);
  std::uint64_t seq = msg.seq;
  DepList deps = msg.deps;
  auto it = key_table_.find(msg.command.key);
  if (it != key_table_.end() && it->second.first != msg.instance) {
    seq = std::max(seq, it->second.second + 1);
    deps = merge_deps(std::move(deps), {it->second.first});
  }
  key_table_[msg.command.key] = {msg.instance, seq};
  obs_preaccepts_.inc();
  // A commit may already have arrived on another channel; never downgrade.
  auto inst_it = instances_.find(msg.instance);
  if (inst_it == instances_.end() || inst_it->second.status == Status::kPreAccepted) {
    instances_[msg.instance] = Instance{msg.command, seq, deps, Status::kPreAccepted};
  }
  send(from, PreAcceptReply{msg.instance, seq, deps});
}

void Replica::handle_preaccept_reply(const wire::Payload& payload) {
  const auto msg = wire::decode_message<PreAcceptReply>(payload);
  auto book_it = leading_.find(msg.instance);
  if (book_it == leading_.end()) return;
  LeaderBook& book = book_it->second;
  if (book.in_accept_phase) return;
  auto inst_it = instances_.find(msg.instance);
  if (inst_it == instances_.end() || inst_it->second.status != Status::kPreAccepted) return;

  ++book.preaccept_replies;
  if (msg.seq != book.seq || !same_deps(msg.deps, book.deps)) {
    book.attributes_changed = true;
    book.seq = std::max(book.seq, msg.seq);
    book.deps = merge_deps(std::move(book.deps), msg.deps);
  }
  if (book.preaccept_replies + 1 < fast_quorum(replicas_.size())) return;

  Instance& inst = inst_it->second;
  if (!book.attributes_changed) {
    // Fast path: one round trip.
    ++fast_commits_;
    obs_fast_.inc();
    if (obs_sink().tracing()) {
      obs_sink().record(obs::TraceEvent{.at = true_now(),
                                        .kind = obs::EventKind::kFastAccept,
                                        .node = id(),
                                        .request = inst.command.id});
    }
    commit_instance(msg.instance, inst.command, book.seq, book.deps, /*broadcast=*/true);
    send(book.client, ClientReply{inst.command.id});
    leading_.erase(book_it);
    return;
  }
  // Slow path: Paxos-Accept round with the union attributes.
  book.in_accept_phase = true;
  inst.seq = book.seq;
  inst.deps = book.deps;
  inst.status = Status::kAccepted;
  Accept msg_out{msg.instance, inst.command, book.seq, book.deps};
  for (NodeId r : replicas_) {
    if (r != id()) send(r, msg_out);
  }
}

void Replica::handle_accept(NodeId from, const wire::Payload& payload) {
  const auto msg = wire::decode_message<Accept>(payload);
  auto it = instances_.find(msg.instance);
  if (it == instances_.end()) {
    instances_[msg.instance] = Instance{msg.command, msg.seq, msg.deps, Status::kAccepted};
  } else if (it->second.status == Status::kPreAccepted) {
    it->second.seq = msg.seq;
    it->second.deps = msg.deps;
    it->second.status = Status::kAccepted;
  }
  auto kt = key_table_.find(msg.command.key);
  if (kt == key_table_.end() || kt->second.second < msg.seq) {
    key_table_[msg.command.key] = {msg.instance, msg.seq};
  }
  send(from, AcceptReply{msg.instance});
}

void Replica::handle_accept_reply(const wire::Payload& payload) {
  const auto msg = wire::decode_message<AcceptReply>(payload);
  auto book_it = leading_.find(msg.instance);
  if (book_it == leading_.end()) return;
  LeaderBook& book = book_it->second;
  if (!book.in_accept_phase) return;
  if (++book.accept_replies + 1 < measure::majority(replicas_.size())) return;

  auto inst_it = instances_.find(msg.instance);
  if (inst_it == instances_.end()) return;
  ++slow_commits_;
  obs_slow_.inc();
  commit_instance(msg.instance, inst_it->second.command, book.seq, book.deps,
                  /*broadcast=*/true);
  send(book.client, ClientReply{inst_it->second.command.id});
  leading_.erase(book_it);
}

void Replica::handle_commit(const wire::Payload& payload) {
  const auto msg = wire::decode_message<Commit>(payload);
  commit_instance(msg.instance, msg.command, msg.seq, msg.deps, /*broadcast=*/false);
}

void Replica::commit_instance(const InstanceId& inst_id, const sm::Command& cmd,
                              std::uint64_t seq, const DepList& deps, bool broadcast) {
  auto it = instances_.find(inst_id);
  if (it == instances_.end()) {
    it = instances_.emplace(inst_id, Instance{cmd, seq, deps, Status::kCommitted}).first;
  } else {
    if (it->second.status == Status::kCommitted || it->second.status == Status::kExecuted) {
      return;  // idempotent
    }
    it->second.seq = seq;
    it->second.deps = deps;
    it->second.status = Status::kCommitted;
  }
  ++committed_;
  obs_committed_.inc();
  const auto qspan_it = quorum_spans_.find(inst_id);
  if (qspan_it != quorum_spans_.end()) {
    close_wait_span(qspan_it->second);
    quorum_spans_.erase(qspan_it);
  }
  if (broadcast) {
    Commit msg{inst_id, cmd, seq, deps};
    for (NodeId r : replicas_) {
      if (r != id()) send(r, msg);
    }
  }
  try_execute(inst_id);
  // Wake instances that were blocked on this commit.
  auto w = waiters_.find(inst_id);
  if (w != waiters_.end()) {
    const std::vector<InstanceId> blocked = std::move(w->second);
    waiters_.erase(w);
    for (const auto& b : blocked) {
      const auto dspan_it = dep_spans_.find(b);
      if (dspan_it != dep_spans_.end()) {
        close_wait_span(dspan_it->second);
        dep_spans_.erase(dspan_it);
      }
      try_execute(b);
    }
  }
}

void Replica::try_execute(const InstanceId& root) {
  auto it = instances_.find(root);
  if (it == instances_.end() || it->second.status != Status::kCommitted) return;
  execute_scc_from(root);
}

void Replica::execute_scc_from(const InstanceId& root) {
  // Iterative Tarjan over the committed dependency graph. Edges run from an
  // instance to its dependencies; executed instances are terminal. If any
  // reachable dependency is not yet committed, execution of `root` is
  // deferred until that dependency commits.
  struct NodeState {
    std::size_t index = 0;
    std::size_t lowlink = 0;
    bool on_stack = false;
  };
  std::unordered_map<InstanceId, NodeState> state;
  std::vector<InstanceId> stack;               // Tarjan stack
  std::vector<std::vector<InstanceId>> sccs;   // emitted in dependency-first order
  std::size_t next_index = 0;

  struct Frame {
    InstanceId node;
    std::size_t dep_cursor = 0;
  };
  std::vector<Frame> call_stack;
  call_stack.push_back({root, 0});
  state[root] = {next_index, next_index, true};
  ++next_index;
  stack.push_back(root);

  while (!call_stack.empty()) {
    Frame& frame = call_stack.back();
    Instance& inst = instances_.at(frame.node);
    if (frame.dep_cursor < inst.deps.size()) {
      const InstanceId dep = inst.deps[frame.dep_cursor++];
      auto dep_it = instances_.find(dep);
      if (dep_it == instances_.end() ||
          (dep_it->second.status != Status::kCommitted &&
           dep_it->second.status != Status::kExecuted)) {
        // Uncommitted dependency: defer the whole attempt.
        waiters_[dep].push_back(root);
        if (span_store() != nullptr && dep_spans_.find(root) == dep_spans_.end()) {
          if (const obs::SpanId s = open_wait_span("epaxos_dep_wait"); s != 0) {
            dep_spans_[root] = s;
          }
        }
        return;
      }
      if (dep_it->second.status == Status::kExecuted) continue;
      auto st = state.find(dep);
      if (st == state.end()) {
        state[dep] = {next_index, next_index, true};
        ++next_index;
        stack.push_back(dep);
        call_stack.push_back({dep, 0});
      } else if (st->second.on_stack) {
        auto& me = state.at(frame.node);
        me.lowlink = std::min(me.lowlink, st->second.index);
      }
      continue;
    }
    // Node finished: maybe emit an SCC.
    const NodeState me = state.at(frame.node);
    if (me.lowlink == me.index) {
      std::vector<InstanceId> scc;
      for (;;) {
        const InstanceId top = stack.back();
        stack.pop_back();
        state.at(top).on_stack = false;
        scc.push_back(top);
        if (top == frame.node) break;
      }
      sccs.push_back(std::move(scc));
    }
    const InstanceId finished = frame.node;
    call_stack.pop_back();
    if (!call_stack.empty()) {
      auto& parent = state.at(call_stack.back().node);
      parent.lowlink = std::min(parent.lowlink, state.at(finished).lowlink);
    }
  }

  // SCCs are emitted dependencies-first; execute each, ordering commands
  // within a component by (seq, instance id).
  for (auto& scc : sccs) {
    std::sort(scc.begin(), scc.end(), [this](const InstanceId& a, const InstanceId& b) {
      const Instance& ia = instances_.at(a);
      const Instance& ib = instances_.at(b);
      if (ia.seq != ib.seq) return ia.seq < ib.seq;
      return a < b;
    });
    for (const auto& inst_id : scc) {
      Instance& inst = instances_.at(inst_id);
      if (inst.status == Status::kExecuted) continue;
      inst.status = Status::kExecuted;
      ++executed_;
      obs_executed_.inc();
      store_.apply(inst.command);
      if (exec_hook_) exec_hook_(inst.command.id, true_now());
    }
  }
}

}  // namespace domino::epaxos
