// EPaxos wire messages (paper reference [26]).
//
// Commands are identified by (command leader, instance number). Dependencies
// are the interfering instances a command must be ordered after; with the
// key-value write workload, two commands interfere iff they write the same
// key (the paper's workload uses exactly this definition).
#pragma once

#include <vector>

#include "statemachine/command.h"
#include "wire/message.h"

namespace domino::epaxos {

struct InstanceId {
  NodeId replica;
  std::uint64_t seq = 0;  // per-replica instance counter

  constexpr auto operator<=>(const InstanceId&) const = default;

  [[nodiscard]] std::string to_string() const {
    return replica.to_string() + "." + std::to_string(seq);
  }

  void encode(wire::ByteWriter& w) const {
    w.node_id(replica);
    w.varint(seq);
  }
  static InstanceId decode(wire::ByteReader& r) {
    InstanceId id;
    id.replica = r.node_id();
    id.seq = r.varint();
    return id;
  }
};

using DepList = std::vector<InstanceId>;

inline void encode_deps(wire::ByteWriter& w, const DepList& deps) {
  w.varint(deps.size());
  for (const auto& d : deps) d.encode(w);
}

inline DepList decode_deps(wire::ByteReader& r) {
  DepList deps(r.length_prefix(5));
  for (auto& d : deps) d = InstanceId::decode(r);
  return deps;
}

struct ClientRequest {
  static constexpr wire::MessageType kType = wire::MessageType::kEpaxosClientRequest;
  sm::Command command;

  void encode(wire::ByteWriter& w) const { command.encode(w); }
  static ClientRequest decode(wire::ByteReader& r) { return {sm::Command::decode(r)}; }
};

struct PreAccept {
  static constexpr wire::MessageType kType = wire::MessageType::kEpaxosPreAccept;
  InstanceId instance;
  sm::Command command;
  std::uint64_t seq = 0;  // ordering sequence number, not the instance seq
  DepList deps;

  void encode(wire::ByteWriter& w) const {
    instance.encode(w);
    command.encode(w);
    w.varint(seq);
    encode_deps(w, deps);
  }
  static PreAccept decode(wire::ByteReader& r) {
    PreAccept m;
    m.instance = InstanceId::decode(r);
    m.command = sm::Command::decode(r);
    m.seq = r.varint();
    m.deps = decode_deps(r);
    return m;
  }
};

struct PreAcceptReply {
  static constexpr wire::MessageType kType = wire::MessageType::kEpaxosPreAcceptReply;
  InstanceId instance;
  std::uint64_t seq = 0;
  DepList deps;

  void encode(wire::ByteWriter& w) const {
    instance.encode(w);
    w.varint(seq);
    encode_deps(w, deps);
  }
  static PreAcceptReply decode(wire::ByteReader& r) {
    PreAcceptReply m;
    m.instance = InstanceId::decode(r);
    m.seq = r.varint();
    m.deps = decode_deps(r);
    return m;
  }
};

struct Accept {
  static constexpr wire::MessageType kType = wire::MessageType::kEpaxosAccept;
  InstanceId instance;
  sm::Command command;
  std::uint64_t seq = 0;
  DepList deps;

  void encode(wire::ByteWriter& w) const {
    instance.encode(w);
    command.encode(w);
    w.varint(seq);
    encode_deps(w, deps);
  }
  static Accept decode(wire::ByteReader& r) {
    Accept m;
    m.instance = InstanceId::decode(r);
    m.command = sm::Command::decode(r);
    m.seq = r.varint();
    m.deps = decode_deps(r);
    return m;
  }
};

struct AcceptReply {
  static constexpr wire::MessageType kType = wire::MessageType::kEpaxosAcceptReply;
  InstanceId instance;

  void encode(wire::ByteWriter& w) const { instance.encode(w); }
  static AcceptReply decode(wire::ByteReader& r) { return {InstanceId::decode(r)}; }
};

struct Commit {
  static constexpr wire::MessageType kType = wire::MessageType::kEpaxosCommit;
  InstanceId instance;
  sm::Command command;
  std::uint64_t seq = 0;
  DepList deps;

  void encode(wire::ByteWriter& w) const {
    instance.encode(w);
    command.encode(w);
    w.varint(seq);
    encode_deps(w, deps);
  }
  static Commit decode(wire::ByteReader& r) {
    Commit m;
    m.instance = InstanceId::decode(r);
    m.command = sm::Command::decode(r);
    m.seq = r.varint();
    m.deps = decode_deps(r);
    return m;
  }
};

struct ClientReply {
  static constexpr wire::MessageType kType = wire::MessageType::kEpaxosClientReply;
  RequestId request;

  void encode(wire::ByteWriter& w) const { w.request_id(request); }
  static ClientReply decode(wire::ByteReader& r) { return {r.request_id()}; }
};

}  // namespace domino::epaxos

template <>
struct std::hash<domino::epaxos::InstanceId> {
  std::size_t operator()(const domino::epaxos::InstanceId& id) const noexcept {
    return std::hash<std::uint64_t>{}(
        (static_cast<std::uint64_t>(id.replica.value()) << 40) ^ id.seq);
  }
};
