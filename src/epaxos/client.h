// EPaxos client: sends every request to a pre-configured (closest) replica,
// which acts as the command leader, and waits for that replica's reply.
#pragma once

#include "epaxos/messages.h"
#include "rpc/client_base.h"

namespace domino::epaxos {

class Client : public rpc::ClientBase {
 public:
  Client(NodeId id, std::size_t dc, net::Network& network, NodeId command_leader,
         sim::LocalClock clock = sim::LocalClock{})
      : rpc::ClientBase(id, dc, network, clock), leader_(command_leader) {}

  [[nodiscard]] NodeId command_leader() const { return leader_; }

 protected:
  void propose(const sm::Command& command) override { send(leader_, ClientRequest{command}); }

  void on_packet(const net::Packet& packet) override {
    if (wire::peek_type(packet.payload) != wire::MessageType::kEpaxosClientReply) return;
    const auto reply = wire::decode_message<ClientReply>(packet.payload);
    handle_committed(reply.request);
  }

 private:
  NodeId leader_;
};

}  // namespace domino::epaxos
