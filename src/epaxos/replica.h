// EPaxos replica.
//
// Any replica can lead a command. The command leader computes interference
// dependencies and a sequence number, pre-accepts on a fast quorum, and
// commits in one round trip when all replies agree (the fast path); when
// attributes conflict, it runs a second (Accept) round on a majority with
// the union of the reported attributes — "it may require an additional
// network roundtrip to commit conflicting operations" (paper Section 2).
//
// Execution linearizes the dependency graph: strongly connected components
// in reverse-topological order, commands within a component by (seq, id) —
// so non-interfering commands execute out of order, which is why EPaxos has
// the lowest low-percentile execution latency in Figure 10(a) and degrades
// under contention in Figure 10(b).
#pragma once

#include <functional>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "epaxos/messages.h"
#include "measure/quorum.h"
#include "recovery/durable.h"
#include "rpc/node.h"
#include "statemachine/kvstore.h"

namespace domino::epaxos {

/// EPaxos fast-quorum size (with the paper's optimized quorums):
/// f + floor((f+1)/2) replicas in total, including the command leader.
[[nodiscard]] constexpr std::size_t fast_quorum(std::size_t n) {
  const std::size_t f = measure::fault_tolerance(n);
  return f + (f + 1) / 2;
}
static_assert(fast_quorum(3) == 2);
static_assert(fast_quorum(5) == 3);

class Replica : public rpc::Node {
 public:
  using ExecuteHook = std::function<void(const RequestId&, TimePoint)>;

  Replica(NodeId id, std::size_t dc, net::Network& network, std::vector<NodeId> replicas,
          sim::LocalClock clock = sim::LocalClock{});

  void set_execute_hook(ExecuteHook hook) { exec_hook_ = std::move(hook); }

  /// Bind simulated durable storage: instance attributes are persisted
  /// before the replies/commits that externalize them, and the replica
  /// survives an amnesiac restart().
  void enable_durability(recovery::DurableStore& store);

  /// Amnesiac restart: wipe volatile state, replay the durable image
  /// (rebuilding the interference table and leader books), re-lead own
  /// uncommitted instances, and catch up from live peers.
  void restart();

  [[nodiscard]] bool catching_up() const { return catching_up_; }

  [[nodiscard]] const sm::KvStore& store() const { return store_; }
  [[nodiscard]] std::uint64_t committed_count() const { return committed_; }
  [[nodiscard]] std::uint64_t executed_count() const { return executed_; }
  [[nodiscard]] std::uint64_t fast_path_commits() const { return fast_commits_; }
  [[nodiscard]] std::uint64_t slow_path_commits() const { return slow_commits_; }

 protected:
  void on_packet(const net::Packet& packet) override;

 private:
  enum class Status : std::uint8_t { kPreAccepted, kAccepted, kCommitted, kExecuted };

  struct Instance {
    sm::Command command;
    std::uint64_t seq = 0;
    DepList deps;
    Status status = Status::kPreAccepted;
  };

  struct LeaderBook {
    std::uint64_t seq = 0;
    DepList deps;
    bool attributes_changed = false;
    // Ack sets (not counts): a restarted leader re-broadcasts its round, so
    // a peer may reply more than once and must not be counted twice.
    std::vector<NodeId> preaccept_acks;  // repliers, self excluded
    std::vector<NodeId> accept_acks;
    bool in_accept_phase = false;
    NodeId client;
  };

  void handle_client_request(const net::Packet& packet);
  void handle_preaccept(NodeId from, const wire::Payload& payload);
  void handle_preaccept_reply(NodeId from, const wire::Payload& payload);
  void handle_accept(NodeId from, const wire::Payload& payload);
  void handle_accept_reply(NodeId from, const wire::Payload& payload);
  void handle_commit(const wire::Payload& payload);
  void handle_catchup_request(NodeId from, const wire::Payload& payload);
  void handle_catchup_reply(const wire::Payload& payload);
  void send_catchup_requests();
  void finish_rejoin();

  /// Serialize an instance's attributes into a durable record body.
  [[nodiscard]] wire::Payload instance_record(const InstanceId& inst_id,
                                              const sm::Command& cmd, std::uint64_t seq,
                                              const DepList& deps, Status status,
                                              NodeId client) const;

  /// Compute (seq, deps) for `cmd` against the local interference table and
  /// record `inst` as the latest writer of its key.
  std::pair<std::uint64_t, DepList> attributes_for(const sm::Command& cmd,
                                                   const InstanceId& inst);

  void commit_instance(const InstanceId& inst, const sm::Command& cmd, std::uint64_t seq,
                       const DepList& deps, bool broadcast);
  void try_execute(const InstanceId& inst);
  void execute_scc_from(const InstanceId& root);

  std::vector<NodeId> replicas_;
  sm::KvStore store_;
  ExecuteHook exec_hook_;

  // Crash recovery.
  recovery::Persistor persistor_;
  bool catching_up_ = false;
  TimePoint recovery_started_at_ = TimePoint::epoch();

  std::unordered_map<InstanceId, Instance> instances_;
  std::unordered_map<InstanceId, LeaderBook> leading_;
  // Interference: latest instance per key, with its seq.
  std::unordered_map<std::string, std::pair<InstanceId, std::uint64_t>> key_table_;
  // Commit wakeups: uncommitted dep -> instances waiting on it.
  std::unordered_map<InstanceId, std::vector<InstanceId>> waiters_;
  std::unordered_map<InstanceId, obs::SpanId> quorum_spans_;  // leader quorum gathers
  std::unordered_map<InstanceId, obs::SpanId> dep_spans_;     // execution blocked on deps

  std::uint64_t next_instance_ = 0;
  std::uint64_t committed_ = 0;
  std::uint64_t executed_ = 0;
  std::uint64_t fast_commits_ = 0;
  std::uint64_t slow_commits_ = 0;

  obs::CounterHandle obs_preaccepts_;
  obs::CounterHandle obs_fast_;
  obs::CounterHandle obs_slow_;
  obs::CounterHandle obs_committed_;
  obs::CounterHandle obs_executed_;
};

}  // namespace domino::epaxos
