#include "statemachine/workload.h"

namespace domino::sm {

WorkloadGenerator::WorkloadGenerator(WorkloadConfig config, std::uint64_t seed)
    : config_(config), zipf_(config.num_keys, config.zipf_alpha), rng_(seed) {}

std::string WorkloadGenerator::fixed_width(std::uint64_t v, std::size_t width) const {
  std::string s = std::to_string(v);
  if (s.size() < width) {
    s.insert(s.begin(), width - s.size(), '0');
  } else if (s.size() > width) {
    s = s.substr(s.size() - width);
  }
  return s;
}

Command WorkloadGenerator::next(NodeId client) {
  Command c;
  c.id = RequestId{client, next_seq_++};
  c.key = fixed_width(zipf_.sample(rng_), config_.key_bytes);
  c.value = fixed_width(rng_.next_u64() % 100'000'000, config_.value_bytes);
  return c;
}

}  // namespace domino::sm
