#include "statemachine/kvstore.h"

namespace domino::sm {

std::optional<std::string> KvStore::apply(const Command& cmd) {
  ++applied_;
  auto it = data_.find(cmd.key);
  std::optional<std::string> previous;
  if (it != data_.end()) {
    previous = it->second;
    it->second = cmd.value;
  } else {
    data_.emplace(cmd.key, cmd.value);
  }
  return previous;
}

std::optional<std::string> KvStore::get(const std::string& key) const {
  auto it = data_.find(key);
  if (it == data_.end()) return std::nullopt;
  return it->second;
}

}  // namespace domino::sm
