#include "statemachine/kvstore.h"

namespace domino::sm {

std::optional<std::string> KvStore::apply(const Command& cmd) {
  ++applied_;
  auto it = data_.find(cmd.key);
  std::optional<std::string> previous;
  if (it != data_.end()) {
    previous = it->second;
    it->second = cmd.value;
  } else {
    data_.emplace(cmd.key, cmd.value);
  }
  return previous;
}

std::optional<std::string> KvStore::get(const std::string& key) const {
  auto it = data_.find(key);
  if (it == data_.end()) return std::nullopt;
  return it->second;
}

std::uint64_t KvStore::fingerprint() const {
  // FNV-1a per entry, combined with wrapping addition so the result does
  // not depend on the unordered_map's iteration order.
  std::uint64_t total = 0;
  for (const auto& [key, value] : data_) {
    std::uint64_t h = 0xcbf29ce484222325ull;
    auto mix = [&h](const std::string& s) {
      for (unsigned char c : s) {
        h ^= c;
        h *= 0x100000001b3ull;
      }
      h ^= 0xff;  // separator so ("ab","c") != ("a","bc")
      h *= 0x100000001b3ull;
    };
    mix(key);
    mix(value);
    total += h;
  }
  return total;
}

}  // namespace domino::sm
