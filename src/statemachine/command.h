// Client commands applied to the replicated state machine.
//
// The evaluation workload is the EPaxos key-value write workload the paper
// mirrors (Section 7.1): 8-byte keys, 8-byte values, write-only.
#pragma once

#include <compare>
#include <string>

#include "common/ids.h"
#include "wire/codec.h"

namespace domino::sm {

struct Command {
  RequestId id;
  std::string key;
  std::string value;

  auto operator<=>(const Command&) const = default;

  [[nodiscard]] bool conflicts_with(const Command& other) const { return key == other.key; }

  void encode(wire::ByteWriter& w) const {
    w.request_id(id);
    w.str(key);
    w.str(value);
  }
  static Command decode(wire::ByteReader& r) {
    Command c;
    c.id = r.request_id();
    c.key = r.str();
    c.value = r.str();
    return c;
  }
};

}  // namespace domino::sm
