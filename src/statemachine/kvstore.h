// In-memory key-value store: the replicated state machine.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>

#include "statemachine/command.h"

namespace domino::sm {

class KvStore {
 public:
  /// Apply a write; returns the previous value if any.
  std::optional<std::string> apply(const Command& cmd);

  [[nodiscard]] std::optional<std::string> get(const std::string& key) const;

  [[nodiscard]] std::size_t size() const { return data_.size(); }
  [[nodiscard]] std::uint64_t applied_count() const { return applied_; }

  /// Full contents; used by consistency checks in tests.
  [[nodiscard]] const std::unordered_map<std::string, std::string>& items() const {
    return data_;
  }

  /// Order-independent content hash: equal iff two stores hold the same
  /// key/value pairs, regardless of insertion order or duplicate applies.
  /// The chaos harness compares replica fingerprints for convergence.
  [[nodiscard]] std::uint64_t fingerprint() const;

  /// Replace the entire contents with a peer's executed-state snapshot
  /// (crash recovery catch-up). `applied` is the peer's applied-command
  /// count at snapshot time, adopted so applied_count() stays comparable
  /// across replicas after an amnesiac restart.
  void install_snapshot(std::unordered_map<std::string, std::string> items,
                        std::uint64_t applied) {
    data_ = std::move(items);
    applied_ = applied;
  }

 private:
  std::unordered_map<std::string, std::string> data_;
  std::uint64_t applied_ = 0;
};

}  // namespace domino::sm
