// In-memory key-value store: the replicated state machine.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>

#include "statemachine/command.h"

namespace domino::sm {

class KvStore {
 public:
  /// Apply a write; returns the previous value if any.
  std::optional<std::string> apply(const Command& cmd);

  [[nodiscard]] std::optional<std::string> get(const std::string& key) const;

  [[nodiscard]] std::size_t size() const { return data_.size(); }
  [[nodiscard]] std::uint64_t applied_count() const { return applied_; }

  /// Full contents; used by consistency checks in tests.
  [[nodiscard]] const std::unordered_map<std::string, std::string>& items() const {
    return data_;
  }

  /// Order-independent content hash: equal iff two stores hold the same
  /// key/value pairs, regardless of insertion order or duplicate applies.
  /// The chaos harness compares replica fingerprints for convergence.
  [[nodiscard]] std::uint64_t fingerprint() const;

 private:
  std::unordered_map<std::string, std::string> data_;
  std::uint64_t applied_ = 0;
};

}  // namespace domino::sm
