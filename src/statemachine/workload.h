// Workload generation, mirroring the paper's Section 7.1 settings: one
// million key-value pairs, 8 B keys and values (16 B requests), write-only,
// keys drawn from a Zipfian distribution (alpha 0.75 by default, 0.95 for
// the high-contention runs).
#pragma once

#include <cstdint>

#include "common/rng.h"
#include "common/zipf.h"
#include "statemachine/command.h"

namespace domino::sm {

struct WorkloadConfig {
  std::uint64_t num_keys = 1'000'000;
  double zipf_alpha = 0.75;
  std::size_t key_bytes = 8;
  std::size_t value_bytes = 8;
};

class WorkloadGenerator {
 public:
  WorkloadGenerator(WorkloadConfig config, std::uint64_t seed);

  /// Next write command for the given client.
  [[nodiscard]] Command next(NodeId client);

  [[nodiscard]] const WorkloadConfig& config() const { return config_; }

 private:
  [[nodiscard]] std::string fixed_width(std::uint64_t v, std::size_t width) const;

  WorkloadConfig config_;
  ZipfGenerator zipf_;
  Rng rng_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace domino::sm
