#include "measure/proxy.h"

namespace domino::measure {

void ProxyReport::encode(wire::ByteWriter& w) const {
  w.u64(static_cast<std::uint64_t>(percentile * 100));
  w.varint(entries.size());
  for (const Entry& e : entries) {
    w.node_id(e.replica);
    w.duration(e.rtt);
    w.duration(e.owd);
    w.duration(e.replication_latency);
    w.boolean(e.failed);
    w.boolean(e.stale);
  }
}

ProxyReport ProxyReport::decode(wire::ByteReader& r) {
  ProxyReport report;
  report.percentile = static_cast<double>(r.u64()) / 100.0;
  report.entries.resize(r.length_prefix(8));
  for (Entry& e : report.entries) {
    e.replica = r.node_id();
    e.rtt = r.duration();
    e.owd = r.duration();
    e.replication_latency = r.duration();
    e.failed = r.boolean();
    e.stale = r.boolean();
  }
  return report;
}

Proxy::Proxy(NodeId id, std::size_t dc, net::Network& network, std::vector<NodeId> replicas,
             ProberConfig config, sim::LocalClock clock)
    : rpc::Node(id, dc, network, clock),
      replicas_(std::move(replicas)),
      prober_(*this, replicas_, config) {}

ProxyReport Proxy::snapshot() const {
  ProxyReport report;
  report.percentile = prober_.config().percentile;
  for (NodeId r : replicas_) {
    ProxyReport::Entry e;
    e.replica = r;
    e.failed = prober_.looks_failed(r);
    e.stale = prober_.is_stale(r);
    if (!e.failed) {
      e.rtt = prober_.rtt_estimate(r);
      e.owd = prober_.owd_estimate(r);
      e.replication_latency = prober_.replication_latency_of(r);
    }
    report.entries.push_back(e);
  }
  return report;
}

void Proxy::on_packet(const net::Packet& packet) {
  switch (wire::peek_type(packet.payload)) {
    case wire::MessageType::kProbeReply:
      prober_.on_probe_reply(packet.src,
                             wire::decode_message<ProbeReply>(packet.payload));
      break;
    case wire::MessageType::kProxyQuery:
      ++queries_served_;
      send(packet.src, snapshot());
      break;
    default:
      break;
  }
}

void ProxyFeed::update(const ProxyReport& report) {
  percentile_ = report.percentile;
  for (const auto& e : report.entries) table_[e.replica] = e;
  last_update_ = owner_.true_now();
  ever_updated_ = true;
  ++updates_;
}

bool ProxyFeed::fresh() const {
  return ever_updated_ && owner_.true_now() - last_update_ <= staleness_;
}

Duration ProxyFeed::rtt_estimate(NodeId target, double) const {
  if (!fresh()) return Duration::max();
  auto it = table_.find(target);
  return it == table_.end() || it->second.failed ? Duration::max() : it->second.rtt;
}

Duration ProxyFeed::owd_estimate(NodeId target, double) const {
  if (!fresh()) return Duration::max();
  auto it = table_.find(target);
  return it == table_.end() || it->second.failed ? Duration::max() : it->second.owd;
}

Duration ProxyFeed::replication_latency_of(NodeId target) const {
  if (!fresh()) return Duration::max();
  auto it = table_.find(target);
  return it == table_.end() || it->second.failed ? Duration::max()
                                                 : it->second.replication_latency;
}

bool ProxyFeed::looks_failed(NodeId target) const {
  if (!fresh()) return true;
  auto it = table_.find(target);
  return it == table_.end() || it->second.failed;
}

bool ProxyFeed::is_stale(NodeId target) const {
  if (!fresh()) return true;
  auto it = table_.find(target);
  return it == table_.end() || it->second.stale;
}

}  // namespace domino::measure
