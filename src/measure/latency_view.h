// Abstract source of per-replica latency estimates.
//
// Implemented by Prober (a node measuring for itself) and ProxyFeed (a node
// consuming a co-located proxy's measurements, Section 5.6: "If there are
// many clients in one datacenter, we can reduce the number of probing
// messages by having one dedicated proxy to measure and estimate the
// network delays to replicas").
#pragma once

#include "common/ids.h"
#include "common/time.h"

namespace domino::measure {

class LatencyView {
 public:
  virtual ~LatencyView() = default;

  /// p-th percentile RTT estimate to `target`, Duration::max() if unknown
  /// or failed.
  [[nodiscard]] virtual Duration rtt_estimate(NodeId target, double percentile) const = 0;

  /// p-th percentile arrival-offset (one-way delay + clock skew) estimate.
  [[nodiscard]] virtual Duration owd_estimate(NodeId target, double percentile) const = 0;

  /// Latest replication-latency estimate L_r advertised by `target`.
  [[nodiscard]] virtual Duration replication_latency_of(NodeId target) const = 0;

  [[nodiscard]] virtual bool looks_failed(NodeId target) const = 0;

  /// True when the estimate for `target` has gone stale: the measurement
  /// feed has not heard from it recently enough to trust the numbers, even
  /// though the (longer) failure timeout may not have fired yet. Consumers
  /// choosing a leader should skip stale targets (the fault-tolerance
  /// heuristic of Section 5.8). Defaults to the failure heuristic for views
  /// without a finer-grained freshness signal.
  [[nodiscard]] virtual bool is_stale(NodeId target) const { return looks_failed(target); }

  /// The default percentile this view was configured with.
  [[nodiscard]] virtual double default_percentile() const = 0;

  [[nodiscard]] Duration rtt_estimate(NodeId target) const {
    return rtt_estimate(target, default_percentile());
  }
  [[nodiscard]] Duration owd_estimate(NodeId target) const {
    return owd_estimate(target, default_percentile());
  }
};

}  // namespace domino::measure
