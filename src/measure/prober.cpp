#include "measure/prober.h"

namespace domino::measure {

Prober::Prober(rpc::Node& owner, std::vector<NodeId> targets, ProberConfig config)
    : owner_(owner),
      targets_(std::move(targets)),
      config_(config),
      calibration_(owner.id(), targets_) {
  obs_probes_sent_ = owner_.obs_sink().counter("measure.probes_sent");
  obs_probe_replies_ = owner_.obs_sink().counter("measure.probe_replies");
  obs_calib_margin_ = owner_.obs_sink().histogram("calib.owd_margin_ns");
  obs_calib_overshoot_ = owner_.obs_sink().histogram("calib.owd_overshoot_ns");
  for (NodeId t : targets_) {
    auto [it, inserted] = state_.emplace(t, TargetState{config_.window});
    if (!inserted || t == owner_.id()) continue;
    // Per-series coverage counters, named like the per-link net metrics.
    const std::string series = owner_.id().to_string() + "->" + t.to_string();
    it->second.obs_calib_samples =
        owner_.obs_sink().counter("calib." + series + ".samples");
    it->second.obs_calib_covered =
        owner_.obs_sink().counter("calib." + series + ".covered");
  }
}

void Prober::start() {
  started_ = owner_.true_now();
  ever_started_ = true;
  timer_.start(owner_.context(), Duration::zero(), config_.probe_interval,
               [this] { send_probes(); });
}

void Prober::stop() { timer_.stop(); }

void Prober::send_probes() {
  const std::uint64_t seq = next_seq_++;
  for (NodeId t : targets_) {
    if (t == owner_.id()) continue;
    Probe p;
    p.seq = seq;
    p.sender_local_time = owner_.local_now();
    owner_.send(t, p);
    ++probes_sent_;
    obs_probes_sent_.inc();
    if (owner_.obs_sink().tracing()) {
      owner_.obs_sink().record(obs::TraceEvent{.at = owner_.true_now(),
                                               .kind = obs::EventKind::kProbeSend,
                                               .node = owner_.id(),
                                               .peer = t,
                                               .value = static_cast<std::int64_t>(seq)});
    }
  }
}

void Prober::on_probe_reply(NodeId from, const ProbeReply& reply) {
  auto it = state_.find(from);
  if (it == state_.end()) return;
  TargetState& ts = it->second;
  const TimePoint local_now = owner_.local_now();
  const Duration realized_owd = reply.replica_local_time - reply.echo_sender_local_time;
  // Calibration: score the realized arrival offset against the percentile
  // prediction the window held *before* this sample is folded in — exactly
  // the prediction a DFP timestamp stamped "now" would have used.
  if (const auto predicted = ts.owd.percentile(local_now, config_.percentile)) {
    calibration_.record(from, *predicted, realized_owd);
    const std::int64_t margin = (*predicted - realized_owd).nanos();
    ts.obs_calib_samples.inc();
    if (margin >= 0) {
      ts.obs_calib_covered.inc();
      obs_calib_margin_.record(margin);
    } else {
      obs_calib_overshoot_.record(-margin);
    }
  }
  ts.rtt.add(local_now, local_now - reply.echo_sender_local_time);
  ts.owd.add(local_now, realized_owd);
  ts.replication_latency = reply.replication_latency;
  ts.last_reply_true_time = owner_.true_now();
  ts.ever_replied = true;
  obs_probe_replies_.inc();
  if (owner_.obs_sink().tracing()) {
    owner_.obs_sink().record(
        obs::TraceEvent{.at = owner_.true_now(),
                        .kind = obs::EventKind::kProbeRecv,
                        .node = owner_.id(),
                        .peer = from,
                        .value = (local_now - reply.echo_sender_local_time).nanos()});
  }
}

ProbeReply Prober::make_reply(const Probe& probe, TimePoint replica_local_now,
                              Duration replication_latency) {
  ProbeReply r;
  r.seq = probe.seq;
  r.echo_sender_local_time = probe.sender_local_time;
  r.replica_local_time = replica_local_now;
  r.replication_latency = replication_latency;
  return r;
}

bool Prober::looks_failed(NodeId target) const {
  auto it = state_.find(target);
  if (it == state_.end()) return true;
  const TargetState& ts = it->second;
  if (!ts.ever_replied) {
    // A target that has never answered only counts as failed once probing
    // has been running long enough for a reply to be overdue.
    return ever_started_ && owner_.true_now() - started_ > config_.failure_timeout;
  }
  return owner_.true_now() - ts.last_reply_true_time > config_.failure_timeout;
}

bool Prober::is_stale(NodeId target) const {
  if (target == owner_.id()) return false;
  auto it = state_.find(target);
  if (it == state_.end()) return true;
  const Duration stale_after =
      config_.probe_interval * static_cast<std::int64_t>(config_.stale_after_intervals);
  const TargetState& ts = it->second;
  if (!ts.ever_replied) {
    return ever_started_ && owner_.true_now() - started_ > stale_after;
  }
  return owner_.true_now() - ts.last_reply_true_time > stale_after;
}

Duration Prober::rtt_estimate(NodeId target, double percentile) const {
  if (target == owner_.id()) return Duration::zero();
  auto it = state_.find(target);
  if (it == state_.end() || looks_failed(target)) return Duration::max();
  const auto v = it->second.rtt.percentile(owner_.local_now(), percentile);
  return v ? *v : Duration::max();
}

Duration Prober::owd_estimate(NodeId target, double percentile) const {
  if (target == owner_.id()) return Duration::zero();
  auto it = state_.find(target);
  if (it == state_.end() || looks_failed(target)) return Duration::max();
  const auto v = it->second.owd.percentile(owner_.local_now(), percentile);
  return v ? *v : Duration::max();
}

Duration Prober::replication_latency_of(NodeId target) const {
  auto it = state_.find(target);
  if (it == state_.end()) return Duration::max();
  return it->second.replication_latency;
}

}  // namespace domino::measure
