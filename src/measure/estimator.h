// Commit-latency and arrival-time estimators (paper Sections 5.4 and 5.6).
//
// Pure functions over the prober's per-replica estimates:
//   - LatDFP  = D_q, the q-th smallest client->replica RTT (q = supermajority),
//   - L_r     = D_m of a replica's RTTs to every replica with self = 0
//               (m = majority) — the leader's replication latency,
//   - LatDM   = min_r (E_r + L_r),
//   - DFP request timestamps = local_now + q-th smallest predicted arrival
//     offset + additional delay.
#pragma once

#include <vector>

#include "common/ids.h"
#include "common/time.h"
#include "measure/latency_view.h"
#include "measure/quorum.h"

namespace domino::measure {

/// q-th smallest element of `delays` (1-based q). Returns Duration::max()
/// when q exceeds the number of entries.
[[nodiscard]] Duration kth_smallest(std::vector<Duration> delays, std::size_t q);

/// Estimated DFP commit latency: the RTT to the furthest replica in the
/// closest supermajority (Section 5.6).
[[nodiscard]] Duration estimate_dfp_latency(const LatencyView& view,
                                            const std::vector<NodeId>& replicas);

/// A replica's replication latency when acting as a DM leader: the m-th
/// smallest of its RTTs to all replicas, with the delay to itself zero.
[[nodiscard]] Duration estimate_replication_latency(const LatencyView& view, NodeId self,
                                                    const std::vector<NodeId>& replicas);

struct DmEstimate {
  Duration latency = Duration::max();
  NodeId leader;  // the replica achieving the minimum
};

/// Estimated DM commit latency and the leader to use: min over replicas of
/// (client->replica RTT + piggybacked L_r). Replicas whose measurement feed
/// is stale (LatencyView::is_stale) are never chosen.
[[nodiscard]] DmEstimate estimate_dm_latency(const LatencyView& view,
                                             const std::vector<NodeId>& replicas);

/// DFP request timestamp (Section 5.4): the client's local now plus the
/// q-th smallest per-replica predicted arrival offset (OWD + skew, at the
/// prober's configured percentile), plus `additional_delay` (the Figure 9 /
/// Figure 11 knob).
[[nodiscard]] TimePoint dfp_request_timestamp(const LatencyView& view, TimePoint local_now,
                                              const std::vector<NodeId>& replicas,
                                              Duration additional_delay);

}  // namespace domino::measure
