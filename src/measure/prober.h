// Network prober: the measurement component embedded in every Domino
// client and replica.
//
// Every `interval` (default 10 ms) the prober sends a Probe to each target
// replica. From each reply it records:
//   - the round-trip time (reply receipt - probe send, on the prober's
//     clock), and
//   - the "arrival offset": replica_local_time - probe send time, i.e. the
//     one-way delay *including clock skew* — exactly the quantity Section
//     5.4 uses to predict request arrival times ("our arrival time
//     measurements include both network delays and clock skew").
//
// Both series feed sliding-window percentile estimators (default window
// 1 s, default percentile p95). The prober also tracks the replication-
// latency estimate L_r piggybacked on each reply, and the last time each
// target answered (for the failure heuristic of Section 5.8: unresponsive
// replicas are predicted to have very large delays).
#pragma once

#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "common/time.h"
#include "common/window_estimator.h"
#include "measure/latency_view.h"
#include "measure/messages.h"
#include "obs/calibration.h"
#include "rpc/node.h"

namespace domino::measure {

struct ProberConfig {
  Duration probe_interval = milliseconds(10);
  Duration window = seconds(1);
  double percentile = 95.0;
  /// A target that has not answered for this long is considered failed and
  /// reported with Duration::max() estimates.
  Duration failure_timeout = milliseconds(500);
  /// A target that has not answered for this many probe intervals is marked
  /// *stale* (LatencyView::is_stale) well before the failure timeout fires:
  /// its estimates still exist but consumers should stop trusting the link
  /// (e.g. the Domino client skips stale DM leaders).
  std::size_t stale_after_intervals = 3;
};

class Prober final : public LatencyView {
 public:
  /// @param owner the node this prober lives in (used for clock + sends).
  Prober(rpc::Node& owner, std::vector<NodeId> targets, ProberConfig config);

  /// Begin periodic probing.
  void start();
  void stop();

  /// The owner's dispatch must route kProbeReply packets here.
  void on_probe_reply(NodeId from, const ProbeReply& reply);

  /// Build the reply a *replica* sends when probed; `replication_latency`
  /// is the replica's current L_r (zero for plain clients acting as
  /// responders in tests).
  static ProbeReply make_reply(const Probe& probe, TimePoint replica_local_now,
                               Duration replication_latency);

  /// p-th percentile RTT estimate to `target` within the window, or
  /// Duration::max() if the target looks failed / was never measured.
  [[nodiscard]] Duration rtt_estimate(NodeId target, double percentile) const override;
  using LatencyView::rtt_estimate;

  /// p-th percentile arrival-offset (OWD + skew) estimate.
  [[nodiscard]] Duration owd_estimate(NodeId target, double percentile) const override;
  using LatencyView::owd_estimate;

  /// Latest piggybacked replication-latency estimate from `target`.
  [[nodiscard]] Duration replication_latency_of(NodeId target) const override;

  [[nodiscard]] bool looks_failed(NodeId target) const override;

  /// No reply for `stale_after_intervals` probe intervals (Section 5.8's
  /// fast "stop trusting this link" signal; fires before failure_timeout).
  [[nodiscard]] bool is_stale(NodeId target) const override;

  [[nodiscard]] double default_percentile() const override { return config_.percentile; }

  [[nodiscard]] const std::vector<NodeId>& targets() const { return targets_; }
  [[nodiscard]] const ProberConfig& config() const { return config_; }

  /// Total probes sent (tests / overhead accounting, Section 5.6 discusses
  /// probe traffic growth).
  [[nodiscard]] std::uint64_t probes_sent() const { return probes_sent_; }

  /// Per-target estimator calibration: each probe reply's realized arrival
  /// offset is checked against the percentile prediction the window held
  /// just before the sample arrived. Coverage near the configured
  /// percentile means the arrival predictor is honest; systematic
  /// under-coverage on a target is the miscalibration the prediction audit
  /// (obs/predict.h) blames for blown DFP deadlines.
  [[nodiscard]] const obs::Calibration& calibration() const { return calibration_; }

 private:
  void send_probes();

  struct TargetState {
    WindowEstimator rtt;
    WindowEstimator owd;
    Duration replication_latency = Duration::zero();
    TimePoint last_reply_true_time = TimePoint::epoch();
    bool ever_replied = false;
    obs::CounterHandle obs_calib_samples;
    obs::CounterHandle obs_calib_covered;
    explicit TargetState(Duration window) : rtt(window), owd(window) {}
  };

  rpc::Node& owner_;
  std::vector<NodeId> targets_;
  ProberConfig config_;
  obs::Calibration calibration_;
  obs::CounterHandle obs_probes_sent_;
  obs::CounterHandle obs_probe_replies_;
  obs::HistogramHandle obs_calib_margin_;
  obs::HistogramHandle obs_calib_overshoot_;
  std::unordered_map<NodeId, TargetState> state_;
  rpc::RepeatingTimer timer_;
  TimePoint started_;
  bool ever_started_ = false;
  std::uint64_t next_seq_ = 0;
  std::uint64_t probes_sent_ = 0;
};

}  // namespace domino::measure
