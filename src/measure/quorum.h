// Quorum arithmetic shared by every protocol in the repository.
//
// With n = 2f + 1 replicas (the deployment model throughout the paper):
//   - a majority quorum is f + 1 replicas,
//   - a Fast Paxos supermajority ("fast quorum") is ceil(3f/2) + 1 replicas
//     (paper footnote 1).
#pragma once

#include <cstddef>

namespace domino::measure {

/// Number of simultaneous failures tolerated by n = 2f + 1 replicas.
[[nodiscard]] constexpr std::size_t fault_tolerance(std::size_t n) { return (n - 1) / 2; }

[[nodiscard]] constexpr std::size_t majority(std::size_t n) { return fault_tolerance(n) + 1; }

/// ceil(3f/2) + 1 out of n = 2f + 1.
[[nodiscard]] constexpr std::size_t supermajority(std::size_t n) {
  const std::size_t f = fault_tolerance(n);
  return (3 * f + 1) / 2 + 1;
}

static_assert(majority(3) == 2 && supermajority(3) == 3);
static_assert(majority(5) == 3 && supermajority(5) == 4);
static_assert(majority(7) == 4 && supermajority(7) == 6);
static_assert(majority(9) == 5 && supermajority(9) == 7);

}  // namespace domino::measure
