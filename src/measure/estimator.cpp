#include "measure/estimator.h"

#include <algorithm>

namespace domino::measure {

Duration kth_smallest(std::vector<Duration> delays, std::size_t q) {
  if (q == 0 || q > delays.size()) return Duration::max();
  std::nth_element(delays.begin(), delays.begin() + static_cast<std::ptrdiff_t>(q - 1),
                   delays.end());
  return delays[q - 1];
}

Duration estimate_dfp_latency(const LatencyView& view, const std::vector<NodeId>& replicas) {
  std::vector<Duration> rtts;
  rtts.reserve(replicas.size());
  for (NodeId r : replicas) rtts.push_back(view.rtt_estimate(r));
  return kth_smallest(std::move(rtts), supermajority(replicas.size()));
}

Duration estimate_replication_latency(const LatencyView& view, NodeId self,
                                      const std::vector<NodeId>& replicas) {
  std::vector<Duration> rtts;
  rtts.reserve(replicas.size());
  for (NodeId r : replicas) {
    rtts.push_back(r == self ? Duration::zero() : view.rtt_estimate(r));
  }
  return kth_smallest(std::move(rtts), majority(replicas.size()));
}

DmEstimate estimate_dm_latency(const LatencyView& view, const std::vector<NodeId>& replicas) {
  DmEstimate best;
  for (NodeId r : replicas) {
    // A stale feed means the replica (or the path to it) has gone quiet;
    // never pick it as a DM leader (Section 5.8's failure heuristic).
    if (view.is_stale(r)) continue;
    const Duration er = view.rtt_estimate(r);
    const Duration lr = view.replication_latency_of(r);
    if (er == Duration::max() || lr == Duration::max()) continue;
    const Duration total = er + lr;
    if (total < best.latency) {
      best.latency = total;
      best.leader = r;
    }
  }
  return best;
}

TimePoint dfp_request_timestamp(const LatencyView& view, TimePoint local_now,
                                const std::vector<NodeId>& replicas,
                                Duration additional_delay) {
  std::vector<Duration> offsets;
  offsets.reserve(replicas.size());
  for (NodeId r : replicas) offsets.push_back(view.owd_estimate(r));
  const Duration q_offset = kth_smallest(std::move(offsets), supermajority(replicas.size()));
  if (q_offset == Duration::max()) return TimePoint::max();
  return local_now + q_offset + additional_delay;
}

}  // namespace domino::measure
