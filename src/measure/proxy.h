// Measurement proxy (paper Section 5.6).
//
// "If there are many clients in one datacenter, we can reduce the number of
// probing messages by having one dedicated proxy to measure and estimate
// the network delays to replicas. A client (or a replica) in the datacenter
// can query the proxy for delay estimation."
//
// Proxy: a node that probes every replica and answers ProxyQuery messages
// with a snapshot of its per-replica estimates (RTT and arrival-offset at
// its configured percentile, the piggybacked L_r, and a failure flag).
//
// ProxyFeed: the client-side LatencyView backed by those snapshots. The
// co-location assumption matters: the proxy's arrival-offset estimates
// embed the *proxy's* clock, so clients sharing its datacenter (and its
// NTP source) inherit predictions that are off by only the intra-DC skew.
#pragma once

#include <unordered_map>
#include <vector>

#include "measure/latency_view.h"
#include "measure/prober.h"
#include "rpc/node.h"
#include "wire/message.h"

namespace domino::measure {

struct ProxyQuery {
  static constexpr wire::MessageType kType = wire::MessageType::kProxyQuery;
  void encode(wire::ByteWriter&) const {}
  static ProxyQuery decode(wire::ByteReader&) { return {}; }
};

struct ProxyReport {
  static constexpr wire::MessageType kType = wire::MessageType::kProxyReport;

  struct Entry {
    NodeId replica;
    Duration rtt = Duration::max();
    Duration owd = Duration::max();
    Duration replication_latency = Duration::max();
    bool failed = true;
    bool stale = true;  // proxy's prober has not heard from it recently
  };
  double percentile = 95.0;
  std::vector<Entry> entries;

  void encode(wire::ByteWriter& w) const;
  static ProxyReport decode(wire::ByteReader& r);
};

/// A dedicated measurement node: one per datacenter instead of one prober
/// per client. Sends (2f+1)R probes per second total, independent of the
/// client count.
class Proxy : public rpc::Node {
 public:
  Proxy(NodeId id, std::size_t dc, net::Network& network, std::vector<NodeId> replicas,
        ProberConfig config = {}, sim::LocalClock clock = sim::LocalClock{});

  void start() { prober_.start(); }

  [[nodiscard]] const Prober& prober() const { return prober_; }
  [[nodiscard]] std::uint64_t queries_served() const { return queries_served_; }

  /// Build the snapshot a query gets right now.
  [[nodiscard]] ProxyReport snapshot() const;

 protected:
  void on_packet(const net::Packet& packet) override;

 private:
  std::vector<NodeId> replicas_;
  Prober prober_;
  std::uint64_t queries_served_ = 0;
};

/// Client-side view over proxy snapshots. Percentile arguments are ignored
/// in favour of the proxy's configured percentile (which the snapshot was
/// computed at).
class ProxyFeed final : public LatencyView {
 public:
  /// @param owner used for time (staleness checks).
  /// @param staleness a snapshot older than this marks all targets failed.
  ProxyFeed(rpc::Node& owner, Duration staleness = milliseconds(500))
      : owner_(owner), staleness_(staleness) {}

  void update(const ProxyReport& report);

  [[nodiscard]] Duration rtt_estimate(NodeId target, double percentile) const override;
  [[nodiscard]] Duration owd_estimate(NodeId target, double percentile) const override;
  [[nodiscard]] Duration replication_latency_of(NodeId target) const override;
  [[nodiscard]] bool looks_failed(NodeId target) const override;
  /// Stale when the snapshot itself is old, or the proxy's own prober
  /// flagged the replica stale in the last report.
  [[nodiscard]] bool is_stale(NodeId target) const override;
  [[nodiscard]] double default_percentile() const override { return percentile_; }

  [[nodiscard]] bool fresh() const;
  [[nodiscard]] std::uint64_t updates_received() const { return updates_; }

 private:
  rpc::Node& owner_;
  Duration staleness_;
  double percentile_ = 95.0;
  std::unordered_map<NodeId, ProxyReport::Entry> table_;
  TimePoint last_update_;
  bool ever_updated_ = false;
  std::uint64_t updates_ = 0;
};

}  // namespace domino::measure
