// Measurement-plane messages.
//
// Clients and replicas periodically probe every replica (paper Section 5.6,
// default interval 10 ms). The reply carries the replica's local timestamp
// (for the one-way-delay technique of Section 5.4) and piggybacks the
// replica's current replication-latency estimate L_r (used by clients to
// estimate DM commit latency).
#pragma once

#include "common/ids.h"
#include "common/time.h"
#include "wire/message.h"

namespace domino::measure {

struct Probe {
  static constexpr wire::MessageType kType = wire::MessageType::kProbe;

  std::uint64_t seq = 0;
  TimePoint sender_local_time;  // the prober's clock when it sent this

  void encode(wire::ByteWriter& w) const {
    w.varint(seq);
    w.time_point(sender_local_time);
  }
  static Probe decode(wire::ByteReader& r) {
    Probe p;
    p.seq = r.varint();
    p.sender_local_time = r.time_point();
    return p;
  }
};

struct ProbeReply {
  static constexpr wire::MessageType kType = wire::MessageType::kProbeReply;

  std::uint64_t seq = 0;
  TimePoint echo_sender_local_time;  // copied from the probe
  TimePoint replica_local_time;      // replica's clock on receipt
  Duration replication_latency;      // the replica's L_r estimate (Section 5.6)

  void encode(wire::ByteWriter& w) const {
    w.varint(seq);
    w.time_point(echo_sender_local_time);
    w.time_point(replica_local_time);
    w.duration(replication_latency);
  }
  static ProbeReply decode(wire::ByteReader& r) {
    ProbeReply p;
    p.seq = r.varint();
    p.echo_sender_local_time = r.time_point();
    p.replica_local_time = r.time_point();
    p.replication_latency = r.duration();
    return p;
  }
};

}  // namespace domino::measure
