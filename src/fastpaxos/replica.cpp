#include "fastpaxos/replica.h"

#include <algorithm>
#include <stdexcept>

namespace domino::fastpaxos {

Replica::Replica(NodeId id, std::size_t dc, net::Network& network,
                 std::vector<NodeId> replicas, NodeId coordinator,
                 Duration recovery_timeout, sim::LocalClock clock)
    : rpc::Node(id, dc, network, clock),
      replicas_(std::move(replicas)),
      coordinator_(coordinator),
      recovery_timeout_(recovery_timeout) {
  if (std::find(replicas_.begin(), replicas_.end(), id) == replicas_.end()) {
    throw std::invalid_argument("fastpaxos::Replica: id not in replica set");
  }
  obs_accepts_ = obs_sink().counter("fastpaxos.accepts");
  obs_fast_ = obs_sink().counter("fastpaxos.fast_commits");
  obs_slow_ = obs_sink().counter("fastpaxos.slow_commits");
  obs_executed_ = obs_sink().counter("fastpaxos.executed");
}

void Replica::on_packet(const net::Packet& packet) {
  switch (wire::peek_type(packet.payload)) {
    case wire::MessageType::kFastPaxosClientRequest:
      handle_client_request(packet);
      break;
    case wire::MessageType::kFastPaxosAcceptNotice:
      handle_accept_notice(packet.src, packet.payload);
      break;
    case wire::MessageType::kFastPaxosRecoveryAccept:
      handle_recovery_accept(packet.src, packet.payload);
      break;
    case wire::MessageType::kFastPaxosRecoveryReply:
      handle_recovery_reply(packet.payload);
      break;
    case wire::MessageType::kFastPaxosCommit:
      handle_commit(packet.payload);
      break;
    default:
      break;
  }
}

// ---------------------------------------------------------------- acceptor

void Replica::handle_client_request(const net::Packet& packet) {
  const auto req = wire::decode_message<ClientRequest>(packet.payload);
  const RequestId rid = req.command.id;

  auto it = assignment_.find(rid);
  if (it != assignment_.end()) {
    const std::uint64_t old_index = it->second;
    const auto* entry = log_.entry(old_index);
    const bool resolved_against_us =
        log_.is_skipped(old_index) ||
        (entry != nullptr && entry->status != log::EntryStatus::kAccepted &&
         entry->command.id != rid) ||
        (log_.is_committed(old_index) && entry != nullptr && entry->command.id != rid);
    const bool committed_here =
        entry != nullptr && entry->command.id == rid &&
        entry->status != log::EntryStatus::kAccepted;
    if (committed_here || !resolved_against_us) return;  // done, or still pending
    // The request lost its old position; fall through and assign a new one.
  }

  const std::uint64_t index = next_index_++;
  log_.accept(index, req.command);
  obs_accepts_.inc();
  assignment_[rid] = index;

  const AcceptNotice notice{index, req.command};
  send(coordinator_, notice);
  send(rid.client, notice);
}

void Replica::handle_recovery_accept(NodeId from, const wire::Payload& payload) {
  const auto msg = wire::decode_message<RecoveryAccept>(payload);
  // Ballot 1 from the (only) coordinator always supersedes the ballot-0
  // acceptance; the actual log update happens on Commit.
  send(from, RecoveryReply{msg.index});
}

void Replica::handle_commit(const wire::Payload& payload) {
  const auto msg = wire::decode_message<Commit>(payload);
  if (msg.is_noop) {
    log_.skip(msg.index, msg.index);
  } else {
    log_.commit(msg.index, msg.command);
  }
  execute_ready();
}

// ------------------------------------------------------------- coordinator

void Replica::handle_accept_notice(NodeId from, const wire::Payload& payload) {
  if (!is_coordinator()) return;
  const auto msg = wire::decode_message<AcceptNotice>(payload);
  Tally& tally = tallies_[msg.index];
  if (tally.resolved) {
    // Late report for an already-resolved position: if this request lost,
    // get it re-proposed.
    if (!committed_requests_.contains(msg.command.id)) {
      for (NodeId r : replicas_) send(r, ClientRequest{msg.command});
    }
    return;
  }
  tally.reports[from] = msg.command;
  maybe_resolve(msg.index);
}

void Replica::maybe_resolve(std::uint64_t index) {
  Tally& tally = tallies_[index];
  if (tally.resolved || tally.recovering) return;

  // Count acceptances per request.
  std::unordered_map<RequestId, std::size_t> counts;
  for (const auto& [acceptor, cmd] : tally.reports) {
    (void)acceptor;
    ++counts[cmd.id];
  }
  const std::size_t q = measure::supermajority(replicas_.size());
  for (const auto& [rid, count] : counts) {
    if (count >= q) {
      // Fast path: a supermajority accepted the same request here.
      sm::Command winner;
      for (const auto& [acceptor, cmd] : tally.reports) {
        (void)acceptor;
        if (cmd.id == rid) {
          winner = cmd;
          break;
        }
      }
      finish_commit(index, /*is_noop=*/false, winner, /*was_fast=*/true);
      return;
    }
  }

  if (tally.reports.size() == replicas_.size()) {
    // Everyone reported and nobody reached a supermajority: collision.
    start_recovery(index);
    return;
  }

  if (!tally.timer_armed) {
    tally.timer_armed = true;
    after(recovery_timeout_, [this, index] {
      auto it = tallies_.find(index);
      if (it == tallies_.end() || it->second.resolved || it->second.recovering) return;
      if (it->second.reports.size() >= measure::majority(replicas_.size())) {
        start_recovery(index);
      }
    });
  }
}

void Replica::start_recovery(std::uint64_t index) {
  Tally& tally = tallies_[index];
  tally.recovering = true;
  if (const obs::SpanId s = open_wait_span("fp_recovery"); s != 0) {
    recovery_spans_[index] = s;
  }

  // Pick the most-accepted request that is not already committed elsewhere;
  // no-op if none. (The coordinator has ballot-0 reports from everyone who
  // responded; with no fast-path winner, any reported value is safe here in
  // the crash-free ballot-0/ballot-1 regime.)
  std::unordered_map<RequestId, std::size_t> counts;
  for (const auto& [acceptor, cmd] : tally.reports) {
    (void)acceptor;
    if (committed_requests_.contains(cmd.id)) continue;
    if (recovery_chosen_.contains(cmd.id)) continue;  // claimed by another index
    ++counts[cmd.id];
  }
  Commit choice;
  choice.index = index;
  if (counts.empty()) {
    choice.is_noop = true;
  } else {
    RequestId best{};
    std::size_t best_count = 0;
    bool first = true;
    for (const auto& [rid, count] : counts) {
      if (first || count > best_count || (count == best_count && rid < best)) {
        best = rid;
        best_count = count;
        first = false;
      }
    }
    for (const auto& [acceptor, cmd] : tally.reports) {
      (void)acceptor;
      if (cmd.id == best) {
        choice.command = cmd;
        break;
      }
    }
  }
  if (!choice.is_noop) recovery_chosen_.insert(choice.command.id);
  tally.recovery_choice = choice;
  tally.recovery_acks = 1;  // the coordinator accepts its own proposal

  RecoveryAccept msg{index, choice.is_noop, choice.command};
  for (NodeId r : replicas_) {
    if (r != id()) send(r, msg);
  }
}

void Replica::handle_recovery_reply(const wire::Payload& payload) {
  if (!is_coordinator()) return;
  const auto msg = wire::decode_message<RecoveryReply>(payload);
  auto it = tallies_.find(msg.index);
  if (it == tallies_.end() || it->second.resolved || !it->second.recovering) return;
  Tally& tally = it->second;
  if (++tally.recovery_acks < measure::majority(replicas_.size())) return;
  const Commit choice = *tally.recovery_choice;
  finish_commit(msg.index, choice.is_noop, choice.command, /*was_fast=*/false);
}

void Replica::finish_commit(std::uint64_t index, bool is_noop, const sm::Command& command,
                            bool was_fast) {
  Tally& tally = tallies_[index];
  tally.resolved = true;
  const auto rspan_it = recovery_spans_.find(index);
  if (rspan_it != recovery_spans_.end()) {
    close_wait_span(rspan_it->second);
    recovery_spans_.erase(rspan_it);
  }
  if (was_fast) {
    ++fast_commits_;
    obs_fast_.inc();
    if (obs_sink().tracing()) {
      obs_sink().record(obs::TraceEvent{.at = true_now(),
                                        .kind = obs::EventKind::kFastAccept,
                                        .node = id(),
                                        .request = command.id,
                                        .value = static_cast<std::int64_t>(index)});
    }
  } else {
    ++slow_commits_;
    obs_slow_.inc();
  }

  std::optional<RequestId> winner;
  if (!is_noop) {
    winner = command.id;
    committed_requests_.emplace(command.id, command);
    log_.commit(index, command);
  } else {
    log_.skip(index, index);
  }

  // Notify acceptors first (FIFO: re-proposals below must arrive after the
  // Commit so acceptors see their old assignment resolved before they are
  // asked to reassign).
  const Commit commit{index, is_noop, command};
  for (NodeId r : replicas_) {
    if (r != id()) send(r, commit);
  }
  if (!is_noop) send(command.id.client, ClientReply{command.id});

  repropose_losers(index, winner);
  execute_ready();
}

void Replica::repropose_losers(std::uint64_t index, const std::optional<RequestId>& winner) {
  Tally& tally = tallies_[index];
  std::unordered_map<RequestId, sm::Command> losers;
  for (const auto& [acceptor, cmd] : tally.reports) {
    (void)acceptor;
    if (winner && cmd.id == *winner) continue;
    if (committed_requests_.contains(cmd.id)) continue;
    losers.emplace(cmd.id, cmd);
  }
  for (const auto& [rid, cmd] : losers) {
    (void)rid;
    for (NodeId r : replicas_) send(r, ClientRequest{cmd});
  }
}

void Replica::execute_ready() {
  for (auto& [index, command] : log_.drain_executable()) {
    (void)index;
    store_.apply(command);
    obs_executed_.inc();
    if (exec_hook_) exec_hook_(command.id, true_now());
  }
}

}  // namespace domino::fastpaxos
