#include "fastpaxos/replica.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "recovery/messages.h"

namespace domino::fastpaxos {

namespace {
/// Catch-up request retransmit interval for a recovering replica.
constexpr Duration kCatchupRetryInterval = milliseconds(100);
}  // namespace

Replica::Replica(NodeId id, std::size_t dc, net::Network& network,
                 std::vector<NodeId> replicas, NodeId coordinator,
                 Duration recovery_timeout, sim::LocalClock clock)
    : rpc::Node(id, dc, network, clock),
      replicas_(std::move(replicas)),
      coordinator_(coordinator),
      recovery_timeout_(recovery_timeout) {
  if (std::find(replicas_.begin(), replicas_.end(), id) == replicas_.end()) {
    throw std::invalid_argument("fastpaxos::Replica: id not in replica set");
  }
  obs_accepts_ = obs_sink().counter("fastpaxos.accepts");
  obs_fast_ = obs_sink().counter("fastpaxos.fast_commits");
  obs_slow_ = obs_sink().counter("fastpaxos.slow_commits");
  obs_executed_ = obs_sink().counter("fastpaxos.executed");
}

void Replica::on_packet(const net::Packet& packet) {
  switch (wire::peek_type(packet.payload)) {
    case wire::MessageType::kFastPaxosClientRequest:
      handle_client_request(packet);
      break;
    case wire::MessageType::kFastPaxosAcceptNotice:
      handle_accept_notice(packet.src, packet.payload);
      break;
    case wire::MessageType::kFastPaxosRecoveryAccept:
      handle_recovery_accept(packet.src, packet.payload);
      break;
    case wire::MessageType::kFastPaxosRecoveryReply:
      handle_recovery_reply(packet.payload);
      break;
    case wire::MessageType::kFastPaxosCommit:
      handle_commit(packet.payload);
      break;
    case wire::MessageType::kCatchupRequest:
      handle_catchup_request(packet.src, packet.payload);
      break;
    case wire::MessageType::kCatchupReply:
      handle_catchup_reply(packet.payload);
      break;
    default:
      break;
  }
}

void Replica::enable_durability(recovery::DurableStore& store) {
  persistor_.bind(store, id(), [this](Duration delay, std::function<void()> fn) {
    after(delay, std::move(fn));
  });
}

// ---------------------------------------------------------------- acceptor

void Replica::handle_client_request(const net::Packet& packet) {
  if (catching_up_) return;  // not rejoined yet; the client's retry will land
  const auto req = wire::decode_message<ClientRequest>(packet.payload);
  const RequestId rid = req.command.id;

  auto it = assignment_.find(rid);
  if (it != assignment_.end()) {
    const std::uint64_t old_index = it->second;
    const auto* entry = log_.entry(old_index);
    const bool resolved_against_us =
        log_.is_skipped(old_index) ||
        (entry != nullptr && entry->status != log::EntryStatus::kAccepted &&
         entry->command.id != rid) ||
        (log_.is_committed(old_index) && entry != nullptr && entry->command.id != rid);
    const bool committed_here =
        entry != nullptr && entry->command.id == rid &&
        entry->status != log::EntryStatus::kAccepted;
    if (committed_here) {
      // A retry of a request that already won: the coordinator's reply was
      // lost (it crashed between deciding and sending); answer directly.
      send(rid.client, ClientReply{rid});
      return;
    }
    if (!resolved_against_us) {
      // Still pending: re-notify the coordinator, whose tally for this
      // index may have died with a crash. Idempotent on a live tally.
      send(coordinator_, AcceptNotice{old_index, req.command});
      return;
    }
    // The request lost its old position; fall through and assign a new one.
  }

  const std::uint64_t index = next_index_++;
  log_.accept(index, req.command);
  obs_accepts_.inc();
  assignment_[rid] = index;

  const sm::Command command = req.command;
  persistor_.persist(
      recovery::RecordTag::kAccepted,
      [&] {
        wire::ByteWriter w;
        w.varint(index);
        command.encode(w);
        return w.take();
      },
      [this, index, command, client = rid.client] {
        const AcceptNotice notice{index, command};
        send(coordinator_, notice);
        send(client, notice);
      });
}

void Replica::handle_recovery_accept(NodeId from, const wire::Payload& payload) {
  const auto msg = wire::decode_message<RecoveryAccept>(payload);
  // Ballot 1 from the (only) coordinator always supersedes the ballot-0
  // acceptance; the actual log update happens on Commit.
  send(from, RecoveryReply{msg.index});
}

void Replica::handle_commit(const wire::Payload& payload) {
  const auto msg = wire::decode_message<Commit>(payload);
  if (msg.is_noop) {
    log_.skip(msg.index, msg.index);
  } else {
    log_.commit(msg.index, msg.command);
  }
  // Nothing is externalized on this path, so the persist is fire-and-forget.
  persistor_.persist(recovery::RecordTag::kCommitted, [&] {
    wire::ByteWriter w;
    w.varint(msg.index);
    w.boolean(msg.is_noop);
    msg.command.encode(w);
    return w.take();
  });
  execute_ready();
}

// ------------------------------------------------------------- coordinator

void Replica::handle_accept_notice(NodeId from, const wire::Payload& payload) {
  if (!is_coordinator()) return;
  const auto msg = wire::decode_message<AcceptNotice>(payload);
  Tally& tally = tallies_[msg.index];
  if (tally.resolved) {
    // Late report for an already-resolved position. Re-send the decision to
    // the reporter: if it is a recovering acceptor retrying a request whose
    // Commit died with a crash, this is what unblocks its log.
    if (log_.is_skipped(msg.index)) {
      send(from, Commit{msg.index, /*is_noop=*/true, {}});
    } else if (const auto* e = log_.entry(msg.index);
               e != nullptr && e->status != log::EntryStatus::kAccepted) {
      send(from, Commit{msg.index, /*is_noop=*/false, e->command});
    }
    // If this request lost, get it re-proposed.
    if (!committed_requests_.contains(msg.command.id)) {
      for (NodeId r : replicas_) send(r, ClientRequest{msg.command});
    }
    return;
  }
  tally.reports[from] = msg.command;
  maybe_resolve(msg.index);
}

void Replica::maybe_resolve(std::uint64_t index) {
  Tally& tally = tallies_[index];
  if (tally.resolved || tally.recovering) return;

  // Count acceptances per request.
  std::unordered_map<RequestId, std::size_t> counts;
  for (const auto& [acceptor, cmd] : tally.reports) {
    (void)acceptor;
    ++counts[cmd.id];
  }
  const std::size_t q = measure::supermajority(replicas_.size());
  for (const auto& [rid, count] : counts) {
    if (count >= q) {
      // Fast path: a supermajority accepted the same request here.
      sm::Command winner;
      for (const auto& [acceptor, cmd] : tally.reports) {
        (void)acceptor;
        if (cmd.id == rid) {
          winner = cmd;
          break;
        }
      }
      finish_commit(index, /*is_noop=*/false, winner, /*was_fast=*/true);
      return;
    }
  }

  if (tally.reports.size() == replicas_.size()) {
    // Everyone reported and nobody reached a supermajority: collision.
    start_recovery(index);
    return;
  }

  if (!tally.timer_armed) {
    tally.timer_armed = true;
    after(recovery_timeout_, [this, index] {
      auto it = tallies_.find(index);
      if (it == tallies_.end() || it->second.resolved || it->second.recovering) return;
      if (it->second.reports.size() >= measure::majority(replicas_.size())) {
        start_recovery(index);
      }
    });
  }
}

void Replica::start_recovery(std::uint64_t index) {
  Tally& tally = tallies_[index];
  tally.recovering = true;
  if (const obs::SpanId s = open_wait_span("fp_recovery"); s != 0) {
    recovery_spans_[index] = s;
  }

  // Pick the most-accepted request that is not already committed elsewhere;
  // no-op if none. (The coordinator has ballot-0 reports from everyone who
  // responded; with no fast-path winner, any reported value is safe here in
  // the crash-free ballot-0/ballot-1 regime.)
  std::unordered_map<RequestId, std::size_t> counts;
  for (const auto& [acceptor, cmd] : tally.reports) {
    (void)acceptor;
    if (committed_requests_.contains(cmd.id)) continue;
    if (recovery_chosen_.contains(cmd.id)) continue;  // claimed by another index
    ++counts[cmd.id];
  }
  Commit choice;
  choice.index = index;
  if (counts.empty()) {
    choice.is_noop = true;
  } else {
    RequestId best{};
    std::size_t best_count = 0;
    bool first = true;
    for (const auto& [rid, count] : counts) {
      if (first || count > best_count || (count == best_count && rid < best)) {
        best = rid;
        best_count = count;
        first = false;
      }
    }
    for (const auto& [acceptor, cmd] : tally.reports) {
      (void)acceptor;
      if (cmd.id == best) {
        choice.command = cmd;
        break;
      }
    }
  }
  if (!choice.is_noop) recovery_chosen_.insert(choice.command.id);
  tally.recovery_choice = choice;
  tally.recovery_acks = 1;  // the coordinator accepts its own proposal

  RecoveryAccept msg{index, choice.is_noop, choice.command};
  for (NodeId r : replicas_) {
    if (r != id()) send(r, msg);
  }
}

void Replica::handle_recovery_reply(const wire::Payload& payload) {
  if (!is_coordinator()) return;
  const auto msg = wire::decode_message<RecoveryReply>(payload);
  auto it = tallies_.find(msg.index);
  if (it == tallies_.end() || it->second.resolved || !it->second.recovering) return;
  Tally& tally = it->second;
  if (++tally.recovery_acks < measure::majority(replicas_.size())) return;
  const Commit choice = *tally.recovery_choice;
  finish_commit(msg.index, choice.is_noop, choice.command, /*was_fast=*/false);
}

void Replica::finish_commit(std::uint64_t index, bool is_noop, const sm::Command& command,
                            bool was_fast) {
  Tally& tally = tallies_[index];
  tally.resolved = true;
  const auto rspan_it = recovery_spans_.find(index);
  if (rspan_it != recovery_spans_.end()) {
    close_wait_span(rspan_it->second);
    recovery_spans_.erase(rspan_it);
  }
  if (was_fast) {
    ++fast_commits_;
    obs_fast_.inc();
    if (obs_sink().tracing()) {
      obs_sink().record(obs::TraceEvent{.at = true_now(),
                                        .kind = obs::EventKind::kFastAccept,
                                        .node = id(),
                                        .request = command.id,
                                        .value = static_cast<std::int64_t>(index)});
    }
  } else {
    ++slow_commits_;
    obs_slow_.inc();
  }

  std::optional<RequestId> winner;
  if (!is_noop) {
    winner = command.id;
    committed_requests_.emplace(command.id, command);
    log_.commit(index, command);
  } else {
    log_.skip(index, index);
  }

  // The decision is externalized by the Commit broadcast and the client
  // reply, so it must be durable first.
  persistor_.persist(
      recovery::RecordTag::kCommitted,
      [&] {
        wire::ByteWriter w;
        w.varint(index);
        w.boolean(is_noop);
        command.encode(w);
        return w.take();
      },
      [this, index, is_noop, command, winner] {
        // Notify acceptors first (FIFO: re-proposals below must arrive after
        // the Commit so acceptors see their old assignment resolved before
        // they are asked to reassign).
        const Commit commit{index, is_noop, command};
        for (NodeId r : replicas_) {
          if (r != id()) send(r, commit);
        }
        if (!is_noop) send(command.id.client, ClientReply{command.id});
        repropose_losers(index, winner);
      });
  execute_ready();
}

void Replica::repropose_losers(std::uint64_t index, const std::optional<RequestId>& winner) {
  Tally& tally = tallies_[index];
  std::unordered_map<RequestId, sm::Command> losers;
  for (const auto& [acceptor, cmd] : tally.reports) {
    (void)acceptor;
    if (winner && cmd.id == *winner) continue;
    if (committed_requests_.contains(cmd.id)) continue;
    losers.emplace(cmd.id, cmd);
  }
  for (const auto& [rid, cmd] : losers) {
    (void)rid;
    for (NodeId r : replicas_) send(r, ClientRequest{cmd});
  }
}

void Replica::restart() {
  persistor_.begin_restart();
  for (auto& [index, span] : recovery_spans_) {
    (void)index;
    close_wait_span(span);
  }
  recovery_spans_.clear();
  log_ = log::IndexLog{};
  store_ = sm::KvStore{};
  assignment_.clear();
  next_index_ = 0;
  tallies_.clear();
  committed_requests_.clear();
  recovery_chosen_.clear();
  fast_commits_ = 0;
  slow_commits_ = 0;
  catching_up_ = true;
  recovery_started_at_ = true_now();
  if (obs_sink().tracing()) {
    obs_sink().record(obs::TraceEvent{
        .at = true_now(),
        .kind = obs::EventKind::kRecoveryStart,
        .node = id(),
        .value = static_cast<std::int64_t>(persistor_.epoch())});
  }

  std::uint64_t max_index = 0;
  bool any = false;
  persistor_.replay([this, &max_index, &any](const recovery::DurableRecord& rec) {
    wire::ByteReader r(rec.body);
    switch (rec.tag) {
      case recovery::RecordTag::kAccepted: {
        const std::uint64_t index = r.varint();
        sm::Command cmd = sm::Command::decode(r);
        assignment_[cmd.id] = index;
        if (!log_.is_committed(index) && !log_.is_skipped(index)) {
          log_.accept(index, std::move(cmd));
        }
        next_index_ = std::max(next_index_, index + 1);
        max_index = std::max(max_index, index);
        any = true;
        break;
      }
      case recovery::RecordTag::kCommitted: {
        const std::uint64_t index = r.varint();
        const bool is_noop = r.boolean();
        sm::Command cmd = sm::Command::decode(r);
        if (is_noop) {
          log_.skip(index, index);
        } else {
          committed_requests_.emplace(cmd.id, cmd);
          log_.commit(index, std::move(cmd));
        }
        // The coordinator's own decisions must stay resolved, or a late
        // notice could re-open a decided index.
        if (is_coordinator()) tallies_[index].resolved = true;
        max_index = std::max(max_index, index);
        any = true;
        break;
      }
      default:
        break;  // Fast Paxos writes no other tags
    }
  });
  execute_ready();

  // Coordinator gap-filling: tallies for undecided indices died with the
  // crash, and acceptors only re-notify when their client retries. Arm a
  // recovery timer for every undecided index at or below the highest index
  // seen, so positions whose reporters have all moved on still resolve (to
  // no-ops). Safe with an empty tally: this coordinator is the only
  // learner, so a value can only have been chosen if its decision is in our
  // durable log — and those replayed as resolved above.
  if (is_coordinator() && any) {
    for (std::uint64_t index = log_.execution_frontier(); index <= max_index; ++index) {
      if (log_.is_skipped(index) || log_.is_committed(index)) continue;
      Tally& tally = tallies_[index];
      if (tally.resolved) continue;
      tally.timer_armed = true;
      after(recovery_timeout_, [this, index] {
        auto it = tallies_.find(index);
        if (it == tallies_.end() || it->second.resolved || it->second.recovering) return;
        start_recovery(index);
      });
    }
  }
  send_catchup_requests();
}

void Replica::send_catchup_requests() {
  if (!catching_up_) return;
  if (replicas_.size() <= 1) {
    finish_rejoin();
    return;
  }
  const recovery::CatchupRequest req{persistor_.epoch(), store_.applied_count()};
  for (NodeId r : replicas_) {
    if (r != id()) send(r, req);
  }
  after(kCatchupRetryInterval, [this, epoch = persistor_.epoch()] {
    if (catching_up_ && epoch == persistor_.epoch()) send_catchup_requests();
  });
}

void Replica::handle_catchup_request(NodeId from, const wire::Payload& payload) {
  // Always served, even while this replica is itself catching up: replying
  // with the current state keeps simultaneous recoveries from deadlocking.
  const auto req = wire::decode_message<recovery::CatchupRequest>(payload);
  recovery::CatchupReply reply;
  reply.epoch = req.epoch;
  reply.applied = store_.applied_count();
  reply.frontier = static_cast<std::int64_t>(log_.execution_frontier());
  reply.snapshot.reserve(store_.items().size());
  for (const auto& [key, value] : store_.items()) {
    reply.snapshot.push_back(recovery::KvEntry{key, value});
  }
  for (auto& [index, command] : log_.committed_unexecuted()) {
    reply.entries.push_back(recovery::CatchupEntry{
        static_cast<std::int64_t>(index), 0, std::move(command), {}});
  }
  // No-op decisions are one-shot Commit broadcasts in Fast Paxos, so a
  // recovering replica cannot re-learn them from retransmissions: ship the
  // skipped ranges above the frontier explicitly (aux = range end).
  for (const auto& [lo, hi] : log_.skipped_after(log_.execution_frontier())) {
    wire::ByteWriter aux;
    aux.varint(hi);
    reply.entries.push_back(recovery::CatchupEntry{
        static_cast<std::int64_t>(lo), 0, sm::Command{}, aux.take()});
  }
  send(from, reply);
}

void Replica::handle_catchup_reply(const wire::Payload& payload) {
  const auto msg = wire::decode_message<recovery::CatchupReply>(payload);
  if (msg.epoch != persistor_.epoch()) return;  // reply to an older incarnation
  if (msg.frontier > static_cast<std::int64_t>(log_.execution_frontier())) {
    std::unordered_map<std::string, std::string> items;
    items.reserve(msg.snapshot.size());
    for (const auto& e : msg.snapshot) items.emplace(e.key, e.value);
    store_.install_snapshot(std::move(items), msg.applied);
    log_.fast_forward(static_cast<std::uint64_t>(msg.frontier));
    persistor_.note_catchup_install(payload.size(), true_now() - recovery_started_at_);
  }
  for (const auto& e : msg.entries) {
    if (!e.aux.empty()) {  // skipped range [pos, aux]
      wire::ByteReader ar(e.aux);
      const std::uint64_t hi = ar.varint();
      const auto lo =
          std::max(static_cast<std::uint64_t>(e.pos), log_.execution_frontier());
      if (hi < lo) continue;
      log_.skip(lo, hi);
      if (is_coordinator()) {
        for (std::uint64_t i = lo; i <= hi; ++i) tallies_[i].resolved = true;
      }
      continue;
    }
    if (e.pos < static_cast<std::int64_t>(log_.execution_frontier())) continue;
    const auto index = static_cast<std::uint64_t>(e.pos);
    log_.commit(index, e.command);
    if (is_coordinator()) {
      committed_requests_.emplace(e.command.id, e.command);
      tallies_[index].resolved = true;
    }
  }
  execute_ready();
  finish_rejoin();
}

void Replica::finish_rejoin() {
  if (!catching_up_) return;
  catching_up_ = false;
  const Duration took = true_now() - recovery_started_at_;
  persistor_.note_rejoin(took);
  if (obs_sink().tracing()) {
    obs_sink().record(obs::TraceEvent{.at = true_now(),
                                      .kind = obs::EventKind::kRecoveryDone,
                                      .node = id(),
                                      .value = took.nanos()});
  }
}

void Replica::execute_ready() {
  for (auto& [index, command] : log_.drain_executable()) {
    (void)index;
    store_.apply(command);
    obs_executed_.inc();
    if (exec_hook_) exec_hook_(command.id, true_now());
  }
}

}  // namespace domino::fastpaxos
