// Classic Fast Paxos client: broadcasts each request to every replica and
// learns the fast-path outcome itself by counting matching acceptances (a
// supermajority at the same log index); slow-path outcomes arrive as a
// coordinator reply.
#pragma once

#include <unordered_map>

#include "fastpaxos/messages.h"
#include "measure/quorum.h"
#include "rpc/client_base.h"

namespace domino::fastpaxos {

class Client : public rpc::ClientBase {
 public:
  Client(NodeId id, std::size_t dc, net::Network& network, std::vector<NodeId> replicas,
         sim::LocalClock clock = sim::LocalClock{})
      : rpc::ClientBase(id, dc, network, clock), replicas_(std::move(replicas)) {}

  [[nodiscard]] std::uint64_t fast_learns() const { return fast_learns_; }

 protected:
  void propose(const sm::Command& command) override {
    for (NodeId r : replicas_) send(r, ClientRequest{command});
  }

  void on_packet(const net::Packet& packet) override {
    switch (wire::peek_type(packet.payload)) {
      case wire::MessageType::kFastPaxosAcceptNotice: {
        const auto notice = wire::decode_message<AcceptNotice>(packet.payload);
        if (notice.command.id.client != id()) return;
        const std::size_t count = ++tallies_[notice.command.id][notice.index];
        if (count >= measure::supermajority(replicas_.size())) {
          tallies_.erase(notice.command.id);
          ++fast_learns_;
          handle_committed(notice.command.id);
        }
        break;
      }
      case wire::MessageType::kFastPaxosClientReply: {
        const auto reply = wire::decode_message<ClientReply>(packet.payload);
        tallies_.erase(reply.request);
        handle_committed(reply.request);
        break;
      }
      default:
        break;
    }
  }

 private:
  std::vector<NodeId> replicas_;
  // request -> (index -> acceptance count)
  std::unordered_map<RequestId, std::unordered_map<std::uint64_t, std::size_t>> tallies_;
  std::uint64_t fast_learns_ = 0;
};

}  // namespace domino::fastpaxos
