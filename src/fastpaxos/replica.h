// Classic Fast Paxos replica (acceptor role) and coordinator (learner +
// recovery proposer).
//
// Acceptors assign incoming client requests to consecutive local log
// indices (arrival order). Because concurrent clients' requests arrive in
// different orders at different acceptors, indices collide and the
// coordinator must run the recovery protocol — the behaviour Figure 7
// quantifies ("Fast Paxos would fall back to its slow path ... even if
// there are only a small set of concurrent clients").
//
// The coordinator is a distinguished replica. Per index it gathers every
// acceptor's ballot-0 acceptance, fast-commits when a supermajority agrees,
// and otherwise recovers: it picks the most-accepted not-yet-committed
// request (no-op if none) and runs a ballot-1 accept round on a majority.
// Requests that lose their position are re-proposed by the coordinator.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "fastpaxos/messages.h"
#include "log/index_log.h"
#include "measure/quorum.h"
#include "recovery/durable.h"
#include "rpc/node.h"
#include "statemachine/kvstore.h"

namespace domino::fastpaxos {

class Replica : public rpc::Node {
 public:
  using ExecuteHook = std::function<void(const RequestId&, TimePoint)>;

  Replica(NodeId id, std::size_t dc, net::Network& network, std::vector<NodeId> replicas,
          NodeId coordinator, Duration recovery_timeout = milliseconds(500),
          sim::LocalClock clock = sim::LocalClock{});

  void set_execute_hook(ExecuteHook hook) { exec_hook_ = std::move(hook); }

  /// Bind simulated durable storage: ballot-0 acceptances and commit
  /// decisions are persisted before the notices/commits that externalize
  /// them, and the replica survives an amnesiac restart().
  void enable_durability(recovery::DurableStore& store);

  /// Amnesiac restart: wipe volatile state, replay the durable image, and
  /// catch up from live peers. A restarted coordinator additionally arms
  /// recovery timers for undecided indices whose tallies died with it.
  void restart();

  [[nodiscard]] bool catching_up() const { return catching_up_; }

  [[nodiscard]] bool is_coordinator() const { return coordinator_ == id(); }
  [[nodiscard]] const log::IndexLog& log() const { return log_; }
  [[nodiscard]] const sm::KvStore& store() const { return store_; }
  [[nodiscard]] std::uint64_t fast_commits() const { return fast_commits_; }
  [[nodiscard]] std::uint64_t slow_commits() const { return slow_commits_; }

 protected:
  void on_packet(const net::Packet& packet) override;

 private:
  // ---- acceptor side ----
  void handle_client_request(const net::Packet& packet);
  void handle_recovery_accept(NodeId from, const wire::Payload& payload);
  void handle_commit(const wire::Payload& payload);

  // ---- coordinator side ----
  void handle_accept_notice(NodeId from, const wire::Payload& payload);
  void handle_recovery_reply(const wire::Payload& payload);
  void maybe_resolve(std::uint64_t index);
  void start_recovery(std::uint64_t index);
  void finish_commit(std::uint64_t index, bool is_noop, const sm::Command& command,
                     bool was_fast);
  void repropose_losers(std::uint64_t index, const std::optional<RequestId>& winner);

  void handle_catchup_request(NodeId from, const wire::Payload& payload);
  void handle_catchup_reply(const wire::Payload& payload);
  void send_catchup_requests();
  void finish_rejoin();

  void execute_ready();

  std::vector<NodeId> replicas_;
  NodeId coordinator_;
  Duration recovery_timeout_;
  log::IndexLog log_;
  sm::KvStore store_;
  ExecuteHook exec_hook_;

  // Crash recovery.
  recovery::Persistor persistor_;
  bool catching_up_ = false;
  TimePoint recovery_started_at_ = TimePoint::epoch();

  // Acceptor state: where each request was assigned locally.
  std::unordered_map<RequestId, std::uint64_t> assignment_;
  std::uint64_t next_index_ = 0;

  // Coordinator state.
  struct Tally {
    std::unordered_map<NodeId, sm::Command> reports;  // acceptor -> accepted command
    bool resolved = false;
    bool recovering = false;
    std::size_t recovery_acks = 0;
    std::optional<Commit> recovery_choice;
    bool timer_armed = false;
  };
  std::map<std::uint64_t, Tally> tallies_;
  std::unordered_map<std::uint64_t, obs::SpanId> recovery_spans_;  // index -> wait span
  std::unordered_map<RequestId, sm::Command> committed_requests_;
  // Requests picked by an in-flight recovery; excluded from concurrent
  // recovery choices so one request cannot be chosen at two indices.
  std::unordered_set<RequestId> recovery_chosen_;
  std::uint64_t fast_commits_ = 0;
  std::uint64_t slow_commits_ = 0;

  obs::CounterHandle obs_accepts_;
  obs::CounterHandle obs_fast_;
  obs::CounterHandle obs_slow_;
  obs::CounterHandle obs_executed_;
};

}  // namespace domino::fastpaxos
