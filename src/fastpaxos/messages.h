// Classic Fast Paxos SMR messages (paper reference [21] and Section 6's
// "state machine replication protocol that uses standard Fast Paxos under
// the same implementation framework").
//
// Clients broadcast requests to every replica; each replica independently
// assigns the request to its next free log index (arrival order) and
// notifies the coordinator and the originating client. A supermajority of
// identical (index, request) acceptances commits on the fast path; anything
// else is resolved by the coordinator's recovery protocol.
#pragma once

#include "statemachine/command.h"
#include "wire/message.h"

namespace domino::fastpaxos {

struct ClientRequest {
  static constexpr wire::MessageType kType = wire::MessageType::kFastPaxosClientRequest;
  sm::Command command;

  void encode(wire::ByteWriter& w) const { command.encode(w); }
  static ClientRequest decode(wire::ByteReader& r) { return {sm::Command::decode(r)}; }
};

struct AcceptNotice {
  static constexpr wire::MessageType kType = wire::MessageType::kFastPaxosAcceptNotice;
  std::uint64_t index = 0;
  sm::Command command;

  void encode(wire::ByteWriter& w) const {
    w.varint(index);
    command.encode(w);
  }
  static AcceptNotice decode(wire::ByteReader& r) {
    AcceptNotice m;
    m.index = r.varint();
    m.command = sm::Command::decode(r);
    return m;
  }
};

struct RecoveryAccept {
  static constexpr wire::MessageType kType = wire::MessageType::kFastPaxosRecoveryAccept;
  std::uint64_t index = 0;
  bool is_noop = false;
  sm::Command command;  // meaningful when !is_noop

  void encode(wire::ByteWriter& w) const {
    w.varint(index);
    w.boolean(is_noop);
    command.encode(w);
  }
  static RecoveryAccept decode(wire::ByteReader& r) {
    RecoveryAccept m;
    m.index = r.varint();
    m.is_noop = r.boolean();
    m.command = sm::Command::decode(r);
    return m;
  }
};

struct RecoveryReply {
  static constexpr wire::MessageType kType = wire::MessageType::kFastPaxosRecoveryReply;
  std::uint64_t index = 0;

  void encode(wire::ByteWriter& w) const { w.varint(index); }
  static RecoveryReply decode(wire::ByteReader& r) { return {r.varint()}; }
};

struct Commit {
  static constexpr wire::MessageType kType = wire::MessageType::kFastPaxosCommit;
  std::uint64_t index = 0;
  bool is_noop = false;
  sm::Command command;

  void encode(wire::ByteWriter& w) const {
    w.varint(index);
    w.boolean(is_noop);
    command.encode(w);
  }
  static Commit decode(wire::ByteReader& r) {
    Commit m;
    m.index = r.varint();
    m.is_noop = r.boolean();
    m.command = sm::Command::decode(r);
    return m;
  }
};

struct ClientReply {
  static constexpr wire::MessageType kType = wire::MessageType::kFastPaxosClientReply;
  RequestId request;

  void encode(wire::ByteWriter& w) const { w.request_id(request); }
  static ClientReply decode(wire::ByteReader& r) { return {r.request_id()}; }
};

}  // namespace domino::fastpaxos
