// Domino replica: DFP acceptor, optional DFP coordinator, DM leader for its
// own lane, DM follower for every other lane — all over one interleaved
// GlobalLog (paper Section 5).
//
// Roles and duties:
//   * DFP acceptor: accept a client's timestamped proposal iff the local
//     clock has not passed the timestamp (empty positions below the clock
//     are optimistically no-op'd, Section 5.3.2); notify the client and the
//     coordinator.
//   * DFP coordinator (one distinguished replica): the learner for no-ops
//     and the recovery proposer for collisions (Section 5.3.3). It tracks
//     every replica's clock watermark (piggybacked on notices/heartbeats),
//     computes the committed DFP frontier — the supermajority-th smallest
//     watermark, capped by the earliest unresolved proposal — and
//     disseminates it on heartbeats. Requests whose position resolves as
//     no-op are re-proposed through the coordinator's DM lane ("The DFP
//     coordinator will propose the other request through Domino's
//     Mencius").
//   * DM leader: stamp client requests with now + predicted replication
//     latency (measured by the replica's own prober), replicate to a
//     majority, reply to the client (Section 5.5).
//   * Execution: drain the GlobalLog in global timestamp order
//     (Section 5.7).
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <set>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/messages.h"
#include "log/global_log.h"
#include "measure/estimator.h"
#include "measure/prober.h"
#include "measure/quorum.h"
#include "recovery/durable.h"
#include "rpc/node.h"
#include "statemachine/kvstore.h"

namespace domino::core {

struct ReplicaConfig {
  Duration heartbeat_interval = milliseconds(10);
  measure::ProberConfig prober;
  /// Recovery is forced for a proposal that stays unresolved this long.
  Duration recovery_timeout = milliseconds(500);
  /// Section 5.7's optimization: "Making every replica be a learner in DFP
  /// will reduce this delay." When true (default), acceptors broadcast
  /// their acceptance notices to every replica, and each replica both
  /// fast-commits positions locally and derives the committed-no-op
  /// frontier from directly received watermarks — saving one WAN hop of
  /// execution latency. When false, only the coordinator learns and
  /// disseminates outcomes.
  bool all_replicas_learn = true;
};

class Replica : public rpc::Node {
 public:
  using ExecuteHook = std::function<void(const RequestId&, TimePoint)>;

  Replica(NodeId id, std::size_t dc, net::Network& network, std::vector<NodeId> replicas,
          NodeId coordinator, ReplicaConfig config = {},
          sim::LocalClock clock = sim::LocalClock{});

  /// Run over any transport (e.g. net::tcp::TcpContext for real sockets).
  Replica(NodeId id, rpc::Context& context, std::vector<NodeId> replicas,
          NodeId coordinator, ReplicaConfig config = {},
          sim::LocalClock clock = sim::LocalClock{});

  /// Start probing and heartbeats; call after attach().
  void start();

  void set_execute_hook(ExecuteHook hook) { exec_hook_ = std::move(hook); }

  /// Bind simulated durable storage: DFP acceptances, DM acceptances, and
  /// commit decisions are persisted before the notices/acks/commits that
  /// externalize them, and the replica survives an amnesiac restart().
  void enable_durability(recovery::DurableStore& store);

  /// Amnesiac restart: wipe volatile protocol state, replay the durable
  /// image, re-replicate pending own-lane entries, and catch up from live
  /// peers. Measurement soft state (prober) is deliberately kept: it is not
  /// safety-relevant and wiping it would only blind failure detection. A
  /// restarted coordinator additionally schedules one DFP range-recovery
  /// round, because the tallies of unresolved proposals died with it.
  void restart();

  [[nodiscard]] bool catching_up() const { return catching_up_; }

  [[nodiscard]] bool is_coordinator() const { return coordinator_ == id(); }
  [[nodiscard]] std::size_t rank() const { return rank_; }
  [[nodiscard]] const log::GlobalLog& log() const { return log_; }
  [[nodiscard]] const sm::KvStore& store() const { return store_; }
  [[nodiscard]] const measure::Prober& prober() const { return prober_; }

  /// The replication latency estimate L_r this replica piggybacks on probe
  /// replies (Section 5.6).
  [[nodiscard]] Duration replication_latency_estimate() const;

  // Counters for tests and experiment output.
  [[nodiscard]] std::uint64_t dfp_fast_commits() const { return dfp_fast_commits_; }
  [[nodiscard]] std::uint64_t dfp_slow_commits() const { return dfp_slow_commits_; }
  [[nodiscard]] std::uint64_t dfp_noop_resolutions() const { return dfp_noop_resolutions_; }
  [[nodiscard]] std::uint64_t dm_commits() const { return dm_commits_; }
  [[nodiscard]] std::uint64_t executed_count() const { return log_.executed_count(); }

 protected:
  void on_packet(const net::Packet& packet) override;

 private:
  [[nodiscard]] std::uint32_t dfp_lane() const {
    return log::dfp_lane(replicas_.size());
  }
  [[nodiscard]] std::size_t rank_of(NodeId node) const;

  // ---- DFP acceptor ----
  void handle_dfp_propose(const net::Packet& packet);
  void handle_dfp_commit(const wire::Payload& payload);
  void handle_dfp_recovery_accept(NodeId from, const wire::Payload& payload);

  // ---- DFP coordinator ----
  void handle_dfp_accept_notice(NodeId from, const wire::Payload& payload);
  void process_dfp_notice(const DfpAcceptNotice& notice);
  void handle_dfp_recovery_reply(const wire::Payload& payload);
  void note_replica_watermark(std::size_t rank, TimePoint watermark);
  void coordinator_check(std::int64_t ts);
  void start_dfp_recovery(std::int64_t ts);
  void resolve_dfp(std::int64_t ts, bool is_noop, const sm::Command& command, bool was_fast);
  void reroute_via_dm(const sm::Command& command);
  [[nodiscard]] std::int64_t computed_commit_frontier() const;

  // ---- DM ----
  void handle_dm_propose(const net::Packet& packet);
  void handle_dm_accept(NodeId from, const wire::Payload& payload);
  void handle_dm_accept_reply(const wire::Payload& payload);
  void handle_dm_commit(const wire::Payload& payload);
  void dm_lead(const sm::Command& command, bool reply_via_dfp);
  void maybe_commit_dm(std::int64_t ts);

  // ---- failure handling (Section 5.8) ----
  void maybe_run_failure_recovery();
  [[nodiscard]] bool is_successor_for(std::size_t dead_rank) const;
  void start_dm_revoke(std::uint32_t lane);
  void handle_dm_revoke(NodeId from, const wire::Payload& payload);
  void handle_dm_revoke_reply(NodeId from, const wire::Payload& payload);
  void try_finalize_dm_revoke(std::uint32_t lane);
  void apply_dm_revoke_result(const DmRevokeResult& result);
  void start_dfp_range_recover(std::int64_t from_ts);
  void handle_dfp_range_recover(NodeId from, const wire::Payload& payload);
  void handle_dfp_range_reply(NodeId from, const wire::Payload& payload);
  void try_finalize_dfp_range();
  void apply_dfp_range_resolve(const DfpRangeResolve& resolve);

  // ---- crash recovery ----
  void handle_catchup_request(NodeId from, const wire::Payload& payload);
  void handle_catchup_reply(const wire::Payload& payload);
  void send_catchup_requests();
  void finish_rejoin();

  // ---- shared ----
  void handle_heartbeat(NodeId from, const wire::Payload& payload);
  void handle_probe(const net::Packet& packet);
  void broadcast_heartbeat();
  void execute_ready();

  std::vector<NodeId> replicas_;
  std::size_t rank_ = 0;
  NodeId coordinator_;
  ReplicaConfig config_;
  log::GlobalLog log_;
  sm::KvStore store_;
  ExecuteHook exec_hook_;
  measure::Prober prober_;
  rpc::RepeatingTimer heartbeat_;

  // Crash recovery.
  recovery::Persistor persistor_;
  bool catching_up_ = false;
  TimePoint recovery_started_at_ = TimePoint::epoch();
  /// Timestamps of acceptances whose externalizing send is still waiting on
  /// the durable sync. While one is pending, the advertised clock watermark
  /// must not pass it: a heartbeat overtaking the delayed acceptance notice
  /// (FIFO orders by *send* time) would let peers no-op a position this
  /// replica accepted, and they would skip a command others execute.
  std::multiset<std::int64_t> watermark_holds_;
  [[nodiscard]] TimePoint advertised_watermark() const;
  void release_watermark_hold(std::int64_t ts);

  // Coordinator state. Distinct commands proposed at the same timestamp
  // (client timestamp collisions, Section 5.3.3) are tallied separately.
  struct CommandTally {
    sm::Command command;
    std::size_t accepts = 0;
    std::size_t rejects = 0;
  };
  struct DfpPosition {
    std::vector<CommandTally> tallies;  // one per distinct command seen here
    bool resolved = false;
    std::optional<RequestId> winner;  // set when resolved with a command
    bool recovering = false;
    std::size_t recovery_acks = 0;
    std::optional<DfpCommit> recovery_choice;
    bool timer_armed = false;
  };
  std::map<std::int64_t, DfpPosition> dfp_positions_;  // ordered by timestamp
  std::vector<TimePoint> replica_watermarks_;          // per rank, coordinator view
  std::int64_t commit_frontier_ = 0;
  std::unordered_set<RequestId> dfp_committed_;  // requests committed via DFP

  // DM leader state: pending replication per own-lane timestamp.
  struct DmPending {
    std::size_t acks = 1;  // self
    RequestId request;
    bool reply_via_dfp = false;  // reply with DfpClientReply (re-routed request)
  };
  std::unordered_map<std::int64_t, DmPending> dm_pending_;
  std::unordered_map<std::int64_t, obs::SpanId> dm_quorum_spans_;     // ts -> wait span
  std::unordered_map<std::int64_t, obs::SpanId> dfp_recovery_spans_;  // ts -> wait span
  std::int64_t dm_last_assigned_ = 0;
  std::unordered_set<RequestId> rerouted_;  // requests re-proposed through DM

  // Failure-recovery rounds (Section 5.8).
  struct RecoveryRound {
    bool active = false;
    std::int64_t from = 0;
    std::int64_t to = 0;
    std::map<std::int64_t, sm::Command> entries;  // union of reported entries
    std::unordered_set<NodeId> replied;
  };
  std::unordered_map<std::uint32_t, RecoveryRound> dm_revokes_;  // keyed by lane
  std::unordered_map<std::uint32_t, std::int64_t> dm_revoked_through_;
  std::unordered_map<std::uint32_t, TimePoint> next_dm_revoke_at_;
  RecoveryRound dfp_range_round_;
  TimePoint next_dfp_range_at_ = TimePoint::epoch();
  /// Minimum spacing between recovery rounds for the same lane.
  static constexpr Duration kRecoveryRoundInterval = milliseconds(100);

  std::uint64_t dfp_fast_commits_ = 0;
  std::uint64_t dfp_slow_commits_ = 0;
  std::uint64_t dfp_noop_resolutions_ = 0;
  std::uint64_t dm_commits_ = 0;

  // Observability handles (mirror the counters above; see bind order in
  // harness::Env — the sink must be bound to the network before replicas
  // are constructed).
  void init_obs();
  obs::CounterHandle obs_dfp_fast_;
  obs::CounterHandle obs_dfp_slow_;
  obs::CounterHandle obs_dfp_noops_;
  obs::CounterHandle obs_dm_commits_;
  obs::CounterHandle obs_rerouted_;
  obs::CounterHandle obs_executed_;
};

}  // namespace domino::core
