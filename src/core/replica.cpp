#include "core/replica.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "recovery/messages.h"

namespace domino::core {

namespace {
/// Catch-up request retransmit interval for a recovering replica.
constexpr Duration kCatchupRetryInterval = milliseconds(100);

/// Durable record for an acceptance at (ts, lane). `dm_leader` marks the
/// record as written by the lane's own leader (it doubles as the timestamp
/// reservation: replay raises dm_last_assigned_ past it, so no separate
/// kReservation record is needed).
wire::Payload accepted_record(std::int64_t ts, std::uint32_t lane, const sm::Command& command,
                              bool dm_leader, bool reply_via_dfp) {
  wire::ByteWriter w;
  w.svarint(ts);
  w.varint(lane);
  command.encode(w);
  w.boolean(dm_leader);
  w.boolean(reply_via_dfp);
  return w.take();
}

/// Durable record for a resolution at (ts, lane). The command may be
/// omitted when a preceding kAccepted record of the same position is
/// guaranteed to supply it (the lane leader's own commits).
wire::Payload committed_record(std::int64_t ts, std::uint32_t lane, bool is_noop,
                               const sm::Command* command) {
  wire::ByteWriter w;
  w.svarint(ts);
  w.varint(lane);
  w.boolean(is_noop);
  w.boolean(command != nullptr);
  if (command != nullptr) command->encode(w);
  return w.take();
}
}  // namespace

Replica::Replica(NodeId id, std::size_t dc, net::Network& network,
                 std::vector<NodeId> replicas, NodeId coordinator, ReplicaConfig config,
                 sim::LocalClock clock)
    : rpc::Node(id, dc, network, clock),
      replicas_(std::move(replicas)),
      coordinator_(coordinator),
      config_(config),
      log_(replicas_.size() + 1),
      prober_(*this, replicas_, config.prober),
      replica_watermarks_(replicas_.size(), TimePoint::epoch()) {
  const auto it = std::find(replicas_.begin(), replicas_.end(), id);
  if (it == replicas_.end()) throw std::invalid_argument("core::Replica: id not in set");
  rank_ = static_cast<std::size_t>(it - replicas_.begin());
  init_obs();
}

Replica::Replica(NodeId id, rpc::Context& context, std::vector<NodeId> replicas,
                 NodeId coordinator, ReplicaConfig config, sim::LocalClock clock)
    : rpc::Node(id, /*dc=*/0, context, clock),
      replicas_(std::move(replicas)),
      coordinator_(coordinator),
      config_(config),
      log_(replicas_.size() + 1),
      prober_(*this, replicas_, config.prober),
      replica_watermarks_(replicas_.size(), TimePoint::epoch()) {
  const auto it = std::find(replicas_.begin(), replicas_.end(), id);
  if (it == replicas_.end()) throw std::invalid_argument("core::Replica: id not in set");
  rank_ = static_cast<std::size_t>(it - replicas_.begin());
  init_obs();
}

void Replica::init_obs() {
  const obs::Sink& sink = obs_sink();
  obs_dfp_fast_ = sink.counter("domino.dfp.fast_commits");
  obs_dfp_slow_ = sink.counter("domino.dfp.slow_commits");
  obs_dfp_noops_ = sink.counter("domino.dfp.noop_resolutions");
  obs_dm_commits_ = sink.counter("domino.dm.commits");
  obs_rerouted_ = sink.counter("domino.dfp.rerouted_via_dm");
  obs_executed_ = sink.counter("domino.executed");
}

void Replica::start() {
  prober_.start();
  heartbeat_.start(context(), config_.heartbeat_interval, config_.heartbeat_interval,
                   [this] { broadcast_heartbeat(); });
}

std::size_t Replica::rank_of(NodeId node) const {
  const auto it = std::find(replicas_.begin(), replicas_.end(), node);
  return it == replicas_.end() ? replicas_.size()
                               : static_cast<std::size_t>(it - replicas_.begin());
}

Duration Replica::replication_latency_estimate() const {
  const Duration l = measure::estimate_replication_latency(prober_, id(), replicas_);
  return l == Duration::max() ? Duration::zero() : l;
}

void Replica::on_packet(const net::Packet& packet) {
  switch (wire::peek_type(packet.payload)) {
    case wire::MessageType::kProbe:
      handle_probe(packet);
      break;
    case wire::MessageType::kProbeReply:
      prober_.on_probe_reply(packet.src,
                             wire::decode_message<measure::ProbeReply>(packet.payload));
      break;
    case wire::MessageType::kDfpPropose:
      handle_dfp_propose(packet);
      break;
    case wire::MessageType::kDfpAcceptNotice:
      handle_dfp_accept_notice(packet.src, packet.payload);
      break;
    case wire::MessageType::kDfpCommit:
      handle_dfp_commit(packet.payload);
      break;
    case wire::MessageType::kDfpRecoveryAccept:
      handle_dfp_recovery_accept(packet.src, packet.payload);
      break;
    case wire::MessageType::kDfpRecoveryReply:
      handle_dfp_recovery_reply(packet.payload);
      break;
    case wire::MessageType::kDominoHeartbeat:
      handle_heartbeat(packet.src, packet.payload);
      break;
    case wire::MessageType::kDmPropose:
      handle_dm_propose(packet);
      break;
    case wire::MessageType::kDmAccept:
      handle_dm_accept(packet.src, packet.payload);
      break;
    case wire::MessageType::kDmAcceptReply:
      handle_dm_accept_reply(packet.payload);
      break;
    case wire::MessageType::kDmCommit:
      handle_dm_commit(packet.payload);
      break;
    case wire::MessageType::kDmRevoke:
      handle_dm_revoke(packet.src, packet.payload);
      break;
    case wire::MessageType::kDmRevokeReply:
      handle_dm_revoke_reply(packet.src, packet.payload);
      break;
    case wire::MessageType::kDmRevokeResult:
      apply_dm_revoke_result(wire::decode_message<DmRevokeResult>(packet.payload));
      break;
    case wire::MessageType::kDfpRangeRecover:
      handle_dfp_range_recover(packet.src, packet.payload);
      break;
    case wire::MessageType::kDfpRangeReply:
      handle_dfp_range_reply(packet.src, packet.payload);
      break;
    case wire::MessageType::kDfpRangeResolve:
      apply_dfp_range_resolve(wire::decode_message<DfpRangeResolve>(packet.payload));
      break;
    case wire::MessageType::kCatchupRequest:
      handle_catchup_request(packet.src, packet.payload);
      break;
    case wire::MessageType::kCatchupReply:
      handle_catchup_reply(packet.payload);
      break;
    default:
      break;
  }
}

void Replica::handle_probe(const net::Packet& packet) {
  const auto probe = wire::decode_message<measure::Probe>(packet.payload);
  send(packet.src,
       measure::Prober::make_reply(probe, local_now(), replication_latency_estimate()));
}

void Replica::enable_durability(recovery::DurableStore& store) {
  persistor_.bind(store, id(), [this](Duration delay, std::function<void()> fn) {
    after(delay, std::move(fn));
  });
}

// ------------------------------------------------------------ DFP acceptor

void Replica::handle_dfp_propose(const net::Packet& packet) {
  const auto msg = wire::decode_message<DfpPropose>(packet.payload);
  const log::LogPosition pos{msg.ts, dfp_lane()};

  // Accept iff our clock has not yet passed the timestamp (Section 5.3.2's
  // optimistic no-op acceptance means a passed position is already taken by
  // a no-op; an arrival exactly at its timestamp is still in time, matching
  // Section 3's "equal to or smaller than the predicted timestamp"), the
  // position is not already resolved (committed frontier), and no different
  // command occupies it (client timestamp collision).
  bool accept = !catching_up_ && local_now().nanos() <= msg.ts && !log_.is_resolved(pos);
  if (accept) {
    const auto* existing = log_.entry(pos);
    if (existing != nullptr && existing->command.id != msg.command.id) accept = false;
  }
  if (accept) {
    log_.accept(pos, msg.command);
    // Hold the advertised watermark at ts until the notice leaves (below).
    watermark_holds_.insert(msg.ts);
  }

  DfpAcceptNotice notice;
  notice.ts = msg.ts;
  notice.accepted = accept;
  notice.command = msg.command;
  notice.sender_local_time = advertised_watermark();
  const auto externalize = [this, notice, accept, ts = msg.ts,
                            client = msg.command.id.client] {
    if (accept) release_watermark_hold(ts);
    if (config_.all_replicas_learn) {
      // Section 5.7: every replica is a learner, so acceptances broadcast.
      for (NodeId r : replicas_) {
        if (r != id()) send(r, notice);
      }
    } else if (!is_coordinator()) {
      send(coordinator_, notice);
    }
    note_replica_watermark(rank_, notice.sender_local_time);
    process_dfp_notice(notice);
    send(client, notice);
  };
  if (accept) {
    // An acceptance counts toward the client-observed fast quorum, so it
    // must be durable before any notice leaves. A rejection needs no
    // record: the promise it makes — "my clock passed ts" — is re-honored
    // automatically after an amnesiac restart, because the local clock is
    // monotonic across crashes and this replica can never accept at ts
    // again.
    persistor_.persist(
        recovery::RecordTag::kAccepted,
        [&] { return accepted_record(msg.ts, dfp_lane(), msg.command, false, false); },
        externalize);
  } else {
    externalize();
  }
}

void Replica::handle_dfp_commit(const wire::Payload& payload) {
  const auto msg = wire::decode_message<DfpCommit>(payload);
  const log::LogPosition pos{msg.ts, dfp_lane()};
  if (msg.is_noop) {
    // Resolve only this position. Advancing the lane watermark to ts + 1
    // would blanket-noop every empty position below it, and positions
    // resolve out of order (independent recovery rounds): an earlier
    // position this replica rejected — empty here, but committed with a
    // command elsewhere — would be silently swallowed before its
    // DfpCommit arrives.
    log_.resolve_as_noop(pos);
  } else {
    log_.commit(pos, msg.command);
    dfp_committed_.insert(msg.command.id);
  }
  // Nothing is externalized on this learner path; fire-and-forget.
  persistor_.persist(recovery::RecordTag::kCommitted, [&] {
    return committed_record(msg.ts, dfp_lane(), msg.is_noop,
                            msg.is_noop ? nullptr : &msg.command);
  });
  // Settle any learner-side tally for this position.
  auto it = dfp_positions_.find(msg.ts);
  if (it != dfp_positions_.end()) {
    it->second.resolved = true;
    if (!msg.is_noop) it->second.winner = msg.command.id;
  }
  execute_ready();
}

void Replica::handle_dfp_recovery_accept(NodeId from, const wire::Payload& payload) {
  const auto msg = wire::decode_message<DfpRecoveryAccept>(payload);
  // Ballot 1 from the single coordinator supersedes our ballot-0 choice;
  // the durable state change lands with the DfpCommit that follows.
  send(from, DfpRecoveryReply{msg.ts});
}

// --------------------------------------------------------- DFP coordinator

void Replica::handle_dfp_accept_notice(NodeId from, const wire::Payload& payload) {
  if (!is_coordinator() && !config_.all_replicas_learn) return;
  const auto msg = wire::decode_message<DfpAcceptNotice>(payload);
  const std::size_t from_rank = rank_of(from);
  if (from_rank < replicas_.size()) {
    note_replica_watermark(from_rank, msg.sender_local_time);
  }
  process_dfp_notice(msg);
}

void Replica::process_dfp_notice(const DfpAcceptNotice& msg) {
  if (dfp_committed_.contains(msg.command.id)) return;  // late duplicate

  // A notice for a position already behind the committed frontier: the
  // position resolved as no-op; the coordinator routes the late request
  // through DM and releases any acceptor stuck with a blocked entry.
  if (msg.ts < commit_frontier_ && !dfp_positions_.contains(msg.ts)) {
    if (!is_coordinator()) return;
    if (msg.accepted) {
      DfpCommit noop{msg.ts, true, {}};
      for (NodeId r : replicas_) {
        if (r != id()) send(r, noop);
      }
      log_.advance_watermark(dfp_lane(), msg.ts + 1);
    }
    reroute_via_dm(msg.command);
    return;
  }

  DfpPosition& pos = dfp_positions_[msg.ts];
  if (pos.resolved) {
    // The request cannot commit at this position any more (unless it is the
    // winner); the coordinator routes it through DM instead.
    if (is_coordinator() && (!pos.winner || *pos.winner != msg.command.id)) {
      reroute_via_dm(msg.command);
    }
    return;
  }

  auto tally = std::find_if(pos.tallies.begin(), pos.tallies.end(),
                            [&](const CommandTally& t) {
                              return t.command.id == msg.command.id;
                            });
  if (tally == pos.tallies.end()) {
    pos.tallies.push_back(CommandTally{msg.command, 0, 0});
    tally = std::prev(pos.tallies.end());
  }
  msg.accepted ? ++tally->accepts : ++tally->rejects;
  coordinator_check(msg.ts);
}

TimePoint Replica::advertised_watermark() const {
  TimePoint adv = local_now();
  if (!watermark_holds_.empty()) {
    // A watermark of V covers positions strictly below V, so advertising
    // exactly the oldest held timestamp keeps that position open.
    const TimePoint held = TimePoint::epoch() + nanoseconds(*watermark_holds_.begin());
    if (held < adv) adv = held;
  }
  return adv;
}

void Replica::release_watermark_hold(std::int64_t ts) {
  const auto it = watermark_holds_.find(ts);
  if (it != watermark_holds_.end()) watermark_holds_.erase(it);
}

void Replica::note_replica_watermark(std::size_t rank, TimePoint watermark) {
  if (rank >= replica_watermarks_.size()) return;
  replica_watermarks_[rank] = std::max(replica_watermarks_[rank], watermark);
}

void Replica::coordinator_check(std::int64_t ts) {
  auto it = dfp_positions_.find(ts);
  if (it == dfp_positions_.end()) return;
  DfpPosition& pos = it->second;
  if (pos.resolved || pos.recovering) return;

  const std::size_t n = replicas_.size();
  const std::size_t q = measure::supermajority(n);
  bool all_dead = !pos.tallies.empty();
  for (const CommandTally& t : pos.tallies) {
    if (t.accepts >= q) {
      // Fast path: a supermajority accepted the same command here.
      if (is_coordinator()) {
        resolve_dfp(ts, /*is_noop=*/false, t.command, /*was_fast=*/true);
      } else {
        // Learner-side fast commit (Section 5.7): apply locally; the
        // coordinator's DfpCommit is then a no-op here.
        pos.resolved = true;
        pos.winner = t.command.id;
        dfp_committed_.insert(t.command.id);
        log_.commit(log::LogPosition{ts, dfp_lane()}, t.command);
        persistor_.persist(recovery::RecordTag::kCommitted, [&] {
          return committed_record(ts, dfp_lane(), false, &t.command);
        });
        execute_ready();
      }
      return;
    }
    if (t.rejects <= n - q) all_dead = false;  // this command can still win fast
  }
  if (!is_coordinator()) return;  // recovery is the coordinator's job
  if (all_dead) {
    // No proposal at this position can reach a supermajority any more; run
    // coordinated recovery.
    start_dfp_recovery(ts);
    return;
  }
  if (!pos.timer_armed) {
    pos.timer_armed = true;
    after(config_.recovery_timeout, [this, ts] {
      auto pit = dfp_positions_.find(ts);
      if (pit == dfp_positions_.end() || pit->second.resolved || pit->second.recovering) {
        return;
      }
      start_dfp_recovery(ts);
    });
  }
}

void Replica::start_dfp_recovery(std::int64_t ts) {
  DfpPosition& pos = dfp_positions_[ts];
  pos.recovering = true;
  if (const obs::SpanId s = open_wait_span("dfp_recovery"); s != 0) {
    dfp_recovery_spans_[ts] = s;
  }
  // Ballot-1 choice: the most-accepted proposal if it is still choosable,
  // else no-op. The choosability threshold is q - f accepts: below it, a
  // supermajority of replicas must have no-op'd the position, so learners
  // that derive the no-op frontier from watermarks (Section 5.7's
  // every-replica-learner mode) may already have learned the no-op — the
  // recovery must agree with them. A fast-learned command has accepts >= q
  // here too and resolves before recovery starts.
  DfpCommit choice;
  choice.ts = ts;
  const CommandTally* best = nullptr;
  for (const CommandTally& t : pos.tallies) {
    if (t.accepts == 0) continue;
    if (best == nullptr || t.accepts > best->accepts) best = &t;
  }
  const std::size_t choosable_threshold =
      measure::supermajority(replicas_.size()) - measure::fault_tolerance(replicas_.size());
  if (best != nullptr &&
      (!config_.all_replicas_learn || best->accepts >= choosable_threshold)) {
    choice.is_noop = false;
    choice.command = best->command;
  } else {
    choice.is_noop = true;
  }
  pos.recovery_choice = choice;
  pos.recovery_acks = 1;  // self

  // Self-accept at ballot 1.
  if (!choice.is_noop) {
    const log::LogPosition lp{ts, dfp_lane()};
    if (!log_.is_resolved(lp)) {
      log_.accept(lp, choice.command);
      persistor_.persist(recovery::RecordTag::kAccepted, [&] {
        return accepted_record(ts, dfp_lane(), choice.command, false, false);
      });
    }
  }
  DfpRecoveryAccept msg{ts, choice.is_noop, choice.command};
  for (NodeId r : replicas_) {
    if (r != id()) send(r, msg);
  }
}

void Replica::handle_dfp_recovery_reply(const wire::Payload& payload) {
  if (!is_coordinator()) return;
  const auto msg = wire::decode_message<DfpRecoveryReply>(payload);
  auto it = dfp_positions_.find(msg.ts);
  if (it == dfp_positions_.end() || it->second.resolved || !it->second.recovering) return;
  DfpPosition& pos = it->second;
  if (++pos.recovery_acks < measure::majority(replicas_.size())) return;
  const DfpCommit choice = *pos.recovery_choice;
  resolve_dfp(msg.ts, choice.is_noop, choice.command, /*was_fast=*/false);
}

void Replica::resolve_dfp(std::int64_t ts, bool is_noop, const sm::Command& command,
                          bool was_fast) {
  DfpPosition& pos = dfp_positions_[ts];
  pos.resolved = true;
  const auto rspan_it = dfp_recovery_spans_.find(ts);
  if (rspan_it != dfp_recovery_spans_.end()) {
    close_wait_span(rspan_it->second);
    dfp_recovery_spans_.erase(rspan_it);
  }

  const log::LogPosition lp{ts, dfp_lane()};
  if (!is_noop) {
    pos.winner = command.id;
    dfp_committed_.insert(command.id);
    log_.commit(lp, command);
    was_fast ? ++dfp_fast_commits_ : ++dfp_slow_commits_;
    was_fast ? obs_dfp_fast_.inc() : obs_dfp_slow_.inc();
    if (was_fast && obs_sink().tracing()) {
      obs_sink().record(obs::TraceEvent{.at = true_now(),
                                        .kind = obs::EventKind::kFastAccept,
                                        .node = id(),
                                        .request = command.id,
                                        .value = ts});
    }
  } else {
    ++dfp_noop_resolutions_;
    obs_dfp_noops_.inc();
    // Single-position resolution; see handle_dfp_commit for why the lane
    // watermark must not jump to ts + 1 here.
    log_.resolve_as_noop(lp);
  }
  // Losers captured by value: the tally may be garbage-collected while the
  // commit record syncs.
  std::vector<sm::Command> losers;
  for (const CommandTally& t : pos.tallies) {
    if (pos.winner && *pos.winner == t.command.id) continue;
    losers.push_back(t.command);
  }
  // Resolving makes the local commit frontier eligible to pass ts. Hold the
  // advertised frontier below it until the DfpCommit leaves: a heartbeat
  // overtaking the delayed broadcast would carry a frontier that lets a
  // rejecting replica (whose position is empty) no-op a committed command.
  if (!is_noop) watermark_holds_.insert(ts);
  // The DfpCommit broadcast and the client reply externalize the decision;
  // they wait for the commit record to be durable.
  persistor_.persist(
      recovery::RecordTag::kCommitted,
      [&] { return committed_record(ts, dfp_lane(), is_noop, is_noop ? nullptr : &command); },
      [this, ts, is_noop, command, was_fast, losers = std::move(losers)] {
        if (!is_noop) release_watermark_hold(ts);
        DfpCommit msg{ts, is_noop, is_noop ? sm::Command{} : command};
        for (NodeId r : replicas_) {
          if (r != id()) send(r, msg);
        }
        if (!is_noop && !was_fast) send(command.id.client, DfpClientReply{command.id});
        // Every command that lost this position continues through DM
        // (Section 5.3.3: "The DFP coordinator will propose the other
        // request through Domino's Mencius").
        for (const sm::Command& loser : losers) reroute_via_dm(loser);
        execute_ready();
      });
}

void Replica::reroute_via_dm(const sm::Command& command) {
  if (dfp_committed_.contains(command.id)) return;   // already committed via DFP
  if (!rerouted_.insert(command.id).second) return;  // already re-proposed
  obs_rerouted_.inc();
  if (obs_sink().tracing()) {
    obs_sink().record(obs::TraceEvent{.at = true_now(),
                                      .kind = obs::EventKind::kCoordinatorFallback,
                                      .node = id(),
                                      .request = command.id});
  }
  dm_lead(command, /*reply_via_dfp=*/true);
}

std::int64_t Replica::computed_commit_frontier() const {
  // A no-op is chosen at an empty position p once a supermajority of
  // replicas has passed p, i.e. at least q watermarks exceed p — which
  // holds exactly for p below the (n - q + 1)-th smallest watermark.
  std::vector<Duration> wms;
  wms.reserve(replicas_.size());
  for (std::size_t r = 0; r < replicas_.size(); ++r) {
    const TimePoint wm = r == rank_ ? advertised_watermark() : replica_watermarks_[r];
    wms.push_back(wm - TimePoint::epoch());
  }
  const std::size_t rank_needed =
      replicas_.size() - measure::supermajority(replicas_.size()) + 1;
  const Duration wq = measure::kth_smallest(std::move(wms), rank_needed);
  std::int64_t frontier = wq.nanos();
  // Never advance past an unresolved proposal (its outcome is still open).
  for (const auto& [ts, pos] : dfp_positions_) {
    if (!pos.resolved && ts < frontier) {
      frontier = ts;
      break;
    }
    if (ts >= frontier) break;
  }
  // Nor past a resolution whose externalizing broadcast is still waiting on
  // the durable sync (see resolve_dfp): a watermark of exactly the held
  // timestamp keeps that position open at every learner.
  if (!watermark_holds_.empty()) {
    frontier = std::min(frontier, *watermark_holds_.begin());
  }
  return std::max(frontier, commit_frontier_);
}

// --------------------------------------------------------------------- DM

void Replica::handle_dm_propose(const net::Packet& packet) {
  if (catching_up_) return;  // not rejoined yet; the client's retry will land
  const auto msg = wire::decode_message<DmPropose>(packet.payload);
  dm_lead(msg.command, /*reply_via_dfp=*/false);
}

void Replica::dm_lead(const sm::Command& command, bool reply_via_dfp) {
  // Stamp the request with when replication to a majority should finish
  // (Section 5.5: "it assigns the request with a future time indicating
  // when it should have replicated the request to a majority").
  const Duration l = replication_latency_estimate();
  std::int64_t ts = (local_now() + l).nanos();
  ts = std::max({ts, dm_last_assigned_ + 1, local_now().nanos() + 1});
  dm_last_assigned_ = ts;

  const log::LogPosition pos{ts, static_cast<std::uint32_t>(rank_)};
  log_.accept(pos, command);
  watermark_holds_.insert(ts);  // released once the DmAccepts leave
  dm_pending_.emplace(ts, DmPending{1, command.id, reply_via_dfp});
  if (const obs::SpanId s = open_wait_span("dm_quorum_wait"); s != 0) {
    dm_quorum_spans_[ts] = s;
  }

  // The accept record doubles as the timestamp reservation: replay raises
  // dm_last_assigned_ past it, so a restarted leader can never re-assign a
  // position it already promised away.
  persistor_.persist(
      recovery::RecordTag::kAccepted,
      [&] {
        return accepted_record(ts, static_cast<std::uint32_t>(rank_), command,
                               /*dm_leader=*/true, reply_via_dfp);
      },
      [this, ts, command] {
        release_watermark_hold(ts);
        DmAccept msg{ts, static_cast<std::uint32_t>(rank_), command};
        for (NodeId r : replicas_) {
          if (r != id()) send(r, msg);
        }
        maybe_commit_dm(ts);  // single-replica deployments commit immediately
      });
}

void Replica::handle_dm_accept(NodeId from, const wire::Payload& payload) {
  const auto msg = wire::decode_message<DmAccept>(payload);
  if (msg.lane >= replicas_.size()) return;
  const log::LogPosition pos{msg.ts, msg.lane};
  if (log_.is_resolved(pos) && !log_.is_committed(pos)) {
    // The position resolved as a no-op here (reachable only when a
    // restarted leader re-replicates an entry whose position was revoked
    // in the meantime); acking would let the leader commit a position this
    // replica will never execute.
    return;
  }
  log_.accept(pos, msg.command);
  // The ack counts toward the leader's majority, so the acceptance must be
  // durable before it leaves.
  persistor_.persist(
      recovery::RecordTag::kAccepted,
      [&] { return accepted_record(msg.ts, msg.lane, msg.command, false, false); },
      [this, from, ts = msg.ts, lane = msg.lane] { send(from, DmAcceptReply{ts, lane}); });
}

void Replica::handle_dm_accept_reply(const wire::Payload& payload) {
  const auto msg = wire::decode_message<DmAcceptReply>(payload);
  if (msg.lane != rank_) return;
  auto it = dm_pending_.find(msg.ts);
  if (it == dm_pending_.end()) return;
  ++it->second.acks;
  maybe_commit_dm(msg.ts);
}

void Replica::maybe_commit_dm(std::int64_t ts) {
  auto it = dm_pending_.find(ts);
  if (it == dm_pending_.end()) return;
  if (it->second.acks < measure::majority(replicas_.size())) return;
  const DmPending pending = it->second;
  dm_pending_.erase(it);
  const auto span_it = dm_quorum_spans_.find(ts);
  if (span_it != dm_quorum_spans_.end()) {
    close_wait_span(span_it->second);
    dm_quorum_spans_.erase(span_it);
  }

  log_.commit(log::LogPosition{ts, static_cast<std::uint32_t>(rank_)});
  ++dm_commits_;
  obs_dm_commits_.inc();
  // The client reply externalizes the commit; it waits for the decision to
  // be durable. The record carries no command — the leader's own kAccepted
  // record for this position always precedes it in the durable log.
  persistor_.persist(
      recovery::RecordTag::kCommitted,
      [&] { return committed_record(ts, static_cast<std::uint32_t>(rank_), false, nullptr); },
      [this, ts, pending] {
        DmCommit msg{ts, static_cast<std::uint32_t>(rank_)};
        for (NodeId r : replicas_) {
          if (r != id()) send(r, msg);
        }
        if (pending.reply_via_dfp) {
          send(pending.request.client, DfpClientReply{pending.request});
        } else {
          send(pending.request.client, DmClientReply{pending.request});
        }
        execute_ready();
      });
}

void Replica::handle_dm_commit(const wire::Payload& payload) {
  const auto msg = wire::decode_message<DmCommit>(payload);
  if (msg.lane >= replicas_.size()) return;
  const log::LogPosition pos{msg.ts, msg.lane};
  if (log_.entry(pos) == nullptr) {
    // We never saw the accept (it was lost while we were crashed or
    // partitioned) and the commit carries no command, so there is nothing
    // to materialize. Ignore it: the position stays unresolved here and
    // this replica lags until the lane's revocation/watermark machinery
    // resolves the range — it must not bring the whole process down.
    return;
  }
  log_.commit(pos);
  // Nothing is externalized on this follower path; fire-and-forget. The
  // command rides in the record so replay does not depend on a local
  // kAccepted record (the entry may have arrived via catch-up instead).
  persistor_.persist(recovery::RecordTag::kCommitted, [&] {
    return committed_record(msg.ts, msg.lane, false, &log_.entry(pos)->command);
  });
  execute_ready();
}

// -------------------------------------------------- failure handling (5.8)

bool Replica::is_successor_for(std::size_t dead_rank) const {
  // The lowest-ranked live replica (other than the dead one) takes over.
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    if (i == dead_rank) continue;
    if (i == rank_) return true;
    if (!prober_.looks_failed(replicas_[i])) return false;
  }
  return false;
}

void Replica::maybe_run_failure_recovery() {
  // Connectivity guard: a replica that cannot see a majority of the cluster
  // (counting itself) is more likely the isolated one — freshly recovered
  // from a crash or cut off by a partition, its failure detector is stale
  // about *everyone*. Running recovery in that state would revoke healthy
  // lanes on the strength of a one-replica "quorum". Stand down until the
  // probe feed confirms a connected majority.
  std::size_t reachable = 1;  // self
  for (std::size_t r = 0; r < replicas_.size(); ++r) {
    if (r != rank_ && !prober_.looks_failed(replicas_[r])) ++reachable;
  }
  if (reachable < measure::majority(replicas_.size())) return;

  bool any_failed = false;
  for (std::size_t r = 0; r < replicas_.size(); ++r) {
    if (r == rank_ || !prober_.looks_failed(replicas_[r])) continue;
    any_failed = true;
    // DM lane takeover: the successor revokes the dead leader's lane
    // ("DM will select one of the remaining replicas to manage the log
    // positions that are associated with the failed replica").
    if (is_successor_for(r)) {
      const auto lane = static_cast<std::uint32_t>(r);
      auto& next_at = next_dm_revoke_at_[lane];
      if (true_now() >= next_at && !dm_revokes_[lane].active) {
        next_at = true_now() + kRecoveryRoundInterval;
        start_dm_revoke(lane);
      }
    }
  }
  // DFP frontier recovery: the dead replica's frozen watermark would stall
  // the committed-no-op frontier forever; the coordinator recovers the
  // range with a ballot-1 round over the live replicas.
  if (any_failed && is_coordinator() && !dfp_range_round_.active &&
      true_now() >= next_dfp_range_at_) {
    next_dfp_range_at_ = true_now() + kRecoveryRoundInterval;
    start_dfp_range_recover(commit_frontier_);
  }
}

void Replica::start_dm_revoke(std::uint32_t lane) {
  RecoveryRound& round = dm_revokes_[lane];
  round = RecoveryRound{};
  round.active = true;
  auto through_it = dm_revoked_through_.find(lane);
  round.from = through_it == dm_revoked_through_.end() ? log_.watermark(lane)
                                                       : through_it->second;
  round.to = local_now().nanos();
  if (round.to <= round.from) {
    round.active = false;
    return;
  }
  // Seed with our own live entries on the lane.
  for (const auto& e : log_.entries_in_range(lane, round.from, round.to)) {
    round.entries.emplace(e.ts, e.command);
  }
  DmRevoke msg{lane, round.from, round.to};
  for (NodeId r : replicas_) {
    if (r != id()) send(r, msg);
  }
  try_finalize_dm_revoke(lane);  // single-live-replica degenerate case
}

void Replica::handle_dm_revoke(NodeId from, const wire::Payload& payload) {
  const auto msg = wire::decode_message<DmRevoke>(payload);
  DmRevokeReply reply;
  reply.lane = msg.lane;
  reply.from_ts = msg.from_ts;
  reply.to_ts = msg.to_ts;
  for (const auto& e : log_.entries_in_range(msg.lane, msg.from_ts, msg.to_ts)) {
    reply.entries.push_back(RangeEntryWire{e.ts, e.command});
  }
  send(from, reply);
}

void Replica::handle_dm_revoke_reply(NodeId from, const wire::Payload& payload) {
  const auto msg = wire::decode_message<DmRevokeReply>(payload);
  auto it = dm_revokes_.find(msg.lane);
  if (it == dm_revokes_.end() || !it->second.active) return;
  RecoveryRound& round = it->second;
  if (msg.from_ts != round.from || msg.to_ts != round.to) return;  // stale round
  round.replied.insert(from);
  for (const auto& e : msg.entries) round.entries.emplace(e.ts, e.command);
  try_finalize_dm_revoke(msg.lane);
}

void Replica::try_finalize_dm_revoke(std::uint32_t lane) {
  RecoveryRound& round = dm_revokes_[lane];
  if (!round.active) return;
  // Wait for every replica we believe is alive: querying all live replicas
  // (not just a majority) guarantees that an entry committed-and-compacted
  // at some replicas is still reported by any replica that merely accepted
  // it.
  std::size_t replied = 1;  // self
  for (std::size_t r = 0; r < replicas_.size(); ++r) {
    if (r == rank_ || prober_.looks_failed(replicas_[r])) continue;
    if (!round.replied.contains(replicas_[r])) return;
    ++replied;
  }
  // Never finalize on less than a majority of lane state: if the failure
  // detector degraded mid-round (e.g. we got partitioned while revoking),
  // the "all live replicas" wait-set above can shrink to just ourselves,
  // and a single-replica revocation could no-op entries the connected
  // majority has accepted. Keep the round open until probes recover.
  if (replied < measure::majority(replicas_.size())) return;
  DmRevokeResult result;
  result.lane = lane;
  result.from_ts = round.from;
  result.through_ts = round.to;
  for (const auto& [ts, cmd] : round.entries) {
    result.entries.push_back(RangeEntryWire{ts, cmd});
  }
  round.active = false;
  dm_revoked_through_[lane] = round.to;
  for (NodeId r : replicas_) {
    if (r != id()) send(r, result);
  }
  apply_dm_revoke_result(result);
}

void Replica::apply_dm_revoke_result(const DmRevokeResult& result) {
  if (result.lane >= replicas_.size()) return;
  // No-op our accepted entries that the revocation did not commit.
  for (const auto& e :
       log_.entries_in_range(result.lane, result.from_ts, result.through_ts)) {
    if (e.committed) continue;
    const bool listed =
        std::any_of(result.entries.begin(), result.entries.end(),
                    [&](const RangeEntryWire& w) { return w.ts == e.ts; });
    if (!listed) {
      log_.resolve_as_noop(log::LogPosition{e.ts, result.lane});
      persistor_.persist(recovery::RecordTag::kCommitted, [&] {
        return committed_record(e.ts, result.lane, true, nullptr);
      });
    }
  }
  for (const auto& e : result.entries) {
    log_.commit(log::LogPosition{e.ts, result.lane}, e.command);
    persistor_.persist(recovery::RecordTag::kCommitted, [&] {
      return committed_record(e.ts, result.lane, false, &e.command);
    });
  }
  log_.advance_watermark(result.lane, result.through_ts);
  execute_ready();
}

void Replica::start_dfp_range_recover(std::int64_t from_ts) {
  RecoveryRound& round = dfp_range_round_;
  round = RecoveryRound{};
  round.active = true;
  round.from = from_ts;
  // Recover up to the slowest live watermark (live replicas have no-op'd
  // everything below their clocks; the dead one cannot object at ballot 1).
  Duration to = local_now() - TimePoint::epoch();
  for (std::size_t r = 0; r < replicas_.size(); ++r) {
    if (r == rank_ || prober_.looks_failed(replicas_[r])) continue;
    to = std::min(to, replica_watermarks_[r] - TimePoint::epoch());
  }
  round.to = to.nanos();
  if (round.to <= round.from) {
    round.active = false;
    return;
  }
  for (const auto& e : log_.entries_in_range(dfp_lane(), round.from, round.to)) {
    round.entries.emplace(e.ts, e.command);
  }
  DfpRangeRecover msg{round.from, round.to};
  for (NodeId r : replicas_) {
    if (r != id() && !prober_.looks_failed(r)) send(r, msg);
  }
  try_finalize_dfp_range();
}

void Replica::handle_dfp_range_recover(NodeId from, const wire::Payload& payload) {
  const auto msg = wire::decode_message<DfpRangeRecover>(payload);
  DfpRangeReply reply;
  reply.from_ts = msg.from_ts;
  reply.to_ts = msg.to_ts;
  for (const auto& e : log_.entries_in_range(dfp_lane(), msg.from_ts, msg.to_ts)) {
    reply.entries.push_back(RangeEntryWire{e.ts, e.command});
  }
  send(from, reply);
}

void Replica::handle_dfp_range_reply(NodeId from, const wire::Payload& payload) {
  const auto msg = wire::decode_message<DfpRangeReply>(payload);
  RecoveryRound& round = dfp_range_round_;
  if (!round.active || msg.from_ts != round.from || msg.to_ts != round.to) return;
  round.replied.insert(from);
  for (const auto& e : msg.entries) round.entries.emplace(e.ts, e.command);
  try_finalize_dfp_range();
}

void Replica::try_finalize_dfp_range() {
  RecoveryRound& round = dfp_range_round_;
  if (!round.active) return;
  for (std::size_t r = 0; r < replicas_.size(); ++r) {
    if (r == rank_ || prober_.looks_failed(replicas_[r])) continue;
    if (!round.replied.contains(replicas_[r])) return;
  }
  round.active = false;

  DfpRangeResolve resolve;
  resolve.from_ts = round.from;
  resolve.through_ts = round.to;
  for (const auto& [ts, cmd] : round.entries) {
    resolve.entries.push_back(RangeEntryWire{ts, cmd});
    if (dfp_committed_.insert(cmd.id).second) {
      ++dfp_slow_commits_;
      obs_dfp_slow_.inc();
      // The client may not have reached a supermajority on its own; tell it
      // (duplicate notifications are deduplicated client-side).
      send(cmd.id.client, DfpClientReply{cmd.id});
    }
  }
  // Settle the coordinator's per-position bookkeeping inside the range:
  // commands that did not make the committed list continue through DM.
  for (auto it = dfp_positions_.lower_bound(round.from);
       it != dfp_positions_.end() && it->first <= round.to;) {
    DfpPosition& pos = it->second;
    if (!pos.resolved) {
      pos.resolved = true;
      const auto winner = round.entries.find(it->first);
      if (winner != round.entries.end()) pos.winner = winner->second.id;
      for (const CommandTally& t : pos.tallies) {
        if (pos.winner && *pos.winner == t.command.id) continue;
        reroute_via_dm(t.command);
      }
    }
    it = dfp_positions_.erase(it);
  }
  commit_frontier_ = std::max(commit_frontier_, round.to);

  for (NodeId r : replicas_) {
    if (r != id()) send(r, resolve);
  }
  apply_dfp_range_resolve(resolve);
}

void Replica::apply_dfp_range_resolve(const DfpRangeResolve& resolve) {
  for (const auto& e :
       log_.entries_in_range(dfp_lane(), resolve.from_ts, resolve.through_ts)) {
    if (e.committed) continue;
    const bool listed =
        std::any_of(resolve.entries.begin(), resolve.entries.end(),
                    [&](const RangeEntryWire& w) { return w.ts == e.ts; });
    if (!listed) {
      log_.resolve_as_noop(log::LogPosition{e.ts, dfp_lane()});
      persistor_.persist(recovery::RecordTag::kCommitted, [&] {
        return committed_record(e.ts, dfp_lane(), true, nullptr);
      });
    }
  }
  for (const auto& e : resolve.entries) {
    log_.commit(log::LogPosition{e.ts, dfp_lane()}, e.command);
    persistor_.persist(recovery::RecordTag::kCommitted, [&] {
      return committed_record(e.ts, dfp_lane(), false, &e.command);
    });
  }
  log_.advance_watermark(dfp_lane(), resolve.through_ts);
  execute_ready();
}

// ---------------------------------------------------------- crash recovery

void Replica::restart() {
  persistor_.begin_restart();
  for (auto& [ts, span] : dm_quorum_spans_) {
    (void)ts;
    close_wait_span(span);
  }
  dm_quorum_spans_.clear();
  for (auto& [ts, span] : dfp_recovery_spans_) {
    (void)ts;
    close_wait_span(span);
  }
  dfp_recovery_spans_.clear();
  log_ = log::GlobalLog(replicas_.size() + 1);
  store_ = sm::KvStore{};
  dfp_positions_.clear();
  std::fill(replica_watermarks_.begin(), replica_watermarks_.end(), TimePoint::epoch());
  commit_frontier_ = 0;
  dfp_committed_.clear();
  dm_pending_.clear();
  // Pending syncs died with the crash (their continuations are epoch
  // guarded), so the matching releases will never run.
  watermark_holds_.clear();
  dm_last_assigned_ = 0;
  rerouted_.clear();
  dm_revokes_.clear();
  dm_revoked_through_.clear();
  next_dm_revoke_at_.clear();
  dfp_range_round_ = RecoveryRound{};
  next_dfp_range_at_ = TimePoint::epoch();
  dfp_fast_commits_ = 0;
  dfp_slow_commits_ = 0;
  dfp_noop_resolutions_ = 0;
  dm_commits_ = 0;
  catching_up_ = true;
  recovery_started_at_ = true_now();
  if (obs_sink().tracing()) {
    obs_sink().record(obs::TraceEvent{
        .at = true_now(),
        .kind = obs::EventKind::kRecoveryStart,
        .node = id(),
        .value = static_cast<std::int64_t>(persistor_.epoch())});
  }

  persistor_.replay([this](const recovery::DurableRecord& rec) {
    wire::ByteReader r(rec.body);
    const std::int64_t ts = r.svarint();
    const auto lane = static_cast<std::uint32_t>(r.varint());
    if (lane >= log_.lane_count()) return;
    const log::LogPosition pos{ts, lane};
    switch (rec.tag) {
      case recovery::RecordTag::kAccepted: {
        sm::Command cmd = sm::Command::decode(r);
        const bool dm_leader = r.boolean();
        const bool reply_via_dfp = r.boolean();
        if (dm_leader && lane == rank_) {
          // Reservation: never assign at or below a promised timestamp
          // again, even though the ack counts died with the crash.
          dm_last_assigned_ = std::max(dm_last_assigned_, ts);
          dm_pending_.emplace(ts, DmPending{1, cmd.id, reply_via_dfp});
        }
        // A later kCommitted/no-op record of the same position wins; the
        // log ignores a (same-command) re-accept of a resolved entry.
        log_.accept(pos, std::move(cmd));
        break;
      }
      case recovery::RecordTag::kCommitted: {
        const bool is_noop = r.boolean();
        const bool has_cmd = r.boolean();
        if (is_noop) {
          if (!log_.is_committed(pos)) log_.resolve_as_noop(pos);
          log_.advance_watermark(lane, ts + 1);
          if (lane == dfp_lane()) dfp_positions_[ts].resolved = true;
          break;
        }
        sm::Command cmd;
        if (has_cmd) cmd = sm::Command::decode(r);
        const auto* e = log_.entry(pos);
        if (e != nullptr && e->status == log::GlobalLog::Status::kAbortedNoop) break;
        if (!has_cmd && e == nullptr) break;  // no accept record either; catch-up covers it
        const RequestId rid = has_cmd ? cmd.id : e->command.id;
        log_.commit(pos, has_cmd ? std::optional<sm::Command>(std::move(cmd)) : std::nullopt);
        if (lane == dfp_lane()) {
          dfp_committed_.insert(rid);
          // Keep the position marked resolved so a late notice for it
          // reroutes instead of re-opening a decided position.
          DfpPosition& p = dfp_positions_[ts];
          p.resolved = true;
          p.winner = rid;
        } else if (lane == rank_) {
          dm_pending_.erase(ts);
        }
        break;
      }
      default:
        break;  // Domino writes no other tags
    }
  });
  execute_ready();

  // Accepted-but-uncommitted own-lane entries lost their ack counts with
  // the crash; re-replicate them (same position, same command — followers
  // that already accepted simply re-ack) so the lane frontier cannot stall
  // behind them.
  std::vector<std::int64_t> pending_ts;
  pending_ts.reserve(dm_pending_.size());
  for (const auto& [ts, pending] : dm_pending_) {
    (void)pending;
    pending_ts.push_back(ts);
  }
  std::sort(pending_ts.begin(), pending_ts.end());
  for (const std::int64_t ts : pending_ts) {
    const auto* e = log_.entry(log::LogPosition{ts, static_cast<std::uint32_t>(rank_)});
    if (e == nullptr || e->status != log::GlobalLog::Status::kAccepted) {
      dm_pending_.erase(ts);  // resolved by a replayed record after all
      continue;
    }
    if (const obs::SpanId s = open_wait_span("dm_quorum_wait"); s != 0) {
      dm_quorum_spans_[ts] = s;
    }
    const DmAccept msg{ts, static_cast<std::uint32_t>(rank_), e->command};
    for (NodeId r : replicas_) {
      if (r != id()) send(r, msg);
    }
    maybe_commit_dm(ts);  // single-replica deployments commit immediately
  }

  // A restarted coordinator lost the tallies of every unresolved DFP
  // position, so nothing would ever resolve the acceptors' stuck entries
  // there. Schedule one range-recovery round over the live replicas; the
  // delay lets probes and heartbeats refresh the liveness/watermark views
  // it relies on. It starts from 0 rather than commit_frontier_: with the
  // tallies gone the frontier no longer caps at stuck positions, so it may
  // already have advanced past them (compacted history keeps the round
  // cheap). Durable ballot-0 accepts make the round safe: every live
  // replica reports its accepted entries and each reported entry is
  // committed, so a client-observed fast commit cannot be no-op'd.
  if (is_coordinator()) {
    after(config_.recovery_timeout, [this, epoch = persistor_.epoch()] {
      if (epoch != persistor_.epoch() || dfp_range_round_.active) return;
      next_dfp_range_at_ = true_now() + kRecoveryRoundInterval;
      start_dfp_range_recover(0);
    });
  }
  send_catchup_requests();
}

void Replica::send_catchup_requests() {
  if (!catching_up_) return;
  if (replicas_.size() <= 1) {
    finish_rejoin();
    return;
  }
  const recovery::CatchupRequest req{persistor_.epoch(), store_.applied_count()};
  for (NodeId r : replicas_) {
    if (r != id()) send(r, req);
  }
  after(kCatchupRetryInterval, [this, epoch = persistor_.epoch()] {
    if (catching_up_ && epoch == persistor_.epoch()) send_catchup_requests();
  });
}

void Replica::handle_catchup_request(NodeId from, const wire::Payload& payload) {
  // Always served, even while this replica is itself catching up: replying
  // with the current state keeps simultaneous recoveries from deadlocking.
  const auto req = wire::decode_message<recovery::CatchupRequest>(payload);
  recovery::CatchupReply reply;
  reply.epoch = req.epoch;
  reply.applied = store_.applied_count();
  const log::LogPosition frontier = log_.global_frontier();
  reply.frontier = frontier.ts;
  reply.frontier_lane = frontier.lane;
  reply.snapshot.reserve(store_.items().size());
  for (const auto& [key, value] : store_.items()) {
    reply.snapshot.push_back(recovery::KvEntry{key, value});
  }
  // Per-lane committed-no-op watermarks: they cover the empty positions a
  // requester cannot otherwise resolve (e.g. a revoked lane whose leader is
  // still down and so sends no clock heartbeats).
  reply.watermarks.reserve(log_.lane_count());
  for (std::uint32_t lane = 0; lane < log_.lane_count(); ++lane) {
    reply.watermarks.push_back(log_.watermark(lane));
  }
  for (auto& e : log_.resolved_unexecuted()) {
    wire::ByteWriter aux;
    aux.boolean(e.is_noop);
    reply.entries.push_back(
        recovery::CatchupEntry{e.pos.ts, e.pos.lane, std::move(e.command), aux.take()});
  }
  send(from, reply);
}

void Replica::handle_catchup_reply(const wire::Payload& payload) {
  const auto msg = wire::decode_message<recovery::CatchupReply>(payload);
  if (msg.epoch != persistor_.epoch()) return;  // reply to an older incarnation
  const log::LogPosition peer_frontier{msg.frontier, msg.frontier_lane};
  if (log_.global_frontier() < peer_frontier) {
    std::unordered_map<std::string, std::string> items;
    items.reserve(msg.snapshot.size());
    for (const auto& e : msg.snapshot) items.emplace(e.key, e.value);
    store_.install_snapshot(std::move(items), msg.applied);
    log_.fast_forward(peer_frontier);
    persistor_.note_catchup_install(payload.size(), true_now() - recovery_started_at_);
  }
  const auto lanes =
      static_cast<std::uint32_t>(std::min<std::size_t>(msg.watermarks.size(),
                                                       log_.lane_count()));
  for (std::uint32_t lane = 0; lane < lanes; ++lane) {
    log_.advance_watermark(lane, msg.watermarks[lane]);
  }
  for (const auto& e : msg.entries) {
    if (e.lane >= log_.lane_count()) continue;
    const log::LogPosition pos{e.pos, e.lane};
    bool is_noop = false;
    if (!e.aux.empty()) {
      wire::ByteReader r(e.aux);
      is_noop = r.boolean();
    }
    if (is_noop) {
      if (!log_.is_committed(pos)) log_.resolve_as_noop(pos);
      continue;
    }
    const auto* local = log_.entry(pos);
    if (local != nullptr && local->status == log::GlobalLog::Status::kAbortedNoop) continue;
    log_.commit(pos, e.command);
    if (e.lane == dfp_lane()) {
      dfp_committed_.insert(e.command.id);
      DfpPosition& p = dfp_positions_[e.pos];
      p.resolved = true;
      p.winner = e.command.id;
    } else if (e.lane == rank_) {
      // Committed on our lane by someone else (a revocation while we were
      // down): nothing left to replicate.
      dm_pending_.erase(e.pos);
      const auto span_it = dm_quorum_spans_.find(e.pos);
      if (span_it != dm_quorum_spans_.end()) {
        close_wait_span(span_it->second);
        dm_quorum_spans_.erase(span_it);
      }
    }
  }
  execute_ready();
  finish_rejoin();
}

void Replica::finish_rejoin() {
  if (!catching_up_) return;
  catching_up_ = false;
  const Duration took = true_now() - recovery_started_at_;
  persistor_.note_rejoin(took);
  if (obs_sink().tracing()) {
    obs_sink().record(obs::TraceEvent{.at = true_now(),
                                      .kind = obs::EventKind::kRecoveryDone,
                                      .node = id(),
                                      .value = took.nanos()});
  }
}

// ------------------------------------------------------------------ shared

void Replica::handle_heartbeat(NodeId from, const wire::Payload& payload) {
  const auto msg = wire::decode_message<Heartbeat>(payload);
  const std::size_t from_rank = rank_of(from);
  if (from_rank >= replicas_.size()) return;
  note_replica_watermark(from_rank, msg.sender_local_time);
  // The sender's clock watermark no-ops the empty positions of its DM lane.
  log_.advance_watermark(static_cast<std::uint32_t>(from_rank),
                         msg.sender_local_time.nanos());
  if (from == coordinator_ && msg.dfp_commit_frontier > 0) {
    log_.advance_watermark(dfp_lane(), msg.dfp_commit_frontier);
  }
  execute_ready();
}

void Replica::broadcast_heartbeat() {
  maybe_run_failure_recovery();
  // Our own DM lane: empty positions below our clock are no-ops. The
  // advertised value stops short of any acceptance still waiting on its
  // durable sync, so the heartbeat cannot overtake the delayed notice.
  const TimePoint advertised = advertised_watermark();
  log_.advance_watermark(static_cast<std::uint32_t>(rank_), advertised.nanos());

  Heartbeat msg;
  msg.sender_local_time = advertised;
  if (is_coordinator() || config_.all_replicas_learn) {
    // Advance the committed-no-op frontier from directly received
    // watermarks. In every-replica-learner mode each replica computes this
    // locally (Section 5.7); otherwise only the coordinator does, and
    // followers learn it from the heartbeat field below.
    commit_frontier_ = computed_commit_frontier();
    log_.advance_watermark(dfp_lane(), commit_frontier_);
    if (is_coordinator()) msg.dfp_commit_frontier = commit_frontier_;
    // Garbage-collect resolved positions behind the frontier.
    for (auto it = dfp_positions_.begin();
         it != dfp_positions_.end() && it->first < commit_frontier_;) {
      it = it->second.resolved ? dfp_positions_.erase(it) : std::next(it);
    }
  }
  for (NodeId r : replicas_) {
    if (r != id()) send(r, msg);
  }
  execute_ready();
}

void Replica::execute_ready() {
  for (auto& [pos, command] : log_.drain_executable()) {
    store_.apply(command);
    obs_executed_.inc();
    if (obs_sink().tracing()) {
      obs_sink().record(obs::TraceEvent{.at = true_now(),
                                        .kind = obs::EventKind::kExecute,
                                        .node = id(),
                                        .request = command.id,
                                        .value = pos.ts});
    }
    if (exec_hook_) exec_hook_(command.id, true_now());
  }
}

}  // namespace domino::core
