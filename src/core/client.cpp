#include "core/client.h"

#include <algorithm>

namespace domino::core {

Client::Client(NodeId id, std::size_t dc, net::Network& network,
               std::vector<NodeId> replicas, ClientConfig config, sim::LocalClock clock)
    : rpc::ClientBase(id, dc, network, clock),
      replicas_(std::move(replicas)),
      config_(config),
      prober_(*this, replicas_, config.prober),
      proxy_feed_(*this) {
  init_obs();
}

Client::Client(NodeId id, rpc::Context& context, std::vector<NodeId> replicas,
               ClientConfig config, sim::LocalClock clock)
    : rpc::ClientBase(id, /*dc=*/0, context, clock),
      replicas_(std::move(replicas)),
      config_(config),
      prober_(*this, replicas_, config.prober),
      proxy_feed_(*this) {
  init_obs();
}

void Client::init_obs() {
  const obs::Sink& sink = obs_sink();
  obs_dfp_chosen_ = sink.counter("domino.client.dfp_chosen");
  obs_dm_chosen_ = sink.counter("domino.client.dm_chosen");
  obs_fast_learns_ = sink.counter("domino.client.fast_learns");
  obs_slow_replies_ = sink.counter("domino.client.slow_replies");
  obs_failovers_ = sink.counter("domino.client.failovers");
}

void Client::start() {
  if (config_.proxy.valid()) {
    // Section 5.6: poll the co-located proxy instead of probing everyone.
    proxy_timer_.start(context(), Duration::zero(), config_.prober.probe_interval,
                       [this] { send(config_.proxy, measure::ProxyQuery{}); });
  } else {
    prober_.start();
  }
}

const measure::LatencyView& Client::view() const {
  if (config_.proxy.valid()) return proxy_feed_;
  return prober_;
}

Client::Estimates Client::estimates() const {
  Estimates e;
  e.dfp = measure::estimate_dfp_latency(view(), replicas_);
  const auto dm = measure::estimate_dm_latency(view(), replicas_);
  e.dm = dm.latency;
  e.dm_leader = dm.leader;
  return e;
}

double Client::recent_fast_rate() const {
  if (outcomes_.empty()) return 1.0;
  std::size_t fast = 0;
  for (bool b : outcomes_) fast += b ? 1 : 0;
  return static_cast<double>(fast) / static_cast<double>(outcomes_.size());
}

void Client::record_dfp_outcome(bool fast) {
  if (!config_.adaptive || config_.adaptive_window == 0) return;
  if (outcomes_.size() < config_.adaptive_window) {
    outcomes_.push_back(fast);
  } else {
    outcomes_[outcome_cursor_] = fast;
    outcome_cursor_ = (outcome_cursor_ + 1) % config_.adaptive_window;
  }
  // Grow the slack while the fast path struggles; decay it when healthy.
  if (!fast) {
    adaptive_extra_ = std::min(adaptive_extra_ + config_.adaptive_step,
                               config_.adaptive_max_extra);
  } else if (recent_fast_rate() >= config_.adaptive_target &&
             adaptive_extra_ > Duration::zero()) {
    adaptive_extra_ -= Duration{config_.adaptive_step.nanos() / 4};
    if (adaptive_extra_ < Duration::zero()) adaptive_extra_ = Duration::zero();
  }
}

void Client::propose(const sm::Command& command) {
  const Estimates est = estimates();
  bool use_dfp = false;
  bool adaptive_override = false;
  switch (config_.mode) {
    case ClientConfig::Mode::kDfpOnly:
      use_dfp = true;
      break;
    case ClientConfig::Mode::kDmOnly:
      use_dfp = false;
      break;
    case ClientConfig::Mode::kAuto:
      use_dfp = est.dfp <= est.dm;
      // Feedback override: an extended run of slow-path commits means the
      // arrival predictions are off; fall back to DM until the (slack-
      // assisted) fast path recovers (Section 5.4).
      if (config_.adaptive && use_dfp && outcomes_.size() >= config_.adaptive_window / 2 &&
          recent_fast_rate() < 0.5) {
        use_dfp = false;
        adaptive_override = true;
      }
      break;
  }
  if (obs::PredictionAudit* a = audit()) {
    // Capture what was predicted at the choice point; the commit path
    // reconciles it into error / oracle-regret records (obs/predict.h).
    obs::DecisionRecord d;
    d.request = command.id;
    d.client = id();
    d.decided_at = true_now();
    d.mode = config_.mode == ClientConfig::Mode::kAuto ? obs::DecisionMode::kAuto
             : config_.mode == ClientConfig::Mode::kDfpOnly
                 ? obs::DecisionMode::kDfpForced
                 : obs::DecisionMode::kDmForced;
    d.predicted_dfp = est.dfp;
    d.predicted_dm = est.dm;
    d.dm_leader = est.dm_leader;
    d.adaptive_override = adaptive_override;
    d.recent_fast_rate = recent_fast_rate();
    a->open(d);
  }
  if (use_dfp && est.dfp != Duration::max()) {
    ++dfp_chosen_;
    obs_dfp_chosen_.inc();
    propose_dfp(command);
    return;
  }
  ++dm_chosen_;
  obs_dm_chosen_.inc();
  propose_dm(command, est.dm_leader.valid() ? est.dm_leader : fallback_dm_leader());
}

NodeId Client::fallback_dm_leader() const {
  for (NodeId r : replicas_) {
    if (!view().is_stale(r)) return r;
  }
  return replicas_.front();
}

void Client::on_request_timeout(const sm::Command& command, std::size_t /*attempt*/) {
  if (obs::PredictionAudit* a = audit()) a->note_failover(command.id);
  // Forget the DFP attempt (any quorum it was gathering is moot; the DFP
  // timestamp of the retry will differ, so late notices are ignored).
  if (const auto it = dfp_pending_.find(command.id); it != dfp_pending_.end()) {
    close_wait_span(it->second.span);
    dfp_pending_.erase(it);
    ++dfp_failovers_;
    obs_failovers_.inc();
  }
  // Re-route through DM: the estimator skips stale leaders, so a crashed
  // replica's lane is avoided once its probe feed goes quiet.
  const auto dm = measure::estimate_dm_latency(view(), replicas_);
  ++dm_chosen_;
  obs_dm_chosen_.inc();
  propose_dm(command, dm.leader.valid() ? dm.leader : fallback_dm_leader());
}

void Client::propose_dfp(const sm::Command& command) {
  const TimePoint now_local = local_now();
  const TimePoint predicted = measure::dfp_request_timestamp(
      view(), now_local, replicas_, config_.additional_delay);
  if (predicted == TimePoint::max()) {
    // No usable arrival predictions; fall back to DM.
    if (obs::PredictionAudit* a = audit()) {
      a->note_dm(command.id, NodeId::invalid(), /*unpredictable=*/true);
    }
    propose_dm(command, fallback_dm_leader());
    return;
  }
  // Timestamps double as log positions, so they must be unique per client
  // (Section 5.3.3); bump past our previous proposal when needed. The
  // adaptive controller's slack is added on top of the configured one.
  std::int64_t ts = std::max((predicted + adaptive_extra_).nanos(), last_dfp_ts_ + 1);
  if (config_.timestamp_shard_space > 0) {
    // Pre-sharded timestamps (Section 5.3.3): the low digits carry the
    // client id, so distinct clients can never collide on a position.
    const auto space = static_cast<std::int64_t>(config_.timestamp_shard_space);
    const auto shard = static_cast<std::int64_t>(id().value()) % space;
    ts = ts - (ts % space) + shard;
    while (ts <= last_dfp_ts_) ts += space;
  }
  last_dfp_ts_ = ts;
  if (obs::PredictionAudit* a = audit()) {
    // Record the stamped deadline and each replica's predicted arrival
    // offset, so acceptance notices can be reconciled into per-replica
    // overshoot and blame.
    std::vector<Duration> offsets;
    offsets.reserve(replicas_.size());
    for (NodeId r : replicas_) offsets.push_back(view().owd_estimate(r));
    a->note_dfp(command.id, ts, now_local, config_.additional_delay, adaptive_extra_,
                replicas_, offsets);
  }
  dfp_pending_[command.id] = DfpPendingState{ts, 0, open_wait_span("dfp_attempt")};
  DfpPropose msg{ts, command};
  for (NodeId r : replicas_) send(r, msg);
}

void Client::propose_dm(const sm::Command& command, NodeId leader) {
  if (obs::PredictionAudit* a = audit()) {
    a->note_dm(command.id, leader, /*unpredictable=*/false);
  }
  send(leader, DmPropose{command});
}

void Client::on_committed(const RequestId& id, TimePoint sent_at, TimePoint committed_at) {
  if (obs::PredictionAudit* a = audit()) {
    a->reconcile(id, committed_at, committed_at - sent_at);
  }
}

void Client::on_packet(const net::Packet& packet) {
  switch (wire::peek_type(packet.payload)) {
    case wire::MessageType::kProbeReply:
      prober_.on_probe_reply(packet.src,
                             wire::decode_message<measure::ProbeReply>(packet.payload));
      break;
    case wire::MessageType::kProxyReport:
      proxy_feed_.update(wire::decode_message<measure::ProxyReport>(packet.payload));
      break;
    case wire::MessageType::kDfpAcceptNotice: {
      const auto notice = wire::decode_message<DfpAcceptNotice>(packet.payload);
      if (notice.command.id.client != id()) break;
      if (obs::PredictionAudit* a = audit()) {
        // Rejections matter too: they carry the realized arrival that blew
        // the deadline (the audit validates ts against the live attempt).
        a->note_arrival(notice.command.id, packet.src, notice.ts,
                        notice.sender_local_time, notice.accepted);
      }
      auto it = dfp_pending_.find(notice.command.id);
      if (it == dfp_pending_.end() || it->second.ts != notice.ts) break;
      if (!notice.accepted) break;  // rejected: wait for the coordinator's slow path
      if (++it->second.accepts >= measure::supermajority(replicas_.size())) {
        close_wait_span(it->second.span);
        dfp_pending_.erase(it);
        ++dfp_fast_learns_;
        obs_fast_learns_.inc();
        record_dfp_outcome(true);
        if (obs::PredictionAudit* a = audit()) {
          a->note_outcome(notice.command.id, obs::DecisionOutcome::kFastPath);
        }
        handle_committed(notice.command.id);
      }
      break;
    }
    case wire::MessageType::kDfpClientReply: {
      const auto reply = wire::decode_message<DfpClientReply>(packet.payload);
      if (const auto it = dfp_pending_.find(reply.request); it != dfp_pending_.end()) {
        close_wait_span(it->second.span);
        dfp_pending_.erase(it);
        record_dfp_outcome(false);
      }
      ++dfp_slow_replies_;
      obs_slow_replies_.inc();
      if (obs::PredictionAudit* a = audit()) {
        a->note_outcome(reply.request, obs::DecisionOutcome::kSlowPath);
      }
      handle_committed(reply.request);
      break;
    }
    case wire::MessageType::kDmClientReply: {
      const auto reply = wire::decode_message<DmClientReply>(packet.payload);
      if (obs::PredictionAudit* a = audit()) {
        a->note_outcome(reply.request, obs::DecisionOutcome::kDmCommit);
      }
      handle_committed(reply.request);
      break;
    }
    default:
      break;
  }
}

}  // namespace domino::core
