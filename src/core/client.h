// Domino client library (paper Sections 5.2, 5.4, 5.6).
//
// The client probes every replica (default every 10 ms), keeps sliding-
// window percentile estimates of RTTs and arrival offsets, and per request
// chooses the subsystem with the lower estimated commit latency:
//   LatDFP = D_q (q-th smallest RTT, q = supermajority),
//   LatDM  = min_r (E_r + L_r).
// A DFP proposal is stamped with the predicted supermajority arrival time
// plus an optional fixed additional delay (the Figure 9 / Figure 11 knob)
// and broadcast; the client itself is the fast-path learner and counts
// matching acceptances. DM requests go to the best leader.
#pragma once

#include <unordered_map>

#include "core/messages.h"
#include "measure/estimator.h"
#include "measure/prober.h"
#include "measure/proxy.h"
#include "measure/quorum.h"
#include "rpc/client_base.h"

namespace domino::core {

struct ClientConfig {
  measure::ProberConfig prober;
  /// Added to every DFP request timestamp (Section 5.4's slack against
  /// mispredictions; 0 by default as in the paper's commit-latency runs).
  Duration additional_delay = Duration::zero();
  /// Force one subsystem (used by tests and ablation benches).
  enum class Mode : std::uint8_t { kAuto, kDfpOnly, kDmOnly } mode = Mode::kAuto;

  /// Section 5.4's proposed feedback control ("part of our future work is
  /// to design a feedback control system that monitors DFP's fast path
  /// success rate and have clients adaptively adjust their request
  /// timestamps or switch between DFP and DM"): when enabled, the client
  /// tracks the fast-path success of its recent DFP requests and grows the
  /// additional delay while the rate is below `adaptive_target` (up to
  /// `adaptive_max_extra`), shrinking it once the fast path is healthy
  /// again; while the measured success rate is very low the client
  /// temporarily prefers DM even if DFP's estimate looks better.
  bool adaptive = false;
  double adaptive_target = 0.9;          // desired fast-path success rate
  Duration adaptive_step = milliseconds(1);
  Duration adaptive_max_extra = milliseconds(16);
  std::size_t adaptive_window = 32;      // recent DFP outcomes considered

  /// Section 5.6's probe-traffic reduction: when set, the client does not
  /// probe the replicas itself; it polls this co-located measurement proxy
  /// for delay estimates instead.
  NodeId proxy = NodeId::invalid();

  /// Section 5.3.3's collision avoidance for fixed client sets:
  /// "pre-sharding timestamps among the clients can be used to completely
  /// avoid collisions between client requests. For example, with only one
  /// thousand clients, each client can replace the three least significant
  /// digits in its timestamps with its ID." When > 0, the client replaces
  /// `ts mod timestamp_shard_space` with `client_id mod
  /// timestamp_shard_space`.
  std::uint32_t timestamp_shard_space = 0;
};

class Client : public rpc::ClientBase {
 public:
  Client(NodeId id, std::size_t dc, net::Network& network, std::vector<NodeId> replicas,
         ClientConfig config = {}, sim::LocalClock clock = sim::LocalClock{});

  /// Run over any transport (e.g. net::tcp::TcpContext for real sockets).
  Client(NodeId id, rpc::Context& context, std::vector<NodeId> replicas,
         ClientConfig config = {}, sim::LocalClock clock = sim::LocalClock{});

  /// Start probing (or proxy polling); call after attach() and before
  /// submitting load.
  void start();

  [[nodiscard]] const measure::Prober& prober() const { return prober_; }

  /// The latency estimates feeding this client's decisions: its own prober,
  /// or the proxy feed when ClientConfig::proxy is set.
  [[nodiscard]] const measure::LatencyView& view() const;

  struct Estimates {
    Duration dfp = Duration::max();
    Duration dm = Duration::max();
    NodeId dm_leader;
  };
  /// Current commit-latency estimates (harness taps this for Figure 12).
  [[nodiscard]] Estimates estimates() const;

  // Counters for experiments.
  [[nodiscard]] std::uint64_t dfp_chosen() const { return dfp_chosen_; }
  [[nodiscard]] std::uint64_t dm_chosen() const { return dm_chosen_; }
  [[nodiscard]] std::uint64_t dfp_fast_learns() const { return dfp_fast_learns_; }
  [[nodiscard]] std::uint64_t dfp_slow_replies() const { return dfp_slow_replies_; }
  /// Timed-out requests re-routed through DM (see on_request_timeout).
  [[nodiscard]] std::uint64_t dfp_failovers() const { return dfp_failovers_; }

  void set_additional_delay(Duration d) { config_.additional_delay = d; }
  void set_mode(ClientConfig::Mode mode) { config_.mode = mode; }

  /// Extra timestamp slack currently applied by the adaptive controller.
  [[nodiscard]] Duration adaptive_extra_delay() const { return adaptive_extra_; }
  /// Fast-path success rate over the recent outcome window (1.0 if no
  /// outcomes recorded yet).
  [[nodiscard]] double recent_fast_rate() const;

 protected:
  void propose(const sm::Command& command) override;
  /// Failover path (requires ClientBase::set_request_timeout): a request
  /// that timed out — typically because a DFP coordinator or DM leader
  /// crashed mid-request — is abandoned on its original path and re-routed
  /// through DM to the best replica whose measurement feed is not stale.
  /// The probe feed doubles as a failure detector here (Section 5.8): a
  /// crashed replica stops answering probes, goes stale within a few probe
  /// intervals, and is skipped when picking the new DM leader.
  void on_request_timeout(const sm::Command& command, std::size_t attempt) override;
  void on_packet(const net::Packet& packet) override;
  /// Reconciliation point of the prediction audit: realized commit latency
  /// is exact here, so the DecisionRecord opened in propose() is finalized
  /// (error, oracle regret, misprediction attribution) exactly once.
  void on_committed(const RequestId& id, TimePoint sent_at, TimePoint committed_at) override;

 private:
  void propose_dfp(const sm::Command& command);
  void propose_dm(const sm::Command& command, NodeId leader);
  /// The run-wide decision-record store, or null when prediction auditing
  /// is off (the default: zero overhead beyond one branch per site).
  [[nodiscard]] obs::PredictionAudit* audit() const { return obs_sink().predict; }
  /// First replica whose feed is not stale (falls back to replicas_.front()
  /// when everything looks stale, e.g. right after startup).
  [[nodiscard]] NodeId fallback_dm_leader() const;
  void record_dfp_outcome(bool fast);

  std::vector<NodeId> replicas_;
  ClientConfig config_;
  measure::Prober prober_;
  measure::ProxyFeed proxy_feed_;
  rpc::RepeatingTimer proxy_timer_;

  struct DfpPendingState {
    std::int64_t ts = 0;
    std::size_t accepts = 0;
    obs::SpanId span = 0;  // open "dfp_attempt" wait span (0 = disabled)
  };
  std::unordered_map<RequestId, DfpPendingState> dfp_pending_;
  std::int64_t last_dfp_ts_ = 0;  // timestamps are unique per client

  // Adaptive feedback state (ring buffer of recent DFP outcomes).
  std::vector<bool> outcomes_;
  std::size_t outcome_cursor_ = 0;
  Duration adaptive_extra_ = Duration::zero();

  std::uint64_t dfp_chosen_ = 0;
  std::uint64_t dm_chosen_ = 0;
  std::uint64_t dfp_fast_learns_ = 0;
  std::uint64_t dfp_slow_replies_ = 0;
  std::uint64_t dfp_failovers_ = 0;

  void init_obs();
  obs::CounterHandle obs_dfp_chosen_;
  obs::CounterHandle obs_dm_chosen_;
  obs::CounterHandle obs_fast_learns_;
  obs::CounterHandle obs_slow_replies_;
  obs::CounterHandle obs_failovers_;
};

}  // namespace domino::core
