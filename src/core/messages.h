// Domino wire messages (paper Section 5).
//
// DFP (Domino's Fast Paxos): clients broadcast timestamped proposals; every
// replica accepts or rejects against its clock; acceptances flow to the
// client (fast-path learner) and the DFP coordinator (recovery + no-op
// learner). The coordinator resolves collisions with ballot-1 recovery and
// disseminates a committed frontier for the no-op positions.
//
// DM (Domino's Mencius): clients send to a chosen leader; the leader stamps
// the request with `now + predicted replication latency` and replicates to
// a majority.
//
// Heartbeats carry each replica's clock watermark (no-op acceptance,
// Section 5.3.2) and — from the coordinator — the DFP committed frontier.
#pragma once

#include "log/position.h"
#include "statemachine/command.h"
#include "wire/message.h"

namespace domino::core {

struct DfpPropose {
  static constexpr wire::MessageType kType = wire::MessageType::kDfpPropose;
  std::int64_t ts = 0;  // target DFP log position = predicted supermajority arrival time
  sm::Command command;

  void encode(wire::ByteWriter& w) const {
    w.svarint(ts);
    command.encode(w);
  }
  static DfpPropose decode(wire::ByteReader& r) {
    DfpPropose m;
    m.ts = r.svarint();
    m.command = sm::Command::decode(r);
    return m;
  }
};

struct DfpAcceptNotice {
  static constexpr wire::MessageType kType = wire::MessageType::kDfpAcceptNotice;
  std::int64_t ts = 0;
  bool accepted = false;
  sm::Command command;
  TimePoint sender_local_time;  // piggybacked watermark (Section 5.3.2)

  void encode(wire::ByteWriter& w) const {
    w.svarint(ts);
    w.boolean(accepted);
    command.encode(w);
    w.time_point(sender_local_time);
  }
  static DfpAcceptNotice decode(wire::ByteReader& r) {
    DfpAcceptNotice m;
    m.ts = r.svarint();
    m.accepted = r.boolean();
    m.command = sm::Command::decode(r);
    m.sender_local_time = r.time_point();
    return m;
  }
};

struct DfpCommit {
  static constexpr wire::MessageType kType = wire::MessageType::kDfpCommit;
  std::int64_t ts = 0;
  bool is_noop = false;  // true: the position resolved as no-op
  sm::Command command;   // meaningful when !is_noop

  void encode(wire::ByteWriter& w) const {
    w.svarint(ts);
    w.boolean(is_noop);
    command.encode(w);
  }
  static DfpCommit decode(wire::ByteReader& r) {
    DfpCommit m;
    m.ts = r.svarint();
    m.is_noop = r.boolean();
    m.command = sm::Command::decode(r);
    return m;
  }
};

struct DfpRecoveryAccept {
  static constexpr wire::MessageType kType = wire::MessageType::kDfpRecoveryAccept;
  std::int64_t ts = 0;
  bool is_noop = false;
  sm::Command command;

  void encode(wire::ByteWriter& w) const {
    w.svarint(ts);
    w.boolean(is_noop);
    command.encode(w);
  }
  static DfpRecoveryAccept decode(wire::ByteReader& r) {
    DfpRecoveryAccept m;
    m.ts = r.svarint();
    m.is_noop = r.boolean();
    m.command = sm::Command::decode(r);
    return m;
  }
};

struct DfpRecoveryReply {
  static constexpr wire::MessageType kType = wire::MessageType::kDfpRecoveryReply;
  std::int64_t ts = 0;

  void encode(wire::ByteWriter& w) const { w.svarint(ts); }
  static DfpRecoveryReply decode(wire::ByteReader& r) { return {r.svarint()}; }
};

/// Coordinator -> client notification for slow-path outcomes.
struct DfpClientReply {
  static constexpr wire::MessageType kType = wire::MessageType::kDfpClientReply;
  RequestId request;

  void encode(wire::ByteWriter& w) const { w.request_id(request); }
  static DfpClientReply decode(wire::ByteReader& r) { return {r.request_id()}; }
};

struct Heartbeat {
  static constexpr wire::MessageType kType = wire::MessageType::kDominoHeartbeat;
  TimePoint sender_local_time;        // the sender's clock watermark
  std::int64_t dfp_commit_frontier = 0;  // > 0 only from the coordinator

  void encode(wire::ByteWriter& w) const {
    w.time_point(sender_local_time);
    w.svarint(dfp_commit_frontier);
  }
  static Heartbeat decode(wire::ByteReader& r) {
    Heartbeat m;
    m.sender_local_time = r.time_point();
    m.dfp_commit_frontier = r.svarint();
    return m;
  }
};

struct DmPropose {
  static constexpr wire::MessageType kType = wire::MessageType::kDmPropose;
  sm::Command command;

  void encode(wire::ByteWriter& w) const { command.encode(w); }
  static DmPropose decode(wire::ByteReader& r) { return {sm::Command::decode(r)}; }
};

struct DmAccept {
  static constexpr wire::MessageType kType = wire::MessageType::kDmAccept;
  std::int64_t ts = 0;
  std::uint32_t lane = 0;
  sm::Command command;

  void encode(wire::ByteWriter& w) const {
    w.svarint(ts);
    w.varint(lane);
    command.encode(w);
  }
  static DmAccept decode(wire::ByteReader& r) {
    DmAccept m;
    m.ts = r.svarint();
    m.lane = static_cast<std::uint32_t>(r.varint());
    m.command = sm::Command::decode(r);
    return m;
  }
};

struct DmAcceptReply {
  static constexpr wire::MessageType kType = wire::MessageType::kDmAcceptReply;
  std::int64_t ts = 0;
  std::uint32_t lane = 0;

  void encode(wire::ByteWriter& w) const {
    w.svarint(ts);
    w.varint(lane);
  }
  static DmAcceptReply decode(wire::ByteReader& r) {
    DmAcceptReply m;
    m.ts = r.svarint();
    m.lane = static_cast<std::uint32_t>(r.varint());
    return m;
  }
};

struct DmCommit {
  static constexpr wire::MessageType kType = wire::MessageType::kDmCommit;
  std::int64_t ts = 0;
  std::uint32_t lane = 0;

  void encode(wire::ByteWriter& w) const {
    w.svarint(ts);
    w.varint(lane);
  }
  static DmCommit decode(wire::ByteReader& r) {
    DmCommit m;
    m.ts = r.svarint();
    m.lane = static_cast<std::uint32_t>(r.varint());
    return m;
  }
};

struct DmClientReply {
  static constexpr wire::MessageType kType = wire::MessageType::kDmClientReply;
  RequestId request;

  void encode(wire::ByteWriter& w) const { w.request_id(request); }
  static DmClientReply decode(wire::ByteReader& r) { return {r.request_id()}; }
};

// ---------------------------------------------------------------------------
// Failure handling (paper Section 5.8). When a replica crashes, a successor
// revokes its DM lane (learning every live entry from the remaining
// replicas, committing them, and no-op-filling the rest), and the DFP
// coordinator recovers no-op ranges that the dead replica's frozen clock
// watermark would otherwise block forever.

struct RangeEntryWire {
  std::int64_t ts = 0;
  sm::Command command;

  void encode(wire::ByteWriter& w) const {
    w.svarint(ts);
    command.encode(w);
  }
  static RangeEntryWire decode(wire::ByteReader& r) {
    RangeEntryWire e;
    e.ts = r.svarint();
    e.command = sm::Command::decode(r);
    return e;
  }
};

inline void encode_entries(wire::ByteWriter& w, const std::vector<RangeEntryWire>& v) {
  w.varint(v.size());
  for (const auto& e : v) e.encode(w);
}

inline std::vector<RangeEntryWire> decode_entries(wire::ByteReader& r) {
  std::vector<RangeEntryWire> v(r.length_prefix(8));
  for (auto& e : v) e = RangeEntryWire::decode(r);
  return v;
}

struct DmRevoke {
  static constexpr wire::MessageType kType = wire::MessageType::kDmRevoke;
  std::uint32_t lane = 0;
  std::int64_t from_ts = 0;
  std::int64_t to_ts = 0;

  void encode(wire::ByteWriter& w) const {
    w.varint(lane);
    w.svarint(from_ts);
    w.svarint(to_ts);
  }
  static DmRevoke decode(wire::ByteReader& r) {
    DmRevoke m;
    m.lane = static_cast<std::uint32_t>(r.varint());
    m.from_ts = r.svarint();
    m.to_ts = r.svarint();
    return m;
  }
};

struct DmRevokeReply {
  static constexpr wire::MessageType kType = wire::MessageType::kDmRevokeReply;
  std::uint32_t lane = 0;
  std::int64_t from_ts = 0;
  std::int64_t to_ts = 0;
  std::vector<RangeEntryWire> entries;

  void encode(wire::ByteWriter& w) const {
    w.varint(lane);
    w.svarint(from_ts);
    w.svarint(to_ts);
    encode_entries(w, entries);
  }
  static DmRevokeReply decode(wire::ByteReader& r) {
    DmRevokeReply m;
    m.lane = static_cast<std::uint32_t>(r.varint());
    m.from_ts = r.svarint();
    m.to_ts = r.svarint();
    m.entries = decode_entries(r);
    return m;
  }
};

struct DmRevokeResult {
  static constexpr wire::MessageType kType = wire::MessageType::kDmRevokeResult;
  std::uint32_t lane = 0;
  std::int64_t from_ts = 0;
  std::int64_t through_ts = 0;
  std::vector<RangeEntryWire> entries;  // committed; unlisted range = no-ops

  void encode(wire::ByteWriter& w) const {
    w.varint(lane);
    w.svarint(from_ts);
    w.svarint(through_ts);
    encode_entries(w, entries);
  }
  static DmRevokeResult decode(wire::ByteReader& r) {
    DmRevokeResult m;
    m.lane = static_cast<std::uint32_t>(r.varint());
    m.from_ts = r.svarint();
    m.through_ts = r.svarint();
    m.entries = decode_entries(r);
    return m;
  }
};

struct DfpRangeRecover {
  static constexpr wire::MessageType kType = wire::MessageType::kDfpRangeRecover;
  std::int64_t from_ts = 0;
  std::int64_t to_ts = 0;

  void encode(wire::ByteWriter& w) const {
    w.svarint(from_ts);
    w.svarint(to_ts);
  }
  static DfpRangeRecover decode(wire::ByteReader& r) {
    DfpRangeRecover m;
    m.from_ts = r.svarint();
    m.to_ts = r.svarint();
    return m;
  }
};

struct DfpRangeReply {
  static constexpr wire::MessageType kType = wire::MessageType::kDfpRangeReply;
  std::int64_t from_ts = 0;
  std::int64_t to_ts = 0;
  std::vector<RangeEntryWire> entries;

  void encode(wire::ByteWriter& w) const {
    w.svarint(from_ts);
    w.svarint(to_ts);
    encode_entries(w, entries);
  }
  static DfpRangeReply decode(wire::ByteReader& r) {
    DfpRangeReply m;
    m.from_ts = r.svarint();
    m.to_ts = r.svarint();
    m.entries = decode_entries(r);
    return m;
  }
};

struct DfpRangeResolve {
  static constexpr wire::MessageType kType = wire::MessageType::kDfpRangeResolve;
  std::int64_t from_ts = 0;
  std::int64_t through_ts = 0;
  std::vector<RangeEntryWire> entries;  // committed; unlisted range = no-ops

  void encode(wire::ByteWriter& w) const {
    w.svarint(from_ts);
    w.svarint(through_ts);
    encode_entries(w, entries);
  }
  static DfpRangeResolve decode(wire::ByteReader& r) {
    DfpRangeResolve m;
    m.from_ts = r.svarint();
    m.through_ts = r.svarint();
    m.entries = decode_entries(r);
    return m;
  }
};

}  // namespace domino::core
