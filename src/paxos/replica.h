// Multi-Paxos replica.
//
// One replica is the fixed leader. Clients send requests to the leader,
// which assigns consecutive log indices, replicates via Accept, commits on
// a majority of accept replies (counting itself), answers the client, and
// asynchronously notifies followers. Committed entries execute in index
// order against the key-value store.
#pragma once

#include <functional>
#include <unordered_map>
#include <vector>

#include "log/index_log.h"
#include "measure/prober.h"
#include "measure/quorum.h"
#include "recovery/durable.h"
#include "rpc/node.h"
#include "statemachine/kvstore.h"

namespace domino::paxos {

class Replica : public rpc::Node {
 public:
  /// Called on every command execution (harness taps this for execution
  /// latency): the executed command's id and the true execution time.
  using ExecuteHook = std::function<void(const RequestId&, TimePoint)>;

  Replica(NodeId id, std::size_t dc, net::Network& network, std::vector<NodeId> replicas,
          NodeId leader, sim::LocalClock clock = sim::LocalClock{});

  void set_execute_hook(ExecuteHook hook) { exec_hook_ = std::move(hook); }

  /// Bind simulated durable storage: from now on the replica persists its
  /// promises before externalizing them (persist-before-send, paying the
  /// store's sync latency) and can survive an amnesiac restart().
  void enable_durability(recovery::DurableStore& store);

  /// Amnesiac restart (the fault injector's restart hook): wipe all
  /// volatile state, replay the durable image, re-propose uncommitted
  /// leader entries, and catch up from live peers before serving clients.
  void restart();

  [[nodiscard]] bool catching_up() const { return catching_up_; }

  [[nodiscard]] bool is_leader() const { return leader_ == id(); }
  [[nodiscard]] NodeId leader() const { return leader_; }
  [[nodiscard]] const log::IndexLog& log() const { return log_; }
  [[nodiscard]] const sm::KvStore& store() const { return store_; }
  [[nodiscard]] std::uint64_t committed_count() const { return committed_; }

 protected:
  void on_packet(const net::Packet& packet) override;

 private:
  void handle_client_request(const net::Packet& packet);
  void handle_accept(NodeId from, const wire::Payload& payload);
  void handle_accept_reply(const wire::Payload& payload);
  void handle_commit(const wire::Payload& payload);
  void handle_catchup_request(NodeId from, const wire::Payload& payload);
  void handle_catchup_reply(const wire::Payload& payload);
  void send_catchup_requests();
  void finish_rejoin();
  void execute_ready();

  std::vector<NodeId> replicas_;
  NodeId leader_;
  log::IndexLog log_;
  sm::KvStore store_;
  ExecuteHook exec_hook_;

  // Crash recovery.
  recovery::Persistor persistor_;
  bool catching_up_ = false;
  TimePoint recovery_started_at_ = TimePoint::epoch();

  // Leader state.
  std::uint64_t next_index_ = 0;
  std::unordered_map<std::uint64_t, std::size_t> accept_counts_;  // index -> acks (incl. self)
  std::unordered_map<std::uint64_t, obs::SpanId> quorum_spans_;   // index -> open wait span
  std::unordered_map<std::uint64_t, NodeId> origin_;              // index -> requesting client
  std::uint64_t committed_ = 0;

  obs::CounterHandle obs_accepts_;
  obs::CounterHandle obs_commits_;
  obs::CounterHandle obs_executed_;
};

}  // namespace domino::paxos
