#include "paxos/replica.h"

#include <algorithm>
#include <unordered_map>
#include <utility>

#include "paxos/messages.h"
#include "recovery/messages.h"

namespace domino::paxos {

namespace {
/// Catch-up request retransmit interval for a recovering replica.
constexpr Duration kCatchupRetryInterval = milliseconds(100);
}  // namespace

Replica::Replica(NodeId id, std::size_t dc, net::Network& network,
                 std::vector<NodeId> replicas, NodeId leader, sim::LocalClock clock)
    : rpc::Node(id, dc, network, clock), replicas_(std::move(replicas)), leader_(leader) {
  obs_accepts_ = obs_sink().counter("paxos.accepts");
  obs_commits_ = obs_sink().counter("paxos.commits");
  obs_executed_ = obs_sink().counter("paxos.executed");
}

void Replica::on_packet(const net::Packet& packet) {
  switch (wire::peek_type(packet.payload)) {
    case wire::MessageType::kPaxosClientRequest:
      handle_client_request(packet);
      break;
    case wire::MessageType::kPaxosAccept:
      handle_accept(packet.src, packet.payload);
      break;
    case wire::MessageType::kPaxosAcceptReply:
      handle_accept_reply(packet.payload);
      break;
    case wire::MessageType::kPaxosCommit:
      handle_commit(packet.payload);
      break;
    case wire::MessageType::kCatchupRequest:
      handle_catchup_request(packet.src, packet.payload);
      break;
    case wire::MessageType::kCatchupReply:
      handle_catchup_reply(packet.payload);
      break;
    default:
      break;  // not a Multi-Paxos message; ignore
  }
}

void Replica::enable_durability(recovery::DurableStore& store) {
  persistor_.bind(store, id(), [this](Duration delay, std::function<void()> fn) {
    after(delay, std::move(fn));
  });
}

void Replica::handle_client_request(const net::Packet& packet) {
  if (!is_leader()) return;  // clients are configured to talk to the leader only
  if (catching_up_) return;  // not rejoined yet; the client's retry will land
  const auto req = wire::decode_message<ClientRequest>(packet.payload);
  const std::uint64_t index = next_index_++;
  log_.accept(index, req.command);
  accept_counts_[index] = 1;  // self-accept
  origin_[index] = req.command.id.client;
  if (const obs::SpanId s = open_wait_span("paxos_quorum_wait"); s != 0) {
    quorum_spans_[index] = s;
  }
  const sm::Command command = req.command;
  persistor_.persist(
      recovery::RecordTag::kAccepted,
      [&] {
        wire::ByteWriter w;
        w.varint(index);
        command.encode(w);
        w.boolean(true);  // leader record: carries the requesting client
        w.node_id(command.id.client);
        return w.take();
      },
      [this, index, command] {
        const Accept msg{index, command};
        for (NodeId r : replicas_) {
          if (r != id()) send(r, msg);
        }
      });
}

void Replica::handle_accept(NodeId from, const wire::Payload& payload) {
  const auto msg = wire::decode_message<Accept>(payload);
  if (log_.is_committed(msg.index)) {
    // Re-proposal from a restarted leader for an entry this follower already
    // learned committed: the promise is already durable, just re-ack.
    send(from, AcceptReply{msg.index});
    return;
  }
  log_.accept(msg.index, msg.command);
  obs_accepts_.inc();
  persistor_.persist(
      recovery::RecordTag::kAccepted,
      [&] {
        wire::ByteWriter w;
        w.varint(msg.index);
        msg.command.encode(w);
        w.boolean(false);
        return w.take();
      },
      [this, from, index = msg.index] { send(from, AcceptReply{index}); });
}

void Replica::handle_accept_reply(const wire::Payload& payload) {
  if (!is_leader()) return;
  const auto msg = wire::decode_message<AcceptReply>(payload);
  auto it = accept_counts_.find(msg.index);
  if (it == accept_counts_.end()) return;  // already committed
  if (++it->second < measure::majority(replicas_.size())) return;

  accept_counts_.erase(it);
  const auto span_it = quorum_spans_.find(msg.index);
  if (span_it != quorum_spans_.end()) {
    close_wait_span(span_it->second);
    quorum_spans_.erase(span_it);
  }
  log_.commit(msg.index);
  ++committed_;
  obs_commits_.inc();

  const auto* entry = log_.entry(msg.index);
  NodeId origin = NodeId::invalid();
  const auto origin_it = origin_.find(msg.index);
  if (origin_it != origin_.end()) {
    origin = origin_it->second;
    origin_.erase(origin_it);
  }
  if (entry != nullptr) {
    // Persist the commit decision, then reply to the client and notify
    // followers (asynchronously, i.e. the client does not wait for follower
    // commits). The reply is what makes the commit externally visible, so
    // it must not leave this node before the decision is durable.
    const std::uint64_t index = msg.index;
    const sm::Command command = entry->command;
    persistor_.persist(
        recovery::RecordTag::kCommitted,
        [&] {
          wire::ByteWriter w;
          w.varint(index);
          command.encode(w);
          return w.take();
        },
        [this, index, command, origin] {
          if (origin.valid()) send(origin, ClientReply{command.id});
          for (NodeId r : replicas_) {
            if (r != id()) send(r, Commit{index, command});
          }
        });
  }
  execute_ready();
}

void Replica::handle_commit(const wire::Payload& payload) {
  const auto msg = wire::decode_message<Commit>(payload);
  // The command rides on the Commit, so a follower that missed the Accept
  // (dropped while it was crashed or partitioned) still materializes the
  // entry instead of carrying a permanent hole.
  log_.commit(msg.index, msg.command);
  // Nothing is externalized on this path, so the persist is fire-and-forget.
  persistor_.persist(recovery::RecordTag::kCommitted, [&] {
    wire::ByteWriter w;
    w.varint(msg.index);
    msg.command.encode(w);
    return w.take();
  });
  execute_ready();
}

void Replica::restart() {
  persistor_.begin_restart();
  for (auto& [index, span] : quorum_spans_) {
    (void)index;
    close_wait_span(span);
  }
  quorum_spans_.clear();
  log_ = log::IndexLog{};
  store_ = sm::KvStore{};
  accept_counts_.clear();
  origin_.clear();
  next_index_ = 0;
  committed_ = 0;
  catching_up_ = true;
  recovery_started_at_ = true_now();
  if (obs_sink().tracing()) {
    obs_sink().record(obs::TraceEvent{
        .at = true_now(),
        .kind = obs::EventKind::kRecoveryStart,
        .node = id(),
        .value = static_cast<std::int64_t>(persistor_.epoch())});
  }

  persistor_.replay([this](const recovery::DurableRecord& rec) {
    wire::ByteReader r(rec.body);
    switch (rec.tag) {
      case recovery::RecordTag::kAccepted: {
        const std::uint64_t index = r.varint();
        sm::Command cmd = sm::Command::decode(r);
        if (r.boolean()) origin_[index] = r.node_id();
        // A later kCommitted record (or a duplicate accept from a previous
        // incarnation) may already have resolved this index.
        if (!log_.is_committed(index)) log_.accept(index, std::move(cmd));
        next_index_ = std::max(next_index_, index + 1);
        break;
      }
      case recovery::RecordTag::kCommitted: {
        const std::uint64_t index = r.varint();
        sm::Command cmd = sm::Command::decode(r);
        log_.commit(index, std::move(cmd));
        origin_.erase(index);  // the client was already answered
        next_index_ = std::max(next_index_, index + 1);
        break;
      }
      default:
        break;  // Multi-Paxos writes no other tags
    }
  });
  execute_ready();

  // Accepted-but-uncommitted leader entries lost their quorum tallies with
  // the crash; re-propose them (same index, same value — followers simply
  // re-ack) so the execution frontier cannot stall behind them.
  if (is_leader()) {
    for (std::uint64_t index = log_.execution_frontier(); index < next_index_; ++index) {
      const auto* e = log_.entry(index);
      if (e == nullptr || e->status != log::EntryStatus::kAccepted) continue;
      accept_counts_[index] = 1;
      const Accept msg{index, e->command};
      for (NodeId r : replicas_) {
        if (r != id()) send(r, msg);
      }
    }
  }
  send_catchup_requests();
}

void Replica::send_catchup_requests() {
  if (!catching_up_) return;
  if (replicas_.size() <= 1) {
    finish_rejoin();
    return;
  }
  const recovery::CatchupRequest req{persistor_.epoch(), store_.applied_count()};
  for (NodeId r : replicas_) {
    if (r != id()) send(r, req);
  }
  after(kCatchupRetryInterval, [this, epoch = persistor_.epoch()] {
    if (catching_up_ && epoch == persistor_.epoch()) send_catchup_requests();
  });
}

void Replica::handle_catchup_request(NodeId from, const wire::Payload& payload) {
  // Always served, even while this replica is itself catching up: replying
  // with the current state keeps simultaneous recoveries from deadlocking.
  const auto req = wire::decode_message<recovery::CatchupRequest>(payload);
  recovery::CatchupReply reply;
  reply.epoch = req.epoch;
  reply.applied = store_.applied_count();
  reply.frontier = static_cast<std::int64_t>(log_.execution_frontier());
  reply.snapshot.reserve(store_.items().size());
  for (const auto& [key, value] : store_.items()) {
    reply.snapshot.push_back(recovery::KvEntry{key, value});
  }
  for (auto& [index, command] : log_.committed_unexecuted()) {
    reply.entries.push_back(recovery::CatchupEntry{
        static_cast<std::int64_t>(index), 0, std::move(command), {}});
  }
  send(from, reply);
}

void Replica::handle_catchup_reply(const wire::Payload& payload) {
  const auto msg = wire::decode_message<recovery::CatchupReply>(payload);
  if (msg.epoch != persistor_.epoch()) return;  // reply to an older incarnation
  if (msg.frontier > static_cast<std::int64_t>(log_.execution_frontier())) {
    std::unordered_map<std::string, std::string> items;
    items.reserve(msg.snapshot.size());
    for (const auto& e : msg.snapshot) items.emplace(e.key, e.value);
    store_.install_snapshot(std::move(items), msg.applied);
    log_.fast_forward(static_cast<std::uint64_t>(msg.frontier));
    persistor_.note_catchup_install(payload.size(), true_now() - recovery_started_at_);
  }
  for (const auto& e : msg.entries) {
    if (e.pos < static_cast<std::int64_t>(log_.execution_frontier())) continue;
    log_.commit(static_cast<std::uint64_t>(e.pos), e.command);
  }
  execute_ready();
  finish_rejoin();
}

void Replica::finish_rejoin() {
  if (!catching_up_) return;
  catching_up_ = false;
  const Duration took = true_now() - recovery_started_at_;
  persistor_.note_rejoin(took);
  if (obs_sink().tracing()) {
    obs_sink().record(obs::TraceEvent{.at = true_now(),
                                      .kind = obs::EventKind::kRecoveryDone,
                                      .node = id(),
                                      .value = took.nanos()});
  }
}

void Replica::execute_ready() {
  for (auto& [index, command] : log_.drain_executable()) {
    (void)index;
    store_.apply(command);
    obs_executed_.inc();
    if (exec_hook_) exec_hook_(command.id, true_now());
  }
}

}  // namespace domino::paxos
