#include "paxos/replica.h"

#include "paxos/messages.h"

namespace domino::paxos {

Replica::Replica(NodeId id, std::size_t dc, net::Network& network,
                 std::vector<NodeId> replicas, NodeId leader, sim::LocalClock clock)
    : rpc::Node(id, dc, network, clock), replicas_(std::move(replicas)), leader_(leader) {
  obs_accepts_ = obs_sink().counter("paxos.accepts");
  obs_commits_ = obs_sink().counter("paxos.commits");
  obs_executed_ = obs_sink().counter("paxos.executed");
}

void Replica::on_packet(const net::Packet& packet) {
  switch (wire::peek_type(packet.payload)) {
    case wire::MessageType::kPaxosClientRequest:
      handle_client_request(packet);
      break;
    case wire::MessageType::kPaxosAccept:
      handle_accept(packet.src, packet.payload);
      break;
    case wire::MessageType::kPaxosAcceptReply:
      handle_accept_reply(packet.payload);
      break;
    case wire::MessageType::kPaxosCommit:
      handle_commit(packet.payload);
      break;
    default:
      break;  // not a Multi-Paxos message; ignore
  }
}

void Replica::handle_client_request(const net::Packet& packet) {
  if (!is_leader()) return;  // clients are configured to talk to the leader only
  const auto req = wire::decode_message<ClientRequest>(packet.payload);
  const std::uint64_t index = next_index_++;
  log_.accept(index, req.command);
  accept_counts_[index] = 1;  // self-accept
  origin_[index] = req.command.id.client;
  if (const obs::SpanId s = open_wait_span("paxos_quorum_wait"); s != 0) {
    quorum_spans_[index] = s;
  }
  Accept msg{index, req.command};
  for (NodeId r : replicas_) {
    if (r != id()) send(r, msg);
  }
}

void Replica::handle_accept(NodeId from, const wire::Payload& payload) {
  const auto msg = wire::decode_message<Accept>(payload);
  log_.accept(msg.index, msg.command);
  obs_accepts_.inc();
  send(from, AcceptReply{msg.index});
}

void Replica::handle_accept_reply(const wire::Payload& payload) {
  if (!is_leader()) return;
  const auto msg = wire::decode_message<AcceptReply>(payload);
  auto it = accept_counts_.find(msg.index);
  if (it == accept_counts_.end()) return;  // already committed
  if (++it->second < measure::majority(replicas_.size())) return;

  accept_counts_.erase(it);
  const auto span_it = quorum_spans_.find(msg.index);
  if (span_it != quorum_spans_.end()) {
    close_wait_span(span_it->second);
    quorum_spans_.erase(span_it);
  }
  log_.commit(msg.index);
  ++committed_;
  obs_commits_.inc();

  // Reply to the client and notify followers (asynchronously, i.e. the
  // client does not wait for follower commits).
  const auto* entry = log_.entry(msg.index);
  const auto origin_it = origin_.find(msg.index);
  if (origin_it != origin_.end()) {
    if (entry != nullptr) send(origin_it->second, ClientReply{entry->command.id});
    origin_.erase(origin_it);
  }
  if (entry != nullptr) {
    for (NodeId r : replicas_) {
      if (r != id()) send(r, Commit{msg.index, entry->command});
    }
  }
  execute_ready();
}

void Replica::handle_commit(const wire::Payload& payload) {
  const auto msg = wire::decode_message<Commit>(payload);
  // The command rides on the Commit, so a follower that missed the Accept
  // (dropped while it was crashed or partitioned) still materializes the
  // entry instead of carrying a permanent hole.
  log_.commit(msg.index, msg.command);
  execute_ready();
}

void Replica::execute_ready() {
  for (auto& [index, command] : log_.drain_executable()) {
    (void)index;
    store_.apply(command);
    obs_executed_.inc();
    if (exec_hook_) exec_hook_(command.id, true_now());
  }
}

}  // namespace domino::paxos
