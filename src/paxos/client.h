// Multi-Paxos client: sends every request to the fixed leader and waits for
// the leader's reply.
#pragma once

#include "paxos/messages.h"
#include "rpc/client_base.h"

namespace domino::paxos {

class Client : public rpc::ClientBase {
 public:
  Client(NodeId id, std::size_t dc, net::Network& network, NodeId leader,
         sim::LocalClock clock = sim::LocalClock{})
      : rpc::ClientBase(id, dc, network, clock), leader_(leader) {}

 protected:
  void propose(const sm::Command& command) override { send(leader_, ClientRequest{command}); }

  void on_packet(const net::Packet& packet) override {
    if (wire::peek_type(packet.payload) != wire::MessageType::kPaxosClientReply) return;
    const auto reply = wire::decode_message<ClientReply>(packet.payload);
    handle_committed(reply.request);
  }

 private:
  NodeId leader_;
};

}  // namespace domino::paxos
