// Multi-Paxos wire messages.
//
// The evaluation configuration mirrors the paper: a fixed leader (no
// elections in the measured path — the paper's prototype "does not
// implement fault tolerance", Section 6), clients send to the leader, the
// leader replicates to followers and replies after a majority accept.
#pragma once

#include "statemachine/command.h"
#include "wire/message.h"

namespace domino::paxos {

struct ClientRequest {
  static constexpr wire::MessageType kType = wire::MessageType::kPaxosClientRequest;
  sm::Command command;

  void encode(wire::ByteWriter& w) const { command.encode(w); }
  static ClientRequest decode(wire::ByteReader& r) { return {sm::Command::decode(r)}; }
};

struct Accept {
  static constexpr wire::MessageType kType = wire::MessageType::kPaxosAccept;
  std::uint64_t index = 0;
  sm::Command command;

  void encode(wire::ByteWriter& w) const {
    w.varint(index);
    command.encode(w);
  }
  static Accept decode(wire::ByteReader& r) {
    Accept m;
    m.index = r.varint();
    m.command = sm::Command::decode(r);
    return m;
  }
};

struct AcceptReply {
  static constexpr wire::MessageType kType = wire::MessageType::kPaxosAcceptReply;
  std::uint64_t index = 0;

  void encode(wire::ByteWriter& w) const { w.varint(index); }
  static AcceptReply decode(wire::ByteReader& r) { return {r.varint()}; }
};

struct Commit {
  static constexpr wire::MessageType kType = wire::MessageType::kPaxosCommit;
  std::uint64_t index = 0;
  /// The committed command rides along so a follower that missed the Accept
  /// (crashed or partitioned at the time) can still materialize the entry
  /// instead of carrying a permanent hole in its log.
  sm::Command command;

  void encode(wire::ByteWriter& w) const {
    w.varint(index);
    command.encode(w);
  }
  static Commit decode(wire::ByteReader& r) {
    Commit m;
    m.index = r.varint();
    m.command = sm::Command::decode(r);
    return m;
  }
};

struct ClientReply {
  static constexpr wire::MessageType kType = wire::MessageType::kPaxosClientReply;
  RequestId request;

  void encode(wire::ByteWriter& w) const { w.request_id(request); }
  static ClientReply decode(wire::ByteReader& r) { return {r.request_id()}; }
};

}  // namespace domino::paxos
