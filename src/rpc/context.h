// Transport abstraction for protocol nodes.
//
// A Context supplies everything a protocol implementation needs from its
// environment: message delivery, timers, and a monotonic "true time". Two
// implementations exist:
//   - rpc::SimContext over the deterministic WAN simulator (evaluation),
//   - net::tcp::TcpContext over real sockets and real clocks (deployment).
// Protocol code is identical over both.
#pragma once

#include <functional>
#include <memory>

#include "common/ids.h"
#include "common/time.h"
#include "net/packet.h"
#include "obs/sink.h"

namespace domino::rpc {

class Context {
 public:
  using Receiver = std::function<void(const net::Packet&)>;

  virtual ~Context() = default;

  /// Deliver `payload` from `src` to `dst` (asynchronously).
  virtual void send(NodeId src, NodeId dst, wire::Payload payload) = 0;

  /// Run `fn` after `delay` of true time.
  virtual void schedule(Duration delay, std::function<void()> fn) = 0;

  /// Monotonic true time (virtual time in simulation, steady clock on real
  /// transports). Nodes derive their local wall clocks from this.
  [[nodiscard]] virtual TimePoint now() const = 0;

  /// Bind `receiver` as the packet handler for node `id`. `dc` is the
  /// datacenter placement; transports without a placement concept ignore it.
  virtual void register_node(NodeId id, std::size_t dc, Receiver receiver) = 0;

  /// The observability sink nodes on this transport should report into.
  /// Default: disabled (real-socket transports run uninstrumented for now).
  [[nodiscard]] virtual obs::Sink obs() const { return {}; }
};

/// A periodic timer driven by any Context. Cancellation is cooperative: a
/// shared flag breaks the reschedule chain.
class RepeatingTimer {
 public:
  RepeatingTimer() = default;
  ~RepeatingTimer() { stop(); }

  /// Start firing `tick` every `interval`, first after `initial`. Any
  /// previous schedule is cancelled.
  void start(Context& context, Duration initial, Duration interval,
             std::function<void()> tick) {
    stop();
    alive_ = std::make_shared<bool>(true);
    // The timer object owns the reschedule closure; the closure holds only
    // a weak reference to itself. A self-owning shared_ptr cycle here would
    // keep every timer closure alive forever (it shows up as a leak under
    // LeakSanitizer once a run finishes with timers still armed).
    fire_ = std::make_shared<std::function<void()>>();
    auto alive = alive_;
    std::weak_ptr<std::function<void()>> weak_fire = fire_;
    *fire_ = [&context, interval, tick = std::move(tick), alive, weak_fire]() {
      if (!*alive) return;
      tick();
      if (!*alive) return;
      if (auto fire = weak_fire.lock()) context.schedule(interval, *fire);
    };
    context.schedule(initial, *fire_);
  }

  void stop() {
    if (alive_) *alive_ = false;
    alive_.reset();
    fire_.reset();
  }

  [[nodiscard]] bool running() const { return alive_ && *alive_; }

 private:
  std::shared_ptr<bool> alive_;
  std::shared_ptr<std::function<void()>> fire_;
};

}  // namespace domino::rpc
