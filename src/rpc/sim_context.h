// Context implementation over the deterministic WAN simulator.
#pragma once

#include "net/network.h"
#include "rpc/context.h"

namespace domino::rpc {

class SimContext final : public Context {
 public:
  explicit SimContext(net::Network& network) : network_(network) {}

  void send(NodeId src, NodeId dst, wire::Payload payload) override {
    network_.send(src, dst, std::move(payload));
  }

  void schedule(Duration delay, std::function<void()> fn) override {
    network_.simulator().schedule_after(delay, std::move(fn));
  }

  [[nodiscard]] TimePoint now() const override { return network_.simulator().now(); }

  void register_node(NodeId id, std::size_t dc, Receiver receiver) override {
    network_.register_node(id, dc, std::move(receiver));
  }

  [[nodiscard]] obs::Sink obs() const override { return network_.obs_sink(); }

  [[nodiscard]] net::Network& network() { return network_; }

 private:
  net::Network& network_;
};

}  // namespace domino::rpc
