// Process base class: the glue between a protocol implementation and its
// transport.
//
// A Node owns an id, a datacenter placement, a (possibly skewed) local
// clock, and a receive dispatch point, all over an abstract rpc::Context —
// the deterministic simulator for evaluation or real TCP sockets for
// deployment. Derived classes implement on_packet(), peeking the envelope
// tag and decoding the message. Sending always serializes through the wire
// codec.
#pragma once

#include <array>
#include <memory>
#include <utility>

#include "common/ids.h"
#include "net/network.h"
#include "obs/sink.h"
#include "rpc/context.h"
#include "sim/clock.h"
#include "wire/message.h"

namespace domino::rpc {

class Node {
 public:
  /// Run over an explicit transport context.
  Node(NodeId id, std::size_t dc, Context& context, sim::LocalClock clock = sim::LocalClock{});

  /// Convenience: run over the WAN simulator (owns a SimContext adapter).
  Node(NodeId id, std::size_t dc, net::Network& network,
       sim::LocalClock clock = sim::LocalClock{});

  virtual ~Node() = default;

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  /// Register this node's receiver with the transport. Must be called
  /// exactly once, after construction (not from the constructor, so that
  /// derived classes are fully built before packets can arrive).
  void attach();

  [[nodiscard]] NodeId id() const { return id_; }
  [[nodiscard]] std::size_t dc() const { return dc_; }

  /// True (monotonic) transport time.
  [[nodiscard]] TimePoint true_now() const { return context_.now(); }

  /// This node's local wall-clock reading (includes skew/drift).
  [[nodiscard]] TimePoint local_now() const { return clock_.local(true_now()); }

  [[nodiscard]] const sim::LocalClock& clock() const { return clock_; }

  /// Serialize and send a protocol message. When a span store is installed
  /// and a span is active (we are handling a traced packet, or a client is
  /// proposing a command), the active trace context is piggybacked on the
  /// envelope so the receiver can link its handling back to this span.
  template <typename M>
  void send(NodeId dst, const M& msg) {
    wire::Payload payload =
        (obs_.spans != nullptr && active_span_.valid())
            ? wire::encode_message_traced(
                  msg, wire::TraceContextWire{active_span_.trace_id, active_span_.span_id})
            : wire::encode_message(msg);
    if (obs_.metrics != nullptr) instrument_send(M::kType, payload.size());
    context_.send(id_, dst, std::move(payload));
  }

  /// The observability sink this node (and components embedded in it, e.g.
  /// a measure::Prober) reports into. Captured from the transport at
  /// construction; disabled unless the transport was bound first.
  [[nodiscard]] const obs::Sink& obs_sink() const { return obs_; }

  /// Schedule `fn` to run after `delay` (true-time delay).
  void after(Duration delay, std::function<void()> fn) {
    context_.schedule(delay, std::move(fn));
  }

  [[nodiscard]] Context& context() { return context_; }
  [[nodiscard]] const Context& context() const { return context_; }

 protected:
  /// Called (on the transport's thread / in virtual time) for every
  /// delivered packet.
  virtual void on_packet(const net::Packet& packet) = 0;

  /// The span context outgoing messages are stamped with. Set automatically
  /// while handling a traced packet; ClientBase sets it around proposals.
  [[nodiscard]] const obs::TraceContext& active_span() const { return active_span_; }
  void set_active_span(const obs::TraceContext& ctx) { active_span_ = ctx; }
  void clear_active_span() { active_span_ = {}; }

  /// The span store this node records into (null = spans disabled).
  [[nodiscard]] obs::SpanStore* span_store() const { return obs_.spans; }

  /// Open a named child span of the active span (a wait that spans virtual
  /// time, e.g. a quorum gather). Returns 0 when spans are disabled or no
  /// span is active; close_wait_span(0) is a no-op, so call sites need no
  /// guards.
  [[nodiscard]] obs::SpanId open_wait_span(const char* name) {
    if (obs_.spans == nullptr || !active_span_.valid()) return 0;
    return obs_.spans->open(active_span_.trace_id, active_span_.span_id, id_, name,
                            context_.now());
  }
  void close_wait_span(obs::SpanId span) {
    if (span != 0 && obs_.spans != nullptr) obs_.spans->close(span, context_.now());
  }

 private:
  void instrument_send(wire::MessageType type, std::size_t bytes);
  void instrument_recv(const net::Packet& packet);
  /// Span bookkeeping around on_packet for a traced packet: records the
  /// send/recv edge, opens the handler span, and activates its context.
  void dispatch_traced(const net::Packet& packet, const wire::TraceContextWire& ctx);

  std::unique_ptr<Context> owned_context_;  // set by the Network convenience ctor
  Context& context_;
  NodeId id_;
  std::size_t dc_;
  sim::LocalClock clock_;
  bool attached_ = false;

  obs::TraceContext active_span_;

  // Per-message-type handles, created lazily off the hot path; index = wire
  // tag. init bits distinguish "not yet created" from "disabled".
  obs::Sink obs_;
  obs::CounterHandle obs_sent_;
  obs::CounterHandle obs_received_;
  std::array<obs::HistogramHandle, wire::kMaxMessageTypeTag> obs_sent_bytes_{};
  std::array<obs::CounterHandle, wire::kMaxMessageTypeTag> obs_recv_type_{};
  std::array<bool, wire::kMaxMessageTypeTag> obs_sent_init_{};
  std::array<bool, wire::kMaxMessageTypeTag> obs_recv_init_{};
};

}  // namespace domino::rpc
