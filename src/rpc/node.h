// Process base class: the glue between a protocol implementation and its
// transport.
//
// A Node owns an id, a datacenter placement, a (possibly skewed) local
// clock, and a receive dispatch point, all over an abstract rpc::Context —
// the deterministic simulator for evaluation or real TCP sockets for
// deployment. Derived classes implement on_packet(), peeking the envelope
// tag and decoding the message. Sending always serializes through the wire
// codec.
#pragma once

#include <memory>
#include <utility>

#include "common/ids.h"
#include "net/network.h"
#include "rpc/context.h"
#include "sim/clock.h"
#include "wire/message.h"

namespace domino::rpc {

class Node {
 public:
  /// Run over an explicit transport context.
  Node(NodeId id, std::size_t dc, Context& context, sim::LocalClock clock = sim::LocalClock{});

  /// Convenience: run over the WAN simulator (owns a SimContext adapter).
  Node(NodeId id, std::size_t dc, net::Network& network,
       sim::LocalClock clock = sim::LocalClock{});

  virtual ~Node() = default;

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  /// Register this node's receiver with the transport. Must be called
  /// exactly once, after construction (not from the constructor, so that
  /// derived classes are fully built before packets can arrive).
  void attach();

  [[nodiscard]] NodeId id() const { return id_; }
  [[nodiscard]] std::size_t dc() const { return dc_; }

  /// True (monotonic) transport time.
  [[nodiscard]] TimePoint true_now() const { return context_.now(); }

  /// This node's local wall-clock reading (includes skew/drift).
  [[nodiscard]] TimePoint local_now() const { return clock_.local(true_now()); }

  [[nodiscard]] const sim::LocalClock& clock() const { return clock_; }

  /// Serialize and send a protocol message.
  template <typename M>
  void send(NodeId dst, const M& msg) {
    context_.send(id_, dst, wire::encode_message(msg));
  }

  /// Schedule `fn` to run after `delay` (true-time delay).
  void after(Duration delay, std::function<void()> fn) {
    context_.schedule(delay, std::move(fn));
  }

  [[nodiscard]] Context& context() { return context_; }
  [[nodiscard]] const Context& context() const { return context_; }

 protected:
  /// Called (on the transport's thread / in virtual time) for every
  /// delivered packet.
  virtual void on_packet(const net::Packet& packet) = 0;

 private:
  std::unique_ptr<Context> owned_context_;  // set by the Network convenience ctor
  Context& context_;
  NodeId id_;
  std::size_t dc_;
  sim::LocalClock clock_;
  bool attached_ = false;
};

}  // namespace domino::rpc
