#include "rpc/client_base.h"

namespace domino::rpc {

ClientBase::ClientBase(NodeId id, std::size_t dc, net::Network& network, sim::LocalClock clock)
    : Node(id, dc, network, clock) {
  init_obs();
}

ClientBase::ClientBase(NodeId id, std::size_t dc, Context& context, sim::LocalClock clock)
    : Node(id, dc, context, clock) {
  init_obs();
}

void ClientBase::init_obs() {
  obs_submitted_ = obs_sink().counter("client.submitted");
  obs_committed_ = obs_sink().counter("client.committed");
  obs_retries_ = obs_sink().counter("client.retries");
  obs_abandoned_ = obs_sink().counter("client.abandoned");
  obs_commit_latency_ = obs_sink().histogram("client.commit_latency_ns");
}

void ClientBase::start_load(sm::WorkloadGenerator& workload, double rps) {
  if (rps <= 0.0) return;
  const Duration interval{static_cast<std::int64_t>(1e9 / rps)};
  load_timer_.start(context(), interval, interval,
                    [this, &workload] { submit(workload.next(id())); });
}

void ClientBase::stop_load() { load_timer_.stop(); }

void ClientBase::set_request_timeout(Duration timeout, std::size_t max_retries) {
  request_timeout_ = timeout;
  max_retries_ = max_retries;
}

void ClientBase::set_retry_backoff(double multiplier, Duration cap, double jitter,
                                   std::uint64_t seed) {
  backoff_multiplier_ = multiplier;
  backoff_cap_ = cap;
  backoff_jitter_ = jitter;
  backoff_rng_.emplace(seed);
  // Created here rather than in init_obs so clients that never enable
  // backoff register no extra metric.
  obs_retry_backoff_ = obs_sink().histogram("client.retry_backoff_ns");
}

Duration ClientBase::backoff_delay(std::size_t attempt) {
  if (!backoff_rng_.has_value()) return request_timeout_;
  const double cap_ns = static_cast<double>(backoff_cap_.nanos());
  double ns = static_cast<double>(request_timeout_.nanos());
  for (std::size_t k = 1; k < attempt; ++k) {
    ns *= backoff_multiplier_;
    if (backoff_cap_ > Duration::zero() && ns >= cap_ns) break;
  }
  if (backoff_cap_ > Duration::zero() && ns > cap_ns) ns = cap_ns;
  if (backoff_jitter_ > 0.0) ns *= 1.0 + backoff_jitter_ * backoff_rng_->next_double();
  return Duration{static_cast<std::int64_t>(ns)};
}

void ClientBase::submit(sm::Command command) {
  ++submitted_;
  sent_at_.emplace(command.id, true_now());
  obs_submitted_.inc();
  if (obs_sink().tracing()) {
    obs_sink().record(obs::TraceEvent{.at = true_now(),
                                      .kind = obs::EventKind::kRequestSubmit,
                                      .node = id(),
                                      .request = command.id});
  }
  if (send_hook_) send_hook_(command.id, true_now());
  // Open the command's root span and propose inside its context, so every
  // message the proposal causes carries the trace downstream.
  const obs::TraceContext prev_span = active_span();
  if (span_store() != nullptr) {
    const obs::TraceId trace = obs::trace_id_of(command.id);
    const obs::SpanId root = span_store()->open_root(trace, id(), "command", true_now());
    if (root != 0) {
      root_spans_.emplace(command.id, root);
      set_active_span(obs::TraceContext{trace, root});
    }
  }
  if (request_timeout_ > Duration::zero()) {
    const RequestId rid = command.id;
    pending_.emplace(rid, PendingRequest{command, 0});
    propose(command);
    set_active_span(prev_span);
    arm_timeout(rid, 0);
    return;
  }
  propose(command);
  set_active_span(prev_span);
}

obs::SpanId ClientBase::root_span_of(const RequestId& id) const {
  const auto it = root_spans_.find(id);
  return it == root_spans_.end() ? 0 : it->second;
}

void ClientBase::arm_timeout(const RequestId& id, std::size_t attempt) {
  // The wait before retry (attempt + 1); the plain timeout when backoff is
  // not configured.
  const Duration wait = backoff_rng_.has_value() ? backoff_delay(attempt + 1)
                                                 : request_timeout_;
  if (backoff_rng_.has_value()) obs_retry_backoff_.record(wait);
  after(wait, [this, id, attempt] {
    auto it = pending_.find(id);
    if (it == pending_.end()) return;           // committed meanwhile
    if (it->second.attempts != attempt) return;  // stale timer from an older attempt
    if (attempt >= max_retries_) {
      // Out of retry budget: give up, but keep the books balanced so
      // submitted == committed + abandoned + inflight still holds.
      const sm::Command command = it->second.command;
      pending_.erase(it);
      sent_at_.erase(id);
      abandoned_seqs_.insert(id.seq);
      ++abandoned_;
      obs_abandoned_.inc();
      if (span_store() != nullptr) {
        const auto root_it = root_spans_.find(id);
        if (root_it != root_spans_.end()) {
          span_store()->close(root_it->second, true_now());
          root_spans_.erase(root_it);
        }
      }
      if (obs_sink().tracing()) {
        obs_sink().record(obs::TraceEvent{.at = true_now(),
                                          .kind = obs::EventKind::kClientAbandon,
                                          .node = this->id(),
                                          .request = id,
                                          .value = static_cast<std::int64_t>(attempt)});
      }
      return;
    }
    const std::size_t next_attempt = attempt + 1;
    it->second.attempts = next_attempt;
    ++retries_;
    obs_retries_.inc();
    if (obs_sink().tracing()) {
      obs_sink().record(obs::TraceEvent{.at = true_now(),
                                        .kind = obs::EventKind::kClientRetry,
                                        .node = this->id(),
                                        .request = id,
                                        .value = static_cast<std::int64_t>(next_attempt)});
    }
    // Copy the command: on_request_timeout may re-enter and mutate pending_.
    const sm::Command command = it->second.command;
    // Re-activate the command's root span so the retry's messages stay on
    // the original trace (the retry is causally part of the same command).
    const obs::SpanId root = root_span_of(id);
    if (root != 0) {
      set_active_span(obs::TraceContext{obs::trace_id_of(id), root});
    }
    on_request_timeout(command, next_attempt);
    if (root != 0) clear_active_span();
    arm_timeout(id, next_attempt);
  });
}

void ClientBase::on_request_timeout(const sm::Command& command, std::size_t /*attempt*/) {
  propose(command);
}

void ClientBase::on_committed(const RequestId& /*id*/, TimePoint /*sent_at*/,
                              TimePoint /*committed_at*/) {}

void ClientBase::handle_committed(const RequestId& id) {
  if (id.client != this->id()) return;
  if (!done_seqs_.insert(id.seq).second) return;  // duplicate notification
  ++committed_;
  obs_committed_.inc();
  pending_.erase(id);
  if (abandoned_seqs_.erase(id.seq) > 0) {
    // A retry we had given up on came through after all; un-count the
    // abandonment so the accounting invariant keeps holding. (The obs
    // counter stays monotonic: it counts abandon *events*, not the net.)
    --abandoned_;
  }
  if (span_store() != nullptr) {
    // Terminal event of the trace: close the root span at commit time and
    // record which span delivered the commit (the handler span of the
    // message being processed right now; 0 on an untraced path).
    const auto root_it = root_spans_.find(id);
    if (root_it != root_spans_.end()) {
      span_store()->close(root_it->second, true_now());
      span_store()->note_commit(obs::trace_id_of(id), id, true_now(),
                                active_span().span_id);
      root_spans_.erase(root_it);
    }
  }
  auto it = sent_at_.find(id);
  if (it == sent_at_.end()) return;
  const TimePoint sent = it->second;
  sent_at_.erase(it);
  obs_commit_latency_.record(true_now() - sent);
  on_committed(id, sent, true_now());
  if (obs_sink().tracing()) {
    obs_sink().record(obs::TraceEvent{.at = true_now(),
                                      .kind = obs::EventKind::kCommit,
                                      .node = this->id(),
                                      .request = id,
                                      .value = (true_now() - sent).nanos()});
  }
  if (commit_hook_) commit_hook_(id, sent, true_now());
}

}  // namespace domino::rpc
