#include "rpc/client_base.h"

namespace domino::rpc {

ClientBase::ClientBase(NodeId id, std::size_t dc, net::Network& network, sim::LocalClock clock)
    : Node(id, dc, network, clock) {
  obs_submitted_ = obs_sink().counter("client.submitted");
  obs_committed_ = obs_sink().counter("client.committed");
  obs_commit_latency_ = obs_sink().histogram("client.commit_latency_ns");
}

ClientBase::ClientBase(NodeId id, std::size_t dc, Context& context, sim::LocalClock clock)
    : Node(id, dc, context, clock) {
  obs_submitted_ = obs_sink().counter("client.submitted");
  obs_committed_ = obs_sink().counter("client.committed");
  obs_commit_latency_ = obs_sink().histogram("client.commit_latency_ns");
}

void ClientBase::start_load(sm::WorkloadGenerator& workload, double rps) {
  if (rps <= 0.0) return;
  const Duration interval{static_cast<std::int64_t>(1e9 / rps)};
  load_timer_.start(context(), interval, interval,
                    [this, &workload] { submit(workload.next(id())); });
}

void ClientBase::stop_load() { load_timer_.stop(); }

void ClientBase::submit(sm::Command command) {
  ++submitted_;
  sent_at_.emplace(command.id, true_now());
  obs_submitted_.inc();
  if (obs_sink().tracing()) {
    obs_sink().record(obs::TraceEvent{.at = true_now(),
                                      .kind = obs::EventKind::kRequestSubmit,
                                      .node = id(),
                                      .request = command.id});
  }
  if (send_hook_) send_hook_(command.id, true_now());
  propose(command);
}

void ClientBase::handle_committed(const RequestId& id) {
  if (id.client != this->id()) return;
  if (!done_seqs_.insert(id.seq).second) return;  // duplicate notification
  ++committed_;
  obs_committed_.inc();
  auto it = sent_at_.find(id);
  if (it == sent_at_.end()) return;
  const TimePoint sent = it->second;
  sent_at_.erase(it);
  obs_commit_latency_.record(true_now() - sent);
  if (obs_sink().tracing()) {
    obs_sink().record(obs::TraceEvent{.at = true_now(),
                                      .kind = obs::EventKind::kCommit,
                                      .node = this->id(),
                                      .request = id,
                                      .value = (true_now() - sent).nanos()});
  }
  if (commit_hook_) commit_hook_(id, sent, true_now());
}

}  // namespace domino::rpc
