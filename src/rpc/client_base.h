// Shared client machinery for every protocol's client library.
//
// A protocol client derives from ClientBase and implements propose().
// ClientBase provides the open-loop load generator (the paper's clients
// send a fixed 200 requests/second, Section 7.1), send-time bookkeeping,
// commit dedup, and the commit-latency hook the evaluation harness taps.
#pragma once

#include <functional>
#include <unordered_map>
#include <unordered_set>

#include "rpc/node.h"
#include "statemachine/workload.h"

namespace domino::rpc {

class ClientBase : public Node {
 public:
  /// Invoked exactly once per request when the client learns it committed.
  using CommitHook =
      std::function<void(const RequestId&, TimePoint sent_at, TimePoint committed_at)>;
  /// Invoked when a request is submitted (before the proposal is sent).
  using SendHook = std::function<void(const RequestId&, TimePoint sent_at)>;

  ClientBase(NodeId id, std::size_t dc, net::Network& network, sim::LocalClock clock);
  ClientBase(NodeId id, std::size_t dc, Context& context, sim::LocalClock clock);

  void set_commit_hook(CommitHook hook) { commit_hook_ = std::move(hook); }
  void set_send_hook(SendHook hook) { send_hook_ = std::move(hook); }

  /// Start submitting `rps` requests per second drawn from `workload`.
  /// The generator must outlive the client.
  void start_load(sm::WorkloadGenerator& workload, double rps);
  void stop_load();

  /// Submit one command now (records its send time, then calls propose()).
  void submit(sm::Command command);

  [[nodiscard]] std::uint64_t submitted_count() const { return submitted_; }
  [[nodiscard]] std::uint64_t committed_count() const { return committed_; }
  [[nodiscard]] std::uint64_t inflight_count() const { return sent_at_.size(); }

 protected:
  /// Protocol-specific proposal path.
  virtual void propose(const sm::Command& command) = 0;

  /// Protocol clients call this when they learn a request committed.
  /// Duplicate notifications are ignored.
  void handle_committed(const RequestId& id);

 private:
  CommitHook commit_hook_;
  SendHook send_hook_;
  RepeatingTimer load_timer_;
  obs::CounterHandle obs_submitted_;
  obs::CounterHandle obs_committed_;
  obs::HistogramHandle obs_commit_latency_;
  std::unordered_map<RequestId, TimePoint> sent_at_;  // true send time
  std::unordered_set<std::uint64_t> done_seqs_;       // committed request seqs
  std::uint64_t submitted_ = 0;
  std::uint64_t committed_ = 0;
};

}  // namespace domino::rpc
