// Shared client machinery for every protocol's client library.
//
// A protocol client derives from ClientBase and implements propose().
// ClientBase provides the open-loop load generator (the paper's clients
// send a fixed 200 requests/second, Section 7.1), send-time bookkeeping,
// commit dedup, the commit-latency hook the evaluation harness taps, and —
// when enabled via set_request_timeout() — a generic per-request timeout
// with retries: a request that has not committed within the timeout is
// handed to on_request_timeout() (default: re-propose), up to a bounded
// number of attempts, after which it is abandoned and accounted for. The
// invariant  submitted == committed + abandoned + inflight  always holds,
// which is what the chaos tests' liveness accounting checks.
#pragma once

#include <functional>
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "common/rng.h"
#include "rpc/node.h"
#include "statemachine/workload.h"

namespace domino::rpc {

class ClientBase : public Node {
 public:
  /// Invoked exactly once per request when the client learns it committed.
  using CommitHook =
      std::function<void(const RequestId&, TimePoint sent_at, TimePoint committed_at)>;
  /// Invoked when a request is submitted (before the proposal is sent).
  using SendHook = std::function<void(const RequestId&, TimePoint sent_at)>;

  ClientBase(NodeId id, std::size_t dc, net::Network& network, sim::LocalClock clock);
  ClientBase(NodeId id, std::size_t dc, Context& context, sim::LocalClock clock);

  void set_commit_hook(CommitHook hook) { commit_hook_ = std::move(hook); }
  void set_send_hook(SendHook hook) { send_hook_ = std::move(hook); }

  /// Start submitting `rps` requests per second drawn from `workload`.
  /// The generator must outlive the client.
  void start_load(sm::WorkloadGenerator& workload, double rps);
  void stop_load();

  /// Submit one command now (records its send time, then calls propose()).
  void submit(sm::Command command);

  /// Enable the per-request timeout: a request that has not committed
  /// `timeout` after its last (re-)proposal is retried via
  /// on_request_timeout(), at most `max_retries` times, then abandoned.
  /// Duration::zero() disables (the default).
  void set_request_timeout(Duration timeout, std::size_t max_retries = 3);
  [[nodiscard]] Duration request_timeout() const { return request_timeout_; }

  /// Deterministic exponential backoff between retries. The wait before
  /// retry k (k = 1 for the first retry) is
  ///   min(timeout * multiplier^(k-1), cap) * (1 + jitter * u)
  /// with u drawn uniformly from [0, 1) by a client-owned generator seeded
  /// with `seed` — same seed, same backoff sequence. multiplier = 1 and
  /// jitter = 0 (the defaults) reproduce the legacy fixed interval. Each
  /// realized wait is recorded in the client.retry_backoff_ns histogram.
  void set_retry_backoff(double multiplier, Duration cap, double jitter,
                         std::uint64_t seed);

  /// The wait armed before retry `attempt` (attempt >= 1); exposed for the
  /// backoff unit test.
  [[nodiscard]] Duration backoff_delay(std::size_t attempt);

  [[nodiscard]] std::uint64_t submitted_count() const { return submitted_; }
  [[nodiscard]] std::uint64_t committed_count() const { return committed_; }
  [[nodiscard]] std::uint64_t inflight_count() const { return sent_at_.size(); }
  /// Timed-out re-proposals issued so far.
  [[nodiscard]] std::uint64_t retry_count() const { return retries_; }
  /// Requests given up on after exhausting retries (each is accounted for:
  /// submitted == committed + abandoned + inflight).
  [[nodiscard]] std::uint64_t abandoned_count() const { return abandoned_; }

 protected:
  /// Protocol-specific proposal path.
  virtual void propose(const sm::Command& command) = 0;

  /// Called when a request times out with retry budget left. `attempt` is
  /// 1 for the first retry. The default re-proposes the command unchanged;
  /// protocol clients override this to fail over (e.g. Domino re-routes a
  /// timed-out DFP request through DM).
  virtual void on_request_timeout(const sm::Command& command, std::size_t attempt);

  /// Protocol clients call this when they learn a request committed.
  /// Duplicate notifications are ignored.
  void handle_committed(const RequestId& id);

  /// Called exactly once per request, when its first commit notification
  /// lands and the send time is still known — the client-side point where
  /// realized latency is exact. Protocol clients override it to reconcile
  /// per-request predictions (the Domino client closes its DecisionRecord
  /// here); the default does nothing.
  virtual void on_committed(const RequestId& id, TimePoint sent_at, TimePoint committed_at);

 private:
  struct PendingRequest {
    sm::Command command;
    std::size_t attempts = 0;  // retries issued so far
  };

  void arm_timeout(const RequestId& id, std::size_t attempt);
  void init_obs();
  /// Root span id of a live request's trace (0 when spans are disabled).
  [[nodiscard]] obs::SpanId root_span_of(const RequestId& id) const;

  CommitHook commit_hook_;
  SendHook send_hook_;
  RepeatingTimer load_timer_;
  obs::CounterHandle obs_submitted_;
  obs::CounterHandle obs_committed_;
  obs::CounterHandle obs_retries_;
  obs::CounterHandle obs_abandoned_;
  obs::HistogramHandle obs_commit_latency_;
  obs::HistogramHandle obs_retry_backoff_;
  std::unordered_map<RequestId, TimePoint> sent_at_;  // true send time
  std::unordered_map<RequestId, obs::SpanId> root_spans_;  // live command traces
  std::unordered_set<std::uint64_t> done_seqs_;       // committed request seqs
  std::unordered_map<RequestId, PendingRequest> pending_;  // timeout-tracked
  std::unordered_set<std::uint64_t> abandoned_seqs_;  // for late-commit fixup
  Duration request_timeout_ = Duration::zero();       // zero = disabled
  std::size_t max_retries_ = 0;
  double backoff_multiplier_ = 1.0;                   // 1.0 = fixed interval
  Duration backoff_cap_ = Duration::zero();           // zero = uncapped
  double backoff_jitter_ = 0.0;
  std::optional<Rng> backoff_rng_;                    // seeded on demand
  std::uint64_t submitted_ = 0;
  std::uint64_t committed_ = 0;
  std::uint64_t retries_ = 0;
  std::uint64_t abandoned_ = 0;
};

}  // namespace domino::rpc
