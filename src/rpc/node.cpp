#include "rpc/node.h"

#include <stdexcept>

#include "rpc/sim_context.h"

namespace domino::rpc {

Node::Node(NodeId id, std::size_t dc, Context& context, sim::LocalClock clock)
    : context_(context), id_(id), dc_(dc), clock_(clock) {}

Node::Node(NodeId id, std::size_t dc, net::Network& network, sim::LocalClock clock)
    : owned_context_(std::make_unique<SimContext>(network)),
      context_(*owned_context_),
      id_(id),
      dc_(dc),
      clock_(clock) {}

void Node::attach() {
  if (attached_) throw std::logic_error("Node::attach called twice");
  attached_ = true;
  context_.register_node(id_, dc_, [this](const net::Packet& pkt) { on_packet(pkt); });
}

}  // namespace domino::rpc
