#include "rpc/node.h"

#include <stdexcept>
#include <string>

#include "rpc/sim_context.h"

namespace domino::rpc {

Node::Node(NodeId id, std::size_t dc, Context& context, sim::LocalClock clock)
    : context_(context), id_(id), dc_(dc), clock_(clock) {
  obs_ = context_.obs();
  obs_sent_ = obs_.counter("rpc.messages_sent");
  obs_received_ = obs_.counter("rpc.messages_received");
}

Node::Node(NodeId id, std::size_t dc, net::Network& network, sim::LocalClock clock)
    : owned_context_(std::make_unique<SimContext>(network)),
      context_(*owned_context_),
      id_(id),
      dc_(dc),
      clock_(clock) {
  obs_ = context_.obs();
  obs_sent_ = obs_.counter("rpc.messages_sent");
  obs_received_ = obs_.counter("rpc.messages_received");
}

void Node::attach() {
  if (attached_) throw std::logic_error("Node::attach called twice");
  attached_ = true;
  context_.register_node(id_, dc_, [this](const net::Packet& pkt) {
    if (obs_.metrics != nullptr) instrument_recv(pkt);
    if (obs_.spans != nullptr) {
      const wire::TraceContextWire ctx = wire::peek_trace_context(pkt.payload);
      if (ctx.valid()) {
        dispatch_traced(pkt, ctx);
        return;
      }
      clear_active_span();
    }
    on_packet(pkt);
  });
}

void Node::dispatch_traced(const net::Packet& pkt, const wire::TraceContextWire& ctx) {
  obs::SpanStore& spans = *obs_.spans;
  const wire::MessageType type = wire::peek_type(pkt.payload);
  const TimePoint now = context_.now();
  const std::int32_t edge =
      spans.add_edge(ctx.trace_id, ctx.span_id, pkt.src, id_, pkt.sent_at, now,
                     static_cast<std::uint16_t>(type));
  const obs::SpanId handler = spans.open(ctx.trace_id, ctx.span_id, id_,
                                         wire::message_type_name(type), now,
                                         static_cast<std::uint16_t>(type), edge);
  spans.bind_edge_target(edge, handler);
  set_active_span(obs::TraceContext{ctx.trace_id, handler});
  on_packet(pkt);
  spans.close(handler, context_.now());
  clear_active_span();
}

void Node::instrument_send(wire::MessageType type, std::size_t bytes) {
  obs_sent_.inc();
  const auto tag = static_cast<std::size_t>(type);
  if (tag >= wire::kMaxMessageTypeTag) return;
  if (!obs_sent_init_[tag]) {
    obs_sent_init_[tag] = true;
    obs_sent_bytes_[tag] = obs_.histogram(
        std::string("rpc.sent_bytes.") + wire::message_type_name(type));
  }
  obs_sent_bytes_[tag].record(static_cast<std::int64_t>(bytes));
}

void Node::instrument_recv(const net::Packet& packet) {
  obs_received_.inc();
  const wire::MessageType type = wire::peek_type(packet.payload);
  const auto tag = static_cast<std::size_t>(type);
  if (tag >= wire::kMaxMessageTypeTag) return;
  if (!obs_recv_init_[tag]) {
    obs_recv_init_[tag] = true;
    obs_recv_type_[tag] =
        obs_.counter(std::string("rpc.received.") + wire::message_type_name(type));
  }
  obs_recv_type_[tag].inc();
}

}  // namespace domino::rpc
