#include "rpc/node.h"

#include <stdexcept>
#include <string>

#include "rpc/sim_context.h"

namespace domino::rpc {

Node::Node(NodeId id, std::size_t dc, Context& context, sim::LocalClock clock)
    : context_(context), id_(id), dc_(dc), clock_(clock) {
  obs_ = context_.obs();
  obs_sent_ = obs_.counter("rpc.messages_sent");
  obs_received_ = obs_.counter("rpc.messages_received");
}

Node::Node(NodeId id, std::size_t dc, net::Network& network, sim::LocalClock clock)
    : owned_context_(std::make_unique<SimContext>(network)),
      context_(*owned_context_),
      id_(id),
      dc_(dc),
      clock_(clock) {
  obs_ = context_.obs();
  obs_sent_ = obs_.counter("rpc.messages_sent");
  obs_received_ = obs_.counter("rpc.messages_received");
}

void Node::attach() {
  if (attached_) throw std::logic_error("Node::attach called twice");
  attached_ = true;
  context_.register_node(id_, dc_, [this](const net::Packet& pkt) {
    if (obs_.metrics != nullptr) instrument_recv(pkt);
    on_packet(pkt);
  });
}

void Node::instrument_send(wire::MessageType type, std::size_t bytes) {
  obs_sent_.inc();
  const auto tag = static_cast<std::size_t>(type);
  if (tag >= wire::kMaxMessageTypeTag) return;
  if (!obs_sent_init_[tag]) {
    obs_sent_init_[tag] = true;
    obs_sent_bytes_[tag] = obs_.histogram(
        std::string("rpc.sent_bytes.") + wire::message_type_name(type));
  }
  obs_sent_bytes_[tag].record(static_cast<std::int64_t>(bytes));
}

void Node::instrument_recv(const net::Packet& packet) {
  obs_received_.inc();
  const wire::MessageType type = wire::peek_type(packet.payload);
  const auto tag = static_cast<std::size_t>(type);
  if (tag >= wire::kMaxMessageTypeTag) return;
  if (!obs_recv_init_[tag]) {
    obs_recv_init_[tag] = true;
    obs_recv_type_[tag] =
        obs_.counter(std::string("rpc.received.") + wire::message_type_name(type));
  }
  obs_recv_type_[tag].inc();
}

}  // namespace domino::rpc
