# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_wire[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_rpc[1]_include.cmake")
include("/root/repo/build/tests/test_measure[1]_include.cmake")
include("/root/repo/build/tests/test_statemachine[1]_include.cmake")
include("/root/repo/build/tests/test_log[1]_include.cmake")
include("/root/repo/build/tests/test_paxos[1]_include.cmake")
include("/root/repo/build/tests/test_mencius[1]_include.cmake")
include("/root/repo/build/tests/test_epaxos[1]_include.cmake")
include("/root/repo/build/tests/test_fastpaxos[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_harness[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_tcp[1]_include.cmake")
