# Empty dependencies file for test_fastpaxos.
# This may be replaced when dependencies are built.
