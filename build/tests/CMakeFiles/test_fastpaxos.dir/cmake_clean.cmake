file(REMOVE_RECURSE
  "CMakeFiles/test_fastpaxos.dir/fastpaxos/test_fastpaxos.cpp.o"
  "CMakeFiles/test_fastpaxos.dir/fastpaxos/test_fastpaxos.cpp.o.d"
  "test_fastpaxos"
  "test_fastpaxos.pdb"
  "test_fastpaxos[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fastpaxos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
