file(REMOVE_RECURSE
  "CMakeFiles/test_measure.dir/measure/test_estimator.cpp.o"
  "CMakeFiles/test_measure.dir/measure/test_estimator.cpp.o.d"
  "CMakeFiles/test_measure.dir/measure/test_prober.cpp.o"
  "CMakeFiles/test_measure.dir/measure/test_prober.cpp.o.d"
  "CMakeFiles/test_measure.dir/measure/test_proxy.cpp.o"
  "CMakeFiles/test_measure.dir/measure/test_proxy.cpp.o.d"
  "CMakeFiles/test_measure.dir/measure/test_quorum.cpp.o"
  "CMakeFiles/test_measure.dir/measure/test_quorum.cpp.o.d"
  "test_measure"
  "test_measure.pdb"
  "test_measure[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_measure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
