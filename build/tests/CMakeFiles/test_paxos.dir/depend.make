# Empty dependencies file for test_paxos.
# This may be replaced when dependencies are built.
