file(REMOVE_RECURSE
  "CMakeFiles/test_paxos.dir/paxos/test_paxos.cpp.o"
  "CMakeFiles/test_paxos.dir/paxos/test_paxos.cpp.o.d"
  "test_paxos"
  "test_paxos.pdb"
  "test_paxos[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_paxos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
