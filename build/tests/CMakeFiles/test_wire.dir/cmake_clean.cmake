file(REMOVE_RECURSE
  "CMakeFiles/test_wire.dir/wire/test_codec.cpp.o"
  "CMakeFiles/test_wire.dir/wire/test_codec.cpp.o.d"
  "CMakeFiles/test_wire.dir/wire/test_codec_fuzz.cpp.o"
  "CMakeFiles/test_wire.dir/wire/test_codec_fuzz.cpp.o.d"
  "CMakeFiles/test_wire.dir/wire/test_messages.cpp.o"
  "CMakeFiles/test_wire.dir/wire/test_messages.cpp.o.d"
  "test_wire"
  "test_wire.pdb"
  "test_wire[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wire.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
