file(REMOVE_RECURSE
  "CMakeFiles/test_statemachine.dir/statemachine/test_kvstore.cpp.o"
  "CMakeFiles/test_statemachine.dir/statemachine/test_kvstore.cpp.o.d"
  "CMakeFiles/test_statemachine.dir/statemachine/test_workload.cpp.o"
  "CMakeFiles/test_statemachine.dir/statemachine/test_workload.cpp.o.d"
  "test_statemachine"
  "test_statemachine.pdb"
  "test_statemachine[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_statemachine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
