# Empty dependencies file for test_statemachine.
# This may be replaced when dependencies are built.
