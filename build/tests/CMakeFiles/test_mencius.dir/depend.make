# Empty dependencies file for test_mencius.
# This may be replaced when dependencies are built.
