file(REMOVE_RECURSE
  "CMakeFiles/test_mencius.dir/mencius/test_mencius.cpp.o"
  "CMakeFiles/test_mencius.dir/mencius/test_mencius.cpp.o.d"
  "test_mencius"
  "test_mencius.pdb"
  "test_mencius[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mencius.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
