file(REMOVE_RECURSE
  "CMakeFiles/test_common.dir/common/test_ids.cpp.o"
  "CMakeFiles/test_common.dir/common/test_ids.cpp.o.d"
  "CMakeFiles/test_common.dir/common/test_interval_set.cpp.o"
  "CMakeFiles/test_common.dir/common/test_interval_set.cpp.o.d"
  "CMakeFiles/test_common.dir/common/test_rng.cpp.o"
  "CMakeFiles/test_common.dir/common/test_rng.cpp.o.d"
  "CMakeFiles/test_common.dir/common/test_stats.cpp.o"
  "CMakeFiles/test_common.dir/common/test_stats.cpp.o.d"
  "CMakeFiles/test_common.dir/common/test_time.cpp.o"
  "CMakeFiles/test_common.dir/common/test_time.cpp.o.d"
  "CMakeFiles/test_common.dir/common/test_window_estimator.cpp.o"
  "CMakeFiles/test_common.dir/common/test_window_estimator.cpp.o.d"
  "CMakeFiles/test_common.dir/common/test_zipf.cpp.o"
  "CMakeFiles/test_common.dir/common/test_zipf.cpp.o.d"
  "test_common"
  "test_common.pdb"
  "test_common[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
