file(REMOVE_RECURSE
  "CMakeFiles/bench_sensitivity_probe_params.dir/bench_sensitivity_probe_params.cpp.o"
  "CMakeFiles/bench_sensitivity_probe_params.dir/bench_sensitivity_probe_params.cpp.o.d"
  "bench_sensitivity_probe_params"
  "bench_sensitivity_probe_params.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sensitivity_probe_params.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
