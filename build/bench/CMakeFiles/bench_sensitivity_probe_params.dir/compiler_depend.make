# Empty compiler generated dependencies file for bench_sensitivity_probe_params.
# This may be replaced when dependencies are built.
