file(REMOVE_RECURSE
  "CMakeFiles/bench_tbl4_na_rtt.dir/bench_tbl4_na_rtt.cpp.o"
  "CMakeFiles/bench_tbl4_na_rtt.dir/bench_tbl4_na_rtt.cpp.o.d"
  "bench_tbl4_na_rtt"
  "bench_tbl4_na_rtt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tbl4_na_rtt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
