# Empty compiler generated dependencies file for bench_tbl4_na_rtt.
# This may be replaced when dependencies are built.
