# Empty dependencies file for bench_fig8_commit_latency.
# This may be replaced when dependencies are built.
