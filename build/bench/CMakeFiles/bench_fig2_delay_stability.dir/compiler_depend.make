# Empty compiler generated dependencies file for bench_fig2_delay_stability.
# This may be replaced when dependencies are built.
