file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_fastpaxos_vs_multipaxos.dir/bench_fig7_fastpaxos_vs_multipaxos.cpp.o"
  "CMakeFiles/bench_fig7_fastpaxos_vs_multipaxos.dir/bench_fig7_fastpaxos_vs_multipaxos.cpp.o.d"
  "bench_fig7_fastpaxos_vs_multipaxos"
  "bench_fig7_fastpaxos_vs_multipaxos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_fastpaxos_vs_multipaxos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
