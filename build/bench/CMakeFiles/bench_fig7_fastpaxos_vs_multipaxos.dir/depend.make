# Empty dependencies file for bench_fig7_fastpaxos_vs_multipaxos.
# This may be replaced when dependencies are built.
