# Empty dependencies file for bench_fig12_delay_change.
# This may be replaced when dependencies are built.
