# Empty dependencies file for bench_tbl1_globe_rtt.
# This may be replaced when dependencies are built.
