file(REMOVE_RECURSE
  "CMakeFiles/bench_tbl1_globe_rtt.dir/bench_tbl1_globe_rtt.cpp.o"
  "CMakeFiles/bench_tbl1_globe_rtt.dir/bench_tbl1_globe_rtt.cpp.o.d"
  "bench_tbl1_globe_rtt"
  "bench_tbl1_globe_rtt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tbl1_globe_rtt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
