file(REMOVE_RECURSE
  "CMakeFiles/bench_tbl2_tbl3_owd_misprediction.dir/bench_tbl2_tbl3_owd_misprediction.cpp.o"
  "CMakeFiles/bench_tbl2_tbl3_owd_misprediction.dir/bench_tbl2_tbl3_owd_misprediction.cpp.o.d"
  "bench_tbl2_tbl3_owd_misprediction"
  "bench_tbl2_tbl3_owd_misprediction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tbl2_tbl3_owd_misprediction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
