# Empty dependencies file for bench_tbl2_tbl3_owd_misprediction.
# This may be replaced when dependencies are built.
