# Empty dependencies file for bench_fig9_additional_delay.
# This may be replaced when dependencies are built.
