# Empty dependencies file for bench_fig11_exec_additional_delay.
# This may be replaced when dependencies are built.
