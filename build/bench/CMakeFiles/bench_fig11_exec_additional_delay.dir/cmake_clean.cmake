file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_exec_additional_delay.dir/bench_fig11_exec_additional_delay.cpp.o"
  "CMakeFiles/bench_fig11_exec_additional_delay.dir/bench_fig11_exec_additional_delay.cpp.o.d"
  "bench_fig11_exec_additional_delay"
  "bench_fig11_exec_additional_delay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_exec_additional_delay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
