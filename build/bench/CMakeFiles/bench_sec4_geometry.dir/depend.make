# Empty dependencies file for bench_sec4_geometry.
# This may be replaced when dependencies are built.
