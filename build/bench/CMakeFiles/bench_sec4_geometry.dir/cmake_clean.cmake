file(REMOVE_RECURSE
  "CMakeFiles/bench_sec4_geometry.dir/bench_sec4_geometry.cpp.o"
  "CMakeFiles/bench_sec4_geometry.dir/bench_sec4_geometry.cpp.o.d"
  "bench_sec4_geometry"
  "bench_sec4_geometry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec4_geometry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
