
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/domino_tcp_cluster.cpp" "examples/CMakeFiles/domino_tcp_cluster.dir/domino_tcp_cluster.cpp.o" "gcc" "examples/CMakeFiles/domino_tcp_cluster.dir/domino_tcp_cluster.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/tcp/CMakeFiles/domino_tcp.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/domino_core.dir/DependInfo.cmake"
  "/root/repo/build/src/log/CMakeFiles/domino_log.dir/DependInfo.cmake"
  "/root/repo/build/src/measure/CMakeFiles/domino_measure.dir/DependInfo.cmake"
  "/root/repo/build/src/rpc/CMakeFiles/domino_rpc.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/domino_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/domino_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/statemachine/CMakeFiles/domino_statemachine.dir/DependInfo.cmake"
  "/root/repo/build/src/wire/CMakeFiles/domino_wire.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/domino_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
