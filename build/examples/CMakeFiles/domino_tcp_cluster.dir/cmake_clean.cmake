file(REMOVE_RECURSE
  "CMakeFiles/domino_tcp_cluster.dir/domino_tcp_cluster.cpp.o"
  "CMakeFiles/domino_tcp_cluster.dir/domino_tcp_cluster.cpp.o.d"
  "domino_tcp_cluster"
  "domino_tcp_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/domino_tcp_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
