# Empty compiler generated dependencies file for domino_tcp_cluster.
# This may be replaced when dependencies are built.
