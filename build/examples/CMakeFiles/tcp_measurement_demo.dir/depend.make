# Empty dependencies file for tcp_measurement_demo.
# This may be replaced when dependencies are built.
