file(REMOVE_RECURSE
  "CMakeFiles/tcp_measurement_demo.dir/tcp_measurement_demo.cpp.o"
  "CMakeFiles/tcp_measurement_demo.dir/tcp_measurement_demo.cpp.o.d"
  "tcp_measurement_demo"
  "tcp_measurement_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcp_measurement_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
