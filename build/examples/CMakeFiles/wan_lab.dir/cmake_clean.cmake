file(REMOVE_RECURSE
  "CMakeFiles/wan_lab.dir/wan_lab.cpp.o"
  "CMakeFiles/wan_lab.dir/wan_lab.cpp.o.d"
  "wan_lab"
  "wan_lab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wan_lab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
