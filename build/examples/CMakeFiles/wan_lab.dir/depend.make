# Empty dependencies file for wan_lab.
# This may be replaced when dependencies are built.
