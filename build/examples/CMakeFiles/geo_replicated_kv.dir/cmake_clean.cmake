file(REMOVE_RECURSE
  "CMakeFiles/geo_replicated_kv.dir/geo_replicated_kv.cpp.o"
  "CMakeFiles/geo_replicated_kv.dir/geo_replicated_kv.cpp.o.d"
  "geo_replicated_kv"
  "geo_replicated_kv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geo_replicated_kv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
