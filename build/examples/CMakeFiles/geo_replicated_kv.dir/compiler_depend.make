# Empty compiler generated dependencies file for geo_replicated_kv.
# This may be replaced when dependencies are built.
