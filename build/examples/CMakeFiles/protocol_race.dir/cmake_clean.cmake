file(REMOVE_RECURSE
  "CMakeFiles/protocol_race.dir/protocol_race.cpp.o"
  "CMakeFiles/protocol_race.dir/protocol_race.cpp.o.d"
  "protocol_race"
  "protocol_race.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protocol_race.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
