# Empty dependencies file for protocol_race.
# This may be replaced when dependencies are built.
