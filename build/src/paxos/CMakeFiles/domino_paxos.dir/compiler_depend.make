# Empty compiler generated dependencies file for domino_paxos.
# This may be replaced when dependencies are built.
