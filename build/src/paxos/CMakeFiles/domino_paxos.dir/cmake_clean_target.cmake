file(REMOVE_RECURSE
  "libdomino_paxos.a"
)
