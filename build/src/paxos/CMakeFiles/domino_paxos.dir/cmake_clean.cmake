file(REMOVE_RECURSE
  "CMakeFiles/domino_paxos.dir/replica.cpp.o"
  "CMakeFiles/domino_paxos.dir/replica.cpp.o.d"
  "libdomino_paxos.a"
  "libdomino_paxos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/domino_paxos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
