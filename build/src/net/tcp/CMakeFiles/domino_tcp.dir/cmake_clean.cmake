file(REMOVE_RECURSE
  "CMakeFiles/domino_tcp.dir/event_loop.cpp.o"
  "CMakeFiles/domino_tcp.dir/event_loop.cpp.o.d"
  "CMakeFiles/domino_tcp.dir/frame_connection.cpp.o"
  "CMakeFiles/domino_tcp.dir/frame_connection.cpp.o.d"
  "CMakeFiles/domino_tcp.dir/tcp_context.cpp.o"
  "CMakeFiles/domino_tcp.dir/tcp_context.cpp.o.d"
  "CMakeFiles/domino_tcp.dir/tcp_host.cpp.o"
  "CMakeFiles/domino_tcp.dir/tcp_host.cpp.o.d"
  "libdomino_tcp.a"
  "libdomino_tcp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/domino_tcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
