# Empty compiler generated dependencies file for domino_tcp.
# This may be replaced when dependencies are built.
