file(REMOVE_RECURSE
  "libdomino_tcp.a"
)
