# CMake generated Testfile for 
# Source directory: /root/repo/src/net/tcp
# Build directory: /root/repo/build/src/net/tcp
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
