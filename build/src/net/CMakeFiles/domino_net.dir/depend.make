# Empty dependencies file for domino_net.
# This may be replaced when dependencies are built.
