file(REMOVE_RECURSE
  "CMakeFiles/domino_net.dir/latency_model.cpp.o"
  "CMakeFiles/domino_net.dir/latency_model.cpp.o.d"
  "CMakeFiles/domino_net.dir/network.cpp.o"
  "CMakeFiles/domino_net.dir/network.cpp.o.d"
  "CMakeFiles/domino_net.dir/topology.cpp.o"
  "CMakeFiles/domino_net.dir/topology.cpp.o.d"
  "libdomino_net.a"
  "libdomino_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/domino_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
