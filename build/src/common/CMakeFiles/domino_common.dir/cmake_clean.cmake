file(REMOVE_RECURSE
  "CMakeFiles/domino_common.dir/interval_set.cpp.o"
  "CMakeFiles/domino_common.dir/interval_set.cpp.o.d"
  "CMakeFiles/domino_common.dir/rng.cpp.o"
  "CMakeFiles/domino_common.dir/rng.cpp.o.d"
  "CMakeFiles/domino_common.dir/stats.cpp.o"
  "CMakeFiles/domino_common.dir/stats.cpp.o.d"
  "CMakeFiles/domino_common.dir/time.cpp.o"
  "CMakeFiles/domino_common.dir/time.cpp.o.d"
  "CMakeFiles/domino_common.dir/window_estimator.cpp.o"
  "CMakeFiles/domino_common.dir/window_estimator.cpp.o.d"
  "CMakeFiles/domino_common.dir/zipf.cpp.o"
  "CMakeFiles/domino_common.dir/zipf.cpp.o.d"
  "libdomino_common.a"
  "libdomino_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/domino_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
