file(REMOVE_RECURSE
  "libdomino_mencius.a"
)
