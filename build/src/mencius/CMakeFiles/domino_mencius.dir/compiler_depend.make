# Empty compiler generated dependencies file for domino_mencius.
# This may be replaced when dependencies are built.
