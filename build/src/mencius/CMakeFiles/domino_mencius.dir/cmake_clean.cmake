file(REMOVE_RECURSE
  "CMakeFiles/domino_mencius.dir/replica.cpp.o"
  "CMakeFiles/domino_mencius.dir/replica.cpp.o.d"
  "libdomino_mencius.a"
  "libdomino_mencius.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/domino_mencius.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
