file(REMOVE_RECURSE
  "libdomino_log.a"
)
