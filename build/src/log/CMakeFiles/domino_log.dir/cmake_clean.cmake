file(REMOVE_RECURSE
  "CMakeFiles/domino_log.dir/global_log.cpp.o"
  "CMakeFiles/domino_log.dir/global_log.cpp.o.d"
  "CMakeFiles/domino_log.dir/index_log.cpp.o"
  "CMakeFiles/domino_log.dir/index_log.cpp.o.d"
  "libdomino_log.a"
  "libdomino_log.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/domino_log.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
