# Empty dependencies file for domino_log.
# This may be replaced when dependencies are built.
