
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/log/global_log.cpp" "src/log/CMakeFiles/domino_log.dir/global_log.cpp.o" "gcc" "src/log/CMakeFiles/domino_log.dir/global_log.cpp.o.d"
  "/root/repo/src/log/index_log.cpp" "src/log/CMakeFiles/domino_log.dir/index_log.cpp.o" "gcc" "src/log/CMakeFiles/domino_log.dir/index_log.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/domino_common.dir/DependInfo.cmake"
  "/root/repo/build/src/statemachine/CMakeFiles/domino_statemachine.dir/DependInfo.cmake"
  "/root/repo/build/src/wire/CMakeFiles/domino_wire.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
