# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("sim")
subdirs("wire")
subdirs("net")
subdirs("rpc")
subdirs("measure")
subdirs("statemachine")
subdirs("log")
subdirs("paxos")
subdirs("mencius")
subdirs("epaxos")
subdirs("fastpaxos")
subdirs("core")
subdirs("harness")
