
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/statemachine/kvstore.cpp" "src/statemachine/CMakeFiles/domino_statemachine.dir/kvstore.cpp.o" "gcc" "src/statemachine/CMakeFiles/domino_statemachine.dir/kvstore.cpp.o.d"
  "/root/repo/src/statemachine/workload.cpp" "src/statemachine/CMakeFiles/domino_statemachine.dir/workload.cpp.o" "gcc" "src/statemachine/CMakeFiles/domino_statemachine.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/domino_common.dir/DependInfo.cmake"
  "/root/repo/build/src/wire/CMakeFiles/domino_wire.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
