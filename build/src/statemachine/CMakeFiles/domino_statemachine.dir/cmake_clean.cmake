file(REMOVE_RECURSE
  "CMakeFiles/domino_statemachine.dir/kvstore.cpp.o"
  "CMakeFiles/domino_statemachine.dir/kvstore.cpp.o.d"
  "CMakeFiles/domino_statemachine.dir/workload.cpp.o"
  "CMakeFiles/domino_statemachine.dir/workload.cpp.o.d"
  "libdomino_statemachine.a"
  "libdomino_statemachine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/domino_statemachine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
