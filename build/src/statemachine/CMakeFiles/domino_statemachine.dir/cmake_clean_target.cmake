file(REMOVE_RECURSE
  "libdomino_statemachine.a"
)
