# Empty compiler generated dependencies file for domino_statemachine.
# This may be replaced when dependencies are built.
