file(REMOVE_RECURSE
  "CMakeFiles/domino_rpc.dir/client_base.cpp.o"
  "CMakeFiles/domino_rpc.dir/client_base.cpp.o.d"
  "CMakeFiles/domino_rpc.dir/node.cpp.o"
  "CMakeFiles/domino_rpc.dir/node.cpp.o.d"
  "libdomino_rpc.a"
  "libdomino_rpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/domino_rpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
