# Empty compiler generated dependencies file for domino_rpc.
# This may be replaced when dependencies are built.
