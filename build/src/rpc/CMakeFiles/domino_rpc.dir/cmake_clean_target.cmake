file(REMOVE_RECURSE
  "libdomino_rpc.a"
)
