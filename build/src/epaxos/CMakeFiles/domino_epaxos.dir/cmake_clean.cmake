file(REMOVE_RECURSE
  "CMakeFiles/domino_epaxos.dir/replica.cpp.o"
  "CMakeFiles/domino_epaxos.dir/replica.cpp.o.d"
  "libdomino_epaxos.a"
  "libdomino_epaxos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/domino_epaxos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
