file(REMOVE_RECURSE
  "libdomino_epaxos.a"
)
