# Empty compiler generated dependencies file for domino_epaxos.
# This may be replaced when dependencies are built.
