# Empty compiler generated dependencies file for domino_fastpaxos.
# This may be replaced when dependencies are built.
