file(REMOVE_RECURSE
  "CMakeFiles/domino_fastpaxos.dir/replica.cpp.o"
  "CMakeFiles/domino_fastpaxos.dir/replica.cpp.o.d"
  "libdomino_fastpaxos.a"
  "libdomino_fastpaxos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/domino_fastpaxos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
