file(REMOVE_RECURSE
  "libdomino_fastpaxos.a"
)
