file(REMOVE_RECURSE
  "libdomino_measure.a"
)
