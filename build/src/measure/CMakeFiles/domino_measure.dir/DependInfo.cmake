
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/measure/estimator.cpp" "src/measure/CMakeFiles/domino_measure.dir/estimator.cpp.o" "gcc" "src/measure/CMakeFiles/domino_measure.dir/estimator.cpp.o.d"
  "/root/repo/src/measure/prober.cpp" "src/measure/CMakeFiles/domino_measure.dir/prober.cpp.o" "gcc" "src/measure/CMakeFiles/domino_measure.dir/prober.cpp.o.d"
  "/root/repo/src/measure/proxy.cpp" "src/measure/CMakeFiles/domino_measure.dir/proxy.cpp.o" "gcc" "src/measure/CMakeFiles/domino_measure.dir/proxy.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rpc/CMakeFiles/domino_rpc.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/domino_common.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/domino_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/domino_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/statemachine/CMakeFiles/domino_statemachine.dir/DependInfo.cmake"
  "/root/repo/build/src/wire/CMakeFiles/domino_wire.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
