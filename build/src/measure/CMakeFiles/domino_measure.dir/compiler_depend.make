# Empty compiler generated dependencies file for domino_measure.
# This may be replaced when dependencies are built.
