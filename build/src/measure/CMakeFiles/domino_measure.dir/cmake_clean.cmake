file(REMOVE_RECURSE
  "CMakeFiles/domino_measure.dir/estimator.cpp.o"
  "CMakeFiles/domino_measure.dir/estimator.cpp.o.d"
  "CMakeFiles/domino_measure.dir/prober.cpp.o"
  "CMakeFiles/domino_measure.dir/prober.cpp.o.d"
  "CMakeFiles/domino_measure.dir/proxy.cpp.o"
  "CMakeFiles/domino_measure.dir/proxy.cpp.o.d"
  "libdomino_measure.a"
  "libdomino_measure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/domino_measure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
