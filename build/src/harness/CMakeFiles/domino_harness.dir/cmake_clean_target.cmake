file(REMOVE_RECURSE
  "libdomino_harness.a"
)
