file(REMOVE_RECURSE
  "CMakeFiles/domino_harness.dir/collector.cpp.o"
  "CMakeFiles/domino_harness.dir/collector.cpp.o.d"
  "CMakeFiles/domino_harness.dir/geometry.cpp.o"
  "CMakeFiles/domino_harness.dir/geometry.cpp.o.d"
  "CMakeFiles/domino_harness.dir/report.cpp.o"
  "CMakeFiles/domino_harness.dir/report.cpp.o.d"
  "CMakeFiles/domino_harness.dir/runner.cpp.o"
  "CMakeFiles/domino_harness.dir/runner.cpp.o.d"
  "CMakeFiles/domino_harness.dir/trace.cpp.o"
  "CMakeFiles/domino_harness.dir/trace.cpp.o.d"
  "libdomino_harness.a"
  "libdomino_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/domino_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
