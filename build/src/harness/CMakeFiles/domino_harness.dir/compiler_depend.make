# Empty compiler generated dependencies file for domino_harness.
# This may be replaced when dependencies are built.
