# Empty dependencies file for domino_wire.
# This may be replaced when dependencies are built.
