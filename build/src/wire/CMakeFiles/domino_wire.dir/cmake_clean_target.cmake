file(REMOVE_RECURSE
  "libdomino_wire.a"
)
