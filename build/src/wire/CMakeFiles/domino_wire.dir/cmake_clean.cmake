file(REMOVE_RECURSE
  "CMakeFiles/domino_wire.dir/codec.cpp.o"
  "CMakeFiles/domino_wire.dir/codec.cpp.o.d"
  "libdomino_wire.a"
  "libdomino_wire.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/domino_wire.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
