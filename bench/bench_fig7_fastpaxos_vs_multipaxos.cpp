// Figure 7: Fast Paxos vs Multi-Paxos commit-latency CDFs with one client
// (IA) and two concurrent clients (IA + WA). Replicas in WA, VA, QC; WA
// hosts the Fast Paxos coordinator and the Multi-Paxos leader.
//
// Paper shape: with one client Fast Paxos is ~65 ms faster at the median;
// with two concurrent clients Fast Paxos collides, falls back to its slow
// path and becomes slower than Multi-Paxos.
#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace domino;
  bench::print_header("Fast Paxos vs Multi-Paxos, 1 and 2 clients",
                      "paper Figure 7, Section 7.2.1");

  auto make_scenario = [](bool two_clients) {
    harness::Scenario s;
    s.topology = net::Topology::north_america();
    s.replica_dcs = {s.topology.index_of("WA"), s.topology.index_of("VA"),
                     s.topology.index_of("QC")};
    s.leader_index = 0;  // WA
    s.client_dcs = {s.topology.index_of("IA")};
    if (two_clients) s.client_dcs.push_back(s.topology.index_of("WA"));
    s.rps = 200;
    s.warmup = seconds(2);
    s.measure = seconds(15);
    s.seed = 11;
    return s;
  };

  const int reps = 3;
  const auto fp1 = bench::run_repeated(harness::Protocol::kFastPaxos, make_scenario(false), reps);
  const auto mp1 = bench::run_repeated(harness::Protocol::kMultiPaxos, make_scenario(false), reps);
  const auto fp2 = bench::run_repeated(harness::Protocol::kFastPaxos, make_scenario(true), reps);
  const auto mp2 = bench::run_repeated(harness::Protocol::kMultiPaxos, make_scenario(true), reps);

  std::printf("%s\n", harness::summary_line("FP 1 client", fp1.commit_ms).c_str());
  std::printf("%s\n", harness::summary_line("MP 1 client", mp1.commit_ms).c_str());
  std::printf("%s\n", harness::summary_line("FP 2 clients", fp2.commit_ms).c_str());
  std::printf("%s\n\n", harness::summary_line("MP 2 clients", mp2.commit_ms).c_str());

  std::printf("%s\n",
              harness::render_cdf_table({"FP-1c", "MP-1c", "FP-2c", "MP-2c"},
                                        {&fp1.commit_ms, &mp1.commit_ms, &fp2.commit_ms,
                                         &mp2.commit_ms})
                  .c_str());

  std::printf("Fast Paxos slow-path share: 1 client %.1f%%, 2 clients %.1f%%\n",
              100.0 * (double)fp1.slow_path / std::max<std::uint64_t>(1, fp1.slow_path + fp1.fast_path),
              100.0 * (double)fp2.slow_path / std::max<std::uint64_t>(1, fp2.slow_path + fp2.fast_path));
  const double d1 = mp1.commit_ms.percentile(50) - fp1.commit_ms.percentile(50);
  std::printf("\n1 client: FP median is %.0f ms lower than MP (paper: ~65 ms lower)\n", d1);
  std::printf("2 clients: FP median %.0f ms vs MP median %.0f ms "
              "(paper: FP higher than MP) -> shape holds: %s\n",
              fp2.commit_ms.percentile(50), mp2.commit_ms.percentile(50),
              fp2.commit_ms.percentile(50) > mp2.commit_ms.percentile(50) ? "yes" : "NO");
  return 0;
}
