// Google-benchmark microbenchmarks for the substrate hot paths: the wire
// codec, the compressed logs, the sliding-window estimator and the
// discrete-event core. These bound the simulator's capacity for the
// Figure 13 throughput sweeps.
#include <benchmark/benchmark.h>

#include "common/interval_set.h"
#include "common/window_estimator.h"
#include "core/messages.h"
#include "log/global_log.h"
#include "log/index_log.h"
#include "sim/simulator.h"
#include "wire/message.h"

namespace {

using namespace domino;

sm::Command make_cmd(std::uint64_t seq) {
  sm::Command c;
  c.id = RequestId{NodeId{1000}, seq};
  c.key = "k1234567";
  c.value = "v7654321";
  return c;
}

void BM_EncodeDfpPropose(benchmark::State& state) {
  const core::DfpPropose msg{123456789, make_cmd(42)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(wire::encode_message(msg));
  }
}
BENCHMARK(BM_EncodeDfpPropose);

void BM_DecodeDfpPropose(benchmark::State& state) {
  const wire::Payload payload = wire::encode_message(core::DfpPropose{123456789, make_cmd(42)});
  for (auto _ : state) {
    benchmark::DoNotOptimize(wire::decode_message<core::DfpPropose>(payload));
  }
}
BENCHMARK(BM_DecodeDfpPropose);

void BM_SimulatorScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator simulator;
    for (int i = 0; i < 1000; ++i) {
      simulator.schedule_after(microseconds(i % 97), [] {});
    }
    benchmark::DoNotOptimize(simulator.run());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SimulatorScheduleRun);

void BM_IndexLogAppendCommitExecute(benchmark::State& state) {
  for (auto _ : state) {
    log::IndexLog log;
    for (std::uint64_t i = 0; i < 1000; ++i) {
      log.accept(i, make_cmd(i));
      log.commit(i);
    }
    benchmark::DoNotOptimize(log.drain_executable());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_IndexLogAppendCommitExecute);

void BM_GlobalLogDfpFlow(benchmark::State& state) {
  for (auto _ : state) {
    log::GlobalLog log(4);
    std::int64_t ts = 1000;
    for (int i = 0; i < 1000; ++i) {
      ts += 1000;
      log.commit(log::LogPosition{ts, 3}, make_cmd(static_cast<std::uint64_t>(i)));
    }
    for (std::uint32_t lane = 0; lane < 4; ++lane) {
      log.advance_watermark(lane, ts + 1000);
    }
    benchmark::DoNotOptimize(log.drain_executable());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_GlobalLogDfpFlow);

void BM_IntervalSetInsertContains(benchmark::State& state) {
  for (auto _ : state) {
    IntervalSet set;
    for (std::int64_t i = 0; i < 1000; ++i) {
      set.insert(i * 3, i * 3 + 1);  // leaves holes -> no full coalesce
    }
    bool any = false;
    for (std::int64_t i = 0; i < 3000; i += 7) any ^= set.contains(i);
    benchmark::DoNotOptimize(any);
  }
}
BENCHMARK(BM_IntervalSetInsertContains);

void BM_WindowEstimatorP95(benchmark::State& state) {
  WindowEstimator w(seconds(1));
  TimePoint t = TimePoint::epoch();
  for (int i = 0; i < 100; ++i) {
    t += milliseconds(10);
    w.add(t, milliseconds(30 + i % 5));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(w.percentile(t, 95));
  }
}
BENCHMARK(BM_WindowEstimatorP95);

}  // namespace

BENCHMARK_MAIN();
