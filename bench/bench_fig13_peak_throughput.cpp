// Figure 13: peak commit throughput with 3 replicas in a private cluster
// (paper: Domino ~65K, EPaxos ~57K, Mencius ~56K, Multi-Paxos ~36K rps).
//
// Substitution: the cluster is modelled as three "machine" datacenters with
// 0.2 ms RTTs, a per-message CPU service time at each replica, and 1 Gbps
// egress. Clients are spread evenly across the machines. We sweep the
// offered load and report the saturated commit rate per protocol.
//
// Expected shape: Multi-Paxos saturates first (every request funnels
// through the leader); Mencius, EPaxos and Domino spread load across
// replicas and peak 1.4-1.8x higher. (The paper's extra Domino edge over
// Mencius comes from I/O-compute pipelining in their Go implementation, an
// implementation property outside this model — see EXPERIMENTS.md.)
#include <cstdio>

#include "bench_util.h"

namespace {

using namespace domino;

harness::Scenario cluster_scenario(double total_rps) {
  harness::Scenario s;
  s.topology = net::Topology{
      {"m1", "m2", "m3"},
      {{0, 0.2, 0.2}, {0.2, 0, 0.2}, {0.2, 0.2, 0}},
      microseconds(100)};
  s.replica_dcs = {0, 1, 2};
  s.leader_index = 0;
  const std::size_t clients = 24;
  for (std::size_t c = 0; c < clients; ++c) s.client_dcs.push_back(c % 3);
  s.rps = total_rps / static_cast<double>(clients);
  s.warmup = seconds(1);
  s.measure = seconds(4);
  s.cooldown = seconds(1);
  s.seed = 17;
  s.jitter.spike_prob = 0;
  s.jitter.jitter_mu_ms = -4.0;  // LAN microsecond jitter
  s.replica_service_time = microseconds(9);  // per-message CPU cost
  s.node_egress_bps = 1e9;                   // 1 Gbps NICs
  s.clock_offset_stddev = microseconds(100);
  // Throughput runs use the lean learner mode: the Section 5.7 broadcast
  // optimization trades O(n^2) messages for latency, the wrong trade when
  // the replicas' CPUs are the bottleneck.
  s.domino_all_learners = false;
  // On a LAN, LatDFP and LatDM estimates tie to within measurement noise;
  // cluster clients co-located with replicas use DM (as in the paper's
  // private-cluster deployment), which spreads load across all leaders —
  // DFP would funnel learning through the coordinator.
  s.domino_mode = core::ClientConfig::Mode::kDmOnly;
  return s;
}

double peak_throughput(harness::Protocol protocol) {
  double best = 0;
  for (double offered : {20e3, 35e3, 45e3, 55e3, 65e3, 80e3}) {
    const auto r = harness::run_protocol(protocol, cluster_scenario(offered));
    const double rate = r.throughput_rps();
    if (rate < best * 0.85) break;  // well past saturation; goodput collapsing
    best = std::max(best, rate);
  }
  return best;
}

}  // namespace

int main() {
  using namespace domino;
  bench::print_header("Peak throughput with 3 replicas",
                      "paper Figure 13, Section 7.4");

  struct Row {
    harness::Protocol protocol;
    double paper_krps;
  };
  const Row rows[] = {{harness::Protocol::kDomino, 65},
                      {harness::Protocol::kMencius, 56},
                      {harness::Protocol::kEPaxos, 57},
                      {harness::Protocol::kMultiPaxos, 36}};

  double mp_peak = 0, best_multi_leader = 0;
  std::printf("  protocol       peak (K req/s)   paper (K req/s)\n");
  for (const Row& row : rows) {
    const double peak = peak_throughput(row.protocol);
    std::printf("  %-13s %10.1f %15.0f\n", harness::protocol_name(row.protocol).c_str(),
                peak / 1000.0, row.paper_krps);
    if (row.protocol == harness::Protocol::kMultiPaxos) mp_peak = peak;
    else best_multi_leader = std::max(best_multi_leader, peak);
  }
  std::printf("\nmulti-leader protocols out-scale the single leader "
              "(best %.0fK vs Multi-Paxos %.0fK): %s\n",
              best_multi_leader / 1000, mp_peak / 1000,
              best_multi_leader > mp_peak * 1.2 ? "yes" : "NO");
  return 0;
}
