// Section 4 analysis + Figure 4: how often Fast Paxos has lower idealized
// commit latency than Mencius and Multi-Paxos across all replica/client
// placements on the Globe RTT matrix (paper: 32.5% and 70.8%).
#include <cstdio>

#include "bench_util.h"
#include "harness/geometry.h"

int main() {
  using namespace domino;
  bench::print_header("Impact of network geometry", "paper Section 4 and Figure 4");

  // Figure 4's worked example.
  net::Topology example{{"Client", "R1", "R2", "R3"},
                        {{0, 10, 20, 35}, {10, 0, 20, 25}, {20, 20, 0, 30},
                         {35, 25, 30, 0}}};
  const std::vector<std::size_t> reps = {1, 2, 3};
  std::printf("Figure 4 example: Multi-Paxos %.0f ms vs Fast Paxos %.0f ms "
              "(paper: 30 vs 35)\n\n",
              harness::multipaxos_latency(example, reps, 0, 0).millis(),
              harness::fast_paxos_latency(example, reps, 0).millis());

  const auto summary = harness::analyze_geometry(net::Topology::globe(), 3);
  std::printf("Globe matrix, 3 replicas, all %zu (placement, client, leader) cases:\n",
              summary.cases.size());
  std::printf("  Fast Paxos beats Mencius    : %5.1f%%   (paper: 32.5%%)\n",
              summary.fp_beats_mencius * 100);
  std::printf("  Fast Paxos beats Multi-Paxos: %5.1f%%   (paper: 70.8%%)\n",
              summary.fp_beats_multipaxos * 100);

  // Extension: the same analysis on the North America matrix and with 5
  // replicas, showing how geometry shifts the balance.
  const auto na3 = harness::analyze_geometry(net::Topology::north_america(), 3);
  const auto globe5 = harness::analyze_geometry(net::Topology::globe(), 5);
  std::printf("\nExtensions (not in the paper):\n");
  std::printf("  NA matrix, 3 replicas : FP beats Mencius %.1f%%, Multi-Paxos %.1f%%\n",
              na3.fp_beats_mencius * 100, na3.fp_beats_multipaxos * 100);
  std::printf("  Globe matrix, 5 replicas: FP beats Mencius %.1f%%, Multi-Paxos %.1f%%\n",
              globe5.fp_beats_mencius * 100, globe5.fp_beats_multipaxos * 100);
  return 0;
}
