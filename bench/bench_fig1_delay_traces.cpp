// Figure 1: network roundtrip delays from VA to WA, PR and NSW over a long
// probing run. The paper plots per-minute histograms of a 24 h trace; we
// generate an equivalent (scaled-down) synthetic trace per link and print
// per-minute delay bands, showing the paper's key observation: "the
// variance of the network roundtrip delay is relatively small compared to
// the minimum measured delay".
#include <cstdio>

#include "bench_util.h"
#include "common/stats.h"
#include "harness/trace.h"

int main() {
  using namespace domino;
  bench::print_header("Network roundtrip delay traces from VA",
                      "paper Figure 1, Section 3");

  struct Target {
    const char* name;
    double rtt_ms;
    double paper_band_lo;  // the y-axis band the paper's plot occupies
    double paper_band_hi;
  };
  const Target targets[] = {
      {"WA", 67, 63, 75},    // Figure 1(a)
      {"PR", 80, 78, 90},    // Figure 1(b)
      {"NSW", 196, 194, 206}  // Figure 1(c)
  };

  const int minutes = 10;  // scaled from the paper's 24 h
  for (const Target& t : targets) {
    harness::LinkTraceConfig cfg;
    cfg.rtt = milliseconds_d(t.rtt_ms);
    cfg.duration = seconds(60 * minutes);
    cfg.probe_interval = milliseconds(10);
    cfg.spike_prob = 0.0005;
    cfg.wander_amplitude = milliseconds_d(0.4);
    cfg.wander_period = seconds(240);
    cfg.seed = 1234 + static_cast<std::uint64_t>(t.rtt_ms);
    const auto trace = harness::generate_trace(cfg);

    TimeSeries per_minute(seconds(60));
    for (const auto& s : trace) per_minute.add(s.sent_at, s.rtt.millis());

    std::printf("\nVA -> %s (nominal %.0f ms; paper band %.0f-%.0f ms)\n", t.name, t.rtt_ms,
                t.paper_band_lo, t.paper_band_hi);
    std::printf("  min   p5      p50     p95     p99     max    (per minute)\n");
    for (std::size_t m = 0; m < per_minute.bucket_count(); ++m) {
      const auto& b = per_minute.bucket(m);
      if (b.empty()) continue;
      std::printf("  %-5zu %-7.1f %-7.1f %-7.1f %-7.1f %-7.1f\n", m, b.percentile(5),
                  b.percentile(50), b.percentile(95), b.percentile(99), b.max());
    }
    StatAccumulator all;
    for (const auto& s : trace) all.add(s.rtt.millis());
    std::printf("  overall: min=%.1f p50=%.1f p99=%.1f  "
                "(variance small vs the %.0f ms propagation floor: %s)\n",
                all.min(), all.percentile(50), all.percentile(99), t.rtt_ms,
                all.percentile(99) < t.rtt_ms * 1.15 ? "yes" : "NO");
  }
  return 0;
}
