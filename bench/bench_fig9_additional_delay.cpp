// Figure 9: Domino's 99th percentile commit latency on the Globe setting as
// a function of (i) the additional delay added to DFP request timestamps
// (0-16 ms) and (ii) the percentile used for network estimates (p50-p99).
// Baseline p99 lines for Mencius, EPaxos and Multi-Paxos are printed for
// reference, as in the figure.
//
// Paper shape: higher measurement percentiles and larger additional delays
// both cut the p99 commit latency (fewer slow-path commits); with no slack
// and a low percentile the p99 spikes far above the baselines.
#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace domino;
  bench::print_header("p99 commit latency vs additional delay x percentile",
                      "paper Figure 9, Section 7.2.2");

  harness::Scenario base = bench::globe_scenario();
  base.rps = 200;
  base.warmup = seconds(2);
  base.measure = seconds(12);
  base.seed = 21;
  base.timeseries_interval = milliseconds(500);  // per-window telemetry in the JSON
  // A heavier-tailed jitter profile than the other figures: the percentile
  // knob only matters when the delay distribution has enough spread for
  // p50 and p99 estimates to differ by milliseconds.
  base.jitter.jitter_mu_ms = -1.0;   // ~0.37 ms median jitter
  base.jitter.jitter_sigma = 1.2;
  base.jitter.spike_prob = 0.002;
  base.jitter.spike_mean = milliseconds(6);

  const auto men = bench::run_repeated(harness::Protocol::kMencius, base, 2);
  const auto epx = bench::run_repeated(harness::Protocol::kEPaxos, base, 2);
  const auto mp = bench::run_repeated(harness::Protocol::kMultiPaxos, base, 2);
  std::printf("baseline p99 (ms): Mencius %.0f, EPaxos %.0f, Multi-Paxos %.0f\n\n",
              men.commit_ms.percentile(99), epx.commit_ms.percentile(99),
              mp.commit_ms.percentile(99));

  const int delays_ms[] = {0, 1, 2, 4, 8, 12, 16};
  const double percentiles[] = {50, 75, 90, 95, 99};

  std::printf("Domino p99 commit latency (ms); rows = measurement percentile\n\n");
  std::printf("  pct \\ delay");
  for (int d : delays_ms) std::printf("%8dms", d);
  std::printf("\n");
  double p95_d0 = 0, p50_d0 = 0, p95_d8 = 0;
  for (double pct : percentiles) {
    std::printf("  p%-10.0f", pct);
    for (int d : delays_ms) {
      harness::Scenario s = base;
      s.measurement_percentile = pct;
      s.additional_delay = milliseconds(d);
      const auto r = bench::run_repeated(harness::Protocol::kDomino, s, 2);
      const double p99 = r.commit_ms.percentile(99);
      std::printf("%10.0f", p99);
      if (pct == 95 && d == 0) p95_d0 = p99;
      if (pct == 50 && d == 0) p50_d0 = p99;
      if (pct == 95 && d == 8) p95_d8 = p99;
    }
    std::printf("\n");
  }
  std::printf("\nhigher percentile lowers p99 at zero delay (p50 %.0f -> p95 %.0f): %s\n",
              p50_d0, p95_d0, p95_d0 <= p50_d0 ? "yes" : "NO");
  std::printf("additional delay lowers p99 at p95 (0ms %.0f -> 8ms %.0f): %s\n", p95_d0,
              p95_d8, p95_d8 <= p95_d0 ? "yes" : "NO");
  // Phase attribution explains the knob: at p95 with no slack a share of the
  // latency shows up as slow-path phases (coordinator reply, retry wait);
  // adding 8 ms of delay shifts it back into dfp_quorum_wait.
  for (const int d : {0, 8}) {
    harness::Scenario s = base;
    s.measurement_percentile = 95;
    s.additional_delay = milliseconds(d);
    s.measure = seconds(5);
    char label[64];
    std::snprintf(label, sizeof(label), "Domino p95 / +%dms delay", d);
    bench::print_phase_breakdown(harness::Protocol::kDomino, s, label);
  }
  // The prediction audit quantifies the same effect from the client's side:
  // with no slack the oracle regret is dominated by slow-path commits whose
  // blame concentrates on the farthest replica; +8 ms of slack buys the
  // deadline back and the regret shrinks toward the pure estimate error.
  for (const int d : {0, 8}) {
    harness::Scenario s = base;
    s.measurement_percentile = 95;
    s.additional_delay = milliseconds(d);
    s.measure = seconds(5);
    char label[64];
    std::snprintf(label, sizeof(label), "Domino p95 / +%dms delay", d);
    bench::print_prediction_audit(harness::Protocol::kDomino, s, label);
  }
  bench::emit_json_report("fig9_report.json", "Figure 9 baselines", base, 2,
                          {{"Mencius", &men}, {"EPaxos", &epx}, {"Multi-Paxos", &mp}});
  return 0;
}
