// Regression gate: one compact, fully deterministic run of all five
// protocols on the Globe setting, emitted as a schema-v2 bench JSON
// (BENCH_gate.json by default, or argv[1]). scripts/check.sh
// --bench-baseline records this file as scripts/baselines/BENCH_gate.json
// and scripts/bench_compare.py diffs a fresh run against the recorded
// baseline with tolerance bands — a latency or throughput regression in any
// protocol fails the gate.
//
// Everything here is seeded and virtual-time, so a same-toolchain rerun
// reproduces the baseline byte-for-byte; the compare tolerances exist for
// intentional protocol changes, not for run-to-run noise.
#include <cstdio>

#include "bench_util.h"
#include "wan/delay_trace.h"

int main(int argc, char** argv) {
  using namespace domino;
  const char* out = argc > 1 ? argv[1] : "BENCH_gate.json";
  bench::print_header("Regression gate: all protocols, Globe, one seed",
                      "scripts/check.sh --bench-baseline");

  harness::Scenario s = bench::globe_scenario();
  s.rps = 100;
  s.warmup = seconds(1);
  s.measure = seconds(4);
  s.cooldown = milliseconds(500);
  s.seed = 7;
  s.timeseries_interval = milliseconds(250);
  const int reps = 1;

  const auto mp = bench::run_repeated(harness::Protocol::kMultiPaxos, s, reps);
  const auto men = bench::run_repeated(harness::Protocol::kMencius, s, reps);
  const auto epx = bench::run_repeated(harness::Protocol::kEPaxos, s, reps);
  const auto fp = bench::run_repeated(harness::Protocol::kFastPaxos, s, reps);
  const auto dom = bench::run_repeated(harness::Protocol::kDomino, s, reps);

  // Same scenario with the VA links replaying the checked-in fixture trace:
  // gates the whole trace-ingestion + empirical-replay path (wan::) against
  // latency drift, not just the synthetic jitter models.
  harness::Scenario st = s;
  st.wan_trace = std::make_shared<wan::DelayTrace>(
      wan::DelayTrace::load(std::string(DOMINO_TRACE_DIR) + "/globe_va.csv"));
  const auto dom_trace = bench::run_repeated(harness::Protocol::kDomino, st, reps);

  std::printf("%s\n", harness::summary_line("Multi-Paxos", mp.commit_ms).c_str());
  std::printf("%s\n", harness::summary_line("Mencius", men.commit_ms).c_str());
  std::printf("%s\n", harness::summary_line("EPaxos", epx.commit_ms).c_str());
  std::printf("%s\n", harness::summary_line("Fast Paxos", fp.commit_ms).c_str());
  std::printf("%s\n", harness::summary_line("Domino", dom.commit_ms).c_str());
  std::printf("%s\n", harness::summary_line("Domino/trace", dom_trace.commit_ms).c_str());

  bench::emit_json_report(out, "Regression gate", s, reps,
                          {{"Multi-Paxos", &mp},
                           {"Mencius", &men},
                           {"EPaxos", &epx},
                           {"Fast-Paxos", &fp},
                           {"Domino", &dom},
                           {"Domino-trace", &dom_trace}});
  return 0;
}
