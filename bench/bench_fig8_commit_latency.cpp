// Figure 8: commit-latency CDFs of Domino, Mencius, EPaxos and Multi-Paxos
// in three deployments:
//   (a) North America, 3 replicas (WA, VA, QC),
//   (b) North America, 5 replicas (+ CA, TX),
//   (c) Globe, 3 replicas (WA, PR, NSW).
// One client per datacenter, 200 req/s each. Paper shape: Domino has the
// lowest median and p95 everywhere; Multi-Paxos the highest; Mencius sits
// between EPaxos and Multi-Paxos in NA and has a heavy tail on Globe.
#include <cstdio>

#include "bench_util.h"

namespace {

using namespace domino;

void run_setting(const char* name, const char* json_path, harness::Scenario s,
                 const char* paper_note) {
  s.rps = 200;
  s.warmup = seconds(2);
  s.measure = seconds(15);
  s.seed = 5;
  s.timeseries_interval = milliseconds(500);  // per-window telemetry in the JSON
  const int reps = 3;

  const auto dom = bench::run_repeated(harness::Protocol::kDomino, s, reps);
  const auto men = bench::run_repeated(harness::Protocol::kMencius, s, reps);
  const auto epx = bench::run_repeated(harness::Protocol::kEPaxos, s, reps);
  const auto mp = bench::run_repeated(harness::Protocol::kMultiPaxos, s, reps);

  std::printf("\n--- %s ---\n", name);
  std::printf("%s\n", harness::summary_line("Domino", dom.commit_ms).c_str());
  std::printf("%s\n", harness::summary_line("Mencius", men.commit_ms).c_str());
  std::printf("%s\n", harness::summary_line("EPaxos", epx.commit_ms).c_str());
  std::printf("%s\n", harness::summary_line("Multi-Paxos", mp.commit_ms).c_str());
  std::printf("Domino fast-path commits: %llu / %llu DFP-chosen; clients using DFP/DM: "
              "%llu/%llu\n",
              (unsigned long long)dom.fast_path, (unsigned long long)dom.dfp_chosen,
              (unsigned long long)dom.dfp_chosen, (unsigned long long)dom.dm_chosen);
  std::printf("%s\n", paper_note);
  std::printf("%s\n",
              harness::render_cdf_table({"Domino", "Mencius", "EPaxos", "MultiPaxos"},
                                        {&dom.commit_ms, &men.commit_ms, &epx.commit_ms,
                                         &mp.commit_ms})
                  .c_str());
  const bool domino_wins = dom.commit_ms.percentile(50) <= men.commit_ms.percentile(50) &&
                           dom.commit_ms.percentile(50) <= epx.commit_ms.percentile(50) &&
                           dom.commit_ms.percentile(50) <= mp.commit_ms.percentile(50);
  std::printf("Domino lowest median: %s\n", domino_wins ? "yes" : "NO");
  // Where the latency goes: a shorter traced run attributes each committed
  // command's latency to commit-path phases (transit, quorum wait, slow-path
  // penalty) via the causal span analyzer.
  harness::Scenario traced = s;
  traced.measure = seconds(5);
  bench::print_phase_breakdown(harness::Protocol::kDomino, traced, "Domino");
  bench::emit_json_report(json_path, name, s, reps,
                          {{"Domino", &dom}, {"Mencius", &men}, {"EPaxos", &epx},
                           {"Multi-Paxos", &mp}});
}

}  // namespace

int main() {
  using namespace domino;
  bench::print_header("Commit latency on the simulated Azure WAN",
                      "paper Figure 8 (a, b, c), Section 7.2.2");

  run_setting("Figure 8(a): NA, 3 replicas", "fig8a_report.json", bench::na_scenario(3),
              "paper medians: Domino 48, EPaxos 64, Mencius 75, Multi-Paxos 107 (ms)");
  run_setting("Figure 8(b): NA, 5 replicas", "fig8b_report.json", bench::na_scenario(5),
              "paper: Domino still lowest at median and p95");
  run_setting("Figure 8(c): Globe, 3 replicas", "fig8c_report.json", bench::globe_scenario(),
              "paper: Domino ~86 ms lower than EPaxos at p95; Mencius heavy tail");
  return 0;
}
