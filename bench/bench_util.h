// Shared helpers for the experiment binaries: the paper's standard
// deployments (Section 7.2) and result formatting.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "harness/report.h"
#include "harness/runner.h"

namespace domino::bench {

/// NA setting (Section 7.2): 9 datacenters, replicas WA/VA/QC (3-replica
/// runs) + CA/TX (5-replica runs), WA hosts the leader/coordinator, one
/// client per datacenter.
inline harness::Scenario na_scenario(std::size_t replica_count) {
  harness::Scenario s;
  s.topology = net::Topology::north_america();
  s.replica_dcs = {s.topology.index_of("WA"), s.topology.index_of("VA"),
                   s.topology.index_of("QC")};
  if (replica_count == 5) {
    s.replica_dcs.push_back(s.topology.index_of("CA"));
    s.replica_dcs.push_back(s.topology.index_of("TX"));
  }
  s.leader_index = 0;  // WA
  for (std::size_t dc = 0; dc < s.topology.size(); ++dc) s.client_dcs.push_back(dc);
  return s;
}

/// Globe setting (Section 7.2): 6 datacenters, replicas WA/PR/NSW, WA hosts
/// the leader/coordinator, one client per datacenter.
inline harness::Scenario globe_scenario() {
  harness::Scenario s;
  s.topology = net::Topology::globe();
  s.replica_dcs = {s.topology.index_of("WA"), s.topology.index_of("PR"),
                   s.topology.index_of("NSW")};
  s.leader_index = 0;  // WA
  for (std::size_t dc = 0; dc < s.topology.size(); ++dc) s.client_dcs.push_back(dc);
  return s;
}

/// Run one protocol over several seeds and merge the latency samples — the
/// paper runs every experiment 10 times and combines the results.
inline harness::RunResult run_repeated(harness::Protocol protocol, harness::Scenario s,
                                       int repetitions) {
  harness::RunResult total;
  for (int i = 0; i < repetitions; ++i) {
    s.seed = s.seed * 31 + static_cast<std::uint64_t>(i) + 1;
    harness::RunResult r = harness::run_protocol(protocol, s);
    total.commit_ms.merge(r.commit_ms);
    total.exec_ms.merge(r.exec_ms);
    total.submitted += r.submitted;
    total.committed += r.committed;
    total.fast_path += r.fast_path;
    total.slow_path += r.slow_path;
    total.dfp_chosen += r.dfp_chosen;
    total.dm_chosen += r.dm_chosen;
    total.packets_sent += r.packets_sent;
    total.bytes_sent += r.bytes_sent;
    total.measure_window += r.measure_window;
    if (total.commit_per_client.size() < r.commit_per_client.size()) {
      total.commit_per_client.resize(r.commit_per_client.size());
    }
    for (std::size_t c = 0; c < r.commit_per_client.size(); ++c) {
      total.commit_per_client[c].merge(r.commit_per_client[c]);
    }
  }
  return total;
}

inline void print_header(const std::string& title, const std::string& paper_ref) {
  std::printf("==========================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("(reproduces %s)\n", paper_ref.c_str());
  std::printf("==========================================================\n");
}

}  // namespace domino::bench
