// Shared helpers for the experiment binaries: the paper's standard
// deployments (Section 7.2) and result formatting.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "harness/report.h"
#include "harness/run_report.h"
#include "harness/runner.h"
#include "obs/export.h"

namespace domino::bench {

/// NA setting (Section 7.2): 9 datacenters, replicas WA/VA/QC (3-replica
/// runs) + CA/TX (5-replica runs), WA hosts the leader/coordinator, one
/// client per datacenter.
inline harness::Scenario na_scenario(std::size_t replica_count) {
  harness::Scenario s;
  s.topology = net::Topology::north_america();
  s.replica_dcs = {s.topology.index_of("WA"), s.topology.index_of("VA"),
                   s.topology.index_of("QC")};
  if (replica_count == 5) {
    s.replica_dcs.push_back(s.topology.index_of("CA"));
    s.replica_dcs.push_back(s.topology.index_of("TX"));
  }
  s.leader_index = 0;  // WA
  for (std::size_t dc = 0; dc < s.topology.size(); ++dc) s.client_dcs.push_back(dc);
  return s;
}

/// Globe setting (Section 7.2): 6 datacenters, replicas WA/PR/NSW, WA hosts
/// the leader/coordinator, one client per datacenter.
inline harness::Scenario globe_scenario() {
  harness::Scenario s;
  s.topology = net::Topology::globe();
  s.replica_dcs = {s.topology.index_of("WA"), s.topology.index_of("PR"),
                   s.topology.index_of("NSW")};
  s.leader_index = 0;  // WA
  for (std::size_t dc = 0; dc < s.topology.size(); ++dc) s.client_dcs.push_back(dc);
  return s;
}

/// Run one protocol over several seeds and merge the latency samples — the
/// paper runs every experiment 10 times and combines the results.
inline harness::RunResult run_repeated(harness::Protocol protocol, harness::Scenario s,
                                       int repetitions) {
  harness::RunResult total;
  for (int i = 0; i < repetitions; ++i) {
    s.seed = s.seed * 31 + static_cast<std::uint64_t>(i) + 1;
    harness::RunResult r = harness::run_protocol(protocol, s);
    total.commit_ms.merge(r.commit_ms);
    total.exec_ms.merge(r.exec_ms);
    total.submitted += r.submitted;
    total.committed += r.committed;
    total.fast_path += r.fast_path;
    total.slow_path += r.slow_path;
    total.dfp_chosen += r.dfp_chosen;
    total.dm_chosen += r.dm_chosen;
    total.packets_sent += r.packets_sent;
    total.bytes_sent += r.bytes_sent;
    total.client_retries += r.client_retries;
    total.client_abandoned += r.client_abandoned;
    total.measure_window += r.measure_window;
    // Keep the first repetition's windowed telemetry and SLO verdicts: the
    // timeline is a per-run object (window deltas don't merge across seeds),
    // and one representative seed is what the regression tooling diffs.
    if (i == 0) {
      total.timeseries = r.timeseries;
      total.slo = std::move(r.slo);
    }
    if (total.commit_per_client.size() < r.commit_per_client.size()) {
      total.commit_per_client.resize(r.commit_per_client.size());
    }
    for (std::size_t c = 0; c < r.commit_per_client.size(); ++c) {
      total.commit_per_client[c].merge(r.commit_per_client[c]);
    }
  }
  return total;
}

/// Run one traced run (command_spans on) and print where committed commands
/// spent their time: per critical-path phase, total/mean attribution and its
/// share of the summed end-to-end latency (shares tile to 100% because the
/// analyzer partitions [submit, commit] exactly). Piggybacked trace context
/// changes wire bytes, so the breakdown uses its own run instead of
/// instrumenting the measured ones.
inline void print_phase_breakdown(harness::Protocol protocol, harness::Scenario s,
                                  const char* label) {
  s.command_spans = true;
  const harness::RunResult r = harness::run_protocol(protocol, s);
  struct Cell {
    std::int64_t ns = 0;
    std::uint64_t hits = 0;
  };
  std::map<std::string_view, Cell> phases;
  std::int64_t total_ns = 0;
  for (const obs::CommandPath& p : r.critical_paths) {
    for (const obs::PathSegment& seg : p.segments) {
      Cell& cell = phases[seg.phase];
      cell.ns += seg.duration().nanos();
      cell.hits += 1;
      total_ns += seg.duration().nanos();
    }
  }
  std::printf("\n%s commit-path phase attribution (%zu commands, traced run):\n", label,
              r.critical_paths.size());
  if (total_ns == 0) {
    std::printf("  (no committed commands)\n");
    return;
  }
  std::vector<std::pair<std::string_view, Cell>> rows(phases.begin(), phases.end());
  std::sort(rows.begin(), rows.end(),
            [](const auto& a, const auto& b) { return a.second.ns > b.second.ns; });
  for (const auto& [phase, cell] : rows) {
    std::printf("  %-24.*s total %10.1f ms  mean %8.3f ms  %5.1f%%\n",
                static_cast<int>(phase.size()), phase.data(),
                static_cast<double>(cell.ns) / 1e6,
                static_cast<double>(cell.ns) / static_cast<double>(cell.hits) / 1e6,
                100.0 * static_cast<double>(cell.ns) / static_cast<double>(total_ns));
  }
}

/// Run one audited run (prediction_audit on) and print the prediction-audit
/// digest: decision mix, mean absolute prediction error, oracle regret
/// (total / mean / max over the run), misprediction blame per replica, and
/// the estimator-calibration coverage of every prober. The audit is pure
/// observation (no wire or timing changes), but the digest uses its own run
/// so the measured runs stay untouched.
inline void print_prediction_audit(harness::Protocol protocol, harness::Scenario s,
                                   const char* label) {
  s.prediction_audit = true;
  const harness::RunResult r = harness::run_protocol(protocol, s);
  if (r.predict == nullptr) return;
  const obs::PredictionAudit& a = *r.predict;
  std::printf("\n%s prediction audit (%llu decisions, %llu reconciled):\n", label,
              static_cast<unsigned long long>(a.decisions()),
              static_cast<unsigned long long>(a.reconciled()));
  if (a.reconciled() == 0) {
    std::printf("  (no reconciled decisions)\n");
    return;
  }
  std::printf("  outcomes: fast_path %llu, slow_path %llu, dm_commit %llu"
              " (failovers %llu, adaptive overrides %llu)\n",
              static_cast<unsigned long long>(a.fast_path()),
              static_cast<unsigned long long>(a.slow_path()),
              static_cast<unsigned long long>(a.dm_commits()),
              static_cast<unsigned long long>(a.failovers()),
              static_cast<unsigned long long>(a.adaptive_overrides()));
  if (a.error_samples() > 0) {
    std::printf("  prediction error: mean |realized - predicted| %.3f ms"
                " over %llu decisions\n",
                static_cast<double>(a.error_abs_sum_ns()) /
                    static_cast<double>(a.error_samples()) / 1e6,
                static_cast<unsigned long long>(a.error_samples()));
  }
  if (a.regret_samples() > 0) {
    std::printf("  oracle regret: total %.1f ms, mean %.3f ms, max %.3f ms"
                " over %llu decisions\n",
                static_cast<double>(a.regret_sum_ns()) / 1e6,
                static_cast<double>(a.regret_sum_ns()) /
                    static_cast<double>(a.regret_samples()) / 1e6,
                static_cast<double>(a.regret_max_ns()) / 1e6,
                static_cast<unsigned long long>(a.regret_samples()));
  }
  std::map<NodeId, std::uint64_t> blamed;
  for (const obs::DecisionRecord& rec : a.records()) {
    if (rec.blamed.valid()) ++blamed[rec.blamed];
  }
  if (!blamed.empty()) {
    std::printf("  blamed for missed fast paths:");
    for (const auto& [node, count] : blamed) {
      std::printf(" %s x%llu", node.to_string().c_str(),
                  static_cast<unsigned long long>(count));
    }
    std::printf("\n");
  }
  if (!r.calibration.empty()) {
    std::uint64_t samples = 0;
    std::uint64_t covered = 0;
    const obs::CalibrationRow* worst = nullptr;
    for (const obs::CalibrationRow& row : r.calibration) {
      samples += row.samples;
      covered += row.covered;
      if (worst == nullptr || row.coverage() < worst->coverage()) worst = &row;
    }
    std::printf("  calibration: %zu series, overall coverage %.3f;"
                " worst %s->%s at %.3f (max overshoot %.3f ms)\n",
                r.calibration.size(),
                static_cast<double>(covered) / static_cast<double>(samples),
                worst->owner.to_string().c_str(), worst->target.to_string().c_str(),
                worst->coverage(), static_cast<double>(worst->max_overshoot_ns) / 1e6);
  }
}

inline void print_header(const std::string& title, const std::string& paper_ref) {
  std::printf("==========================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("(reproduces %s)\n", paper_ref.c_str());
  std::printf("==========================================================\n");
}

/// One labelled result row for emit_json_report.
struct NamedResult {
  std::string label;
  const harness::RunResult* result;
};

/// Emit a machine-readable summary of a bench run next to the human table:
/// a schema-v2 JSON object carrying the run metadata (so
/// scripts/bench_compare.py can refuse apples-to-oranges comparisons), one
/// stats row per label, and — when the scenario sampled a timeline — the
/// per-window telemetry of each result. Deterministic for deterministic
/// inputs.
inline void emit_json_report(const std::string& path, const std::string& figure,
                             const harness::Scenario& scenario, int repetitions,
                             const std::vector<NamedResult>& results) {
  using obs::appendf;
  std::string out = "{\n\"schema_version\":2,\n\"figure\":\"" +
                    obs::json_escape(figure) + "\",\n\"meta\":{";
  appendf(out, "\"replicas\":%zu,\"clients\":%zu,\"topology_dcs\":%zu",
          scenario.replica_dcs.size(), scenario.client_dcs.size(),
          scenario.topology.size());
  out += ",\"replica_sites\":[";
  for (std::size_t i = 0; i < scenario.replica_dcs.size(); ++i) {
    if (i != 0) out += ',';
    out += "\"" + obs::json_escape(scenario.topology.name(scenario.replica_dcs[i])) + "\"";
  }
  out += ']';
  appendf(out, ",\"leader_index\":%zu,\"rps_per_client\":%.3f", scenario.leader_index,
          scenario.rps);
  appendf(out, ",\"warmup_ms\":%.3f,\"measure_ms\":%.3f,\"cooldown_ms\":%.3f",
          scenario.warmup.millis(), scenario.measure.millis(),
          scenario.cooldown.millis());
  appendf(out, ",\"base_seed\":%llu,\"repetitions\":%d",
          static_cast<unsigned long long>(scenario.seed), repetitions);
  appendf(out, ",\"timeseries_interval_ms\":%.3f",
          scenario.timeseries_interval.millis());
  out += "},\n\"results\":{";
  bool first = true;
  for (const NamedResult& nr : results) {
    if (nr.result == nullptr) continue;
    const harness::RunResult& r = *nr.result;
    if (!first) out += ",";
    first = false;
    const harness::LatencyStats commit = harness::summarize_stats(r.commit_ms);
    const harness::LatencyStats exec = harness::summarize_stats(r.exec_ms);
    out += "\n\"" + obs::json_escape(nr.label) + "\":";
    appendf(out, "{\"committed\":%llu,\"submitted\":%llu,\"fast_path\":%llu,"
                 "\"slow_path\":%llu,\"throughput_rps\":%.3f",
            static_cast<unsigned long long>(r.committed),
            static_cast<unsigned long long>(r.submitted),
            static_cast<unsigned long long>(r.fast_path),
            static_cast<unsigned long long>(r.slow_path), r.throughput_rps());
    appendf(out, ",\"packets_sent\":%llu,\"bytes_sent\":%llu,"
                 "\"client_retries\":%llu,\"client_abandoned\":%llu",
            static_cast<unsigned long long>(r.packets_sent),
            static_cast<unsigned long long>(r.bytes_sent),
            static_cast<unsigned long long>(r.client_retries),
            static_cast<unsigned long long>(r.client_abandoned));
    appendf(out, ",\"commit_ms\":{\"count\":%zu,\"mean\":%.6f,\"p50\":%.6f,"
                 "\"p95\":%.6f,\"p99\":%.6f}",
            commit.count, commit.mean, commit.p50, commit.p95, commit.p99);
    appendf(out, ",\"exec_ms\":{\"count\":%zu,\"mean\":%.6f,\"p50\":%.6f,"
                 "\"p95\":%.6f,\"p99\":%.6f}",
            exec.count, exec.mean, exec.p50, exec.p95, exec.p99);
    if (r.timeseries != nullptr) {
      out += ",\"timeline\":";
      obs::append_timeseries_json(out, *r.timeseries);
    }
    out += '}';
  }
  out += "\n}\n}\n";
  if (obs::write_file(path, out)) {
    std::printf("\n[json report written to %s]\n", path.c_str());
  }
}

}  // namespace domino::bench
