// Figure 10: execution-latency CDFs on the Globe setting for Domino (with
// the paper's 8 ms additional delay), Mencius, EPaxos and Multi-Paxos, at
// Zipfian alpha 0.75 (a) and 0.95 (b).
//
// Paper shape: (a) EPaxos lowest at low percentiles (out-of-order execution
// of non-conflicting commands), Domino pays a penalty at low percentiles
// (timestamp-order execution behind the no-op frontier) but has the lowest
// p95; (b) raising contention hurts EPaxos sharply while Domino and
// Multi-Paxos are unaffected (log-order execution).
#include <cstdio>

#include "bench_util.h"

namespace {

using namespace domino;

void run_alpha(double alpha, const char* name, const char* note) {
  harness::Scenario s = bench::globe_scenario();
  s.rps = 200;
  s.warmup = seconds(2);
  s.measure = seconds(12);
  s.seed = 31;
  s.workload.zipf_alpha = alpha;
  s.additional_delay = milliseconds(8);  // "Domino-8ms"
  s.timeseries_interval = milliseconds(500);  // per-window telemetry in the JSON

  const int reps = 2;
  const auto dom = bench::run_repeated(harness::Protocol::kDomino, s, reps);
  const auto men = bench::run_repeated(harness::Protocol::kMencius, s, reps);
  const auto epx = bench::run_repeated(harness::Protocol::kEPaxos, s, reps);
  const auto mp = bench::run_repeated(harness::Protocol::kMultiPaxos, s, reps);

  std::printf("\n--- %s ---\n", name);
  std::printf("%s\n", harness::summary_line("Domino-8ms", dom.exec_ms).c_str());
  std::printf("%s\n", harness::summary_line("Mencius", men.exec_ms).c_str());
  std::printf("%s\n", harness::summary_line("EPaxos", epx.exec_ms).c_str());
  std::printf("%s\n", harness::summary_line("Multi-Paxos", mp.exec_ms).c_str());
  std::printf("%s\n", note);
  std::printf("%s\n",
              harness::render_cdf_table({"Domino8", "Mencius", "EPaxos", "MultiPaxos"},
                                        {&dom.exec_ms, &men.exec_ms, &epx.exec_ms,
                                         &mp.exec_ms})
                  .c_str());
  std::string json_path = "fig10_report_alpha";
  json_path += alpha >= 0.95 ? "095" : "075";
  json_path += ".json";
  bench::emit_json_report(json_path, name, s, reps,
                          {{"Domino-8ms", &dom}, {"Mencius", &men}, {"EPaxos", &epx},
                           {"Multi-Paxos", &mp}});
}

}  // namespace

int main() {
  using namespace domino;
  bench::print_header("Execution latency on the Globe setting",
                      "paper Figure 10 (a, b), Section 7.2.3");
  run_alpha(0.75, "Figure 10(a): Zipf alpha = 0.75",
            "paper: EPaxos lowest early CDF; Domino lowest p95");
  run_alpha(0.95, "Figure 10(b): Zipf alpha = 0.95",
            "paper: EPaxos degrades sharply; Domino/Multi-Paxos unaffected");
  return 0;
}
