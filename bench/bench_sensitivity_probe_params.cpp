// Probing-parameter sensitivity (paper Section 7.1, unnumbered result):
// "We have measured Domino's commit latency with different probing
// intervals (from 5 ms to 100 ms) and window sizes (from 0.1 s to 2.5 s).
// We find that Domino's commit latency is not sensitive to these
// parameters... a 5 ms probing interval has a marginally lower 99th
// percentile commit latency than a 100 ms interval, but the median and
// 95th percentile for both probing intervals are nearly identical."
#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace domino;
  bench::print_header("Sensitivity to probing interval and window size",
                      "paper Section 7.1 (parameter robustness)");

  harness::Scenario base = bench::globe_scenario();
  base.rps = 200;
  base.warmup = seconds(2);
  base.measure = seconds(10);
  base.seed = 91;

  std::printf("Domino commit latency (ms) by probing interval (window fixed 1 s):\n");
  std::printf("  interval    p50     p95     p99\n");
  double p50_5 = 0, p50_100 = 0, p95_5 = 0, p95_100 = 0;
  for (int interval_ms : {5, 10, 25, 50, 100}) {
    harness::Scenario s = base;
    s.probe_interval = milliseconds(interval_ms);
    const auto r = bench::run_repeated(harness::Protocol::kDomino, s, 2);
    std::printf("  %4d ms  %6.1f  %6.1f  %6.1f\n", interval_ms, r.commit_ms.percentile(50),
                r.commit_ms.percentile(95), r.commit_ms.percentile(99));
    if (interval_ms == 5) {
      p50_5 = r.commit_ms.percentile(50);
      p95_5 = r.commit_ms.percentile(95);
    }
    if (interval_ms == 100) {
      p50_100 = r.commit_ms.percentile(50);
      p95_100 = r.commit_ms.percentile(95);
    }
  }

  std::printf("\nDomino commit latency (ms) by window size (interval fixed 10 ms):\n");
  std::printf("  window      p50     p95     p99\n");
  for (double window_s : {0.1, 0.5, 1.0, 2.5}) {
    harness::Scenario s = base;
    s.measurement_window = seconds_d(window_s);
    const auto r = bench::run_repeated(harness::Protocol::kDomino, s, 2);
    std::printf("  %4.1f s   %6.1f  %6.1f  %6.1f\n", window_s, r.commit_ms.percentile(50),
                r.commit_ms.percentile(95), r.commit_ms.percentile(99));
  }

  const bool insensitive =
      std::abs(p50_5 - p50_100) < 10.0 && std::abs(p95_5 - p95_100) < 15.0;
  std::printf("\nmedian and p95 nearly identical across 5-100 ms probing "
              "(paper's claim): %s\n",
              insensitive ? "yes" : "NO");
  return 0;
}
