// Writes the checked-in WAN delay-trace fixtures under bench/traces/.
//
//   wan_tracegen <out_dir>
//
// Two fixtures, both fully determined by hard-coded seeds:
//
//   globe_va.csv    stationary regime, directed links VA<->WA, VA<->PR,
//                   VA<->NSW of the Globe topology (Table 1 RTTs, mildly
//                   asymmetric split), 300 s at 25 ms — the paper's
//                   Figure 1/2 links in the regime where its stability
//                   claim holds. 25 ms sampling keeps a 1 s estimator
//                   window at ~40 samples, the paper's probing regime.
//   va_wa_drift.csv non-stationary regime, VA<->WA only: diurnal drift,
//                   congestion epochs, route-change steps, heavy-tail
//                   spikes, 120 s at 25 ms — the regime where the claim
//                   deliberately breaks (fig3 drift runs, calibration
//                   stress tests).
//
// Regenerate after changing the generator:  wan_tracegen bench/traces
#include <cstdio>

#include "net/topology.h"
#include "obs/json.h"
#include "wan/generator.h"

int main(int argc, char** argv) {
  using namespace domino;
  if (argc != 2) {
    std::fprintf(stderr, "usage: wan_tracegen <out_dir>\n");
    return 2;
  }
  const std::string out_dir = argv[1];
  const net::Topology topo = net::Topology::globe();

  // Stationary Globe fixture: per-direction base = forward/reverse share of
  // the Table 1 RTT (0.55/0.45 — real routes are rarely symmetric).
  wan::DelayTrace globe;
  const char* targets[] = {"WA", "PR", "NSW"};
  std::uint64_t seed = 401;
  for (const char* t : targets) {
    const Duration rtt = topo.rtt(topo.index_of("VA"), topo.index_of(t));
    for (const bool forward : {true, false}) {
      wan::GeneratorConfig cfg =
          wan::stationary_config(scale(rtt, forward ? 0.55 : 0.45), seed++);
      cfg.duration = seconds(300);
      cfg.sample_interval = milliseconds(25);
      wan::TraceGenerator(cfg).generate_into(globe, forward ? "VA" : t,
                                             forward ? t : "VA");
    }
  }
  const std::string globe_path = out_dir + "/globe_va.csv";
  if (!obs::write_file(globe_path, globe.to_csv())) {
    std::fprintf(stderr, "cannot write %s\n", globe_path.c_str());
    return 1;
  }
  std::printf("wrote %s (%zu links, %zu samples)\n", globe_path.c_str(),
              globe.link_count(), globe.total_samples());

  // Drifting VA<->WA fixture.
  wan::DelayTrace drift;
  const Duration va_wa = topo.rtt(topo.index_of("VA"), topo.index_of("WA"));
  for (const bool forward : {true, false}) {
    wan::GeneratorConfig cfg =
        wan::drifting_config(scale(va_wa, forward ? 0.55 : 0.45), seed++);
    cfg.duration = seconds(120);
    cfg.sample_interval = milliseconds(25);
    // Route flaps across the 120 s trace: +25% for 10 s out of every 20 s.
    cfg.route_steps.clear();
    for (std::int64_t s = 10; s + 10 <= 120; s += 20) {
      cfg.route_steps.emplace_back(seconds(s), scale(cfg.base, 1.25));
      cfg.route_steps.emplace_back(seconds(s + 10), cfg.base);
    }
    wan::TraceGenerator(cfg).generate_into(drift, forward ? "VA" : "WA",
                                           forward ? "WA" : "VA");
  }
  const std::string drift_path = out_dir + "/va_wa_drift.csv";
  if (!obs::write_file(drift_path, drift.to_csv())) {
    std::fprintf(stderr, "cannot write %s\n", drift_path.c_str());
    return 1;
  }
  std::printf("wrote %s (%zu links, %zu samples)\n", drift_path.c_str(),
              drift.link_count(), drift.total_samples());
  return 0;
}
