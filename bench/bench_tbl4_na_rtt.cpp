// Table 4: network roundtrip delays (ms) between the 9 North America
// datacenters, verified by probing the simulated WAN.
#include <cstdio>

#include "bench_util.h"
#include "net/topology.h"

int main() {
  using namespace domino;
  bench::print_header("Inter-datacenter RTT matrix — North America",
                      "paper Table 4, Section 7.2");
  const net::Topology topo = net::Topology::north_america();
  std::printf("Configured RTTs (ms), upper triangle as printed in the paper:\n\n      ");
  for (std::size_t j = 1; j < topo.size(); ++j) std::printf("%6s", topo.name(j).c_str());
  std::printf("\n");
  for (std::size_t i = 0; i + 1 < topo.size(); ++i) {
    std::printf("%-5s ", topo.name(i).c_str());
    for (std::size_t j = 1; j < topo.size(); ++j) {
      if (j <= i) {
        std::printf("%6s", "-");
      } else {
        std::printf("%6.0f", topo.rtt(i, j).millis());
      }
    }
    std::printf("\n");
  }
  std::printf("\nPaper Table 4 row VA: 27 59 31 67 46 26 38 29 — matches the first row.\n");
  return 0;
}
