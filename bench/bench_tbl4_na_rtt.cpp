// Table 4: network roundtrip delays (ms) between the 9 North America
// datacenters, verified by probing the simulated WAN.
//
// The second half generates stationary WAN delay traces in memory (one per
// directed VA link, wan::TraceGenerator), replays them over the NA
// topology, and probes the VA row: the measured medians must track the
// generated traces rather than the configured matrix — the same
// trace-ingestion path the harness uses, with no fixture files involved.
#include <cstdio>

#include "bench_util.h"
#include "measure/prober.h"
#include "net/topology.h"
#include "wan/empirical.h"
#include "wan/generator.h"

namespace {

using namespace domino;

class ProbeClient : public rpc::Node {
 public:
  ProbeClient(NodeId id, std::size_t dc, net::Network& network, std::vector<NodeId> targets)
      : rpc::Node(id, dc, network), prober(*this, std::move(targets), {}) {}
  measure::Prober prober;

 protected:
  void on_packet(const net::Packet& packet) override {
    switch (wire::peek_type(packet.payload)) {
      case wire::MessageType::kProbe: {
        const auto probe = wire::decode_message<measure::Probe>(packet.payload);
        send(packet.src, measure::Prober::make_reply(probe, local_now(), Duration::zero()));
        break;
      }
      case wire::MessageType::kProbeReply:
        prober.on_probe_reply(packet.src,
                              wire::decode_message<measure::ProbeReply>(packet.payload));
        break;
      default:
        break;
    }
  }
};

}  // namespace

int main() {
  using namespace domino;
  bench::print_header("Inter-datacenter RTT matrix — North America",
                      "paper Table 4, Section 7.2");
  const net::Topology topo = net::Topology::north_america();
  std::printf("Configured RTTs (ms), upper triangle as printed in the paper:\n\n      ");
  for (std::size_t j = 1; j < topo.size(); ++j) std::printf("%6s", topo.name(j).c_str());
  std::printf("\n");
  for (std::size_t i = 0; i + 1 < topo.size(); ++i) {
    std::printf("%-5s ", topo.name(i).c_str());
    for (std::size_t j = 1; j < topo.size(); ++j) {
      if (j <= i) {
        std::printf("%6s", "-");
      } else {
        std::printf("%6.0f", topo.rtt(i, j).millis());
      }
    }
    std::printf("\n");
  }
  std::printf("\nPaper Table 4 row VA: 27 59 31 67 46 26 38 29 — matches the first row.\n");

  // Probe the VA row over generated in-memory traces: each VA link replays
  // a stationary trace whose base is the Table 4 RTT split 0.55/0.45 over
  // the two directions, so the probed median should recover ~the RTT.
  wan::DelayTrace generated;
  const std::size_t va = topo.index_of("VA");
  std::uint64_t seed = 9000;
  for (std::size_t j = 0; j < topo.size(); ++j) {
    if (j == va) continue;
    const Duration rtt = topo.rtt(va, j);
    for (const bool forward : {true, false}) {
      wan::GeneratorConfig cfg =
          wan::stationary_config(scale(rtt, forward ? 0.55 : 0.45), seed++);
      cfg.duration = seconds(6);
      cfg.sample_interval = milliseconds(20);
      wan::TraceGenerator(cfg).generate_into(generated, forward ? "VA" : topo.name(j),
                                             forward ? topo.name(j) : "VA");
    }
  }

  sim::Simulator simulator;
  net::Network network(simulator, topo, 42);
  net::JitterParams jitter;
  network.use_default_links(jitter);
  const std::size_t replayed = wan::apply_trace(generated, network, {});

  std::vector<NodeId> ids;
  for (std::size_t i = 0; i < topo.size(); ++i) ids.push_back(NodeId{(std::uint32_t)i});
  std::vector<std::unique_ptr<ProbeClient>> nodes;
  for (std::size_t i = 0; i < topo.size(); ++i) {
    nodes.push_back(std::make_unique<ProbeClient>(ids[i], i, network, ids));
    nodes.back()->attach();
  }
  for (auto& n : nodes) n->prober.start();
  simulator.run_until(TimePoint::epoch() + seconds(5));

  std::printf("\nVA row probed over generated in-memory traces "
              "(%zu directed links replayed):\n\n  pair      probed p50   configured\n",
              replayed);
  bool ok = true;
  for (std::size_t j = 0; j < topo.size(); ++j) {
    if (j == va) continue;
    const double probed = nodes[va]->prober.rtt_estimate(ids[j], 50.0).millis();
    const double configured = topo.rtt(va, j).millis();
    const bool close = probed > configured * 0.95 && probed < configured * 1.15;
    ok = ok && close;
    std::printf("  VA<->%-4s %10.1f %12.0f\n", topo.name(j).c_str(), probed, configured);
  }
  std::printf("\nprobed medians recover the generated traces' bases: %s\n",
              ok ? "yes" : "NO");
  return 0;
}
