// Figure 3: correct-prediction rate of request arrival times as a function
// of the percentile used from the measurement window, for window sizes
// 100 ms - 1000 ms (VA -> WA trace). The paper's takeaway: "using the 95th
// percentile latency with a small window size of one second is sufficient
// to achieve a high prediction rate" (~94-95%).
#include <cstdio>

#include "bench_util.h"
#include "harness/trace.h"

int main() {
  using namespace domino;
  bench::print_header("Arrival-time correct-prediction rate",
                      "paper Figure 3, Section 3");

  harness::LinkTraceConfig cfg;
  cfg.rtt = milliseconds(67);
  cfg.duration = seconds(120);
  cfg.probe_interval = milliseconds(10);
  cfg.spike_prob = 0.0005;
  cfg.seed = 99;
  const auto trace = harness::generate_trace(cfg);

  const Duration windows[] = {milliseconds(100), milliseconds(200), milliseconds(400),
                              milliseconds(600), milliseconds(800), milliseconds(1000)};
  std::printf("correct prediction rate (%%) by percentile (rows) and window (cols)\n\n");
  std::printf("  pct ");
  for (const Duration w : windows) std::printf("  %5.0fms", w.millis());
  std::printf("\n");
  double p95_w1000 = 0;
  for (int pct = 0; pct <= 100; pct += 10) {
    const int eff = pct == 0 ? 1 : pct;  // percentile 0 is degenerate
    std::printf("  %3d ", pct);
    for (const Duration w : windows) {
      const auto outcome = harness::evaluate_predictions(
          trace, harness::OwdEstimator::kReplicaTimestamp, w, eff);
      std::printf("  %6.1f", outcome.correct_rate * 100);
      if (pct == 90 && w == milliseconds(1000)) p95_w1000 = outcome.correct_rate;
    }
    std::printf("\n");
  }
  const auto p95 = harness::evaluate_predictions(
      trace, harness::OwdEstimator::kReplicaTimestamp, milliseconds(1000), 95.0);
  std::printf("\n  p95 / 1 s window: %.2f%% correct "
              "(paper: 93.9-94.9%% across region pairs) -> high-rate regime: %s\n",
              p95.correct_rate * 100, p95.correct_rate > 0.90 ? "yes" : "NO");
  (void)p95_w1000;

  // Live in-protocol counterpart of the offline trace sweep above: on a
  // full Globe deployment, every prober's calibration coverage is the same
  // "correct prediction rate", measured against real probe arrivals, and
  // the decision audit shows what the residual mispredictions cost.
  harness::Scenario s = bench::globe_scenario();
  s.rps = 200;
  s.warmup = seconds(2);
  s.measure = seconds(8);
  s.seed = 99;
  s.measurement_percentile = 95.0;
  bench::print_prediction_audit(harness::Protocol::kDomino, s,
                                "Globe / p95 estimates");
  return 0;
}
