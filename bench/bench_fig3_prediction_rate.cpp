// Figure 3: correct-prediction rate of request arrival times as a function
// of the percentile used from the measurement window, for window sizes
// 100 ms - 1000 ms (VA -> WA trace). The paper's takeaway: "using the 95th
// percentile latency with a small window size of one second is sufficient
// to achieve a high prediction rate" (~94-95%).
//
// The sweep replays the checked-in WAN fixtures (bench/traces/): the
// stationary globe_va.csv reproduces the paper's high-rate regime, and the
// drifting va_wa_drift.csv (diurnal drift, congestion epochs, route flaps)
// shows the same predictor losing accuracy once the stationarity assumption
// breaks. The live Globe runs at the end score every prober's calibration
// coverage in-protocol over the same two traces.
#include <cstdio>

#include "bench_util.h"
#include "harness/trace.h"
#include "wan/delay_trace.h"

namespace {

using namespace domino;

// Percentile x window correct-prediction-rate sweep over one probe trace.
// Returns the p95 / 1 s cell.
double print_sweep(const std::vector<harness::ProbeSample>& trace) {
  const Duration windows[] = {milliseconds(100), milliseconds(200), milliseconds(400),
                              milliseconds(600), milliseconds(800), milliseconds(1000)};
  std::printf("  pct ");
  for (const Duration w : windows) std::printf("  %5.0fms", w.millis());
  std::printf("\n");
  for (int pct = 0; pct <= 100; pct += 10) {
    const int eff = pct == 0 ? 1 : pct;  // percentile 0 is degenerate
    std::printf("  %3d ", pct);
    for (const Duration w : windows) {
      const auto outcome = harness::evaluate_predictions(
          trace, harness::OwdEstimator::kReplicaTimestamp, w, eff);
      std::printf("  %6.1f", outcome.correct_rate * 100);
    }
    std::printf("\n");
  }
  const auto p95 = harness::evaluate_predictions(
      trace, harness::OwdEstimator::kReplicaTimestamp, milliseconds(1000), 95.0);
  return p95.correct_rate;
}

}  // namespace

int main() {
  using namespace domino;
  bench::print_header("Arrival-time correct-prediction rate",
                      "paper Figure 3, Section 3");

  const std::string trace_dir = DOMINO_TRACE_DIR;
  const auto stationary = std::make_shared<wan::DelayTrace>(
      wan::DelayTrace::load(trace_dir + "/globe_va.csv"));
  const auto drifting = std::make_shared<wan::DelayTrace>(
      wan::DelayTrace::load(trace_dir + "/va_wa_drift.csv"));

  std::printf("correct prediction rate (%%) by percentile (rows) and window (cols)\n");

  std::printf("\nstationary fixture (globe_va.csv, VA -> WA):\n");
  const double stable_rate = print_sweep(harness::probe_samples_from_wan(
      *stationary->samples("VA", "WA"), *stationary->samples("WA", "VA")));
  std::printf("\n  p95 / 1 s window: %.2f%% correct "
              "(paper: 93.9-94.9%% across region pairs) -> high-rate regime: %s\n",
              stable_rate * 100, stable_rate > 0.90 ? "yes" : "NO");

  std::printf("\ndrifting fixture (va_wa_drift.csv, VA -> WA; route flaps,\n"
              "congestion epochs, diurnal drift):\n");
  const double drift_rate = print_sweep(harness::probe_samples_from_wan(
      *drifting->samples("VA", "WA"), *drifting->samples("WA", "VA")));
  std::printf("\n  p95 / 1 s window: %.2f%% correct -> non-stationarity costs "
              "%.1f points of prediction rate: %s\n",
              drift_rate * 100, (stable_rate - drift_rate) * 100,
              drift_rate < stable_rate ? "yes" : "NO");

  // Live in-protocol counterpart of the offline trace sweeps above: on a
  // full Globe deployment whose VA links replay each fixture, every prober's
  // calibration coverage is the same "correct prediction rate", measured
  // against real probe arrivals, and the decision audit shows what the
  // residual mispredictions cost.
  harness::Scenario s = bench::globe_scenario();
  s.rps = 200;
  s.warmup = seconds(2);
  s.measure = seconds(8);
  s.seed = 99;
  s.measurement_percentile = 95.0;
  s.wan_trace = stationary;
  bench::print_prediction_audit(harness::Protocol::kDomino, s,
                                "Globe / p95 estimates / stationary trace");
  s.wan_trace = drifting;
  bench::print_prediction_audit(harness::Protocol::kDomino, s,
                                "Globe / p95 estimates / drifting trace");
  return 0;
}
