// Table 1: network roundtrip delays (ms) between the 6 Globe datacenters.
// Verifies that probing the simulated WAN reproduces the configured matrix
// (the paper's measured averages).
#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "common/stats.h"
#include "measure/prober.h"
#include "wan/delay_trace.h"
#include "wan/empirical.h"

namespace {

using namespace domino;

class ProbeClient : public rpc::Node {
 public:
  ProbeClient(NodeId id, std::size_t dc, net::Network& network, std::vector<NodeId> targets)
      : rpc::Node(id, dc, network), prober(*this, std::move(targets), {}) {}
  measure::Prober prober;

 protected:
  void on_packet(const net::Packet& packet) override {
    switch (wire::peek_type(packet.payload)) {
      case wire::MessageType::kProbe: {
        const auto probe = wire::decode_message<measure::Probe>(packet.payload);
        send(packet.src, measure::Prober::make_reply(probe, local_now(), Duration::zero()));
        break;
      }
      case wire::MessageType::kProbeReply:
        prober.on_probe_reply(packet.src,
                              wire::decode_message<measure::ProbeReply>(packet.payload));
        break;
      default:
        break;
    }
  }
};

void measure_matrix(const net::Topology& topo, const char* paper_ref) {
  sim::Simulator simulator;
  net::Network network(simulator, topo, 42);
  net::JitterParams jitter;
  network.use_default_links(jitter);

  std::vector<NodeId> ids;
  for (std::size_t i = 0; i < topo.size(); ++i) ids.push_back(NodeId{(std::uint32_t)i});
  std::vector<std::unique_ptr<ProbeClient>> nodes;
  for (std::size_t i = 0; i < topo.size(); ++i) {
    nodes.push_back(std::make_unique<ProbeClient>(ids[i], i, network, ids));
    nodes.back()->attach();
  }
  for (auto& n : nodes) n->prober.start();
  simulator.run_until(TimePoint::epoch() + seconds(5));

  std::printf("%s — median measured RTT (ms); configured value in ()\n\n      ", paper_ref);
  for (std::size_t j = 0; j < topo.size(); ++j) std::printf("%12s", topo.name(j).c_str());
  std::printf("\n");
  for (std::size_t i = 0; i < topo.size(); ++i) {
    std::printf("%-5s ", topo.name(i).c_str());
    for (std::size_t j = 0; j < topo.size(); ++j) {
      if (i == j) {
        std::printf("%12s", "-");
        continue;
      }
      const Duration measured = nodes[i]->prober.rtt_estimate(ids[j], 50.0);
      char cell[48];
      std::snprintf(cell, sizeof(cell), "%.0f (%.0f)", measured.millis(),
                    topo.rtt(i, j).millis());
      std::printf("%12s", cell);
    }
    std::printf("\n");
  }
  std::printf("\n");
}

// Re-probe the VA row with the VA links replaying the checked-in fixture
// trace: the probed medians must now track the trace's own medians (sum of
// the per-direction OWD medians), not the configured matrix.
void measure_va_row_traced(const net::Topology& topo, const wan::DelayTrace& trace) {
  sim::Simulator simulator;
  net::Network network(simulator, topo, 42);
  net::JitterParams jitter;
  network.use_default_links(jitter);
  const std::size_t replayed = wan::apply_trace(trace, network, {});

  std::vector<NodeId> ids;
  for (std::size_t i = 0; i < topo.size(); ++i) ids.push_back(NodeId{(std::uint32_t)i});
  std::vector<std::unique_ptr<ProbeClient>> nodes;
  for (std::size_t i = 0; i < topo.size(); ++i) {
    nodes.push_back(std::make_unique<ProbeClient>(ids[i], i, network, ids));
    nodes.back()->attach();
  }
  for (auto& n : nodes) n->prober.start();
  simulator.run_until(TimePoint::epoch() + seconds(5));

  std::printf("VA row, links replaying bench/traces/globe_va.csv (%zu directed links):\n\n",
              replayed);
  std::printf("  pair      probed p50   trace p50   configured\n");
  const std::size_t va = topo.index_of("VA");
  for (std::size_t j = 0; j < topo.size(); ++j) {
    const auto fwd = trace.samples("VA", topo.name(j));
    const auto rev = trace.samples(topo.name(j), "VA");
    if (fwd == nullptr || rev == nullptr) continue;
    StatAccumulator f, r;
    for (const auto& s : *fwd) f.add(s.owd.millis());
    for (const auto& s : *rev) r.add(s.owd.millis());
    const double trace_p50 = f.percentile(50) + r.percentile(50);
    const double probed = nodes[va]->prober.rtt_estimate(ids[j], 50.0).millis();
    std::printf("  VA<->%-4s %10.1f %11.1f %12.0f   tracks trace: %s\n",
                topo.name(j).c_str(), probed, trace_p50, topo.rtt(va, j).millis(),
                std::abs(probed - trace_p50) < trace_p50 * 0.05 ? "yes" : "NO");
  }
}

}  // namespace

int main() {
  using namespace domino;
  bench::print_header("Inter-datacenter RTT matrix — Globe",
                      "paper Table 1, Section 4");
  const net::Topology topo = net::Topology::globe();
  measure_matrix(topo, "Globe (6 DCs)");
  const wan::DelayTrace trace =
      wan::DelayTrace::load(std::string(DOMINO_TRACE_DIR) + "/globe_va.csv");
  measure_va_row_traced(topo, trace);
  return 0;
}
