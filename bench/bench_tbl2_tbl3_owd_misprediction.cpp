// Tables 2 and 3: 99th percentile misprediction value (ms) of request
// arrival times for every directed Globe datacenter pair, comparing the
// naive half-RTT estimator (Table 2) with Domino's replica-timestamp OWD
// technique (Table 3).
//
// The paper's testbed exhibits asymmetric routing (most dramatically into
// NSW, where half-RTT mispredicts by hundreds of ms to seconds) and NTP-
// level clock skew. We configure per-pair forward shares and clock offsets
// accordingly: moderate asymmetry everywhere, extreme asymmetry + skew on
// the NSW-bound paths.
#include <cstdio>

#include "bench_util.h"
#include "harness/trace.h"
#include "net/topology.h"
#include "wan/delay_trace.h"

int main() {
  using namespace domino;
  bench::print_header("OWD misprediction: half-RTT vs replica-timestamp",
                      "paper Tables 2 and 3, Section 5.4");

  const net::Topology topo = net::Topology::globe();
  const std::size_t n = topo.size();

  // Per-datacenter clock offsets: NTP quality (a few ms) everywhere except
  // NSW, whose clock runs far behind — the paper's Table 2 NSW row (half-RTT
  // mispredictions of 0.1 s - 2.3 s out of NSW, tens of ms into NSW) is the
  // signature of a large skew/route anomaly at that site that only the
  // replica-timestamp technique absorbs. Routes into NSW are also
  // forward-heavy (disjoint forward/reverse paths).
  const Duration clock_offset[] = {milliseconds(0),  milliseconds(2),   milliseconds(-2),
                                   milliseconds(-600), milliseconds(-1), milliseconds(1)};

  auto forward_share = [&](std::size_t from, std::size_t to) {
    if (topo.name(from) == "NSW") return 0.35;  // reverse-heavy out of NSW
    if (topo.name(to) == "NSW") return 0.75;    // forward-heavy into NSW
    return 0.58;                                // mild asymmetry elsewhere
  };

  std::vector<std::vector<double>> half(n, std::vector<double>(n, 0.0));
  std::vector<std::vector<double>> owd(n, std::vector<double>(n, 0.0));

  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      harness::LinkTraceConfig cfg;
      cfg.rtt = topo.rtt(i, j);
      cfg.forward_share = forward_share(i, j);
      cfg.remote_clock_offset = clock_offset[j] - clock_offset[i];
      cfg.duration = seconds(60);
      cfg.spike_prob = 0.0005;
      cfg.spike_mean = milliseconds(4);
      cfg.seed = 1000 + i * 17 + j;
      const auto trace = harness::generate_trace(cfg);
      half[i][j] = harness::evaluate_predictions(trace, harness::OwdEstimator::kHalfRtt,
                                                 seconds(1), 95.0)
                       .p99_misprediction_ms;
      owd[i][j] = harness::evaluate_predictions(
                      trace, harness::OwdEstimator::kReplicaTimestamp, seconds(1), 95.0)
                      .p99_misprediction_ms;
    }
  }

  auto print_matrix = [&](const char* title, const std::vector<std::vector<double>>& m) {
    std::printf("\n%s\nfrom\\to ", title);
    for (std::size_t j = 0; j < n; ++j) std::printf("%8s", topo.name(j).c_str());
    std::printf("\n");
    for (std::size_t i = 0; i < n; ++i) {
      std::printf("%-7s ", topo.name(i).c_str());
      for (std::size_t j = 0; j < n; ++j) {
        if (i == j) {
          std::printf("%8s", "-");
        } else {
          std::printf("%8.2f", m[i][j]);
        }
      }
      std::printf("\n");
    }
  };

  print_matrix("Table 2 equivalent — p99 misprediction (ms), half-RTT estimator:", half);
  print_matrix("Table 3 equivalent — p99 misprediction (ms), Domino's OWD technique:", owd);

  double max_half = 0, max_owd = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      max_half = std::max(max_half, half[i][j]);
      max_owd = std::max(max_owd, owd[i][j]);
    }
  }
  std::printf("\nmax p99 misprediction: half-RTT %.1f ms vs OWD %.1f ms\n", max_half, max_owd);
  std::printf("paper: half-RTT up to 2343.97 ms (NSW row), OWD technique <= 6.24 ms\n");
  std::printf("shape holds (OWD stays in single-digit ms, half-RTT off by orders of "
              "magnitude): %s\n",
              (max_owd < 10.0 && max_half > 50 * max_owd) ? "yes" : "NO");

  // Score both estimators on the checked-in WAN fixtures: on the stationary
  // trace the replica-timestamp technique holds its single-digit-ms p99
  // misprediction, while on the drifting trace (route flaps, congestion
  // epochs) even the better estimator's residual grows — non-stationarity,
  // not estimator choice, becomes the binding constraint.
  {
    const std::string trace_dir = DOMINO_TRACE_DIR;
    const wan::DelayTrace stationary = wan::DelayTrace::load(trace_dir + "/globe_va.csv");
    const wan::DelayTrace drifting = wan::DelayTrace::load(trace_dir + "/va_wa_drift.csv");
    std::printf("\nfixture traces, VA -> WA, p95 / 1 s window:\n");
    std::printf("  trace        estimator          p99 misprediction (ms)  correct rate\n");
    struct Row {
      const char* trace_name;
      const wan::DelayTrace* trace;
      const char* est_name;
      harness::OwdEstimator est;
    };
    const Row rows[] = {
        {"stationary", &stationary, "half-RTT", harness::OwdEstimator::kHalfRtt},
        {"stationary", &stationary, "replica-ts", harness::OwdEstimator::kReplicaTimestamp},
        {"drifting", &drifting, "half-RTT", harness::OwdEstimator::kHalfRtt},
        {"drifting", &drifting, "replica-ts", harness::OwdEstimator::kReplicaTimestamp},
    };
    double stationary_owd = 0, drifting_owd = 0;
    for (const Row& row : rows) {
      const auto probes = harness::probe_samples_from_wan(
          *row.trace->samples("VA", "WA"), *row.trace->samples("WA", "VA"));
      const auto outcome =
          harness::evaluate_predictions(probes, row.est, seconds(1), 95.0);
      std::printf("  %-12s %-18s %22.2f %12.1f%%\n", row.trace_name, row.est_name,
                  outcome.p99_misprediction_ms, outcome.correct_rate * 100);
      if (row.est == harness::OwdEstimator::kReplicaTimestamp) {
        (row.trace == &stationary ? stationary_owd : drifting_owd) =
            outcome.p99_misprediction_ms;
      }
    }
    std::printf("  drift inflates the replica-timestamp residual (%.2f -> %.2f ms): %s\n",
                stationary_owd, drifting_owd,
                drifting_owd > stationary_owd ? "yes" : "NO");
  }

  // In-protocol check of the same claim: on a live Globe deployment the
  // replica-timestamp estimator's calibration coverage stays near the
  // configured percentile on every directed pair, and the audit prices the
  // residual arrival overshoots in commit latency (oracle regret).
  harness::Scenario s = bench::globe_scenario();
  s.rps = 200;
  s.warmup = seconds(2);
  s.measure = seconds(8);
  s.seed = 77;
  s.measurement_percentile = 95.0;
  bench::print_prediction_audit(harness::Protocol::kDomino, s,
                                "Globe / replica-timestamp OWD");
  return 0;
}
