// Figure 2: distribution of measured delays from VA to WA over one minute,
// in one-second boxes overlapping by half a second (whiskers = p5/p95).
// Demonstrates: "the variance of the network roundtrip delays is small
// during a short period of time".
#include <cstdio>

#include "bench_util.h"
#include "common/stats.h"
#include "harness/trace.h"

int main() {
  using namespace domino;
  bench::print_header("Short-timescale delay stability, VA -> WA",
                      "paper Figure 2, Section 3");

  harness::LinkTraceConfig cfg;
  cfg.rtt = milliseconds(67);  // VA <-> WA
  cfg.duration = seconds(60);
  cfg.probe_interval = milliseconds(10);
  cfg.spike_prob = 0.0005;
  cfg.seed = 77;
  const auto trace = harness::generate_trace(cfg);

  std::printf("1 s boxes, 0.5 s overlap; values in ms (whiskers p5/p95).\n");
  std::printf("Paper: boxes span roughly 64.8-65.8 ms one-way on a 65 ms-ish link;\n");
  std::printf("here the equivalent RTT boxes sit just above the 67 ms floor.\n\n");
  std::printf("  window        p5     p25     p50     p75     p95\n");
  for (int half = 0; half < 119; ++half) {
    const TimePoint lo = TimePoint::epoch() + milliseconds(500) * half;
    const TimePoint hi = lo + seconds(1);
    StatAccumulator box;
    for (const auto& s : trace) {
      if (s.sent_at >= lo && s.sent_at < hi) box.add(s.rtt.millis());
    }
    if (box.empty()) continue;
    if (half % 10 != 0) continue;  // print every 5 s to keep output readable
    const auto b = box.box_summary();
    std::printf("  [%4.1fs,%4.1fs) %6.2f %7.2f %7.2f %7.2f %7.2f\n", lo.seconds(),
                hi.seconds(), b.p5, b.p25, b.p50, b.p75, b.p95);
  }

  StatAccumulator all;
  for (const auto& s : trace) all.add(s.rtt.millis());
  std::printf("\n  overall p5-p95 spread: %.2f ms (floor %.0f ms) -> "
              "short-window variance is small: %s\n",
              all.percentile(95) - all.percentile(5), 67.0,
              (all.percentile(95) - all.percentile(5)) < 3.0 ? "yes" : "NO");
  return 0;
}
