// Figure 2: distribution of measured delays from VA to WA over one minute,
// in one-second boxes overlapping by half a second (whiskers = p5/p95).
// Demonstrates: "the variance of the network roundtrip delays is small
// during a short period of time".
//
// The boxes replay the checked-in stationary fixture trace
// (bench/traces/globe_va.csv); a second pass over the drifting fixture
// (bench/traces/va_wa_drift.csv) shows the same statistic in the regime
// where the paper's stability claim is deliberately broken. A short
// trace-driven Globe run closes the bench with a schema-v2 JSON report.
#include <cstdio>

#include "bench_util.h"
#include "common/stats.h"
#include "wan/delay_trace.h"

namespace {

using namespace domino;

// Print the fig2 overlapping-box summary of the VA<->WA RTT replayed from
// `trace` over [0, duration), boxes of 1 s overlapping by 0.5 s. Returns the
// overall p5-p95 spread in ms.
double print_boxes(const wan::DelayTrace& trace, Duration duration) {
  const auto fwd = trace.samples("VA", "WA");
  const auto rev = trace.samples("WA", "VA");
  if (fwd == nullptr || rev == nullptr || fwd->size() != rev->size()) {
    std::printf("  fixture is missing the VA<->WA pair\n");
    return -1.0;
  }
  std::printf("  window        p5     p25     p50     p75     p95\n");
  const int halves = static_cast<int>(duration.millis() / 500.0) - 1;
  StatAccumulator all;
  for (int half = 0; half < halves; ++half) {
    const TimePoint lo = TimePoint::epoch() + milliseconds(500) * half;
    const TimePoint hi = lo + seconds(1);
    StatAccumulator box;
    for (std::size_t i = 0; i < fwd->size(); ++i) {
      const TimePoint at = (*fwd)[i].at;
      if (at < lo || at >= hi) continue;
      box.add(((*fwd)[i].owd + (*rev)[i].owd).millis());
    }
    if (box.empty()) continue;
    if (half % 10 == 0) {  // print every 5 s to keep output readable
      const auto b = box.box_summary();
      std::printf("  [%4.1fs,%4.1fs) %6.2f %7.2f %7.2f %7.2f %7.2f\n", lo.seconds(),
                  hi.seconds(), b.p5, b.p25, b.p50, b.p75, b.p95);
    }
  }
  for (std::size_t i = 0; i < fwd->size(); ++i) {
    if ((*fwd)[i].at - TimePoint::epoch() >= duration) break;
    all.add(((*fwd)[i].owd + (*rev)[i].owd).millis());
  }
  return all.percentile(95) - all.percentile(5);
}

}  // namespace

int main() {
  using namespace domino;
  bench::print_header("Short-timescale delay stability, VA -> WA",
                      "paper Figure 2, Section 3");

  const std::string trace_dir = DOMINO_TRACE_DIR;
  const auto stationary = std::make_shared<wan::DelayTrace>(
      wan::DelayTrace::load(trace_dir + "/globe_va.csv"));
  const wan::DelayTrace drifting = wan::DelayTrace::load(trace_dir + "/va_wa_drift.csv");

  std::printf("1 s boxes, 0.5 s overlap; values in ms (whiskers p5/p95).\n");
  std::printf("Paper: boxes span roughly 64.8-65.8 ms one-way on a 65 ms-ish link;\n");
  std::printf("here the equivalent RTT boxes sit just above the 67 ms floor.\n");

  std::printf("\nstationary fixture (globe_va.csv), first minute:\n");
  const double stable_spread = print_boxes(*stationary, seconds(60));
  std::printf("\n  overall p5-p95 spread: %.2f ms (floor %.0f ms) -> "
              "short-window variance is small: %s\n",
              stable_spread, 67.0, stable_spread >= 0 && stable_spread < 3.0 ? "yes" : "NO");

  std::printf("\ndrifting fixture (va_wa_drift.csv), first minute "
              "(route flaps + congestion epochs):\n");
  const double drift_spread = print_boxes(drifting, seconds(60));
  std::printf("\n  overall p5-p95 spread: %.2f ms -> the stability claim breaks "
              "under drift: %s\n",
              drift_spread, drift_spread > stable_spread * 2.0 ? "yes" : "NO");

  // Trace-driven commit-latency run over the stationary fixture.
  harness::Scenario s = bench::globe_scenario();
  s.rps = 100;
  s.warmup = seconds(1);
  s.measure = seconds(4);
  s.cooldown = milliseconds(500);
  s.seed = 13;
  s.wan_trace = stationary;
  const int reps = 1;
  const auto dom = bench::run_repeated(harness::Protocol::kDomino, s, reps);
  const auto fp = bench::run_repeated(harness::Protocol::kFastPaxos, s, reps);
  std::printf("\ntrace-replay Globe run (VA links empirical):\n");
  std::printf("%s\n", harness::summary_line("Domino", dom.commit_ms).c_str());
  std::printf("%s\n", harness::summary_line("Fast Paxos", fp.commit_ms).c_str());
  bench::emit_json_report("fig2_report.json", "Figure 2 trace replay", s, reps,
                          {{"Domino", &dom}, {"Fast-Paxos", &fp}});
  return 0;
}
