// Ablations of the design choices DESIGN.md calls out (not a paper figure;
// quantifies the paper's optional mechanisms on the Globe setting):
//
//   A. Section 5.7 every-replica-learner mode: execution latency vs
//      acceptance-message overhead.
//   B. Section 5.4 adaptive feedback control: commit latency under a
//      systematic arrival-time under-prediction.
//   C. Section 5.3.3 pre-sharded timestamps: collision (slow-path) rate
//      with many clients in one datacenter.
//   D. Section 5.6 measurement proxy: probe traffic vs client count.
#include <cstdio>

#include "bench_util.h"
#include "core/replica.h"
#include "measure/proxy.h"

namespace {

using namespace domino;

void ablation_all_learners() {
  std::printf("\n--- A. Every-replica learners (Section 5.7) ---\n");
  harness::Scenario s = bench::globe_scenario();
  s.rps = 200;
  s.warmup = seconds(2);
  s.measure = seconds(10);
  s.seed = 61;
  s.additional_delay = milliseconds(8);

  s.domino_all_learners = true;
  const auto on = harness::run_domino(s);
  s.domino_all_learners = false;
  const auto off = harness::run_domino(s);

  std::printf("  exec latency p50/p95 (ms):   learners ON %6.0f /%6.0f   OFF %6.0f /%6.0f\n",
              on.exec_ms.percentile(50), on.exec_ms.percentile(95),
              off.exec_ms.percentile(50), off.exec_ms.percentile(95));
  std::printf("  commit latency p50 (ms):     learners ON %6.0f          OFF %6.0f\n",
              on.commit_ms.percentile(50), off.commit_ms.percentile(50));
  std::printf("  packets per committed req:   learners ON %6.1f          OFF %6.1f\n",
              (double)on.packets_sent / (double)on.committed,
              (double)off.packets_sent / (double)off.committed);
  std::printf("  -> the optimization buys ~a WAN hop of execution latency for extra "
              "acceptance traffic; commit latency is unchanged\n");
}

void ablation_adaptive() {
  std::printf("\n--- B. Adaptive timestamp control (Section 5.4 future work) ---\n");
  harness::Scenario s = bench::globe_scenario();
  s.rps = 200;
  s.warmup = seconds(2);
  s.measure = seconds(10);
  s.seed = 62;
  // Bias predictions 3 ms early: without feedback most DFP requests arrive
  // late and take the slow path.
  s.additional_delay = milliseconds(-3);
  s.domino_mode = core::ClientConfig::Mode::kDfpOnly;

  s.domino_adaptive = false;
  const auto fixed = harness::run_domino(s);
  s.domino_adaptive = true;
  const auto adaptive = harness::run_domino(s);

  std::printf("  commit p50/p99 (ms):  fixed -3ms %6.0f /%6.0f   adaptive %6.0f /%6.0f\n",
              fixed.commit_ms.percentile(50), fixed.commit_ms.percentile(99),
              adaptive.commit_ms.percentile(50), adaptive.commit_ms.percentile(99));
  std::printf("  fast-path commits:    fixed %llu / %llu     adaptive %llu / %llu\n",
              (unsigned long long)fixed.fast_path, (unsigned long long)fixed.committed,
              (unsigned long long)adaptive.fast_path,
              (unsigned long long)adaptive.committed);
  std::printf("  -> the controller recovers the fast path that a mis-tuned fixed "
              "delay loses\n");
}

void ablation_presharding() {
  std::printf("\n--- C. Pre-sharded timestamps (Section 5.3.3) ---\n");
  // Collisions need two clients to pick the *same nanosecond*: with
  // independent submission times that is astronomically rare (which is the
  // paper's point), so this ablation constructs the worst case directly —
  // co-located clients with identical delay estimates submitting at the
  // same instant on jitter-free links.
  auto run = [](std::uint32_t shard_space, std::uint64_t& slow, std::uint64_t& fast,
                std::uint64_t& noops) {
    sim::Simulator simulator;
    net::Topology topo{{"A", "B", "C", "E"},
                       {{0, 20, 40, 30}, {20, 0, 30, 30}, {40, 30, 0, 30},
                        {30, 30, 30, 0}}};
    net::Network network(simulator, topo, 64);
    std::vector<NodeId> rids{NodeId{0}, NodeId{1}, NodeId{2}};
    std::vector<std::unique_ptr<core::Replica>> replicas;
    for (std::size_t i = 0; i < 3; ++i) {
      replicas.push_back(
          std::make_unique<core::Replica>(rids[i], i, network, rids, rids[0]));
      replicas.back()->attach();
      replicas.back()->start();
    }
    core::ClientConfig cc;
    cc.mode = core::ClientConfig::Mode::kDfpOnly;
    cc.additional_delay = milliseconds(1);
    cc.timestamp_shard_space = shard_space;
    std::vector<std::unique_ptr<core::Client>> clients;
    for (std::uint32_t c = 0; c < 8; ++c) {
      clients.push_back(
          std::make_unique<core::Client>(NodeId{3000 + c}, 3, network, rids, cc));
      clients.back()->attach();
      clients.back()->start();
    }
    simulator.run_until(TimePoint::epoch() + seconds(1));
    for (std::uint64_t s = 0; s < 50; ++s) {
      simulator.schedule_after(milliseconds((std::int64_t)s * 10), [&clients, s] {
        for (auto& c : clients) {  // all 8 submit at the same instant
          sm::Command cmd;
          cmd.id = RequestId{c->id(), s};
          cmd.key = "k";
          cmd.value = "v";
          c->submit(cmd);
        }
      });
    }
    simulator.run_until(TimePoint::epoch() + seconds(5));
    slow = fast = 0;
    for (auto& c : clients) {
      fast += c->dfp_fast_learns();
      slow += c->dfp_slow_replies();
    }
    noops = replicas[0]->dfp_noop_resolutions();
  };

  std::uint64_t slow_u = 0, fast_u = 0, noop_u = 0, slow_s = 0, fast_s = 0, noop_s = 0;
  run(0, slow_u, fast_u, noop_u);
  run(1000, slow_s, fast_s, noop_s);
  std::printf("  8 co-located clients, 50 synchronized submissions each (400 requests):\n");
  std::printf("  unsharded: fast %llu, slow/rerouted %llu, collisions resolved no-op %llu\n",
              (unsigned long long)fast_u, (unsigned long long)slow_u,
              (unsigned long long)noop_u);
  std::printf("  sharded  : fast %llu, slow/rerouted %llu, collisions resolved no-op %llu\n",
              (unsigned long long)fast_s, (unsigned long long)slow_s,
              (unsigned long long)noop_s);
  std::printf("  -> sharding removes client-collision slow paths entirely: %s\n",
              (slow_s == 0 && slow_u > 0) ? "yes" : "NO");
}

void ablation_proxy() {
  std::printf("\n--- D. Measurement proxy (Section 5.6) ---\n");
  // Count probe traffic for N clients in one DC, direct vs via proxy, over
  // one simulated second (3 replicas, 10 ms probing).
  for (int clients : {1, 8, 32}) {
    // Direct: every client probes every replica.
    const double direct = clients * 3 * 100.0;
    // Proxy: the proxy probes the replicas; clients poll the proxy with
    // single query messages.
    const double proxied = 3 * 100.0 + clients * 100.0;
    std::printf("  %2d clients: probe+query msgs/s  direct %6.0f   proxy %6.0f\n", clients,
                direct, proxied);
  }
  std::printf("  (measured end-to-end in tests/measure/test_proxy.cpp: a proxy sends\n"
              "   (2f+1)R probes/s regardless of client count, as Section 5.6 states)\n");
}

}  // namespace

int main() {
  domino::bench::print_header("Design ablations",
                              "paper Sections 5.3.3, 5.4, 5.6, 5.7 (optional mechanisms)");
  ablation_all_learners();
  ablation_adaptive();
  ablation_presharding();
  ablation_proxy();
  return 0;
}
