// Figure 12: microbenchmark with emulated network-delay changes (the
// paper's private-cluster runs with Linux traffic control). Three replicas
// R, M, N and one client C; every link starts at 30 ms RTT.
//
//   (a) the client<->R delay rises 30 -> 50 ms (t=15 s) -> 70 ms (t=30 s).
//       Mencius (coordinator fixed at R) follows the full increase; the
//       Domino client first keeps DFP (50 < 60) and then switches to DM via
//       another leader (60 < 70).
//   (b) the client<->N delay is 70 ms from the start (DM preferred, same
//       latency as Mencius). At t=15 s the R<->M and R<->N delays rise to
//       60 ms: Mencius (via R) jumps to ~90 ms while Domino switches its DM
//       leader. At t=30 s the M<->N delay also rises to 60 ms: every DM
//       path costs ~90 ms and Domino switches to DFP (~70 ms).
#include <cstdio>

#include "common/stats.h"
#include "core/client.h"
#include "core/replica.h"
#include "harness/runner.h"
#include "mencius/client.h"
#include "mencius/replica.h"
#include "statemachine/workload.h"

namespace {

using namespace domino;

// Datacenters: 0=R, 1=M, 2=N, 3=C(lient).
net::Topology mesh30() {
  return net::Topology{{"R", "M", "N", "C"},
                       {{0, 30, 30, 30}, {30, 0, 30, 30}, {30, 30, 0, 30},
                        {30, 30, 30, 0}}};
}

void set_scheduled(net::Network& network, std::size_t a, std::size_t b,
                   std::vector<std::pair<double, double>> steps_s_rtt) {
  std::vector<net::RttStep> steps;
  for (auto [at_s, rtt_ms] : steps_s_rtt) {
    steps.push_back({seconds_d(at_s), milliseconds_d(rtt_ms)});
  }
  net::JitterParams quiet;
  quiet.spike_prob = 0;
  quiet.jitter_mu_ms = -3.0;
  network.set_scheduled_rtt_link(a, b, steps, quiet);
}

struct Timeline {
  TimeSeries domino{seconds(1)};
  TimeSeries mencius{seconds(1)};
};

Timeline run_case(bool case_b) {
  Timeline timeline;

  // ---------------- Domino ----------------
  {
    sim::Simulator simulator;
    net::Network network(simulator, mesh30(), 3);
    net::JitterParams quiet;
    quiet.spike_prob = 0;
    quiet.jitter_mu_ms = -3.0;
    network.use_default_links(quiet);
    if (!case_b) {
      set_scheduled(network, 3, 0, {{0, 30}, {15, 50}, {30, 70}});
    } else {
      set_scheduled(network, 3, 2, {{0, 70}});
      set_scheduled(network, 0, 1, {{0, 30}, {15, 60}});
      set_scheduled(network, 0, 2, {{0, 30}, {15, 60}});
      set_scheduled(network, 1, 2, {{0, 30}, {30, 60}});
    }
    std::vector<NodeId> rids{NodeId{0}, NodeId{1}, NodeId{2}};
    std::vector<std::unique_ptr<core::Replica>> reps;
    for (std::size_t i = 0; i < 3; ++i) {
      reps.push_back(std::make_unique<core::Replica>(rids[i], i, network, rids, rids[0]));
      reps.back()->attach();
      reps.back()->start();
    }
    core::ClientConfig cc;
    cc.additional_delay = milliseconds(1);
    auto client = std::make_unique<core::Client>(NodeId{1000}, 3, network, rids, cc);
    client->attach();
    client->start();
    client->set_commit_hook([&](const RequestId&, TimePoint sent, TimePoint committed) {
      timeline.domino.add(sent, (committed - sent).millis());
    });
    sm::WorkloadConfig wc;
    sm::WorkloadGenerator gen(wc, 1);
    simulator.schedule_at(TimePoint::epoch() + seconds(1),
                          [&] { client->start_load(gen, 10.0); });
    simulator.run_until(TimePoint::epoch() + seconds(46));
  }

  // ---------------- Mencius ----------------
  {
    sim::Simulator simulator;
    net::Network network(simulator, mesh30(), 3);
    net::JitterParams quiet;
    quiet.spike_prob = 0;
    quiet.jitter_mu_ms = -3.0;
    network.use_default_links(quiet);
    if (!case_b) {
      set_scheduled(network, 3, 0, {{0, 30}, {15, 50}, {30, 70}});
    } else {
      set_scheduled(network, 3, 2, {{0, 70}});
      set_scheduled(network, 0, 1, {{0, 30}, {15, 60}});
      set_scheduled(network, 0, 2, {{0, 30}, {15, 60}});
      set_scheduled(network, 1, 2, {{0, 30}, {30, 60}});
    }
    std::vector<NodeId> rids{NodeId{0}, NodeId{1}, NodeId{2}};
    std::vector<std::unique_ptr<mencius::Replica>> reps;
    for (std::size_t i = 0; i < 3; ++i) {
      reps.push_back(std::make_unique<mencius::Replica>(rids[i], i, network, rids));
      reps.back()->attach();
      reps.back()->start();
    }
    // The paper pre-assigns R as the client's Mencius coordinator.
    auto client = std::make_unique<mencius::Client>(NodeId{1000}, 3, network, rids[0]);
    client->attach();
    client->set_commit_hook([&](const RequestId&, TimePoint sent, TimePoint committed) {
      timeline.mencius.add(sent, (committed - sent).millis());
    });
    sm::WorkloadConfig wc;
    sm::WorkloadGenerator gen(wc, 1);
    simulator.schedule_at(TimePoint::epoch() + seconds(1),
                          [&] { client->start_load(gen, 10.0); });
    simulator.run_until(TimePoint::epoch() + seconds(46));
  }

  return timeline;
}

void print_timeline(const char* title, const Timeline& t, const char* note) {
  std::printf("\n--- %s ---\n%s\n", title, note);
  std::printf("  t(s)   Domino(ms)  Mencius(ms)\n");
  const std::size_t buckets = std::max(t.domino.bucket_count(), t.mencius.bucket_count());
  for (std::size_t s = 1; s < buckets; s += 2) {
    const double dom = s < t.domino.bucket_count() && !t.domino.bucket(s).empty()
                           ? t.domino.bucket(s).percentile(50)
                           : -1;
    const double men = s < t.mencius.bucket_count() && !t.mencius.bucket(s).empty()
                           ? t.mencius.bucket(s).percentile(50)
                           : -1;
    std::printf("  %4zu   %10.0f  %10.0f\n", s, dom, men);
  }
}

}  // namespace

int main() {
  using namespace domino;
  std::printf("==========================================================\n");
  std::printf("Adapting to network delay changes (microbenchmark)\n");
  std::printf("(reproduces paper Figure 12 (a, b), Section 7.3)\n");
  std::printf("==========================================================\n");

  const Timeline a = run_case(false);
  print_timeline("Figure 12(a): client<->R delay 30 -> 50 -> 70 ms", a,
                 "paper: Domino 30 -> 50 (stays DFP) -> 60 (switches to DM);\n"
                 "Mencius 30 -> 80 -> 100 (fixed coordinator R)");

  const Timeline b = run_case(true);
  print_timeline("Figure 12(b): inter-replica delays rise", b,
                 "paper: both start ~60; Domino drops below Mencius when R's\n"
                 "links slow (new DM leader), then switches to DFP (~70)");
  return 0;
}
