// Figure 11: impact of the DFP additional-delay knob on Domino's execution
// latency (Globe setting), as box plots over 0-36 ms of added slack.
//
// Paper shape: zero slack suffers slow-path stalls (higher latency); a
// small slack (~8 ms) minimizes execution latency; growing the slack
// further shifts the whole distribution up (median +~23 ms from 8 -> 36 ms).
#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace domino;
  bench::print_header("Execution latency vs DFP additional delay",
                      "paper Figure 11, Section 7.2.3");

  harness::Scenario base = bench::globe_scenario();
  base.rps = 200;
  base.warmup = seconds(2);
  base.measure = seconds(12);
  base.seed = 41;

  const int delays_ms[] = {0, 1, 2, 4, 8, 12, 16, 24, 36};
  double med_0 = 0, med_8 = 0, med_36 = 0, p95_0 = 0, p95_8 = 0;
  for (int d : delays_ms) {
    harness::Scenario s = base;
    s.additional_delay = milliseconds(d);
    const auto r = bench::run_repeated(harness::Protocol::kDomino, s, 2);
    char name[32];
    std::snprintf(name, sizeof(name), "+%d ms", d);
    std::printf("%s\n", harness::box_line(name, r.exec_ms).c_str());
    if (d == 0) {
      med_0 = r.exec_ms.percentile(50);
      p95_0 = r.exec_ms.percentile(95);
    }
    if (d == 8) {
      med_8 = r.exec_ms.percentile(50);
      p95_8 = r.exec_ms.percentile(95);
    }
    if (d == 36) med_36 = r.exec_ms.percentile(50);
  }

  std::printf("\nsmall slack cuts the tail vs zero slack (p95 %.0f -> %.0f): %s\n", p95_0,
              p95_8, p95_8 <= p95_0 ? "yes" : "NO");
  std::printf("large slack raises the median (8ms %.0f -> 36ms %.0f, paper +~23 ms): %s\n",
              med_8, med_36, med_36 > med_8 + 10 ? "yes" : "NO");
  (void)med_0;
  return 0;
}
