#include "log/index_log.h"

#include <gtest/gtest.h>

namespace domino::log {
namespace {

sm::Command cmd(std::uint64_t seq) {
  sm::Command c;
  c.id = RequestId{NodeId{1}, seq};
  c.key = "k" + std::to_string(seq);
  c.value = "v";
  return c;
}

TEST(IndexLog, AcceptThenCommitThenExecute) {
  IndexLog log;
  log.accept(0, cmd(0));
  EXPECT_TRUE(log.drain_executable().empty());  // accepted != committed
  log.commit(0);
  const auto execd = log.drain_executable();
  ASSERT_EQ(execd.size(), 1u);
  EXPECT_EQ(execd[0].first, 0u);
  EXPECT_EQ(log.execution_frontier(), 1u);
}

TEST(IndexLog, ExecutionWaitsForContiguity) {
  IndexLog log;
  log.accept(0, cmd(0));
  log.accept(1, cmd(1));
  log.commit(1);
  EXPECT_TRUE(log.drain_executable().empty());  // hole at 0
  log.commit(0);
  EXPECT_EQ(log.drain_executable().size(), 2u);
}

TEST(IndexLog, SkipsUnblockExecution) {
  IndexLog log;
  log.accept(5, cmd(5));
  log.commit(5);
  EXPECT_TRUE(log.drain_executable().empty());
  log.skip(0, 4);
  const auto execd = log.drain_executable();
  ASSERT_EQ(execd.size(), 1u);
  EXPECT_EQ(execd[0].first, 5u);
  EXPECT_EQ(log.execution_frontier(), 6u);
}

TEST(IndexLog, CommitWithCommandCreatesEntry) {
  IndexLog log;
  log.commit(3, cmd(3));
  log.skip(0, 2);
  EXPECT_EQ(log.drain_executable().size(), 1u);
}

TEST(IndexLog, CommitWithoutEntryOrCommandThrows) {
  IndexLog log;
  EXPECT_THROW(log.commit(0), std::logic_error);
}

TEST(IndexLog, ReacceptBeforeCommitAllowed) {
  IndexLog log;
  log.accept(0, cmd(0));
  log.accept(0, cmd(99));  // ballot-1 style overwrite
  log.commit(0);
  const auto execd = log.drain_executable();
  EXPECT_EQ(execd[0].second.id.seq, 99u);
}

TEST(IndexLog, AcceptOverCommittedThrows) {
  IndexLog log;
  log.commit(0, cmd(0));
  EXPECT_THROW(log.accept(0, cmd(1)), std::logic_error);
}

TEST(IndexLog, CommitIdempotent) {
  IndexLog log;
  log.commit(0, cmd(0));
  log.commit(0);
  EXPECT_EQ(log.drain_executable().size(), 1u);
  log.commit(0);  // after execution: still fine
  EXPECT_TRUE(log.drain_executable().empty());
}

TEST(IndexLog, SkippedRunsCoalesce) {
  IndexLog log;
  for (std::uint64_t i = 0; i < 100; ++i) {
    if (i % 10 != 0) log.skip(i, i);
  }
  // 10 occupied holes -> at most 10+1 intervals (the compression property
  // from paper Section 6).
  EXPECT_LE(log.skip_interval_count(), 11u);
}

TEST(IndexLog, LargeSkipJumpIsConstantTime) {
  IndexLog log;
  log.skip(0, 1'000'000'000);
  log.commit(1'000'000'001, cmd(1));
  const auto execd = log.drain_executable();
  ASSERT_EQ(execd.size(), 1u);
  EXPECT_EQ(log.execution_frontier(), 1'000'000'002u);
}

TEST(IndexLog, IsCommittedAndEntryAccessors) {
  IndexLog log;
  log.accept(0, cmd(0));
  EXPECT_FALSE(log.is_committed(0));
  EXPECT_NE(log.entry(0), nullptr);
  EXPECT_EQ(log.entry(1), nullptr);
  log.commit(0);
  EXPECT_TRUE(log.is_committed(0));
  EXPECT_EQ(log.executed_count(), 0u);
  (void)log.drain_executable();
  EXPECT_EQ(log.executed_count(), 1u);
}

}  // namespace
}  // namespace domino::log
