// Model-based property tests for GlobalLog: random interleavings of
// accepts, commits, no-op resolutions and watermark advances are replayed
// against a naive reference model; execution output and resolution state
// must match exactly.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/rng.h"
#include "log/global_log.h"

namespace domino::log {
namespace {

sm::Command cmd(std::uint64_t seq) {
  sm::Command c;
  c.id = RequestId{NodeId{1}, seq};
  c.key = "k";
  c.value = "v";
  return c;
}

/// Naive reference: explicit per-position status map, frontier computed by
/// scanning, no compaction, no hints.
struct ReferenceLog {
  enum class St { kAccepted, kCommitted, kNoop };
  struct Ref {
    St st;
    std::uint64_t seq;
  };
  std::size_t lanes;
  std::vector<std::map<std::int64_t, Ref>> entries;
  std::vector<std::int64_t> watermark;
  std::set<std::pair<std::int64_t, std::uint32_t>> executed;

  explicit ReferenceLog(std::size_t n) : lanes(n), entries(n), watermark(n, 0) {}

  std::int64_t lane_frontier(std::uint32_t lane) const {
    // Scan every position from the smallest entry: frontier is the first
    // position that is neither a resolved entry nor below the watermark.
    std::int64_t wm = watermark[lane];
    // Find first accepted entry.
    std::int64_t blocked = std::numeric_limits<std::int64_t>::max();
    for (const auto& [ts, ref] : entries[lane]) {
      if (ref.st == St::kAccepted) {
        blocked = ts;
        break;
      }
    }
    // Walk wm over resolved entries sitting exactly at it.
    for (;;) {
      auto it = entries[lane].find(wm);
      if (it == entries[lane].end() || it->second.st == St::kAccepted) break;
      ++wm;
    }
    return std::min(blocked, wm);
  }

  /// All committed-but-unexecuted entries strictly before the global
  /// frontier, in (ts, lane) order.
  std::vector<std::pair<LogPosition, std::uint64_t>> drain() {
    LogPosition frontier{std::numeric_limits<std::int64_t>::max(),
                         static_cast<std::uint32_t>(lanes)};
    for (std::uint32_t l = 0; l < lanes; ++l) {
      LogPosition cand{lane_frontier(l), l};
      if (cand < frontier) frontier = cand;
    }
    std::vector<std::pair<LogPosition, std::uint64_t>> out;
    for (std::uint32_t l = 0; l < lanes; ++l) {
      for (const auto& [ts, ref] : entries[l]) {
        const LogPosition pos{ts, l};
        if (!(pos < frontier)) break;
        if (ref.st == St::kCommitted && !executed.contains({ts, l})) {
          out.emplace_back(pos, ref.seq);
          executed.insert({ts, l});
        }
      }
    }
    std::sort(out.begin(), out.end());
    return out;
  }
};

TEST(GlobalLogProperty, MatchesReferenceUnderRandomOps) {
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    Rng rng(seed);
    const std::size_t lanes = 3;
    GlobalLog log(lanes);
    ReferenceLog ref(lanes);
    std::uint64_t next_seq = 0;
    // Track live (unresolved) and committed-entry positions for op choice.
    std::vector<std::pair<std::int64_t, std::uint32_t>> accepted;

    std::vector<std::pair<LogPosition, std::uint64_t>> log_execs, ref_execs;

    for (int op = 0; op < 400; ++op) {
      const int kind = static_cast<int>(rng.next_u64() % 100);
      if (kind < 40) {
        // Accept a new entry at a random position.
        const std::int64_t ts = rng.uniform_i64(1, 300);
        const auto lane = static_cast<std::uint32_t>(rng.next_u64() % lanes);
        const LogPosition pos{ts, lane};
        // Skip if the reference says this position is unusable (resolved or
        // conflicting) — mirrors the protocol's acceptance rules.
        const auto it = ref.entries[lane].find(ts);
        if (it != ref.entries[lane].end()) continue;
        if (ts < ref.watermark[lane]) continue;
        if (ref.executed.contains({ts, lane})) continue;
        const std::uint64_t seq = next_seq++;
        log.accept(pos, cmd(seq));
        ref.entries[lane][ts] = {ReferenceLog::St::kAccepted, seq};
        accepted.emplace_back(ts, lane);
      } else if (kind < 70 && !accepted.empty()) {
        // Commit or noop-resolve a random accepted entry.
        const std::size_t i = rng.next_u64() % accepted.size();
        const auto [ts, lane] = accepted[i];
        accepted.erase(accepted.begin() + static_cast<std::ptrdiff_t>(i));
        auto& r = ref.entries[lane][ts];
        if (r.st != ReferenceLog::St::kAccepted) continue;
        if (rng.chance(0.8)) {
          log.commit(LogPosition{ts, lane});
          r.st = ReferenceLog::St::kCommitted;
        } else {
          log.resolve_as_noop(LogPosition{ts, lane});
          r.st = ReferenceLog::St::kNoop;
        }
      } else {
        // Advance a random lane's watermark.
        const auto lane = static_cast<std::uint32_t>(rng.next_u64() % lanes);
        const std::int64_t ts = rng.uniform_i64(0, 320);
        log.advance_watermark(lane, ts);
        ref.watermark[lane] = std::max(ref.watermark[lane], ts);
      }
      // Drain both and compare cumulative execution sequences.
      for (auto& [pos, command] : log.drain_executable()) {
        log_execs.emplace_back(pos, command.id.seq);
      }
      for (auto& e : ref.drain()) ref_execs.push_back(e);
      ASSERT_EQ(log_execs, ref_execs) << "seed=" << seed << " op=" << op;
    }
    // Force full resolution: commit all remaining accepted, max watermarks.
    for (const auto& [ts, lane] : accepted) {
      auto& r = ref.entries[lane][ts];
      if (r.st != ReferenceLog::St::kAccepted) continue;
      log.commit(LogPosition{ts, lane});
      r.st = ReferenceLog::St::kCommitted;
    }
    for (std::uint32_t l = 0; l < lanes; ++l) {
      log.advance_watermark(l, 1000);
      ref.watermark[l] = 1000;
    }
    for (auto& [pos, command] : log.drain_executable()) {
      log_execs.emplace_back(pos, command.id.seq);
    }
    for (auto& e : ref.drain()) ref_execs.push_back(e);
    ASSERT_EQ(log_execs, ref_execs) << "seed=" << seed << " (final)";
    // Everything committed must have executed.
    EXPECT_EQ(log.pending_entries(), 0u) << "seed=" << seed;
  }
}

TEST(GlobalLogProperty, ExecutionOrderIsAlwaysSorted) {
  Rng rng(7);
  GlobalLog log(4);
  std::vector<LogPosition> order;
  for (int op = 0; op < 500; ++op) {
    const std::int64_t ts = rng.uniform_i64(1, 1000);
    const auto lane = static_cast<std::uint32_t>(rng.next_u64() % 4);
    const LogPosition pos{ts, lane};
    if (log.is_resolved(pos) || log.entry(pos) != nullptr) continue;
    log.commit(pos, cmd(static_cast<std::uint64_t>(op)));
    if (op % 10 == 0) {
      log.advance_watermark(static_cast<std::uint32_t>(rng.next_u64() % 4),
                            rng.uniform_i64(0, 1100));
    }
    for (auto& [p, c] : log.drain_executable()) {
      (void)c;
      order.push_back(p);
    }
  }
  for (std::size_t i = 1; i < order.size(); ++i) {
    EXPECT_LT(order[i - 1], order[i]);
  }
}

}  // namespace
}  // namespace domino::log
