#include "log/global_log.h"

#include <gtest/gtest.h>

namespace domino::log {
namespace {

// A 3-replica deployment: DM lanes 0..2, DFP lane 3.
constexpr std::uint32_t kDfp = 3;

sm::Command cmd(std::uint64_t seq) {
  sm::Command c;
  c.id = RequestId{NodeId{1}, seq};
  c.key = "k" + std::to_string(seq);
  c.value = "v";
  return c;
}

GlobalLog make_log() { return GlobalLog{4}; }

TEST(GlobalLog, RequiresTwoLanes) {
  EXPECT_THROW(GlobalLog{1}, std::invalid_argument);
  EXPECT_NO_THROW(GlobalLog{2});
}

TEST(GlobalLog, CommittedEntryExecutesOnceWatermarksPass) {
  GlobalLog log = make_log();
  const LogPosition pos{100, kDfp};
  log.accept(pos, cmd(0));
  log.commit(pos);
  EXPECT_TRUE(log.drain_executable().empty());  // DM lanes still unresolved
  for (std::uint32_t lane = 0; lane < 3; ++lane) log.advance_watermark(lane, 101);
  log.advance_watermark(kDfp, 100);  // DFP no-ops strictly below 100
  const auto execd = log.drain_executable();
  ASSERT_EQ(execd.size(), 1u);
  EXPECT_EQ(execd[0].first, pos);
}

TEST(GlobalLog, AcceptedEntryBlocksItsLane) {
  GlobalLog log = make_log();
  log.accept(LogPosition{50, 0}, cmd(0));
  for (std::uint32_t lane = 0; lane <= kDfp; ++lane) log.advance_watermark(lane, 1000);
  EXPECT_TRUE(log.drain_executable().empty());  // accepted-but-uncommitted blocks
  EXPECT_EQ(log.lane_frontier(0), 50);
  log.commit(LogPosition{50, 0});
  EXPECT_EQ(log.drain_executable().size(), 1u);
}

TEST(GlobalLog, GlobalOrderInterleavesLanes) {
  GlobalLog log = make_log();
  // DM position at ts=100 sorts before the DFP position at ts=100
  // (Section 5.5: DM positions share the timestamp of the DFP position
  // immediately after them).
  log.commit(LogPosition{100, kDfp}, cmd(1));
  log.commit(LogPosition{100, 1}, cmd(0));
  for (std::uint32_t lane = 0; lane <= kDfp; ++lane) log.advance_watermark(lane, 1000);
  const auto execd = log.drain_executable();
  ASSERT_EQ(execd.size(), 2u);
  EXPECT_EQ(execd[0].first, (LogPosition{100, 1}));
  EXPECT_EQ(execd[1].first, (LogPosition{100, kDfp}));
}

TEST(GlobalLog, TimestampOrderAcrossLanes) {
  GlobalLog log = make_log();
  log.commit(LogPosition{300, 0}, cmd(2));
  log.commit(LogPosition{100, 2}, cmd(0));
  log.commit(LogPosition{200, kDfp}, cmd(1));
  for (std::uint32_t lane = 0; lane <= kDfp; ++lane) log.advance_watermark(lane, 1000);
  const auto execd = log.drain_executable();
  ASSERT_EQ(execd.size(), 3u);
  EXPECT_EQ(execd[0].second.id.seq, 0u);
  EXPECT_EQ(execd[1].second.id.seq, 1u);
  EXPECT_EQ(execd[2].second.id.seq, 2u);
}

TEST(GlobalLog, WatermarkIsMonotonic) {
  GlobalLog log = make_log();
  log.advance_watermark(0, 100);
  log.advance_watermark(0, 50);  // regression ignored
  EXPECT_EQ(log.watermark(0), 100);
}

TEST(GlobalLog, LaneFrontierStopsAtWatermark) {
  GlobalLog log = make_log();
  log.advance_watermark(0, 500);
  EXPECT_EQ(log.lane_frontier(0), 500);
}

TEST(GlobalLog, FrontierWalksOverCommittedEntryAtWatermark) {
  GlobalLog log = make_log();
  log.advance_watermark(0, 500);
  log.commit(LogPosition{500, 0}, cmd(0));  // exactly at the watermark
  EXPECT_EQ(log.lane_frontier(0), 501);
}

TEST(GlobalLog, ResolveAsNoopUnblocks) {
  GlobalLog log = make_log();
  const LogPosition pos{10, kDfp};
  log.accept(pos, cmd(0));
  for (std::uint32_t lane = 0; lane <= kDfp; ++lane) log.advance_watermark(lane, 100);
  EXPECT_EQ(log.lane_frontier(kDfp), 10);
  log.resolve_as_noop(pos);
  EXPECT_GT(log.lane_frontier(kDfp), 10);
  EXPECT_TRUE(log.drain_executable().empty());  // a no-op executes nothing
}

TEST(GlobalLog, CommitAfterNoopResolutionThrows) {
  GlobalLog log = make_log();
  const LogPosition pos{10, kDfp};
  log.accept(pos, cmd(0));
  log.resolve_as_noop(pos);
  EXPECT_THROW(log.commit(pos), std::logic_error);
}

TEST(GlobalLog, NoopResolutionOfCommittedThrows) {
  GlobalLog log = make_log();
  const LogPosition pos{10, kDfp};
  log.commit(pos, cmd(0));
  EXPECT_THROW(log.resolve_as_noop(pos), std::logic_error);
}

TEST(GlobalLog, ConflictingAcceptOnResolvedEntryThrows) {
  GlobalLog log = make_log();
  const LogPosition pos{10, kDfp};
  log.commit(pos, cmd(0));
  EXPECT_THROW(log.accept(pos, cmd(1)), std::logic_error);
  EXPECT_NO_THROW(log.accept(pos, cmd(0)));  // same command is idempotent
}

TEST(GlobalLog, CommitIsIdempotentAfterExecution) {
  GlobalLog log = make_log();
  const LogPosition pos{10, 0};
  log.commit(pos, cmd(0));
  for (std::uint32_t lane = 0; lane <= kDfp; ++lane) log.advance_watermark(lane, 100);
  EXPECT_EQ(log.drain_executable().size(), 1u);
  EXPECT_NO_THROW(log.commit(pos, cmd(0)));
  EXPECT_TRUE(log.drain_executable().empty());
  EXPECT_EQ(log.executed_count(), 1u);
}

TEST(GlobalLog, CompactionKeepsResolvedState) {
  GlobalLog log = make_log();
  for (std::int64_t ts = 10; ts < 100; ts += 10) {
    log.commit(LogPosition{ts, kDfp}, cmd(static_cast<std::uint64_t>(ts)));
  }
  for (std::uint32_t lane = 0; lane <= kDfp; ++lane) log.advance_watermark(lane, 1000);
  EXPECT_EQ(log.drain_executable().size(), 9u);
  EXPECT_EQ(log.pending_entries(), 0u);
  // Resolved-and-compacted positions still answer queries consistently.
  EXPECT_TRUE(log.is_resolved(LogPosition{50, kDfp}));
  EXPECT_TRUE(log.is_committed(LogPosition{50, kDfp}));
}

TEST(GlobalLog, ExecutionNeverCrossesUnresolvedDfpPosition) {
  GlobalLog log = make_log();
  log.accept(LogPosition{100, kDfp}, cmd(0));  // pending DFP proposal
  log.commit(LogPosition{200, 0}, cmd(1));     // later DM commit
  for (std::uint32_t lane = 0; lane <= kDfp; ++lane) log.advance_watermark(lane, 1000);
  EXPECT_TRUE(log.drain_executable().empty());
  log.commit(LogPosition{100, kDfp});
  const auto execd = log.drain_executable();
  ASSERT_EQ(execd.size(), 2u);
  EXPECT_EQ(execd[0].second.id.seq, 0u);
  EXPECT_EQ(execd[1].second.id.seq, 1u);
}

TEST(GlobalLog, PartialWatermarksHoldBackExecution) {
  GlobalLog log = make_log();
  log.commit(LogPosition{100, kDfp}, cmd(0));
  log.advance_watermark(0, 1000);
  log.advance_watermark(1, 1000);
  log.advance_watermark(kDfp, 1000);
  // Lane 2's watermark is still 0: its (unknown) positions below 100 gate
  // the global frontier.
  EXPECT_TRUE(log.drain_executable().empty());
  log.advance_watermark(2, 101);
  EXPECT_EQ(log.drain_executable().size(), 1u);
}

}  // namespace
}  // namespace domino::log
