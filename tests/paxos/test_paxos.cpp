#include <gtest/gtest.h>

#include "paxos/client.h"
#include "paxos/replica.h"
#include "support/fixtures.h"

namespace domino::paxos {
namespace {

using test::four_dc;
using test::make_command;
using test::replica_ids;

struct PaxosCluster : ::testing::Test {
  sim::Simulator simulator;
  net::Network network{simulator, four_dc(), 1};
  std::vector<NodeId> rids = replica_ids(3);
  std::vector<std::unique_ptr<Replica>> replicas;
  std::unique_ptr<Client> client;

  void SetUp() override {
    // Replicas in A, B, C; leader in A; client in D.
    for (std::size_t i = 0; i < 3; ++i) {
      replicas.push_back(
          std::make_unique<Replica>(rids[i], i, network, rids, rids[0]));
      replicas.back()->attach();
    }
    client = std::make_unique<Client>(NodeId{1000}, 3, network, rids[0]);
    client->attach();
  }
};

TEST_F(PaxosCluster, SingleRequestCommits) {
  client->submit(make_command(client->id(), 0));
  simulator.run();
  EXPECT_EQ(client->committed_count(), 1u);
  EXPECT_EQ(replicas[0]->committed_count(), 1u);
}

TEST_F(PaxosCluster, CommitLatencyIsClientLeaderPlusMajority) {
  TimePoint committed;
  client->set_commit_hook(
      [&](const RequestId&, TimePoint, TimePoint at) { committed = at; });
  client->submit(make_command(client->id(), 0));
  simulator.run();
  // Client D -> leader A: 30 ms OWD. Leader replicates; nearest follower is
  // B (20 ms RTT). Reply D: 30 ms. Total 30 + 20 + 30 = 80 ms.
  EXPECT_NEAR((committed - TimePoint::epoch()).millis(), 80.0, 0.5);
}

TEST_F(PaxosCluster, AllReplicasExecuteInOrder) {
  test::ExecTrace traces[3];
  for (std::size_t i = 0; i < 3; ++i) {
    replicas[i]->set_execute_hook(std::ref(traces[i]));
  }
  for (std::uint64_t s = 0; s < 10; ++s) {
    client->submit(make_command(client->id(), s, "k" + std::to_string(s)));
  }
  simulator.run();
  for (const auto& t : traces) {
    ASSERT_EQ(t.order.size(), 10u);
    for (std::uint64_t s = 0; s < 10; ++s) EXPECT_EQ(t.order[s].seq, s);
  }
}

TEST_F(PaxosCluster, StateConvergesAcrossReplicas) {
  for (std::uint64_t s = 0; s < 20; ++s) {
    client->submit(make_command(client->id(), s, "k" + std::to_string(s % 5),
                                "v" + std::to_string(s)));
  }
  simulator.run();
  const auto& ref = replicas[0]->store().items();
  for (const auto& r : replicas) {
    EXPECT_EQ(r->store().items(), ref);
  }
  EXPECT_EQ(ref.size(), 5u);
}

TEST_F(PaxosCluster, FollowerIgnoresClientRequests) {
  // A request sent to a follower is dropped (clients are configured to talk
  // to the leader; this guards the role check).
  Client rogue(NodeId{1001}, 3, network, rids[1]);
  rogue.attach();
  rogue.submit(make_command(rogue.id(), 0));
  simulator.run();
  EXPECT_EQ(rogue.committed_count(), 0u);
  EXPECT_EQ(replicas[1]->committed_count(), 0u);
}

TEST_F(PaxosCluster, ManyRequestsAllCommit) {
  sm::WorkloadConfig wc;
  wc.num_keys = 100;
  sm::WorkloadGenerator gen(wc, 7);
  client->start_load(gen, 500.0);
  simulator.run_until(TimePoint::epoch() + seconds(2));
  client->stop_load();
  simulator.run_until(TimePoint::epoch() + seconds(3));
  EXPECT_EQ(client->submitted_count(), 1000u);
  EXPECT_EQ(client->committed_count(), 1000u);
}

TEST_F(PaxosCluster, LeaderLocalClientIsFast) {
  Client local(NodeId{1002}, 0, network, rids[0]);
  local.attach();
  TimePoint committed;
  local.set_commit_hook([&](const RequestId&, TimePoint, TimePoint at) { committed = at; });
  local.submit(make_command(local.id(), 0));
  simulator.run();
  // Intra-DC to leader (0.25) + replication to B (20) + back (0.25).
  EXPECT_NEAR((committed - TimePoint::epoch()).millis(), 20.5, 0.5);
}

}  // namespace
}  // namespace domino::paxos
