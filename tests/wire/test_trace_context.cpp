// Wire-level tests for the piggybacked trace context: envelope flag bit,
// masked peek, decode skip, and byte-compatibility when no context is set.
#include <gtest/gtest.h>

#include "measure/messages.h"
#include "wire/message.h"

namespace domino::wire {
namespace {

measure::Probe sample_probe() {
  measure::Probe p;
  p.seq = 42;
  p.sender_local_time = TimePoint::epoch() + milliseconds(3);
  return p;
}

TEST(TraceContextWire, RoundTrip) {
  const auto probe = sample_probe();
  const TraceContextWire ctx{0xDEADBEEF12345678ull, 7};
  const Payload payload = encode_message_traced(probe, ctx);

  // The envelope flag is masked out of peek_type, so dispatch switches
  // never see it.
  EXPECT_EQ(peek_type(payload), MessageType::kProbe);

  const TraceContextWire got = peek_trace_context(payload);
  EXPECT_TRUE(got.valid());
  EXPECT_EQ(got.trace_id, ctx.trace_id);
  EXPECT_EQ(got.span_id, ctx.span_id);

  // decode_message skips the context transparently.
  const auto decoded = decode_message<measure::Probe>(payload);
  EXPECT_EQ(decoded.seq, probe.seq);
  EXPECT_EQ(decoded.sender_local_time, probe.sender_local_time);
}

TEST(TraceContextWire, InvalidContextEncodesByteIdentical) {
  const auto probe = sample_probe();
  const Payload plain = encode_message(probe);
  const Payload traced = encode_message_traced(probe, TraceContextWire{});
  EXPECT_EQ(plain, traced);

  // Zero trace id or zero span id -> no context on the wire.
  EXPECT_EQ(plain, encode_message_traced(probe, TraceContextWire{0, 5}));
  EXPECT_EQ(plain, encode_message_traced(probe, TraceContextWire{5, 0}));
}

TEST(TraceContextWire, PeekOnUntracedPayloadIsInvalid) {
  const Payload plain = encode_message(sample_probe());
  const TraceContextWire got = peek_trace_context(plain);
  EXPECT_FALSE(got.valid());
}

TEST(TraceContextWire, ContextAddsBytesOnlyWhenPresent) {
  const auto probe = sample_probe();
  const Payload plain = encode_message(probe);
  const Payload traced = encode_message_traced(probe, TraceContextWire{1, 1});
  EXPECT_GT(traced.size(), plain.size());
}

TEST(TraceContextWire, WrongTypeStillThrows) {
  const Payload traced = encode_message_traced(sample_probe(), TraceContextWire{9, 9});
  EXPECT_THROW(decode_message<measure::ProbeReply>(traced), WireError);
}

TEST(TraceContextWire, TruncatedContextThrows) {
  Payload traced = encode_message_traced(sample_probe(), TraceContextWire{1u << 30, 77});
  traced.resize(3);  // tag + one varint byte
  EXPECT_THROW(decode_message<measure::Probe>(traced), WireError);
}

}  // namespace
}  // namespace domino::wire
