// Round-trip and allocation-bomb-guard tests for the peer catch-up wire
// messages (recovery/messages.h), in the style of tests/wire: every field
// survives an encode/decode cycle, and a length prefix that could not be
// backed by the remaining bytes throws WireError instead of allocating.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "recovery/messages.h"
#include "wire/message.h"

namespace domino::recovery {
namespace {

sm::Command test_command(std::uint64_t seq, std::string key, std::string value) {
  sm::Command c;
  c.id = RequestId{NodeId{1001}, seq};
  c.key = std::move(key);
  c.value = std::move(value);
  return c;
}

template <typename M>
M round_trip(const M& msg) {
  const wire::Payload p = wire::encode_message(msg);
  EXPECT_EQ(wire::peek_type(p), M::kType);
  return wire::decode_message<M>(p);
}

TEST(RecoveryMessages, CatchupRequestRoundTrip) {
  CatchupRequest m;
  m.epoch = 3;
  m.applied = 120;
  const auto d = round_trip(m);
  EXPECT_EQ(d.epoch, 3u);
  EXPECT_EQ(d.applied, 120u);
}

TEST(RecoveryMessages, CatchupReplyRoundTrip) {
  CatchupReply m;
  m.epoch = 7;
  m.applied = 512;
  m.frontier = -4;  // timestamps may sit below the epoch under clock offsets
  m.frontier_lane = 3;
  m.snapshot = {KvEntry{"k1", "v1"}, KvEntry{"k2", ""}, KvEntry{"", "v3"}};
  m.watermarks = {0, 1729, -55};
  CatchupEntry e0{/*pos=*/41, /*lane=*/0, test_command(9, "a", "b"), {}};
  CatchupEntry e1{/*pos=*/-17, /*lane=*/2, test_command(10, "c", "d"),
                  wire::Payload{0x01, 0x02, 0x03}};
  m.entries = {e0, e1};

  const auto d = round_trip(m);
  EXPECT_EQ(d.epoch, 7u);
  EXPECT_EQ(d.applied, 512u);
  EXPECT_EQ(d.frontier, -4);
  EXPECT_EQ(d.frontier_lane, 3u);
  ASSERT_EQ(d.snapshot.size(), 3u);
  EXPECT_EQ(d.snapshot[0].key, "k1");
  EXPECT_EQ(d.snapshot[0].value, "v1");
  EXPECT_EQ(d.snapshot[1].value, "");
  EXPECT_EQ(d.snapshot[2].key, "");
  EXPECT_EQ(d.watermarks, (std::vector<std::int64_t>{0, 1729, -55}));
  ASSERT_EQ(d.entries.size(), 2u);
  EXPECT_EQ(d.entries[0].pos, 41);
  EXPECT_EQ(d.entries[0].lane, 0u);
  EXPECT_EQ(d.entries[0].command.id, e0.command.id);
  EXPECT_TRUE(d.entries[0].aux.empty());
  EXPECT_EQ(d.entries[1].pos, -17);
  EXPECT_EQ(d.entries[1].lane, 2u);
  EXPECT_EQ(d.entries[1].aux, (wire::Payload{0x01, 0x02, 0x03}));
}

TEST(RecoveryMessages, EmptyReplyRoundTrip) {
  // A responder with nothing to offer (fresh cluster) sends empty
  // containers; the decoder must not confuse that with truncation.
  CatchupReply m;
  const auto d = round_trip(m);
  EXPECT_TRUE(d.snapshot.empty());
  EXPECT_TRUE(d.watermarks.empty());
  EXPECT_TRUE(d.entries.empty());
}

/// Build a CatchupReply body whose first container claims `claimed` elements
/// while the payload carries none — the classic allocation bomb.
wire::Payload bomb_reply(std::uint64_t claimed) {
  wire::ByteWriter w;
  w.u16(static_cast<std::uint16_t>(CatchupReply::kType));
  w.varint(0);        // epoch
  w.varint(0);        // applied
  w.svarint(0);       // frontier
  w.varint(0);        // frontier_lane
  w.varint(claimed);  // snapshot length prefix with no bytes behind it
  return w.take();
}

TEST(RecoveryMessages, SnapshotAllocationBombThrows) {
  EXPECT_THROW(wire::decode_message<CatchupReply>(bomb_reply(1u << 30)),
               wire::WireError);
  // Even a modest over-claim must be rejected: 10 claimed entries cannot
  // fit in zero remaining bytes.
  EXPECT_THROW(wire::decode_message<CatchupReply>(bomb_reply(10)), wire::WireError);
}

TEST(RecoveryMessages, EntriesAllocationBombThrows) {
  wire::ByteWriter w;
  w.u16(static_cast<std::uint16_t>(CatchupReply::kType));
  w.varint(0);   // epoch
  w.varint(0);   // applied
  w.svarint(0);  // frontier
  w.varint(0);   // frontier_lane
  w.varint(0);   // snapshot: empty
  w.varint(0);   // watermarks: empty
  w.varint(1u << 28);  // entries: bomb
  EXPECT_THROW(wire::decode_message<CatchupReply>(w.take()), wire::WireError);
}

TEST(RecoveryMessages, TruncatedEntryThrows) {
  CatchupReply m;
  m.entries.push_back(CatchupEntry{5, 1, test_command(1, "k", "v"), {}});
  wire::Payload p = wire::encode_message(m);
  p.resize(p.size() - 3);  // cut into the trailing entry
  EXPECT_THROW(wire::decode_message<CatchupReply>(p), wire::WireError);
}

TEST(RecoveryMessages, TrailingGarbageThrows) {
  CatchupRequest m;
  wire::Payload p = wire::encode_message(m);
  p.push_back(0x00);
  EXPECT_THROW(wire::decode_message<CatchupRequest>(p), wire::WireError);
}

}  // namespace
}  // namespace domino::recovery
