#include "wire/codec.h"

#include <gtest/gtest.h>

#include <limits>

#include "common/rng.h"

namespace domino::wire {
namespace {

TEST(Codec, FixedWidthRoundTrip) {
  ByteWriter w;
  w.u8(0xAB);
  w.u16(0xBEEF);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFull);
  const Payload p = w.take();
  ByteReader r{p};
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0xBEEF);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_TRUE(r.exhausted());
}

TEST(Codec, VarintBoundaries) {
  for (std::uint64_t v : std::vector<std::uint64_t>{
           0, 1, 127, 128, 16383, 16384, std::numeric_limits<std::uint64_t>::max()}) {
    ByteWriter w;
    w.varint(v);
    const Payload p = w.take();
    ByteReader r{p};
    EXPECT_EQ(r.varint(), v);
  }
}

TEST(Codec, VarintCompactness) {
  ByteWriter w;
  w.varint(5);
  EXPECT_EQ(w.size(), 1u);
  ByteWriter w2;
  w2.varint(300);
  EXPECT_EQ(w2.size(), 2u);
}

TEST(Codec, SvarintSignedValues) {
  for (std::int64_t v : std::vector<std::int64_t>{
           0, 1, -1, 63, -64, 1'000'000, -1'000'000,
           std::numeric_limits<std::int64_t>::max(),
           std::numeric_limits<std::int64_t>::min()}) {
    ByteWriter w;
    w.svarint(v);
    const Payload p = w.take();
    ByteReader r{p};
    EXPECT_EQ(r.svarint(), v);
  }
}

TEST(Codec, ZigZagSmallNegativesAreCompact) {
  ByteWriter w;
  w.svarint(-1);
  EXPECT_EQ(w.size(), 1u);
}

TEST(Codec, StringRoundTrip) {
  ByteWriter w;
  w.str("");
  w.str("hello");
  w.str(std::string(1000, 'x'));
  const Payload p = w.take();
  ByteReader r{p};
  EXPECT_EQ(r.str(), "");
  EXPECT_EQ(r.str(), "hello");
  EXPECT_EQ(r.str(), std::string(1000, 'x'));
}

TEST(Codec, BytesRoundTrip) {
  const std::vector<std::uint8_t> data{0x00, 0xFF, 0x42};
  ByteWriter w;
  w.bytes(data);
  const Payload p = w.take();
  ByteReader r{p};
  EXPECT_EQ(r.bytes(), data);
}

TEST(Codec, DomainTypesRoundTrip) {
  ByteWriter w;
  w.node_id(NodeId{42});
  w.request_id(RequestId{NodeId{7}, 999});
  w.ballot(Ballot{3, NodeId{1}});
  w.time_point(TimePoint::epoch() + milliseconds(123));
  w.duration(milliseconds(-55));
  w.boolean(true);
  const Payload p = w.take();
  ByteReader r{p};
  EXPECT_EQ(r.node_id(), NodeId{42});
  EXPECT_EQ(r.request_id(), (RequestId{NodeId{7}, 999}));
  EXPECT_EQ(r.ballot(), (Ballot{3, NodeId{1}}));
  EXPECT_EQ(r.time_point(), TimePoint::epoch() + milliseconds(123));
  EXPECT_EQ(r.duration(), milliseconds(-55));
  EXPECT_TRUE(r.boolean());
}

TEST(Codec, TruncatedInputThrows) {
  ByteWriter w;
  w.u32(12345);
  Payload p = w.take();
  p.pop_back();
  ByteReader r{p};
  EXPECT_THROW(r.u32(), WireError);
}

TEST(Codec, TruncatedStringThrows) {
  ByteWriter w;
  w.varint(100);  // claims 100 bytes follow
  const Payload p = w.take();
  ByteReader r{p};
  EXPECT_THROW(r.str(), WireError);
}

TEST(Codec, UnterminatedVarintThrows) {
  const Payload p{0x80, 0x80};  // continuation bits with no terminator
  ByteReader r{p};
  EXPECT_THROW(r.varint(), WireError);
}

TEST(Codec, OverlongVarintThrows) {
  const Payload p(11, 0x80);
  ByteReader r{p};
  EXPECT_THROW(r.varint(), WireError);
}

TEST(Codec, ExpectExhaustedThrowsOnTrailing) {
  ByteWriter w;
  w.u8(1);
  w.u8(2);
  const Payload p = w.take();
  ByteReader r{p};
  r.u8();
  EXPECT_THROW(r.expect_exhausted(), WireError);
  r.u8();
  EXPECT_NO_THROW(r.expect_exhausted());
}

TEST(CodecProperty, RandomSequencesRoundTrip) {
  Rng rng(77);
  for (int iter = 0; iter < 50; ++iter) {
    std::vector<std::int64_t> svals;
    std::vector<std::uint64_t> uvals;
    ByteWriter w;
    for (int i = 0; i < 40; ++i) {
      const auto u = rng.next_u64();
      const auto s = static_cast<std::int64_t>(rng.next_u64());
      uvals.push_back(u >> (rng.next_u64() % 64));
      svals.push_back(s);
      w.varint(uvals.back());
      w.svarint(svals.back());
    }
    const Payload p = w.take();
    ByteReader r{p};
    for (int i = 0; i < 40; ++i) {
      EXPECT_EQ(r.varint(), uvals[static_cast<std::size_t>(i)]);
      EXPECT_EQ(r.svarint(), svals[static_cast<std::size_t>(i)]);
    }
    EXPECT_TRUE(r.exhausted());
  }
}

}  // namespace
}  // namespace domino::wire
