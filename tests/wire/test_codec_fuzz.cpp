// Decode-side robustness: random and mutated payloads must either decode
// or throw WireError — never crash, hang, or read out of bounds (the
// sanitizer-visible contract of the defensive codec).
#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/messages.h"
#include "epaxos/messages.h"
#include "fastpaxos/messages.h"
#include "measure/messages.h"
#include "measure/proxy.h"
#include "mencius/messages.h"
#include "paxos/messages.h"
#include "wire/message.h"

namespace domino::wire {
namespace {

sm::Command test_cmd() {
  sm::Command c;
  c.id = RequestId{NodeId{9}, 77};
  c.key = "kkkkkkkk";
  c.value = "vvvvvvvv";
  return c;
}

/// Attempt to decode `payload` as every known message type; all failures
/// must be WireError.
void try_decode_all(const Payload& payload) {
  auto probe_one = [&](auto tag) {
    using M = decltype(tag);
    try {
      (void)decode_message<M>(payload);
    } catch (const WireError&) {
      // expected failure mode
    }
  };
  probe_one(measure::Probe{});
  probe_one(measure::ProbeReply{});
  probe_one(measure::ProxyReport{});
  probe_one(paxos::Accept{});
  probe_one(mencius::Accept{});
  probe_one(epaxos::PreAccept{});
  probe_one(epaxos::Commit{});
  probe_one(fastpaxos::AcceptNotice{});
  probe_one(core::DfpPropose{});
  probe_one(core::DfpAcceptNotice{});
  probe_one(core::Heartbeat{});
  probe_one(core::DmAccept{});
  probe_one(core::DmRevokeResult{});
  probe_one(core::DfpRangeResolve{});
}

TEST(CodecFuzz, RandomBytesNeverCrash) {
  Rng rng(101);
  for (int iter = 0; iter < 2000; ++iter) {
    Payload p(rng.next_u64() % 64);
    for (auto& b : p) b = static_cast<std::uint8_t>(rng.next_u64());
    try_decode_all(p);
  }
}

TEST(CodecFuzz, TruncatedRealMessagesThrowCleanly) {
  std::vector<Payload> seeds;
  seeds.push_back(encode_message(core::DfpPropose{123456, test_cmd()}));
  seeds.push_back(encode_message(epaxos::PreAccept{
      {NodeId{1}, 5}, test_cmd(), 7, {{NodeId{0}, 1}, {NodeId{2}, 9}}}));
  core::DmRevokeResult rr;
  rr.lane = 2;
  rr.from_ts = 5;
  rr.through_ts = 500;
  rr.entries.push_back({17, test_cmd()});
  seeds.push_back(encode_message(rr));

  for (const Payload& seed : seeds) {
    for (std::size_t cut = 0; cut < seed.size(); ++cut) {
      Payload p(seed.begin(), seed.begin() + static_cast<std::ptrdiff_t>(cut));
      try_decode_all(p);
    }
  }
}

TEST(CodecFuzz, BitFlippedMessagesNeverCrash) {
  Rng rng(202);
  const Payload seed = encode_message(epaxos::PreAccept{
      {NodeId{1}, 5}, test_cmd(), 7, {{NodeId{0}, 1}, {NodeId{2}, 9}}});
  for (int iter = 0; iter < 3000; ++iter) {
    Payload p = seed;
    const std::size_t flips = 1 + rng.next_u64() % 4;
    for (std::size_t f = 0; f < flips; ++f) {
      p[rng.next_u64() % p.size()] ^= static_cast<std::uint8_t>(1u << (rng.next_u64() % 8));
    }
    try_decode_all(p);
  }
}

TEST(CodecFuzz, LengthBombsRejected) {
  // A huge claimed string/vector length with no bytes behind it must throw,
  // not allocate unboundedly or read out of bounds.
  ByteWriter w;
  w.u16(static_cast<std::uint16_t>(MessageType::kDfpPropose));
  w.svarint(1);
  w.node_id(NodeId{1});
  w.varint(2);
  w.varint(0xFFFFFFFFFFull);  // key length claims ~1 TiB
  const Payload p = w.buffer();
  EXPECT_THROW((void)decode_message<core::DfpPropose>(p), WireError);
}

}  // namespace
}  // namespace domino::wire
