// Round-trip tests for every protocol message envelope in the repository.
#include <gtest/gtest.h>

#include "core/messages.h"
#include "epaxos/messages.h"
#include "fastpaxos/messages.h"
#include "measure/messages.h"
#include "mencius/messages.h"
#include "paxos/messages.h"
#include "wire/message.h"

namespace domino {
namespace {

sm::Command test_command() {
  sm::Command c;
  c.id = RequestId{NodeId{1001}, 42};
  c.key = "k0000001";
  c.value = "v0000042";
  return c;
}

template <typename M>
M round_trip(const M& msg) {
  const wire::Payload p = wire::encode_message(msg);
  EXPECT_EQ(wire::peek_type(p), M::kType);
  return wire::decode_message<M>(p);
}

TEST(Envelope, TypeMismatchThrows) {
  measure::Probe probe;
  probe.seq = 1;
  const wire::Payload p = wire::encode_message(probe);
  EXPECT_THROW(wire::decode_message<measure::ProbeReply>(p), wire::WireError);
}

TEST(Envelope, TrailingGarbageThrows) {
  measure::Probe probe;
  wire::Payload p = wire::encode_message(probe);
  p.push_back(0x00);
  EXPECT_THROW(wire::decode_message<measure::Probe>(p), wire::WireError);
}

TEST(MeasureMessages, ProbeRoundTrip) {
  measure::Probe m;
  m.seq = 77;
  m.sender_local_time = TimePoint::epoch() + milliseconds(5);
  const auto d = round_trip(m);
  EXPECT_EQ(d.seq, 77u);
  EXPECT_EQ(d.sender_local_time, m.sender_local_time);
}

TEST(MeasureMessages, ProbeReplyRoundTrip) {
  measure::ProbeReply m;
  m.seq = 3;
  m.echo_sender_local_time = TimePoint::epoch() + milliseconds(1);
  m.replica_local_time = TimePoint::epoch() + milliseconds(35);
  m.replication_latency = milliseconds(136);
  const auto d = round_trip(m);
  EXPECT_EQ(d.replica_local_time, m.replica_local_time);
  EXPECT_EQ(d.replication_latency, milliseconds(136));
}

TEST(PaxosMessages, AllRoundTrip) {
  EXPECT_EQ(round_trip(paxos::ClientRequest{test_command()}).command, test_command());
  const auto a = round_trip(paxos::Accept{9, test_command()});
  EXPECT_EQ(a.index, 9u);
  EXPECT_EQ(a.command, test_command());
  EXPECT_EQ(round_trip(paxos::AcceptReply{5}).index, 5u);
  const auto c = round_trip(paxos::Commit{6, test_command()});
  EXPECT_EQ(c.index, 6u);
  EXPECT_EQ(c.command, test_command());  // rides along for late learners
  EXPECT_EQ(round_trip(paxos::ClientReply{test_command().id}).request, test_command().id);
}

TEST(MenciusMessages, AllRoundTrip) {
  EXPECT_EQ(round_trip(mencius::ClientRequest{test_command()}).command, test_command());
  const auto a = round_trip(mencius::Accept{12, test_command(), 12});
  EXPECT_EQ(a.index, 12u);
  EXPECT_EQ(a.skip_through, 12u);
  const auto ar = round_trip(mencius::AcceptReply{12, 15});
  EXPECT_EQ(ar.skip_through, 15u);
  const auto c = round_trip(mencius::Commit{4, test_command()});
  EXPECT_EQ(c.index, 4u);
  EXPECT_EQ(c.command, test_command());  // rides along for late learners
  EXPECT_EQ(round_trip(mencius::CommitAck{7}).index, 7u);
  EXPECT_EQ(round_trip(mencius::Skip{33}).skip_through, 33u);
  EXPECT_EQ(round_trip(mencius::ClientReply{test_command().id}).request, test_command().id);
}

TEST(EpaxosMessages, PreAcceptRoundTrip) {
  epaxos::PreAccept m;
  m.instance = {NodeId{2}, 17};
  m.command = test_command();
  m.seq = 5;
  m.deps = {{NodeId{0}, 3}, {NodeId{1}, 9}};
  const auto d = round_trip(m);
  EXPECT_EQ(d.instance, m.instance);
  EXPECT_EQ(d.seq, 5u);
  EXPECT_EQ(d.deps, m.deps);
}

TEST(EpaxosMessages, RemainingRoundTrip) {
  epaxos::PreAcceptReply pr;
  pr.instance = {NodeId{1}, 2};
  pr.seq = 7;
  pr.deps = {{NodeId{2}, 1}};
  EXPECT_EQ(round_trip(pr).deps, pr.deps);

  epaxos::Accept a;
  a.instance = {NodeId{0}, 0};
  a.command = test_command();
  a.seq = 1;
  EXPECT_EQ(round_trip(a).command, test_command());

  EXPECT_EQ(round_trip(epaxos::AcceptReply{{NodeId{1}, 5}}).instance,
            (epaxos::InstanceId{NodeId{1}, 5}));

  epaxos::Commit c;
  c.instance = {NodeId{2}, 8};
  c.command = test_command();
  c.seq = 3;
  c.deps = {{NodeId{0}, 7}};
  const auto dc = round_trip(c);
  EXPECT_EQ(dc.deps, c.deps);
  EXPECT_EQ(round_trip(epaxos::ClientReply{test_command().id}).request, test_command().id);
}

TEST(FastPaxosMessages, AllRoundTrip) {
  EXPECT_EQ(round_trip(fastpaxos::ClientRequest{test_command()}).command, test_command());
  const auto n = round_trip(fastpaxos::AcceptNotice{44, test_command()});
  EXPECT_EQ(n.index, 44u);
  const auto ra = round_trip(fastpaxos::RecoveryAccept{7, true, {}});
  EXPECT_TRUE(ra.is_noop);
  EXPECT_EQ(round_trip(fastpaxos::RecoveryReply{7}).index, 7u);
  const auto cm = round_trip(fastpaxos::Commit{9, false, test_command()});
  EXPECT_FALSE(cm.is_noop);
  EXPECT_EQ(cm.command, test_command());
  EXPECT_EQ(round_trip(fastpaxos::ClientReply{test_command().id}).request, test_command().id);
}

TEST(DominoMessages, DfpRoundTrip) {
  core::DfpPropose p;
  p.ts = 123'456'789;
  p.command = test_command();
  const auto dp = round_trip(p);
  EXPECT_EQ(dp.ts, 123'456'789);
  EXPECT_EQ(dp.command, test_command());

  core::DfpAcceptNotice n;
  n.ts = 55;
  n.accepted = true;
  n.command = test_command();
  n.sender_local_time = TimePoint::epoch() + seconds(1);
  const auto dn = round_trip(n);
  EXPECT_TRUE(dn.accepted);
  EXPECT_EQ(dn.sender_local_time, n.sender_local_time);

  const auto cm = round_trip(core::DfpCommit{99, true, {}});
  EXPECT_TRUE(cm.is_noop);
  EXPECT_EQ(round_trip(core::DfpRecoveryAccept{4, false, test_command()}).command,
            test_command());
  EXPECT_EQ(round_trip(core::DfpRecoveryReply{13}).ts, 13);
  EXPECT_EQ(round_trip(core::DfpClientReply{test_command().id}).request, test_command().id);
}

TEST(DominoMessages, HeartbeatRoundTrip) {
  core::Heartbeat h;
  h.sender_local_time = TimePoint::epoch() + milliseconds(777);
  h.dfp_commit_frontier = 123456;
  const auto d = round_trip(h);
  EXPECT_EQ(d.sender_local_time, h.sender_local_time);
  EXPECT_EQ(d.dfp_commit_frontier, 123456);
}

TEST(DominoMessages, DmRoundTrip) {
  EXPECT_EQ(round_trip(core::DmPropose{test_command()}).command, test_command());
  const auto a = round_trip(core::DmAccept{1000, 2, test_command()});
  EXPECT_EQ(a.ts, 1000);
  EXPECT_EQ(a.lane, 2u);
  const auto ar = round_trip(core::DmAcceptReply{1000, 2});
  EXPECT_EQ(ar.lane, 2u);
  const auto c = round_trip(core::DmCommit{1000, 1});
  EXPECT_EQ(c.ts, 1000);
  EXPECT_EQ(round_trip(core::DmClientReply{test_command().id}).request, test_command().id);
}

TEST(LogPosition, EncodeDecode) {
  wire::ByteWriter w;
  log::LogPosition{-5, 3}.encode(w);
  const wire::Payload p = w.take();
  wire::ByteReader r{p};
  const auto pos = log::LogPosition::decode(r);
  EXPECT_EQ(pos.ts, -5);
  EXPECT_EQ(pos.lane, 3u);
}

}  // namespace
}  // namespace domino
