#include <gtest/gtest.h>

#include "fastpaxos/client.h"
#include "fastpaxos/replica.h"
#include "support/fixtures.h"

namespace domino::fastpaxos {
namespace {

using test::four_dc;
using test::make_command;
using test::replica_ids;

struct FastPaxosCluster : ::testing::Test {
  sim::Simulator simulator;
  net::Network network{simulator, four_dc(), 1};
  std::vector<NodeId> rids = replica_ids(3);
  std::vector<std::unique_ptr<Replica>> replicas;

  void SetUp() override {
    for (std::size_t i = 0; i < 3; ++i) {
      replicas.push_back(
          std::make_unique<Replica>(rids[i], i, network, rids, rids[0]));
      replicas.back()->attach();
    }
  }

  std::unique_ptr<Client> make_client(NodeId id, std::size_t dc) {
    auto c = std::make_unique<Client>(id, dc, network, rids);
    c->attach();
    return c;
  }
};

TEST_F(FastPaxosCluster, SingleClientUsesFastPath) {
  auto client = make_client(NodeId{1000}, 3);
  for (std::uint64_t s = 0; s < 10; ++s) client->submit(make_command(client->id(), s));
  simulator.run_until(TimePoint::epoch() + seconds(2));
  EXPECT_EQ(client->committed_count(), 10u);
  EXPECT_EQ(client->fast_learns(), 10u);
  EXPECT_EQ(replicas[0]->fast_commits(), 10u);
  EXPECT_EQ(replicas[0]->slow_commits(), 0u);
}

TEST_F(FastPaxosCluster, FastPathLatencyIsSupermajorityRoundTrip) {
  auto client = make_client(NodeId{1000}, 3);
  TimePoint committed;
  client->set_commit_hook([&](const RequestId&, TimePoint, TimePoint at) { committed = at; });
  client->submit(make_command(client->id(), 0));
  simulator.run_until(TimePoint::epoch() + seconds(1));
  // From D, RTTs to A/B/C are 60/50/10; q=3 -> furthest = 60 ms.
  EXPECT_NEAR((committed - TimePoint::epoch()).millis(), 60.0, 0.5);
}

TEST_F(FastPaxosCluster, ConcurrentClientsCollideAndRecover) {
  auto c0 = make_client(NodeId{1000}, 0);
  auto c3 = make_client(NodeId{1001}, 3);
  // Interleave so arrival orders differ at the acceptors.
  for (std::uint64_t s = 0; s < 20; ++s) {
    simulator.schedule_after(milliseconds(static_cast<std::int64_t>(s) * 3),
                             [&c0, s] { c0->submit(make_command(c0->id(), s)); });
    simulator.schedule_after(milliseconds(static_cast<std::int64_t>(s) * 3 + 1),
                             [&c3, s] { c3->submit(make_command(c3->id(), s)); });
  }
  simulator.run_until(TimePoint::epoch() + seconds(10));
  EXPECT_EQ(c0->committed_count(), 20u);
  EXPECT_EQ(c3->committed_count(), 20u);
  // Different arrival orders at different acceptors force the slow path at
  // least occasionally.
  EXPECT_GT(replicas[0]->slow_commits(), 0u);
}

TEST_F(FastPaxosCluster, StateConvergesUnderCollisions) {
  auto c0 = make_client(NodeId{1000}, 0);
  auto c3 = make_client(NodeId{1001}, 3);
  for (std::uint64_t s = 0; s < 30; ++s) {
    simulator.schedule_after(milliseconds(static_cast<std::int64_t>(s)),
                             [&c0, s] { c0->submit(make_command(c0->id(), s, "x")); });
    simulator.schedule_after(milliseconds(static_cast<std::int64_t>(s)),
                             [&c3, s] { c3->submit(make_command(c3->id(), s, "x")); });
  }
  simulator.run_until(TimePoint::epoch() + seconds(20));
  EXPECT_EQ(c0->committed_count(), 30u);
  EXPECT_EQ(c3->committed_count(), 30u);
  const auto& ref = replicas[0]->store().items();
  std::uint64_t executed = replicas[0]->store().applied_count();
  EXPECT_EQ(executed, 60u);
  for (const auto& r : replicas) EXPECT_EQ(r->store().items(), ref);
}

TEST_F(FastPaxosCluster, ExecutionOrderIdenticalAcrossReplicas) {
  test::ExecTrace traces[3];
  for (std::size_t i = 0; i < 3; ++i) replicas[i]->set_execute_hook(std::ref(traces[i]));
  auto c0 = make_client(NodeId{1000}, 0);
  auto c3 = make_client(NodeId{1001}, 3);
  for (std::uint64_t s = 0; s < 15; ++s) {
    simulator.schedule_after(milliseconds(static_cast<std::int64_t>(s) * 2),
                             [&c0, s] { c0->submit(make_command(c0->id(), s)); });
    simulator.schedule_after(milliseconds(static_cast<std::int64_t>(s) * 2),
                             [&c3, s] { c3->submit(make_command(c3->id(), s)); });
  }
  simulator.run_until(TimePoint::epoch() + seconds(20));
  ASSERT_EQ(traces[0].order.size(), 30u);
  EXPECT_EQ(traces[0].order, traces[1].order);
  EXPECT_EQ(traces[0].order, traces[2].order);
}

}  // namespace
}  // namespace domino::fastpaxos
