#include "measure/estimator.h"

#include <gtest/gtest.h>

#include <unordered_map>

namespace domino::measure {
namespace {

/// Scriptable LatencyView: per-target estimates plus a staleness flag, for
/// exercising the composite estimators without a live prober.
class FakeView : public LatencyView {
 public:
  struct Entry {
    Duration rtt = Duration::max();
    Duration owd = Duration::max();
    Duration repl = Duration::max();
    bool stale = false;
  };

  FakeView& set(NodeId id, Entry e) {
    entries_[id] = e;
    return *this;
  }

  // Like the real Prober, a failed/stale target's estimates degrade to
  // max() — the composite estimators rely on that.
  [[nodiscard]] Duration rtt_estimate(NodeId t, double) const override {
    const auto it = entries_.find(t);
    return it == entries_.end() || it->second.stale ? Duration::max() : it->second.rtt;
  }
  [[nodiscard]] Duration owd_estimate(NodeId t, double) const override {
    const auto it = entries_.find(t);
    return it == entries_.end() || it->second.stale ? Duration::max() : it->second.owd;
  }
  [[nodiscard]] Duration replication_latency_of(NodeId t) const override {
    const auto it = entries_.find(t);
    return it == entries_.end() ? Duration::max() : it->second.repl;
  }
  [[nodiscard]] bool looks_failed(NodeId t) const override { return is_stale(t); }
  [[nodiscard]] bool is_stale(NodeId t) const override {
    const auto it = entries_.find(t);
    return it == entries_.end() || it->second.stale;
  }
  [[nodiscard]] double default_percentile() const override { return 95.0; }

 private:
  std::unordered_map<NodeId, Entry> entries_;
};

TEST(KthSmallest, BasicOrderStatistics) {
  std::vector<Duration> v{milliseconds(30), milliseconds(10), milliseconds(20)};
  EXPECT_EQ(kth_smallest(v, 1), milliseconds(10));
  EXPECT_EQ(kth_smallest(v, 2), milliseconds(20));
  EXPECT_EQ(kth_smallest(v, 3), milliseconds(30));
}

TEST(KthSmallest, OutOfRangeReturnsMax) {
  std::vector<Duration> v{milliseconds(1)};
  EXPECT_EQ(kth_smallest(v, 0), Duration::max());
  EXPECT_EQ(kth_smallest(v, 2), Duration::max());
  EXPECT_EQ(kth_smallest({}, 1), Duration::max());
}

// A stub prober is impractical (Prober needs a live node), so the
// composite estimators are covered by tests/measure/test_prober.cpp and the
// integration tests; here we check the math helpers over raw vectors via
// kth_smallest with the quorum sizes the estimators use.
TEST(Estimators, DfpLatencyIsSupermajorityRtt) {
  // 3 replicas: q = 3, the furthest of all three.
  std::vector<Duration> rtts{milliseconds(67), milliseconds(80), milliseconds(196)};
  EXPECT_EQ(kth_smallest(rtts, supermajority(3)), milliseconds(196));
  // 5 replicas: q = 4.
  std::vector<Duration> rtts5{milliseconds(10), milliseconds(20), milliseconds(30),
                              milliseconds(40), milliseconds(50)};
  EXPECT_EQ(kth_smallest(rtts5, supermajority(5)), milliseconds(40));
}

TEST(Estimators, ReplicationLatencyIsMajorityRtt) {
  // Leader's RTTs with self = 0: L = m-th smallest.
  std::vector<Duration> rtts{Duration::zero(), milliseconds(136), milliseconds(175)};
  EXPECT_EQ(kth_smallest(rtts, majority(3)), milliseconds(136));
}

TEST(Estimators, MaxPropagates) {
  std::vector<Duration> rtts{milliseconds(1), Duration::max(), Duration::max()};
  EXPECT_EQ(kth_smallest(rtts, supermajority(3)), Duration::max());
}

TEST(Estimators, DmSkipsStaleReplicasAndPicksCheapestLane) {
  const std::vector<NodeId> replicas{NodeId{0}, NodeId{1}, NodeId{2}};
  FakeView view;
  view.set(NodeId{0}, {milliseconds(40), milliseconds(20), milliseconds(100), false});
  view.set(NodeId{1}, {milliseconds(10), milliseconds(5), milliseconds(200), false});
  view.set(NodeId{2}, {milliseconds(5), milliseconds(2), milliseconds(50), true});
  const DmEstimate est = estimate_dm_latency(view, replicas);
  // n2 would win (5 + 50) but is stale; n0 (40+100=140) loses to n1 (10+200
  // = 210)? No: 140 < 210, so n0 wins.
  EXPECT_EQ(est.leader, NodeId{0});
  EXPECT_EQ(est.latency, milliseconds(140));
}

TEST(Estimators, DmWithAllReplicasStaleYieldsInvalidLeader) {
  // Right after startup (or under a full partition) every feed is stale:
  // the estimate must say so — max() latency, invalid leader — rather than
  // pick a lane on garbage numbers. The Domino client then falls back to
  // fallback_dm_leader(), which is what keeps it live.
  const std::vector<NodeId> replicas{NodeId{0}, NodeId{1}, NodeId{2}};
  FakeView view;
  for (NodeId r : replicas) {
    view.set(r, {milliseconds(10), milliseconds(5), milliseconds(20), /*stale=*/true});
  }
  const DmEstimate est = estimate_dm_latency(view, replicas);
  EXPECT_EQ(est.latency, Duration::max());
  EXPECT_FALSE(est.leader.valid());

  // DFP is equally unusable: the supermajority RTT degenerates to max()...
  EXPECT_EQ(estimate_dfp_latency(view, replicas), Duration::max());
  // ...and no arrival prediction exists, so no timestamp can be stamped.
  EXPECT_EQ(dfp_request_timestamp(view, TimePoint::epoch(), replicas, Duration::zero()),
            TimePoint::max());
}

TEST(Estimators, DmIgnoresRepliclessEstimates) {
  // A fresh feed with an RTT but no piggybacked L_r yet cannot be priced.
  const std::vector<NodeId> replicas{NodeId{0}, NodeId{1}};
  FakeView view;
  view.set(NodeId{0}, {milliseconds(10), milliseconds(5), Duration::max(), false});
  view.set(NodeId{1}, {milliseconds(30), milliseconds(15), milliseconds(60), false});
  const DmEstimate est = estimate_dm_latency(view, replicas);
  EXPECT_EQ(est.leader, NodeId{1});
  EXPECT_EQ(est.latency, milliseconds(90));
}

}  // namespace
}  // namespace domino::measure
