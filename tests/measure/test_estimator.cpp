#include "measure/estimator.h"

#include <gtest/gtest.h>

namespace domino::measure {
namespace {

TEST(KthSmallest, BasicOrderStatistics) {
  std::vector<Duration> v{milliseconds(30), milliseconds(10), milliseconds(20)};
  EXPECT_EQ(kth_smallest(v, 1), milliseconds(10));
  EXPECT_EQ(kth_smallest(v, 2), milliseconds(20));
  EXPECT_EQ(kth_smallest(v, 3), milliseconds(30));
}

TEST(KthSmallest, OutOfRangeReturnsMax) {
  std::vector<Duration> v{milliseconds(1)};
  EXPECT_EQ(kth_smallest(v, 0), Duration::max());
  EXPECT_EQ(kth_smallest(v, 2), Duration::max());
  EXPECT_EQ(kth_smallest({}, 1), Duration::max());
}

// A stub prober is impractical (Prober needs a live node), so the
// composite estimators are covered by tests/measure/test_prober.cpp and the
// integration tests; here we check the math helpers over raw vectors via
// kth_smallest with the quorum sizes the estimators use.
TEST(Estimators, DfpLatencyIsSupermajorityRtt) {
  // 3 replicas: q = 3, the furthest of all three.
  std::vector<Duration> rtts{milliseconds(67), milliseconds(80), milliseconds(196)};
  EXPECT_EQ(kth_smallest(rtts, supermajority(3)), milliseconds(196));
  // 5 replicas: q = 4.
  std::vector<Duration> rtts5{milliseconds(10), milliseconds(20), milliseconds(30),
                              milliseconds(40), milliseconds(50)};
  EXPECT_EQ(kth_smallest(rtts5, supermajority(5)), milliseconds(40));
}

TEST(Estimators, ReplicationLatencyIsMajorityRtt) {
  // Leader's RTTs with self = 0: L = m-th smallest.
  std::vector<Duration> rtts{Duration::zero(), milliseconds(136), milliseconds(175)};
  EXPECT_EQ(kth_smallest(rtts, majority(3)), milliseconds(136));
}

TEST(Estimators, MaxPropagates) {
  std::vector<Duration> rtts{milliseconds(1), Duration::max(), Duration::max()};
  EXPECT_EQ(kth_smallest(rtts, supermajority(3)), Duration::max());
}

}  // namespace
}  // namespace domino::measure
