#include "measure/proxy.h"

#include <gtest/gtest.h>

#include "measure/estimator.h"

namespace domino::measure {
namespace {

net::Topology three_dc() {
  return net::Topology{{"A", "B", "C"},
                       {{0.0, 20.0, 60.0}, {20.0, 0.0, 40.0}, {60.0, 40.0, 0.0}}};
}

class Responder : public rpc::Node {
 public:
  Responder(NodeId id, std::size_t dc, net::Network& network, Duration lr)
      : rpc::Node(id, dc, network), lr_(lr) {}

 protected:
  void on_packet(const net::Packet& packet) override {
    if (wire::peek_type(packet.payload) != wire::MessageType::kProbe) return;
    const auto probe = wire::decode_message<Probe>(packet.payload);
    send(packet.src, Prober::make_reply(probe, local_now(), lr_));
  }

 private:
  Duration lr_;
};

class FeedClient : public rpc::Node {
 public:
  FeedClient(NodeId id, std::size_t dc, net::Network& network, NodeId proxy)
      : rpc::Node(id, dc, network), proxy_(proxy), feed(*this) {}

  void start_polling(Duration interval) {
    timer_.start(context(), Duration::zero(), interval,
                 [this] { send(proxy_, ProxyQuery{}); });
  }

  NodeId proxy_;
  ProxyFeed feed;

 protected:
  void on_packet(const net::Packet& packet) override {
    if (wire::peek_type(packet.payload) != wire::MessageType::kProxyReport) return;
    feed.update(wire::decode_message<ProxyReport>(packet.payload));
  }

 private:
  rpc::RepeatingTimer timer_;
};

struct ProxyFixture : ::testing::Test {
  sim::Simulator simulator;
  net::Network network{simulator, three_dc(), 1};
  Responder r1{NodeId{1}, 1, network, milliseconds(40)};
  Responder r2{NodeId{2}, 2, network, milliseconds(80)};
  Proxy proxy{NodeId{50}, 0, network, {NodeId{1}, NodeId{2}}};
  FeedClient client{NodeId{100}, 0, network, NodeId{50}};

  void SetUp() override {
    r1.attach();
    r2.attach();
    proxy.attach();
    client.attach();
    proxy.start();
    client.start_polling(milliseconds(10));
  }
};

TEST_F(ProxyFixture, ReportRoundTripsOnWire) {
  ProxyReport report;
  report.percentile = 95.0;
  report.entries.push_back({NodeId{1}, milliseconds(20), milliseconds(10),
                            milliseconds(40), false});
  report.entries.push_back({NodeId{2}, Duration::max(), Duration::max(), Duration::max(),
                            true});
  const auto payload = wire::encode_message(report);
  const auto decoded = wire::decode_message<ProxyReport>(payload);
  ASSERT_EQ(decoded.entries.size(), 2u);
  EXPECT_EQ(decoded.percentile, 95.0);
  EXPECT_EQ(decoded.entries[0].rtt, milliseconds(20));
  EXPECT_TRUE(decoded.entries[1].failed);
}

TEST_F(ProxyFixture, FeedMatchesDirectMeasurement) {
  simulator.run_until(TimePoint::epoch() + seconds(2));
  // Proxy in A measures B at 20 ms, C at 60 ms; the co-located client's
  // feed reports the same values.
  EXPECT_NEAR(client.feed.rtt_estimate(NodeId{1}, 95).millis(), 20.0, 0.5);
  EXPECT_NEAR(client.feed.rtt_estimate(NodeId{2}, 95).millis(), 60.0, 0.5);
  EXPECT_NEAR(client.feed.owd_estimate(NodeId{1}, 95).millis(), 10.0, 0.5);
  EXPECT_EQ(client.feed.replication_latency_of(NodeId{1}), milliseconds(40));
  EXPECT_FALSE(client.feed.looks_failed(NodeId{1}));
}

TEST_F(ProxyFixture, EstimatorsWorkOverFeed) {
  simulator.run_until(TimePoint::epoch() + seconds(2));
  // LatDM over the feed = min(E_r + L_r) = min(20+40, 60+80) = 60.
  const auto dm = estimate_dm_latency(client.feed, {NodeId{1}, NodeId{2}});
  EXPECT_NEAR(dm.latency.millis(), 60.0, 1.0);
  EXPECT_EQ(dm.leader, NodeId{1});
}

TEST_F(ProxyFixture, StaleFeedReportsFailed) {
  simulator.run_until(TimePoint::epoch() + seconds(1));
  EXPECT_TRUE(client.feed.fresh());
  network.crash(NodeId{50});  // proxy dies; reports stop
  simulator.run_until(TimePoint::epoch() + seconds(3));
  EXPECT_FALSE(client.feed.fresh());
  EXPECT_TRUE(client.feed.looks_failed(NodeId{1}));
  EXPECT_EQ(client.feed.rtt_estimate(NodeId{1}, 95), Duration::max());
}

TEST_F(ProxyFixture, CrashedReplicaFlaggedThroughProxy) {
  simulator.run_until(TimePoint::epoch() + seconds(1));
  network.crash(NodeId{2});
  simulator.run_until(TimePoint::epoch() + seconds(3));
  EXPECT_TRUE(client.feed.looks_failed(NodeId{2}));
  EXPECT_FALSE(client.feed.looks_failed(NodeId{1}));
}

TEST_F(ProxyFixture, ProbeTrafficIndependentOfClientCount) {
  // Ten clients polling one proxy: the proxy still sends exactly
  // (replica count) probes per interval; without the proxy each client
  // would probe every replica itself.
  std::vector<std::unique_ptr<FeedClient>> clients;
  for (int i = 0; i < 10; ++i) {
    clients.push_back(std::make_unique<FeedClient>(NodeId{200 + (std::uint32_t)i}, 0,
                                                   network, NodeId{50}));
    clients.back()->attach();
    clients.back()->start_polling(milliseconds(10));
  }
  simulator.run_until(TimePoint::epoch() + seconds(1));
  // Probes from the proxy: 2 targets * ~100 rounds.
  EXPECT_NEAR(static_cast<double>(proxy.prober().probes_sent()), 200.0, 10.0);
  EXPECT_GT(proxy.queries_served(), 1000u);  // 11 clients * 100 polls
  for (const auto& c : clients) EXPECT_TRUE(c->feed.fresh());
}

}  // namespace
}  // namespace domino::measure
