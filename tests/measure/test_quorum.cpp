#include "measure/quorum.h"

#include <gtest/gtest.h>

namespace domino::measure {
namespace {

TEST(Quorum, FaultTolerance) {
  EXPECT_EQ(fault_tolerance(1), 0u);
  EXPECT_EQ(fault_tolerance(3), 1u);
  EXPECT_EQ(fault_tolerance(5), 2u);
  EXPECT_EQ(fault_tolerance(7), 3u);
  EXPECT_EQ(fault_tolerance(9), 4u);
}

TEST(Quorum, Majority) {
  EXPECT_EQ(majority(1), 1u);
  EXPECT_EQ(majority(3), 2u);
  EXPECT_EQ(majority(5), 3u);
  EXPECT_EQ(majority(7), 4u);
}

TEST(Quorum, SupermajorityMatchesPaperFootnote) {
  // ceil(3f/2) + 1 out of 2f + 1.
  EXPECT_EQ(supermajority(3), 3u);   // f=1: ceil(1.5)+1 = 3
  EXPECT_EQ(supermajority(5), 4u);   // f=2: 3+1 = 4
  EXPECT_EQ(supermajority(7), 6u);   // f=3: ceil(4.5)+1 = 6
  EXPECT_EQ(supermajority(9), 7u);   // f=4: 6+1 = 7
}

TEST(Quorum, SupermajorityAtLeastMajority) {
  for (std::size_t n = 1; n <= 21; n += 2) {
    EXPECT_GE(supermajority(n), majority(n));
    EXPECT_LE(supermajority(n), n);
  }
}

TEST(Quorum, FastQuorumIntersectionProperty) {
  // Any two supermajorities plus any majority must share a replica — the
  // Fast Paxos safety requirement (q >= n - f + ... equivalently
  // 2q + m > 2n with m = majority).
  for (std::size_t n = 3; n <= 21; n += 2) {
    const std::size_t q = supermajority(n);
    const std::size_t m = majority(n);
    EXPECT_GT(2 * q + m, 2 * n) << "n=" << n;
  }
}

}  // namespace
}  // namespace domino::measure
