#include "measure/prober.h"

#include <gtest/gtest.h>

#include "measure/estimator.h"

namespace domino::measure {
namespace {

net::Topology three_dc() {
  return net::Topology{{"A", "B", "C"},
                       {{0.0, 20.0, 60.0}, {20.0, 0.0, 40.0}, {60.0, 40.0, 0.0}}};
}

/// Replica that answers probes with a fixed replication-latency estimate.
class ProbeResponder : public rpc::Node {
 public:
  ProbeResponder(NodeId id, std::size_t dc, net::Network& network, Duration lr,
                 sim::LocalClock clock = {})
      : rpc::Node(id, dc, network, clock), lr_(lr) {}

 protected:
  void on_packet(const net::Packet& packet) override {
    if (wire::peek_type(packet.payload) != wire::MessageType::kProbe) return;
    const auto probe = wire::decode_message<Probe>(packet.payload);
    send(packet.src, Prober::make_reply(probe, local_now(), lr_));
  }

 private:
  Duration lr_;
};

/// Client node hosting a Prober.
class ProbingClient : public rpc::Node {
 public:
  ProbingClient(NodeId id, std::size_t dc, net::Network& network,
                std::vector<NodeId> targets, ProberConfig config = {},
                sim::LocalClock clock = {})
      : rpc::Node(id, dc, network, clock), prober(*this, std::move(targets), config) {}

  Prober prober;

 protected:
  void on_packet(const net::Packet& packet) override {
    if (wire::peek_type(packet.payload) != wire::MessageType::kProbeReply) return;
    prober.on_probe_reply(packet.src, wire::decode_message<ProbeReply>(packet.payload));
  }
};

struct ProberFixture : ::testing::Test {
  sim::Simulator simulator;
  net::Network network{simulator, three_dc(), 1};
  ProbeResponder r1{NodeId{1}, 1, network, milliseconds(40)};
  ProbeResponder r2{NodeId{2}, 2, network, milliseconds(80)};
  ProbingClient client{NodeId{100}, 0, network, {NodeId{1}, NodeId{2}}};

  void SetUp() override {
    r1.attach();
    r2.attach();
    client.attach();
    client.prober.start();
  }
};

TEST_F(ProberFixture, MeasuresRttPerTarget) {
  simulator.run_until(TimePoint::epoch() + seconds(2));
  // RTT A<->B = 20 ms, A<->C = 60 ms (constant links).
  EXPECT_NEAR(client.prober.rtt_estimate(NodeId{1}).millis(), 20.0, 0.5);
  EXPECT_NEAR(client.prober.rtt_estimate(NodeId{2}).millis(), 60.0, 0.5);
}

TEST_F(ProberFixture, MeasuresOwdWithoutSkew) {
  simulator.run_until(TimePoint::epoch() + seconds(2));
  EXPECT_NEAR(client.prober.owd_estimate(NodeId{1}).millis(), 10.0, 0.5);
  EXPECT_NEAR(client.prober.owd_estimate(NodeId{2}).millis(), 30.0, 0.5);
}

TEST_F(ProberFixture, TracksReplicationLatency) {
  simulator.run_until(TimePoint::epoch() + seconds(1));
  EXPECT_EQ(client.prober.replication_latency_of(NodeId{1}), milliseconds(40));
  EXPECT_EQ(client.prober.replication_latency_of(NodeId{2}), milliseconds(80));
}

TEST_F(ProberFixture, UnmeasuredTargetReportsMax) {
  EXPECT_EQ(client.prober.rtt_estimate(NodeId{1}), Duration::max());  // before any run
}

TEST_F(ProberFixture, FailedTargetDetectedByTimeout) {
  simulator.run_until(TimePoint::epoch() + seconds(1));
  EXPECT_FALSE(client.prober.looks_failed(NodeId{1}));
  network.crash(NodeId{1});
  simulator.run_until(TimePoint::epoch() + seconds(2));
  EXPECT_TRUE(client.prober.looks_failed(NodeId{1}));
  EXPECT_EQ(client.prober.rtt_estimate(NodeId{1}), Duration::max());
  // The healthy target is unaffected.
  EXPECT_FALSE(client.prober.looks_failed(NodeId{2}));
}

TEST_F(ProberFixture, ProbeCountMatchesRate) {
  simulator.run_until(TimePoint::epoch() + seconds(1) - milliseconds(1));
  client.prober.stop();
  // 10 ms interval, 2 targets, first probe at t=0: 100 rounds in [0, 999].
  EXPECT_EQ(client.prober.probes_sent(), 200u);
}

TEST(Prober, OwdIncludesClockSkew) {
  // A replica whose clock is 5 ms ahead inflates the measured OWD by 5 ms —
  // by design (Section 5.4 folds skew into arrival predictions).
  sim::Simulator simulator;
  net::Network network(simulator, three_dc(), 1);
  ProbeResponder skewed(NodeId{1}, 1, network, Duration::zero(),
                        sim::LocalClock{milliseconds(5), 0.0});
  ProbingClient client(NodeId{100}, 0, network, {NodeId{1}});
  skewed.attach();
  client.attach();
  client.prober.start();
  simulator.run_until(TimePoint::epoch() + seconds(1));
  EXPECT_NEAR(client.prober.owd_estimate(NodeId{1}).millis(), 15.0, 0.5);
  // RTT is unaffected by skew.
  EXPECT_NEAR(client.prober.rtt_estimate(NodeId{1}).millis(), 20.0, 0.5);
}

TEST(Prober, SelfTargetIsZero) {
  sim::Simulator simulator;
  net::Network network(simulator, three_dc(), 1);
  ProbingClient client(NodeId{100}, 0, network, {NodeId{100}});
  client.attach();
  EXPECT_EQ(client.prober.rtt_estimate(NodeId{100}), Duration::zero());
  EXPECT_EQ(client.prober.owd_estimate(NodeId{100}), Duration::zero());
}

}  // namespace
}  // namespace domino::measure
