#include <gtest/gtest.h>

#include "mencius/client.h"
#include "mencius/replica.h"
#include "support/fixtures.h"

namespace domino::mencius {
namespace {

using test::four_dc;
using test::make_command;
using test::replica_ids;

struct MenciusCluster : ::testing::Test {
  sim::Simulator simulator;
  net::Network network{simulator, four_dc(), 1};
  std::vector<NodeId> rids = replica_ids(3);
  std::vector<std::unique_ptr<Replica>> replicas;

  void SetUp() override {
    for (std::size_t i = 0; i < 3; ++i) {
      replicas.push_back(std::make_unique<Replica>(rids[i], i, network, rids));
      replicas.back()->attach();
      replicas.back()->start();
    }
  }

  std::unique_ptr<Client> make_client(NodeId id, std::size_t dc, NodeId coordinator) {
    auto c = std::make_unique<Client>(id, dc, network, coordinator);
    c->attach();
    return c;
  }
};

TEST_F(MenciusCluster, RanksFollowReplicaOrder) {
  EXPECT_EQ(replicas[0]->rank(), 0u);
  EXPECT_EQ(replicas[1]->rank(), 1u);
  EXPECT_EQ(replicas[2]->rank(), 2u);
}

TEST_F(MenciusCluster, SingleRequestCommits) {
  auto client = make_client(NodeId{1000}, 0, rids[0]);
  client->submit(make_command(client->id(), 0));
  simulator.run_until(TimePoint::epoch() + seconds(1));
  EXPECT_EQ(client->committed_count(), 1u);
  EXPECT_EQ(replicas[0]->owned_proposals(), 1u);
}

TEST_F(MenciusCluster, OwnedInstancesUseOwnResidues) {
  auto client = make_client(NodeId{1000}, 1, rids[1]);
  client->submit(make_command(client->id(), 0));
  client->submit(make_command(client->id(), 1));
  simulator.run_until(TimePoint::epoch() + seconds(1));
  // Replica 1 owns indices 1, 4, 7...; its first two proposals are at 1, 4.
  EXPECT_NE(replicas[0]->log().entry(1), nullptr);
  EXPECT_NE(replicas[0]->log().entry(4), nullptr);
}

TEST_F(MenciusCluster, SkipsFillForeignLanes) {
  auto client = make_client(NodeId{1000}, 0, rids[0]);
  client->submit(make_command(client->id(), 0));
  simulator.run_until(TimePoint::epoch() + seconds(1));
  // Instance 0 committed and executed everywhere despite lanes 1, 2 idle:
  // heartbeat skips unblocked them.
  for (const auto& r : replicas) {
    EXPECT_GE(r->log().execution_frontier(), 1u);
  }
}

TEST_F(MenciusCluster, ConcurrentProposersConverge) {
  auto c0 = make_client(NodeId{1000}, 0, rids[0]);
  auto c1 = make_client(NodeId{1001}, 1, rids[1]);
  auto c2 = make_client(NodeId{1002}, 2, rids[2]);
  for (std::uint64_t s = 0; s < 30; ++s) {
    c0->submit(make_command(c0->id(), s, "k" + std::to_string(s % 7)));
    c1->submit(make_command(c1->id(), s, "k" + std::to_string(s % 5)));
    c2->submit(make_command(c2->id(), s, "k" + std::to_string(s % 3)));
  }
  simulator.run_until(TimePoint::epoch() + seconds(3));
  EXPECT_EQ(c0->committed_count(), 30u);
  EXPECT_EQ(c1->committed_count(), 30u);
  EXPECT_EQ(c2->committed_count(), 30u);
  const auto& ref = replicas[0]->store().items();
  for (const auto& r : replicas) EXPECT_EQ(r->store().items(), ref);
}

TEST_F(MenciusCluster, ExecutionOrderIdenticalAcrossReplicas) {
  test::ExecTrace traces[3];
  for (std::size_t i = 0; i < 3; ++i) replicas[i]->set_execute_hook(std::ref(traces[i]));
  auto c0 = make_client(NodeId{1000}, 0, rids[0]);
  auto c2 = make_client(NodeId{1002}, 2, rids[2]);
  for (std::uint64_t s = 0; s < 20; ++s) {
    c0->submit(make_command(c0->id(), s));
    c2->submit(make_command(c2->id(), s));
  }
  simulator.run_until(TimePoint::epoch() + seconds(3));
  ASSERT_EQ(traces[0].order.size(), 40u);
  EXPECT_EQ(traces[0].order, traces[1].order);
  EXPECT_EQ(traces[0].order, traces[2].order);
}

TEST_F(MenciusCluster, CommitWaitsForEarlierInstances) {
  // A proposal at replica 2 (instance 2) cannot be answered before replica
  // 2 learns instances 0 and 1 are resolved. With idle lanes 0 and 1, the
  // resolution comes from heartbeat skips (up to 10 ms) — so commit latency
  // exceeds the bare majority round trip.
  auto client = make_client(NodeId{1000}, 2, rids[2]);
  TimePoint committed;
  client->set_commit_hook([&](const RequestId&, TimePoint, TimePoint at) { committed = at; });
  client->submit(make_command(client->id(), 0));
  simulator.run_until(TimePoint::epoch() + seconds(1));
  // Majority round from C: nearest peer D? No — replicas are in A, B, C;
  // from C the nearest is B (30 ms RTT). Client is co-located (0.5 ms).
  const double ms = (committed - TimePoint::epoch()).millis();
  EXPECT_GE(ms, 10.0);  // at least the majority round trip
  EXPECT_LE(ms, 45.0);  // but bounded by round trip + heartbeat slack
}

TEST_F(MenciusCluster, LoadRunAllCommitted) {
  auto client = make_client(NodeId{1000}, 1, rids[1]);
  sm::WorkloadConfig wc;
  wc.num_keys = 50;
  sm::WorkloadGenerator gen(wc, 3);
  client->start_load(gen, 400.0);
  simulator.run_until(TimePoint::epoch() + seconds(2));
  client->stop_load();
  simulator.run_until(TimePoint::epoch() + seconds(4));
  EXPECT_GT(client->submitted_count(), 700u);
  EXPECT_EQ(client->committed_count(), client->submitted_count());
}

}  // namespace
}  // namespace domino::mencius
