// SLO engine: ceiling/floor rules, burn grouping, steady-state detection
// against a pre-fault baseline, and the slo.* metric surface.
#include "obs/slo.h"

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "obs/timeseries.h"

namespace domino::obs {
namespace {

TimePoint at_ms(std::int64_t v) { return TimePoint::epoch() + milliseconds(v); }

// Ten 100ms windows of one latency histogram ("lat", p95 per comment) and
// one throughput counter ("ops", 50/window = 500/s):
//   windows 0..4: lat 500   windows 5..7: lat 2000   windows 8..9: lat 500
struct Fixture {
  MetricsRegistry reg;
  Timeseries ts;

  Fixture() {
    auto& h = reg.histogram("lat");
    auto& c = reg.counter("ops");
    for (int w = 0; w < 10; ++w) {
      const std::int64_t v = (w >= 5 && w <= 7) ? 2000 : 500;
      for (int i = 0; i < 10; ++i) h.record(v);
      c.inc(50);
      ts.sample(reg, at_ms(100 * (w + 1)));
    }
  }
};

SloRule ceiling(double threshold_ns, std::size_t burn = 2) {
  SloRule r;
  r.name = "commit_p95";
  r.metric = "lat";
  r.kind = SloRule::Kind::kLatencyCeiling;
  r.percentile = 95.0;
  r.threshold = threshold_ns;
  r.burn_windows = burn;
  return r;
}

TEST(SloRules, CeilingBreachesAndBurns) {
  Fixture f;
  SloConfig cfg;
  cfg.rules.push_back(ceiling(1000.0));
  cfg.steady_metric.clear();

  const SloReport rep = evaluate_slo(f.ts, cfg, {});
  ASSERT_EQ(rep.rules.size(), 1u);
  const SloRuleResult& r = rep.rules[0];
  EXPECT_EQ(r.windows_evaluated, 10u);
  EXPECT_EQ(r.windows_breached, 3u);
  EXPECT_EQ(r.burns, 1u);  // one maximal run of >= 2
  EXPECT_EQ(r.longest_burn_windows, 3u);
  EXPECT_EQ(r.first_breach_ns, at_ms(600).nanos());
  // Worst value is the windowed p95 bucket bound for 2000, clamped to the
  // recorded max.
  EXPECT_GE(r.worst_value, 2000.0);
  EXPECT_EQ(rep.total_breaches(), 3u);
  EXPECT_EQ(rep.total_burns(), 1u);
}

TEST(SloRules, UnbreachedCeilingIsClean) {
  Fixture f;
  SloConfig cfg;
  cfg.rules.push_back(ceiling(1e9));
  cfg.steady_metric.clear();
  const SloReport rep = evaluate_slo(f.ts, cfg, {});
  EXPECT_EQ(rep.rules[0].windows_breached, 0u);
  EXPECT_EQ(rep.rules[0].burns, 0u);
  EXPECT_EQ(rep.rules[0].first_breach_ns, -1);
}

TEST(SloRules, RateFloorReadsPerSecondRate) {
  Fixture f;
  SloRule r;
  r.name = "throughput";
  r.metric = "ops";
  r.kind = SloRule::Kind::kRateFloor;
  r.threshold = 600.0;  // every window runs at 500/s -> all breach
  r.burn_windows = 10;
  SloConfig cfg;
  cfg.rules.push_back(r);
  cfg.steady_metric.clear();

  const SloReport rep = evaluate_slo(f.ts, cfg, {});
  EXPECT_EQ(rep.rules[0].windows_evaluated, 10u);
  EXPECT_EQ(rep.rules[0].windows_breached, 10u);
  EXPECT_EQ(rep.rules[0].burns, 1u);
  EXPECT_DOUBLE_EQ(rep.rules[0].worst_value, 500.0);
}

TEST(SloRules, MissingMetricEvaluatesNothing) {
  Fixture f;
  SloRule r = ceiling(1.0);
  r.metric = "no.such.metric";
  SloConfig cfg;
  cfg.rules.push_back(r);
  cfg.steady_metric.clear();
  const SloReport rep = evaluate_slo(f.ts, cfg, {});
  EXPECT_EQ(rep.rules[0].windows_evaluated, 0u);
  EXPECT_EQ(rep.rules[0].windows_breached, 0u);
}

TEST(SloSteadyState, LatencyRecoversAfterFault) {
  Fixture f;
  SloConfig cfg;
  cfg.steady_metric = "lat";
  cfg.steady_percentile = 95.0;
  cfg.steady_tolerance = 0.25;
  cfg.steady_windows = 2;

  const std::vector<FaultInstant> faults = {{at_ms(500), "crash", NodeId{1}}};
  const SloReport rep = evaluate_slo(f.ts, cfg, faults);
  ASSERT_EQ(rep.steady.size(), 1u);
  const SteadyStateResult& s = rep.steady[0];
  EXPECT_TRUE(s.reached);
  // Baseline: windows 0..4 (all pre-fault). Windows 5..7 are out of
  // tolerance; 8 and 9 settle, so steady is declared at window 9's end.
  EXPECT_EQ(s.settle_window, 8u);
  EXPECT_EQ(s.time_to_steady.nanos(), (at_ms(1000) - at_ms(500)).nanos());
  EXPECT_GT(s.baseline, 0.0);
  EXPECT_TRUE(rep.all_settled());
}

TEST(SloSteadyState, NeverRecoversWhenDegradationPersists) {
  MetricsRegistry reg;
  auto& h = reg.histogram("lat");
  Timeseries ts;
  for (int w = 0; w < 10; ++w) {
    const std::int64_t v = w < 5 ? 500 : 5000;  // degraded forever after
    for (int i = 0; i < 10; ++i) h.record(v);
    ts.sample(reg, at_ms(100 * (w + 1)));
  }
  SloConfig cfg;
  cfg.steady_metric = "lat";
  cfg.steady_windows = 2;
  const SloReport rep =
      evaluate_slo(ts, cfg, {{at_ms(500), "degrade_start", NodeId::invalid()}});
  ASSERT_EQ(rep.steady.size(), 1u);
  EXPECT_FALSE(rep.steady[0].reached);
  EXPECT_FALSE(rep.all_settled());
}

TEST(SloSteadyState, ImprovementCountsAsSteady) {
  MetricsRegistry reg;
  auto& h = reg.histogram("lat");
  Timeseries ts;
  for (int w = 0; w < 6; ++w) {
    const std::int64_t v = w < 3 ? 1000 : 100;  // faster after the "fault"
    for (int i = 0; i < 10; ++i) h.record(v);
    ts.sample(reg, at_ms(100 * (w + 1)));
  }
  SloConfig cfg;
  cfg.steady_metric = "lat";
  cfg.steady_windows = 2;
  const SloReport rep =
      evaluate_slo(ts, cfg, {{at_ms(300), "route_change", NodeId::invalid()}});
  EXPECT_TRUE(rep.steady[0].reached);
  EXPECT_EQ(rep.steady[0].settle_window, 3u);
}

TEST(SloSteadyState, EvaluateUntilCutsOffDrainedWindows) {
  Fixture f;
  SloConfig cfg;
  cfg.steady_metric = "lat";
  cfg.steady_windows = 2;
  cfg.evaluate_until = at_ms(800);  // settle windows 8..9 are out of scope
  const SloReport rep = evaluate_slo(f.ts, cfg, {{at_ms(500), "crash", NodeId{1}}});
  EXPECT_FALSE(rep.steady[0].reached);
}

TEST(SloSteadyState, RateMetricUsesFloorTolerance) {
  MetricsRegistry reg;
  auto& c = reg.counter("ops");
  Timeseries ts;
  // 500/s baseline, a two-window dip to 100/s, then recovery.
  const std::uint64_t deltas[8] = {50, 50, 50, 10, 10, 50, 50, 50};
  for (int w = 0; w < 8; ++w) {
    c.inc(deltas[w]);
    ts.sample(reg, at_ms(100 * (w + 1)));
  }
  SloConfig cfg;
  cfg.steady_metric = "ops";
  cfg.steady_tolerance = 0.25;
  cfg.steady_windows = 2;
  const SloReport rep = evaluate_slo(ts, cfg, {{at_ms(300), "crash", NodeId{2}}});
  ASSERT_EQ(rep.steady.size(), 1u);
  EXPECT_TRUE(rep.steady[0].reached);
  EXPECT_EQ(rep.steady[0].settle_window, 5u);
  EXPECT_DOUBLE_EQ(rep.steady[0].baseline, 500.0);
}

TEST(SloMetrics, PublishSurfacesRuleAndSteadyCounters) {
  Fixture f;
  SloConfig cfg;
  cfg.rules.push_back(ceiling(1000.0));
  cfg.steady_metric = "lat";
  cfg.steady_windows = 2;
  const SloReport rep = evaluate_slo(f.ts, cfg, {{at_ms(500), "crash", NodeId{1}}});

  MetricsRegistry out;
  publish_slo_metrics(rep, out);
  const auto* breached = out.find_counter("slo.rule.commit_p95.windows_breached");
  ASSERT_NE(breached, nullptr);
  EXPECT_EQ(breached->value(), 3u);
  const auto* burns = out.find_counter("slo.rule.commit_p95.burns");
  ASSERT_NE(burns, nullptr);
  EXPECT_EQ(burns->value(), 1u);
  const auto* reached = out.find_counter("slo.steady.reached");
  ASSERT_NE(reached, nullptr);
  EXPECT_EQ(reached->value(), 1u);
  const auto* tts = out.find_histogram("slo.steady.time_to_steady_ns");
  ASSERT_NE(tts, nullptr);
  EXPECT_EQ(tts->count(), 1u);
}

TEST(SloExport, JsonIsByteStableAndCarriesBothBlocks) {
  Fixture f;
  SloConfig cfg;
  cfg.rules.push_back(ceiling(1000.0));
  cfg.steady_metric = "lat";
  const std::vector<FaultInstant> faults = {{at_ms(500), "crash", NodeId{1}}};
  const SloReport a = evaluate_slo(f.ts, cfg, faults);
  const SloReport b = evaluate_slo(f.ts, cfg, faults);

  std::string ja, jb;
  append_slo_json(ja, a);
  append_slo_json(jb, b);
  EXPECT_EQ(ja, jb);
  EXPECT_NE(ja.find("\"rules\":["), std::string::npos);
  EXPECT_NE(ja.find("\"steady_state\":["), std::string::npos);
  EXPECT_NE(ja.find("\"fault_kind\":\"crash\""), std::string::npos);
}

}  // namespace
}  // namespace domino::obs
