// SpanStore unit tests plus end-to-end trace-context propagation across a
// simulated RPC hop: a root span's context piggybacks on the request, the
// receiver's handler span links back through a message edge, and the reply
// links the round trip.
#include "obs/span.h"

#include <gtest/gtest.h>

#include "measure/messages.h"
#include "net/network.h"
#include "rpc/node.h"
#include "sim/simulator.h"

namespace domino::obs {
namespace {

TEST(SpanStore, OpenCloseAndLookup) {
  SpanStore store;
  const SpanId root = store.open_root(9, NodeId{1000}, "command", TimePoint::epoch());
  ASSERT_NE(root, 0u);
  EXPECT_EQ(store.root_of(9), root);
  EXPECT_TRUE(store.span(root)->root);

  const SpanId child = store.open(9, root, NodeId{0}, "child",
                                  TimePoint::epoch() + milliseconds(5));
  ASSERT_NE(child, 0u);
  EXPECT_EQ(store.span(child)->parent, root);
  EXPECT_FALSE(store.span(child)->root);

  store.close(child, TimePoint::epoch() + milliseconds(8));
  EXPECT_EQ(store.span(child)->end, TimePoint::epoch() + milliseconds(8));

  EXPECT_EQ(store.span(0), nullptr);
  EXPECT_EQ(store.span(99), nullptr);
  EXPECT_EQ(store.root_of(12345), 0u);
}

TEST(SpanStore, FirstRootWins) {
  SpanStore store;
  const SpanId a = store.open_root(5, NodeId{1}, "command", TimePoint::epoch());
  const SpanId b =
      store.open_root(5, NodeId{2}, "command", TimePoint::epoch() + milliseconds(1));
  EXPECT_NE(a, b);
  EXPECT_EQ(store.root_of(5), a);
}

TEST(SpanStore, OverflowDropsAndCounts) {
  SpanStore store(/*max_spans=*/2, /*max_edges=*/1);
  EXPECT_NE(store.open(1, 0, NodeId{0}, "a", TimePoint::epoch()), 0u);
  EXPECT_NE(store.open(1, 0, NodeId{0}, "b", TimePoint::epoch()), 0u);
  EXPECT_EQ(store.open(1, 0, NodeId{0}, "c", TimePoint::epoch()), 0u);
  EXPECT_EQ(store.dropped_spans(), 1u);

  EXPECT_EQ(store.add_edge(1, 1, NodeId{0}, NodeId{1}, TimePoint::epoch(),
                           TimePoint::epoch(), 0),
            0);
  EXPECT_EQ(store.add_edge(1, 1, NodeId{0}, NodeId{1}, TimePoint::epoch(),
                           TimePoint::epoch(), 0),
            -1);
  EXPECT_EQ(store.dropped_edges(), 1u);

  // close / bind on dropped records are safe no-ops.
  store.close(0, TimePoint::epoch());
  store.bind_edge_target(-1, 1);
}

// ---------------------------------------------------------------------------
// Propagation across a simulated RPC hop.

net::Topology two_dc() { return net::Topology{{"A", "B"}, {{0.0, 10.0}, {10.0, 0.0}}}; }

class PingNode : public rpc::Node {
 public:
  using Node::Node;
  SpanId root = 0;
  int replies = 0;

  /// Open a root span and send a traced probe inside its context.
  void start(NodeId dst) {
    root = span_store()->open_root(/*trace=*/1, id(), "command", true_now());
    set_active_span(TraceContext{1, root});
    measure::Probe p;
    p.seq = 1;
    send(dst, p);
    clear_active_span();
    // After the traced proposal, sends are untraced again.
    measure::Probe untraced;
    untraced.seq = 2;
    send(dst, untraced);
  }

 protected:
  void on_packet(const net::Packet& packet) override {
    if (wire::peek_type(packet.payload) == wire::MessageType::kProbe) {
      const auto probe = wire::decode_message<measure::Probe>(packet.payload);
      if (probe.seq != 1) return;  // the untraced probe gets no reply
      measure::ProbeReply reply;
      reply.seq = probe.seq;
      send(packet.src, reply);  // inside the handler span: stays traced
    } else {
      ++replies;
    }
  }
};

TEST(SpanPropagation, RoundTripLinksSpansThroughEdges) {
  sim::Simulator simulator;
  net::Network network(simulator, two_dc(), 1);
  SpanStore store;
  obs::Sink sink;
  sink.spans = &store;
  network.bind_obs(sink);

  PingNode a(NodeId{1000}, 0, network);
  PingNode b(NodeId{0}, 1, network);
  a.attach();
  b.attach();
  a.start(b.id());
  simulator.run();

  EXPECT_EQ(a.replies, 1);
  // Spans: root on A, Probe handler on B, ProbeReply handler on A. The
  // untraced probe must not have produced a handler span.
  ASSERT_EQ(store.spans().size(), 3u);
  const Span& root = store.spans()[0];
  const Span& handler_b = store.spans()[1];
  const Span& handler_a = store.spans()[2];
  EXPECT_TRUE(root.root);
  EXPECT_EQ(root.node, a.id());
  EXPECT_EQ(handler_b.parent, root.id);
  EXPECT_EQ(handler_b.node, b.id());
  EXPECT_STREQ(handler_b.name, "Probe");
  EXPECT_EQ(handler_a.parent, handler_b.id);
  EXPECT_EQ(handler_a.node, a.id());
  EXPECT_STREQ(handler_a.name, "ProbeReply");

  // Edges: request A->B, reply B->A, with FIFO send/recv stamps.
  ASSERT_EQ(store.edges().size(), 2u);
  const MsgEdge& request = store.edges()[0];
  const MsgEdge& reply = store.edges()[1];
  EXPECT_EQ(request.from_span, root.id);
  EXPECT_EQ(request.to_span, handler_b.id);
  EXPECT_EQ(request.src, a.id());
  EXPECT_EQ(request.dst, b.id());
  EXPECT_LT(request.sent_at, request.recv_at);  // 10 ms one-way delay
  EXPECT_EQ(reply.from_span, handler_b.id);
  EXPECT_EQ(reply.to_span, handler_a.id);
  EXPECT_EQ(reply.sent_at, request.recv_at);  // sent from inside the handler
  EXPECT_LT(reply.sent_at, reply.recv_at);
  EXPECT_EQ(handler_b.in_edge, 0);
  EXPECT_EQ(handler_a.in_edge, 1);
}

}  // namespace
}  // namespace domino::obs
