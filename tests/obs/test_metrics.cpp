#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/export.h"

namespace domino::obs {
namespace {

TEST(Counter, IncrementAndReset) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Gauge, TracksValueAndHighWater) {
  Gauge g;
  g.set(5);
  g.update_max();
  g.set(2);
  g.update_max();
  EXPECT_EQ(g.value(), 2);
  EXPECT_EQ(g.max(), 5);
  g.add(10);
  g.update_max();
  EXPECT_EQ(g.value(), 12);
  EXPECT_EQ(g.max(), 12);
  g.reset();
  EXPECT_EQ(g.value(), 0);
  EXPECT_EQ(g.max(), 0);
}

TEST(Histogram, SmallValuesAreExact) {
  Histogram h;
  for (std::int64_t v = 0; v < 8; ++v) h.record(v);
  for (std::size_t i = 0; i < 8; ++i) EXPECT_EQ(h.bucket_count(i), 1u);
  EXPECT_EQ(h.count(), 8u);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 7);
  EXPECT_DOUBLE_EQ(h.mean(), 3.5);
}

TEST(Histogram, PercentileWithinRelativeErrorBound) {
  Histogram h;
  // Values spread over five decades.
  std::vector<std::int64_t> values;
  for (std::int64_t v = 1; v <= 100000; v = v * 5 / 4 + 1) values.push_back(v);
  for (std::int64_t v : values) h.record(v);
  // Same nearest-rank convention as Histogram::percentile; the bucket
  // answer may overshoot the exact order statistic by at most one
  // sub-bucket width (12.5%), and never undershoots.
  for (double p : {10.0, 50.0, 90.0, 99.0}) {
    const auto rank = std::max<std::size_t>(
        1, static_cast<std::size_t>(
               std::ceil(p / 100.0 * static_cast<double>(values.size()))));
    const std::int64_t exact = values[rank - 1];  // values are ascending
    const std::int64_t est = h.percentile(p);
    EXPECT_GE(est, exact) << "p" << p;
    EXPECT_LE(est, exact + exact / 8 + 1) << "p" << p;
  }
}

TEST(Histogram, PercentileEdgeCases) {
  Histogram h;
  EXPECT_EQ(h.percentile(50), 0);  // empty
  h.record(std::int64_t{1000});
  EXPECT_EQ(h.percentile(0), h.percentile(100));
  // p100 is clamped to the exact max, not the bucket bound.
  EXPECT_EQ(h.percentile(100), 1000);
}

TEST(Histogram, NegativeValuesClampToZero) {
  Histogram h;
  h.record(std::int64_t{-5});
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.bucket_count(0), 1u);
}

TEST(Histogram, Reset) {
  Histogram h;
  h.record(std::int64_t{123456});
  h.reset();
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.max(), 0);
  EXPECT_EQ(h.percentile(99), 0);
}

TEST(Registry, FindOrCreateReturnsSameInstance) {
  MetricsRegistry reg;
  Counter& a = reg.counter("x");
  Counter& b = reg.counter("x");
  EXPECT_EQ(&a, &b);
  a.inc();
  EXPECT_EQ(reg.find_counter("x")->value(), 1u);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(Registry, KindMismatchThrows) {
  MetricsRegistry reg;
  reg.counter("m");
  EXPECT_THROW((void)reg.gauge("m"), std::logic_error);
  EXPECT_THROW((void)reg.histogram("m"), std::logic_error);
  EXPECT_EQ(reg.find_gauge("m"), nullptr);
  EXPECT_EQ(reg.find_histogram("m"), nullptr);
}

TEST(Registry, ResetZeroesButKeepsRegistrations) {
  MetricsRegistry reg;
  Counter& c = reg.counter("c");
  Histogram& h = reg.histogram("h");
  c.inc(7);
  h.record(std::int64_t{99});
  reg.reset();
  EXPECT_EQ(reg.size(), 2u);
  EXPECT_EQ(c.value(), 0u);  // same instance, zeroed
  EXPECT_TRUE(h.empty());
}

TEST(Registry, VisitInNameOrder) {
  MetricsRegistry reg;
  reg.counter("zeta");
  reg.gauge("alpha");
  reg.histogram("mid");
  std::vector<std::string> order;
  reg.visit([&](const std::string& name, const Counter*, const Gauge*, const Histogram*) {
    order.push_back(name);
  });
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], "alpha");
  EXPECT_EQ(order[1], "mid");
  EXPECT_EQ(order[2], "zeta");
}

TEST(Handles, NullHandlesAreSafeNoOps) {
  CounterHandle c;
  GaugeHandle g;
  HistogramHandle h;
  EXPECT_FALSE(c.enabled());
  EXPECT_FALSE(g.enabled());
  EXPECT_FALSE(h.enabled());
  c.inc();
  g.set(5);
  g.add(1);
  h.record(std::int64_t{10});
  h.record(milliseconds(1));  // nothing to assert beyond "does not crash"
}

TEST(Handles, BoundHandlesForward) {
  MetricsRegistry reg;
  CounterHandle c{&reg.counter("c")};
  GaugeHandle g{&reg.gauge("g")};
  HistogramHandle h{&reg.histogram("h")};
  c.inc(3);
  g.set(9);
  g.set(4);
  h.record(milliseconds(2));
  EXPECT_EQ(reg.find_counter("c")->value(), 3u);
  EXPECT_EQ(reg.find_gauge("g")->value(), 4);
  EXPECT_EQ(reg.find_gauge("g")->max(), 9);
  EXPECT_EQ(reg.find_histogram("h")->count(), 1u);
  EXPECT_EQ(reg.find_histogram("h")->max(), 2000000);
}

TEST(Export, MetricsJsonAndCsvAreDeterministic) {
  MetricsRegistry reg;
  reg.counter("b.count").inc(2);
  reg.gauge("a.depth").set(3);
  reg.histogram("c.lat").record(std::int64_t{1500});
  const std::string json = metrics_to_json(reg);
  EXPECT_NE(json.find("\"b.count\":2"), std::string::npos);
  EXPECT_NE(json.find("\"a.depth\""), std::string::npos);
  EXPECT_NE(json.find("\"c.lat\""), std::string::npos);
  // Name order: the gauge section lists a.depth, counters b.count, etc.;
  // re-exporting yields identical bytes.
  EXPECT_EQ(json, metrics_to_json(reg));
  const std::string csv = metrics_to_csv(reg);
  EXPECT_NE(csv.find("counter,b.count"), std::string::npos);
  EXPECT_EQ(csv, metrics_to_csv(reg));
}

}  // namespace
}  // namespace domino::obs
