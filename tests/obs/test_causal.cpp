// Critical-path analyzer tests on hand-built span DAGs with known answers.
#include "obs/causal.h"

#include <gtest/gtest.h>

#include "wire/message.h"

namespace domino::obs {
namespace {

TimePoint at(std::int64_t ms) { return TimePoint::epoch() + milliseconds(ms); }

constexpr NodeId kClient{1000};
constexpr NodeId kLeader{0};
constexpr NodeId kFollower{1};

/// Build the classic Multi-Paxos chain:
///   client --ClientRequest[0,20]--> leader --Accept[20,40]--> follower
///   --AcceptReply[40,60]--> leader --ClientReply[60,80]--> client commit.
struct PaxosChain {
  SpanStore store;
  RequestId request{kClient, 7};
  TraceId trace = trace_id_of(request);
  SpanId root, h_req, h_accept, h_reply, h_commit;

  PaxosChain() {
    using MT = wire::MessageType;
    root = store.open_root(trace, kClient, "command", at(0));
    const auto hop = [this](SpanId from, NodeId src, NodeId dst, std::int64_t s,
                            std::int64_t r, MT type) {
      const auto tag = static_cast<std::uint16_t>(type);
      const std::int32_t e = store.add_edge(trace, from, src, dst, at(s), at(r), tag);
      const SpanId h = store.open(trace, from, dst, wire::message_type_name(type), at(r),
                                  tag, e);
      store.bind_edge_target(e, h);
      store.close(h, at(r));
      return h;
    };
    h_req = hop(root, kClient, kLeader, 0, 20, MT::kPaxosClientRequest);
    h_accept = hop(h_req, kLeader, kFollower, 20, 40, MT::kPaxosAccept);
    h_reply = hop(h_accept, kFollower, kLeader, 40, 60, MT::kPaxosAcceptReply);
    h_commit = hop(h_reply, kLeader, kClient, 60, 80, MT::kPaxosClientReply);
    store.close(root, at(80));
    store.note_commit(trace, request, at(80), h_commit);
  }
};

TEST(CriticalPath, PaxosChainKnownAnswer) {
  PaxosChain c;
  const auto paths = critical_paths(c.store);
  ASSERT_EQ(paths.size(), 1u);
  const CommandPath& p = paths[0];
  EXPECT_EQ(p.request, c.request);
  EXPECT_EQ(p.submitted_at, at(0));
  EXPECT_EQ(p.committed_at, at(80));
  EXPECT_EQ(p.total(), milliseconds(80));

  ASSERT_EQ(p.segments.size(), 4u);
  EXPECT_STREQ(p.segments[0].phase, "request_transit");
  EXPECT_STREQ(p.segments[1].phase, "accept_transit");
  EXPECT_STREQ(p.segments[2].phase, "quorum_wait");
  EXPECT_STREQ(p.segments[3].phase, "reply_transit");
  // The quorum-wait segment names the straggler replica as sender.
  EXPECT_EQ(p.segments[2].node, kFollower);
  EXPECT_EQ(p.segments[2].peer, kLeader);
  // Chronological, contiguous tiling of [submit, commit].
  Duration sum = Duration::zero();
  TimePoint cursor = p.submitted_at;
  for (const PathSegment& s : p.segments) {
    EXPECT_EQ(s.begin, cursor);
    EXPECT_LT(s.begin, s.end);
    cursor = s.end;
    sum += s.duration();
  }
  EXPECT_EQ(cursor, p.committed_at);
  EXPECT_EQ(sum, p.total());
}

TEST(CriticalPath, UntracedCommitIsOneOpaqueWait) {
  SpanStore store;
  const RequestId request{kClient, 3};
  const TraceId trace = trace_id_of(request);
  store.open_root(trace, kClient, "command", at(0));
  store.note_commit(trace, request, at(50), /*via_span=*/0);

  const auto paths = critical_paths(store);
  ASSERT_EQ(paths.size(), 1u);
  ASSERT_EQ(paths[0].segments.size(), 1u);
  EXPECT_STREQ(paths[0].segments[0].phase, "untraced_wait");
  EXPECT_EQ(paths[0].segments[0].duration(), milliseconds(50));
}

TEST(CriticalPath, RetryAttributesWaitBeforeTheCommittingAttempt) {
  // The committing attempt leaves the root at t=50 (a retry); [0,50] is the
  // time lost to the failed first attempt.
  SpanStore store;
  const RequestId request{kClient, 4};
  const TraceId trace = trace_id_of(request);
  const SpanId root = store.open_root(trace, kClient, "command", at(0));
  const auto tag = static_cast<std::uint16_t>(wire::MessageType::kDmPropose);
  const std::int32_t e = store.add_edge(trace, root, kClient, kLeader, at(50), at(70), tag);
  const SpanId h = store.open(trace, root, kLeader, "DmPropose", at(70), tag, e);
  store.bind_edge_target(e, h);
  store.close(h, at(70));
  store.note_commit(trace, request, at(70), h);

  const auto paths = critical_paths(store);
  ASSERT_EQ(paths.size(), 1u);
  ASSERT_EQ(paths[0].segments.size(), 2u);
  EXPECT_STREQ(paths[0].segments[0].phase, "client_retry_wait");
  EXPECT_EQ(paths[0].segments[0].duration(), milliseconds(50));
  EXPECT_STREQ(paths[0].segments[1].phase, "dm_forward_transit");
  EXPECT_EQ(paths[0].segments[1].duration(), milliseconds(20));
}

TEST(CriticalPath, SpanWithoutInEdgeFallsBackToSlowPathWait) {
  // A commit delivered via a span with no inbound edge (e.g. the edge
  // record was dropped, or the walk crossed into another command's trace):
  // the remaining interval becomes slow_path_wait, keeping the sum exact.
  SpanStore store;
  const RequestId request{kClient, 5};
  const TraceId trace = trace_id_of(request);
  store.open_root(trace, kClient, "command", at(0));
  const SpanId orphan = store.open(trace, /*parent=*/0, kLeader, "orphan", at(30));
  store.close(orphan, at(30));
  store.note_commit(trace, request, at(30), orphan);

  const auto paths = critical_paths(store);
  ASSERT_EQ(paths.size(), 1u);
  ASSERT_EQ(paths[0].segments.size(), 1u);
  EXPECT_STREQ(paths[0].segments[0].phase, "slow_path_wait");
  EXPECT_EQ(paths[0].segments[0].duration(), milliseconds(30));
}

TEST(CriticalPath, AccumulatePhasesFillsRegistry) {
  PaxosChain c;
  MetricsRegistry registry;
  accumulate_phases(critical_paths(c.store), registry);
  EXPECT_EQ(registry.counter("critpath.commands").value(), 1u);
  EXPECT_EQ(registry.histogram("critpath.total_ns").count(), 1u);
  EXPECT_EQ(registry.histogram("critpath.quorum_wait_ns").count(), 1u);
  EXPECT_EQ(registry.histogram("critpath.quorum_wait_ns").max(),
            milliseconds(20).nanos());
}

TEST(CriticalPath, CsvHasOneRowPerSegment) {
  PaxosChain c;
  const std::string csv = paths_to_csv(critical_paths(c.store), "Multi-Paxos");
  std::size_t lines = 0;
  for (const char ch : csv) {
    if (ch == '\n') ++lines;
  }
  EXPECT_EQ(lines, 5u);  // header + 4 segments
  EXPECT_NE(csv.find("protocol,request,trace"), std::string::npos);
  EXPECT_NE(csv.find("Multi-Paxos,1000:7,"), std::string::npos);
  EXPECT_NE(csv.find(",quorum_wait,"), std::string::npos);
}

TEST(TransitPhase, NamesDominoPhases) {
  using MT = wire::MessageType;
  EXPECT_STREQ(transit_phase(static_cast<std::uint16_t>(MT::kDfpPropose)),
               "dfp_propose_transit");
  EXPECT_STREQ(transit_phase(static_cast<std::uint16_t>(MT::kDfpAcceptNotice)),
               "dfp_quorum_wait");
  EXPECT_STREQ(transit_phase(static_cast<std::uint16_t>(MT::kDmRevoke)),
               "recovery_transit");
  EXPECT_STREQ(transit_phase(9999), "transit");
}

}  // namespace
}  // namespace domino::obs
