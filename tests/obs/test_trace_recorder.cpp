#include "obs/trace.h"

#include <gtest/gtest.h>

#include "obs/export.h"

namespace domino::obs {
namespace {

TraceEvent event_at(std::int64_t ns, EventKind kind = EventKind::kMessageSend) {
  TraceEvent e;
  e.at = TimePoint::epoch() + Duration{ns};
  e.kind = kind;
  e.node = NodeId{1};
  e.value = ns;
  return e;
}

TEST(TraceRecorder, RecordsInOrder) {
  TraceRecorder t(8);
  EXPECT_TRUE(t.empty());
  for (std::int64_t i = 0; i < 5; ++i) t.record(event_at(i));
  EXPECT_EQ(t.size(), 5u);
  EXPECT_EQ(t.total_recorded(), 5u);
  EXPECT_EQ(t.overwritten(), 0u);
  const auto events = t.snapshot();
  ASSERT_EQ(events.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(events[i].value, static_cast<std::int64_t>(i));
  }
}

TEST(TraceRecorder, RingWrapsKeepingNewest) {
  TraceRecorder t(4);
  for (std::int64_t i = 0; i < 10; ++i) t.record(event_at(i));
  EXPECT_EQ(t.size(), 4u);
  EXPECT_EQ(t.total_recorded(), 10u);
  EXPECT_EQ(t.overwritten(), 6u);
  const auto events = t.snapshot();
  ASSERT_EQ(events.size(), 4u);
  // Oldest-first: events 6, 7, 8, 9.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(events[i].value, static_cast<std::int64_t>(6 + i));
  }
}

TEST(TraceRecorder, Clear) {
  TraceRecorder t(4);
  t.record(event_at(1));
  t.clear();
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.size(), 0u);
  EXPECT_TRUE(t.snapshot().empty());
}

TEST(TraceRecorder, EveryKindHasAName) {
  for (auto kind : {EventKind::kRequestSubmit, EventKind::kFastAccept,
                    EventKind::kCoordinatorFallback, EventKind::kCommit,
                    EventKind::kExecute, EventKind::kProbeSend, EventKind::kProbeRecv,
                    EventKind::kMessageSend, EventKind::kMessageDeliver,
                    EventKind::kMessageDrop}) {
    EXPECT_STRNE(event_kind_name(kind), "");
  }
}

TEST(TraceRecorder, TextExportIsDeterministic) {
  TraceRecorder a(16);
  TraceRecorder b(16);
  for (std::int64_t i = 0; i < 20; ++i) {  // wraps both rings identically
    a.record(event_at(i * 3, EventKind::kCommit));
    b.record(event_at(i * 3, EventKind::kCommit));
  }
  EXPECT_EQ(trace_to_text(a), trace_to_text(b));
  EXPECT_EQ(trace_to_json(a), trace_to_json(b));
  EXPECT_FALSE(trace_to_text(a).empty());
}

}  // namespace
}  // namespace domino::obs
