// Known-answer tests of the estimator-calibration cells (obs/calibration.h).
#include "obs/calibration.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace domino::obs {
namespace {

TEST(CalibrationCell, CoverageAndMargins) {
  CalibrationCell cell;
  EXPECT_EQ(cell.samples(), 0u);
  EXPECT_DOUBLE_EQ(cell.coverage(), 1.0);  // vacuously calibrated

  cell.record(milliseconds(50), milliseconds(40));  // covered, margin +10ms
  cell.record(milliseconds(50), milliseconds(50));  // covered, margin 0
  cell.record(milliseconds(50), milliseconds(65));  // overshoot 15ms
  cell.record(milliseconds(50), milliseconds(58));  // overshoot 8ms

  EXPECT_EQ(cell.samples(), 4u);
  EXPECT_EQ(cell.covered(), 2u);
  EXPECT_DOUBLE_EQ(cell.coverage(), 0.5);
  // sum margin = 10 + 0 - 15 - 8 = -13ms; mean = -13/4 ms (integer ns).
  EXPECT_EQ(cell.sum_margin_ns(), milliseconds(-13).nanos());
  EXPECT_EQ(cell.mean_margin_ns(), milliseconds(-13).nanos() / 4);
  EXPECT_EQ(cell.max_overshoot_ns(), milliseconds(15).nanos());
}

TEST(Calibration, TargetsKeepRegistrationOrder) {
  const std::vector<NodeId> targets{NodeId{2}, NodeId{0}, NodeId{1}};
  Calibration cal(NodeId{7}, targets);
  cal.record(NodeId{1}, milliseconds(30), milliseconds(20));
  cal.record(NodeId{2}, milliseconds(30), milliseconds(40));
  cal.record(NodeId{2}, milliseconds(30), milliseconds(10));
  cal.record(NodeId{99}, milliseconds(1), milliseconds(1));  // unknown: ignored

  EXPECT_EQ(cal.owner(), NodeId{7});
  EXPECT_EQ(cal.total_samples(), 3u);
  ASSERT_NE(cal.cell(NodeId{2}), nullptr);
  EXPECT_EQ(cal.cell(NodeId{2})->samples(), 2u);
  EXPECT_EQ(cal.cell(NodeId{99}), nullptr);

  // Rows come out in registration order and skip the sample-less target n0.
  const auto rows = calibration_rows(cal);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].target, NodeId{2});
  EXPECT_EQ(rows[0].samples, 2u);
  EXPECT_EQ(rows[0].covered, 1u);
  EXPECT_EQ(rows[1].target, NodeId{1});
  EXPECT_DOUBLE_EQ(rows[1].coverage(), 1.0);
}

TEST(Calibration, CsvFormat) {
  Calibration cal(NodeId{7}, {NodeId{1}});
  cal.record(NodeId{1}, milliseconds(30), milliseconds(20));
  cal.record(NodeId{1}, milliseconds(30), milliseconds(42));
  const std::string csv = calibration_to_csv(calibration_rows(cal));
  EXPECT_NE(csv.find("owner,target,samples,covered,coverage,mean_margin_ns,max_overshoot_ns"),
            std::string::npos);
  // margin sum = 10ms - 12ms = -2ms, mean = -1ms; overshoot max 12ms.
  EXPECT_NE(csv.find("n7,n1,2,1,0.500000,-1000000,12000000"), std::string::npos);
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 2);
  EXPECT_EQ(csv, calibration_to_csv(calibration_rows(cal)));  // deterministic
}

}  // namespace
}  // namespace domino::obs
