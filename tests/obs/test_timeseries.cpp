// Windowed-telemetry engine: snapshot/delta known answers, padding for
// late-registered metrics, capacity accounting, and byte-stable exports.
#include "obs/timeseries.h"

#include <gtest/gtest.h>

#include "obs/metrics.h"

namespace domino::obs {
namespace {

TimePoint at_ms(std::int64_t v) { return TimePoint::epoch() + milliseconds(v); }

TEST(HistogramDelta, RecoversExactlyTheWindowSamples) {
  Histogram h;
  h.record(10);
  h.record(20);
  const HistogramSnapshot before = h.snapshot();
  h.record(100);
  h.record(200);
  h.record(300);
  const HistogramDelta d(before, h.snapshot());

  EXPECT_EQ(d.count(), 3u);
  EXPECT_DOUBLE_EQ(d.sum(), 600.0);
  EXPECT_DOUBLE_EQ(d.mean(), 200.0);
  // Nearest-rank over {100, 200, 300}: p50 -> 200's bucket upper bound.
  // 200 lives in bucket [192, 207]; the lifetime max (300) doesn't clamp it.
  EXPECT_EQ(d.percentile(50), 207);
  // p95/p99 -> 300's bucket [288, 319], clamped to the recorded max 300.
  EXPECT_EQ(d.percentile(95), 300);
  EXPECT_EQ(d.percentile(99), 300);
}

TEST(HistogramDelta, EmptyWindowIsZero) {
  Histogram h;
  h.record(42);
  const HistogramSnapshot s = h.snapshot();
  const HistogramDelta d(s, s);
  EXPECT_TRUE(d.empty());
  EXPECT_EQ(d.percentile(99), 0);
  EXPECT_DOUBLE_EQ(d.mean(), 0.0);
}

TEST(Timeseries, WindowedDeltasKnownAnswer) {
  MetricsRegistry reg;
  auto& h = reg.histogram("lat");
  auto& c = reg.counter("ops");
  auto& g = reg.gauge("depth");
  Timeseries ts;

  h.record(5);
  c.inc(3);
  g.set(7);
  ts.sample(reg, at_ms(1));

  h.record(1000);
  h.record(1000);
  c.inc(2);
  ts.sample(reg, at_ms(2));

  ASSERT_EQ(ts.window_count(), 2u);
  EXPECT_EQ(ts.windows()[0].start, TimePoint::epoch());
  EXPECT_EQ(ts.windows()[0].end, at_ms(1));
  EXPECT_EQ(ts.windows()[1].start, at_ms(1));

  const auto* ops = ts.find_counter("ops");
  ASSERT_NE(ops, nullptr);
  ASSERT_EQ(ops->deltas.size(), 2u);
  EXPECT_EQ(ops->deltas[0], 3u);  // delta, not cumulative
  EXPECT_EQ(ops->deltas[1], 2u);

  const auto& depth = ts.gauges().at("depth");
  EXPECT_EQ(depth.values[0], 7);
  EXPECT_EQ(depth.values[1], 7);  // last value carries over

  const auto* lat = ts.find_histogram("lat");
  ASSERT_NE(lat, nullptr);
  ASSERT_EQ(lat->windows.size(), 2u);
  EXPECT_EQ(lat->windows[0].count, 1u);
  EXPECT_EQ(lat->windows[0].p50, 5);  // values < 8 are exact
  EXPECT_EQ(lat->windows[1].count, 2u);
  // Both window-1 values are 1000; lifetime max clamps the bucket bound.
  EXPECT_EQ(lat->windows[1].p50, 1000);
  EXPECT_EQ(lat->windows[1].p99, 1000);
  EXPECT_DOUBLE_EQ(lat->windows[1].sum, 2000.0);
}

TEST(Timeseries, LateRegisteredMetricIsZeroPadded) {
  MetricsRegistry reg;
  reg.counter("early").inc();
  Timeseries ts;
  ts.sample(reg, at_ms(1));
  ts.sample(reg, at_ms(2));

  reg.counter("late").inc(9);
  reg.histogram("late_h").record(4);
  ts.sample(reg, at_ms(3));

  const auto* late = ts.find_counter("late");
  ASSERT_NE(late, nullptr);
  ASSERT_EQ(late->deltas.size(), 3u);
  EXPECT_EQ(late->deltas[0], 0u);
  EXPECT_EQ(late->deltas[1], 0u);
  EXPECT_EQ(late->deltas[2], 9u);

  const auto* late_h = ts.find_histogram("late_h");
  ASSERT_NE(late_h, nullptr);
  ASSERT_EQ(late_h->windows.size(), 3u);
  EXPECT_EQ(late_h->windows[0].count, 0u);
  EXPECT_EQ(late_h->windows[2].count, 1u);
}

TEST(Timeseries, CapacityIsBoundedAndCounted) {
  MetricsRegistry reg;
  auto& c = reg.counter("ops");
  Timeseries ts(/*max_windows=*/2);
  for (int i = 1; i <= 5; ++i) {
    c.inc();
    ts.sample(reg, at_ms(i));
  }
  EXPECT_EQ(ts.window_count(), 2u);
  EXPECT_EQ(ts.dropped_windows(), 3u);
}

TEST(Timeseries, SampleAtSameInstantIsIgnored) {
  MetricsRegistry reg;
  reg.counter("ops").inc();
  Timeseries ts;
  ts.sample(reg, at_ms(1));
  ts.sample(reg, at_ms(1));  // end-of-run flush landing on a periodic tick
  EXPECT_EQ(ts.window_count(), 1u);
  EXPECT_EQ(ts.dropped_windows(), 0u);
}

Timeseries make_timeline() {
  MetricsRegistry reg;
  auto& h = reg.histogram("lat");
  auto& c = reg.counter("ops");
  Timeseries ts;
  for (int w = 1; w <= 3; ++w) {
    h.record(100 * w);
    c.inc(static_cast<std::uint64_t>(w));
    ts.sample(reg, at_ms(w));
  }
  return ts;
}

TEST(TimeseriesExport, CsvAndJsonAreByteStable) {
  const Timeseries a = make_timeline();
  const Timeseries b = make_timeline();
  EXPECT_EQ(timeseries_to_csv(a), timeseries_to_csv(b));

  std::string ja, jb;
  append_timeseries_json(ja, a);
  append_timeseries_json(jb, b);
  EXPECT_EQ(ja, jb);
  EXPECT_NE(ja.find("\"windows\":3"), std::string::npos);
  EXPECT_NE(ja.find("\"lat\""), std::string::npos);
}

TEST(TimeseriesExport, CsvHasOneRowPerCounterPerWindow) {
  const Timeseries ts = make_timeline();
  const std::string csv = timeseries_to_csv(ts);
  EXPECT_NE(csv.find("0,0,1000000,counter,ops,delta,1\n"), std::string::npos);
  EXPECT_NE(csv.find("1,1000000,2000000,counter,ops,delta,2\n"), std::string::npos);
  EXPECT_NE(csv.find("2,2000000,3000000,counter,ops,delta,3\n"), std::string::npos);
}

}  // namespace
}  // namespace domino::obs
