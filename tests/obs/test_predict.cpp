// Known-answer tests of the prediction audit (obs/predict.h): record
// lifecycle, the exact error / oracle-regret identities, misprediction
// attribution, and the decision CSV.
#include "obs/predict.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace domino::obs {
namespace {

RequestId req(std::uint32_t client, std::uint64_t seq) {
  return RequestId{NodeId{client}, seq};
}

DecisionRecord auto_decision(const RequestId& id, Duration dfp, Duration dm,
                             NodeId dm_leader = NodeId{0}) {
  DecisionRecord d;
  d.request = id;
  d.client = id.client;
  d.decided_at = TimePoint::epoch() + milliseconds(5);
  d.mode = DecisionMode::kAuto;
  d.predicted_dfp = dfp;
  d.predicted_dm = dm;
  d.dm_leader = dm_leader;
  return d;
}

TEST(PredictionAudit, ErrorAndRegretIdentityDfpChosen) {
  PredictionAudit audit;
  const RequestId id = req(1000, 1);
  // DFP predicted cheaper: chosen path = DFP.
  audit.open(auto_decision(id, milliseconds(80), milliseconds(120)));
  audit.note_dfp(id, /*deadline_ts=*/90'000'000, TimePoint::epoch() + milliseconds(5),
                 milliseconds(0), milliseconds(0), {NodeId{0}, NodeId{1}, NodeId{2}},
                 {milliseconds(30), milliseconds(40), milliseconds(50)});
  audit.note_outcome(id, DecisionOutcome::kFastPath);
  const TimePoint committed = TimePoint::epoch() + milliseconds(105);
  audit.reconcile(id, committed, milliseconds(100));

  ASSERT_EQ(audit.reconciled(), 1u);
  const DecisionRecord& r = audit.records().front();
  EXPECT_EQ(r.outcome, DecisionOutcome::kFastPath);
  EXPECT_EQ(r.chosen, DecisionPath::kDfp);
  // error = realized - predicted(chosen) = 100ms - 80ms.
  ASSERT_TRUE(r.error_valid);
  EXPECT_EQ(r.error_ns, milliseconds(20).nanos());
  // regret = realized - min(80, 120) = 20ms; the identity is exact.
  ASSERT_TRUE(r.regret_valid);
  EXPECT_EQ(r.hindsight_best_ns, milliseconds(80).nanos());
  EXPECT_EQ(r.regret_ns, r.realized.nanos() - r.hindsight_best_ns);
  EXPECT_EQ(r.regret_ns, milliseconds(20).nanos());
  EXPECT_EQ(audit.regret_sum_ns(), milliseconds(20).nanos());
  EXPECT_EQ(audit.regret_max_ns(), milliseconds(20).nanos());
  EXPECT_EQ(audit.error_abs_sum_ns(), milliseconds(20).nanos());
  EXPECT_EQ(audit.fast_path(), 1u);
  EXPECT_EQ(audit.pending(), 0u);
}

TEST(PredictionAudit, RegretAgainstTheRoadNotTaken) {
  PredictionAudit audit;
  const RequestId id = req(1000, 2);
  // DM predicted cheaper and chosen, but DFP's estimate was the hindsight
  // winner once realized latency is known? No: hindsight best is the best
  // *estimate*, min(90, 70) = 70 = DM. Realized 60ms < estimate: negative
  // regret (the run beat its own predictions).
  DecisionRecord d = auto_decision(id, milliseconds(90), milliseconds(70), NodeId{2});
  d.chosen = DecisionPath::kDm;
  audit.open(d);
  audit.note_dm(id, NodeId{2}, /*unpredictable=*/false);
  audit.note_outcome(id, DecisionOutcome::kDmCommit);
  audit.reconcile(id, TimePoint::epoch() + milliseconds(65), milliseconds(60));

  const DecisionRecord& r = audit.records().front();
  EXPECT_EQ(r.chosen, DecisionPath::kDm);
  EXPECT_EQ(r.dm_leader, NodeId{2});
  ASSERT_TRUE(r.error_valid);
  EXPECT_EQ(r.error_ns, -milliseconds(10).nanos());
  ASSERT_TRUE(r.regret_valid);
  EXPECT_EQ(r.regret_ns, -milliseconds(10).nanos());
  EXPECT_EQ(r.regret_ns, r.realized.nanos() - r.hindsight_best_ns);
  EXPECT_EQ(audit.dm_commits(), 1u);
}

TEST(PredictionAudit, UnknownEstimatesInvalidateErrorAndRegret) {
  PredictionAudit audit;
  const RequestId id = req(1000, 3);
  DecisionRecord d = auto_decision(id, Duration::max(), Duration::max());
  d.chosen = DecisionPath::kDm;
  audit.open(d);
  audit.note_dm(id, NodeId{0}, /*unpredictable=*/true);
  audit.reconcile(id, TimePoint::epoch() + milliseconds(50), milliseconds(50));

  const DecisionRecord& r = audit.records().front();
  EXPECT_FALSE(r.error_valid);
  EXPECT_FALSE(r.regret_valid);
  EXPECT_TRUE(r.dfp_unpredictable);
  EXPECT_EQ(audit.regret_samples(), 0u);
  EXPECT_EQ(audit.error_samples(), 0u);
  // No outcome notice arrived: the reconcile infers one from the path.
  EXPECT_EQ(r.outcome, DecisionOutcome::kDmCommit);
}

TEST(PredictionAudit, AttributionBlamesWorstOvershootAmongRejectors) {
  PredictionAudit audit;
  const RequestId id = req(1001, 1);
  audit.open(auto_decision(id, milliseconds(80), milliseconds(120)));
  const TimePoint proposed = TimePoint::epoch() + milliseconds(10);
  const std::int64_t ts = (proposed + milliseconds(50)).nanos();  // deadline
  audit.note_dfp(id, ts, proposed, milliseconds(0), milliseconds(0),
                 {NodeId{0}, NodeId{1}, NodeId{2}},
                 {milliseconds(30), milliseconds(40), milliseconds(45)});
  // n0 arrives within both prediction and deadline; n1 overshoots its
  // prediction by 20ms and misses the deadline by 10ms; n2 overshoots by
  // 25ms and misses by 20ms => n2 is blamed.
  audit.note_arrival(id, NodeId{0}, ts, proposed + milliseconds(30), /*accepted=*/true);
  audit.note_arrival(id, NodeId{1}, ts, proposed + milliseconds(60), /*accepted=*/false);
  audit.note_arrival(id, NodeId{2}, ts, proposed + milliseconds(70), /*accepted=*/false);
  audit.note_outcome(id, DecisionOutcome::kSlowPath);
  audit.reconcile(id, TimePoint::epoch() + milliseconds(200), milliseconds(190));

  const DecisionRecord& r = audit.records().front();
  EXPECT_EQ(r.outcome, DecisionOutcome::kSlowPath);
  ASSERT_EQ(r.arrivals.size(), 3u);
  EXPECT_TRUE(r.arrivals[0].accepted);
  EXPECT_EQ(r.arrivals[0].lateness, milliseconds(-20));
  EXPECT_EQ(r.arrivals[1].lateness, milliseconds(10));
  EXPECT_EQ(r.arrivals[2].lateness, milliseconds(20));
  EXPECT_EQ(r.blamed, NodeId{2});
  EXPECT_EQ(r.blamed_overshoot_ns, milliseconds(25).nanos());
  EXPECT_EQ(audit.slow_path(), 1u);
}

TEST(PredictionAudit, NoBlameOnFastPathOrWithoutRejections) {
  PredictionAudit audit;
  const RequestId id = req(1001, 2);
  audit.open(auto_decision(id, milliseconds(80), milliseconds(120)));
  const TimePoint proposed = TimePoint::epoch() + milliseconds(10);
  const std::int64_t ts = (proposed + milliseconds(50)).nanos();
  audit.note_dfp(id, ts, proposed, milliseconds(0), milliseconds(0),
                 {NodeId{0}, NodeId{1}}, {milliseconds(30), milliseconds(40)});
  // Even an overshooting-but-accepted replica draws no blame.
  audit.note_arrival(id, NodeId{0}, ts, proposed + milliseconds(45), true);
  audit.note_arrival(id, NodeId{1}, ts, proposed + milliseconds(48), true);
  audit.note_outcome(id, DecisionOutcome::kFastPath);
  audit.reconcile(id, TimePoint::epoch() + milliseconds(100), milliseconds(90));
  EXPECT_FALSE(audit.records().front().blamed.valid());
}

TEST(PredictionAudit, StaleAndDuplicateArrivalsIgnored) {
  PredictionAudit audit;
  const RequestId id = req(1002, 1);
  audit.open(auto_decision(id, milliseconds(80), milliseconds(120)));
  const TimePoint proposed = TimePoint::epoch() + milliseconds(10);
  const std::int64_t ts = (proposed + milliseconds(50)).nanos();
  audit.note_dfp(id, ts, proposed, milliseconds(0), milliseconds(0), {NodeId{0}},
                 {milliseconds(30)});
  // Notice for an older attempt (different ts): ignored.
  audit.note_arrival(id, NodeId{0}, ts - 1, proposed + milliseconds(99), false);
  audit.note_arrival(id, NodeId{0}, ts, proposed + milliseconds(31), true);
  // Duplicate (retransmission): first one wins.
  audit.note_arrival(id, NodeId{0}, ts, proposed + milliseconds(77), false);
  audit.reconcile(id, TimePoint::epoch() + milliseconds(100), milliseconds(90));
  const DecisionRecord& r = audit.records().front();
  ASSERT_EQ(r.arrivals.size(), 1u);
  EXPECT_TRUE(r.arrivals[0].heard);
  EXPECT_TRUE(r.arrivals[0].accepted);
  EXPECT_EQ(r.arrivals[0].realized_offset, milliseconds(31));
}

TEST(PredictionAudit, ExactlyOneRecordPerCommand) {
  PredictionAudit audit;
  const RequestId id = req(1003, 1);
  audit.open(auto_decision(id, milliseconds(10), milliseconds(20)));
  audit.open(auto_decision(id, milliseconds(99), milliseconds(99)));  // ignored
  EXPECT_EQ(audit.decisions(), 1u);
  audit.reconcile(id, TimePoint::epoch() + milliseconds(30), milliseconds(30));
  audit.reconcile(id, TimePoint::epoch() + milliseconds(99), milliseconds(99));  // no-op
  ASSERT_EQ(audit.reconciled(), 1u);
  EXPECT_EQ(audit.records().front().realized, milliseconds(30));
  // The first open's estimates survived.
  EXPECT_EQ(audit.records().front().predicted_dfp, milliseconds(10));
}

TEST(PredictionAudit, CapacityOverflowIsCountedNotSilent) {
  PredictionAudit audit(/*capacity=*/2);
  audit.open(auto_decision(req(1004, 1), milliseconds(1), milliseconds(2)));
  audit.open(auto_decision(req(1004, 2), milliseconds(1), milliseconds(2)));
  audit.open(auto_decision(req(1004, 3), milliseconds(1), milliseconds(2)));
  EXPECT_EQ(audit.decisions(), 2u);
  EXPECT_EQ(audit.dropped(), 1u);
}

TEST(PredictionAudit, FailoverAndOverrideAggregates) {
  MetricsRegistry registry;
  PredictionAudit audit;
  audit.bind_metrics(&registry);
  const RequestId id = req(1005, 1);
  DecisionRecord d = auto_decision(id, milliseconds(40), milliseconds(90));
  d.adaptive_override = true;
  audit.open(d);
  audit.note_failover(id);
  audit.note_dm(id, NodeId{1}, /*unpredictable=*/false);
  audit.note_outcome(id, DecisionOutcome::kDmCommit);
  audit.reconcile(id, TimePoint::epoch() + milliseconds(300), milliseconds(295));
  EXPECT_EQ(audit.failovers(), 1u);
  EXPECT_EQ(audit.adaptive_overrides(), 1u);
  EXPECT_TRUE(audit.records().front().failover);
  EXPECT_EQ(registry.counter("predict.decisions").value(), 1u);
  EXPECT_EQ(registry.counter("predict.reconciled").value(), 1u);
  EXPECT_EQ(registry.counter("predict.failovers").value(), 1u);
  EXPECT_EQ(registry.counter("predict.adaptive_overrides").value(), 1u);
  // regret = 295 - 40 = 255ms, over the estimate: lands in regret_over_ns.
  EXPECT_EQ(registry.histogram("predict.regret_over_ns").count(), 1u);
  EXPECT_EQ(registry.histogram("predict.regret_over_ns").max(), milliseconds(255).nanos());
}

TEST(PredictionAudit, AbandonedCommandStaysPending) {
  PredictionAudit audit;
  audit.open(auto_decision(req(1006, 1), milliseconds(1), milliseconds(2)));
  EXPECT_EQ(audit.pending(), 1u);
  EXPECT_EQ(audit.reconciled(), 0u);
}

TEST(PredictionAudit, CsvIsStableAndEncodesUnknownsAsMinusOne) {
  PredictionAudit audit;
  const RequestId id = req(1007, 1);
  DecisionRecord d = auto_decision(id, milliseconds(80), Duration::max(), NodeId::invalid());
  audit.open(d);
  audit.note_dfp(id, 90'000'000, TimePoint::epoch() + milliseconds(5), milliseconds(2),
                 milliseconds(1), {NodeId{0}}, {milliseconds(30)});
  audit.note_outcome(id, DecisionOutcome::kFastPath);
  audit.reconcile(id, TimePoint::epoch() + milliseconds(100), milliseconds(95));

  const std::string csv = decisions_to_csv(audit.records(), "Domino");
  // One header plus one row.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 2);
  EXPECT_NE(csv.find("protocol,request,mode,chosen,outcome"), std::string::npos);
  EXPECT_NE(csv.find("Domino,n1007#1,auto,dfp,fast_path"), std::string::npos);
  // Unknown DM estimate exports as -1, invalid leader as '-'.
  EXPECT_NE(csv.find(",-1,-,"), std::string::npos);
  EXPECT_EQ(csv, decisions_to_csv(audit.records(), "Domino"));  // deterministic
}

}  // namespace
}  // namespace domino::obs
