#include "sim/clock.h"

#include <gtest/gtest.h>

namespace domino::sim {
namespace {

TEST(LocalClock, DefaultIsIdentity) {
  LocalClock c;
  const TimePoint t = TimePoint::epoch() + seconds(100);
  EXPECT_EQ(c.local(t), t);
  EXPECT_EQ(c.true_at(t), t);
}

TEST(LocalClock, OffsetShiftsReadings) {
  LocalClock c(milliseconds(5), 0.0);
  const TimePoint t = TimePoint::epoch() + seconds(1);
  EXPECT_EQ(c.local(t), t + milliseconds(5));
}

TEST(LocalClock, NegativeOffset) {
  LocalClock c(milliseconds(-3), 0.0);
  const TimePoint t = TimePoint::epoch() + seconds(1);
  EXPECT_EQ(c.local(t), t - milliseconds(3));
}

TEST(LocalClock, DriftAccumulates) {
  LocalClock c(Duration::zero(), 100.0);  // 100 ppm fast
  const TimePoint t = TimePoint::epoch() + seconds(1000);
  // 1000 s * 100 ppm = 100 ms ahead.
  EXPECT_NEAR((c.local(t) - t).millis(), 100.0, 0.001);
}

TEST(LocalClock, TrueAtInvertsLocal) {
  LocalClock c(milliseconds(7), 42.0);
  const TimePoint t = TimePoint::epoch() + seconds(123);
  const TimePoint local = c.local(t);
  EXPECT_NEAR((c.true_at(local) - t).millis(), 0.0, 0.001);
}

TEST(LocalClock, SkewBetweenTwoClocks) {
  // Two replicas with different offsets disagree by the offset delta —
  // exactly the skew folded into Domino's OWD measurements.
  LocalClock a(milliseconds(2), 0.0);
  LocalClock b(milliseconds(-2), 0.0);
  const TimePoint t = TimePoint::epoch() + seconds(10);
  EXPECT_EQ(a.local(t) - b.local(t), milliseconds(4));
}

}  // namespace
}  // namespace domino::sim
