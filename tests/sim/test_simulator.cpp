#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <vector>

namespace domino::sim {
namespace {

TEST(Simulator, StartsAtEpoch) {
  Simulator s;
  EXPECT_EQ(s.now(), TimePoint::epoch());
  EXPECT_EQ(s.pending_events(), 0u);
}

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator s;
  std::vector<int> order;
  s.schedule_after(milliseconds(30), [&] { order.push_back(3); });
  s.schedule_after(milliseconds(10), [&] { order.push_back(1); });
  s.schedule_after(milliseconds(20), [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, SameTimeFifoOrder) {
  Simulator s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    s.schedule_after(milliseconds(5), [&order, i] { order.push_back(i); });
  }
  s.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulator, NowAdvancesToEventTime) {
  Simulator s;
  TimePoint seen;
  s.schedule_after(milliseconds(42), [&] { seen = s.now(); });
  s.run();
  EXPECT_EQ(seen, TimePoint::epoch() + milliseconds(42));
  EXPECT_EQ(s.now(), TimePoint::epoch() + milliseconds(42));
}

TEST(Simulator, PastEventsClampToNow) {
  Simulator s;
  s.schedule_after(milliseconds(10), [&] {
    // From inside an event, scheduling in the past runs "immediately".
    bool ran = false;
    s.schedule_at(TimePoint::epoch(), [&ran, &s] {
      ran = true;
      EXPECT_EQ(s.now(), TimePoint::epoch() + milliseconds(10));
    });
    (void)ran;
  });
  s.run();
}

TEST(Simulator, NegativeDelayClamps) {
  Simulator s;
  int runs = 0;
  s.schedule_after(milliseconds(-5), [&] { ++runs; });
  s.run();
  EXPECT_EQ(runs, 1);
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator s;
  int runs = 0;
  s.schedule_after(milliseconds(10), [&] { ++runs; });
  s.schedule_after(milliseconds(20), [&] { ++runs; });
  s.schedule_after(milliseconds(30), [&] { ++runs; });
  s.run_until(TimePoint::epoch() + milliseconds(20));
  EXPECT_EQ(runs, 2);  // the event at exactly the deadline still runs
  EXPECT_EQ(s.now(), TimePoint::epoch() + milliseconds(20));
  EXPECT_EQ(s.pending_events(), 1u);
}

TEST(Simulator, RunUntilAdvancesClockWhenIdle) {
  Simulator s;
  s.run_until(TimePoint::epoch() + seconds(5));
  EXPECT_EQ(s.now(), TimePoint::epoch() + seconds(5));
}

TEST(Simulator, EventsCanScheduleEvents) {
  Simulator s;
  int depth = 0;
  std::function<void()> chain = [&]() {
    if (++depth < 5) s.schedule_after(milliseconds(1), chain);
  };
  s.schedule_after(milliseconds(1), chain);
  s.run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(s.now(), TimePoint::epoch() + milliseconds(5));
}

TEST(Simulator, ExecutedEventsCounted) {
  Simulator s;
  for (int i = 0; i < 7; ++i) s.schedule_after(milliseconds(i), [] {});
  s.run();
  EXPECT_EQ(s.executed_events(), 7u);
}

TEST(PeriodicTimer, FiresAtInterval) {
  Simulator s;
  PeriodicTimer t;
  int ticks = 0;
  t.start(s, milliseconds(10), milliseconds(10), [&] { ++ticks; });
  s.run_until(TimePoint::epoch() + milliseconds(100));
  EXPECT_EQ(ticks, 10);
}

TEST(PeriodicTimer, StopEndsFiring) {
  Simulator s;
  PeriodicTimer t;
  int ticks = 0;
  t.start(s, milliseconds(10), milliseconds(10), [&] {
    if (++ticks == 3) t.stop();
  });
  s.run();
  EXPECT_EQ(ticks, 3);
}

TEST(PeriodicTimer, RestartCancelsPrevious) {
  Simulator s;
  PeriodicTimer t;
  int a = 0, b = 0;
  t.start(s, milliseconds(10), milliseconds(10), [&] { ++a; });
  t.start(s, milliseconds(10), milliseconds(10), [&] { ++b; });
  s.run_until(TimePoint::epoch() + milliseconds(55));
  EXPECT_EQ(a, 0);
  EXPECT_EQ(b, 5);
  t.stop();
}

TEST(PeriodicTimer, InitialDelayDiffersFromInterval) {
  Simulator s;
  PeriodicTimer t;
  std::vector<TimePoint> fires;
  t.start(s, Duration::zero(), milliseconds(20), [&] { fires.push_back(s.now()); });
  s.run_until(TimePoint::epoch() + milliseconds(50));
  ASSERT_EQ(fires.size(), 3u);  // 0, 20, 40
  EXPECT_EQ(fires[0], TimePoint::epoch());
  EXPECT_EQ(fires[2], TimePoint::epoch() + milliseconds(40));
  t.stop();
}

}  // namespace
}  // namespace domino::sim
