#include "rpc/client_base.h"

#include <gtest/gtest.h>

namespace domino::rpc {
namespace {

net::Topology one_dc() { return net::Topology{{"A"}, {{0.0}}}; }

/// Client whose propose() self-commits after a fixed delay.
class LoopbackClient : public ClientBase {
 public:
  LoopbackClient(NodeId id, net::Network& network, Duration commit_delay)
      : ClientBase(id, 0, network, sim::LocalClock{}), delay_(commit_delay) {}

  std::vector<sm::Command> proposed;

 protected:
  void propose(const sm::Command& command) override {
    proposed.push_back(command);
    after(delay_, [this, id = command.id] { handle_committed(id); });
  }
  void on_packet(const net::Packet&) override {}

 private:
  Duration delay_;
};

TEST(ClientBase, SubmitTriggersProposeAndHooks) {
  sim::Simulator simulator;
  net::Network network(simulator, one_dc(), 1);
  LoopbackClient c(NodeId{1000}, network, milliseconds(30));
  c.attach();

  std::vector<Duration> latencies;
  c.set_commit_hook([&](const RequestId&, TimePoint sent, TimePoint committed) {
    latencies.push_back(committed - sent);
  });
  int sends = 0;
  c.set_send_hook([&](const RequestId&, TimePoint) { ++sends; });

  sm::Command cmd;
  cmd.id = RequestId{NodeId{1000}, 0};
  cmd.key = "k";
  cmd.value = "v";
  c.submit(cmd);
  simulator.run();

  EXPECT_EQ(sends, 1);
  EXPECT_EQ(c.submitted_count(), 1u);
  EXPECT_EQ(c.committed_count(), 1u);
  ASSERT_EQ(latencies.size(), 1u);
  EXPECT_EQ(latencies[0], milliseconds(30));
}

TEST(ClientBase, DuplicateCommitIgnored) {
  sim::Simulator simulator;
  net::Network network(simulator, one_dc(), 1);

  class DoubleCommit : public LoopbackClient {
   public:
    using LoopbackClient::LoopbackClient;
    void force_commit(const RequestId& id) { handle_committed(id); }
  };
  DoubleCommit c(NodeId{1000}, network, milliseconds(1));
  c.attach();
  int commits = 0;
  c.set_commit_hook([&](const RequestId&, TimePoint, TimePoint) { ++commits; });

  sm::Command cmd;
  cmd.id = RequestId{NodeId{1000}, 0};
  c.submit(cmd);
  simulator.run();
  c.force_commit(cmd.id);  // duplicate
  EXPECT_EQ(commits, 1);
  EXPECT_EQ(c.committed_count(), 1u);
}

TEST(ClientBase, ForeignCommitIgnored) {
  sim::Simulator simulator;
  net::Network network(simulator, one_dc(), 1);
  class Exposed : public LoopbackClient {
   public:
    using LoopbackClient::LoopbackClient;
    void force_commit(const RequestId& id) { handle_committed(id); }
  };
  Exposed c(NodeId{1000}, network, milliseconds(1));
  c.attach();
  c.force_commit(RequestId{NodeId{1234}, 0});  // not our client id
  EXPECT_EQ(c.committed_count(), 0u);
}

TEST(ClientBase, LoadGeneratorPacesRequests) {
  sim::Simulator simulator;
  net::Network network(simulator, one_dc(), 1);
  LoopbackClient c(NodeId{1000}, network, milliseconds(1));
  c.attach();
  sm::WorkloadConfig wc;
  wc.num_keys = 100;
  sm::WorkloadGenerator gen(wc, 1);
  c.start_load(gen, 100.0);  // 100 rps -> every 10 ms
  simulator.run_until(TimePoint::epoch() + seconds(1));
  c.stop_load();
  EXPECT_EQ(c.submitted_count(), 100u);
  simulator.run_until(TimePoint::epoch() + seconds(2));
  EXPECT_EQ(c.committed_count(), 100u);
  EXPECT_EQ(c.inflight_count(), 0u);
}

TEST(ClientBase, ZeroRateIsNoop) {
  sim::Simulator simulator;
  net::Network network(simulator, one_dc(), 1);
  LoopbackClient c(NodeId{1000}, network, milliseconds(1));
  c.attach();
  sm::WorkloadConfig wc;
  sm::WorkloadGenerator gen(wc, 1);
  c.start_load(gen, 0.0);
  simulator.run_until(TimePoint::epoch() + seconds(1));
  EXPECT_EQ(c.submitted_count(), 0u);
}

}  // namespace
}  // namespace domino::rpc
